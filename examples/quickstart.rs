//! Quickstart: schedule a handful of aperiodic tasks on a multi-core
//! processor through the execution engine and compare the heuristics
//! against the optimum.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use esched::obs::chrome::{self, ChromeTraceSink};
use esched::obs::trace;
use esched::prelude::*;
use esched::sim::ascii_gantt;
use std::sync::Arc;

fn main() {
    // Capture the span hierarchy of everything below into a Chrome
    // trace; merged with the schedule rendering and written at the end.
    let sink = ChromeTraceSink::new();
    trace::init_with(trace::Filter::parse("debug"), Arc::new(sink.clone()));
    // Six aperiodic tasks (release, deadline, work) — the paper's
    // Section V.D worked example.
    let tasks = TaskSet::from_triples(&[
        (0.0, 10.0, 8.0),
        (2.0, 18.0, 14.0),
        (4.0, 16.0, 8.0),
        (6.0, 14.0, 4.0),
        (8.0, 20.0, 10.0),
        (12.0, 22.0, 6.0),
    ]);
    // A quad-core processor with power p(f) = f³ per core.
    let cores = 4;
    let power = PolynomialPower::cubic();

    // One ScheduleRequest runs the whole pipeline: the paper's headline
    // heuristic (DER-based allocation + final frequency refinement), the
    // convex-programming optimum E^OPT as the yardstick, and a
    // discrete-event simulation of the resulting schedule.
    let request = ScheduleRequest::new(tasks.clone(), cores, power).with_config(
        EngineConfig::new()
            .with_solver(SolverKind::default())
            .with_sim_verify(true),
    );
    let outcome = Engine::new().run(&request).expect("pipeline");

    println!("DER-based schedule (S^F2): energy = {:.4}", outcome.energy);
    println!("{}", ascii_gantt(&outcome.schedule, 0.0, 22.0, 66));

    // The engine normalizes both heuristics against E^OPT (the NEC).
    let nec = outcome.nec.expect("solver was configured");
    let opt = outcome.opt.as_ref().expect("solver was configured");
    println!(
        "Optimal energy (E^OPT):          energy = {:.4} (gap {:.2e}, {})",
        opt.energy, opt.gap, opt.solver,
    );
    println!("NEC: F2 = {:.4}, F1 = {:.4}", nec.f2, nec.f1);

    // The engine's schedule is legal…
    validate_schedule(&outcome.schedule, &tasks).assert_legal();

    // …and the simulator verdict rides along in the outcome.
    let sim = outcome.sim.expect("sim_verify was enabled");
    assert!(sim.clean);
    println!(
        "simulator cross-check: energy = {:.4} ({} segments, {} migrations)",
        sim.energy,
        outcome.schedule.len(),
        outcome.schedule.migrations()
    );

    // Export an SVG Gantt chart for a closer look.
    let svg_path = std::env::temp_dir().join("esched-quickstart.svg");
    esched::sim::save_svg(
        &outcome.schedule,
        0.0,
        22.0,
        &esched::sim::SvgOptions::default(),
        &svg_path,
    )
    .expect("write SVG");
    println!("SVG Gantt chart written to {}", svg_path.display());

    // Export a Chrome trace: the captured engine/solver/simulator spans
    // as one process, the DER schedule (one thread per core, frequency
    // counter tracks) as another. Open it at https://ui.perfetto.dev or
    // chrome://tracing.
    trace::disable();
    let doc = chrome::merge(&[
        sink.to_json(),
        esched::sim::chrome_schedule_trace(&outcome.schedule),
    ]);
    let trace_path = std::env::temp_dir().join("esched-quickstart.trace.json");
    std::fs::write(&trace_path, doc.to_string_pretty()).expect("write trace");
    println!("Chrome trace written to {}", trace_path.display());
}
