//! Quickstart: schedule a handful of aperiodic tasks on a multi-core
//! processor and compare the heuristics against the optimum.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use esched::obs::chrome::{self, ChromeTraceSink};
use esched::obs::trace;
use esched::prelude::*;
use esched::sim::ascii_gantt;
use std::sync::Arc;

fn main() {
    // Capture the span hierarchy of everything below into a Chrome
    // trace; merged with the schedule rendering and written at the end.
    let sink = ChromeTraceSink::new();
    trace::init_with(trace::Filter::parse("debug"), Arc::new(sink.clone()));
    // Six aperiodic tasks (release, deadline, work) — the paper's
    // Section V.D worked example.
    let tasks = TaskSet::from_triples(&[
        (0.0, 10.0, 8.0),
        (2.0, 18.0, 14.0),
        (4.0, 16.0, 8.0),
        (6.0, 14.0, 4.0),
        (8.0, 20.0, 10.0),
        (12.0, 22.0, 6.0),
    ]);
    // A quad-core processor with power p(f) = f³ per core.
    let cores = 4;
    let power = PolynomialPower::cubic();

    // The paper's headline heuristic: DER-based allocation + final
    // frequency refinement.
    let der = der_schedule(&tasks, cores, &power);
    println!(
        "DER-based schedule (S^F2): energy = {:.4}",
        der.final_energy
    );
    println!("{}", ascii_gantt(&der.schedule, 0.0, 22.0, 66));

    // The simpler evenly allocating method.
    let even = even_schedule(&tasks, cores, &power);
    println!(
        "Even-allocation schedule (S^F1): energy = {:.4}",
        even.final_energy
    );

    // The convex-programming optimum (Theorem 1) as the yardstick.
    let opt = optimal_energy(&tasks, cores, &power, &SolveOptions::default());
    println!(
        "Optimal energy (E^OPT):          energy = {:.4}",
        opt.energy
    );
    println!(
        "NEC: F2 = {:.4}, F1 = {:.4}",
        der.final_energy / opt.energy,
        even.final_energy / opt.energy
    );

    // Both schedules are legal…
    validate_schedule(&der.schedule, &tasks).assert_legal();
    validate_schedule(&even.schedule, &tasks).assert_legal();

    // …and the discrete-event simulator agrees with the analytic energy.
    let sim = simulate(&der.schedule, &tasks, &power);
    assert!(sim.is_clean());
    println!(
        "simulator cross-check: energy = {:.4} ({} segments, {} migrations)",
        sim.energy,
        der.schedule.len(),
        der.schedule.migrations()
    );

    // Export an SVG Gantt chart for a closer look.
    let svg_path = std::env::temp_dir().join("esched-quickstart.svg");
    esched::sim::save_svg(
        &der.schedule,
        0.0,
        22.0,
        &esched::sim::SvgOptions::default(),
        &svg_path,
    )
    .expect("write SVG");
    println!("SVG Gantt chart written to {}", svg_path.display());

    // Export a Chrome trace: the captured solver/simulator spans as one
    // process, the DER schedule (one thread per core, frequency counter
    // tracks) as another. Open it at https://ui.perfetto.dev or
    // chrome://tracing.
    trace::disable();
    let doc = chrome::merge(&[
        sink.to_json(),
        esched::sim::chrome_schedule_trace(&der.schedule),
    ]);
    let trace_path = std::env::temp_dir().join("esched-quickstart.trace.json");
    std::fs::write(&trace_path, doc.to_string_pretty()).expect("write trace");
    println!("Chrome trace written to {}", trace_path.display());
}
