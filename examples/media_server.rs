//! Domain scenario: a media server handling bursty decode jobs.
//!
//! Three waves of jobs arrive over the horizon; the third is tight.
//! The example shows how the DER-based allocator shares heavily
//! contended bursts, how much energy that saves over the even split, and
//! how many cores the Section VI.D sweep would actually power on.
//!
//! ```text
//! cargo run --example media_server
//! ```

use esched::core::{select_core_count, Method};
use esched::prelude::*;
use esched::sim::ascii_gantt;
use esched::workload::media_server_burst;

fn main() {
    let tasks = media_server_burst();
    let power = PolynomialPower::paper(3.0, 0.1);
    let cores = 4;

    println!(
        "media server burst: {} jobs, total work {:.1}, horizon [{:.0}, {:.0}]",
        tasks.len(),
        tasks.total_work(),
        tasks.horizon().start,
        tasks.horizon().end
    );

    let timeline = Timeline::build(&tasks);
    let heavy = timeline.heavy_indices(cores);
    println!(
        "{} subintervals, {} heavily overlapped on {cores} cores",
        timeline.len(),
        heavy.len()
    );

    let even = even_schedule(&tasks, cores, &power);
    let der = der_schedule(&tasks, cores, &power);
    let opt = optimal_energy(&tasks, cores, &power, &SolveOptions::default());
    println!(
        "energy: even = {:.3}, DER = {:.3}, optimal = {:.3}",
        even.final_energy, der.final_energy, opt.energy
    );
    println!(
        "DER saves {:.1}% over even allocation; gap to optimal {:.1}%",
        100.0 * (even.final_energy - der.final_energy) / even.final_energy,
        100.0 * (der.final_energy - opt.energy) / opt.energy
    );

    validate_schedule(&der.schedule, &tasks).assert_legal();
    let sim = simulate(&der.schedule, &tasks, &power);
    assert!(sim.is_clean());
    println!(
        "utilization = {:.2}, activations per core = {:?}",
        sim.utilization(),
        sim.activations
    );

    // How many cores should we even use? (Section VI.D)
    let choice = select_core_count(&tasks, 8, &power, Method::Der);
    println!("core-count sweep (DER):");
    for (m, e) in &choice.sweep {
        let marker = if *m == choice.best {
            "  <-- chosen"
        } else {
            ""
        };
        println!("  m = {m}: {e:.3}{marker}");
    }

    println!("\nDER schedule on {cores} cores:");
    let horizon = tasks.horizon();
    print!(
        "{}",
        ascii_gantt(&der.schedule, horizon.start, horizon.end, 72)
    );
}
