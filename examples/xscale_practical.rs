//! Domain scenario: running on a real processor's power table
//! (Intel XScale, Section VI.C).
//!
//! Fits the continuous model to the measured table, schedules a random
//! workload under the fitted model, quantizes the result to the
//! processor's five frequency levels, and reports energy and deadline
//! misses for both quantization policies.
//!
//! ```text
//! cargo run --example xscale_practical
//! ```

use esched::core::{quantize_schedule, QuantizePolicy};
use esched::opt::fit_power_curve;
use esched::prelude::*;
use esched::types::PowerModel;
use esched::workload::{xscale_discrete, XSCALE_TABLE};

fn main() {
    // 1. The measured table.
    let table = xscale_discrete();
    println!("Intel XScale operating points (MHz, mW):");
    for l in table.levels() {
        println!(
            "  {:>6.0} MHz  {:>6.0} mW  ({:.3} mJ/Mcycle)",
            l.freq,
            l.power,
            l.power / l.freq
        );
    }

    // 2. Fit p(f) = γ·f^α + p0 ourselves (the paper reports
    //    3.855e-6·f^2.867 + 63.58).
    let fit = fit_power_curve(table.levels(), (2.0, 3.5));
    println!(
        "\nfitted: p(f) = {:.3e}·f^{:.3} + {:.2}  (rss = {:.1})",
        fit.gamma, fit.alpha, fit.p0, fit.rss
    );
    let power = fit.into_model();
    for (f, p) in XSCALE_TABLE {
        println!(
            "  {f:>6.0} MHz: measured {p:>6.0}, fitted {:>7.1}",
            power.power(f)
        );
    }

    // 3. A random workload in the paper's XScale configuration.
    let mut gen = WorkloadGenerator::new(GeneratorConfig::xscale_default(), 2014);
    let tasks = gen.generate();
    println!("\nworkload: {} tasks, work in megacycles", tasks.len());

    // 4. Continuous schedule under the fitted model, then quantization.
    let der = der_schedule(&tasks, 4, &power);
    validate_schedule(&der.schedule, &tasks).assert_legal();
    println!("continuous S^F2 energy: {:.1} (mW·s)", der.final_energy);

    for policy in [QuantizePolicy::NextUp, QuantizePolicy::BestEfficiency] {
        let q = quantize_schedule(&der.schedule, &table, policy);
        println!(
            "quantized ({policy:?}): energy = {:.1}, misses = {:?}",
            q.energy, q.misses
        );
    }

    // 5. Compare against the continuous optimum.
    let opt = optimal_energy(&tasks, 4, &power, &SolveOptions::default());
    let q = quantize_schedule(&der.schedule, &table, QuantizePolicy::NextUp);
    println!(
        "\nNEC of quantized S^F2 vs continuous optimum: {:.4}",
        q.energy / opt.energy
    );
}
