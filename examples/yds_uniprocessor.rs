//! The YDS optimal uniprocessor schedule on the paper's introductory
//! example (Fig. 1-2), cross-checked against the convex program.
//!
//! ```text
//! cargo run --example yds_uniprocessor
//! ```

use esched::core::yds_schedule;
use esched::prelude::*;
use esched::sim::{ascii_gantt, task_summary};
use esched::workload::intro_three_tasks;

fn main() {
    let tasks = intro_three_tasks();
    let power = PolynomialPower::cubic();

    let yds = yds_schedule(&tasks, &power);
    println!(
        "YDS: {} rounds, per-task speeds = {:?}",
        yds.rounds,
        yds.speed
            .iter()
            .map(|f| (f * 100.0).round() / 100.0)
            .collect::<Vec<_>>()
    );
    println!("{}", ascii_gantt(&yds.schedule, 0.0, 12.0, 60));
    println!("{}", task_summary(&yds.schedule));
    println!("YDS energy: {:.4}", yds.energy);

    validate_schedule(&yds.schedule, &tasks).assert_legal();

    // YDS is provably optimal for p(f) = f^α on one core; the convex
    // program with m = 1 must agree.
    let opt = optimal_energy(&tasks, 1, &power, &SolveOptions::precise());
    println!("convex-program optimum (m = 1): {:.4}", opt.energy);
    assert!((yds.energy - opt.energy).abs() < 1e-3 * opt.energy);

    // On two cores the optimum is cheaper — parallel slack lowers
    // frequencies (the paper's Section II motivation).
    let power2 = PolynomialPower::paper(3.0, 0.01);
    let opt2 = optimal_energy(&tasks, 2, &power2, &SolveOptions::precise());
    println!(
        "two-core optimum with p(f) = f³ + 0.01: {:.4} (paper: {:.4})",
        opt2.energy,
        155.0 / 32.0 + 0.2
    );
}
