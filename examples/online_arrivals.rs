//! Non-clairvoyant operation: aperiodic tasks arrive unannounced and the
//! scheduler replans at every release — measuring the price of not
//! knowing the future.
//!
//! ```text
//! cargo run --example online_arrivals
//! ```

use esched::core::{der_schedule, optimal_energy, replan_der};
use esched::prelude::*;
use esched::sim::ascii_gantt;

fn main() {
    // A day-in-the-life arrival trace: a background job, then a burst, then
    // a late surprise with a tight deadline.
    let tasks = TaskSet::from_triples(&[
        (0.0, 50.0, 10.0), // background sweep, lazy
        (5.0, 25.0, 8.0),  // morning burst…
        (6.0, 28.0, 9.0),
        (7.0, 24.0, 6.0),
        (30.0, 36.0, 5.0), // afternoon surprise, tight
        (32.0, 48.0, 7.0), // follow-up work
    ]);
    let power = PolynomialPower::paper(3.0, 0.05);
    let cores = 2;

    // Clairvoyant: the offline DER schedule that knows everything at t=0.
    let offline = der_schedule(&tasks, cores, &power);
    validate_schedule(&offline.schedule, &tasks).assert_legal();

    // Non-clairvoyant: replan at every arrival.
    let online = replan_der(&tasks, cores, &power);
    validate_schedule(&online.schedule, &tasks).assert_legal();
    assert!(online.misses.is_empty());

    let opt = optimal_energy(&tasks, cores, &power, &SolveOptions::default());
    println!(
        "energy: optimal = {:.3}, offline F2 = {:.3}, replanned = {:.3}",
        opt.energy, offline.final_energy, online.energy
    );
    println!(
        "price of non-clairvoyance: {:.1}% over offline F2 ({} replans)",
        100.0 * (online.energy - offline.final_energy) / offline.final_energy,
        online.replans
    );
    println!(
        "peak frequency: offline {:.3} vs replanned {:.3}",
        offline
            .assignment
            .freq
            .iter()
            .cloned()
            .fold(0.0_f64, f64::max),
        online.peak_frequency
    );

    let horizon = tasks.horizon();
    println!("\noffline (clairvoyant) schedule:");
    print!(
        "{}",
        ascii_gantt(&offline.schedule, horizon.start, horizon.end, 72)
    );
    println!("replanned (non-clairvoyant) schedule:");
    print!(
        "{}",
        ascii_gantt(&online.schedule, horizon.start, horizon.end, 72)
    );

    // The simulator confirms the replanned schedule executes cleanly.
    let sim = simulate(&online.schedule, &tasks, &power);
    assert!(sim.is_clean());
    println!(
        "simulator: energy = {:.3}, clean = {}",
        sim.energy,
        sim.is_clean()
    );
}
