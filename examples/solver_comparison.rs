//! The five ways this workspace computes `E^OPT`, head to head on one
//! instance — with certificates.
//!
//! ```text
//! cargo run --release --example solver_comparison
//! ```

use esched::core::{analyze, optimal_energy_with, Solver};
use esched::opt::{kkt_report, EnergyProgram, SolveOptions};
use esched::prelude::*;
use std::time::Instant;

fn main() {
    let mut gen = WorkloadGenerator::new(GeneratorConfig::paper_default(), 7);
    let tasks = gen.generate();
    let power = PolynomialPower::paper(3.0, 0.1);
    let cores = 4;

    println!(
        "instance: {} tasks on {cores} cores, p(f) = f^3 + 0.1\n",
        tasks.len()
    );
    println!(
        "{:<20} {:>12} {:>10} {:>8} {:>10}",
        "solver", "E^OPT", "gap", "iters", "ms"
    );
    let solvers = [
        ("projected gradient", Solver::ProjectedGradient),
        ("FISTA", Solver::Fista),
        ("Frank-Wolfe", Solver::FrankWolfe),
        ("interior point", Solver::InteriorPoint),
        ("block descent", Solver::BlockDescent),
    ];
    let mut best: Option<(f64, Solver)> = None;
    for (name, solver) in solvers {
        let t0 = Instant::now();
        let sol = optimal_energy_with(&tasks, cores, &power, &SolveOptions::default(), solver);
        let ms = t0.elapsed().as_secs_f64() * 1e3;
        println!(
            "{name:<20} {:>12.6} {:>10.2e} {:>8} {:>10.2}",
            sol.energy, sol.gap, sol.iters, ms
        );
        validate_schedule(&sol.schedule, &tasks).assert_legal();
        if best.map(|(e, _)| sol.energy < e).unwrap_or(true) {
            best = Some((sol.energy, solver));
        }
    }

    // Independent certification of the best solution.
    let (energy, solver) = best.unwrap();
    let sol = optimal_energy_with(&tasks, cores, &power, &SolveOptions::default(), solver);
    let tl = Timeline::build(&tasks);
    let ep = EnergyProgram::new(&tasks, &tl, cores, power);
    // Reconstruct x from the schedule-extracted totals is lossy; certify
    // the solver's own iterate instead by re-solving precisely.
    let precise = optimal_energy_with(&tasks, cores, &power, &SolveOptions::precise(), solver);
    println!(
        "\nbest: {solver:?} at E = {energy:.6}; precise re-solve: {:.6}",
        precise.energy
    );
    let report = kkt_report(&ep, &ep.initial_point());
    println!(
        "for contrast, the naive even-allocation start point has duality gap {:.3}",
        report.duality_gap
    );

    // What the optimal schedule looks like, qualitatively.
    let q = analyze(&sol.schedule, &tasks, &power);
    println!(
        "optimal schedule: {} segments, {} migrations, utilization {:.2}, static fraction {:.1}%",
        sol.schedule.len(),
        q.migrations,
        q.utilization,
        100.0 * q.static_energy / q.energy
    );
}
