//! Scheduling a classical periodic task system with the aperiodic
//! machinery: expand jobs over one hyperperiod, run the DER heuristic,
//! and compare with the optimum and with frame-based scheduling.
//!
//! ```text
//! cargo run --example periodic_system
//! ```

use esched::core::{der_schedule, optimal_energy, quantize_schedule, QuantizePolicy};
use esched::prelude::*;
use esched::sim::ascii_gantt;
use esched::workload::{expand_periodic, frame_based, hyperperiod, xscale_discrete, PeriodicTask};

fn main() {
    // A 4-task implicit-deadline periodic system, total utilization 1.62.
    let system = [
        PeriodicTask::new(4.0, 1.2),
        PeriodicTask::new(6.0, 2.4),
        PeriodicTask::new(8.0, 3.2),
        PeriodicTask::new(12.0, 5.5).with_deadline(10.0),
    ];
    let h = hyperperiod(&system, 1.0).expect("integer periods");
    println!(
        "periodic system: {} tasks, hyperperiod {h}, utilization {:.2}",
        system.len(),
        system.iter().map(PeriodicTask::utilization).sum::<f64>()
    );

    let jobs = expand_periodic(&system, h);
    println!("expanded to {} jobs over [0, {h}]", jobs.len());

    let power = PolynomialPower::paper(3.0, 0.05);
    let cores = 2;
    let out = der_schedule(&jobs, cores, &power);
    validate_schedule(&out.schedule, &jobs).assert_legal();
    let opt = optimal_energy(&jobs, cores, &power, &SolveOptions::default());
    println!(
        "DER energy = {:.3}, optimal = {:.3}, NEC = {:.4}",
        out.final_energy,
        opt.energy,
        out.final_energy / opt.energy
    );

    let sim = simulate(&out.schedule, &jobs, &power);
    assert!(sim.is_clean());
    println!("utilization over the hyperperiod: {:.2}", sim.utilization());
    print!("{}", ascii_gantt(&out.schedule, 0.0, h, 72));

    // Frame-based comparison: the same total work forced into synchronized
    // frames is strictly more constrained, so it costs at least as much.
    let frame_jobs = frame_based(&[1.2, 2.4, 3.2], 4.0, 3);
    let frame_out = der_schedule(&frame_jobs, cores, &power);
    validate_schedule(&frame_out.schedule, &frame_jobs).assert_legal();
    println!(
        "\nframe-based variant ({} jobs): energy = {:.3}",
        frame_jobs.len(),
        frame_out.final_energy
    );

    // And on a real processor: quantize the periodic schedule to the
    // XScale levels (frequencies here are far below 150 MHz in 'model
    // units'; scale work into megacycles for a meaningful demo).
    let scaled = TaskSet::new(
        jobs.tasks()
            .iter()
            .map(|t| esched::types::Task::of(t.release, t.deadline, t.wcec * 400.0))
            .collect::<Vec<_>>(),
    )
    .unwrap();
    let xs_power = esched::workload::xscale_paper_fit();
    let xs_out = der_schedule(&scaled, cores, &xs_power);
    let q = quantize_schedule(&xs_out.schedule, &xscale_discrete(), QuantizePolicy::NextUp);
    println!(
        "XScale-scaled variant: quantized energy = {:.1} mW·s, misses = {:?}",
        q.energy, q.misses
    );
}
