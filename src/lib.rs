//! # esched
//!
//! Energy-aware DVFS scheduling for aperiodic tasks on multi-core
//! processors — a from-scratch Rust implementation of Li & Wu,
//! *"Energy-Aware Scheduling for Aperiodic Tasks on Multi-core
//! Processors"* (ICPP 2014).
//!
//! This umbrella crate re-exports the workspace's public API so examples
//! and downstream users can depend on a single crate:
//!
//! * [`types`] — tasks, power models, schedules, legality checking,
//! * [`subinterval`] — timeline decomposition and overlap analysis,
//! * [`opt`] — convex solvers for the optimal baseline `E^OPT`,
//! * [`core`] — the paper's scheduling algorithms (ideal case, even and
//!   DER-based allocation, YDS, discrete-frequency mode),
//! * [`sim`] — a discrete-event multicore simulator for executing and
//!   cross-checking schedules,
//! * [`workload`] — task-set generators and the Intel XScale processor
//!   configuration,
//! * [`engine`] — the parallel batch execution engine behind the
//!   [`prelude::ScheduleRequest`] → [`prelude::ScheduleOutcome`] API, plus
//!   [`prelude::OnlineEngine`] for streaming arrivals with incremental
//!   replanning.
//!
//! ## Quickstart
//!
//! ```
//! use esched::prelude::*;
//!
//! // Three tasks (release, deadline, work) on a 2-core processor with
//! // p(f) = f³ + 0.01 — the paper's Section II example.
//! let tasks = TaskSet::from_triples(&[
//!     (0.0, 12.0, 4.0),
//!     (2.0, 10.0, 2.0),
//!     (4.0, 8.0, 4.0),
//! ]);
//! let power = PolynomialPower::paper(3.0, 0.01);
//!
//! // One request through the engine runs the paper's headline heuristic
//! // (DER-based allocation, final frequency refinement), the convex
//! // E^OPT baseline, and a simulator cross-check.
//! let request = ScheduleRequest::new(tasks.clone(), 2, power).with_config(
//!     EngineConfig::new()
//!         .with_solver(SolverKind::default())
//!         .with_sim_verify(true),
//! );
//! let out = Engine::new().run(&request).expect("pipeline");
//! validate_schedule(&out.schedule, &tasks).assert_legal();
//! assert!(out.sim.unwrap().clean);
//! assert!(out.energy >= out.nec.unwrap().opt_energy - 1e-6);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use esched_core as core;
pub use esched_engine as engine;
pub use esched_obs as obs;
pub use esched_opt as opt;
pub use esched_sim as sim;
pub use esched_subinterval as subinterval;
pub use esched_types as types;
pub use esched_workload as workload;

/// One-stop imports for examples and applications.
pub mod prelude {
    pub use esched_core::{
        allocate, der_schedule, even_schedule, ideal_schedule, optimal_energy, yds_schedule,
        AllocRequest, DerStrategy, DiscreteOutcome, HeuristicOutcome, IdealSolution,
        OptimalSolution, Pool,
    };
    pub use esched_engine::{
        Algorithm, Engine, EngineConfig, OnlineEngine, OnlineError, OnlineEvent, ReplanReport,
        ScheduleOutcome, ScheduleRequest,
    };
    pub use esched_opt::{SolveOptions, SolveResult, SolverKind};
    pub use esched_sim::{simulate, SimReport};
    pub use esched_subinterval::Timeline;
    pub use esched_types::{
        validate_schedule, DiscretePower, PolynomialPower, PowerModel, Schedule, Segment, Task,
        TaskSet,
    };
    pub use esched_workload::{ArrivalLaw, GeneratorConfig, WorkloadGenerator, WorkloadSpec};
}
