//! Property tests for the timeline decomposition.

use esched_subinterval::{boundary_points, load_profile, min_feasible_frequency, Timeline};
use esched_types::{Task, TaskSet};
use proptest::prelude::*;

fn arb_task_set(max_tasks: usize) -> impl Strategy<Value = TaskSet> {
    prop::collection::vec((0.0_f64..40.0, 0.5_f64..30.0, 0.1_f64..15.0), 1..=max_tasks)
        .prop_map(|v| {
            TaskSet::new(
                v.into_iter()
                    .map(|(r, len, c)| Task::of(r, r + len, c))
                    .collect(),
            )
            .unwrap()
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn subintervals_partition_the_horizon(tasks in arb_task_set(12)) {
        let tl = Timeline::build(&tasks);
        let horizon = tasks.horizon();
        let total: f64 = tl.subintervals().iter().map(|s| s.delta()).sum();
        prop_assert!((total - horizon.length()).abs() < 1e-7 * (1.0 + horizon.length()));
        // Consecutive subintervals abut exactly.
        for w in tl.subintervals().windows(2) {
            prop_assert!((w[0].interval.end - w[1].interval.start).abs() < 1e-9);
        }
        prop_assert!((tl.subintervals()[0].interval.start - horizon.start).abs() < 1e-9);
        prop_assert!(
            (tl.subintervals().last().unwrap().interval.end - horizon.end).abs() < 1e-9
        );
    }

    #[test]
    fn spans_agree_with_window_coverage(tasks in arb_task_set(10)) {
        let tl = Timeline::build(&tasks);
        for (i, t) in tasks.iter() {
            let span = tl.span(i);
            prop_assert!(!span.is_empty(), "task {i} has an empty span");
            // Span endpoints align with the window.
            let first = tl.get(span.start);
            let last = tl.get(span.end - 1);
            prop_assert!((first.interval.start - t.release).abs() < 1e-9);
            prop_assert!((last.interval.end - t.deadline).abs() < 1e-9);
            // Availability matches span membership for every subinterval.
            for j in 0..tl.len() {
                let in_span = span.contains(&j);
                prop_assert_eq!(tl.available(i, j), in_span);
                let listed = tl.get(j).overlapping.contains(&i);
                prop_assert_eq!(listed, in_span);
            }
        }
    }

    #[test]
    fn overlap_counts_sum_to_variable_count(tasks in arb_task_set(10)) {
        let tl = Timeline::build(&tasks);
        let by_subinterval: usize = tl.subintervals().iter().map(|s| s.overlap_count()).sum();
        prop_assert_eq!(by_subinterval, tl.variable_count());
        prop_assert!(tl.peak_overlap() <= tasks.len());
    }

    #[test]
    fn boundaries_are_exactly_event_points(tasks in arb_task_set(10)) {
        let tl = Timeline::build(&tasks);
        prop_assert_eq!(tl.boundaries().to_vec(), boundary_points(&tasks));
        prop_assert_eq!(tl.len() + 1, tl.boundaries().len());
    }

    #[test]
    fn heavy_light_partition_is_total(tasks in arb_task_set(10), cores in 1_usize..6) {
        let tl = Timeline::build(&tasks);
        let mut all = tl.heavy_indices(cores);
        all.extend(tl.light_indices(cores));
        all.sort_unstable();
        prop_assert_eq!(all, (0..tl.len()).collect::<Vec<_>>());
        // More cores never create more heavy subintervals.
        prop_assert!(tl.heavy_indices(cores + 1).len() <= tl.heavy_indices(cores).len());
    }

    #[test]
    fn load_profile_density_bounds(tasks in arb_task_set(10)) {
        let tl = Timeline::build(&tasks);
        let lp = load_profile(&tasks, &tl);
        let total_intensity: f64 = tasks.iter().map(|(_, t)| t.intensity()).sum();
        for &d in &lp.density {
            prop_assert!(d >= -1e-12 && d <= total_intensity + 1e-9);
        }
        prop_assert_eq!(lp.density.len(), tl.len());
        prop_assert_eq!(lp.overlap.len(), tl.len());
    }

    #[test]
    fn min_feasible_frequency_dominates_every_task_intensity(
        tasks in arb_task_set(10),
        cores in 1_usize..5,
    ) {
        let f = min_feasible_frequency(&tasks, cores);
        for (_, t) in tasks.iter() {
            prop_assert!(f >= t.intensity() - 1e-9);
        }
        // Monotone in core count.
        prop_assert!(min_feasible_frequency(&tasks, cores + 1) <= f + 1e-12);
        // On one core it equals the YDS peak intensity.
        if cores == 1 {
            prop_assert!((f - tasks.peak_intensity()).abs() < 1e-9);
        }
    }
}
