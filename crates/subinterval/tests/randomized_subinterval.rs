//! Seeded randomized tests for the timeline decomposition.

use esched_obs::rng::ChaCha8;
use esched_subinterval::{boundary_points, load_profile, min_feasible_frequency, Timeline};
use esched_types::{Task, TaskSet};

const CASES: usize = 64;

fn arb_task_set(rng: &mut ChaCha8, max_tasks: usize) -> TaskSet {
    let n = rng.gen_range_usize(1, max_tasks + 1);
    TaskSet::new(
        (0..n)
            .map(|_| {
                let r = rng.gen_range_f64(0.0, 40.0);
                let len = rng.gen_range_f64(0.5, 30.0);
                let c = rng.gen_range_f64(0.1, 15.0);
                Task::of(r, r + len, c)
            })
            .collect(),
    )
    .unwrap()
}

#[test]
fn subintervals_partition_the_horizon() {
    let mut rng = ChaCha8::seed_from_u64(0x5b10_0001);
    for _ in 0..CASES {
        let tasks = arb_task_set(&mut rng, 12);
        let tl = Timeline::build(&tasks);
        let horizon = tasks.horizon();
        let total: f64 = tl.subintervals().iter().map(|s| s.delta()).sum();
        assert!((total - horizon.length()).abs() < 1e-7 * (1.0 + horizon.length()));
        // Consecutive subintervals abut exactly.
        for w in tl.subintervals().windows(2) {
            assert!((w[0].interval.end - w[1].interval.start).abs() < 1e-9);
        }
        assert!((tl.subintervals()[0].interval.start - horizon.start).abs() < 1e-9);
        assert!((tl.subintervals().last().unwrap().interval.end - horizon.end).abs() < 1e-9);
    }
}

#[test]
fn spans_agree_with_window_coverage() {
    let mut rng = ChaCha8::seed_from_u64(0x5b10_0002);
    for _ in 0..CASES {
        let tasks = arb_task_set(&mut rng, 10);
        let tl = Timeline::build(&tasks);
        for (i, t) in tasks.iter() {
            let span = tl.span(i);
            assert!(!span.is_empty(), "task {i} has an empty span");
            // Span endpoints align with the window.
            let first = tl.get(span.start);
            let last = tl.get(span.end - 1);
            assert!((first.interval.start - t.release).abs() < 1e-9);
            assert!((last.interval.end - t.deadline).abs() < 1e-9);
            // Availability matches span membership for every subinterval.
            for j in 0..tl.len() {
                let in_span = span.contains(&j);
                assert_eq!(tl.available(i, j), in_span);
                let listed = tl.get(j).overlapping.contains(&i);
                assert_eq!(listed, in_span);
            }
        }
    }
}

#[test]
fn overlap_counts_sum_to_variable_count() {
    let mut rng = ChaCha8::seed_from_u64(0x5b10_0003);
    for _ in 0..CASES {
        let tasks = arb_task_set(&mut rng, 10);
        let tl = Timeline::build(&tasks);
        let by_subinterval: usize = tl.subintervals().iter().map(|s| s.overlap_count()).sum();
        assert_eq!(by_subinterval, tl.variable_count());
        assert!(tl.peak_overlap() <= tasks.len());
    }
}

#[test]
fn boundaries_are_exactly_event_points() {
    let mut rng = ChaCha8::seed_from_u64(0x5b10_0004);
    for _ in 0..CASES {
        let tasks = arb_task_set(&mut rng, 10);
        let tl = Timeline::build(&tasks);
        assert_eq!(tl.boundaries().to_vec(), boundary_points(&tasks));
        assert_eq!(tl.len() + 1, tl.boundaries().len());
    }
}

#[test]
fn heavy_light_partition_is_total() {
    let mut rng = ChaCha8::seed_from_u64(0x5b10_0005);
    for _ in 0..CASES {
        let tasks = arb_task_set(&mut rng, 10);
        let cores = rng.gen_range_usize(1, 6);
        let tl = Timeline::build(&tasks);
        let mut all = tl.heavy_indices(cores);
        all.extend(tl.light_indices(cores));
        all.sort_unstable();
        assert_eq!(all, (0..tl.len()).collect::<Vec<_>>());
        // More cores never create more heavy subintervals.
        assert!(tl.heavy_indices(cores + 1).len() <= tl.heavy_indices(cores).len());
    }
}

#[test]
fn load_profile_density_bounds() {
    let mut rng = ChaCha8::seed_from_u64(0x5b10_0006);
    for _ in 0..CASES {
        let tasks = arb_task_set(&mut rng, 10);
        let tl = Timeline::build(&tasks);
        let lp = load_profile(&tasks, &tl);
        let total_intensity: f64 = tasks.iter().map(|(_, t)| t.intensity()).sum();
        for &d in &lp.density {
            assert!(d >= -1e-12 && d <= total_intensity + 1e-9);
        }
        assert_eq!(lp.density.len(), tl.len());
        assert_eq!(lp.overlap.len(), tl.len());
    }
}

#[test]
fn min_feasible_frequency_dominates_every_task_intensity() {
    let mut rng = ChaCha8::seed_from_u64(0x5b10_0007);
    for _ in 0..CASES {
        let tasks = arb_task_set(&mut rng, 10);
        let cores = rng.gen_range_usize(1, 5);
        let f = min_feasible_frequency(&tasks, cores);
        for (_, t) in tasks.iter() {
            assert!(f >= t.intensity() - 1e-9);
        }
        // Monotone in core count.
        assert!(min_feasible_frequency(&tasks, cores + 1) <= f + 1e-12);
        // On one core it equals the YDS peak intensity.
        if cores == 1 {
            assert!((f - tasks.peak_intensity()).abs() < 1e-9);
        }
    }
}
