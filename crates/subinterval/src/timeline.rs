//! The [`Timeline`]: a task set's horizon decomposed into subintervals,
//! with per-subinterval overlap information.
//!
//! This is the central data structure of the paper's approach. Everything
//! downstream — even allocation, DER-based allocation, the convex program's
//! variable layout — is indexed by `(task, subinterval)` pairs taken from a
//! `Timeline`.

use crate::boundaries::covering_range;
use esched_types::task::{TaskId, TaskSet};
use esched_types::time::Interval;

/// One subinterval `[t_j, t_{j+1}]` together with its overlapping tasks.
#[derive(Debug, Clone, PartialEq)]
pub struct Subinterval {
    /// Index `j` in the timeline.
    pub index: usize,
    /// The interval itself.
    pub interval: Interval,
    /// Ids of tasks whose window fully covers this subinterval, ascending.
    /// (The paper's *overlapping tasks*, `n_j = overlapping.len()`.)
    pub overlapping: Vec<TaskId>,
}

impl Subinterval {
    /// Subinterval length `Δ_j = t_{j+1} − t_j`.
    #[inline]
    pub fn delta(&self) -> f64 {
        self.interval.length()
    }

    /// Number of overlapping tasks `n_j`.
    #[inline]
    pub fn overlap_count(&self) -> usize {
        self.overlapping.len()
    }

    /// Is this subinterval *heavily overlapped* for `m` cores
    /// (`n_j > m`)?
    #[inline]
    pub fn is_heavy(&self, cores: usize) -> bool {
        self.overlap_count() > cores
    }
}

/// The full decomposition of a task set's horizon.
#[derive(Debug, Clone, PartialEq)]
pub struct Timeline {
    boundaries: Vec<f64>,
    subintervals: Vec<Subinterval>,
    /// For each task, the contiguous range of subinterval indices its
    /// window covers (`start..end` into `subintervals`).
    spans: Vec<(usize, usize)>,
}

/// Reusable buffers for [`Timeline::build_with`].
///
/// A timeline build is the first allocation of every per-instance pipeline
/// run: a boundary vector, a subinterval vector, and one overlap vector
/// per subinterval. Batch executors (the `esched-engine` workers) keep one
/// scratch per worker, build each instance's timeline out of it, and
/// [`recycle`](TimelineScratch::recycle) the timeline when the instance is
/// done — so after the first few instances the build allocates nothing.
#[derive(Debug, Default)]
pub struct TimelineScratch {
    boundaries: Vec<f64>,
    subintervals: Vec<Subinterval>,
    spans: Vec<(usize, usize)>,
}

impl TimelineScratch {
    /// Empty scratch (the first build through it allocates normally).
    pub fn new() -> Self {
        Self::default()
    }

    /// Take a finished [`Timeline`] apart and keep its buffers for the
    /// next [`Timeline::build_with`] call.
    pub fn recycle(&mut self, timeline: Timeline) {
        self.boundaries = timeline.boundaries;
        self.subintervals = timeline.subintervals;
        self.spans = timeline.spans;
    }
}

impl Timeline {
    /// Decompose `tasks` into subintervals and compute overlap sets.
    ///
    /// Runs in `O(n log n + n·N)` for `n` tasks and `N ≤ 2n` boundaries.
    ///
    /// # Examples
    ///
    /// ```
    /// use esched_subinterval::Timeline;
    /// use esched_types::TaskSet;
    ///
    /// let tasks = TaskSet::from_triples(&[
    ///     (0.0, 12.0, 4.0), (2.0, 10.0, 2.0), (4.0, 8.0, 4.0),
    /// ]);
    /// let tl = Timeline::build(&tasks);
    /// assert_eq!(tl.len(), 5);
    /// // On 2 cores, only [4, 8] (all three tasks ready) is heavy.
    /// assert_eq!(tl.heavy_indices(2), vec![2]);
    /// ```
    pub fn build(tasks: &TaskSet) -> Self {
        Self::build_with(tasks, &mut TimelineScratch::new())
    }

    /// [`Timeline::build`] reusing the buffers held by `scratch`.
    ///
    /// The returned timeline owns its storage as usual; hand it back via
    /// [`TimelineScratch::recycle`] when the instance is finished to make
    /// the next build through the same scratch allocation-free.
    pub fn build_with(tasks: &TaskSet, scratch: &mut TimelineScratch) -> Self {
        let _span = esched_obs::span!(
            esched_obs::Level::Debug,
            "timeline_build",
            n_tasks = tasks.len()
        );
        let mut boundaries = std::mem::take(&mut scratch.boundaries);
        tasks.event_points_into(&mut boundaries);
        let n_subs = boundaries.len().saturating_sub(1);
        let mut subintervals = std::mem::take(&mut scratch.subintervals);
        // Reuse surviving subintervals (and their overlap vectors) in
        // place; only the tail beyond the recycled length allocates.
        subintervals.truncate(n_subs);
        for (index, sub) in subintervals.iter_mut().enumerate() {
            sub.index = index;
            sub.interval = Interval::new(boundaries[index], boundaries[index + 1]);
            sub.overlapping.clear();
        }
        for index in subintervals.len()..n_subs {
            subintervals.push(Subinterval {
                index,
                interval: Interval::new(boundaries[index], boundaries[index + 1]),
                overlapping: Vec::new(),
            });
        }
        let mut spans = std::mem::take(&mut scratch.spans);
        spans.clear();
        spans.reserve(tasks.len());
        for (id, t) in tasks.iter() {
            let range = covering_range(&boundaries, t.release, t.deadline);
            spans.push((range.start, range.end));
            for j in range {
                subintervals[j].overlapping.push(id);
            }
        }
        esched_obs::metric_counter!("esched.subinterval.timeline_builds").inc();
        esched_obs::metric_histogram!("esched.subinterval.subintervals_per_build")
            .record(subintervals.len() as u64);
        Self {
            boundaries,
            subintervals,
            spans,
        }
    }

    /// The boundary points `t_1 … t_N`.
    pub fn boundaries(&self) -> &[f64] {
        &self.boundaries
    }

    /// All subintervals, in time order.
    pub fn subintervals(&self) -> &[Subinterval] {
        &self.subintervals
    }

    /// Number of subintervals `N − 1`.
    pub fn len(&self) -> usize {
        self.subintervals.len()
    }

    /// True when there are no subintervals (impossible for a validated task
    /// set; kept for API completeness).
    pub fn is_empty(&self) -> bool {
        self.subintervals.is_empty()
    }

    /// Subinterval by index.
    pub fn get(&self, j: usize) -> &Subinterval {
        &self.subintervals[j]
    }

    /// `Δ_j` of subinterval `j`.
    pub fn delta(&self, j: usize) -> f64 {
        self.subintervals[j].delta()
    }

    /// The contiguous subinterval index range covered by task `i`'s window.
    pub fn span(&self, task: TaskId) -> std::ops::Range<usize> {
        let (a, b) = self.spans[task];
        a..b
    }

    /// Does task `i`'s window cover subinterval `j`? (The availability
    /// predicate behind the box constraints `0 ≤ x_{i,j} ≤ Δ_j`.)
    pub fn available(&self, task: TaskId, j: usize) -> bool {
        let (a, b) = self.spans[task];
        (a..b).contains(&j)
    }

    /// Indices of heavily overlapped subintervals for `m` cores.
    pub fn heavy_indices(&self, cores: usize) -> Vec<usize> {
        self.subintervals
            .iter()
            .filter(|s| s.is_heavy(cores))
            .map(|s| s.index)
            .collect()
    }

    /// Indices of lightly overlapped subintervals for `m` cores.
    pub fn light_indices(&self, cores: usize) -> Vec<usize> {
        self.subintervals
            .iter()
            .filter(|s| !s.is_heavy(cores))
            .map(|s| s.index)
            .collect()
    }

    /// Maximum overlap count over all subintervals (`max_j n_j`) — bounds
    /// the evenly-allocating method's approximation factor
    /// `(n_max/m)^{α−1}`.
    pub fn peak_overlap(&self) -> usize {
        self.subintervals
            .iter()
            .map(Subinterval::overlap_count)
            .max()
            .unwrap_or(0)
    }

    /// The number of (task, subinterval) pairs with availability — the
    /// variable count of the reformulated convex program.
    pub fn variable_count(&self) -> usize {
        self.spans.iter().map(|(a, b)| b - a).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use esched_types::task::TaskSet;

    fn vd_example() -> TaskSet {
        TaskSet::from_triples(&[
            (0.0, 10.0, 8.0),
            (2.0, 18.0, 14.0),
            (4.0, 16.0, 8.0),
            (6.0, 14.0, 4.0),
            (8.0, 20.0, 10.0),
            (12.0, 22.0, 6.0),
        ])
    }

    #[test]
    fn vd_example_heavy_subintervals_are_8_10_and_12_14() {
        // The paper: on a quad-core only [8,10] and [12,14] are heavy.
        let tl = Timeline::build(&vd_example());
        assert_eq!(tl.len(), 11);
        let heavy = tl.heavy_indices(4);
        assert_eq!(heavy.len(), 2);
        let h0 = tl.get(heavy[0]);
        let h1 = tl.get(heavy[1]);
        assert_eq!((h0.interval.start, h0.interval.end), (8.0, 10.0));
        assert_eq!((h1.interval.start, h1.interval.end), (12.0, 14.0));
        // Five overlapping tasks in each.
        assert_eq!(h0.overlapping, vec![0, 1, 2, 3, 4]);
        assert_eq!(h1.overlapping, vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn light_indices_complement_heavy() {
        let tl = Timeline::build(&vd_example());
        let mut all = tl.heavy_indices(4);
        all.extend(tl.light_indices(4));
        all.sort_unstable();
        assert_eq!(all, (0..11).collect::<Vec<_>>());
    }

    #[test]
    fn spans_and_availability() {
        let tl = Timeline::build(&vd_example());
        // τ0 = (0, 10): subintervals 0..5.
        assert_eq!(tl.span(0), 0..5);
        assert!(tl.available(0, 0));
        assert!(tl.available(0, 4));
        assert!(!tl.available(0, 5));
        // τ5 = (12, 22): subintervals 6..11.
        assert_eq!(tl.span(5), 6..11);
        assert!(!tl.available(5, 5));
        assert!(tl.available(5, 10));
    }

    #[test]
    fn peak_overlap_and_variable_count() {
        let tl = Timeline::build(&vd_example());
        assert_eq!(tl.peak_overlap(), 5);
        // Spans: 5 + 8 + 6 + 4 + 6 + 5 = 34 variables.
        assert_eq!(tl.variable_count(), 34);
    }

    #[test]
    fn single_task_timeline() {
        let ts = TaskSet::from_triples(&[(1.0, 5.0, 2.0)]);
        let tl = Timeline::build(&ts);
        assert_eq!(tl.len(), 1);
        assert_eq!(tl.get(0).overlapping, vec![0]);
        assert!(!tl.get(0).is_heavy(1));
        assert_eq!(tl.heavy_indices(1), Vec::<usize>::new());
    }

    #[test]
    fn heavy_definition_is_strictly_greater() {
        // Two tasks overlapping, two cores: n_j == m is *light*.
        let ts = TaskSet::from_triples(&[(0.0, 4.0, 1.0), (0.0, 4.0, 1.0)]);
        let tl = Timeline::build(&ts);
        assert!(!tl.get(0).is_heavy(2));
        assert!(tl.get(0).is_heavy(1));
    }

    #[test]
    fn disjoint_windows_never_overlap() {
        let ts = TaskSet::from_triples(&[(0.0, 2.0, 1.0), (2.0, 4.0, 1.0), (4.0, 6.0, 1.0)]);
        let tl = Timeline::build(&ts);
        assert_eq!(tl.len(), 3);
        for j in 0..3 {
            assert_eq!(tl.get(j).overlapping, vec![j]);
        }
        assert_eq!(tl.peak_overlap(), 1);
    }

    #[test]
    fn intro_example_timeline() {
        // Fig. 1(a) tasks on 2 cores: only [4, 8] is heavy.
        let ts = TaskSet::from_triples(&[(0.0, 12.0, 4.0), (2.0, 10.0, 2.0), (4.0, 8.0, 4.0)]);
        let tl = Timeline::build(&ts);
        assert_eq!(tl.len(), 5);
        assert_eq!(tl.heavy_indices(2), vec![2]);
        let h = tl.get(2);
        assert_eq!((h.interval.start, h.interval.end), (4.0, 8.0));
        assert_eq!(h.overlapping, vec![0, 1, 2]);
    }
}
