//! The [`Timeline`]: a task set's horizon decomposed into subintervals,
//! with per-subinterval overlap information.
//!
//! This is the central data structure of the paper's approach. Everything
//! downstream — even allocation, DER-based allocation, the convex program's
//! variable layout — is indexed by `(task, subinterval)` pairs taken from a
//! `Timeline`.

use crate::boundaries::covering_range;
use esched_types::task::{TaskId, TaskSet};
use esched_types::time::Interval;

/// One subinterval `[t_j, t_{j+1}]` together with its overlapping tasks.
#[derive(Debug, Clone, PartialEq)]
pub struct Subinterval {
    /// Index `j` in the timeline.
    pub index: usize,
    /// The interval itself.
    pub interval: Interval,
    /// Ids of tasks whose window fully covers this subinterval, ascending.
    /// (The paper's *overlapping tasks*, `n_j = overlapping.len()`.)
    pub overlapping: Vec<TaskId>,
}

impl Subinterval {
    /// Subinterval length `Δ_j = t_{j+1} − t_j`.
    #[inline]
    pub fn delta(&self) -> f64 {
        self.interval.length()
    }

    /// Number of overlapping tasks `n_j`.
    #[inline]
    pub fn overlap_count(&self) -> usize {
        self.overlapping.len()
    }

    /// Is this subinterval *heavily overlapped* for `m` cores
    /// (`n_j > m`)?
    #[inline]
    pub fn is_heavy(&self, cores: usize) -> bool {
        self.overlap_count() > cores
    }
}

/// The full decomposition of a task set's horizon.
#[derive(Debug, Clone, PartialEq)]
pub struct Timeline {
    boundaries: Vec<f64>,
    subintervals: Vec<Subinterval>,
    /// For each task, the contiguous range of subinterval indices its
    /// window covers (`start..end` into `subintervals`).
    spans: Vec<(usize, usize)>,
}

/// Reusable buffers for [`Timeline::build_with`].
///
/// A timeline build is the first allocation of every per-instance pipeline
/// run: a boundary vector, a subinterval vector, and one overlap vector
/// per subinterval. Batch executors (the `esched-engine` workers) keep one
/// scratch per worker, build each instance's timeline out of it, and
/// [`recycle`](TimelineScratch::recycle) the timeline when the instance is
/// done — so after the first few instances the build allocates nothing.
#[derive(Debug, Default)]
pub struct TimelineScratch {
    boundaries: Vec<f64>,
    subintervals: Vec<Subinterval>,
    spans: Vec<(usize, usize)>,
    /// Sweep-line state: the tasks active in the current subinterval,
    /// id-ascending.
    active: Vec<TaskId>,
    /// Double buffer for the per-boundary active-set merge.
    active_next: Vec<TaskId>,
    /// CSR offsets of the per-boundary release buckets
    /// (`add_ids[add_offsets[j]..add_offsets[j+1]]` = tasks whose span
    /// starts at subinterval `j`).
    add_offsets: Vec<usize>,
    /// CSR payload of the release buckets, id-ascending per bucket.
    add_ids: Vec<TaskId>,
}

impl TimelineScratch {
    /// Empty scratch (the first build through it allocates normally).
    pub fn new() -> Self {
        Self::default()
    }

    /// Take a finished [`Timeline`] apart and keep its buffers for the
    /// next [`Timeline::build_with`] call.
    pub fn recycle(&mut self, timeline: Timeline) {
        self.boundaries = timeline.boundaries;
        self.subintervals = timeline.subintervals;
        self.spans = timeline.spans;
    }
}

impl Timeline {
    /// Decompose `tasks` into subintervals and compute overlap sets.
    ///
    /// Runs in `O(n log n + n·N)` for `n` tasks and `N ≤ 2n` boundaries.
    ///
    /// # Examples
    ///
    /// ```
    /// use esched_subinterval::Timeline;
    /// use esched_types::TaskSet;
    ///
    /// let tasks = TaskSet::from_triples(&[
    ///     (0.0, 12.0, 4.0), (2.0, 10.0, 2.0), (4.0, 8.0, 4.0),
    /// ]);
    /// let tl = Timeline::build(&tasks);
    /// assert_eq!(tl.len(), 5);
    /// // On 2 cores, only [4, 8] (all three tasks ready) is heavy.
    /// assert_eq!(tl.heavy_indices(2), vec![2]);
    /// ```
    pub fn build(tasks: &TaskSet) -> Self {
        Self::build_with(tasks, &mut TimelineScratch::new())
    }

    /// [`Timeline::build`] reusing the buffers held by `scratch`.
    ///
    /// The returned timeline owns its storage as usual; hand it back via
    /// [`TimelineScratch::recycle`] when the instance is finished to make
    /// the next build through the same scratch allocation-free.
    pub fn build_with(tasks: &TaskSet, scratch: &mut TimelineScratch) -> Self {
        let _span = esched_obs::span!(
            esched_obs::Level::Debug,
            "timeline_build",
            n_tasks = tasks.len()
        );
        let mut boundaries = std::mem::take(&mut scratch.boundaries);
        tasks.event_points_into(&mut boundaries);
        let n_subs = boundaries.len().saturating_sub(1);
        let mut subintervals = std::mem::take(&mut scratch.subintervals);
        // Reuse surviving subintervals (and their overlap vectors) in
        // place; only the tail beyond the recycled length allocates.
        subintervals.truncate(n_subs);
        for (index, sub) in subintervals.iter_mut().enumerate() {
            sub.index = index;
            sub.interval = Interval::new(boundaries[index], boundaries[index + 1]);
            sub.overlapping.clear();
        }
        for index in subintervals.len()..n_subs {
            subintervals.push(Subinterval {
                index,
                interval: Interval::new(boundaries[index], boundaries[index + 1]),
                overlapping: Vec::new(),
            });
        }
        let mut spans = std::mem::take(&mut scratch.spans);
        spans.clear();
        spans.reserve(tasks.len());
        for (_, t) in tasks.iter() {
            let range = covering_range(&boundaries, t.release, t.deadline);
            spans.push((range.start, range.end));
        }
        // Sweep the boundaries left to right, maintaining the id-sorted
        // active set by delta encoding: at subinterval `j`, drop the tasks
        // whose span ends at `j` and merge in those whose span starts
        // there. Each subinterval's overlap list is then one bulk copy, so
        // the build is output-sized (`O(n log n + Σ_j n_j)`) instead of
        // re-scanning the boundary list per task.
        let add_offsets = &mut scratch.add_offsets;
        add_offsets.clear();
        add_offsets.resize(n_subs + 2, 0);
        // Tasks with an empty span (both endpoints collapsed onto one
        // boundary) cover no subinterval and must stay out of the add
        // buckets: the removal test below only fires for tasks that were
        // active in a *previous* subinterval, so an empty-span task merged
        // in at `a` would never be dropped again.
        for &(a, b) in spans.iter() {
            if a < b {
                add_offsets[a + 2] += 1;
            }
        }
        for k in 2..add_offsets.len() {
            add_offsets[k] += add_offsets[k - 1];
        }
        // `add_offsets[j+1]` now starts bucket `j`; the fill below advances
        // it to the bucket's end, restoring the canonical CSR offsets
        // shifted once — tasks arrive in id order, so buckets stay sorted.
        let add_ids = &mut scratch.add_ids;
        add_ids.clear();
        add_ids.resize(tasks.len(), 0);
        for (id, &(a, b)) in spans.iter().enumerate() {
            if a < b {
                add_ids[add_offsets[a + 1]] = id;
                add_offsets[a + 1] += 1;
            }
        }
        let active = &mut scratch.active;
        let next = &mut scratch.active_next;
        active.clear();
        for (j, sub) in subintervals.iter_mut().enumerate() {
            let adds = &add_ids[add_offsets[j]..add_offsets[j + 1]];
            next.clear();
            let mut add_it = adds.iter().peekable();
            for &id in active.iter() {
                if spans[id].1 == j {
                    continue; // window ended at this boundary
                }
                while let Some(&&a) = add_it.peek() {
                    if a < id {
                        next.push(a);
                        add_it.next();
                    } else {
                        break;
                    }
                }
                next.push(id);
            }
            next.extend(add_it);
            std::mem::swap(active, next);
            sub.overlapping.extend_from_slice(active);
        }
        esched_obs::metric_counter!("esched.subinterval.timeline_builds").inc();
        esched_obs::metric_histogram!("esched.subinterval.subintervals_per_build")
            .record(subintervals.len() as u64);
        Self {
            boundaries,
            subintervals,
            spans,
        }
    }

    /// Update this timeline after a single task's window was shifted,
    /// reusing the existing decomposition when possible.
    ///
    /// `tasks` must be the *updated* task set (same length, same ids) in
    /// which only `task`'s release/deadline differ from the set this
    /// timeline was built from. When the new window endpoints are
    /// *bitwise* equal to existing boundary points and the old endpoints
    /// are still bitwise event points of some task, the boundary set is
    /// provably unchanged and only the overlap sets over the symmetric
    /// difference of the old and new spans need touching —
    /// `O(n + k log n_j)` instead of a full rebuild. Otherwise this falls
    /// back to [`Timeline::build`].
    ///
    /// Bitwise (not tolerant) equality is load-bearing: an endpoint that
    /// is merely approx-equal to a boundary can change which
    /// representative value the full build's dedup keeps, so patching in
    /// place would diverge from [`Timeline::build`] by up to the
    /// comparison tolerance. Near-collapsed windows whose endpoints both
    /// land on the same boundary (`a == b`) also fall back.
    ///
    /// Returns `true` when the timeline was patched in place, `false` when
    /// it fell back to a full rebuild (the result is correct either way).
    pub fn rebuild_shifted(&mut self, tasks: &TaskSet, task: TaskId) -> bool {
        let t = tasks.get(task);
        let (new_a, new_b) = match (
            crate::boundaries::locate_boundary(&self.boundaries, t.release),
            crate::boundaries::locate_boundary(&self.boundaries, t.deadline),
        ) {
            (Some(a), Some(b))
                if a < b && self.boundaries[a] == t.release && self.boundaries[b] == t.deadline =>
            {
                (a, b)
            }
            _ => {
                *self = Timeline::build(tasks);
                return false;
            }
        };
        let (old_a, old_b) = self.spans[task];
        // The old endpoints stay boundaries only if some task in the
        // updated set still has an event point with exactly that value;
        // otherwise the decomposition itself changes and we rebuild. An
        // approx-equal survivor is not enough: the full build would keep
        // the survivor's value as the representative, not ours.
        let anchored = |val: f64| {
            tasks
                .iter()
                .any(|(_, other)| other.release == val || other.deadline == val)
        };
        if !(anchored(self.boundaries[old_a]) && anchored(self.boundaries[old_b])) {
            *self = Timeline::build(tasks);
            return false;
        }
        for j in old_a..old_b {
            if !(new_a..new_b).contains(&j) {
                let ov = &mut self.subintervals[j].overlapping;
                if let Ok(pos) = ov.binary_search(&task) {
                    ov.remove(pos);
                }
            }
        }
        for j in new_a..new_b {
            if !(old_a..old_b).contains(&j) {
                let ov = &mut self.subintervals[j].overlapping;
                if let Err(pos) = ov.binary_search(&task) {
                    ov.insert(pos, task);
                }
            }
        }
        self.spans[task] = (new_a, new_b);
        true
    }

    /// Update this timeline after a new task arrived, reusing the existing
    /// decomposition when possible.
    ///
    /// `tasks` must be the updated task set in which `task` is the *last*
    /// id and every other task is unchanged from the set this timeline was
    /// built from. Each new endpoint is handled in one of three ways:
    ///
    /// * bitwise equal to an existing boundary — nothing to do;
    /// * farther than the comparison tolerance from both neighboring
    ///   boundaries — a *clean insert*: the enclosing subinterval is split
    ///   (or a gap subinterval is prepended/appended beyond the current
    ///   horizon) and every span index above the split shifts by one;
    /// * approx- but not bitwise-equal to a boundary — the full build's
    ///   dedup could pick a different representative or cascade, so we
    ///   fall back to [`Timeline::build`].
    ///
    /// In the first two cases the result is bitwise identical to a full
    /// rebuild: an exact duplicate never changes the dedup's kept set, and
    /// a clean insert adds exactly one kept value without re-deciding any
    /// neighbor (dedup keeps a value iff it is non-approx to the previous
    /// *kept* value, which the tolerance check on both neighbors
    /// preserves).
    ///
    /// Returns `true` when the timeline was patched in place, `false` when
    /// it fell back to a full rebuild (the result is correct either way).
    pub fn rebuild_inserted(&mut self, tasks: &TaskSet, task: TaskId) -> bool {
        assert_eq!(
            task + 1,
            tasks.len(),
            "rebuild_inserted expects the arriving task to be the last id"
        );
        assert_eq!(
            self.spans.len() + 1,
            tasks.len(),
            "rebuild_inserted expects exactly one new task"
        );
        let t = tasks.get(task);
        for val in [t.release, t.deadline] {
            if !self.insert_boundary(val) {
                *self = Timeline::build(tasks);
                return false;
            }
        }
        let locate = |points: &[f64], v: f64| {
            points
                .binary_search_by(|p| p.partial_cmp(&v).expect("boundaries are finite"))
                .expect("endpoint was just inserted or matched bitwise")
        };
        let a = locate(&self.boundaries, t.release);
        let b = locate(&self.boundaries, t.deadline);
        debug_assert!(a < b, "validated window spans at least one subinterval");
        for sub in &mut self.subintervals[a..b] {
            // The arriving task has the largest id, so it always lands at
            // the tail of the id-ascending overlap lists.
            debug_assert!(sub.overlapping.last().is_none_or(|&last| last < task));
            sub.overlapping.push(task);
        }
        self.spans.push((a, b));
        true
    }

    /// Splice boundary value `x` into the decomposition. Returns `false`
    /// when `x` is approx- but not bitwise-equal to an existing boundary,
    /// i.e. when only a full rebuild reproduces [`Timeline::build`].
    fn insert_boundary(&mut self, x: f64) -> bool {
        let idx = match self
            .boundaries
            .binary_search_by(|p| p.partial_cmp(&x).expect("boundaries are finite"))
        {
            Ok(_) => return true,
            Err(idx) => idx,
        };
        let near = |k: usize| esched_types::time::approx_eq(self.boundaries[k], x);
        if (idx > 0 && near(idx - 1)) || (idx < self.boundaries.len() && near(idx)) {
            return false;
        }
        self.boundaries.insert(idx, x);
        if idx == 0 {
            // New earliest event point: a gap subinterval covered by no
            // existing task precedes the old horizon.
            self.subintervals.insert(
                0,
                Subinterval {
                    index: 0,
                    interval: Interval::new(x, self.boundaries[1]),
                    overlapping: Vec::new(),
                },
            );
            for (a, b) in self.spans.iter_mut() {
                *a += 1;
                *b += 1;
            }
        } else if idx == self.boundaries.len() - 1 {
            // New latest event point: append a gap subinterval.
            self.subintervals.push(Subinterval {
                index: idx - 1,
                interval: Interval::new(self.boundaries[idx - 1], x),
                overlapping: Vec::new(),
            });
        } else {
            // Split subinterval `idx - 1` at `x`; both halves keep the
            // overlap set of the original (no window starts or ends at a
            // non-boundary point).
            let k = idx - 1;
            let right_end = self.subintervals[k].interval.end;
            let overlapping = self.subintervals[k].overlapping.clone();
            self.subintervals[k].interval = Interval::new(self.subintervals[k].interval.start, x);
            self.subintervals.insert(
                k + 1,
                Subinterval {
                    index: k + 1,
                    interval: Interval::new(x, right_end),
                    overlapping,
                },
            );
            for (a, b) in self.spans.iter_mut() {
                if *a > k {
                    *a += 1;
                }
                if *b > k {
                    *b += 1;
                }
            }
        }
        for (index, sub) in self.subintervals.iter_mut().enumerate() {
            sub.index = index;
        }
        true
    }

    /// The boundary points `t_1 … t_N`.
    pub fn boundaries(&self) -> &[f64] {
        &self.boundaries
    }

    /// All subintervals, in time order.
    pub fn subintervals(&self) -> &[Subinterval] {
        &self.subintervals
    }

    /// Number of subintervals `N − 1`.
    pub fn len(&self) -> usize {
        self.subintervals.len()
    }

    /// True when there are no subintervals (impossible for a validated task
    /// set; kept for API completeness).
    pub fn is_empty(&self) -> bool {
        self.subintervals.is_empty()
    }

    /// Subinterval by index.
    pub fn get(&self, j: usize) -> &Subinterval {
        &self.subintervals[j]
    }

    /// `Δ_j` of subinterval `j`.
    pub fn delta(&self, j: usize) -> f64 {
        self.subintervals[j].delta()
    }

    /// The contiguous subinterval index range covered by task `i`'s window.
    pub fn span(&self, task: TaskId) -> std::ops::Range<usize> {
        let (a, b) = self.spans[task];
        a..b
    }

    /// Does task `i`'s window cover subinterval `j`? (The availability
    /// predicate behind the box constraints `0 ≤ x_{i,j} ≤ Δ_j`.)
    pub fn available(&self, task: TaskId, j: usize) -> bool {
        let (a, b) = self.spans[task];
        (a..b).contains(&j)
    }

    /// Indices of heavily overlapped subintervals for `m` cores.
    ///
    /// Allocates; hot paths should use [`Timeline::heavy_iter`].
    pub fn heavy_indices(&self, cores: usize) -> Vec<usize> {
        self.heavy_iter(cores).collect()
    }

    /// Indices of lightly overlapped subintervals for `m` cores.
    ///
    /// Allocates; hot paths should use [`Timeline::light_iter`].
    pub fn light_indices(&self, cores: usize) -> Vec<usize> {
        self.light_iter(cores).collect()
    }

    /// Iterate the indices of heavily overlapped subintervals for `m`
    /// cores, without allocating.
    pub fn heavy_iter(&self, cores: usize) -> impl Iterator<Item = usize> + '_ {
        self.subintervals
            .iter()
            .filter(move |s| s.is_heavy(cores))
            .map(|s| s.index)
    }

    /// Iterate the indices of lightly overlapped subintervals for `m`
    /// cores, without allocating.
    pub fn light_iter(&self, cores: usize) -> impl Iterator<Item = usize> + '_ {
        self.subintervals
            .iter()
            .filter(move |s| !s.is_heavy(cores))
            .map(|s| s.index)
    }

    /// Maximum overlap count over all subintervals (`max_j n_j`) — bounds
    /// the evenly-allocating method's approximation factor
    /// `(n_max/m)^{α−1}`.
    pub fn peak_overlap(&self) -> usize {
        self.subintervals
            .iter()
            .map(Subinterval::overlap_count)
            .max()
            .unwrap_or(0)
    }

    /// The number of (task, subinterval) pairs with availability — the
    /// variable count of the reformulated convex program.
    pub fn variable_count(&self) -> usize {
        self.spans.iter().map(|(a, b)| b - a).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use esched_types::task::TaskSet;

    fn vd_example() -> TaskSet {
        TaskSet::from_triples(&[
            (0.0, 10.0, 8.0),
            (2.0, 18.0, 14.0),
            (4.0, 16.0, 8.0),
            (6.0, 14.0, 4.0),
            (8.0, 20.0, 10.0),
            (12.0, 22.0, 6.0),
        ])
    }

    #[test]
    fn vd_example_heavy_subintervals_are_8_10_and_12_14() {
        // The paper: on a quad-core only [8,10] and [12,14] are heavy.
        let tl = Timeline::build(&vd_example());
        assert_eq!(tl.len(), 11);
        let heavy = tl.heavy_indices(4);
        assert_eq!(heavy.len(), 2);
        let h0 = tl.get(heavy[0]);
        let h1 = tl.get(heavy[1]);
        assert_eq!((h0.interval.start, h0.interval.end), (8.0, 10.0));
        assert_eq!((h1.interval.start, h1.interval.end), (12.0, 14.0));
        // Five overlapping tasks in each.
        assert_eq!(h0.overlapping, vec![0, 1, 2, 3, 4]);
        assert_eq!(h1.overlapping, vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn light_indices_complement_heavy() {
        let tl = Timeline::build(&vd_example());
        let mut all = tl.heavy_indices(4);
        all.extend(tl.light_indices(4));
        all.sort_unstable();
        assert_eq!(all, (0..11).collect::<Vec<_>>());
    }

    #[test]
    fn spans_and_availability() {
        let tl = Timeline::build(&vd_example());
        // τ0 = (0, 10): subintervals 0..5.
        assert_eq!(tl.span(0), 0..5);
        assert!(tl.available(0, 0));
        assert!(tl.available(0, 4));
        assert!(!tl.available(0, 5));
        // τ5 = (12, 22): subintervals 6..11.
        assert_eq!(tl.span(5), 6..11);
        assert!(!tl.available(5, 5));
        assert!(tl.available(5, 10));
    }

    #[test]
    fn peak_overlap_and_variable_count() {
        let tl = Timeline::build(&vd_example());
        assert_eq!(tl.peak_overlap(), 5);
        // Spans: 5 + 8 + 6 + 4 + 6 + 5 = 34 variables.
        assert_eq!(tl.variable_count(), 34);
    }

    #[test]
    fn single_task_timeline() {
        let ts = TaskSet::from_triples(&[(1.0, 5.0, 2.0)]);
        let tl = Timeline::build(&ts);
        assert_eq!(tl.len(), 1);
        assert_eq!(tl.get(0).overlapping, vec![0]);
        assert!(!tl.get(0).is_heavy(1));
        assert_eq!(tl.heavy_indices(1), Vec::<usize>::new());
    }

    #[test]
    fn heavy_definition_is_strictly_greater() {
        // Two tasks overlapping, two cores: n_j == m is *light*.
        let ts = TaskSet::from_triples(&[(0.0, 4.0, 1.0), (0.0, 4.0, 1.0)]);
        let tl = Timeline::build(&ts);
        assert!(!tl.get(0).is_heavy(2));
        assert!(tl.get(0).is_heavy(1));
    }

    #[test]
    fn disjoint_windows_never_overlap() {
        let ts = TaskSet::from_triples(&[(0.0, 2.0, 1.0), (2.0, 4.0, 1.0), (4.0, 6.0, 1.0)]);
        let tl = Timeline::build(&ts);
        assert_eq!(tl.len(), 3);
        for j in 0..3 {
            assert_eq!(tl.get(j).overlapping, vec![j]);
        }
        assert_eq!(tl.peak_overlap(), 1);
    }

    /// The pre-sweep-line builder: push each task onto every subinterval
    /// in its span. Kept as the oracle for the sweep-line equivalence test.
    fn build_naive(tasks: &TaskSet) -> Timeline {
        let boundaries = tasks.event_points();
        let n_subs = boundaries.len().saturating_sub(1);
        let mut subintervals: Vec<Subinterval> = (0..n_subs)
            .map(|index| Subinterval {
                index,
                interval: Interval::new(boundaries[index], boundaries[index + 1]),
                overlapping: Vec::new(),
            })
            .collect();
        let mut spans = Vec::with_capacity(tasks.len());
        for (id, t) in tasks.iter() {
            let range = covering_range(&boundaries, t.release, t.deadline);
            for sub in &mut subintervals[range.clone()] {
                sub.overlapping.push(id);
            }
            spans.push((range.start, range.end));
        }
        Timeline {
            boundaries,
            subintervals,
            spans,
        }
    }

    fn random_tasks(rng: &mut esched_obs::ChaCha8, n: usize) -> TaskSet {
        let triples: Vec<(f64, f64, f64)> = (0..n)
            .map(|_| {
                // Quantize to a coarse grid so boundary collisions (shared
                // event points) are common, exercising the dedup path.
                let r = (rng.gen_range_f64(0.0, 40.0) * 2.0).round() / 2.0;
                let d = r + (rng.gen_range_f64(0.5, 20.0) * 2.0).round().max(1.0) / 2.0;
                let c = rng.gen_range_f64(0.1, (d - r).max(0.2));
                (r, d, c)
            })
            .collect();
        TaskSet::from_triples(&triples)
    }

    #[test]
    fn sweep_line_matches_naive_builder_on_random_sets() {
        let mut rng = esched_obs::ChaCha8::seed_from_u64(0x7133_11ae);
        let mut scratch = TimelineScratch::new();
        for case in 0..300 {
            let n = 1 + (case % 60);
            let ts = random_tasks(&mut rng, n);
            let swept = Timeline::build_with(&ts, &mut scratch);
            let naive = build_naive(&ts);
            assert_eq!(swept, naive, "case {case} (n = {n})");
            scratch.recycle(swept);
        }
    }

    #[test]
    fn rebuild_shifted_on_existing_boundaries_matches_full_rebuild() {
        let mut rng = esched_obs::ChaCha8::seed_from_u64(0xbead);
        for case in 0..200 {
            let n = 3 + (case % 40);
            let ts = random_tasks(&mut rng, n);
            let mut tl = Timeline::build(&ts);
            let victim = rng.gen_range_usize(0, n);
            // Shift the victim's window onto two other boundary points so
            // the incremental path is exercised (it still may fall back
            // when the victim's old endpoints lose their anchor).
            let pts = tl.boundaries().to_vec();
            let a = rng.gen_range_usize(0, pts.len() - 1);
            let b = rng.gen_range_usize(a + 1, pts.len());
            let mut triples: Vec<(f64, f64, f64)> = ts
                .iter()
                .map(|(_, t)| (t.release, t.deadline, t.wcec))
                .collect();
            let (mut lo, mut hi) = (pts[a], pts[b]);
            // Every third case, nudge one endpoint off the exact boundary
            // value: within the comparison tolerance (the patch must spot
            // the non-bitwise match and fall back) or just outside it (a
            // genuinely new boundary).
            if case % 3 == 0 {
                let nudge = if case % 2 == 0 { 5e-8 } else { 3e-7 } * 1.0_f64.max(hi.abs());
                if case % 4 == 0 {
                    lo += nudge;
                } else {
                    hi -= nudge;
                }
            }
            let span = hi - lo;
            triples[victim] = (lo, hi, triples[victim].2.min(span * 0.9));
            let shifted = TaskSet::from_triples(&triples);
            tl.rebuild_shifted(&shifted, victim);
            assert_eq!(tl, Timeline::build(&shifted), "case {case}");
        }
    }

    #[test]
    fn rebuild_shifted_falls_back_when_endpoint_only_approx_matches_a_boundary() {
        // Another task anchors a boundary at exactly 100.0; the victim
        // moves its release to a value approx- but not bitwise-equal to
        // it. The full build keeps the smaller value as the dedup
        // representative, so patching in place would keep a stale
        // boundary value.
        let ts = TaskSet::from_triples(&[(0.0, 100.0, 5.0), (20.0, 120.0, 5.0), (40.0, 60.0, 2.0)]);
        let mut tl = Timeline::build(&ts);
        let mut triples: Vec<(f64, f64, f64)> = ts
            .iter()
            .map(|(_, t)| (t.release, t.deadline, t.wcec))
            .collect();
        triples[2] = (100.0 - 5e-6, 120.0, 2.0);
        let shifted = TaskSet::from_triples(&triples);
        tl.rebuild_shifted(&shifted, 2);
        assert_eq!(tl, Timeline::build(&shifted));
        assert!(tl.boundaries().contains(&(100.0 - 5e-6)));
        assert!(!tl.boundaries().contains(&100.0));
    }

    #[test]
    fn rebuild_shifted_falls_back_when_vacated_boundary_survives_only_approximately() {
        // The victim's old deadline 30.0 is the dedup representative;
        // another task's endpoint sits within tolerance at 30.0 + 2e-6.
        // Once the victim leaves, the full build keeps 30.0 + 2e-6 — an
        // approx-equal anchor must not be treated as keeping 30.0 alive.
        let ts =
            TaskSet::from_triples(&[(0.0, 50.0, 5.0), (10.0, 30.0 + 2e-6, 5.0), (0.0, 30.0, 2.0)]);
        let mut tl = Timeline::build(&ts);
        assert!(tl.boundaries().contains(&30.0));
        let mut triples: Vec<(f64, f64, f64)> = ts
            .iter()
            .map(|(_, t)| (t.release, t.deadline, t.wcec))
            .collect();
        triples[2] = (0.0, 50.0, 2.0);
        let shifted = TaskSet::from_triples(&triples);
        tl.rebuild_shifted(&shifted, 2);
        assert_eq!(tl, Timeline::build(&shifted));
        assert!(tl.boundaries().contains(&(30.0 + 2e-6)));
        assert!(!tl.boundaries().contains(&30.0));
    }

    #[test]
    fn rebuild_shifted_near_collapsed_window_falls_back() {
        // A valid window so narrow that both endpoints locate to the same
        // boundary index (a == b): the guard must reject the degenerate
        // empty span and rebuild.
        let ts = TaskSet::from_triples(&[(0.0, 30.0, 5.0), (5.0, 25.0, 3.0), (2.0, 20.0, 1.0)]);
        let mut tl = Timeline::build(&ts);
        let mut triples: Vec<(f64, f64, f64)> = ts
            .iter()
            .map(|(_, t)| (t.release, t.deadline, t.wcec))
            .collect();
        triples[2] = (20.0 - 2e-6, 20.0 + 2e-6, 1e-7);
        let shifted = TaskSet::from_triples(&triples);
        tl.rebuild_shifted(&shifted, 2);
        assert_eq!(tl, Timeline::build(&shifted));
    }

    #[test]
    fn rebuild_inserted_matches_full_rebuild_on_random_arrivals() {
        let mut rng = esched_obs::ChaCha8::seed_from_u64(0x0a11_5eed);
        for case in 0..300 {
            let n = 2 + (case % 40);
            let ts = random_tasks(&mut rng, n);
            let mut tl = Timeline::build(&ts);
            let pts = tl.boundaries().to_vec();
            let last = *pts.last().unwrap();
            // Mix of arrival shapes: on existing boundaries, off-grid,
            // beyond the horizon, before the first release, and within
            // tolerance of a boundary (which must fall back).
            let (r, d) = match case % 5 {
                0 => {
                    let a = rng.gen_range_usize(0, pts.len() - 1);
                    let b = rng.gen_range_usize(a + 1, pts.len());
                    (pts[a], pts[b])
                }
                1 => {
                    let r = rng.gen_range_f64(0.0, 40.0);
                    (r, r + rng.gen_range_f64(0.5, 20.0))
                }
                2 => {
                    let r = last + rng.gen_range_f64(0.5, 5.0);
                    (r, r + rng.gen_range_f64(0.5, 5.0))
                }
                3 => (
                    pts[0] - rng.gen_range_f64(0.5, 5.0),
                    pts[rng.gen_range_usize(0, pts.len())],
                ),
                _ => {
                    let k = rng.gen_range_usize(0, pts.len());
                    let r = pts[k] + 3e-8 * 1.0_f64.max(pts[k].abs());
                    (r, r + rng.gen_range_f64(0.5, 10.0))
                }
            };
            let c = rng.gen_range_f64(0.1, (d - r).max(0.2));
            let mut triples: Vec<(f64, f64, f64)> = ts
                .iter()
                .map(|(_, t)| (t.release, t.deadline, t.wcec))
                .collect();
            triples.push((r, d, c));
            let grown = TaskSet::from_triples(&triples);
            tl.rebuild_inserted(&grown, n);
            assert_eq!(tl, Timeline::build(&grown), "case {case} (n = {n})");
        }
    }

    #[test]
    fn rebuild_inserted_splits_subintervals_and_appends_gap() {
        let ts = vd_example();
        let mut tl = Timeline::build(&ts);
        // (5, 27): release splits [4, 6] in two, deadline extends the
        // horizon past 22 with a gap subinterval [22, 27].
        let mut triples: Vec<(f64, f64, f64)> = ts
            .iter()
            .map(|(_, t)| (t.release, t.deadline, t.wcec))
            .collect();
        triples.push((5.0, 27.0, 3.0));
        let grown = TaskSet::from_triples(&triples);
        tl.rebuild_inserted(&grown, 6);
        assert_eq!(tl, Timeline::build(&grown));
        assert!(tl.boundaries().contains(&5.0));
        assert!(tl.boundaries().contains(&27.0));
        assert_eq!(tl.len(), 13);
        assert_eq!(tl.span(6), 3..13);
    }

    #[test]
    fn rebuild_shifted_off_grid_falls_back_to_full_rebuild() {
        let ts = vd_example();
        let mut tl = Timeline::build(&ts);
        // Move τ3 to an off-boundary window: the decomposition changes.
        let mut triples: Vec<(f64, f64, f64)> = ts
            .iter()
            .map(|(_, t)| (t.release, t.deadline, t.wcec))
            .collect();
        triples[3] = (5.0, 13.0, 3.0);
        let shifted = TaskSet::from_triples(&triples);
        tl.rebuild_shifted(&shifted, 3);
        assert_eq!(tl, Timeline::build(&shifted));
        assert!(tl.boundaries().contains(&5.0));
        assert!(tl.boundaries().contains(&13.0));
    }

    #[test]
    fn heavy_and_light_iters_match_indices() {
        let tl = Timeline::build(&vd_example());
        for m in 1..=6 {
            assert_eq!(tl.heavy_iter(m).collect::<Vec<_>>(), tl.heavy_indices(m));
            assert_eq!(tl.light_iter(m).collect::<Vec<_>>(), tl.light_indices(m));
        }
    }

    #[test]
    fn intro_example_timeline() {
        // Fig. 1(a) tasks on 2 cores: only [4, 8] is heavy.
        let ts = TaskSet::from_triples(&[(0.0, 12.0, 4.0), (2.0, 10.0, 2.0), (4.0, 8.0, 4.0)]);
        let tl = Timeline::build(&ts);
        assert_eq!(tl.len(), 5);
        assert_eq!(tl.heavy_indices(2), vec![2]);
        let h = tl.get(2);
        assert_eq!((h.interval.start, h.interval.end), (4.0, 8.0));
        assert_eq!(h.overlapping, vec![0, 1, 2]);
    }
}
