//! Load analysis and feasibility pre-checks on a [`Timeline`].
//!
//! Before running any scheduler it is useful to know whether the instance
//! is schedulable at all under a frequency cap, and how loaded each
//! subinterval is. With continuous unbounded frequencies (the paper's ideal
//! core model) every instance is trivially feasible; the checks here matter
//! for the practical discrete-frequency mode (Section VI.C) where the top
//! level caps achievable work.

use crate::timeline::Timeline;
use esched_types::task::TaskSet;
use esched_types::time::EPS;

/// Per-subinterval load statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadProfile {
    /// For each subinterval `j`: the *ideal density* — total intensity of
    /// the overlapping tasks, `Σ_{i ∈ over(j)} C_i/(D_i−R_i)`. Values above
    /// `m` indicate a subinterval where even perfectly stretched tasks
    /// demand more than the platform provides.
    pub density: Vec<f64>,
    /// For each subinterval `j`: overlap count `n_j`.
    pub overlap: Vec<usize>,
}

/// Compute the [`LoadProfile`] of a task set over its timeline.
pub fn load_profile(tasks: &TaskSet, timeline: &Timeline) -> LoadProfile {
    let density = timeline
        .subintervals()
        .iter()
        .map(|s| {
            s.overlapping
                .iter()
                .map(|&i| tasks.get(i).intensity())
                .sum()
        })
        .collect();
    let overlap = timeline
        .subintervals()
        .iter()
        .map(|s| s.overlap_count())
        .collect();
    LoadProfile { density, overlap }
}

/// Why an instance cannot be scheduled at frequency cap `f_max`.
#[derive(Debug, Clone, PartialEq)]
pub enum Infeasibility {
    /// A single task cannot finish even running alone flat-out:
    /// `C_i > f_max · (D_i − R_i)`.
    TaskTooDense {
        /// The task.
        task: usize,
        /// Its required minimum frequency `C_i/(D_i−R_i)`.
        required: f64,
    },
    /// An interval of event points demands more work than `m` cores at
    /// `f_max` can deliver: `C(t1,t2) > m·f_max·(t2−t1)`.
    IntervalOverloaded {
        /// Interval start.
        t1: f64,
        /// Interval end.
        t2: f64,
        /// Work released and due inside the interval.
        demand: f64,
        /// Capacity `m·f_max·(t2−t1)`.
        capacity: f64,
    },
}

/// Check the two classical *necessary* feasibility conditions for
/// preemptive, migratable scheduling of `tasks` on `m` cores capped at
/// `f_max`:
///
/// 1. per-task: `C_i ≤ f_max·(D_i−R_i)`,
/// 2. per-interval: for every pair of event points `t1 < t2`,
///    `C(t1,t2) ≤ m·f_max·(t2−t1)`.
///
/// On a *uniprocessor* these conditions are also sufficient. On `m > 1`
/// cores they are **necessary only**: the per-task parallelism limit (a
/// task cannot use two cores at once) can make an instance infeasible even
/// though every contained-demand interval fits — e.g. two full-window jobs
/// saturating both cores of `[0,2]` while a third job's window offers too
/// little room outside it. The exact test is the max-flow oracle in
/// `esched-opt::flow::feasible_at_frequency`.
///
/// Returns all violations found (empty ⇒ no *necessary* condition fails).
pub fn feasibility_at(tasks: &TaskSet, cores: usize, f_max: f64) -> Vec<Infeasibility> {
    let mut out = Vec::new();
    for (i, t) in tasks.iter() {
        if t.wcec > f_max * t.window_len() * (1.0 + EPS) {
            out.push(Infeasibility::TaskTooDense {
                task: i,
                required: t.intensity(),
            });
        }
    }
    let pts = tasks.event_points();
    for (a, &t1) in pts.iter().enumerate() {
        for &t2 in &pts[a + 1..] {
            let demand = tasks.demand(t1, t2);
            let capacity = cores as f64 * f_max * (t2 - t1);
            if demand > capacity * (1.0 + EPS) + EPS {
                out.push(Infeasibility::IntervalOverloaded {
                    t1,
                    t2,
                    demand,
                    capacity,
                });
            }
        }
    }
    out
}

/// The minimum uniform frequency cap at which the instance passes
/// [`feasibility_at`]: `max( max_i C_i/(D_i−R_i), max_{t1<t2}
/// C(t1,t2)/(m·(t2−t1)) )` — the multiprocessor generalization of the YDS
/// peak intensity. On `m > 1` cores this is a *lower bound* on the true
/// minimum feasible frequency (see [`feasibility_at`]'s caveat); the exact
/// value comes from binary search over the flow oracle
/// (`esched-opt::flow::min_frequency_by_flow`).
pub fn min_feasible_frequency(tasks: &TaskSet, cores: usize) -> f64 {
    let per_task = tasks
        .iter()
        .map(|(_, t)| t.intensity())
        .fold(0.0_f64, f64::max);
    let pts = tasks.event_points();
    let mut per_interval: f64 = 0.0;
    for (a, &t1) in pts.iter().enumerate() {
        for &t2 in &pts[a + 1..] {
            let len = t2 - t1;
            if len > EPS {
                per_interval = per_interval.max(tasks.demand(t1, t2) / (cores as f64 * len));
            }
        }
    }
    per_task.max(per_interval)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::timeline::Timeline;
    use esched_types::task::TaskSet;

    fn intro() -> TaskSet {
        TaskSet::from_triples(&[(0.0, 12.0, 4.0), (2.0, 10.0, 2.0), (4.0, 8.0, 4.0)])
    }

    #[test]
    fn load_profile_shapes() {
        let ts = intro();
        let tl = Timeline::build(&ts);
        let lp = load_profile(&ts, &tl);
        assert_eq!(lp.density.len(), tl.len());
        assert_eq!(lp.overlap, vec![1, 2, 3, 2, 1]);
        // During [4,8]: intensities 4/12 + 2/8 + 4/4.
        let expect = 4.0 / 12.0 + 0.25 + 1.0;
        assert!((lp.density[2] - expect).abs() < 1e-12);
    }

    #[test]
    fn intro_example_feasible_at_unit_frequency_on_two_cores() {
        let ts = intro();
        assert!(feasibility_at(&ts, 2, 1.0).is_empty());
    }

    #[test]
    fn task_too_dense_detected() {
        let ts = TaskSet::from_triples(&[(0.0, 2.0, 4.0)]); // needs f = 2
        let v = feasibility_at(&ts, 4, 1.0);
        assert!(matches!(v[0], Infeasibility::TaskTooDense { task: 0, .. }));
        assert!(feasibility_at(&ts, 4, 2.0).is_empty());
    }

    #[test]
    fn interval_overload_detected() {
        // Three unit-window tasks of work 1 each in [0,1] on one core.
        let ts = TaskSet::from_triples(&[(0.0, 1.0, 1.0), (0.0, 1.0, 1.0), (0.0, 1.0, 1.0)]);
        let v = feasibility_at(&ts, 1, 1.0);
        assert!(v
            .iter()
            .any(|x| matches!(x, Infeasibility::IntervalOverloaded { .. })));
        // Three cores fix it.
        assert!(feasibility_at(&ts, 3, 1.0).is_empty());
    }

    #[test]
    fn min_feasible_frequency_matches_peak_demand() {
        let ts = intro();
        // Uniprocessor: YDS peak intensity is 1.0 (interval [4,8]).
        assert!((min_feasible_frequency(&ts, 1) - 1.0).abs() < 1e-12);
        // Two cores: per-task bound dominates: τ3 needs 4/4 = 1.
        assert!((min_feasible_frequency(&ts, 2) - 1.0).abs() < 1e-12);
        // Many cores: still 1 because of τ3 alone.
        assert!((min_feasible_frequency(&ts, 16) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn min_feasible_frequency_is_tight_for_the_interval_conditions() {
        let ts = TaskSet::from_triples(&[
            (0.0, 4.0, 6.0),
            (1.0, 5.0, 3.0),
            (0.0, 8.0, 2.0),
            (2.0, 6.0, 5.0),
        ]);
        for m in [1usize, 2, 3] {
            let f = min_feasible_frequency(&ts, m);
            assert!(
                feasibility_at(&ts, m, f * (1.0 + 1e-12)).is_empty(),
                "m={m} f={f}"
            );
            // And strictly below it, some necessary condition fails.
            assert!(!feasibility_at(&ts, m, f * 0.99).is_empty(), "m={m}");
        }
    }

    #[test]
    fn interval_conditions_are_not_sufficient_on_multiprocessors() {
        // Two full-window jobs saturate both cores of [0,2]; the third job
        // then has only [2,4] (2 time units) for 3 units of work. Every
        // contained-demand interval fits, yet the instance is infeasible
        // at f = 1 — the exact flow oracle in esched-opt catches it.
        let ts = TaskSet::from_triples(&[(0.0, 2.0, 2.0), (0.0, 2.0, 2.0), (0.0, 4.0, 3.0)]);
        assert!(feasibility_at(&ts, 2, 1.0).is_empty());
    }
}
