//! Subinterval boundary construction.
//!
//! Section IV of the paper: sort all distinct release times and deadlines
//! ascending into `t_1 < t_2 < … < t_N` (`N ≤ 2n`); the `N−1` gaps
//! `[t_j, t_{j+1}]` are the *subintervals*. Because every boundary is some
//! task's release or deadline, each task's window is exactly a union of
//! consecutive subintervals — the property all allocation algorithms rely
//! on.

use esched_types::task::TaskSet;
use esched_types::time::{approx_le, Interval};

/// Compute the sorted, deduplicated boundary points `t_1 … t_N` of a task
/// set. Always contains at least two points (`R̄` and `D̄`) because task
/// windows are non-empty.
pub fn boundary_points(tasks: &TaskSet) -> Vec<f64> {
    tasks.event_points()
}

/// Turn boundary points into the list of subintervals `[t_j, t_{j+1}]`.
pub fn subintervals_of(points: &[f64]) -> Vec<Interval> {
    points
        .windows(2)
        .map(|w| Interval::new(w[0], w[1]))
        .collect()
}

/// Locate the contiguous range of subinterval indices covered by
/// `[start, end]`, where both endpoints are boundary points. Returns
/// `first..last+1` as a `std::ops::Range`.
///
/// # Panics
/// If `start`/`end` are not boundary points (they always are for task
/// windows, by construction).
pub fn covering_range(points: &[f64], start: f64, end: f64) -> std::ops::Range<usize> {
    let first = locate_boundary(points, start).expect("window start must be a boundary point");
    let last = locate_boundary(points, end).expect("window end must be a boundary point");
    debug_assert!(approx_le(points[first], points[last]));
    first..last
}

/// Binary-search the sorted, deduplicated boundary list for the index of
/// the point approx-equal to `t`.
///
/// Deduplication guarantees consecutive boundaries are *not* approx-equal
/// to each other, so at most a couple of neighbors around the insertion
/// index can match `t`; the lowest matching index wins, preserving the
/// semantics of the linear scan this replaces.
pub fn locate_boundary(points: &[f64], t: f64) -> Option<usize> {
    let idx = points.partition_point(|&p| p < t);
    let lo = idx.saturating_sub(2);
    let hi = (idx + 2).min(points.len());
    (lo..hi).find(|&k| esched_types::time::approx_eq(points[k], t))
}

#[cfg(test)]
mod tests {
    use super::*;
    use esched_types::task::TaskSet;

    fn vd_example() -> TaskSet {
        // Section V.D: τ = (R, C, D) = (0,8,10), (2,14,18), (4,8,16),
        // (6,4,14), (8,10,20), (12,6,22). Stored as (R, D, C).
        TaskSet::from_triples(&[
            (0.0, 10.0, 8.0),
            (2.0, 18.0, 14.0),
            (4.0, 16.0, 8.0),
            (6.0, 14.0, 4.0),
            (8.0, 20.0, 10.0),
            (12.0, 22.0, 6.0),
        ])
    }

    #[test]
    fn vd_example_has_twelve_boundaries_eleven_subintervals() {
        let ts = vd_example();
        let pts = boundary_points(&ts);
        // The paper: 12 distinct values t_j = 2(j−1), j = 1..12.
        assert_eq!(pts.len(), 12);
        for (j, &p) in pts.iter().enumerate() {
            assert_eq!(p, 2.0 * j as f64);
        }
        let subs = subintervals_of(&pts);
        assert_eq!(subs.len(), 11);
        assert!(subs.iter().all(|iv| iv.length() == 2.0));
    }

    #[test]
    fn duplicate_event_points_collapse() {
        let ts = TaskSet::from_triples(&[(0.0, 8.0, 2.0), (0.0, 8.0, 3.0), (4.0, 8.0, 1.0)]);
        assert_eq!(boundary_points(&ts), vec![0.0, 4.0, 8.0]);
    }

    #[test]
    fn covering_range_maps_windows_to_subinterval_spans() {
        let ts = vd_example();
        let pts = boundary_points(&ts);
        // τ4 = (8, 20): boundaries index 4 (t=8) .. 10 (t=20) → subs 4..10.
        assert_eq!(covering_range(&pts, 8.0, 20.0), 4..10);
        // τ0 = (0, 10): subs 0..5.
        assert_eq!(covering_range(&pts, 0.0, 10.0), 0..5);
    }

    #[test]
    #[should_panic(expected = "boundary point")]
    fn covering_range_rejects_non_boundary() {
        let ts = vd_example();
        let pts = boundary_points(&ts);
        let _ = covering_range(&pts, 1.0, 10.0);
    }
}
