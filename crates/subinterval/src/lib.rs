//! # esched-subinterval
//!
//! Timeline decomposition for aperiodic task sets: the subinterval
//! construction of Section IV of Li & Wu (ICPP 2014), plus overlap
//! analysis and feasibility pre-checks.
//!
//! The [`Timeline`] built here is the index space shared by every
//! allocation algorithm in `esched-core` and by the convex program in
//! `esched-opt`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod boundaries;
pub mod timeline;

pub use analysis::{
    feasibility_at, load_profile, min_feasible_frequency, Infeasibility, LoadProfile,
};
pub use boundaries::{boundary_points, covering_range, locate_boundary, subintervals_of};
pub use timeline::{Subinterval, Timeline, TimelineScratch};
