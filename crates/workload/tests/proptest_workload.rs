//! Property tests for workload generation and the periodic adapters.

use esched_workload::{
    expand_periodic, frame_based, hyperperiod, GeneratorConfig, IntensityDist, PeriodicTask,
    WorkloadGenerator,
};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn generated_sets_respect_every_knob(
        tasks in 1_usize..40,
        span in 1.0_f64..500.0,
        wc_lo in 0.5_f64..50.0,
        wc_span in 0.0_f64..100.0,
        int_lo in 0.05_f64..0.9,
        seed in 0_u64..1000,
    ) {
        let cfg = GeneratorConfig {
            tasks,
            release_span: span,
            wcec_lo: wc_lo,
            wcec_hi: wc_lo + wc_span,
            intensity: IntensityDist::Uniform { lo: int_lo, hi: 1.0 },
            freq_scale: 1.0,
        };
        let ts = WorkloadGenerator::new(cfg, seed).generate();
        prop_assert_eq!(ts.len(), tasks);
        for (_, t) in ts.iter() {
            prop_assert!(t.release >= 0.0 && t.release <= span);
            prop_assert!(t.wcec >= wc_lo - 1e-9 && t.wcec <= wc_lo + wc_span + 1e-9);
            let i = t.intensity();
            prop_assert!(i >= int_lo - 1e-9 && i <= 1.0 + 1e-9, "intensity {i}");
        }
    }

    #[test]
    fn generation_is_pure_in_the_seed(
        seed in 0_u64..500,
        tasks in 1_usize..20,
    ) {
        let cfg = GeneratorConfig::paper_default().with_tasks(tasks);
        let a = WorkloadGenerator::new(cfg, seed).generate();
        let b = WorkloadGenerator::new(cfg, seed).generate();
        prop_assert_eq!(a, b);
    }

    #[test]
    fn periodic_expansion_invariants(
        period in 1_usize..12,
        wcet_frac in 0.05_f64..0.95,
        reps in 1_usize..6,
    ) {
        let period = period as f64;
        let task = PeriodicTask::new(period, period * wcet_frac);
        let horizon = period * reps as f64;
        let jobs = expand_periodic(&[task], horizon);
        // Exactly `reps` complete jobs fit.
        prop_assert_eq!(jobs.len(), reps);
        for (k, t) in jobs.iter() {
            prop_assert!((t.release - k as f64 * period).abs() < 1e-9);
            prop_assert!((t.deadline - (k as f64 + 1.0) * period).abs() < 1e-9);
            prop_assert!((t.intensity() - wcet_frac).abs() < 1e-9);
        }
    }

    #[test]
    fn hyperperiod_is_a_common_multiple(
        p1 in 1_u32..20,
        p2 in 1_u32..20,
        p3 in 1_u32..20,
    ) {
        let tasks = [
            PeriodicTask::new(p1 as f64, 0.1),
            PeriodicTask::new(p2 as f64, 0.1),
            PeriodicTask::new(p3 as f64, 0.1),
        ];
        let h = hyperperiod(&tasks, 1.0).unwrap();
        for p in [p1, p2, p3] {
            let k = h / p as f64;
            prop_assert!((k - k.round()).abs() < 1e-9, "{h} not a multiple of {p}");
        }
        // Minimality: h/2, h/3, h/5, h/7 each fail for at least one period
        // unless they are themselves common multiples — skip strict
        // minimality (LCM is well-tested at unit level) and just bound it.
        prop_assert!(h <= (p1 as f64) * (p2 as f64) * (p3 as f64) + 1e-9);
    }

    #[test]
    fn frame_based_total_work_scales(
        works in prop::collection::vec(0.1_f64..5.0, 1..6),
        frames in 1_usize..5,
    ) {
        let jobs = frame_based(&works, 10.0, frames);
        let per_frame: f64 = works.iter().sum();
        prop_assert!((jobs.total_work() - per_frame * frames as f64).abs() < 1e-9);
        prop_assert_eq!(jobs.len(), works.len() * frames);
    }
}
