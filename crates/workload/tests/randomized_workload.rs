//! Seeded randomized tests for workload generation and the periodic
//! adapters.

use esched_obs::rng::ChaCha8;
use esched_workload::{
    expand_periodic, frame_based, hyperperiod, GeneratorConfig, IntensityDist, PeriodicTask,
    WorkloadGenerator,
};

const CASES: usize = 48;

#[test]
fn generated_sets_respect_every_knob() {
    let mut rng = ChaCha8::seed_from_u64(0x3014_0001);
    for _ in 0..CASES {
        let tasks = rng.gen_range_usize(1, 40);
        let span = rng.gen_range_f64(1.0, 500.0);
        let wc_lo = rng.gen_range_f64(0.5, 50.0);
        let wc_span = rng.gen_range_f64(0.0, 100.0);
        let int_lo = rng.gen_range_f64(0.05, 0.9);
        let seed = rng.gen_range_usize(0, 1000) as u64;
        let cfg = GeneratorConfig {
            tasks,
            release_span: span,
            wcec_lo: wc_lo,
            wcec_hi: wc_lo + wc_span,
            intensity: IntensityDist::Uniform {
                lo: int_lo,
                hi: 1.0,
            },
            freq_scale: 1.0,
        };
        let ts = WorkloadGenerator::new(cfg, seed).generate();
        assert_eq!(ts.len(), tasks);
        for (_, t) in ts.iter() {
            assert!(t.release >= 0.0 && t.release <= span);
            assert!(t.wcec >= wc_lo - 1e-9 && t.wcec <= wc_lo + wc_span + 1e-9);
            let i = t.intensity();
            assert!(i >= int_lo - 1e-9 && i <= 1.0 + 1e-9, "intensity {i}");
        }
    }
}

#[test]
fn generation_is_pure_in_the_seed() {
    let mut rng = ChaCha8::seed_from_u64(0x3014_0002);
    for _ in 0..CASES {
        let seed = rng.gen_range_usize(0, 500) as u64;
        let tasks = rng.gen_range_usize(1, 20);
        let cfg = GeneratorConfig::paper_default().with_tasks(tasks);
        let a = WorkloadGenerator::new(cfg, seed).generate();
        let b = WorkloadGenerator::new(cfg, seed).generate();
        assert_eq!(a, b);
    }
}

#[test]
fn periodic_expansion_invariants() {
    let mut rng = ChaCha8::seed_from_u64(0x3014_0003);
    for _ in 0..CASES {
        let period = rng.gen_range_usize(1, 12) as f64;
        let wcet_frac = rng.gen_range_f64(0.05, 0.95);
        let reps = rng.gen_range_usize(1, 6);
        let task = PeriodicTask::new(period, period * wcet_frac);
        let horizon = period * reps as f64;
        let jobs = expand_periodic(&[task], horizon);
        // Exactly `reps` complete jobs fit.
        assert_eq!(jobs.len(), reps);
        for (k, t) in jobs.iter() {
            assert!((t.release - k as f64 * period).abs() < 1e-9);
            assert!((t.deadline - (k as f64 + 1.0) * period).abs() < 1e-9);
            assert!((t.intensity() - wcet_frac).abs() < 1e-9);
        }
    }
}

#[test]
fn hyperperiod_is_a_common_multiple() {
    let mut rng = ChaCha8::seed_from_u64(0x3014_0004);
    for _ in 0..CASES {
        let p1 = rng.gen_range_usize(1, 20) as u32;
        let p2 = rng.gen_range_usize(1, 20) as u32;
        let p3 = rng.gen_range_usize(1, 20) as u32;
        let tasks = [
            PeriodicTask::new(p1 as f64, 0.1),
            PeriodicTask::new(p2 as f64, 0.1),
            PeriodicTask::new(p3 as f64, 0.1),
        ];
        let h = hyperperiod(&tasks, 1.0).unwrap();
        for p in [p1, p2, p3] {
            let k = h / p as f64;
            assert!((k - k.round()).abs() < 1e-9, "{h} not a multiple of {p}");
        }
        // LCM minimality is well-tested at unit level; just bound it here.
        assert!(h <= (p1 as f64) * (p2 as f64) * (p3 as f64) + 1e-9);
    }
}

#[test]
fn frame_based_total_work_scales() {
    let mut rng = ChaCha8::seed_from_u64(0x3014_0005);
    for _ in 0..CASES {
        let n = rng.gen_range_usize(1, 6);
        let works: Vec<f64> = (0..n).map(|_| rng.gen_range_f64(0.1, 5.0)).collect();
        let frames = rng.gen_range_usize(1, 5);
        let jobs = frame_based(&works, 10.0, frames);
        let per_frame: f64 = works.iter().sum();
        assert!((jobs.total_work() - per_frame * frames as f64).abs() < 1e-9);
        assert_eq!(jobs.len(), works.len() * frames);
    }
}
