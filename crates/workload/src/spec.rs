//! The unified workload builder: one [`WorkloadSpec`] covering every
//! scale the repo generates, from the paper's 20-task analytic instances
//! to the 262 144-task scaling workloads.
//!
//! Two arrival laws:
//!
//! * [`ArrivalLaw::Continuous`] — releases uniform on `[0, span]`, the
//!   paper's Section VI design. Instantiation delegates verbatim to
//!   [`WorkloadGenerator`], so a spec-built set is bit-identical to the
//!   historical fixtures for the same seed.
//! * [`ArrivalLaw::Slotted`] — releases and deadlines snapped to a
//!   quantum grid. Continuous instances put almost every boundary pair in
//!   overlap, so CSR cell count grows as `O(n²)` and a 262k-task timeline
//!   would not fit in memory; on the grid each task overlaps only the
//!   `O(window/quantum)` subintervals its window spans, keeping cells
//!   `O(n)` while preserving the heavy/light structure the allocator's
//!   hot paths exercise.

use crate::generator::{GeneratorConfig, IntensityDist, WorkloadGenerator};
use esched_obs::rng::ChaCha8;
use esched_types::{Task, TaskSet};

/// How release times (and, for the grid law, deadlines) are placed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ArrivalLaw {
    /// Releases uniform on `[0, span]`, deadlines derived from the
    /// intensity draw — the paper's generator, verbatim.
    Continuous {
        /// Upper end of the release interval (paper: 200).
        span: f64,
    },
    /// Releases on a `quantum`-spaced grid of `span_slots` slots;
    /// windows are 2–12 quanta long, so every subinterval boundary is a
    /// grid point and the timeline stays `O(n)` cells.
    Slotted {
        /// Number of release slots.
        span_slots: usize,
        /// Grid spacing in time units.
        quantum: f64,
    },
}

/// Builder describing one family of random workloads: scale, arrival
/// law, intensity distribution, and requirement range.
///
/// ```
/// use esched_workload::WorkloadSpec;
///
/// // The paper's analytic-model instances, bit-identical to the
/// // historical `WorkloadGenerator` output for the same seed.
/// let tasks = WorkloadSpec::paper().with_scale(40).instantiate(2014);
/// assert_eq!(tasks.len(), 40);
///
/// // A grid-snapped scaling instance: timeline cells stay O(n).
/// let big = WorkloadSpec::large_n(4096).instantiate(7);
/// assert_eq!(big.len(), 4096);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkloadSpec {
    scale: usize,
    arrival: ArrivalLaw,
    wcec_lo: f64,
    wcec_hi: f64,
    intensity: IntensityDist,
    freq_scale: f64,
}

impl WorkloadSpec {
    /// The paper's default analytic configuration (`n = 20`, releases on
    /// `[0, 200]`, work on `[10, 30]`, intensity ladder `{0.1, …, 1.0}`).
    pub fn paper() -> Self {
        Self::from_config(GeneratorConfig::paper_default())
    }

    /// Section VI.C's XScale configuration (megacycle requirements,
    /// deadlines scaled by the 400 MHz level).
    pub fn xscale() -> Self {
        Self::from_config(GeneratorConfig::xscale_default())
    }

    /// The Fig. 9 intensity-range sweep: paper configuration with
    /// intensities continuous-uniform on `[lo, 1.0]`.
    pub fn intensity_sweep(lo: f64) -> Self {
        Self::from_config(
            GeneratorConfig::paper_default().with_intensity(IntensityDist::Uniform { lo, hi: 1.0 }),
        )
    }

    /// A grid-snapped scaling workload with `n` tasks: quantum 1.0,
    /// `max(32, n/8)` release slots (≈ 8 tasks per slot at any scale),
    /// windows 2–12 quanta. Designed so the subinterval-major CSR holds
    /// roughly `7n` cells instead of the `O(n²)` a continuous instance
    /// of this size would need.
    pub fn large_n(n: usize) -> Self {
        Self {
            scale: n,
            arrival: ArrivalLaw::Slotted {
                span_slots: (n / 8).max(32),
                quantum: 1.0,
            },
            // Unused by the slotted law (work derives from the intensity
            // draw); kept sane for anyone switching the law afterwards.
            wcec_lo: 10.0,
            wcec_hi: 30.0,
            intensity: IntensityDist::Uniform { lo: 0.05, hi: 1.0 },
            freq_scale: 1.0,
        }
    }

    /// Wrap an existing [`GeneratorConfig`] (continuous law).
    pub fn from_config(c: GeneratorConfig) -> Self {
        Self {
            scale: c.tasks,
            arrival: ArrivalLaw::Continuous {
                span: c.release_span,
            },
            wcec_lo: c.wcec_lo,
            wcec_hi: c.wcec_hi,
            intensity: c.intensity,
            freq_scale: c.freq_scale,
        }
    }

    /// Set the number of tasks.
    pub fn with_scale(mut self, n: usize) -> Self {
        self.scale = n;
        self
    }

    /// Replace the arrival law.
    pub fn with_arrival(mut self, law: ArrivalLaw) -> Self {
        self.arrival = law;
        self
    }

    /// Replace the intensity distribution.
    pub fn with_intensity(mut self, d: IntensityDist) -> Self {
        self.intensity = d;
        self
    }

    /// The number of tasks this spec instantiates.
    pub fn scale(&self) -> usize {
        self.scale
    }

    /// The arrival law.
    pub fn arrival(&self) -> ArrivalLaw {
        self.arrival
    }

    /// Draw one task set, deterministically per `seed`.
    pub fn instantiate(&self, seed: u64) -> TaskSet {
        match self.arrival {
            ArrivalLaw::Continuous { span } => {
                // Delegate to the historical generator so continuous
                // specs reproduce existing fixtures bit-for-bit.
                let cfg = GeneratorConfig {
                    tasks: self.scale,
                    release_span: span,
                    wcec_lo: self.wcec_lo,
                    wcec_hi: self.wcec_hi,
                    intensity: self.intensity,
                    freq_scale: self.freq_scale,
                };
                WorkloadGenerator::new(cfg, seed).generate()
            }
            ArrivalLaw::Slotted {
                span_slots,
                quantum,
            } => self.instantiate_slotted(span_slots, quantum, seed),
        }
    }

    fn instantiate_slotted(&self, span_slots: usize, quantum: f64, seed: u64) -> TaskSet {
        assert!(self.scale > 0, "cannot generate an empty task set");
        assert!(span_slots > 0 && quantum > 0.0);
        let mut rng = ChaCha8::seed_from_u64(seed);
        let mut tasks = Vec::with_capacity(self.scale);
        for _ in 0..self.scale {
            let slot = rng.gen_range_usize(0, span_slots);
            let release = slot as f64 * quantum;
            // Window of 2–12 quanta: boundaries stay on the grid and the
            // per-task overlap count is bounded by a constant.
            let k = rng.gen_range_usize(2, 13);
            let window = k as f64 * quantum;
            let intensity = self.intensity.sample(&mut rng);
            // C = intensity · freq_scale · (D − R), exactly the paper's
            // deadline formula inverted — so the intensity distribution
            // carries over from the continuous law unchanged.
            let wcec = (intensity * self.freq_scale * window).max(1e-6);
            tasks.push(Task::of(release, release + window, wcec));
        }
        TaskSet::new(tasks).expect("slotted tasks are valid by construction")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn continuous_spec_matches_legacy_generator_bitwise() {
        let spec = WorkloadSpec::paper().with_scale(50);
        let legacy =
            WorkloadGenerator::new(GeneratorConfig::paper_default().with_tasks(50), 99).generate();
        assert_eq!(spec.instantiate(99), legacy);

        let xs = WorkloadSpec::xscale().with_scale(25);
        let legacy_xs =
            WorkloadGenerator::new(GeneratorConfig::xscale_default().with_tasks(25), 4).generate();
        assert_eq!(xs.instantiate(4), legacy_xs);
    }

    #[test]
    fn slotted_instances_are_grid_snapped_and_deterministic() {
        let spec = WorkloadSpec::large_n(2048);
        let a = spec.instantiate(1);
        let b = spec.instantiate(1);
        assert_eq!(a, b);
        assert_ne!(a, spec.instantiate(2));
        for (_, t) in a.iter() {
            assert_eq!(t.release, t.release.round(), "release off-grid");
            assert_eq!(t.deadline, t.deadline.round(), "deadline off-grid");
            let w = t.window_len();
            assert!((2.0..=12.0).contains(&w), "window {w} outside 2–12 quanta");
            assert!(t.wcec > 0.0 && t.wcec <= w + 1e-9);
        }
    }

    #[test]
    fn slotted_timeline_cells_stay_linear() {
        let n = 4096;
        let tasks = WorkloadSpec::large_n(n).instantiate(3);
        let tl = esched_subinterval::Timeline::build(&tasks);
        let cells: usize = tl.subintervals().iter().map(|s| s.overlapping.len()).sum();
        // ~7n by design; the assert leaves generous headroom while still
        // ruling out the O(n²) blow-up a continuous law would produce.
        assert!(
            cells <= 16 * n,
            "slotted CSR has {cells} cells for n = {n} — super-linear growth"
        );
    }
}
