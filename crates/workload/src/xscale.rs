//! The Intel XScale processor configuration (Section VI.C, Table III).
//!
//! Frequency levels 150/400/600/800/1000 MHz with measured active powers
//! 80/170/400/900/1600 mW. The paper fits the continuous model
//! `p(f) = γ·f^α + p₀` to this table — reported as
//! `p(f) = 3.855·10⁻⁶·f^2.867 + 63.58` — and runs its practical
//! experiment against the fitted model with deadlines scaled by the second
//! level `f₂ = 400 MHz`.

use esched_opt::least_squares::fit_power_curve;
use esched_types::{DiscretePower, PolynomialPower};

/// The published XScale frequency/power table (MHz, mW).
pub const XSCALE_TABLE: [(f64, f64); 5] = [
    (150.0, 80.0),
    (400.0, 170.0),
    (600.0, 400.0),
    (800.0, 900.0),
    (1000.0, 1600.0),
];

/// The XScale as a [`DiscretePower`] model.
pub fn xscale_discrete() -> DiscretePower {
    DiscretePower::from_pairs(&XSCALE_TABLE)
}

/// The continuous `γ·f^α + p₀` model fitted to the XScale table with our
/// own Gauss-grid least-squares fit (α constrained to `[2, 3.5]` so the
/// energy program stays convex).
pub fn xscale_fitted() -> PolynomialPower {
    let levels = xscale_discrete().levels().to_vec();
    fit_power_curve(&levels, (2.0, 3.5)).into_model()
}

/// The fitted model exactly as the paper reports it
/// (`3.855e-6·f^2.867 + 63.58`), for comparison and for reproducing the
/// paper's numbers verbatim.
pub fn xscale_paper_fit() -> PolynomialPower {
    PolynomialPower::new(3.855e-6, 2.867, 63.58).expect("paper fit parameters are valid")
}

/// The second frequency level `f₂ = 400 MHz` used in the deadline formula
/// of Section VI.C.
pub const XSCALE_F2: f64 = 400.0;

#[cfg(test)]
mod tests {
    use super::*;
    use esched_types::PowerModel;

    #[test]
    fn discrete_table_shape() {
        let d = xscale_discrete();
        assert_eq!(d.levels().len(), 5);
        assert_eq!(d.min_freq(), 150.0);
        assert_eq!(d.max_freq(), 1000.0);
    }

    #[test]
    fn our_fit_tracks_the_paper_fit() {
        let ours = xscale_fitted();
        let paper = xscale_paper_fit();
        // Same neighbourhood of parameters…
        assert!(
            (ours.alpha - paper.alpha).abs() < 0.4,
            "alpha {}",
            ours.alpha
        );
        // …and close predictions at every table point (both are fits of the
        // same five points).
        for (f, _) in XSCALE_TABLE {
            let a = ours.power(f);
            let b = paper.power(f);
            assert!(
                (a - b).abs() / b < 0.30,
                "at {f} MHz: ours {a} vs paper {b}"
            );
        }
    }

    #[test]
    fn paper_fit_reproduces_measured_power_roughly() {
        let m = xscale_paper_fit();
        for (f, p) in XSCALE_TABLE {
            let pred = m.power(f);
            assert!(
                (pred - p).abs() / p < 0.30,
                "at {f} MHz: predicted {pred}, measured {p}"
            );
        }
    }

    #[test]
    fn critical_frequency_is_within_the_table() {
        let m = xscale_fitted();
        let fc = m.critical_frequency();
        assert!(
            fc > 100.0 && fc < 1000.0,
            "critical frequency {fc} out of range"
        );
    }
}
