//! Periodic and frame-based task adapters.
//!
//! The paper situates aperiodic scheduling among the classical models —
//! frame-based and periodic task systems are special cases where every
//! job's window is implied by a period. These adapters expand such
//! systems into explicit aperiodic job sets over a horizon so the entire
//! `esched` pipeline (heuristics, optimum, simulator) applies unchanged,
//! and so the aperiodic algorithms can be sanity-checked against the
//! well-understood periodic special case.

use esched_types::{Task, TaskSet};

/// A periodic task: a job of `wcet` work is released every `period` time
/// units starting at `offset`, due `deadline` after its release
/// (constrained deadline: `deadline ≤ period`; `None` means implicit
/// deadline = period).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PeriodicTask {
    /// Inter-arrival time.
    pub period: f64,
    /// Work per job.
    pub wcet: f64,
    /// Release of the first job.
    pub offset: f64,
    /// Relative deadline (`None` ⇒ the period).
    pub deadline: Option<f64>,
}

impl PeriodicTask {
    /// Implicit-deadline task at offset 0.
    ///
    /// # Panics
    /// If parameters are non-positive or non-finite.
    pub fn new(period: f64, wcet: f64) -> Self {
        assert!(period > 0.0 && period.is_finite());
        assert!(wcet > 0.0 && wcet.is_finite());
        Self {
            period,
            wcet,
            offset: 0.0,
            deadline: None,
        }
    }

    /// Builder: set the offset.
    pub fn with_offset(mut self, offset: f64) -> Self {
        assert!(offset >= 0.0 && offset.is_finite());
        self.offset = offset;
        self
    }

    /// Builder: set a constrained relative deadline.
    ///
    /// # Panics
    /// If `d` is not in `(0, period]`.
    pub fn with_deadline(mut self, d: f64) -> Self {
        assert!(d > 0.0 && d <= self.period);
        self.deadline = Some(d);
        self
    }

    /// Utilization `wcet / period`.
    pub fn utilization(&self) -> f64 {
        self.wcet / self.period
    }
}

/// The hyperperiod (LCM of periods) of a periodic system whose periods
/// are close to integer multiples of `resolution` — `None` when a period
/// is not representable at that resolution (e.g. irrational ratios).
pub fn hyperperiod(tasks: &[PeriodicTask], resolution: f64) -> Option<f64> {
    assert!(resolution > 0.0);
    fn gcd(a: u64, b: u64) -> u64 {
        if b == 0 {
            a
        } else {
            gcd(b, a % b)
        }
    }
    let mut lcm: u64 = 1;
    for t in tasks {
        let scaled = t.period / resolution;
        let rounded = scaled.round();
        if (scaled - rounded).abs() > 1e-6 * scaled.max(1.0) || rounded <= 0.0 {
            return None;
        }
        let p = rounded as u64;
        lcm = lcm / gcd(lcm, p) * p;
        if lcm > u64::MAX / 2 {
            return None; // overflow guard; hyperperiod is impractical anyway
        }
    }
    Some(lcm as f64 * resolution)
}

/// Expand a periodic system into the aperiodic jobs released in
/// `[0, horizon)`. Jobs whose *deadline* falls beyond the horizon are
/// excluded, so the expansion is schedulable iff the original system is
/// over that span.
///
/// # Panics
/// If the expansion is empty (horizon too short) — schedule something.
pub fn expand_periodic(tasks: &[PeriodicTask], horizon: f64) -> TaskSet {
    assert!(horizon > 0.0);
    let mut jobs = Vec::new();
    for t in tasks {
        let rel_deadline = t.deadline.unwrap_or(t.period);
        let mut release = t.offset;
        while release < horizon {
            let deadline = release + rel_deadline;
            if deadline <= horizon + 1e-12 {
                jobs.push(Task::of(release, deadline, t.wcet));
            }
            release += t.period;
        }
    }
    TaskSet::new(jobs).expect("horizon too short: no complete jobs")
}

/// A frame-based system: all `works` share synchronized frames of length
/// `frame`, repeated `frames` times — every job in frame `k` has window
/// `[k·frame, (k+1)·frame]`.
pub fn frame_based(works: &[f64], frame: f64, frames: usize) -> TaskSet {
    assert!(frame > 0.0 && frames > 0 && !works.is_empty());
    let mut jobs = Vec::with_capacity(works.len() * frames);
    for k in 0..frames {
        let start = k as f64 * frame;
        for &w in works {
            jobs.push(Task::of(start, start + frame, w));
        }
    }
    TaskSet::new(jobs).expect("validated inputs")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hyperperiod_of_integer_periods() {
        let ts = [
            PeriodicTask::new(4.0, 1.0),
            PeriodicTask::new(6.0, 1.0),
            PeriodicTask::new(10.0, 1.0),
        ];
        assert_eq!(hyperperiod(&ts, 1.0), Some(60.0));
    }

    #[test]
    fn hyperperiod_with_fractional_resolution() {
        let ts = [PeriodicTask::new(0.5, 0.1), PeriodicTask::new(0.75, 0.1)];
        assert_eq!(hyperperiod(&ts, 0.25), Some(1.5));
    }

    #[test]
    fn hyperperiod_rejects_unrepresentable_periods() {
        let ts = [PeriodicTask::new(std::f64::consts::PI, 1.0)];
        assert_eq!(hyperperiod(&ts, 1.0), None);
    }

    #[test]
    fn expansion_counts_and_windows() {
        let ts = [
            PeriodicTask::new(4.0, 1.0),
            PeriodicTask::new(6.0, 2.0).with_offset(1.0),
        ];
        let jobs = expand_periodic(&ts, 12.0);
        // Task 0: releases 0,4,8 → deadlines 4,8,12 (all fit): 3 jobs.
        // Task 1: releases 1,7 → deadlines 7,13; 13 > 12 excluded: 1 job.
        assert_eq!(jobs.len(), 4);
        let windows: Vec<(f64, f64)> = jobs
            .tasks()
            .iter()
            .map(|t| (t.release, t.deadline))
            .collect();
        assert!(windows.contains(&(0.0, 4.0)));
        assert!(windows.contains(&(8.0, 12.0)));
        assert!(windows.contains(&(1.0, 7.0)));
    }

    #[test]
    fn constrained_deadlines_shrink_windows() {
        let ts = [PeriodicTask::new(10.0, 2.0).with_deadline(5.0)];
        let jobs = expand_periodic(&ts, 20.0);
        assert_eq!(jobs.len(), 2);
        assert_eq!(jobs.get(0).deadline, 5.0);
        assert_eq!(jobs.get(1).release, 10.0);
        assert_eq!(jobs.get(1).deadline, 15.0);
    }

    #[test]
    fn frame_based_structure() {
        let jobs = frame_based(&[1.0, 2.0, 3.0], 5.0, 2);
        assert_eq!(jobs.len(), 6);
        // All frame-0 jobs share the window [0,5].
        for i in 0..3 {
            assert_eq!(jobs.get(i).release, 0.0);
            assert_eq!(jobs.get(i).deadline, 5.0);
        }
        for i in 3..6 {
            assert_eq!(jobs.get(i).release, 5.0);
        }
    }

    #[test]
    fn periodic_expansion_schedules_cleanly() {
        use esched_types::validate_schedule;
        // A 3-task implicit-deadline system at utilization 1.3 on 2 cores.
        let ts = [
            PeriodicTask::new(4.0, 2.0),
            PeriodicTask::new(6.0, 3.0),
            PeriodicTask::new(12.0, 3.6),
        ];
        let jobs = expand_periodic(&ts, 12.0);
        // We can't depend on esched-core here (circular); just check the
        // expansion is well-formed and feasibility holds at f = 1 via the
        // opt crate's flow test.
        use esched_opt::feasible_at_frequency;
        use esched_subinterval::Timeline;
        let tl = Timeline::build(&jobs);
        assert!(feasible_at_frequency(&jobs, &tl, 2, 1.0));
        // And any legal schedule of the expansion respects the periodic
        // windows by construction of the tasks (checked by the validator
        // elsewhere; here we at least validate an empty-schedule failure
        // path exercises the right task count).
        let empty = esched_types::Schedule::new(2);
        let report = validate_schedule(&empty, &jobs);
        assert_eq!(report.violations.len(), jobs.len()); // all underserved
    }

    #[test]
    fn utilization_accessor() {
        assert!((PeriodicTask::new(4.0, 1.0).utilization() - 0.25).abs() < 1e-12);
    }
}
