//! Random aperiodic task-set generation — Section VI's simulation design.
//!
//! The paper generates tasks by drawing release times uniformly on
//! `[0, 200]`, execution requirements uniformly on `[10, 30]`, and an
//! *intensity* per task (either from the discrete ladder
//! `{0.1, 0.2, …, 1.0}` or a continuous range `[lo, 1.0]`), then derives
//! the deadline as `D_i = R_i + C_i / intensity_i`. Every knob is a field
//! of [`GeneratorConfig`]; generation is deterministic given a seed
//! (ChaCha8), so every experiment in this workspace is reproducible
//! bit-for-bit.

use esched_obs::rng::ChaCha8;
use esched_types::{Task, TaskSet};

/// How task intensities are drawn.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum IntensityDist {
    /// Uniform over the discrete ladder `{lo, lo+step, …, hi}` — the
    /// paper's `{0.1, 0.2, …, 1.0}` uses `ladder(0.1, 1.0, 0.1)`.
    Ladder {
        /// Smallest intensity.
        lo: f64,
        /// Largest intensity.
        hi: f64,
        /// Ladder step.
        step: f64,
    },
    /// Continuous uniform on `[lo, hi]` — the Fig. 9 intensity-range sweep.
    Uniform {
        /// Lower bound.
        lo: f64,
        /// Upper bound.
        hi: f64,
    },
}

impl IntensityDist {
    pub(crate) fn sample(&self, rng: &mut ChaCha8) -> f64 {
        match *self {
            IntensityDist::Ladder { lo, hi, step } => {
                let rungs = ((hi - lo) / step).round() as usize + 1;
                let k = rng.gen_range_usize(0, rungs);
                (lo + k as f64 * step).min(hi)
            }
            IntensityDist::Uniform { lo, hi } => {
                if (hi - lo).abs() < 1e-15 {
                    lo
                } else {
                    rng.gen_range_f64(lo, hi)
                }
            }
        }
    }
}

/// All generation knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GeneratorConfig {
    /// Number of tasks `n`.
    pub tasks: usize,
    /// Release times uniform on `[0, release_span]` (paper: 200).
    pub release_span: f64,
    /// Execution requirements uniform on `[wcec_lo, wcec_hi]`
    /// (paper: `[10, 30]`; the XScale experiment uses `[4000, 8000]`).
    pub wcec_lo: f64,
    /// Upper bound of the requirement range.
    pub wcec_hi: f64,
    /// Intensity distribution.
    pub intensity: IntensityDist,
    /// Frequency scale in the deadline formula:
    /// `D = R + C/(intensity · freq_scale)`. The analytic experiments use
    /// 1.0; the XScale experiment uses the second frequency level
    /// (400 MHz), per Section VI.C.
    pub freq_scale: f64,
}

impl GeneratorConfig {
    /// The paper's default analytic-model configuration: `n = 20`,
    /// releases on `[0, 200]`, work on `[10, 30]`, intensity ladder
    /// `{0.1, …, 1.0}`, `freq_scale = 1`.
    pub fn paper_default() -> Self {
        Self {
            tasks: 20,
            release_span: 200.0,
            wcec_lo: 10.0,
            wcec_hi: 30.0,
            intensity: IntensityDist::Ladder {
                lo: 0.1,
                hi: 1.0,
                step: 0.1,
            },
            freq_scale: 1.0,
        }
    }

    /// Section VI.C's XScale configuration: work on `[4000, 8000]`
    /// megacycles, intensity uniform `[0.1, 1.0]`, deadlines scaled by
    /// `f₂ = 400 MHz`.
    pub fn xscale_default() -> Self {
        Self {
            tasks: 20,
            release_span: 200.0,
            wcec_lo: 4000.0,
            wcec_hi: 8000.0,
            intensity: IntensityDist::Uniform { lo: 0.1, hi: 1.0 },
            freq_scale: 400.0,
        }
    }

    /// Builder-style: set the number of tasks.
    pub fn with_tasks(mut self, n: usize) -> Self {
        self.tasks = n;
        self
    }

    /// Builder-style: set the intensity distribution.
    pub fn with_intensity(mut self, d: IntensityDist) -> Self {
        self.intensity = d;
        self
    }
}

/// Deterministic task-set generator.
#[derive(Debug, Clone)]
pub struct WorkloadGenerator {
    config: GeneratorConfig,
    rng: ChaCha8,
}

impl WorkloadGenerator {
    /// Create a generator with `config`, seeded by `seed`.
    ///
    /// # Examples
    ///
    /// ```
    /// use esched_workload::{GeneratorConfig, WorkloadGenerator};
    ///
    /// let mut gen = WorkloadGenerator::new(GeneratorConfig::paper_default(), 2014);
    /// let tasks = gen.generate();
    /// assert_eq!(tasks.len(), 20);
    /// // Same seed → same tasks.
    /// let same = WorkloadGenerator::new(GeneratorConfig::paper_default(), 2014).generate();
    /// assert_eq!(tasks, same);
    /// ```
    pub fn new(config: GeneratorConfig, seed: u64) -> Self {
        Self {
            config,
            rng: ChaCha8::seed_from_u64(seed),
        }
    }

    /// The configuration.
    pub fn config(&self) -> &GeneratorConfig {
        &self.config
    }

    /// Draw one task set.
    pub fn generate(&mut self) -> TaskSet {
        let c = &self.config;
        assert!(c.tasks > 0, "cannot generate an empty task set");
        assert!(c.wcec_lo > 0.0 && c.wcec_hi >= c.wcec_lo);
        let mut tasks = Vec::with_capacity(c.tasks);
        for _ in 0..c.tasks {
            let release = if c.release_span > 0.0 {
                self.rng.gen_range_f64(0.0, c.release_span)
            } else {
                0.0
            };
            let wcec = if (c.wcec_hi - c.wcec_lo).abs() < 1e-15 {
                c.wcec_lo
            } else {
                self.rng.gen_range_f64(c.wcec_lo, c.wcec_hi)
            };
            let intensity = c.intensity.sample(&mut self.rng);
            debug_assert!(intensity > 0.0);
            let deadline = release + wcec / (intensity * c.freq_scale);
            tasks.push(Task::of(release, deadline, wcec));
        }
        TaskSet::new(tasks).expect("generated tasks are valid by construction")
    }

    /// Draw `count` independent task sets.
    pub fn generate_many(&mut self, count: usize) -> Vec<TaskSet> {
        (0..count).map(|_| self.generate()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_per_seed() {
        let cfg = GeneratorConfig::paper_default();
        let a = WorkloadGenerator::new(cfg, 42).generate();
        let b = WorkloadGenerator::new(cfg, 42).generate();
        let c = WorkloadGenerator::new(cfg, 43).generate();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn fields_respect_configured_ranges() {
        let cfg = GeneratorConfig::paper_default().with_tasks(200);
        let ts = WorkloadGenerator::new(cfg, 7).generate();
        assert_eq!(ts.len(), 200);
        for (_, t) in ts.iter() {
            assert!((0.0..200.0).contains(&t.release));
            assert!((10.0..30.0).contains(&t.wcec));
            // intensity = C/(D−R) ∈ [0.1, 1.0] on the ladder.
            let intensity = t.intensity();
            assert!(
                (0.1 - 1e-9..=1.0 + 1e-9).contains(&intensity),
                "intensity {intensity}"
            );
            // Ladder values land on multiples of 0.1.
            let rung = (intensity * 10.0).round() / 10.0;
            assert!((intensity - rung).abs() < 1e-9, "intensity {intensity}");
        }
    }

    #[test]
    fn uniform_intensity_range_is_respected() {
        let cfg = GeneratorConfig::paper_default()
            .with_intensity(IntensityDist::Uniform { lo: 0.5, hi: 1.0 })
            .with_tasks(100);
        let ts = WorkloadGenerator::new(cfg, 11).generate();
        for (_, t) in ts.iter() {
            assert!(t.intensity() >= 0.5 - 1e-9 && t.intensity() <= 1.0 + 1e-9);
        }
    }

    #[test]
    fn degenerate_uniform_range_pins_intensity() {
        let cfg = GeneratorConfig::paper_default()
            .with_intensity(IntensityDist::Uniform { lo: 1.0, hi: 1.0 })
            .with_tasks(30);
        let ts = WorkloadGenerator::new(cfg, 3).generate();
        for (_, t) in ts.iter() {
            assert!((t.intensity() - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn xscale_config_deadline_scaling() {
        // D = R + C/(i·400): with C ≤ 8000 and i ≥ 0.1, windows are at most
        // 8000/(0.1·400) = 200 s long.
        let ts = WorkloadGenerator::new(GeneratorConfig::xscale_default(), 5).generate();
        for (_, t) in ts.iter() {
            assert!(t.window_len() <= 200.0 + 1e-9);
            assert!((4000.0..8000.0).contains(&t.wcec));
        }
    }

    #[test]
    fn generate_many_yields_distinct_sets() {
        let mut g = WorkloadGenerator::new(GeneratorConfig::paper_default(), 1);
        let sets = g.generate_many(5);
        assert_eq!(sets.len(), 5);
        assert_ne!(sets[0], sets[1]);
    }
}
