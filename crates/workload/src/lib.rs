//! # esched-workload
//!
//! Workload generation and platform configurations for the experiments:
//!
//! * [`generator`] — the paper's random aperiodic task generator
//!   (uniform releases/requirements, intensity-derived deadlines),
//!   deterministic per seed,
//! * [`periodic`] — periodic and frame-based task systems expanded into
//!   aperiodic job sets (the classical special cases),
//! * [`spec`] — the unified [`WorkloadSpec`] builder over every
//!   generator family (continuous paper/XScale instances, grid-snapped
//!   large-n scaling workloads),
//! * [`scenarios`] — the paper's worked examples and domain-flavoured
//!   fixed workloads,
//! * [`xscale`] — the Intel XScale frequency/power table and its fitted
//!   continuous model (Section VI.C),
//! * [`io`] — JSON import/export of task sets and results.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod generator;
pub mod io;
pub mod periodic;
pub mod scenarios;
pub mod spec;
pub mod xscale;

pub use generator::{GeneratorConfig, IntensityDist, WorkloadGenerator};
pub use io::{
    load_task_set, load_task_set_csv, save_json, save_task_set, save_task_set_csv,
    task_set_from_csv, task_set_to_csv,
};
pub use periodic::{expand_periodic, frame_based, hyperperiod, PeriodicTask};
pub use scenarios::{
    intro_three_tasks, media_server_burst, mixed_criticality, section_vd_six_tasks,
};
pub use spec::{ArrivalLaw, WorkloadSpec};
pub use xscale::{xscale_discrete, xscale_fitted, xscale_paper_fit, XSCALE_F2, XSCALE_TABLE};
