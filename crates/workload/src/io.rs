//! JSON import/export of task sets and experiment artifacts.

use esched_obs::json::{parse, ToJson};
use esched_obs::FromJson;
use esched_types::TaskSet;
use std::fs;
use std::io;
use std::path::Path;

/// Save a task set as pretty-printed JSON.
///
/// # Errors
/// Propagates filesystem errors as [`io::Error`].
pub fn save_task_set(tasks: &TaskSet, path: &Path) -> io::Result<()> {
    fs::write(path, tasks.to_json().to_string_pretty())
}

/// Load a task set from JSON.
///
/// # Errors
/// Propagates filesystem errors; malformed JSON or invalid tasks map to
/// [`io::ErrorKind::InvalidData`]. (`TaskSet::from_json` goes through
/// `TaskSet::new`, so loaded sets are always validated.)
pub fn load_task_set(path: &Path) -> io::Result<TaskSet> {
    let json = fs::read_to_string(path)?;
    let value = parse(&json).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
    TaskSet::from_json(&value).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
}

/// Serialize any [`ToJson`] value to a pretty-printed JSON file (used by
/// the experiment harness for results).
///
/// # Errors
/// Propagates filesystem errors.
pub fn save_json<T: ToJson>(value: &T, path: &Path) -> io::Result<()> {
    fs::write(path, value.to_json().to_string_pretty())
}

/// Render a task set as CSV (`release,deadline,wcec`, one row per task).
pub fn task_set_to_csv(tasks: &TaskSet) -> String {
    let mut out = String::from("release,deadline,wcec\n");
    for t in tasks.tasks() {
        out.push_str(&format!("{},{},{}\n", t.release, t.deadline, t.wcec));
    }
    out
}

/// Parse a task set from CSV text (header `release,deadline,wcec`
/// required; blank lines ignored).
///
/// # Errors
/// [`io::ErrorKind::InvalidData`] on a malformed header, unparsable
/// numbers, or invalid tasks.
pub fn task_set_from_csv(text: &str) -> io::Result<TaskSet> {
    let bad = |msg: String| io::Error::new(io::ErrorKind::InvalidData, msg);
    let mut lines = text.lines().filter(|l| !l.trim().is_empty());
    let header = lines.next().ok_or_else(|| bad("empty CSV".into()))?;
    if header.trim() != "release,deadline,wcec" {
        return Err(bad(format!("unexpected header: {header:?}")));
    }
    let mut tasks = Vec::new();
    for (lineno, line) in lines.enumerate() {
        let fields: Vec<&str> = line.split(',').map(str::trim).collect();
        if fields.len() != 3 {
            return Err(bad(format!("row {}: expected 3 fields", lineno + 2)));
        }
        let parse = |s: &str| -> io::Result<f64> {
            s.parse::<f64>()
                .map_err(|e| bad(format!("row {}: {e}", lineno + 2)))
        };
        let (r, d, c) = (parse(fields[0])?, parse(fields[1])?, parse(fields[2])?);
        tasks.push(
            esched_types::Task::new(r, d, c)
                .map_err(|e| bad(format!("row {}: {e}", lineno + 2)))?,
        );
    }
    TaskSet::new(tasks).map_err(|e| bad(e.to_string()))
}

/// Save a task set as CSV.
///
/// # Errors
/// Propagates filesystem errors.
pub fn save_task_set_csv(tasks: &TaskSet, path: &Path) -> io::Result<()> {
    fs::write(path, task_set_to_csv(tasks))
}

/// Load a task set from a CSV file.
///
/// # Errors
/// Propagates filesystem errors; malformed content maps to
/// [`io::ErrorKind::InvalidData`].
pub fn load_task_set_csv(path: &Path) -> io::Result<TaskSet> {
    task_set_from_csv(&fs::read_to_string(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenarios::intro_three_tasks;

    #[test]
    fn round_trip_through_disk() {
        let dir = std::env::temp_dir().join("esched-io-test");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("tasks.json");
        let ts = intro_three_tasks();
        save_task_set(&ts, &path).unwrap();
        let back = load_task_set(&path).unwrap();
        assert_eq!(ts, back);
        fs::remove_file(&path).ok();
    }

    #[test]
    fn invalid_json_is_rejected() {
        let dir = std::env::temp_dir().join("esched-io-test");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bad.json");
        fs::write(&path, "{not json").unwrap();
        assert!(load_task_set(&path).is_err());
        fs::remove_file(&path).ok();
    }

    #[test]
    fn invalid_tasks_are_rejected_on_load() {
        let dir = std::env::temp_dir().join("esched-io-test");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("invalid-tasks.json");
        // Deadline before release: parses as JSON but fails re-validation.
        fs::write(
            &path,
            r#"{"tasks":[{"release":5.0,"deadline":1.0,"wcec":2.0}]}"#,
        )
        .unwrap();
        assert!(load_task_set(&path).is_err());
        fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_file_errors() {
        assert!(load_task_set(Path::new("/nonexistent/esched.json")).is_err());
    }

    #[test]
    fn csv_round_trip() {
        let ts = intro_three_tasks();
        let csv = task_set_to_csv(&ts);
        assert!(csv.starts_with("release,deadline,wcec\n"));
        let back = task_set_from_csv(&csv).unwrap();
        assert_eq!(ts, back);
    }

    #[test]
    fn csv_rejects_malformed_input() {
        assert!(task_set_from_csv("").is_err());
        assert!(task_set_from_csv("a,b,c\n1,2,3\n").is_err()); // bad header
        assert!(task_set_from_csv("release,deadline,wcec\n1,2\n").is_err()); // short row
        assert!(task_set_from_csv("release,deadline,wcec\n1,zz,3\n").is_err()); // NaN field
        assert!(task_set_from_csv("release,deadline,wcec\n5,1,2\n").is_err()); // inverted window
    }

    #[test]
    fn csv_file_round_trip() {
        let dir = std::env::temp_dir().join("esched-io-test");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("tasks.csv");
        let ts = intro_three_tasks();
        save_task_set_csv(&ts, &path).unwrap();
        let back = load_task_set_csv(&path).unwrap();
        assert_eq!(ts, back);
        fs::remove_file(&path).ok();
    }

    #[test]
    fn csv_tolerates_blank_lines_and_spaces() {
        let csv = "release,deadline,wcec\n\n 0 , 12 , 4 \n\n2,10,2\n";
        let ts = task_set_from_csv(csv).unwrap();
        assert_eq!(ts.len(), 2);
        assert_eq!(ts.get(0).wcec, 4.0);
    }
}
