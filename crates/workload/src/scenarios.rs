//! Named task-set scenarios: the paper's worked examples plus a few
//! domain-flavoured workloads used by the runnable examples.

use esched_types::TaskSet;

/// Fig. 1(a) / Section I.B — the three-task YDS introductory example:
/// `R = (0, 2, 4)`, `D = (12, 10, 8)`, `C = (4, 2, 4)`.
pub fn intro_three_tasks() -> TaskSet {
    TaskSet::from_triples(&[(0.0, 12.0, 4.0), (2.0, 10.0, 2.0), (4.0, 8.0, 4.0)])
}

/// Section V.D — the six-task quad-core worked example
/// (`τ_i = (R, C, D)`: (0,8,10), (2,14,18), (4,8,16), (6,4,14), (8,10,20),
/// (12,6,22)).
pub fn section_vd_six_tasks() -> TaskSet {
    TaskSet::from_triples(&[
        (0.0, 10.0, 8.0),
        (2.0, 18.0, 14.0),
        (4.0, 16.0, 8.0),
        (6.0, 14.0, 4.0),
        (8.0, 20.0, 10.0),
        (12.0, 22.0, 6.0),
    ])
}

/// A bursty "media server" workload: three waves of decode jobs arriving
/// close together, each wave tighter than the last. Exercises heavily
/// overlapped subintervals at several points of the horizon.
pub fn media_server_burst() -> TaskSet {
    TaskSet::from_triples(&[
        // Wave 1 (t ≈ 0): relaxed deadlines.
        (0.0, 40.0, 12.0),
        (1.0, 42.0, 10.0),
        (2.0, 38.0, 14.0),
        (3.0, 44.0, 8.0),
        // Wave 2 (t ≈ 20): moderate.
        (20.0, 45.0, 10.0),
        (21.0, 48.0, 12.0),
        (22.0, 50.0, 9.0),
        (23.0, 46.0, 11.0),
        (24.0, 52.0, 7.0),
        // Wave 3 (t ≈ 40): tight burst.
        (40.0, 52.0, 8.0),
        (41.0, 53.0, 9.0),
        (42.0, 54.0, 8.0),
        (43.0, 55.0, 7.0),
    ])
}

/// A "periodic-ish maintenance" workload: long-horizon background jobs
/// plus short urgent jobs sprinkled through. Exercises the DER rule's
/// preference for dense tasks.
pub fn mixed_criticality() -> TaskSet {
    TaskSet::from_triples(&[
        // Background sweepers: huge windows, low intensity.
        (0.0, 100.0, 15.0),
        (0.0, 100.0, 18.0),
        (0.0, 100.0, 12.0),
        // Urgent jobs: intensity near 1.
        (10.0, 16.0, 5.5),
        (30.0, 37.0, 6.5),
        (50.0, 55.0, 4.5),
        (70.0, 78.0, 7.0),
        // Medium jobs.
        (15.0, 45.0, 12.0),
        (40.0, 80.0, 16.0),
        (60.0, 95.0, 14.0),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intro_matches_fig1a() {
        let ts = intro_three_tasks();
        assert_eq!(ts.len(), 3);
        assert_eq!(ts.get(2).release, 4.0);
        assert_eq!(ts.get(2).deadline, 8.0);
        assert_eq!(ts.get(2).wcec, 4.0);
    }

    #[test]
    fn vd_has_eleven_subintervals() {
        let ts = section_vd_six_tasks();
        assert_eq!(ts.event_points().len(), 12);
    }

    #[test]
    fn scenario_sets_are_valid_and_nontrivial() {
        for ts in [media_server_burst(), mixed_criticality()] {
            assert!(ts.len() >= 10);
            assert!(ts.total_work() > 0.0);
            // Some overlap exists (peak intensity meaningful).
            assert!(ts.peak_intensity() > 0.0);
        }
    }
}
