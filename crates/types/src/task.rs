//! Aperiodic task and task-set types.
//!
//! A task is the paper's triple `τ_i = (R_i, D_i, C_i)`: release time,
//! deadline, and execution requirement. The execution requirement is the
//! number of work units the task must receive; running at frequency `f` for
//! `t` time units completes `f·t` work units, so a requirement `C` executed
//! entirely at frequency `f` occupies a core for `C/f` time.

use crate::time::{approx_le, definitely_lt, sort_dedup_times, Interval};
use std::fmt;

/// Identifier of a task within a [`TaskSet`] (its index).
pub type TaskId = usize;

/// An independent, preemptive, migratable aperiodic task.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Task {
    /// Release time `R_i`: the task cannot execute before this instant.
    pub release: f64,
    /// Absolute deadline `D_i`: the task must be complete by this instant.
    pub deadline: f64,
    /// Execution requirement `C_i` in work units (cycles at unit frequency).
    pub wcec: f64,
}

/// Errors raised by [`Task::new`] / [`TaskSet::new`] validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TaskError {
    /// A field was NaN or infinite.
    NonFinite {
        /// Which task (set-level errors use the offending index).
        index: usize,
    },
    /// `deadline ≤ release`, leaving no execution window.
    EmptyWindow {
        /// Which task.
        index: usize,
    },
    /// `wcec ≤ 0`; zero-work tasks must simply be omitted.
    NonPositiveWork {
        /// Which task.
        index: usize,
    },
    /// The task set is empty.
    EmptySet,
}

impl fmt::Display for TaskError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TaskError::NonFinite { index } => {
                write!(f, "task {index}: release/deadline/wcec must be finite")
            }
            TaskError::EmptyWindow { index } => {
                write!(f, "task {index}: deadline must be strictly after release")
            }
            TaskError::NonPositiveWork { index } => {
                write!(f, "task {index}: execution requirement must be positive")
            }
            TaskError::EmptySet => write!(f, "task set must contain at least one task"),
        }
    }
}

impl std::error::Error for TaskError {}

impl Task {
    /// Create a task, validating its invariants.
    ///
    /// # Errors
    /// [`TaskError`] if any field is non-finite, the window `[release,
    /// deadline]` is empty, or the execution requirement is non-positive.
    pub fn new(release: f64, deadline: f64, wcec: f64) -> Result<Self, TaskError> {
        let t = Self {
            release,
            deadline,
            wcec,
        };
        t.validate(0)?;
        Ok(t)
    }

    /// Like [`Task::new`] but panicking; convenient in tests and examples.
    ///
    /// # Panics
    /// If validation fails.
    pub fn of(release: f64, deadline: f64, wcec: f64) -> Self {
        Self::new(release, deadline, wcec).expect("invalid task")
    }

    fn validate(&self, index: usize) -> Result<(), TaskError> {
        if !(self.release.is_finite() && self.deadline.is_finite() && self.wcec.is_finite()) {
            return Err(TaskError::NonFinite { index });
        }
        if !definitely_lt(self.release, self.deadline) {
            return Err(TaskError::EmptyWindow { index });
        }
        if self.wcec <= 0.0 {
            return Err(TaskError::NonPositiveWork { index });
        }
        Ok(())
    }

    /// The execution window `[R_i, D_i]`.
    #[inline]
    pub fn window(&self) -> Interval {
        Interval::new(self.release, self.deadline)
    }

    /// Window length `D_i − R_i`.
    #[inline]
    pub fn window_len(&self) -> f64 {
        self.deadline - self.release
    }

    /// The paper's *intensity* `C_i / (D_i − R_i)`: the minimum constant
    /// frequency at which the task can complete if it runs during its whole
    /// window. Intensity 1 means the window has no slack at unit frequency.
    #[inline]
    pub fn intensity(&self) -> f64 {
        self.wcec / self.window_len()
    }

    /// Laxity at unit frequency: `window_len − C_i`. Negative laxity means
    /// the task needs frequency above 1 to meet its deadline even running
    /// continuously.
    #[inline]
    pub fn laxity(&self) -> f64 {
        self.window_len() - self.wcec
    }

    /// Does this task's window fully cover `iv`? (This is the paper's
    /// criterion for `τ` being an *overlapping task* of subinterval `iv`.)
    #[inline]
    pub fn covers(&self, iv: &Interval) -> bool {
        self.window().covers(iv)
    }
}

/// An immutable, validated collection of tasks.
#[derive(Debug, Clone, PartialEq)]
pub struct TaskSet {
    tasks: Vec<Task>,
}

impl TaskSet {
    /// Validate and wrap a vector of tasks.
    ///
    /// # Errors
    /// The first [`TaskError`] found, or [`TaskError::EmptySet`].
    pub fn new(tasks: Vec<Task>) -> Result<Self, TaskError> {
        if tasks.is_empty() {
            return Err(TaskError::EmptySet);
        }
        for (i, t) in tasks.iter().enumerate() {
            t.validate(i)?;
        }
        Ok(Self { tasks })
    }

    /// Build from `(release, deadline, wcec)` triples, panicking on invalid
    /// input. Convenient in tests and examples.
    ///
    /// # Panics
    /// If any triple is invalid or the list is empty.
    pub fn from_triples(triples: &[(f64, f64, f64)]) -> Self {
        Self::new(triples.iter().map(|&(r, d, c)| Task::of(r, d, c)).collect())
            .expect("invalid task set")
    }

    /// Number of tasks `n`.
    #[inline]
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// True when the set is empty (unreachable for validated sets, but kept
    /// for API completeness).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    /// The tasks as a slice.
    #[inline]
    pub fn tasks(&self) -> &[Task] {
        &self.tasks
    }

    /// Task by id.
    #[inline]
    pub fn get(&self, id: TaskId) -> &Task {
        &self.tasks[id]
    }

    /// Iterate over `(id, task)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (TaskId, &Task)> {
        self.tasks.iter().enumerate()
    }

    /// Earliest release time `R̄ = min_i R_i`.
    pub fn earliest_release(&self) -> f64 {
        self.tasks
            .iter()
            .map(|t| t.release)
            .fold(f64::INFINITY, f64::min)
    }

    /// Latest deadline `D̄ = max_i D_i`.
    pub fn latest_deadline(&self) -> f64 {
        self.tasks
            .iter()
            .map(|t| t.deadline)
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// The scheduling horizon `[R̄, D̄]`.
    pub fn horizon(&self) -> Interval {
        Interval::new(self.earliest_release(), self.latest_deadline())
    }

    /// Total execution requirement `Σ_i C_i`.
    pub fn total_work(&self) -> f64 {
        crate::time::compensated_sum(self.tasks.iter().map(|t| t.wcec))
    }

    /// All distinct release/deadline event points, sorted ascending —
    /// the `t_1 < t_2 < … < t_N` boundary set of Section IV.
    pub fn event_points(&self) -> Vec<f64> {
        let mut pts = Vec::new();
        self.event_points_into(&mut pts);
        pts
    }

    /// [`Self::event_points`] into a caller-owned buffer (cleared first),
    /// so batch pipelines can reuse one allocation across task sets.
    pub fn event_points_into(&self, out: &mut Vec<f64>) {
        out.clear();
        out.reserve(2 * self.tasks.len());
        for t in &self.tasks {
            out.push(t.release);
            out.push(t.deadline);
        }
        sort_dedup_times(out);
    }

    /// Work released in `[t1, t2]`: the paper's `C(t1, t2)` — total
    /// requirement of tasks with `R_i ≥ t1` and `D_i ≤ t2`. This drives the
    /// YDS intensity computation and feasibility checks.
    pub fn demand(&self, t1: f64, t2: f64) -> f64 {
        crate::time::compensated_sum(
            self.tasks
                .iter()
                .filter(|t| approx_le(t1, t.release) && approx_le(t.deadline, t2))
                .map(|t| t.wcec),
        )
    }

    /// Maximum over all event-point pairs of the interval intensity
    /// `C(t1,t2)/(t2−t1)` — the peak processing density of the set. On a
    /// uniprocessor this is exactly the maximum frequency YDS will use.
    pub fn peak_intensity(&self) -> f64 {
        let pts = self.event_points();
        let mut peak: f64 = 0.0;
        for (a, &t1) in pts.iter().enumerate() {
            for &t2 in &pts[a + 1..] {
                let len = t2 - t1;
                if len > crate::time::EPS {
                    peak = peak.max(self.demand(t1, t2) / len);
                }
            }
        }
        peak
    }

    /// Ids of the tasks whose window covers `iv` (the *overlapping tasks* of
    /// a subinterval, in paper terms).
    pub fn overlapping(&self, iv: &Interval) -> Vec<TaskId> {
        self.iter()
            .filter(|(_, t)| t.covers(iv))
            .map(|(i, _)| i)
            .collect()
    }
}

impl std::ops::Index<TaskId> for TaskSet {
    type Output = Task;
    fn index(&self, id: TaskId) -> &Task {
        &self.tasks[id]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_intro_tasks() -> TaskSet {
        // Fig. 1(a): R = (0, 2, 4), D = (12, 10, 8), C = (4, 2, 4).
        TaskSet::from_triples(&[(0.0, 12.0, 4.0), (2.0, 10.0, 2.0), (4.0, 8.0, 4.0)])
    }

    #[test]
    fn task_validation() {
        assert!(Task::new(0.0, 1.0, 1.0).is_ok());
        assert_eq!(
            Task::new(1.0, 1.0, 1.0),
            Err(TaskError::EmptyWindow { index: 0 })
        );
        assert_eq!(
            Task::new(2.0, 1.0, 1.0),
            Err(TaskError::EmptyWindow { index: 0 })
        );
        assert_eq!(
            Task::new(0.0, 1.0, 0.0),
            Err(TaskError::NonPositiveWork { index: 0 })
        );
        assert_eq!(
            Task::new(f64::NAN, 1.0, 1.0),
            Err(TaskError::NonFinite { index: 0 })
        );
    }

    #[test]
    fn task_derived_quantities() {
        let t = Task::of(2.0, 10.0, 4.0);
        assert_eq!(t.window_len(), 8.0);
        assert_eq!(t.intensity(), 0.5);
        assert_eq!(t.laxity(), 4.0);
        assert!(t.covers(&Interval::new(4.0, 8.0)));
        assert!(!t.covers(&Interval::new(0.0, 4.0)));
    }

    #[test]
    fn task_set_validation_reports_index() {
        let bad = TaskSet::new(vec![
            Task {
                release: 0.0,
                deadline: 1.0,
                wcec: 1.0,
            },
            Task {
                release: 3.0,
                deadline: 2.0,
                wcec: 1.0,
            },
        ]);
        assert_eq!(bad, Err(TaskError::EmptyWindow { index: 1 }));
        assert_eq!(TaskSet::new(vec![]), Err(TaskError::EmptySet));
    }

    #[test]
    fn horizon_and_events() {
        let ts = paper_intro_tasks();
        assert_eq!(ts.earliest_release(), 0.0);
        assert_eq!(ts.latest_deadline(), 12.0);
        assert_eq!(ts.event_points(), vec![0.0, 2.0, 4.0, 8.0, 10.0, 12.0]);
        assert_eq!(ts.total_work(), 10.0);
    }

    #[test]
    fn demand_matches_paper_intro_example() {
        let ts = paper_intro_tasks();
        // Only τ3 = (4, 8, 4) is fully inside [4, 8].
        assert_eq!(ts.demand(4.0, 8.0), 4.0);
        // All three tasks inside the full horizon.
        assert_eq!(ts.demand(0.0, 12.0), 10.0);
        // Nothing fits into [0, 4].
        assert_eq!(ts.demand(0.0, 4.0), 0.0);
    }

    #[test]
    fn peak_intensity_matches_yds_first_interval() {
        // The paper: the max-intensity interval is [4, 8] with intensity 1.
        let ts = paper_intro_tasks();
        assert!((ts.peak_intensity() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn overlapping_tasks_of_a_subinterval() {
        let ts = paper_intro_tasks();
        // During [4, 8] all three windows cover the subinterval.
        assert_eq!(ts.overlapping(&Interval::new(4.0, 8.0)), vec![0, 1, 2]);
        // During [0, 2] only τ1 has been released.
        assert_eq!(ts.overlapping(&Interval::new(0.0, 2.0)), vec![0]);
        // During [10, 12] only τ1's deadline is still open.
        assert_eq!(ts.overlapping(&Interval::new(10.0, 12.0)), vec![0]);
    }

    #[test]
    fn json_round_trip() {
        use esched_obs::json::{parse, FromJson, ToJson};
        let ts = paper_intro_tasks();
        let json = ts.to_json().to_string();
        let back = TaskSet::from_json(&parse(&json).unwrap()).unwrap();
        assert_eq!(ts, back);
    }
}
