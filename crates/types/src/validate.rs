//! Schedule legality checking.
//!
//! A schedule is *legal* for a task set on `m` cores when:
//!
//! 1. no two segments on the same core overlap in time,
//! 2. no task executes on two cores at the same time (the migration model
//!    allows moving, not cloning),
//! 3. every segment lies inside its task's `[R_i, D_i]` window,
//! 4. every task receives at least its execution requirement `C_i`,
//! 5. every segment references a valid core (`< m`).
//!
//! [`validate_schedule`] collects *all* violations rather than stopping at
//! the first, which makes property-test failures and simulator diagnostics
//! actionable.

use crate::schedule::Schedule;
use crate::task::{TaskId, TaskSet};
use crate::time::EPS;
use std::fmt;

/// A single legality violation.
#[derive(Debug, Clone, PartialEq)]
pub enum Violation {
    /// Two segments on the same core overlap.
    CoreOverlap {
        /// The core.
        core: usize,
        /// First segment's task.
        task_a: TaskId,
        /// Second segment's task.
        task_b: TaskId,
        /// Length of the overlapping region.
        overlap: f64,
    },
    /// One task runs concurrently with itself on two cores.
    SelfOverlap {
        /// The task.
        task: TaskId,
        /// Length of the overlapping region.
        overlap: f64,
    },
    /// A segment starts before its task's release or ends after its
    /// deadline.
    OutsideWindow {
        /// The task.
        task: TaskId,
        /// Segment start.
        start: f64,
        /// Segment end.
        end: f64,
    },
    /// A task finishes with less work than its requirement.
    Underserved {
        /// The task.
        task: TaskId,
        /// Work the schedule delivers.
        delivered: f64,
        /// Work the task requires.
        required: f64,
    },
    /// A segment references a core index `≥ m`.
    BadCore {
        /// The task whose segment is misplaced.
        task: TaskId,
        /// The out-of-range core index.
        core: usize,
    },
    /// A segment references a task id `≥ n`.
    BadTask {
        /// The out-of-range task id.
        task: TaskId,
    },
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::CoreOverlap {
                core,
                task_a,
                task_b,
                overlap,
            } => write!(
                f,
                "core {core}: tasks {task_a} and {task_b} overlap by {overlap:.6}"
            ),
            Violation::SelfOverlap { task, overlap } => {
                write!(
                    f,
                    "task {task} runs on two cores simultaneously ({overlap:.6})"
                )
            }
            Violation::OutsideWindow { task, start, end } => {
                write!(
                    f,
                    "task {task}: segment [{start:.6}, {end:.6}] outside window"
                )
            }
            Violation::Underserved {
                task,
                delivered,
                required,
            } => write!(
                f,
                "task {task}: delivered {delivered:.6} < required {required:.6}"
            ),
            Violation::BadCore { task, core } => {
                write!(f, "task {task}: segment on nonexistent core {core}")
            }
            Violation::BadTask { task } => write!(f, "segment references unknown task {task}"),
        }
    }
}

/// Result of validation: either legal, or the full list of violations.
#[derive(Debug, Clone, PartialEq)]
pub struct ValidationReport {
    /// Every violation found.
    pub violations: Vec<Violation>,
}

impl ValidationReport {
    /// True when the schedule is legal.
    pub fn is_legal(&self) -> bool {
        self.violations.is_empty()
    }

    /// Panic with a readable listing if illegal — for tests.
    ///
    /// # Panics
    /// When any violation was recorded.
    pub fn assert_legal(&self) {
        if !self.is_legal() {
            let msgs: Vec<String> = self.violations.iter().map(|v| v.to_string()).collect();
            panic!("illegal schedule:\n  {}", msgs.join("\n  "));
        }
    }
}

/// Tolerance used for work-completion checks; looser than [`EPS`] because
/// delivered work multiplies times by frequencies, compounding rounding.
pub const WORK_TOL: f64 = 1e-6;

/// Check all legality conditions of `schedule` against `tasks`.
///
/// `schedule.cores` is taken as `m`. Window and work checks are tolerant
/// ([`EPS`] for geometry, [`WORK_TOL`] relative for work).
pub fn validate_schedule(schedule: &Schedule, tasks: &TaskSet) -> ValidationReport {
    let mut violations = Vec::new();
    let n = tasks.len();

    // 5 + bad task ids.
    for seg in schedule.segments() {
        if seg.core >= schedule.cores {
            violations.push(Violation::BadCore {
                task: seg.task,
                core: seg.core,
            });
        }
        if seg.task >= n {
            violations.push(Violation::BadTask { task: seg.task });
        }
    }
    // Don't try window/work checks for out-of-range tasks.
    if violations
        .iter()
        .any(|v| matches!(v, Violation::BadTask { .. }))
    {
        return ValidationReport { violations };
    }

    // 1. Per-core overlap: sort by start, adjacent pairs suffice after
    // sorting (any overlap implies an adjacent overlap).
    for core in 0..schedule.cores {
        let segs = schedule.core_segments(core);
        for w in segs.windows(2) {
            let ov = w[0].interval.overlap_len(&w[1].interval);
            if ov > EPS {
                violations.push(Violation::CoreOverlap {
                    core,
                    task_a: w[0].task,
                    task_b: w[1].task,
                    overlap: ov,
                });
            }
        }
    }

    // 2. Per-task self-overlap.
    for task in schedule.task_ids() {
        let segs = schedule.task_segments(task);
        for w in segs.windows(2) {
            let ov = w[0].interval.overlap_len(&w[1].interval);
            if ov > EPS {
                violations.push(Violation::SelfOverlap { task, overlap: ov });
            }
        }
    }

    // 3. Window containment.
    for seg in schedule.segments() {
        let t = tasks.get(seg.task);
        if !t.window().covers(&seg.interval) {
            violations.push(Violation::OutsideWindow {
                task: seg.task,
                start: seg.interval.start,
                end: seg.interval.end,
            });
        }
    }

    // 4. Work completion.
    for (id, t) in tasks.iter() {
        let delivered = schedule.work_of(id);
        if delivered < t.wcec * (1.0 - WORK_TOL) - WORK_TOL {
            violations.push(Violation::Underserved {
                task: id,
                delivered,
                required: t.wcec,
            });
        }
    }

    ValidationReport { violations }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::Segment;
    use crate::task::TaskSet;

    fn tasks() -> TaskSet {
        TaskSet::from_triples(&[(0.0, 12.0, 4.0), (2.0, 10.0, 2.0), (4.0, 8.0, 4.0)])
    }

    /// The paper's Fig. 2(b) optimal 2-core schedule for the intro tasks.
    fn legal_schedule() -> Schedule {
        let mut s = Schedule::new(2);
        // τ0: total time y1 + x1 = 8 + 8/3 at f = 4/(32/3) = 0.375.
        let f0 = 4.0 / (8.0 + 8.0 / 3.0);
        s.push(Segment::new(0, 0, 0.0, 4.0, f0));
        s.push(Segment::new(0, 0, 4.0, 4.0 + 8.0 / 3.0, f0));
        s.push(Segment::new(0, 0, 8.0, 12.0, f0));
        // τ1: y2 + x2 = 4 + 4/3 at f = 2/(16/3) = 0.375.
        let f1 = 2.0 / (4.0 + 4.0 / 3.0);
        s.push(Segment::new(1, 1, 2.0, 4.0, f1));
        // Middle piece lands on M0 right after τ0's middle piece ends.
        s.push(Segment::new(1, 0, 4.0 + 8.0 / 3.0, 8.0, f1));
        s.push(Segment::new(1, 1, 8.0, 10.0, f1));
        // τ2: x3 = 4 at f = 1 — needs a core for the whole of [4, 8], so
        // give it M1 exclusively and move τ1's middle piece onto M0 after
        // τ0's piece ends.
        s.push(Segment::new(2, 1, 4.0, 8.0, 1.0));
        s
    }

    #[test]
    fn paper_fig2b_schedule_is_legal() {
        let report = validate_schedule(&legal_schedule(), &tasks());
        report.assert_legal();
    }

    #[test]
    fn detects_core_overlap() {
        let mut s = Schedule::new(1);
        s.push(Segment::new(0, 0, 0.0, 6.0, 1.0));
        s.push(Segment::new(1, 0, 5.0, 8.0, 1.0));
        let ts = TaskSet::from_triples(&[(0.0, 12.0, 6.0), (0.0, 12.0, 3.0)]);
        let report = validate_schedule(&s, &ts);
        assert!(report
            .violations
            .iter()
            .any(|v| matches!(v, Violation::CoreOverlap { core: 0, .. })));
    }

    #[test]
    fn detects_self_overlap_across_cores() {
        let mut s = Schedule::new(2);
        s.push(Segment::new(0, 0, 0.0, 4.0, 0.5));
        s.push(Segment::new(0, 1, 2.0, 6.0, 0.5));
        let ts = TaskSet::from_triples(&[(0.0, 12.0, 4.0)]);
        let report = validate_schedule(&s, &ts);
        assert!(report
            .violations
            .iter()
            .any(|v| matches!(v, Violation::SelfOverlap { task: 0, .. })));
    }

    #[test]
    fn detects_window_violation() {
        let mut s = Schedule::new(1);
        s.push(Segment::new(0, 0, 0.0, 5.0, 1.0));
        let ts = TaskSet::from_triples(&[(1.0, 12.0, 5.0)]); // released at 1
        let report = validate_schedule(&s, &ts);
        assert!(report
            .violations
            .iter()
            .any(|v| matches!(v, Violation::OutsideWindow { task: 0, .. })));
    }

    #[test]
    fn detects_underserved_task() {
        let mut s = Schedule::new(1);
        s.push(Segment::new(0, 0, 0.0, 2.0, 1.0)); // delivers 2 < 4
        let ts = TaskSet::from_triples(&[(0.0, 12.0, 4.0)]);
        let report = validate_schedule(&s, &ts);
        assert!(report
            .violations
            .iter()
            .any(|v| matches!(v, Violation::Underserved { task: 0, .. })));
    }

    #[test]
    fn detects_bad_core_and_task() {
        let mut s = Schedule::new(1);
        s.push(Segment::new(0, 3, 0.0, 4.0, 1.0));
        let ts = TaskSet::from_triples(&[(0.0, 12.0, 4.0)]);
        let report = validate_schedule(&s, &ts);
        assert!(report
            .violations
            .iter()
            .any(|v| matches!(v, Violation::BadCore { core: 3, .. })));

        let mut s = Schedule::new(1);
        s.push(Segment::new(7, 0, 0.0, 4.0, 1.0));
        let report = validate_schedule(&s, &ts);
        assert!(report
            .violations
            .iter()
            .any(|v| matches!(v, Violation::BadTask { task: 7 })));
    }

    #[test]
    fn back_to_back_segments_do_not_overlap() {
        let mut s = Schedule::new(1);
        s.push(Segment::new(0, 0, 0.0, 4.0, 1.0));
        s.push(Segment::new(1, 0, 4.0, 8.0, 0.5));
        let ts = TaskSet::from_triples(&[(0.0, 12.0, 4.0), (0.0, 12.0, 2.0)]);
        validate_schedule(&s, &ts).assert_legal();
    }

    #[test]
    fn work_tolerance_accepts_rounding_noise() {
        let mut s = Schedule::new(1);
        // Deliver 4·(1−1e-9) ≈ 4: inside tolerance.
        s.push(Segment::new(0, 0, 0.0, 4.0, 1.0 - 1e-9));
        let ts = TaskSet::from_triples(&[(0.0, 12.0, 4.0)]);
        validate_schedule(&s, &ts).assert_legal();
    }
}
