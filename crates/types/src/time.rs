//! Time arithmetic helpers.
//!
//! All quantities in this workspace (release times, deadlines, execution
//! requirements measured in cycles at unit frequency, schedule segment
//! boundaries) are `f64` seconds. Floating-point schedules accumulate
//! rounding error through repeated subinterval splitting and wrap-around
//! packing, so every ordering decision that feeds a legality check goes
//! through the tolerant comparisons defined here instead of raw `<`/`==`.

/// Absolute tolerance used by the tolerant comparison helpers.
///
/// Chosen so that a horizon of ~10⁴ time units with ~10⁶ arithmetic
/// operations stays well inside the tolerance, while genuine modelling
/// errors (which are ≥ 1e-3 in every experiment in the paper) are far
/// outside it.
pub const EPS: f64 = 1e-7;

/// Relative-plus-absolute tolerance equality: `|a − b| ≤ EPS·max(1,|a|,|b|)`.
#[inline]
pub fn approx_eq(a: f64, b: f64) -> bool {
    approx_eq_tol(a, b, EPS)
}

/// [`approx_eq`] with a caller-supplied tolerance.
#[inline]
pub fn approx_eq_tol(a: f64, b: f64, tol: f64) -> bool {
    let scale = 1.0_f64.max(a.abs()).max(b.abs());
    (a - b).abs() <= tol * scale
}

/// Tolerant `a ≤ b`: true when `a < b` or the two are approximately equal.
#[inline]
pub fn approx_le(a: f64, b: f64) -> bool {
    a <= b || approx_eq(a, b)
}

/// Tolerant `a ≥ b`.
#[inline]
pub fn approx_ge(a: f64, b: f64) -> bool {
    a >= b || approx_eq(a, b)
}

/// Strictly less under tolerance: `a < b` and *not* approximately equal.
#[inline]
pub fn definitely_lt(a: f64, b: f64) -> bool {
    a < b && !approx_eq(a, b)
}

/// Strictly greater under tolerance.
#[inline]
pub fn definitely_gt(a: f64, b: f64) -> bool {
    a > b && !approx_eq(a, b)
}

/// Is `x` approximately zero?
#[inline]
pub fn approx_zero(x: f64) -> bool {
    x.abs() <= EPS
}

/// Clamp a value into `[lo, hi]`, tolerating values that stray outside the
/// interval by no more than the tolerance (a hard failure otherwise is the
/// caller's job; this function simply clamps).
#[inline]
pub fn clamp(x: f64, lo: f64, hi: f64) -> f64 {
    debug_assert!(lo <= hi, "clamp called with inverted interval [{lo}, {hi}]");
    x.max(lo).min(hi)
}

/// A half-open-by-convention time interval `[start, end]`.
///
/// Intervals are *closed* for containment tests (matching the paper's
/// `[t_j, t_{j+1}]` notation) but *open at the right end* for overlap tests,
/// so that back-to-back segments `[0,1]` and `[1,2]` do not count as
/// overlapping.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Interval {
    /// Left endpoint.
    pub start: f64,
    /// Right endpoint; invariant `end ≥ start`.
    pub end: f64,
}

impl Interval {
    /// Create an interval, panicking on NaN or inverted endpoints.
    #[inline]
    pub fn new(start: f64, end: f64) -> Self {
        assert!(
            start.is_finite() && end.is_finite(),
            "interval endpoints must be finite: [{start}, {end}]"
        );
        assert!(
            approx_le(start, end),
            "interval endpoints inverted: [{start}, {end}]"
        );
        Self {
            start,
            end: end.max(start),
        }
    }

    /// Interval length `end − start` (never negative).
    #[inline]
    pub fn length(&self) -> f64 {
        (self.end - self.start).max(0.0)
    }

    /// Does this interval contain time point `t` (closed endpoints,
    /// tolerant)?
    #[inline]
    pub fn contains(&self, t: f64) -> bool {
        approx_le(self.start, t) && approx_le(t, self.end)
    }

    /// Is `other` entirely inside `self` (tolerant, closed endpoints)?
    #[inline]
    pub fn covers(&self, other: &Interval) -> bool {
        approx_le(self.start, other.start) && approx_le(other.end, self.end)
    }

    /// Length of the intersection of the two intervals (0 when disjoint).
    #[inline]
    pub fn overlap_len(&self, other: &Interval) -> f64 {
        let lo = self.start.max(other.start);
        let hi = self.end.min(other.end);
        (hi - lo).max(0.0)
    }

    /// Do the two intervals overlap in an interval of positive length?
    ///
    /// Sharing only an endpoint does *not* count as overlapping.
    #[inline]
    pub fn overlaps(&self, other: &Interval) -> bool {
        self.overlap_len(other) > EPS
    }

    /// The intersection interval, if it has positive (or zero) extent.
    #[inline]
    pub fn intersect(&self, other: &Interval) -> Option<Interval> {
        let lo = self.start.max(other.start);
        let hi = self.end.min(other.end);
        if approx_le(lo, hi) {
            Some(Interval::new(lo, hi.max(lo)))
        } else {
            None
        }
    }

    /// Midpoint of the interval.
    #[inline]
    pub fn midpoint(&self) -> f64 {
        0.5 * (self.start + self.end)
    }

    /// Is this interval (approximately) a single point?
    #[inline]
    pub fn is_degenerate(&self) -> bool {
        approx_eq(self.start, self.end)
    }
}

/// Sort a slice of time points ascending and remove approximate duplicates.
///
/// Used when constructing subinterval boundaries from release times and
/// deadlines: two event points closer than the tolerance collapse into one
/// (the first representative is kept).
pub fn sort_dedup_times(times: &mut Vec<f64>) {
    times.retain(|t| t.is_finite());
    times.sort_by(|a, b| a.partial_cmp(b).expect("no NaNs after retain"));
    times.dedup_by(|a, b| approx_eq(*a, *b));
}

/// Sum a slice of `f64` with Neumaier (improved Kahan) compensation.
///
/// Energy totals add thousands of per-segment terms of wildly different
/// magnitudes (static energy of long slow segments vs. dynamic energy of
/// short fast ones); compensated summation keeps golden-value tests stable
/// across evaluation orders.
pub fn compensated_sum(values: impl IntoIterator<Item = f64>) -> f64 {
    let mut sum = 0.0_f64;
    let mut comp = 0.0_f64;
    for v in values {
        let t = sum + v;
        if sum.abs() >= v.abs() {
            comp += (sum - t) + v;
        } else {
            comp += (v - t) + sum;
        }
        sum = t;
    }
    sum + comp
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn approx_eq_scales_with_magnitude() {
        assert!(approx_eq(1.0, 1.0 + 1e-9));
        assert!(approx_eq(1e6, 1e6 + 1e-2));
        assert!(!approx_eq(1.0, 1.001));
        assert!(!approx_eq(0.0, 1e-3));
    }

    #[test]
    fn approx_zero_tolerates_tiny_values() {
        assert!(approx_zero(0.0));
        assert!(approx_zero(1e-12));
        assert!(approx_zero(-1e-12));
        assert!(!approx_zero(1e-3));
    }

    #[test]
    fn tolerant_orderings_are_consistent() {
        assert!(approx_le(1.0, 1.0));
        assert!(approx_le(1.0, 1.0 + 1e-12));
        assert!(approx_le(1.0 + 1e-12, 1.0));
        assert!(approx_ge(2.0, 1.0));
        assert!(definitely_lt(1.0, 2.0));
        assert!(!definitely_lt(1.0, 1.0 + 1e-12));
        assert!(definitely_gt(2.0, 1.0));
    }

    #[test]
    fn interval_basic_geometry() {
        let a = Interval::new(0.0, 4.0);
        assert_eq!(a.length(), 4.0);
        assert!(a.contains(0.0));
        assert!(a.contains(4.0));
        assert!(a.contains(2.0));
        assert!(!a.contains(4.5));
        assert_eq!(a.midpoint(), 2.0);
        assert!(!a.is_degenerate());
        assert!(Interval::new(3.0, 3.0).is_degenerate());
    }

    #[test]
    fn interval_overlap_semantics() {
        let a = Interval::new(0.0, 4.0);
        let b = Interval::new(2.0, 6.0);
        let c = Interval::new(4.0, 8.0);
        assert!(a.overlaps(&b));
        assert_eq!(a.overlap_len(&b), 2.0);
        // Back-to-back intervals share only an endpoint: not overlapping.
        assert!(!a.overlaps(&c));
        assert_eq!(a.overlap_len(&c), 0.0);
        assert!(a.intersect(&c).unwrap().is_degenerate());
        assert!(Interval::new(0.0, 1.0)
            .intersect(&Interval::new(2.0, 3.0))
            .is_none());
    }

    #[test]
    fn interval_covers() {
        let outer = Interval::new(0.0, 10.0);
        assert!(outer.covers(&Interval::new(0.0, 10.0)));
        assert!(outer.covers(&Interval::new(2.0, 8.0)));
        assert!(!outer.covers(&Interval::new(-1.0, 5.0)));
        assert!(!outer.covers(&Interval::new(5.0, 11.0)));
    }

    #[test]
    #[should_panic(expected = "inverted")]
    fn interval_rejects_inverted_endpoints() {
        let _ = Interval::new(5.0, 1.0);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn interval_rejects_nan() {
        let _ = Interval::new(f64::NAN, 1.0);
    }

    #[test]
    fn sort_dedup_collapses_near_duplicates() {
        let mut ts = vec![4.0, 0.0, 2.0, 2.0 + 1e-12, 8.0, 0.0];
        sort_dedup_times(&mut ts);
        assert_eq!(ts, vec![0.0, 2.0, 4.0, 8.0]);
    }

    #[test]
    fn sort_dedup_drops_non_finite() {
        let mut ts = vec![1.0, f64::NAN, f64::INFINITY, 0.5];
        sort_dedup_times(&mut ts);
        assert_eq!(ts, vec![0.5, 1.0]);
    }

    #[test]
    fn compensated_sum_matches_exact_on_adversarial_input() {
        // 1 + 1e16 - 1e16 == 1 exactly under compensated summation, but 0
        // under naive left-to-right addition.
        let s = compensated_sum([1.0, 1e16, -1e16]);
        assert_eq!(s, 1.0);
        let naive: f64 = [1.0, 1e16, -1e16].iter().sum();
        assert_eq!(naive, 0.0);
    }

    #[test]
    fn clamp_behaves() {
        assert_eq!(clamp(5.0, 0.0, 4.0), 4.0);
        assert_eq!(clamp(-1.0, 0.0, 4.0), 0.0);
        assert_eq!(clamp(2.0, 0.0, 4.0), 2.0);
    }
}
