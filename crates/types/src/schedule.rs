//! Schedule representation.
//!
//! A [`Schedule`] is the concrete object every algorithm in this workspace
//! produces: a set of execution [`Segment`]s, each placing one task on one
//! core over a time interval at a fixed frequency. The paper's abstract
//! solution (`x_{i,j}` execution times plus per-task frequencies) is always
//! materialized into this form so that it can be validated, simulated, and
//! measured uniformly.

use crate::power::PowerModel;
use crate::task::TaskId;
use crate::time::{approx_eq, compensated_sum, Interval, EPS};

/// One contiguous execution of a task on a core at a fixed frequency.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Segment {
    /// The task being executed.
    pub task: TaskId,
    /// Core index in `0..m`.
    pub core: usize,
    /// Execution interval.
    pub interval: Interval,
    /// Execution frequency (positive).
    pub freq: f64,
}

impl Segment {
    /// Construct a segment.
    ///
    /// # Panics
    /// If the frequency is not positive and finite.
    pub fn new(task: TaskId, core: usize, start: f64, end: f64, freq: f64) -> Self {
        assert!(
            freq.is_finite() && freq > 0.0,
            "segment frequency must be positive and finite, got {freq}"
        );
        Self {
            task,
            core,
            interval: Interval::new(start, end),
            freq,
        }
    }

    /// Work completed by this segment: `f · (end − start)`.
    #[inline]
    pub fn work(&self) -> f64 {
        self.freq * self.interval.length()
    }

    /// Segment duration.
    #[inline]
    pub fn duration(&self) -> f64 {
        self.interval.length()
    }

    /// Energy drawn by this segment under `model`.
    #[inline]
    pub fn energy<P: PowerModel>(&self, model: &P) -> f64 {
        model.energy_for_duration(self.freq, self.duration())
    }
}

/// A complete multi-core schedule: `m` cores plus a list of segments.
///
/// The structure itself does not enforce legality (that is
/// [`crate::validate::validate_schedule`]'s job) but provides the
/// accounting primitives legality checks and metrics are built from.
#[derive(Debug, Clone, PartialEq)]
pub struct Schedule {
    /// Number of cores `m`.
    pub cores: usize,
    segments: Vec<Segment>,
}

impl Schedule {
    /// An empty schedule on `cores` cores.
    ///
    /// # Panics
    /// If `cores == 0`.
    pub fn new(cores: usize) -> Self {
        assert!(cores > 0, "a schedule needs at least one core");
        Self {
            cores,
            segments: Vec::new(),
        }
    }

    /// Append a segment. Degenerate segments are silently dropped — they
    /// arise naturally from boundary cases in wrap-around packing and carry
    /// no work. The gate is work-aware, not duration-only: a sub-EPS sliver
    /// executed at high frequency can carry work well above the validator's
    /// per-task tolerance, and dropping it here would silently starve the
    /// task (timeline subintervals can legitimately be shorter than EPS).
    /// Out-of-range core/task indices are accepted here and reported by
    /// [`crate::validate::validate_schedule`], so that deserialized or
    /// hand-built schedules can be diagnosed rather than crashed on.
    pub fn push(&mut self, seg: Segment) {
        let d = seg.duration();
        if d > EPS || (d > 0.0 && seg.work() > crate::validate::WORK_TOL * 0.1) {
            self.segments.push(seg);
        }
    }

    /// Append a segment, dropping only zero-length ones. For producers
    /// whose inputs are already dust-filtered and whose output must
    /// conserve work exactly — McNaughton packing splits an item at the
    /// subinterval boundary, and the head piece can fall under [`push`]'s
    /// dust gate even though its sibling pieces only add back up to the
    /// item with it included.
    pub fn push_exact(&mut self, seg: Segment) {
        if seg.duration() > 0.0 {
            self.segments.push(seg);
        }
    }

    /// All segments, in insertion order.
    pub fn segments(&self) -> &[Segment] {
        &self.segments
    }

    /// Number of segments.
    pub fn len(&self) -> usize {
        self.segments.len()
    }

    /// True when no segments have been scheduled.
    pub fn is_empty(&self) -> bool {
        self.segments.is_empty()
    }

    /// Segments of one task, sorted by start time.
    pub fn task_segments(&self, task: TaskId) -> Vec<Segment> {
        let mut v: Vec<Segment> = self
            .segments
            .iter()
            .filter(|s| s.task == task)
            .copied()
            .collect();
        v.sort_by(|a, b| {
            a.interval
                .start
                .partial_cmp(&b.interval.start)
                .expect("finite segment times")
        });
        v
    }

    /// Segments on one core, sorted by start time.
    pub fn core_segments(&self, core: usize) -> Vec<Segment> {
        let mut v: Vec<Segment> = self
            .segments
            .iter()
            .filter(|s| s.core == core)
            .copied()
            .collect();
        v.sort_by(|a, b| {
            a.interval
                .start
                .partial_cmp(&b.interval.start)
                .expect("finite segment times")
        });
        v
    }

    /// Total work completed for `task` across all its segments.
    pub fn work_of(&self, task: TaskId) -> f64 {
        compensated_sum(
            self.segments
                .iter()
                .filter(|s| s.task == task)
                .map(Segment::work),
        )
    }

    /// Total busy time of `core`.
    pub fn busy_time(&self, core: usize) -> f64 {
        compensated_sum(
            self.segments
                .iter()
                .filter(|s| s.core == core)
                .map(Segment::duration),
        )
    }

    /// Total energy of the schedule under `model`
    /// (`Σ_segments p(f)·duration`; idle cores sleep at zero power).
    pub fn energy<P: PowerModel>(&self, model: &P) -> f64 {
        compensated_sum(self.segments.iter().map(|s| s.energy(model)))
    }

    /// Latest segment end time (0 for an empty schedule).
    pub fn makespan(&self) -> f64 {
        self.segments
            .iter()
            .map(|s| s.interval.end)
            .fold(0.0, f64::max)
    }

    /// Number of migrations: per task, count consecutive-segment pairs
    /// (in time order) that change core.
    pub fn migrations(&self) -> usize {
        let mut count = 0;
        for task in self.task_ids() {
            let segs = self.task_segments(task);
            count += segs.windows(2).filter(|w| w[0].core != w[1].core).count();
        }
        count
    }

    /// Number of preemptions: per task, count consecutive-segment pairs with
    /// a gap between them (the task was set aside and resumed).
    pub fn preemptions(&self) -> usize {
        let mut count = 0;
        for task in self.task_ids() {
            let segs = self.task_segments(task);
            count += segs
                .windows(2)
                .filter(|w| !approx_eq(w[0].interval.end, w[1].interval.start))
                .count();
        }
        count
    }

    /// Distinct task ids appearing in the schedule, ascending.
    pub fn task_ids(&self) -> Vec<TaskId> {
        let mut ids: Vec<TaskId> = self.segments.iter().map(|s| s.task).collect();
        ids.sort_unstable();
        ids.dedup();
        ids
    }

    /// Merge adjacent segments of the same task on the same core at the same
    /// frequency into single segments. Cosmetic, but keeps segment counts
    /// (and preemption metrics) meaningful after subinterval-by-subinterval
    /// construction.
    ///
    /// Adjacency is judged with an *absolute* tolerance of [`EPS`]: two
    /// pieces merge only when the gap between them is at most `EPS` time
    /// units. A relative comparison would be wrong here — on long horizons
    /// it can bridge genuine micro-gaps occupied by other tasks, turning a
    /// legal schedule into an overlapping one.
    pub fn coalesce(&mut self) {
        let mut merged: Vec<Segment> = Vec::with_capacity(self.segments.len());
        let mut segs = std::mem::take(&mut self.segments);
        segs.sort_by(|a, b| {
            (a.core, a.task).cmp(&(b.core, b.task)).then(
                a.interval
                    .start
                    .partial_cmp(&b.interval.start)
                    .expect("finite"),
            )
        });
        for seg in segs {
            if let Some(last) = merged.last_mut() {
                // Frequencies must agree *relatively* — merging rewrites
                // the run's frequency, so the work error is |Δf|·duration.
                // `approx_eq`'s absolute floor would call any two
                // frequencies below EPS "equal" and silently lose work for
                // tiny tasks running at sub-EPS frequencies.
                let freq_close =
                    (last.freq - seg.freq).abs() <= EPS * last.freq.abs().max(seg.freq.abs());
                // Adjacency must be near-exact, not EPS-loose: an EPS-scale
                // gate would bridge a real sub-EPS gap — time that may hold
                // another task's sliver segment on this core — and the
                // merged run would double-book it. Producers chain segment
                // boundaries exactly (pack cursors, shared subinterval
                // endpoints), so a few-ulp relative tolerance is all
                // genuine adjacency needs.
                let adjacent = (seg.interval.start - last.interval.end).abs()
                    <= 1e-12 * (1.0 + last.interval.end.abs().max(seg.interval.start.abs()));
                if last.core == seg.core && last.task == seg.task && freq_close && adjacent {
                    last.interval.end = seg.interval.end.max(last.interval.end);
                    continue;
                }
            }
            merged.push(seg);
        }
        merged.sort_by(|a, b| {
            a.interval
                .start
                .partial_cmp(&b.interval.start)
                .expect("finite")
                .then(a.core.cmp(&b.core))
        });
        self.segments = merged;
    }

    /// Average core utilization over `[0, horizon]`.
    pub fn utilization(&self, horizon: f64) -> f64 {
        if horizon <= 0.0 {
            return 0.0;
        }
        let busy: f64 = (0..self.cores).map(|c| self.busy_time(c)).sum();
        busy / (self.cores as f64 * horizon)
    }
}

/// A per-task constant frequency assignment plus per-task available time —
/// the *analytic* form of the paper's final schedules (`S^F1`, `S^F2`),
/// before materialization into segments.
#[derive(Debug, Clone, PartialEq)]
pub struct FrequencyAssignment {
    /// `f_i` for each task.
    pub freq: Vec<f64>,
    /// Total available execution time `A_i` for each task.
    pub avail: Vec<f64>,
}

impl FrequencyAssignment {
    /// Analytic energy `Σ_i p(f_i)·C_i/f_i` of executing requirements
    /// `works[i]` at the assigned frequencies.
    pub fn energy<P: PowerModel>(&self, works: &[f64], model: &P) -> f64 {
        assert_eq!(works.len(), self.freq.len());
        compensated_sum(
            works
                .iter()
                .zip(&self.freq)
                .map(|(&c, &f)| model.energy_for_work(c, f)),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::power::PolynomialPower;

    fn two_core_fixture() -> Schedule {
        let mut s = Schedule::new(2);
        s.push(Segment::new(0, 0, 0.0, 4.0, 0.75)); // τ0 on M0
        s.push(Segment::new(1, 1, 2.0, 4.0, 0.75)); // τ1 on M1
        s.push(Segment::new(2, 0, 4.0, 8.0, 1.0)); // τ2 on M0
        s.push(Segment::new(0, 1, 8.0, 12.0, 0.75)); // τ0 migrates to M1
        s
    }

    #[test]
    fn segment_work_and_energy() {
        let seg = Segment::new(0, 0, 0.0, 4.0, 0.5);
        assert_eq!(seg.work(), 2.0);
        assert_eq!(seg.duration(), 4.0);
        let p = PolynomialPower::paper(3.0, 0.01);
        assert!((seg.energy(&p) - (0.125 + 0.01) * 4.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn segment_rejects_zero_frequency() {
        let _ = Segment::new(0, 0, 0.0, 1.0, 0.0);
    }

    #[test]
    fn work_accounting() {
        let s = two_core_fixture();
        assert!((s.work_of(0) - (4.0 * 0.75 + 4.0 * 0.75)).abs() < 1e-12);
        assert!((s.work_of(1) - 1.5).abs() < 1e-12);
        assert!((s.work_of(2) - 4.0).abs() < 1e-12);
        assert_eq!(s.work_of(99), 0.0);
    }

    #[test]
    fn busy_time_and_utilization() {
        let s = two_core_fixture();
        assert_eq!(s.busy_time(0), 8.0);
        assert_eq!(s.busy_time(1), 6.0);
        assert!((s.utilization(12.0) - 14.0 / 24.0).abs() < 1e-12);
        assert_eq!(s.utilization(0.0), 0.0);
    }

    #[test]
    fn migrations_and_preemptions() {
        let s = two_core_fixture();
        // τ0 runs [0,4] on M0 then [8,12] on M1: one migration, one gap.
        assert_eq!(s.migrations(), 1);
        assert_eq!(s.preemptions(), 1);
    }

    #[test]
    fn makespan_and_ids() {
        let s = two_core_fixture();
        assert_eq!(s.makespan(), 12.0);
        assert_eq!(s.task_ids(), vec![0, 1, 2]);
    }

    #[test]
    fn zero_length_segments_are_dropped() {
        let mut s = Schedule::new(1);
        s.push(Segment::new(0, 0, 3.0, 3.0, 1.0));
        assert!(s.is_empty());
    }

    #[test]
    fn coalesce_merges_contiguous_equal_frequency_runs() {
        let mut s = Schedule::new(1);
        s.push(Segment::new(0, 0, 0.0, 2.0, 0.5));
        s.push(Segment::new(0, 0, 2.0, 4.0, 0.5));
        s.push(Segment::new(0, 0, 4.0, 6.0, 0.8)); // different frequency
        s.push(Segment::new(1, 0, 6.0, 7.0, 0.8)); // different task
        s.coalesce();
        assert_eq!(s.len(), 3);
        assert_eq!(s.segments()[0].interval.end, 4.0);
        // Work is preserved by coalescing.
        assert!((s.work_of(0) - (2.0 + 1.6)).abs() < 1e-12);
    }

    #[test]
    fn schedule_energy_sums_segments() {
        let s = two_core_fixture();
        let p = PolynomialPower::paper(3.0, 0.0);
        let by_hand: f64 = s.segments().iter().map(|seg| seg.energy(&p)).sum();
        assert!((s.energy(&p) - by_hand).abs() < 1e-12);
    }

    #[test]
    fn frequency_assignment_energy() {
        let fa = FrequencyAssignment {
            freq: vec![0.5, 1.0],
            avail: vec![8.0, 2.0],
        };
        let p = PolynomialPower::paper(3.0, 0.0);
        // E = C·f² for p0=0, α=3.
        let e = fa.energy(&[4.0, 2.0], &p);
        assert!((e - (4.0 * 0.25 + 2.0 * 1.0)).abs() < 1e-12);
    }

    #[test]
    fn json_round_trip() {
        use esched_obs::json::{parse, FromJson, ToJson};
        let s = two_core_fixture();
        let back = Schedule::from_json(&parse(&s.to_json().to_string()).unwrap()).unwrap();
        assert_eq!(s, back);
    }
}
