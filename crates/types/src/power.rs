//! Power-consumption models.
//!
//! The paper's platform model: a core in active mode at frequency `f`
//! consumes `p(f) = f^α + p₀` (generalized here to `γ·f^α + p₀` so that the
//! curve fitted to a real processor's measured table — Section VI.C — uses
//! the same type). An idle core sleeps at zero power, so *energy only
//! accrues while executing*.
//!
//! Two model families are provided:
//!
//! * [`PolynomialPower`] — the continuous ideal model with closed-form
//!   critical frequency,
//! * [`DiscretePower`] — a measured frequency/power table (e.g. Intel
//!   XScale) supporting only a finite set of operating points.

use crate::time::approx_le;
use std::fmt;

/// Anything that can report active power at a frequency.
///
/// Frequencies are in the same (arbitrary but consistent) unit as task
/// intensities; energy is `power × time`.
pub trait PowerModel {
    /// Active power drawn at frequency `f > 0`.
    fn power(&self, f: f64) -> f64;

    /// Energy to complete `work` units entirely at frequency `f`:
    /// `p(f) · work / f`.
    fn energy_for_work(&self, work: f64, f: f64) -> f64 {
        debug_assert!(f > 0.0, "frequency must be positive");
        self.power(f) * work / f
    }

    /// Energy drawn running at `f` for `duration` time units.
    fn energy_for_duration(&self, f: f64, duration: f64) -> f64 {
        self.power(f) * duration
    }

    /// Energy per unit of work at frequency `f` (`p(f)/f`). Minimizing this
    /// over `f` yields the *critical frequency*: below it, static power
    /// dominates and running slower wastes energy.
    fn energy_per_work(&self, f: f64) -> f64 {
        self.power(f) / f
    }
}

/// The continuous model `p(f) = γ·f^α + p₀` with `α ≥ 2`, `γ > 0`, `p₀ ≥ 0`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PolynomialPower {
    /// Dynamic-power coefficient `γ` (1 in the paper's analytic model).
    pub gamma: f64,
    /// Dynamic-power exponent `α ≥ 2`.
    pub alpha: f64,
    /// Static power `p₀ ≥ 0`, drawn whenever the core is active.
    pub p0: f64,
}

/// Validation errors for [`PolynomialPower::new`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PowerError {
    /// `α < 2` breaks convexity of the reformulated energy program
    /// (Theorem 1 requires `α ≥ 2`).
    AlphaTooSmall,
    /// `γ ≤ 0` or non-finite parameter.
    InvalidCoefficient,
    /// Negative static power.
    NegativeStatic,
    /// A discrete table was empty or not strictly increasing.
    MalformedTable,
}

impl fmt::Display for PowerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PowerError::AlphaTooSmall => write!(f, "alpha must be >= 2"),
            PowerError::InvalidCoefficient => write!(f, "gamma must be positive and finite"),
            PowerError::NegativeStatic => write!(f, "static power must be >= 0"),
            PowerError::MalformedTable => {
                write!(
                    f,
                    "frequency table must be non-empty, strictly increasing, finite"
                )
            }
        }
    }
}

impl std::error::Error for PowerError {}

impl PolynomialPower {
    /// Validated constructor.
    ///
    /// # Errors
    /// [`PowerError`] when `α < 2`, `γ ≤ 0`, `p₀ < 0`, or any parameter is
    /// non-finite.
    pub fn new(gamma: f64, alpha: f64, p0: f64) -> Result<Self, PowerError> {
        if !(gamma.is_finite() && alpha.is_finite() && p0.is_finite()) {
            return Err(PowerError::InvalidCoefficient);
        }
        if alpha < 2.0 {
            return Err(PowerError::AlphaTooSmall);
        }
        if gamma <= 0.0 {
            return Err(PowerError::InvalidCoefficient);
        }
        if p0 < 0.0 {
            return Err(PowerError::NegativeStatic);
        }
        Ok(Self { gamma, alpha, p0 })
    }

    /// The paper's analytic model `p(f) = f^α + p₀` (`γ = 1`).
    ///
    /// # Panics
    /// If parameters are invalid.
    pub fn paper(alpha: f64, p0: f64) -> Self {
        Self::new(1.0, alpha, p0).expect("invalid power parameters")
    }

    /// Cubic, zero-static-power model `p(f) = f³` used in the Section V.D
    /// worked example.
    pub fn cubic() -> Self {
        Self::paper(3.0, 0.0)
    }

    /// The *critical frequency* `f_crit = (p₀ / (γ·(α−1)))^{1/α}` at which
    /// energy per unit work `p(f)/f` is minimized. Running any task slower
    /// than this can never save energy (Eq. 19's first argument).
    ///
    /// Zero static power gives `f_crit = 0`: with no static cost, slower is
    /// always at least as good.
    pub fn critical_frequency(&self) -> f64 {
        if self.p0 == 0.0 {
            0.0
        } else {
            (self.p0 / (self.gamma * (self.alpha - 1.0))).powf(1.0 / self.alpha)
        }
    }

    /// The per-task optimal frequency given total available execution time
    /// `avail` for requirement `work` (Eq. 19 / Eq. 22-23):
    /// `f = max{ f_crit, work / avail }`.
    ///
    /// `avail = +∞` (unlimited time) yields `f_crit` directly when static
    /// power is positive; with `p₀ = 0` it degenerates to 0, which callers
    /// must treat as "stretch over the entire window".
    pub fn optimal_frequency(&self, work: f64, avail: f64) -> f64 {
        debug_assert!(work > 0.0);
        let stretch = if avail.is_finite() && avail > 0.0 {
            work / avail
        } else {
            0.0
        };
        self.critical_frequency().max(stretch)
    }

    /// Energy of executing `work` at the optimal frequency for available
    /// time `avail` — the `E_i` of the final schedules `S^F1` / `S^F2`.
    pub fn optimal_energy(&self, work: f64, avail: f64) -> f64 {
        let f = self.optimal_frequency(work, avail);
        self.energy_for_work(work, f)
    }

    /// Time actually used when executing `work` at the optimal frequency for
    /// available time `avail` (`work / f ≤ avail`).
    pub fn optimal_duration(&self, work: f64, avail: f64) -> f64 {
        work / self.optimal_frequency(work, avail)
    }

    /// Split the energy of executing `work` at frequency `f` into its
    /// `(dynamic, static)` components: `(γf^α·work/f, p₀·work/f)`.
    /// Useful for understanding *why* a schedule costs what it costs —
    /// low-frequency schedules are static-dominated, high-frequency ones
    /// dynamic-dominated.
    pub fn energy_breakdown(&self, work: f64, f: f64) -> (f64, f64) {
        debug_assert!(f > 0.0);
        let duration = work / f;
        (
            self.gamma * f.powf(self.alpha) * duration,
            self.p0 * duration,
        )
    }
}

impl PowerModel for PolynomialPower {
    fn power(&self, f: f64) -> f64 {
        self.gamma * f.powf(self.alpha) + self.p0
    }
}

/// One operating point of a discrete-DVFS processor.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FreqLevel {
    /// Operating frequency.
    pub freq: f64,
    /// Measured active power at that frequency.
    pub power: f64,
}

/// A processor supporting a finite, strictly increasing set of frequency
/// levels with measured power at each (Section VI.C).
#[derive(Debug, Clone, PartialEq)]
pub struct DiscretePower {
    levels: Vec<FreqLevel>,
}

impl DiscretePower {
    /// Validated constructor: levels must be non-empty, finite, positive,
    /// and strictly increasing in both frequency and power.
    ///
    /// # Errors
    /// [`PowerError::MalformedTable`] otherwise.
    pub fn new(levels: Vec<FreqLevel>) -> Result<Self, PowerError> {
        if levels.is_empty() {
            return Err(PowerError::MalformedTable);
        }
        for w in levels.windows(2) {
            if !(w[0].freq < w[1].freq && w[0].power < w[1].power) {
                return Err(PowerError::MalformedTable);
            }
        }
        if levels
            .iter()
            .any(|l| !(l.freq.is_finite() && l.power.is_finite() && l.freq > 0.0 && l.power > 0.0))
        {
            return Err(PowerError::MalformedTable);
        }
        Ok(Self { levels })
    }

    /// Build from `(freq, power)` pairs, panicking on malformed input.
    ///
    /// # Panics
    /// If the table is malformed.
    pub fn from_pairs(pairs: &[(f64, f64)]) -> Self {
        Self::new(
            pairs
                .iter()
                .map(|&(freq, power)| FreqLevel { freq, power })
                .collect(),
        )
        .expect("malformed frequency table")
    }

    /// The operating points, ascending.
    pub fn levels(&self) -> &[FreqLevel] {
        &self.levels
    }

    /// Lowest available frequency.
    pub fn min_freq(&self) -> f64 {
        self.levels[0].freq
    }

    /// Highest available frequency.
    pub fn max_freq(&self) -> f64 {
        self.levels[self.levels.len() - 1].freq
    }

    /// Smallest level with frequency ≥ `f` (how a continuous schedule is
    /// quantized onto real hardware). `None` when `f` exceeds the maximum
    /// level — the schedule is infeasible on this processor and the caller
    /// records a deadline miss.
    pub fn quantize_up(&self, f: f64) -> Option<FreqLevel> {
        self.levels.iter().find(|l| approx_le(f, l.freq)).copied()
    }

    /// Largest level with frequency ≤ `f`, if any.
    pub fn quantize_down(&self, f: f64) -> Option<FreqLevel> {
        self.levels
            .iter()
            .rev()
            .find(|l| approx_le(l.freq, f))
            .copied()
    }

    /// The level minimizing energy-per-work `p_k/f_k` — the discrete
    /// analogue of the critical frequency.
    pub fn critical_level(&self) -> FreqLevel {
        *self
            .levels
            .iter()
            .min_by(|a, b| {
                (a.power / a.freq)
                    .partial_cmp(&(b.power / b.freq))
                    .expect("finite table")
            })
            .expect("non-empty table")
    }
}

impl PowerModel for DiscretePower {
    /// Power at `f`: the table value if `f` matches a level, otherwise the
    /// power of the smallest level ≥ `f` (a core asked for an unsupported
    /// frequency must run at the next one up). Frequencies above the table
    /// are clamped to the top level's power.
    fn power(&self, f: f64) -> f64 {
        match self.quantize_up(f) {
            Some(l) => l.power,
            None => self.levels[self.levels.len() - 1].power,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_model_power_values() {
        let p = PolynomialPower::paper(3.0, 0.01);
        assert!((p.power(1.0) - 1.01).abs() < 1e-12);
        assert!((p.power(0.5) - (0.125 + 0.01)).abs() < 1e-12);
    }

    #[test]
    fn validation_rejects_bad_parameters() {
        assert_eq!(
            PolynomialPower::new(1.0, 1.5, 0.0),
            Err(PowerError::AlphaTooSmall)
        );
        assert_eq!(
            PolynomialPower::new(0.0, 2.0, 0.0),
            Err(PowerError::InvalidCoefficient)
        );
        assert_eq!(
            PolynomialPower::new(1.0, 2.0, -0.1),
            Err(PowerError::NegativeStatic)
        );
        assert_eq!(
            PolynomialPower::new(f64::NAN, 2.0, 0.1),
            Err(PowerError::InvalidCoefficient)
        );
    }

    #[test]
    fn energy_for_work_matches_definition() {
        // E = (f^3 + p0) * C / f, the paper's Section II expression.
        let p = PolynomialPower::paper(3.0, 0.01);
        let (c, f): (f64, f64) = (4.0, 0.8);
        let expect = (f.powi(3) + 0.01) * c / f;
        assert!((p.energy_for_work(c, f) - expect).abs() < 1e-12);
    }

    #[test]
    fn critical_frequency_closed_form() {
        // fig. 3 example: p(f) = f^2 + 0.25 → f_crit = (0.25/1)^(1/2) = 0.5.
        let p = PolynomialPower::paper(2.0, 0.25);
        assert!((p.critical_frequency() - 0.5).abs() < 1e-12);
        // Zero static power → zero critical frequency.
        assert_eq!(PolynomialPower::cubic().critical_frequency(), 0.0);
        // Gamma scales it: p = 2 f^3 + 0.02 → (0.02/(2*2))^(1/3).
        let p = PolynomialPower::new(2.0, 3.0, 0.02).unwrap();
        assert!((p.critical_frequency() - (0.005_f64).powf(1.0 / 3.0)).abs() < 1e-12);
    }

    #[test]
    fn critical_frequency_minimizes_energy_per_work() {
        let p = PolynomialPower::paper(3.0, 0.2);
        let fc = p.critical_frequency();
        let e = p.energy_per_work(fc);
        for f in [fc * 0.5, fc * 0.9, fc * 1.1, fc * 2.0] {
            assert!(p.energy_per_work(f) >= e - 1e-12, "f={f}");
        }
    }

    #[test]
    fn fig3_example_using_partial_time_is_better() {
        // The paper's Fig. 3: work 2.0, window of 5 time units,
        // p(f) = f^2 + 0.25. Full stretch (f = 0.4) costs 2.05; the optimal
        // frequency is f_crit = 0.5 (4 time units) costing 2.00.
        let p = PolynomialPower::paper(2.0, 0.25);
        let full = p.energy_for_work(2.0, 2.0 / 5.0);
        assert!((full - 2.05).abs() < 1e-12);
        let opt = p.optimal_energy(2.0, 5.0);
        assert!((opt - 2.0).abs() < 1e-12);
        assert!((p.optimal_frequency(2.0, 5.0) - 0.5).abs() < 1e-12);
        assert!((p.optimal_duration(2.0, 5.0) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn optimal_frequency_binds_to_stretch_when_time_is_scarce() {
        let p = PolynomialPower::paper(2.0, 0.25); // f_crit = 0.5
                                                   // Only 2 time units for 2 work units → must run at 1.0 > f_crit.
        assert!((p.optimal_frequency(2.0, 2.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn energy_breakdown_sums_to_total() {
        let p = PolynomialPower::paper(3.0, 0.2);
        let (c, f) = (5.0, 0.7);
        let (dynamic, stat) = p.energy_breakdown(c, f);
        assert!((dynamic + stat - p.energy_for_work(c, f)).abs() < 1e-12);
        assert!(dynamic > 0.0 && stat > 0.0);
        // At the critical frequency the two components relate by
        // dynamic = static/(α−1).
        let fc = p.critical_frequency();
        let (d2, s2) = p.energy_breakdown(c, fc);
        assert!((d2 - s2 / (p.alpha - 1.0)).abs() < 1e-9);
    }

    #[test]
    fn discrete_table_validation() {
        assert!(DiscretePower::new(vec![]).is_err());
        // Non-increasing power.
        assert!(DiscretePower::new(vec![
            FreqLevel {
                freq: 1.0,
                power: 2.0
            },
            FreqLevel {
                freq: 2.0,
                power: 2.0
            },
        ])
        .is_err());
        // Non-increasing frequency.
        assert!(DiscretePower::new(vec![
            FreqLevel {
                freq: 2.0,
                power: 1.0
            },
            FreqLevel {
                freq: 1.0,
                power: 2.0
            },
        ])
        .is_err());
    }

    fn xscale() -> DiscretePower {
        DiscretePower::from_pairs(&[
            (150.0, 80.0),
            (400.0, 170.0),
            (600.0, 400.0),
            (800.0, 900.0),
            (1000.0, 1600.0),
        ])
    }

    #[test]
    fn quantization() {
        let d = xscale();
        assert_eq!(d.quantize_up(100.0).unwrap().freq, 150.0);
        assert_eq!(d.quantize_up(150.0).unwrap().freq, 150.0);
        assert_eq!(d.quantize_up(401.0).unwrap().freq, 600.0);
        assert!(d.quantize_up(1200.0).is_none());
        assert_eq!(d.quantize_down(399.0).unwrap().freq, 150.0);
        assert_eq!(d.quantize_down(1200.0).unwrap().freq, 1000.0);
        assert!(d.quantize_down(100.0).is_none());
        assert_eq!(d.min_freq(), 150.0);
        assert_eq!(d.max_freq(), 1000.0);
    }

    #[test]
    fn xscale_critical_level_is_400mhz() {
        // Energy per cycle: 80/150 ≈ .533, 170/400 = .425, 400/600 ≈ .667,
        // 900/800 = 1.125, 1600/1000 = 1.6 → minimum at 400 MHz.
        assert_eq!(xscale().critical_level().freq, 400.0);
    }

    #[test]
    fn discrete_power_model_quantizes_up() {
        let d = xscale();
        assert_eq!(d.power(300.0), 170.0);
        assert_eq!(d.power(1000.0), 1600.0);
        assert_eq!(d.power(2000.0), 1600.0); // clamped
    }

    #[test]
    fn json_round_trip() {
        use esched_obs::json::{parse, FromJson, ToJson};
        let p = PolynomialPower::paper(2.5, 0.1);
        let back = PolynomialPower::from_json(&parse(&p.to_json().to_string()).unwrap()).unwrap();
        assert_eq!(p, back);
        let d = xscale();
        let back = DiscretePower::from_json(&parse(&d.to_json().to_string()).unwrap()).unwrap();
        assert_eq!(d, back);
    }
}
