//! Task-set transformations.
//!
//! Utilities downstream users need when massaging real workloads into the
//! scheduler: time/work rescaling (unit changes — e.g. megacycles and
//! seconds ↔ the paper's dimensionless units), horizon shifting and
//! normalization, merging of independent sets, and window-based filtering.
//! All transformations preserve validity by construction and are tested
//! for the invariants they claim.

use crate::task::{Task, TaskSet};

/// Scale all times by `time_factor` (> 0): releases, deadlines — and
/// execution requirements by the *same* factor, so intensities (hence
/// required frequencies) are unchanged. This is a pure unit change.
pub fn rescale_time(tasks: &TaskSet, time_factor: f64) -> TaskSet {
    assert!(time_factor > 0.0 && time_factor.is_finite());
    TaskSet::new(
        tasks
            .tasks()
            .iter()
            .map(|t| {
                Task::of(
                    t.release * time_factor,
                    t.deadline * time_factor,
                    t.wcec * time_factor,
                )
            })
            .collect(),
    )
    .expect("scaling a valid set preserves validity")
}

/// Scale execution requirements by `work_factor` (> 0), keeping windows
/// fixed — intensities (and all required frequencies) scale by the same
/// factor. This is a frequency unit change (e.g. dimensionless → MHz).
pub fn rescale_work(tasks: &TaskSet, work_factor: f64) -> TaskSet {
    assert!(work_factor > 0.0 && work_factor.is_finite());
    TaskSet::new(
        tasks
            .tasks()
            .iter()
            .map(|t| Task::of(t.release, t.deadline, t.wcec * work_factor))
            .collect(),
    )
    .expect("scaling works preserves validity")
}

/// Shift all times by `offset` (releases and deadlines move together).
pub fn shift_time(tasks: &TaskSet, offset: f64) -> TaskSet {
    assert!(offset.is_finite());
    TaskSet::new(
        tasks
            .tasks()
            .iter()
            .map(|t| Task::of(t.release + offset, t.deadline + offset, t.wcec))
            .collect(),
    )
    .expect("shifting preserves validity")
}

/// Shift so the earliest release lands at time 0.
pub fn normalize_origin(tasks: &TaskSet) -> TaskSet {
    shift_time(tasks, -tasks.earliest_release())
}

/// Concatenate two independent task sets (ids of `b` are appended after
/// `a`'s).
pub fn merge(a: &TaskSet, b: &TaskSet) -> TaskSet {
    let mut v = a.tasks().to_vec();
    v.extend_from_slice(b.tasks());
    TaskSet::new(v).expect("merging valid sets is valid")
}

/// Keep only the tasks whose window lies entirely inside `[t0, t1]`.
/// Returns `None` when nothing survives.
pub fn filter_window(tasks: &TaskSet, t0: f64, t1: f64) -> Option<TaskSet> {
    let v: Vec<Task> = tasks
        .tasks()
        .iter()
        .filter(|t| t.release >= t0 - crate::time::EPS && t.deadline <= t1 + crate::time::EPS)
        .copied()
        .collect();
    TaskSet::new(v).ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fixture() -> TaskSet {
        TaskSet::from_triples(&[(2.0, 10.0, 4.0), (4.0, 8.0, 2.0), (6.0, 14.0, 6.0)])
    }

    #[test]
    fn rescale_time_preserves_intensities() {
        let ts = fixture();
        let scaled = rescale_time(&ts, 3.5);
        for (i, t) in ts.iter() {
            let s = scaled.get(i);
            assert!((s.intensity() - t.intensity()).abs() < 1e-12);
            assert!((s.release - t.release * 3.5).abs() < 1e-12);
            assert!((s.window_len() - t.window_len() * 3.5).abs() < 1e-12);
        }
    }

    #[test]
    fn rescale_work_scales_intensities() {
        let ts = fixture();
        let scaled = rescale_work(&ts, 400.0);
        for (i, t) in ts.iter() {
            let s = scaled.get(i);
            assert!((s.intensity() - t.intensity() * 400.0).abs() < 1e-9);
            assert_eq!(s.release, t.release);
            assert_eq!(s.deadline, t.deadline);
        }
    }

    #[test]
    fn shift_and_normalize() {
        let ts = fixture();
        let shifted = shift_time(&ts, 100.0);
        assert_eq!(shifted.earliest_release(), 102.0);
        assert_eq!(shifted.latest_deadline(), 114.0);
        let normalized = normalize_origin(&shifted);
        assert_eq!(normalized.earliest_release(), 0.0);
        // Windows and works unchanged.
        for (i, t) in ts.iter() {
            assert!((normalized.get(i).window_len() - t.window_len()).abs() < 1e-12);
            assert_eq!(normalized.get(i).wcec, t.wcec);
        }
    }

    #[test]
    fn merge_concatenates_with_stable_ids() {
        let a = fixture();
        let b = TaskSet::from_triples(&[(0.0, 5.0, 1.0)]);
        let m = merge(&a, &b);
        assert_eq!(m.len(), 4);
        assert_eq!(m.get(0).wcec, 4.0);
        assert_eq!(m.get(3).wcec, 1.0);
        assert!((m.total_work() - a.total_work() - b.total_work()).abs() < 1e-12);
    }

    #[test]
    fn filter_window_keeps_contained_tasks() {
        let ts = fixture();
        let f = filter_window(&ts, 3.0, 9.0).unwrap();
        assert_eq!(f.len(), 1);
        assert_eq!(f.get(0).wcec, 2.0);
        // Nothing inside an empty range.
        assert!(filter_window(&ts, 100.0, 101.0).is_none());
        // Everything inside the full horizon.
        assert_eq!(filter_window(&ts, 0.0, 20.0).unwrap().len(), 3);
    }

    #[test]
    fn unit_round_trip_is_identity() {
        let ts = fixture();
        let back = rescale_time(&rescale_time(&ts, 7.0), 1.0 / 7.0);
        for (i, t) in ts.iter() {
            let b = back.get(i);
            assert!((b.release - t.release).abs() < 1e-9);
            assert!((b.deadline - t.deadline).abs() < 1e-9);
            assert!((b.wcec - t.wcec).abs() < 1e-9);
        }
    }

    #[test]
    #[should_panic]
    fn rescale_rejects_nonpositive_factor() {
        let _ = rescale_time(&fixture(), 0.0);
    }
}
