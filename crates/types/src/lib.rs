//! # esched-types
//!
//! Foundation types for the `esched` workspace — an implementation of
//! Li & Wu, *"Energy-Aware Scheduling for Aperiodic Tasks on Multi-core
//! Processors"* (ICPP 2014).
//!
//! This crate defines the vocabulary every other crate speaks:
//!
//! * [`task`] — aperiodic tasks `τ = (R, D, C)` and validated task sets,
//! * [`power`] — the continuous `γf^α + p₀` and discrete (table-driven)
//!   power models,
//! * [`schedule`] — execution segments, multi-core schedules, frequency
//!   assignments,
//! * [`validate`] — legality checking of schedules against task sets,
//! * [`transform`] — unit rescaling, shifting, merging, and filtering of
//!   task sets,
//! * [`time`] — tolerant floating-point comparisons and interval
//!   arithmetic,
//! * [`json`] — JSON conversions via [`esched_obs::json`] (same shapes the
//!   earlier serde encoding produced).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod json;
pub mod power;
pub mod schedule;
pub mod task;
pub mod time;
pub mod transform;
pub mod validate;

pub use power::{DiscretePower, FreqLevel, PolynomialPower, PowerError, PowerModel};
pub use schedule::{FrequencyAssignment, Schedule, Segment};
pub use task::{Task, TaskError, TaskId, TaskSet};
pub use time::{Interval, EPS};
pub use transform::{
    filter_window, merge, normalize_origin, rescale_time, rescale_work, shift_time,
};
pub use validate::{validate_schedule, ValidationReport, Violation};
