//! JSON conversions for the foundation types, via [`esched_obs::json`].
//!
//! Shapes match the field layout of the structs (the layout the previous
//! serde-derived encoding produced), so existing on-disk artifacts keep
//! loading: `Task` is `{"release": …, "deadline": …, "wcec": …}`,
//! `TaskSet` is `{"tasks": […]}`, `Schedule` is
//! `{"cores": …, "segments": […]}`, and so on.
//!
//! `FromJson` impls go through the validated constructors where one
//! exists, so a hand-edited or corrupted file surfaces a structured
//! error instead of an invalid in-memory value.

use crate::power::{DiscretePower, FreqLevel, PolynomialPower};
use crate::schedule::{Schedule, Segment};
use crate::task::{Task, TaskSet};
use crate::time::Interval;
use esched_obs::json::{type_error, FromJson, JsonError, ToJson, Value};

fn field(value: &Value, key: &str, context: &str) -> Result<f64, JsonError> {
    value
        .get(key)
        .and_then(Value::as_f64)
        .ok_or_else(|| type_error(&format!("{context}: missing or non-numeric field `{key}`")))
}

impl ToJson for Task {
    fn to_json(&self) -> Value {
        Value::obj(vec![
            ("release", Value::Num(self.release)),
            ("deadline", Value::Num(self.deadline)),
            ("wcec", Value::Num(self.wcec)),
        ])
    }
}

impl FromJson for Task {
    fn from_json(value: &Value) -> Result<Self, JsonError> {
        Ok(Task {
            release: field(value, "release", "Task")?,
            deadline: field(value, "deadline", "Task")?,
            wcec: field(value, "wcec", "Task")?,
        })
    }
}

impl ToJson for TaskSet {
    fn to_json(&self) -> Value {
        Value::obj(vec![(
            "tasks",
            Value::Arr(self.tasks().iter().map(ToJson::to_json).collect()),
        )])
    }
}

impl FromJson for TaskSet {
    fn from_json(value: &Value) -> Result<Self, JsonError> {
        let arr = value
            .get("tasks")
            .and_then(Value::as_array)
            .ok_or_else(|| type_error("TaskSet: missing `tasks` array"))?;
        let tasks = arr.iter().map(Task::from_json).collect::<Result<_, _>>()?;
        TaskSet::new(tasks).map_err(|e| type_error(&format!("TaskSet: {e}")))
    }
}

impl ToJson for Interval {
    fn to_json(&self) -> Value {
        Value::obj(vec![
            ("start", Value::Num(self.start)),
            ("end", Value::Num(self.end)),
        ])
    }
}

impl FromJson for Interval {
    fn from_json(value: &Value) -> Result<Self, JsonError> {
        let start = field(value, "start", "Interval")?;
        let end = field(value, "end", "Interval")?;
        if !(start.is_finite() && end.is_finite() && start <= end) {
            return Err(type_error(&format!(
                "Interval: endpoints must be finite and ordered, got [{start}, {end}]"
            )));
        }
        Ok(Interval::new(start, end))
    }
}

impl ToJson for Segment {
    fn to_json(&self) -> Value {
        Value::obj(vec![
            ("task", Value::Num(self.task as f64)),
            ("core", Value::Num(self.core as f64)),
            ("interval", self.interval.to_json()),
            ("freq", Value::Num(self.freq)),
        ])
    }
}

impl FromJson for Segment {
    fn from_json(value: &Value) -> Result<Self, JsonError> {
        let task = value
            .get("task")
            .and_then(Value::as_u64)
            .ok_or_else(|| type_error("Segment: missing or non-integer field `task`"))?;
        let core = value
            .get("core")
            .and_then(Value::as_u64)
            .ok_or_else(|| type_error("Segment: missing or non-integer field `core`"))?;
        let interval = Interval::from_json(
            value
                .get("interval")
                .ok_or_else(|| type_error("Segment: missing field `interval`"))?,
        )?;
        let freq = field(value, "freq", "Segment")?;
        if !(freq.is_finite() && freq > 0.0) {
            return Err(type_error(&format!(
                "Segment: frequency must be positive, got {freq}"
            )));
        }
        Ok(Segment::new(
            task as usize,
            core as usize,
            interval.start,
            interval.end,
            freq,
        ))
    }
}

impl ToJson for Schedule {
    fn to_json(&self) -> Value {
        Value::obj(vec![
            ("cores", Value::Num(self.cores as f64)),
            (
                "segments",
                Value::Arr(self.segments().iter().map(ToJson::to_json).collect()),
            ),
        ])
    }
}

impl FromJson for Schedule {
    fn from_json(value: &Value) -> Result<Self, JsonError> {
        let cores = value
            .get("cores")
            .and_then(Value::as_u64)
            .ok_or_else(|| type_error("Schedule: missing or non-integer field `cores`"))?;
        if cores == 0 {
            return Err(type_error("Schedule: needs at least one core"));
        }
        let arr = value
            .get("segments")
            .and_then(Value::as_array)
            .ok_or_else(|| type_error("Schedule: missing `segments` array"))?;
        let mut schedule = Schedule::new(cores as usize);
        for seg in arr {
            schedule.push(Segment::from_json(seg)?);
        }
        Ok(schedule)
    }
}

impl ToJson for PolynomialPower {
    fn to_json(&self) -> Value {
        Value::obj(vec![
            ("gamma", Value::Num(self.gamma)),
            ("alpha", Value::Num(self.alpha)),
            ("p0", Value::Num(self.p0)),
        ])
    }
}

impl FromJson for PolynomialPower {
    fn from_json(value: &Value) -> Result<Self, JsonError> {
        PolynomialPower::new(
            field(value, "gamma", "PolynomialPower")?,
            field(value, "alpha", "PolynomialPower")?,
            field(value, "p0", "PolynomialPower")?,
        )
        .map_err(|e| type_error(&format!("PolynomialPower: {e}")))
    }
}

impl ToJson for FreqLevel {
    fn to_json(&self) -> Value {
        Value::obj(vec![
            ("freq", Value::Num(self.freq)),
            ("power", Value::Num(self.power)),
        ])
    }
}

impl FromJson for FreqLevel {
    fn from_json(value: &Value) -> Result<Self, JsonError> {
        Ok(FreqLevel {
            freq: field(value, "freq", "FreqLevel")?,
            power: field(value, "power", "FreqLevel")?,
        })
    }
}

impl ToJson for DiscretePower {
    fn to_json(&self) -> Value {
        Value::obj(vec![(
            "levels",
            Value::Arr(self.levels().iter().map(ToJson::to_json).collect()),
        )])
    }
}

impl FromJson for DiscretePower {
    fn from_json(value: &Value) -> Result<Self, JsonError> {
        let arr = value
            .get("levels")
            .and_then(Value::as_array)
            .ok_or_else(|| type_error("DiscretePower: missing `levels` array"))?;
        let levels = arr
            .iter()
            .map(FreqLevel::from_json)
            .collect::<Result<_, _>>()?;
        DiscretePower::new(levels).map_err(|e| type_error(&format!("DiscretePower: {e}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use esched_obs::json::parse;

    #[test]
    fn task_set_shape_is_stable() {
        let ts = TaskSet::new(vec![Task::new(0.0, 4.0, 2.0).unwrap()]).unwrap();
        let json = ts.to_json().to_string();
        assert_eq!(json, r#"{"tasks":[{"release":0,"deadline":4,"wcec":2}]}"#);
    }

    #[test]
    fn invalid_task_set_is_rejected_on_load() {
        let v = parse(r#"{"tasks":[{"release":5,"deadline":1,"wcec":2}]}"#).unwrap();
        assert!(TaskSet::from_json(&v).is_err());
        let v = parse(r#"{"tasks":[]}"#).unwrap();
        assert!(TaskSet::from_json(&v).is_err());
    }

    #[test]
    fn schedule_round_trip() {
        let mut s = Schedule::new(2);
        s.push(Segment::new(0, 0, 0.0, 2.0, 1.5));
        s.push(Segment::new(1, 1, 1.0, 3.0, 0.5));
        let text = s.to_json().to_string();
        let back = Schedule::from_json(&parse(&text).unwrap()).unwrap();
        assert_eq!(s, back);
    }

    #[test]
    fn inverted_interval_is_rejected() {
        let v = parse(r#"{"start":3,"end":1}"#).unwrap();
        assert!(Interval::from_json(&v).is_err());
    }

    #[test]
    fn power_models_round_trip() {
        let p = PolynomialPower::new(1.0, 2.5, 0.1).unwrap();
        let back = PolynomialPower::from_json(&parse(&p.to_json().to_string()).unwrap()).unwrap();
        assert_eq!(p, back);

        let d = DiscretePower::from_pairs(&[(150.0, 80.0), (400.0, 170.0), (600.0, 400.0)]);
        let back = DiscretePower::from_json(&parse(&d.to_json().to_string()).unwrap()).unwrap();
        assert_eq!(d, back);
    }
}
