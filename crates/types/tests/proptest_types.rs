//! Property tests for the foundation types: interval algebra, task-set
//! demand, schedule accounting, and validator soundness.

use esched_types::time::{approx_eq, compensated_sum, Interval};
use esched_types::{validate_schedule, PolynomialPower, PowerModel, Schedule, Segment, Task, TaskSet};
use proptest::prelude::*;

fn arb_interval() -> impl Strategy<Value = Interval> {
    (0.0_f64..100.0, 0.01_f64..50.0).prop_map(|(s, len)| Interval::new(s, s + len))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn overlap_is_symmetric_and_bounded(a in arb_interval(), b in arb_interval()) {
        let ab = a.overlap_len(&b);
        let ba = b.overlap_len(&a);
        prop_assert!((ab - ba).abs() < 1e-12);
        prop_assert!(ab <= a.length() + 1e-12);
        prop_assert!(ab <= b.length() + 1e-12);
        prop_assert!(ab >= 0.0);
    }

    #[test]
    fn intersection_agrees_with_overlap_len(a in arb_interval(), b in arb_interval()) {
        match a.intersect(&b) {
            Some(i) => prop_assert!((i.length() - a.overlap_len(&b)).abs() < 1e-9),
            None => prop_assert!(a.overlap_len(&b) < 1e-9),
        }
    }

    #[test]
    fn covers_implies_overlap_equals_inner_length(a in arb_interval(), b in arb_interval()) {
        if a.covers(&b) {
            prop_assert!((a.overlap_len(&b) - b.length()).abs() < 1e-7 * (1.0 + b.length()));
        }
    }

    #[test]
    fn contains_midpoint(a in arb_interval()) {
        prop_assert!(a.contains(a.midpoint()));
        prop_assert!(a.contains(a.start));
        prop_assert!(a.contains(a.end));
    }

    #[test]
    fn demand_is_monotone_in_the_interval(
        tasks in prop::collection::vec((0.0_f64..50.0, 0.1_f64..30.0, 0.1_f64..20.0), 1..12),
        t1 in 0.0_f64..40.0,
        width in 1.0_f64..60.0,
        widen in 0.0_f64..20.0,
    ) {
        let ts = TaskSet::new(
            tasks.iter().map(|&(r, len, c)| Task::of(r, r + len, c)).collect()
        ).unwrap();
        let t2 = t1 + width;
        let narrow = ts.demand(t1, t2);
        let wide = ts.demand(t1 - widen, t2 + widen);
        prop_assert!(wide >= narrow - 1e-9, "widening decreased demand");
        prop_assert!(narrow >= 0.0);
        // Demand over everything equals total work.
        let all = ts.demand(f64::NEG_INFINITY, f64::INFINITY);
        prop_assert!((all - ts.total_work()).abs() < 1e-9);
    }

    #[test]
    fn event_points_are_sorted_and_within_horizon(
        tasks in prop::collection::vec((0.0_f64..50.0, 0.1_f64..30.0, 0.1_f64..20.0), 1..12),
    ) {
        let ts = TaskSet::new(
            tasks.iter().map(|&(r, len, c)| Task::of(r, r + len, c)).collect()
        ).unwrap();
        let pts = ts.event_points();
        prop_assert!(pts.len() >= 2);
        for w in pts.windows(2) {
            prop_assert!(w[0] < w[1]);
        }
        prop_assert!(approx_eq(pts[0], ts.earliest_release()));
        prop_assert!(approx_eq(*pts.last().unwrap(), ts.latest_deadline()));
    }

    #[test]
    fn schedule_work_and_energy_accounting(
        segs in prop::collection::vec(
            (0_usize..4, 0_usize..3, 0.0_f64..20.0, 0.05_f64..5.0, 0.1_f64..2.0),
            0..16,
        ),
    ) {
        let mut s = Schedule::new(3);
        for &(task, core, start, len, freq) in &segs {
            s.push(Segment::new(task, core, start, start + len, freq));
        }
        // Total work = Σ per-task work.
        let total: f64 = (0..4).map(|t| s.work_of(t)).sum();
        let by_segment: f64 = s.segments().iter().map(|x| x.work()).sum();
        prop_assert!((total - by_segment).abs() < 1e-9 * (1.0 + by_segment));
        // Energy under two models is consistent with per-segment sums.
        for p in [PolynomialPower::cubic(), PolynomialPower::paper(2.0, 0.3)] {
            let e = s.energy(&p);
            let by_seg: f64 = s.segments().iter().map(|x| x.energy(&p)).sum();
            prop_assert!((e - by_seg).abs() < 1e-9 * (1.0 + by_seg));
            prop_assert!(e >= 0.0);
            let _ = p.power(1.0);
        }
        // Busy time splits across cores.
        let busy: f64 = (0..3).map(|c| s.busy_time(c)).sum();
        let dur: f64 = s.segments().iter().map(|x| x.duration()).sum();
        prop_assert!((busy - dur).abs() < 1e-9 * (1.0 + dur));
    }

    #[test]
    fn coalesce_preserves_work_and_legality_status(
        segs in prop::collection::vec(
            (0_usize..3, 0_usize..2, 0.0_f64..20.0, 0.05_f64..5.0),
            0..12,
        ),
    ) {
        let mut s = Schedule::new(2);
        for &(task, core, start, len) in &segs {
            s.push(Segment::new(task, core, start, start + len, 1.0));
        }
        let works_before: Vec<f64> = (0..3).map(|t| s.work_of(t)).collect();
        let mut t = s.clone();
        t.coalesce();
        for (k, &w) in works_before.iter().enumerate() {
            prop_assert!((t.work_of(k) - w).abs() < 1e-7 * (1.0 + w),
                "task {k}: {} vs {w}", t.work_of(k));
        }
        prop_assert!(t.len() <= s.len());
    }

    #[test]
    fn compensated_sum_matches_naive_on_benign_inputs(
        xs in prop::collection::vec(-100.0_f64..100.0, 0..64),
    ) {
        let a = compensated_sum(xs.iter().copied());
        let b: f64 = xs.iter().sum();
        prop_assert!((a - b).abs() < 1e-9 * (1.0 + b.abs()));
    }

    #[test]
    fn validator_accepts_disjoint_single_core_schedules(
        lens in prop::collection::vec(0.1_f64..3.0, 1..8),
    ) {
        // Build a chain of back-to-back segments and matching tasks: must
        // always validate.
        let mut s = Schedule::new(1);
        let mut tasks = Vec::new();
        let mut t = 0.0;
        for (i, &len) in lens.iter().enumerate() {
            s.push(Segment::new(i, 0, t, t + len, 1.0));
            tasks.push(Task::of(t, t + len, len));
            t += len;
        }
        let ts = TaskSet::new(tasks).unwrap();
        let report = validate_schedule(&s, &ts);
        prop_assert!(report.is_legal(), "{:?}", report.violations);
    }
}
