//! Seeded randomized tests for the foundation types: interval algebra,
//! task-set demand, schedule accounting, and validator soundness.
//!
//! Each test draws `CASES` random inputs from a fixed-seed ChaCha8
//! stream, so failures are reproducible bit-for-bit.

use esched_obs::rng::ChaCha8;
use esched_types::time::{approx_eq, compensated_sum, Interval};
use esched_types::{
    validate_schedule, PolynomialPower, PowerModel, Schedule, Segment, Task, TaskSet,
};

const CASES: usize = 64;

fn arb_interval(rng: &mut ChaCha8) -> Interval {
    let s = rng.gen_range_f64(0.0, 100.0);
    let len = rng.gen_range_f64(0.01, 50.0);
    Interval::new(s, s + len)
}

fn arb_tasks(rng: &mut ChaCha8, max_tasks: usize) -> Vec<(f64, f64, f64)> {
    let n = rng.gen_range_usize(1, max_tasks + 1);
    (0..n)
        .map(|_| {
            (
                rng.gen_range_f64(0.0, 50.0),
                rng.gen_range_f64(0.1, 30.0),
                rng.gen_range_f64(0.1, 20.0),
            )
        })
        .collect()
}

#[test]
fn overlap_is_symmetric_and_bounded() {
    let mut rng = ChaCha8::seed_from_u64(0x7970_0001);
    for _ in 0..CASES {
        let a = arb_interval(&mut rng);
        let b = arb_interval(&mut rng);
        let ab = a.overlap_len(&b);
        let ba = b.overlap_len(&a);
        assert!((ab - ba).abs() < 1e-12);
        assert!(ab <= a.length() + 1e-12);
        assert!(ab <= b.length() + 1e-12);
        assert!(ab >= 0.0);
    }
}

#[test]
fn intersection_agrees_with_overlap_len() {
    let mut rng = ChaCha8::seed_from_u64(0x7970_0002);
    for _ in 0..CASES {
        let a = arb_interval(&mut rng);
        let b = arb_interval(&mut rng);
        match a.intersect(&b) {
            Some(i) => assert!((i.length() - a.overlap_len(&b)).abs() < 1e-9),
            None => assert!(a.overlap_len(&b) < 1e-9),
        }
    }
}

#[test]
fn covers_implies_overlap_equals_inner_length() {
    let mut rng = ChaCha8::seed_from_u64(0x7970_0003);
    for _ in 0..CASES {
        let a = arb_interval(&mut rng);
        let b = arb_interval(&mut rng);
        if a.covers(&b) {
            assert!((a.overlap_len(&b) - b.length()).abs() < 1e-7 * (1.0 + b.length()));
        }
    }
}

#[test]
fn contains_midpoint() {
    let mut rng = ChaCha8::seed_from_u64(0x7970_0004);
    for _ in 0..CASES {
        let a = arb_interval(&mut rng);
        assert!(a.contains(a.midpoint()));
        assert!(a.contains(a.start));
        assert!(a.contains(a.end));
    }
}

#[test]
fn demand_is_monotone_in_the_interval() {
    let mut rng = ChaCha8::seed_from_u64(0x7970_0005);
    for _ in 0..CASES {
        let tasks = arb_tasks(&mut rng, 12);
        let t1 = rng.gen_range_f64(0.0, 40.0);
        let width = rng.gen_range_f64(1.0, 60.0);
        let widen = rng.gen_range_f64(0.0, 20.0);
        let ts = TaskSet::new(
            tasks
                .iter()
                .map(|&(r, len, c)| Task::of(r, r + len, c))
                .collect(),
        )
        .unwrap();
        let t2 = t1 + width;
        let narrow = ts.demand(t1, t2);
        let wide = ts.demand(t1 - widen, t2 + widen);
        assert!(wide >= narrow - 1e-9, "widening decreased demand");
        assert!(narrow >= 0.0);
        // Demand over everything equals total work.
        let all = ts.demand(f64::NEG_INFINITY, f64::INFINITY);
        assert!((all - ts.total_work()).abs() < 1e-9);
    }
}

#[test]
fn event_points_are_sorted_and_within_horizon() {
    let mut rng = ChaCha8::seed_from_u64(0x7970_0006);
    for _ in 0..CASES {
        let tasks = arb_tasks(&mut rng, 12);
        let ts = TaskSet::new(
            tasks
                .iter()
                .map(|&(r, len, c)| Task::of(r, r + len, c))
                .collect(),
        )
        .unwrap();
        let pts = ts.event_points();
        assert!(pts.len() >= 2);
        for w in pts.windows(2) {
            assert!(w[0] < w[1]);
        }
        assert!(approx_eq(pts[0], ts.earliest_release()));
        assert!(approx_eq(*pts.last().unwrap(), ts.latest_deadline()));
    }
}

#[test]
fn schedule_work_and_energy_accounting() {
    let mut rng = ChaCha8::seed_from_u64(0x7970_0007);
    for _ in 0..CASES {
        let n = rng.gen_range_usize(0, 16);
        let mut s = Schedule::new(3);
        for _ in 0..n {
            let task = rng.gen_range_usize(0, 4);
            let core = rng.gen_range_usize(0, 3);
            let start = rng.gen_range_f64(0.0, 20.0);
            let len = rng.gen_range_f64(0.05, 5.0);
            let freq = rng.gen_range_f64(0.1, 2.0);
            s.push(Segment::new(task, core, start, start + len, freq));
        }
        // Total work = Σ per-task work.
        let total: f64 = (0..4).map(|t| s.work_of(t)).sum();
        let by_segment: f64 = s.segments().iter().map(|x| x.work()).sum();
        assert!((total - by_segment).abs() < 1e-9 * (1.0 + by_segment));
        // Energy under two models is consistent with per-segment sums.
        for p in [PolynomialPower::cubic(), PolynomialPower::paper(2.0, 0.3)] {
            let e = s.energy(&p);
            let by_seg: f64 = s.segments().iter().map(|x| x.energy(&p)).sum();
            assert!((e - by_seg).abs() < 1e-9 * (1.0 + by_seg));
            assert!(e >= 0.0);
            let _ = p.power(1.0);
        }
        // Busy time splits across cores.
        let busy: f64 = (0..3).map(|c| s.busy_time(c)).sum();
        let dur: f64 = s.segments().iter().map(|x| x.duration()).sum();
        assert!((busy - dur).abs() < 1e-9 * (1.0 + dur));
    }
}

#[test]
fn coalesce_preserves_work_and_legality_status() {
    let mut rng = ChaCha8::seed_from_u64(0x7970_0008);
    for _ in 0..CASES {
        let n = rng.gen_range_usize(0, 12);
        let mut s = Schedule::new(2);
        for _ in 0..n {
            let task = rng.gen_range_usize(0, 3);
            let core = rng.gen_range_usize(0, 2);
            let start = rng.gen_range_f64(0.0, 20.0);
            let len = rng.gen_range_f64(0.05, 5.0);
            s.push(Segment::new(task, core, start, start + len, 1.0));
        }
        let works_before: Vec<f64> = (0..3).map(|t| s.work_of(t)).collect();
        let mut t = s.clone();
        t.coalesce();
        for (k, &w) in works_before.iter().enumerate() {
            assert!(
                (t.work_of(k) - w).abs() < 1e-7 * (1.0 + w),
                "task {k}: {} vs {w}",
                t.work_of(k)
            );
        }
        assert!(t.len() <= s.len());
    }
}

#[test]
fn compensated_sum_matches_naive_on_benign_inputs() {
    let mut rng = ChaCha8::seed_from_u64(0x7970_0009);
    for _ in 0..CASES {
        let n = rng.gen_range_usize(0, 64);
        let xs: Vec<f64> = (0..n).map(|_| rng.gen_range_f64(-100.0, 100.0)).collect();
        let a = compensated_sum(xs.iter().copied());
        let b: f64 = xs.iter().sum();
        assert!((a - b).abs() < 1e-9 * (1.0 + b.abs()));
    }
}

#[test]
fn validator_accepts_disjoint_single_core_schedules() {
    let mut rng = ChaCha8::seed_from_u64(0x7970_000a);
    for _ in 0..CASES {
        // Build a chain of back-to-back segments and matching tasks: must
        // always validate.
        let n = rng.gen_range_usize(1, 8);
        let mut s = Schedule::new(1);
        let mut tasks = Vec::new();
        let mut t = 0.0;
        for i in 0..n {
            let len = rng.gen_range_f64(0.1, 3.0);
            s.push(Segment::new(i, 0, t, t + len, 1.0));
            tasks.push(Task::of(t, t + len, len));
            t += len;
        }
        let ts = TaskSet::new(tasks).unwrap();
        let report = validate_schedule(&s, &ts);
        assert!(report.is_legal(), "{:?}", report.violations);
    }
}
