//! Seeded randomized tests for the core scheduling algorithms.

use esched_core::{
    allocate, allocate_even, allocate_work_proportional, der_schedule, even_schedule,
    ideal_schedule, partitioned_yds, select_core_count, yds_schedule, AllocRequest, DerStrategy,
    Method,
};
use esched_obs::rng::ChaCha8;
use esched_subinterval::Timeline;
use esched_types::{validate_schedule, PolynomialPower, PowerModel, Task, TaskSet};

const CASES: usize = 40;

fn arb_task_set(rng: &mut ChaCha8, max_tasks: usize) -> TaskSet {
    let n = rng.gen_range_usize(1, max_tasks + 1);
    TaskSet::new(
        (0..n)
            .map(|_| {
                let r = rng.gen_range_f64(0.0, 40.0);
                let len = rng.gen_range_f64(0.5, 30.0);
                let i = rng.gen_range_f64(0.05, 1.2);
                Task::of(r, r + len, (len * i).max(1e-3))
            })
            .collect(),
    )
    .unwrap()
}

fn arb_power(rng: &mut ChaCha8) -> PolynomialPower {
    PolynomialPower::paper(rng.gen_range_f64(2.0, 3.0), rng.gen_range_f64(0.0, 0.4))
}

#[test]
fn ideal_frequency_is_pointwise_optimal() {
    let mut rng = ChaCha8::seed_from_u64(0xc0de_0001);
    for _ in 0..CASES {
        let tasks = arb_task_set(&mut rng, 8);
        let power = arb_power(&mut rng);
        let sol = ideal_schedule(&tasks, &power);
        for (i, t) in tasks.iter() {
            let f = sol.freq[i];
            // No other feasible frequency does better for this task alone.
            for scale in [1.01_f64, 1.2, 2.0] {
                let alt = f * scale;
                assert!(
                    power.energy_for_work(t.wcec, alt) >= power.energy_for_work(t.wcec, f) - 1e-9,
                    "task {i}: faster frequency {alt} beat {f}"
                );
            }
            // Slower is either infeasible (misses window) or worse.
            let slower = f * 0.99;
            if t.wcec / slower <= t.window_len() {
                assert!(
                    power.energy_for_work(t.wcec, slower)
                        >= power.energy_for_work(t.wcec, f) - 1e-9,
                    "task {i}: slower frequency beat the optimum"
                );
            }
        }
    }
}

#[test]
fn every_allocation_rule_respects_capacity() {
    let mut rng = ChaCha8::seed_from_u64(0xc0de_0002);
    for _ in 0..CASES {
        let tasks = arb_task_set(&mut rng, 10);
        let cores = rng.gen_range_usize(1, 5);
        let power = arb_power(&mut rng);
        let tl = Timeline::build(&tasks);
        let ideal = ideal_schedule(&tasks, &power);
        let mats = [
            allocate_even(&tasks, &tl, cores),
            allocate(AllocRequest::new(&tasks, &tl, cores, &ideal)),
            allocate(
                AllocRequest::new(&tasks, &tl, cores, &ideal)
                    .strategy(DerStrategy::NoRedistribution),
            ),
            allocate_work_proportional(&tasks, &tl, cores),
        ];
        for (mk, m) in mats.iter().enumerate() {
            for sub in tl.subintervals() {
                let delta = sub.delta();
                let mut sum = 0.0;
                for &i in &sub.overlapping {
                    let a = m.get(i, sub.index);
                    assert!(a >= -1e-12, "rule {mk}: negative allocation");
                    assert!(a <= delta + 1e-9, "rule {mk}: allocation beyond delta");
                    sum += a;
                }
                if sub.is_heavy(cores) {
                    assert!(
                        sum <= cores as f64 * delta + 1e-7,
                        "rule {mk}: heavy subinterval {j} overcommitted: {sum}",
                        j = sub.index
                    );
                }
            }
            // Every task ends with positive total availability.
            for i in 0..tasks.len() {
                assert!(m.total(i) > 0.0, "rule {mk}: task {i} starved");
            }
        }
    }
}

#[test]
fn der_beats_even_in_aggregate() {
    let mut rng = ChaCha8::seed_from_u64(0xc0de_0003);
    for _ in 0..CASES {
        // Per-instance DER can occasionally lose to even allocation; the
        // paper's claim is about the aggregate, so test the sum over a few
        // instances.
        let sets: Vec<TaskSet> = (0..3).map(|_| arb_task_set(&mut rng, 10)).collect();
        let power = arb_power(&mut rng);
        let mut sum_der = 0.0;
        let mut sum_even = 0.0;
        for tasks in &sets {
            sum_der += der_schedule(tasks, 3, &power).final_energy;
            sum_even += even_schedule(tasks, 3, &power).final_energy;
        }
        assert!(
            sum_der <= sum_even * 1.05 + 1e-9,
            "DER aggregate {sum_der} much worse than even {sum_even}"
        );
    }
}

#[test]
fn yds_energy_never_below_convex_bound_intuition() {
    let mut rng = ChaCha8::seed_from_u64(0xc0de_0004);
    for _ in 0..CASES {
        // YDS (m = 1) energy is at least the unlimited-core ideal energy
        // with p0 = 0 (relaxing the single-core constraint only helps).
        let tasks = arb_task_set(&mut rng, 6);
        let p = PolynomialPower::cubic();
        let yds = yds_schedule(&tasks, &p);
        let ideal = ideal_schedule(&tasks, &p);
        assert!(
            yds.energy >= ideal.energy - 1e-7 * (1.0 + ideal.energy),
            "yds {} below the ideal lower bound {}",
            yds.energy,
            ideal.energy
        );
        validate_schedule(&yds.schedule, &tasks).assert_legal();
    }
}

#[test]
fn partitioned_yds_assignment_is_balanced_enough() {
    let mut rng = ChaCha8::seed_from_u64(0xc0de_0005);
    for _ in 0..CASES {
        let tasks = arb_task_set(&mut rng, 12);
        let cores = rng.gen_range_usize(2, 5);
        let p = PolynomialPower::cubic();
        let out = partitioned_yds(&tasks, cores, &p);
        validate_schedule(&out.schedule, &tasks).assert_legal();
        // Worst-fit-decreasing: no core's intensity load exceeds the
        // total/(cores) by more than the largest single intensity.
        let mut loads = vec![0.0_f64; cores];
        for (i, t) in tasks.iter() {
            loads[out.assignment[i]] += t.intensity();
        }
        let total: f64 = loads.iter().sum();
        let max_single = tasks
            .iter()
            .map(|(_, t)| t.intensity())
            .fold(0.0_f64, f64::max);
        for &l in &loads {
            assert!(
                l <= total / cores as f64 + max_single + 1e-9,
                "load {l} too far above average"
            );
        }
    }
}

#[test]
fn core_count_sweep_contains_single_core_yds_energy_scale() {
    let mut rng = ChaCha8::seed_from_u64(0xc0de_0006);
    for _ in 0..CASES {
        let tasks = arb_task_set(&mut rng, 8);
        let power = arb_power(&mut rng);
        let choice = select_core_count(&tasks, 4, &power, Method::Der);
        assert_eq!(choice.sweep.len(), 4);
        // Best is genuinely the minimum of the sweep.
        let min = choice
            .sweep
            .iter()
            .map(|&(_, e)| e)
            .fold(f64::INFINITY, f64::min);
        assert!((choice.best_energy - min).abs() < 1e-12);
        // All energies at least the ideal bound when p0 = 0.
        if power.p0 == 0.0 {
            let ideal = ideal_schedule(&tasks, &power).energy;
            for &(m, e) in &choice.sweep {
                assert!(e >= ideal - 1e-7 * (1.0 + ideal), "m={m}");
            }
        }
    }
}

#[test]
fn even_intermediate_satisfies_paper_approximation_bound() {
    let mut rng = ChaCha8::seed_from_u64(0xc0de_0007);
    for _ in 0..CASES {
        // Section V.B: E^{I1} ≤ (n_max/m)^{α−1} · E^O with
        // n_max = max(m, max_j n_j). The argument assumes the dominant
        // cost is dynamic; with p0 = 0 the bound is exact.
        let tasks = arb_task_set(&mut rng, 10);
        let cores = rng.gen_range_usize(1, 5);
        let alpha = rng.gen_range_f64(2.0, 3.0);
        let power = PolynomialPower::paper(alpha, 0.0);
        let tl = Timeline::build(&tasks);
        let n_max = tl.peak_overlap().max(cores);
        let ideal = ideal_schedule(&tasks, &power);
        let even = even_schedule(&tasks, cores, &power);
        let bound = (n_max as f64 / cores as f64).powf(alpha - 1.0) * ideal.energy;
        assert!(
            even.intermediate_energy <= bound * (1.0 + 1e-7),
            "E^I1 {} exceeds the paper bound {bound} (n_max={n_max}, m={cores})",
            even.intermediate_energy
        );
    }
}

#[test]
fn final_frequencies_are_at_least_critical() {
    let mut rng = ChaCha8::seed_from_u64(0xc0de_0008);
    for _ in 0..CASES {
        let tasks = arb_task_set(&mut rng, 8);
        let power = arb_power(&mut rng);
        let cores = rng.gen_range_usize(1, 4);
        let out = der_schedule(&tasks, cores, &power);
        let fc = power.critical_frequency();
        for (i, &f) in out.assignment.freq.iter().enumerate() {
            assert!(f >= fc - 1e-12, "task {i}: f {f} below critical {fc}");
            // And at least the availability-stretch frequency.
            let need = tasks.get(i).wcec / out.total_avail[i];
            assert!(f >= need - 1e-9, "task {i}: f {f} below stretch {need}");
        }
    }
}
