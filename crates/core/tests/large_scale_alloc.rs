//! Large-n property tests for the unified allocation API: the vectorized
//! water-filling fast path, with and without intra-instance pool fan-out,
//! must agree cell-for-cell with the round-based `Reference` strategy at
//! sizes the adversarial fuzz loop never reaches.
//!
//! Sizes are tuned so the whole file stays debug-time bounded (~10 s):
//! the grid-snapped `WorkloadSpec::large_n` generator keeps timeline
//! cells O(n), so even n = 65 536 is a few million cells, not n².

use esched_core::{
    allocate, ideal_schedule, AllocRequest, AvailMatrix, DerStrategy, Pool, Scratch,
    DEFAULT_PARALLEL_THRESHOLD,
};
use esched_subinterval::Timeline;
use esched_types::validate::WORK_TOL;
use esched_types::{PolynomialPower, TaskSet};
use esched_workload::WorkloadSpec;

const CORES: usize = 4;

fn fixture(n: usize, seed: u64) -> (TaskSet, Timeline) {
    let tasks = WorkloadSpec::large_n(n).instantiate(seed);
    let tl = Timeline::build(&tasks);
    (tasks, tl)
}

/// Max |fast − reference| over every CSR cell, plus the cell count.
fn max_divergence(tasks: &TaskSet, tl: &Timeline, fast: &AvailMatrix, refr: &AvailMatrix) -> f64 {
    let _ = tasks;
    let mut worst = 0.0f64;
    for sub in tl.subintervals() {
        for &t in &sub.overlapping {
            let d = (fast.get(t, sub.index) - refr.get(t, sub.index)).abs();
            worst = worst.max(d);
        }
    }
    worst
}

#[test]
fn vectorized_alloc_matches_reference_across_sizes_and_seeds() {
    let power = PolynomialPower::paper(3.0, 0.1);
    let pool = Pool::with_threads(8);
    let mut scratch = Scratch::new();
    let plan: &[(usize, &[u64])] = &[
        (1_024, &[1, 2, 3]),
        (16_384, &[1, 2, 3]),
        (65_536, &[1, 2, 3]),
    ];
    for &(n, seeds) in plan {
        for &seed in seeds {
            let (tasks, tl) = fixture(n, seed);
            let ideal = ideal_schedule(&tasks, &power);
            let reference = allocate(
                AllocRequest::new(&tasks, &tl, CORES, &ideal).strategy(DerStrategy::Reference),
            );
            // Serial vectorized path.
            let serial =
                allocate(AllocRequest::new(&tasks, &tl, CORES, &ideal).with_scratch(&mut scratch));
            let d = max_divergence(&tasks, &tl, &serial, &reference);
            assert!(
                d <= WORK_TOL,
                "serial fast path diverges at n={n} seed={seed}: |diff|={d:e}"
            );
            // Pool-parallel path, aggressive threshold so fan-out actually
            // triggers even at the small sizes.
            let parallel = allocate(
                AllocRequest::new(&tasks, &tl, CORES, &ideal)
                    .with_pool(&pool)
                    .with_parallel_threshold(64),
            );
            let d = max_divergence(&tasks, &tl, &parallel, &reference);
            assert!(
                d <= WORK_TOL,
                "parallel fast path diverges at n={n} seed={seed}: |diff|={d:e}"
            );
        }
    }
}

#[test]
fn parallel_alloc_is_byte_identical_across_worker_counts() {
    let power = PolynomialPower::paper(3.0, 0.1);
    let (tasks, tl) = fixture(8_192, 42);
    let ideal = ideal_schedule(&tasks, &power);
    let run = |workers: usize| -> Vec<u64> {
        let pool = Pool::with_threads(workers);
        let avail = allocate(
            AllocRequest::new(&tasks, &tl, CORES, &ideal)
                .with_pool(&pool)
                .with_parallel_threshold(DEFAULT_PARALLEL_THRESHOLD),
        );
        tl.subintervals()
            .iter()
            .flat_map(|s| {
                s.overlapping
                    .iter()
                    .map(|&t| avail.get(t, s.index).to_bits())
            })
            .collect()
    };
    let one = run(1);
    let four = run(4);
    let eight = run(8);
    assert_eq!(one, four, "1-worker and 4-worker allocations differ");
    assert_eq!(four, eight, "4-worker and 8-worker allocations differ");
}
