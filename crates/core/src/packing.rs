//! Algorithm 1: collision-free packing of allocated execution times within
//! one subinterval (McNaughton-style wrap-around).
//!
//! Given a subinterval `[t_j, t_{j+1}]` of length `Δ` and per-task
//! durations `d_i` with `d_i ≤ Δ` and `Σ d_i ≤ m·Δ`, the wrap-around rule
//! fills core 1 left to right, and when a task would run past `t_{j+1}`
//! splits it: the spill-over runs at the *start* of the next core. Because
//! `d_i ≤ Δ`, the two pieces of a split task never overlap in time, so the
//! task never runs concurrently with itself — the paper's "safe way to
//! schedule these tasks".

use esched_types::time::EPS;
use esched_types::validate::WORK_TOL;
use esched_types::{Schedule, Segment, TaskId};

/// Is a `(duration, freq)` pair too small to matter?
///
/// An item is dust only when its *duration* is below `EPS` **and** the
/// *work* it carries (`duration · freq`) is far below the validator's
/// `WORK_TOL`. Judging by duration alone is wrong at the boundaries the
/// fuzzer probes: a `1e-8`-long piece running at frequency `1e3` carries
/// `1e-5` work — ten times the validation tolerance — and dropping it
/// turns a legal schedule into an underserved one.
#[must_use]
pub fn negligible(duration: f64, freq: f64) -> bool {
    duration <= EPS && duration * freq <= WORK_TOL * 0.1
}

/// One task's share of a subinterval: how long it runs and at what
/// frequency.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PackItem {
    /// The task.
    pub task: TaskId,
    /// Duration it must occupy a core within the subinterval.
    pub duration: f64,
    /// Frequency it runs at during this subinterval.
    pub freq: f64,
}

/// Errors from [`pack_subinterval`].
#[derive(Debug, Clone, PartialEq)]
pub enum PackError {
    /// Some `d_i > Δ` (cannot avoid self-overlap).
    ItemTooLong {
        /// The offending task.
        task: TaskId,
        /// Its requested duration.
        duration: f64,
        /// The subinterval length.
        delta: f64,
    },
    /// `Σ d_i > m·Δ` (not enough core time).
    Overcommitted {
        /// Total requested duration.
        total: f64,
        /// Available core time `m·Δ`.
        capacity: f64,
    },
}

impl std::fmt::Display for PackError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PackError::ItemTooLong {
                task,
                duration,
                delta,
            } => write!(
                f,
                "task {task}: duration {duration} exceeds subinterval {delta}"
            ),
            PackError::Overcommitted { total, capacity } => {
                write!(f, "total duration {total} exceeds capacity {capacity}")
            }
        }
    }
}

impl std::error::Error for PackError {}

/// Pack `items` into `[t0, t1]` on `cores` cores, appending segments to
/// `out`. Items with ~zero duration are skipped. Durations are clamped to
/// `Δ` after the validity check, so callers may pass values that exceed
/// `Δ` by floating-point noise.
///
/// # Errors
/// [`PackError`] when an item exceeds the subinterval length or the items
/// exceed total capacity (both with tolerance).
pub fn pack_subinterval(
    items: &[PackItem],
    t0: f64,
    t1: f64,
    cores: usize,
    out: &mut Schedule,
) -> Result<(), PackError> {
    let delta = t1 - t0;
    debug_assert!(delta >= 0.0);
    // Validity gates are time-scale aware: durations are computed from
    // boundary times, so their rounding noise grows with |t|, not just Δ.
    let tol = EPS * (1.0 + delta.abs().max(t0.abs()).max(t1.abs()));

    let mut total = 0.0;
    for it in items {
        if it.duration > delta + tol {
            return Err(PackError::ItemTooLong {
                task: it.task,
                duration: it.duration,
                delta,
            });
        }
        total += it.duration;
    }
    let capacity = cores as f64 * delta;
    if total > capacity + tol * cores as f64 {
        return Err(PackError::Overcommitted { total, capacity });
    }
    esched_obs::metric_counter!("esched.core.pack_calls").inc();
    esched_obs::metric_counter!("esched.core.pack_items").add(items.len() as u64);

    // Wrap-around fill. `cursor` is the next free instant on core `k`.
    //
    // Fill decisions use a *tight* tolerance at arithmetic-rounding scale,
    // not the loose validity `tol` above: advancing to the next core while
    // `tol` of capacity remains discards up to `tol` per core, and for
    // subintervals whose length is near `EPS` that loss compounds until the
    // leftover items land on core `k == cores` — a nonexistent core.
    let fill_tol = 1e-12 * (1.0 + t1.abs().max(t0.abs()));
    let mut k = 0usize;
    let mut cursor = t0;
    for it in items {
        let d = it.duration.min(delta).max(0.0);
        if negligible(d, it.freq) {
            continue;
        }
        if k >= cores {
            // Every core is full to within `fill_tol`; the validity gates
            // above bound whatever remains by their tolerance slack.
            break;
        }
        if cursor + d > t1 + fill_tol {
            // Split: spill-over goes to the start of the next core…
            esched_obs::metric_counter!("esched.core.pack_splits").inc();
            let spill = (cursor + d - t1).min(delta).max(0.0);
            debug_assert!(
                t0 + spill <= cursor + tol,
                "wrap-around self-overlap: spill end {} vs second start {}",
                t0 + spill,
                cursor
            );
            if k + 1 >= cores {
                // Capacity says this cannot happen; guard against
                // accumulated rounding by clamping onto the last core.
                let end = t1.min(cursor + d);
                if end > cursor {
                    out.push_exact(Segment::new(it.task, k, cursor, end, it.freq));
                }
                cursor = t1;
                k += 1;
                continue;
            }
            out.push_exact(Segment::new(it.task, k + 1, t0, t0 + spill, it.freq));
            // …and the first piece finishes off the current core.
            out.push_exact(Segment::new(it.task, k, cursor, t1, it.freq));
            k += 1;
            cursor = t0 + spill;
        } else {
            out.push_exact(Segment::new(
                it.task,
                k,
                cursor,
                (cursor + d).min(t1),
                it.freq,
            ));
            cursor += d;
            if cursor >= t1 - fill_tol {
                k += 1;
                cursor = t0;
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use esched_types::time::Interval;

    fn items(ds: &[f64]) -> Vec<PackItem> {
        ds.iter()
            .enumerate()
            .map(|(i, &d)| PackItem {
                task: i,
                duration: d,
                freq: 1.0,
            })
            .collect()
    }

    fn check_no_core_overlap(s: &Schedule) {
        for c in 0..s.cores {
            let segs = s.core_segments(c);
            for w in segs.windows(2) {
                assert!(
                    w[0].interval.overlap_len(&w[1].interval) <= 1e-9,
                    "core {c} overlap: {:?} vs {:?}",
                    w[0],
                    w[1]
                );
            }
        }
    }

    fn check_no_self_overlap(s: &Schedule) {
        for t in s.task_ids() {
            let segs = s.task_segments(t);
            for w in segs.windows(2) {
                assert!(
                    w[0].interval.overlap_len(&w[1].interval) <= 1e-9,
                    "task {t} self-overlap"
                );
            }
        }
    }

    #[test]
    fn paper_vd_even_allocation_packs_five_tasks_on_four_cores() {
        // Section V.D, interval [8,10]: five tasks × 8/5 each on 4 cores.
        let mut s = Schedule::new(4);
        pack_subinterval(&items(&[1.6; 5]), 8.0, 10.0, 4, &mut s).unwrap();
        check_no_core_overlap(&s);
        check_no_self_overlap(&s);
        // Every task receives its full allocation.
        for t in 0..5 {
            let d: f64 = s.task_segments(t).iter().map(|x| x.duration()).sum();
            assert!((d - 1.6).abs() < 1e-9, "task {t}: {d}");
        }
        // All inside the subinterval.
        let iv = Interval::new(8.0, 10.0);
        for seg in s.segments() {
            assert!(iv.covers(&seg.interval));
        }
        // Exactly the tasks that wrap get two segments: with 8/5 each,
        // task 0 fits [8, 9.6]; task 1 splits (9.6→10 + 8→9.2); etc.
        assert!(s.migrations() >= 1);
    }

    #[test]
    fn exact_fill_uses_every_core_fully() {
        let mut s = Schedule::new(2);
        pack_subinterval(&items(&[2.0, 2.0]), 0.0, 2.0, 2, &mut s).unwrap();
        check_no_core_overlap(&s);
        assert!((s.busy_time(0) - 2.0).abs() < 1e-9);
        assert!((s.busy_time(1) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn rejects_item_longer_than_subinterval() {
        let mut s = Schedule::new(2);
        let err = pack_subinterval(&items(&[2.5]), 0.0, 2.0, 2, &mut s).unwrap_err();
        assert!(matches!(err, PackError::ItemTooLong { task: 0, .. }));
    }

    #[test]
    fn rejects_overcommitted_input() {
        let mut s = Schedule::new(2);
        let err = pack_subinterval(&items(&[2.0, 2.0, 1.0]), 0.0, 2.0, 2, &mut s).unwrap_err();
        assert!(matches!(err, PackError::Overcommitted { .. }));
    }

    #[test]
    fn tolerates_floating_point_noise_at_capacity() {
        let mut s = Schedule::new(2);
        let d = 2.0 + 1e-12;
        pack_subinterval(&items(&[d, d]), 0.0, 2.0, 2, &mut s).unwrap();
        check_no_core_overlap(&s);
    }

    #[test]
    fn zero_duration_items_are_skipped() {
        let mut s = Schedule::new(1);
        pack_subinterval(&items(&[0.0, 1.0, 0.0]), 0.0, 2.0, 1, &mut s).unwrap();
        assert_eq!(s.len(), 1);
        assert_eq!(s.segments()[0].task, 1);
    }

    #[test]
    fn split_pieces_never_overlap_in_time() {
        // Adversarial: items sized to force a wrap at every boundary.
        let ds = [1.5, 1.5, 1.5, 1.5, 1.5];
        let mut s = Schedule::new(4);
        pack_subinterval(&items(&ds), 0.0, 2.0, 4, &mut s).unwrap();
        check_no_core_overlap(&s);
        check_no_self_overlap(&s);
        for (t, &d) in ds.iter().enumerate() {
            let got: f64 = s.task_segments(t).iter().map(|x| x.duration()).sum();
            assert!((got - d).abs() < 1e-9);
        }
    }

    #[test]
    fn full_length_item_takes_whole_core() {
        let mut s = Schedule::new(3);
        pack_subinterval(&items(&[2.0, 1.0, 2.0]), 4.0, 6.0, 3, &mut s).unwrap();
        check_no_core_overlap(&s);
        check_no_self_overlap(&s);
        let d0: f64 = s.task_segments(0).iter().map(|x| x.duration()).sum();
        assert!((d0 - 2.0).abs() < 1e-9);
    }

    #[test]
    fn near_eps_subinterval_never_emits_nonexistent_core() {
        // Regression (found by esched-check): with Δ ≈ 1e-6 the old
        // `EPS·(1+Δ)` advance tolerance was ~10% of the subinterval, so
        // each core "finished" early and the leftover items were pushed
        // onto core `k == cores` — a nonexistent core that made the
        // simulator index out of bounds.
        let t0 = 100.0;
        let t1 = 100.0 + 1e-6;
        let ds = [9e-7, 9e-7, 1.5e-7];
        let mut s = Schedule::new(2);
        pack_subinterval(&items(&ds), t0, t1, 2, &mut s).unwrap();
        for seg in s.segments() {
            assert!(seg.core < 2, "segment on nonexistent core: {seg:?}");
        }
        check_no_core_overlap(&s);
        check_no_self_overlap(&s);
        for (t, &d) in ds.iter().enumerate() {
            let got: f64 = s.task_segments(t).iter().map(|x| x.duration()).sum();
            assert!((got - d).abs() <= 1e-12, "task {t}: got {got}, want {d}");
        }
    }

    #[test]
    fn tiny_duration_high_frequency_item_is_not_dropped() {
        // Regression (found by esched-check): a piece shorter than EPS
        // still matters when the work it carries exceeds WORK_TOL.
        let its = vec![PackItem {
            task: 0,
            duration: 5e-8,
            freq: 1e3,
        }];
        let mut s = Schedule::new(1);
        pack_subinterval(&its, 0.0, 1.0, 1, &mut s).unwrap();
        let d: f64 = s.task_segments(0).iter().map(|x| x.duration()).sum();
        assert!((d - 5e-8).abs() < 1e-15, "duration kept: {d}");
    }

    #[test]
    fn preserves_per_item_frequency() {
        let its = vec![
            PackItem {
                task: 0,
                duration: 1.0,
                freq: 0.5,
            },
            PackItem {
                task: 1,
                duration: 1.5,
                freq: 0.9,
            },
        ];
        let mut s = Schedule::new(2);
        pack_subinterval(&its, 0.0, 2.0, 2, &mut s).unwrap();
        for seg in s.segments() {
            let want = if seg.task == 0 { 0.5 } else { 0.9 };
            assert_eq!(seg.freq, want);
        }
    }
}
