//! The ideal case `S^O` (Section V.A): unlimited cores.
//!
//! With one core per task there are no collisions; each task independently
//! minimizes `E_i = C_i·(f^{α−1}·γ + p₀/f)` subject to finishing inside
//! its window (`f ≥ C_i/(D_i−R_i)`). The KKT solution is the closed form
//! of Eq. 19:
//!
//! ```text
//! f_i^O = max{ (p₀/(γ(α−1)))^{1/α},  C_i/(D_i−R_i) }
//! ```
//!
//! and the execution interval is `U_i^O = [R_i, R_i + C_i/f_i^O]` — start
//! as early as possible, run at the optimum, stop. `E^O = Σ_i E_i^O` lower-
//! bounds the *constrained* optimum whenever the core count never binds,
//! and is the reference from which Desired Execution Requirements (DERs)
//! are computed.

use esched_types::time::Interval;
use esched_types::{PolynomialPower, PowerModel, TaskSet};

/// The per-task ideal optimum.
#[derive(Debug, Clone, PartialEq)]
pub struct IdealSolution {
    /// Optimal frequency `f_i^O` per task.
    pub freq: Vec<f64>,
    /// Ideal execution interval `U_i^O = [R_i, R_i + C_i/f_i^O]` per task.
    pub exec: Vec<Interval>,
    /// Per-task optimal energy `E_i^O`.
    pub per_task_energy: Vec<f64>,
    /// Total `E^O`.
    pub energy: f64,
}

impl IdealSolution {
    /// Execution time of task `i` inside `iv` under the ideal schedule:
    /// `|U_i^O ∩ iv|`. This feeds the DER of Eq. 24.
    pub fn exec_overlap(&self, task: usize, iv: &Interval) -> f64 {
        self.exec[task].overlap_len(iv)
    }
}

/// Compute the ideal-case solution `S^O` for every task.
pub fn ideal_schedule(tasks: &TaskSet, power: &PolynomialPower) -> IdealSolution {
    let _span = esched_obs::span!(
        esched_obs::Level::Debug,
        "ideal_schedule",
        n_tasks = tasks.len()
    );
    let n = tasks.len();
    let mut freq = Vec::with_capacity(n);
    let mut exec = Vec::with_capacity(n);
    let mut per_task_energy = Vec::with_capacity(n);
    for (_, t) in tasks.iter() {
        // Clamp the window away from ~0: task validation guarantees a
        // definitely-positive window, but chained rounding can still leave
        // it near EPS, and `C/window` must stay finite (no inf/NaN).
        let f = power.optimal_frequency(t.wcec, t.window_len().max(esched_types::time::EPS));
        // `optimal_frequency` returns 0 only when p0 = 0 *and* the window is
        // unbounded; with finite windows the stretch term keeps it positive.
        debug_assert!(f > 0.0);
        let dur = t.wcec / f;
        freq.push(f);
        exec.push(Interval::new(t.release, t.release + dur));
        per_task_energy.push(power.energy_for_work(t.wcec, f));
    }
    let energy = esched_types::time::compensated_sum(per_task_energy.iter().copied());
    IdealSolution {
        freq,
        exec,
        per_task_energy,
        energy,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vd_tasks() -> TaskSet {
        TaskSet::from_triples(&[
            (0.0, 10.0, 8.0),
            (2.0, 18.0, 14.0),
            (4.0, 16.0, 8.0),
            (6.0, 14.0, 4.0),
            (8.0, 20.0, 10.0),
            (12.0, 22.0, 6.0),
        ])
    }

    #[test]
    fn vd_example_ideal_frequencies() {
        // p(f) = f³ (γ=1, p0=0): f^O = C/(D−R). The paper lists
        // 4/5, 7/8, 2/3, 1/2, 5/6, 3/5.
        let sol = ideal_schedule(&vd_tasks(), &PolynomialPower::cubic());
        let expect = [0.8, 7.0 / 8.0, 2.0 / 3.0, 0.5, 5.0 / 6.0, 0.6];
        for (i, &e) in expect.iter().enumerate() {
            assert!(
                (sol.freq[i] - e).abs() < 1e-12,
                "task {i}: {} vs {e}",
                sol.freq[i]
            );
        }
        // With p0 = 0 each ideal execution fills the whole window.
        for (i, t) in vd_tasks().iter() {
            assert!((sol.exec[i].start - t.release).abs() < 1e-12);
            assert!((sol.exec[i].end - t.deadline).abs() < 1e-12);
        }
    }

    #[test]
    fn static_power_raises_frequency_to_critical() {
        // One lazy task: C = 1, window 100. With p(f) = f² + 0.25,
        // f_crit = 0.5 ≫ 1/100 → run at 0.5 for 2 time units.
        let ts = TaskSet::from_triples(&[(0.0, 100.0, 1.0)]);
        let p = PolynomialPower::paper(2.0, 0.25);
        let sol = ideal_schedule(&ts, &p);
        assert!((sol.freq[0] - 0.5).abs() < 1e-12);
        assert!((sol.exec[0].length() - 2.0).abs() < 1e-12);
        // Energy: (0.25 + 0.25)·2 = 1.0.
        assert!((sol.energy - 1.0).abs() < 1e-12);
    }

    #[test]
    fn tight_window_forces_stretch_frequency() {
        let ts = TaskSet::from_triples(&[(0.0, 2.0, 4.0)]); // needs f = 2
        let p = PolynomialPower::paper(2.0, 0.25); // f_crit = 0.5
        let sol = ideal_schedule(&ts, &p);
        assert!((sol.freq[0] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn exec_overlap_gives_der_numerators() {
        // The paper's [8,10] DER inputs: |U^O ∩ [8,10]| = 2 for all five
        // overlapping tasks (p0 = 0 stretches execution over windows).
        let sol = ideal_schedule(&vd_tasks(), &PolynomialPower::cubic());
        let iv = Interval::new(8.0, 10.0);
        for i in 0..5 {
            assert!((sol.exec_overlap(i, &iv) - 2.0).abs() < 1e-12, "task {i}");
        }
        // τ5 = (12, 22) does not overlap [8,10] at all.
        assert_eq!(sol.exec_overlap(5, &iv), 0.0);
    }

    #[test]
    fn ideal_energy_is_sum_of_parts() {
        let sol = ideal_schedule(&vd_tasks(), &PolynomialPower::paper(3.0, 0.1));
        let sum: f64 = sol.per_task_energy.iter().sum();
        assert!((sol.energy - sum).abs() < 1e-9);
    }
}
