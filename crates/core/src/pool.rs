//! Scratch-threading façade over the shared work-stealing pool.
//!
//! The pool implementation itself now lives in [`esched_obs::pool`] —
//! below every algorithm crate — so `esched-opt`'s decomposed ADMM solver
//! can fan per-task subproblems across the same workers the allocator and
//! `esched-engine` use, without a dependency cycle. This module re-exports
//! it and layers the historical `esched-core` surface back on top: the
//! [`ScratchPool`] extension trait gives every [`Pool`] the
//! [`Scratch`]-threading `run_one` / `batch_map` the allocator pipelines
//! were written against, so existing call sites compile unchanged.

use crate::scratch::Scratch;

pub use esched_obs::pool::{Pool, PoolError};

/// [`Scratch`]-threading batch APIs for the shared [`Pool`].
///
/// Implemented for [`Pool`]; import this trait (it is re-exported from the
/// crate root) to get the historical `esched-core` signatures where every
/// job receives a per-worker [`Scratch`] arena that is reused across items
/// and rebuilt after a panic.
pub trait ScratchPool {
    /// Run one job on the calling thread (no pool) with the same panic
    /// isolation as a batch, against a fresh [`Scratch`].
    fn run_one<T>(&self, f: impl FnOnce(&mut Scratch) -> T) -> Result<T, PoolError>;

    /// Generic batch execution: apply `f` to every item, in parallel,
    /// with a per-worker [`Scratch`] arena threaded through so pipelines
    /// built from the `_with` APIs reuse buffers across items.
    ///
    /// Results are ordered by item index. A panic inside `f` becomes an
    /// `Err(PoolError)` for that item only; the worker's scratch is
    /// reset and the worker keeps draining the batch.
    fn batch_map<I, T, F>(&self, items: Vec<I>, f: F) -> Vec<Result<T, PoolError>>
    where
        I: Send,
        T: Send,
        F: Fn(&mut Scratch, I) -> T + Sync;
}

impl ScratchPool for Pool {
    fn run_one<T>(&self, f: impl FnOnce(&mut Scratch) -> T) -> Result<T, PoolError> {
        self.run_one_with(Scratch::new, f)
    }

    fn batch_map<I, T, F>(&self, items: Vec<I>, f: F) -> Vec<Result<T, PoolError>>
    where
        I: Send,
        T: Send,
        F: Fn(&mut Scratch, I) -> T + Sync,
    {
        self.batch_map_with(Scratch::new, items, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batch_map_orders_results_by_submission_index() {
        let pool = Pool::with_threads(4);
        let items: Vec<usize> = (0..64).collect();
        let out = pool.batch_map(items, |_s, i| i * 2);
        for (i, r) in out.iter().enumerate() {
            assert_eq!(*r.as_ref().unwrap(), i * 2);
        }
    }

    #[test]
    fn panicking_job_is_isolated() {
        let pool = Pool::with_threads(2);
        let out = pool.batch_map(vec![0usize, 1, 2], |_s, i| {
            if i == 1 {
                panic!("boom {i}");
            }
            i
        });
        assert_eq!(*out[0].as_ref().unwrap(), 0);
        assert_eq!(out[1].as_ref().unwrap_err().index, 1);
        assert!(out[1].as_ref().unwrap_err().message.contains("boom"));
        assert_eq!(*out[2].as_ref().unwrap(), 2);
    }

    #[test]
    fn run_one_catches_panics() {
        let pool = Pool::with_threads(1);
        assert_eq!(pool.run_one(|_s| 7).unwrap(), 7);
        let err = pool.run_one::<()>(|_s| panic!("solo")).unwrap_err();
        assert!(err.message.contains("solo"));
    }
}
