//! The std-only work-stealing thread pool.
//!
//! No third-party dependencies: per-worker `Mutex<VecDeque>` deques on
//! `std::thread::scope` scoped threads. Jobs are distributed round-robin;
//! a worker drains its own deque from the front and, when empty, steals
//! from the *back* of its neighbours' deques. Results are indexed by
//! submission order, so the output is identical regardless of worker
//! count or steal interleaving — the property the engine's determinism
//! test pins.
//!
//! The pool lives in `esched-core` (it used to be private to
//! `esched-engine`) so the allocator itself can fan heavy subinterval
//! ranges of *one* instance across workers — see
//! [`allocate`](crate::allocation::allocate) with
//! [`AllocRequest::with_pool`](crate::allocation::AllocRequest::with_pool).
//! `esched-engine`'s `Engine` is now a thin wrapper that adds the
//! request/outcome plumbing on top. Metric names keep the historical
//! `esched.engine.*` prefix — dashboards and the obs smoke tests predate
//! the move.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use crate::scratch::Scratch;
use esched_obs::{metric_counter, metric_gauge, metric_histogram};

/// A batch executor with a fixed worker count.
///
/// The pool is stateless between batches (workers and their scratch
/// arenas live only for the duration of one [`Pool::batch_map`] call), so
/// it is cheap to construct and freely shareable.
#[derive(Debug, Clone)]
pub struct Pool {
    threads: usize,
}

/// A job submitted to the pool panicked. The index is the job's position
/// in the submitted batch; the message is the panic payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PoolError {
    /// Index of the failed job within its batch.
    pub index: usize,
    /// Stringified panic payload.
    pub message: String,
}

impl std::fmt::Display for PoolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "job {} panicked: {}", self.index, self.message)
    }
}

impl std::error::Error for PoolError {}

impl Default for Pool {
    fn default() -> Self {
        Self::new()
    }
}

impl Pool {
    /// A pool sized by the `ESCHED_ENGINE_THREADS` environment variable
    /// when set (and ≥ 1), else by the machine's available parallelism.
    pub fn new() -> Self {
        let threads = std::env::var("ESCHED_ENGINE_THREADS")
            .ok()
            .and_then(|s| s.trim().parse::<usize>().ok())
            .filter(|&n| n >= 1)
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1)
            });
        Self { threads }
    }

    /// A pool with exactly `threads` workers (clamped to ≥ 1).
    pub fn with_threads(threads: usize) -> Self {
        Self {
            threads: threads.max(1),
        }
    }

    /// The worker count batches will use.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Run one job on the calling thread (no pool) with the same panic
    /// isolation as a batch, against a fresh [`Scratch`].
    pub fn run_one<T>(&self, f: impl FnOnce(&mut Scratch) -> T) -> Result<T, PoolError> {
        let slot = std::cell::Cell::new(Some(f));
        run_job(
            &mut Scratch::new(),
            &|s: &mut Scratch, ()| (slot.take().expect("run_one job invoked once"))(s),
            0,
            (),
        )
    }

    /// Generic batch execution: apply `f` to every item, in parallel,
    /// with a per-worker [`Scratch`] arena threaded through so pipelines
    /// built from the `_with` APIs reuse buffers across items.
    ///
    /// Results are ordered by item index. A panic inside `f` becomes an
    /// `Err(PoolError)` for that item only; the worker's scratch is
    /// reset and the worker keeps draining the batch.
    pub fn batch_map<I, T, F>(&self, items: Vec<I>, f: F) -> Vec<Result<T, PoolError>>
    where
        I: Send,
        T: Send,
        F: Fn(&mut Scratch, I) -> T + Sync,
    {
        let n = items.len();
        if n == 0 {
            return Vec::new();
        }
        let workers = self.threads.min(n).max(1);
        let _span = esched_obs::span!(
            esched_obs::Level::Debug,
            "engine_batch",
            jobs = n,
            workers = workers,
        );
        metric_counter!("esched.engine.batches").inc();
        metric_counter!("esched.engine.jobs").add(n as u64);
        metric_gauge!("esched.engine.workers").set(workers as f64);
        metric_gauge!("esched.engine.queue_depth").set_max(n as f64);
        let t0 = Instant::now();

        let out = if workers == 1 {
            // Serial fast path: same semantics, no pool overhead.
            let mut scratch = Scratch::new();
            items
                .into_iter()
                .enumerate()
                .map(|(i, item)| run_job(&mut scratch, &f, i, item))
                .collect()
        } else {
            self.run_pool(items, workers, &f)
        };

        metric_histogram!("esched.engine.batch_wall_ns").record_duration(t0.elapsed());
        out
    }

    fn run_pool<I, T, F>(&self, items: Vec<I>, workers: usize, f: &F) -> Vec<Result<T, PoolError>>
    where
        I: Send,
        T: Send,
        F: Fn(&mut Scratch, I) -> T + Sync,
    {
        let n = items.len();
        let deques: Vec<Mutex<VecDeque<(usize, I)>>> =
            (0..workers).map(|_| Mutex::new(VecDeque::new())).collect();
        for (i, item) in items.into_iter().enumerate() {
            deques[i % workers]
                .lock()
                .expect("fresh deque")
                .push_back((i, item));
        }
        let results: Mutex<Vec<Option<Result<T, PoolError>>>> =
            Mutex::new((0..n).map(|_| None).collect());
        let steals = AtomicU64::new(0);

        std::thread::scope(|scope| {
            for w in 0..workers {
                let deques = &deques;
                let results = &results;
                let steals = &steals;
                scope.spawn(move || {
                    let mut scratch = Scratch::new();
                    let mut local: Vec<(usize, Result<T, PoolError>)> = Vec::new();
                    let worker_start = Instant::now();
                    let mut busy_ns = 0u64;
                    loop {
                        // Own deque first (front), then steal from the
                        // back of the neighbours'. Nothing is ever
                        // re-queued, so "every deque empty" terminates.
                        let mut job = deques[w].lock().expect("worker deque").pop_front();
                        if job.is_none() {
                            for off in 1..workers {
                                let victim = (w + off) % workers;
                                job = deques[victim].lock().expect("victim deque").pop_back();
                                if job.is_some() {
                                    steals.fetch_add(1, Ordering::Relaxed);
                                    esched_obs::flight_event!("engine_steal", victim as u64);
                                    break;
                                }
                            }
                        }
                        let Some((index, item)) = job else { break };
                        let t_job = Instant::now();
                        local.push((index, run_job(&mut scratch, f, index, item)));
                        busy_ns += t_job.elapsed().as_nanos() as u64;
                    }
                    // Fraction of this worker's lifetime spent inside jobs
                    // (the rest is deque contention and steal probing).
                    // Dynamic name → cold registry path; once per worker
                    // per batch, not per job.
                    let wall_ns = worker_start.elapsed().as_nanos().max(1) as u64;
                    esched_obs::metrics::gauge(&format!("esched.engine.worker_util.w{w}"))
                        .set(busy_ns as f64 / wall_ns as f64);
                    let mut slots = results.lock().expect("results vector");
                    for (index, result) in local {
                        slots[index] = Some(result);
                    }
                });
            }
        });

        let stolen = steals.load(Ordering::Relaxed);
        metric_counter!("esched.engine.steals").add(stolen);
        metric_gauge!("esched.engine.steal_rate").set(stolen as f64 / n as f64);
        results
            .into_inner()
            .expect("pool threads joined")
            .into_iter()
            .map(|slot| slot.expect("every job index is filled exactly once"))
            .collect()
    }
}

/// Run one job with panic isolation; used by both the serial path and the
/// pool workers.
fn run_job<I, T, F>(scratch: &mut Scratch, f: &F, index: usize, item: I) -> Result<T, PoolError>
where
    F: Fn(&mut Scratch, I) -> T,
{
    let t0 = Instant::now();
    let result = catch_unwind(AssertUnwindSafe(|| f(scratch, item)));
    metric_histogram!("esched.engine.job_wall_ns").record_duration(t0.elapsed());
    match result {
        Ok(value) => Ok(value),
        Err(payload) => {
            metric_counter!("esched.engine.panics").inc();
            esched_obs::flight_event!("engine_job_panic", index as u64);
            // Post-mortem flight dump: a no-op unless ESCHED_FLIGHT_DIR
            // is set, so tests that expect panics don't spray files.
            let _ = esched_obs::recorder::dump_post_mortem("engine job panic");
            // The panic may have left half-taken buffers behind; drop
            // them rather than reason about their state.
            *scratch = Scratch::new();
            Err(PoolError {
                index,
                message: panic_message(payload),
            })
        }
    }
}

pub(crate) fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batch_map_orders_results_by_submission_index() {
        let pool = Pool::with_threads(4);
        let items: Vec<usize> = (0..64).collect();
        let out = pool.batch_map(items, |_s, i| i * 2);
        for (i, r) in out.iter().enumerate() {
            assert_eq!(*r.as_ref().unwrap(), i * 2);
        }
    }

    #[test]
    fn panicking_job_is_isolated() {
        let pool = Pool::with_threads(2);
        let out = pool.batch_map(vec![0usize, 1, 2], |_s, i| {
            if i == 1 {
                panic!("boom {i}");
            }
            i
        });
        assert_eq!(*out[0].as_ref().unwrap(), 0);
        assert_eq!(out[1].as_ref().unwrap_err().index, 1);
        assert!(out[1].as_ref().unwrap_err().message.contains("boom"));
        assert_eq!(*out[2].as_ref().unwrap(), 2);
    }

    #[test]
    fn run_one_catches_panics() {
        let pool = Pool::with_threads(1);
        assert_eq!(pool.run_one(|_s| 7).unwrap(), 7);
        let err = pool.run_one::<()>(|_s| panic!("solo")).unwrap_err();
        assert!(err.message.contains("solo"));
    }
}
