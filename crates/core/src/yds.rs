//! The YDS algorithm (Yao, Demers & Shenker) — the optimal offline
//! uniprocessor speed-scaling schedule, used by the paper as related work
//! and as the worked example of Section I.B.
//!
//! The algorithm repeatedly finds the *critical interval* — the event-point
//! pair `[t1, t2]` maximizing intensity `C(t1,t2)/(t2−t1)` — runs the tasks
//! contained in it at exactly that intensity (EDF order inside the
//! interval), then deletes the interval from the timeline: remaining tasks'
//! times greater than `t1` shift left by `t2−t1` (clamped at `t1`), and the
//! process repeats on the compressed instance.
//!
//! This implementation keeps an explicit list of *cut* intervals in
//! original coordinates so that segments scheduled in compressed time can
//! be mapped back exactly, splitting where they straddle a cut. With
//! `p(f) = f^ω` and zero static power the result is energy-optimal on one
//! core — a property the test suite cross-checks against the convex
//! program with `m = 1`.

use esched_types::time::{approx_le, EPS};
use esched_types::{PolynomialPower, Schedule, Segment, TaskId, TaskSet};

/// YDS output.
#[derive(Debug, Clone, PartialEq)]
pub struct YdsSolution {
    /// The single-core schedule in original time.
    pub schedule: Schedule,
    /// Energy under the provided power model.
    pub energy: f64,
    /// Per-task assigned speed (the intensity of its critical interval).
    pub speed: Vec<f64>,
    /// Number of critical-interval rounds.
    pub rounds: usize,
}

#[derive(Debug, Clone, Copy)]
struct WorkTask {
    id: TaskId,
    release: f64,
    deadline: f64,
    work: f64,
}

/// One removed interval, in original coordinates.
#[derive(Debug, Clone, Copy)]
struct Cut {
    start: f64,
    len: f64,
}

/// Map a compressed-time segment `[cs, ce]` to original-time pieces, given
/// the cuts (sorted by original start).
///
/// The compressed axis is the original axis with the cuts removed and the
/// remainder glued; a compressed point `c` therefore maps to
/// `c + Σ {len of cuts whose compressed position ≤ c}`. A compressed
/// *interval* may straddle cut positions, in which case it splits into one
/// original piece per gap. The per-piece offset is decided by the piece's
/// midpoint — strictly interior, so no epsilon nudging is needed and piece
/// lengths are preserved exactly.
fn map_to_original(cuts: &[Cut], cs: f64, ce: f64) -> Vec<(f64, f64)> {
    // Compressed positions of the cut points, with cumulative cut length
    // before each.
    let mut cut_positions: Vec<(f64, f64)> = Vec::with_capacity(cuts.len()); // (pos, len)
    let mut acc = 0.0;
    for c in cuts {
        cut_positions.push((c.start - acc, c.len));
        acc += c.len;
    }

    let mut bounds = Vec::with_capacity(cut_positions.len() + 2);
    bounds.push(cs);
    for &(pos, _) in &cut_positions {
        if pos > cs + EPS && pos < ce - EPS {
            bounds.push(pos);
        }
    }
    bounds.push(ce);

    bounds
        .windows(2)
        .filter(|w| w[1] - w[0] > EPS)
        .map(|w| {
            let mid = 0.5 * (w[0] + w[1]);
            let offset: f64 = cut_positions
                .iter()
                .take_while(|&&(pos, _)| pos <= mid)
                .map(|&(_, len)| len)
                .sum();
            (w[0] + offset, w[1] + offset)
        })
        .collect()
}

/// Find the maximum-intensity interval over the working tasks. Returns
/// `(t1, t2, intensity, member indices)`.
fn critical_interval(tasks: &[WorkTask]) -> (f64, f64, f64, Vec<usize>) {
    let mut pts: Vec<f64> = tasks.iter().flat_map(|t| [t.release, t.deadline]).collect();
    esched_types::time::sort_dedup_times(&mut pts);
    let mut best = (0.0, 0.0, -1.0);
    for (a, &t1) in pts.iter().enumerate() {
        for &t2 in &pts[a + 1..] {
            let len = t2 - t1;
            if len <= EPS {
                continue;
            }
            let demand: f64 = tasks
                .iter()
                .filter(|t| approx_le(t1, t.release) && approx_le(t.deadline, t2))
                .map(|t| t.work)
                .sum();
            let intensity = demand / len;
            if intensity > best.2 {
                best = (t1, t2, intensity);
            }
        }
    }
    let (t1, t2, g) = best;
    let members: Vec<usize> = tasks
        .iter()
        .enumerate()
        .filter(|(_, t)| approx_le(t1, t.release) && approx_le(t.deadline, t2))
        .map(|(k, _)| k)
        .collect();
    (t1, t2, g, members)
}

/// EDF-simulate `members` (windows inside `[t1, t2]`) at constant speed
/// `g`, returning `(task, start, end)` segments in the *compressed* time
/// axis.
fn edf_in_interval(tasks: &[WorkTask], t1: f64, t2: f64, g: f64) -> Vec<(TaskId, f64, f64)> {
    #[derive(Clone, Copy)]
    struct Job {
        id: TaskId,
        release: f64,
        deadline: f64,
        remaining: f64, // remaining duration at speed g
    }
    let mut jobs: Vec<Job> = tasks
        .iter()
        .map(|t| Job {
            id: t.id,
            release: t.release,
            deadline: t.deadline,
            remaining: t.work / g,
        })
        .collect();
    jobs.sort_by(|a, b| a.release.partial_cmp(&b.release).expect("finite"));

    let mut segs: Vec<(TaskId, f64, f64)> = Vec::new();
    let mut now = t1;
    loop {
        // Pick the earliest-deadline job that is released and unfinished.
        let pick = jobs
            .iter()
            .enumerate()
            .filter(|(_, j)| j.remaining > EPS && approx_le(j.release, now))
            .min_by(|a, b| a.1.deadline.partial_cmp(&b.1.deadline).expect("finite"))
            .map(|(k, _)| k);
        match pick {
            Some(k) => {
                // Run until the job completes or the next release preempts.
                let next_release = jobs
                    .iter()
                    .filter(|j| j.remaining > EPS && j.release > now + EPS)
                    .map(|j| j.release)
                    .fold(f64::INFINITY, f64::min);
                let end = (now + jobs[k].remaining).min(next_release).min(t2);
                if end > now + EPS {
                    segs.push((jobs[k].id, now, end));
                    jobs[k].remaining -= end - now;
                    now = end;
                } else {
                    now = end.max(now + EPS);
                }
            }
            None => {
                // Idle: jump to the next release, or stop when none left.
                let next_release = jobs
                    .iter()
                    .filter(|j| j.remaining > EPS)
                    .map(|j| j.release)
                    .fold(f64::INFINITY, f64::min);
                if !next_release.is_finite() || next_release >= t2 - EPS {
                    break;
                }
                now = next_release;
            }
        }
        if now >= t2 - EPS {
            break;
        }
    }
    debug_assert!(
        jobs.iter().all(|j| j.remaining <= 1e-6),
        "EDF left work unfinished inside a critical interval"
    );
    // Merge back-to-back pieces of the same task.
    let mut merged: Vec<(TaskId, f64, f64)> = Vec::new();
    for s in segs {
        if let Some(last) = merged.last_mut() {
            if last.0 == s.0 && (last.2 - s.1).abs() < EPS {
                last.2 = s.2;
                continue;
            }
        }
        merged.push(s);
    }
    merged
}

/// Insert a batch of original-time pieces into the cut list, keeping it
/// sorted and disjoint.
fn add_cuts(cuts: &mut Vec<Cut>, pieces: &[(f64, f64)]) {
    for &(s, e) in pieces {
        if e - s > EPS {
            cuts.push(Cut {
                start: s,
                len: e - s,
            });
        }
    }
    cuts.sort_by(|a, b| a.start.partial_cmp(&b.start).expect("finite"));
    // Merge adjacent/overlapping cuts (overlap cannot happen by
    // construction, adjacency can).
    let mut merged: Vec<Cut> = Vec::with_capacity(cuts.len());
    for &c in cuts.iter() {
        if let Some(last) = merged.last_mut() {
            if c.start <= last.start + last.len + EPS {
                let end = (c.start + c.len).max(last.start + last.len);
                last.len = end - last.start;
                continue;
            }
        }
        merged.push(c);
    }
    *cuts = merged;
}

/// Run YDS on `tasks` for a uniprocessor, computing energy under `power`.
///
/// With `p(f) = γf^α` (zero static power) the schedule is energy-optimal.
/// With `p₀ > 0` YDS remains a *legal* schedule but is no longer optimal —
/// the energy is still reported under the full model so it can serve as a
/// baseline.
///
/// # Examples
///
/// ```
/// use esched_core::yds_schedule;
/// use esched_types::{PolynomialPower, TaskSet};
///
/// // The paper's Fig. 1 instance: peak interval [4,8] at speed 1, then
/// // the rest at 0.75.
/// let tasks = TaskSet::from_triples(&[
///     (0.0, 12.0, 4.0), (2.0, 10.0, 2.0), (4.0, 8.0, 4.0),
/// ]);
/// let yds = yds_schedule(&tasks, &PolynomialPower::cubic());
/// assert_eq!(yds.rounds, 2);
/// assert!((yds.speed[2] - 1.0).abs() < 1e-9);
/// assert!((yds.energy - 7.375).abs() < 1e-9);
/// ```
pub fn yds_schedule(tasks: &TaskSet, power: &PolynomialPower) -> YdsSolution {
    let mut working: Vec<WorkTask> = tasks
        .iter()
        .map(|(id, t)| WorkTask {
            id,
            release: t.release,
            deadline: t.deadline,
            work: t.wcec,
        })
        .collect();

    let mut schedule = Schedule::new(1);
    let mut cuts: Vec<Cut> = Vec::new();
    let mut speed = vec![0.0; tasks.len()];
    let mut rounds = 0usize;

    while !working.is_empty() {
        rounds += 1;
        let (t1, t2, g, members) = critical_interval(&working);
        debug_assert!(g > 0.0, "critical interval with zero intensity");

        let member_tasks: Vec<WorkTask> = members.iter().map(|&k| working[k]).collect();
        for t in &member_tasks {
            speed[t.id] = g;
        }

        // EDF inside the compressed critical interval, then map pieces back
        // to original time.
        let segs = edf_in_interval(&member_tasks, t1, t2, g);
        for (id, cs, ce) in &segs {
            for (os, oe) in map_to_original(&cuts, *cs, *ce) {
                schedule.push(Segment::new(*id, 0, os, oe, g));
            }
        }

        // The whole critical interval becomes a cut (in original coords).
        let interval_pieces = map_to_original(&cuts, t1, t2);
        add_cuts(&mut cuts, &interval_pieces);

        // Remove members; compress remaining tasks.
        let member_set: std::collections::HashSet<usize> = members.into_iter().collect();
        let len = t2 - t1;
        working = working
            .into_iter()
            .enumerate()
            .filter(|(k, _)| !member_set.contains(k))
            .map(|(_, mut t)| {
                t.release = compress_point(t.release, t1, t2, len);
                t.deadline = compress_point(t.deadline, t1, t2, len);
                t
            })
            .collect();
    }

    schedule.coalesce();
    let energy = schedule.energy(power);
    YdsSolution {
        schedule,
        energy,
        speed,
        rounds,
    }
}

/// Shift a time point left past a removed interval `[t1, t2]`.
fn compress_point(t: f64, t1: f64, t2: f64, len: f64) -> f64 {
    if t >= t2 - EPS {
        t - len
    } else if t > t1 {
        t1
    } else {
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use esched_opt::SolveOptions;
    use esched_types::validate_schedule;

    fn intro() -> TaskSet {
        TaskSet::from_triples(&[(0.0, 12.0, 4.0), (2.0, 10.0, 2.0), (4.0, 8.0, 4.0)])
    }

    #[test]
    fn paper_intro_example_speeds() {
        // Round 1: [4,8] at speed 1 (τ3). Round 2: [0,8] compressed at
        // speed 0.75 (τ1, τ2).
        let sol = yds_schedule(&intro(), &PolynomialPower::cubic());
        assert_eq!(sol.rounds, 2);
        assert!((sol.speed[2] - 1.0).abs() < 1e-9);
        assert!((sol.speed[0] - 0.75).abs() < 1e-9);
        assert!((sol.speed[1] - 0.75).abs() < 1e-9);
    }

    #[test]
    fn paper_intro_example_schedule_fig2a() {
        // Fig. 2(a): τ1 [0,2] & [8.667,12] (speed .75), τ2 [2,4] &
        // [8,8.667], τ3 [4,8] at speed 1.
        let sol = yds_schedule(&intro(), &PolynomialPower::cubic());
        validate_schedule(&sol.schedule, &intro()).assert_legal();
        let t2_segs = sol.schedule.task_segments(1);
        assert_eq!(t2_segs.len(), 2);
        assert!((t2_segs[0].interval.start - 2.0).abs() < 1e-9);
        assert!((t2_segs[0].interval.end - 4.0).abs() < 1e-9);
        assert!((t2_segs[1].interval.start - 8.0).abs() < 1e-9);
        assert!((t2_segs[1].interval.end - (8.0 + 2.0 / 3.0)).abs() < 1e-6);
        let t3_segs = sol.schedule.task_segments(2);
        assert_eq!(t3_segs.len(), 1);
        assert!((t3_segs[0].interval.start - 4.0).abs() < 1e-9);
        assert!((t3_segs[0].interval.end - 8.0).abs() < 1e-9);
    }

    #[test]
    fn yds_matches_convex_optimum_on_uniprocessor() {
        // With p(f) = f^α and p0 = 0, YDS is optimal; the convex program
        // with m = 1 must agree.
        for (alpha, tasks) in [
            (3.0, intro()),
            (
                2.0,
                TaskSet::from_triples(&[(0.0, 5.0, 2.0), (1.0, 4.0, 1.5), (3.0, 9.0, 2.5)]),
            ),
        ] {
            let p = PolynomialPower::paper(alpha, 0.0);
            let yds = yds_schedule(&tasks, &p);
            let opt = crate::optimal::optimal_energy(&tasks, 1, &p, &SolveOptions::precise());
            assert!(
                (yds.energy - opt.energy).abs() < 1e-4 * (1.0 + opt.energy),
                "alpha={alpha}: yds {} vs opt {}",
                yds.energy,
                opt.energy
            );
        }
    }

    #[test]
    fn single_task_runs_at_its_intensity() {
        let ts = TaskSet::from_triples(&[(2.0, 10.0, 4.0)]);
        let sol = yds_schedule(&ts, &PolynomialPower::cubic());
        assert_eq!(sol.rounds, 1);
        assert!((sol.speed[0] - 0.5).abs() < 1e-12);
        validate_schedule(&sol.schedule, &ts).assert_legal();
    }

    #[test]
    fn disjoint_tasks_each_get_their_own_interval() {
        let ts = TaskSet::from_triples(&[(0.0, 2.0, 1.0), (4.0, 8.0, 1.0)]);
        let sol = yds_schedule(&ts, &PolynomialPower::cubic());
        validate_schedule(&sol.schedule, &ts).assert_legal();
        assert!((sol.speed[0] - 0.5).abs() < 1e-9);
        assert!((sol.speed[1] - 0.25).abs() < 1e-9);
    }

    #[test]
    fn nested_critical_intervals_resolve() {
        // An intense inner task nested in a lax outer one.
        let ts = TaskSet::from_triples(&[(0.0, 10.0, 2.0), (4.0, 6.0, 2.0)]);
        let sol = yds_schedule(&ts, &PolynomialPower::cubic());
        validate_schedule(&sol.schedule, &ts).assert_legal();
        assert!((sol.speed[1] - 1.0).abs() < 1e-9);
        // Outer task: 2 work over the remaining 8 time units.
        assert!((sol.speed[0] - 0.25).abs() < 1e-9);
    }

    #[test]
    fn identical_tasks_share_the_interval() {
        let ts = TaskSet::from_triples(&[(0.0, 4.0, 2.0), (0.0, 4.0, 2.0)]);
        let sol = yds_schedule(&ts, &PolynomialPower::cubic());
        validate_schedule(&sol.schedule, &ts).assert_legal();
        assert!((sol.speed[0] - 1.0).abs() < 1e-9);
        assert!((sol.speed[1] - 1.0).abs() < 1e-9);
    }
}
