//! Normalized Energy Consumption (NEC) evaluation — the metric of every
//! figure and table in Section VI.
//!
//! For a task set and platform this runs the whole battery:
//! the ideal case `S^O`, the evenly allocating method (`S^I1`, `S^F1`),
//! the DER-based method (`S^I2`, `S^F2`), and the convex-programming
//! optimum `E^OPT`, then reports each energy divided by `E^OPT`:
//!
//! * `NEC of Idl = E^O / E^OPT` (can fall below 1 — the ideal case ignores
//!   the core limit — and can exceed 1 when static power makes stretching
//!   suboptimal… it is a *reference*, not a competitor),
//! * `NEC of I1, F1, I2, F2 ≥ 1` up to solver tolerance.

use crate::der::der_schedule;
use crate::even::even_schedule;
use crate::ideal::ideal_schedule;
use crate::optimal::optimal_energy;
use esched_opt::{SolveOptions, SolverTelemetry};
use esched_types::{PolynomialPower, Schedule, TaskSet};

/// The five normalized energies of one evaluation, plus the normalizer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NecPoint {
    /// `E^O / E^OPT` — "NEC of Idl".
    pub ideal: f64,
    /// `E^{I1} / E^OPT` — evenly allocating, intermediate.
    pub i1: f64,
    /// `E^{F1} / E^OPT` — evenly allocating, final.
    pub f1: f64,
    /// `E^{I2} / E^OPT` — DER-based, intermediate.
    pub i2: f64,
    /// `E^{F2} / E^OPT` — DER-based, final.
    pub f2: f64,
    /// The normalizer `E^OPT` itself.
    pub opt_energy: f64,
}

impl NecPoint {
    /// The five NEC values in presentation order (Idl, I1, F1, I2, F2).
    pub fn as_array(&self) -> [f64; 5] {
        [self.ideal, self.i1, self.f1, self.i2, self.f2]
    }
}

/// One NEC evaluation plus the observability by-products: the convex
/// solver's telemetry and the materialized `S^F2` schedule (so callers can
/// simulate it and record a clean-sim verdict without re-running DER).
#[derive(Debug, Clone, PartialEq)]
pub struct NecEvaluation {
    /// The five normalized energies.
    pub nec: NecPoint,
    /// Telemetry of the `E^OPT` solve that produced the normalizer.
    pub opt_telemetry: SolverTelemetry,
    /// The DER-based final schedule `S^F2`.
    pub f2_schedule: Schedule,
}

/// Run every scheduler on `tasks` over `cores` cores under `power` and
/// normalize by the convex optimum.
pub fn evaluate_nec(
    tasks: &TaskSet,
    cores: usize,
    power: &PolynomialPower,
    opts: &SolveOptions,
) -> NecPoint {
    evaluate_nec_full(tasks, cores, power, opts).nec
}

/// [`evaluate_nec`], additionally returning solver telemetry and the `S^F2`
/// schedule for run-report and simulation cross-checks.
pub fn evaluate_nec_full(
    tasks: &TaskSet,
    cores: usize,
    power: &PolynomialPower,
    opts: &SolveOptions,
) -> NecEvaluation {
    let ideal = ideal_schedule(tasks, power);
    let even = even_schedule(tasks, cores, power);
    let der = der_schedule(tasks, cores, power);
    let opt = optimal_energy(tasks, cores, power, opts);
    let e = opt.energy;
    NecEvaluation {
        nec: NecPoint {
            ideal: ideal.energy / e,
            i1: even.intermediate_energy / e,
            f1: even.final_energy / e,
            i2: der.intermediate_energy / e,
            f2: der.final_energy / e,
            opt_energy: e,
        },
        opt_telemetry: opt.telemetry,
        f2_schedule: der.schedule,
    }
}

/// Mean of a set of NEC points, component-wise (the per-setting average of
/// 100 trials reported in the paper's figures).
pub fn mean_nec(points: &[NecPoint]) -> NecPoint {
    assert!(!points.is_empty());
    let n = points.len() as f64;
    let mut acc = [0.0; 5];
    let mut opt = 0.0;
    for p in points {
        let a = p.as_array();
        for k in 0..5 {
            acc[k] += a[k];
        }
        opt += p.opt_energy;
    }
    NecPoint {
        ideal: acc[0] / n,
        i1: acc[1] / n,
        f1: acc[2] / n,
        i2: acc[3] / n,
        f2: acc[4] / n,
        opt_energy: opt / n,
    }
}

/// Component-wise sample standard deviation of a set of NEC points
/// (Bessel-corrected; zero for fewer than two points). `opt_energy`
/// carries the std of the normalizer itself.
pub fn std_nec(points: &[NecPoint]) -> NecPoint {
    assert!(!points.is_empty());
    if points.len() < 2 {
        return NecPoint {
            ideal: 0.0,
            i1: 0.0,
            f1: 0.0,
            i2: 0.0,
            f2: 0.0,
            opt_energy: 0.0,
        };
    }
    let m = mean_nec(points);
    let n = (points.len() - 1) as f64;
    let mut acc = [0.0; 5];
    let mut opt = 0.0;
    for p in points {
        let a = p.as_array();
        let b = m.as_array();
        for k in 0..5 {
            acc[k] += (a[k] - b[k]).powi(2);
        }
        opt += (p.opt_energy - m.opt_energy).powi(2);
    }
    NecPoint {
        ideal: (acc[0] / n).sqrt(),
        i1: (acc[1] / n).sqrt(),
        f1: (acc[2] / n).sqrt(),
        i2: (acc[3] / n).sqrt(),
        f2: (acc[4] / n).sqrt(),
        opt_energy: (opt / n).sqrt(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vd_tasks() -> TaskSet {
        TaskSet::from_triples(&[
            (0.0, 10.0, 8.0),
            (2.0, 18.0, 14.0),
            (4.0, 16.0, 8.0),
            (6.0, 14.0, 4.0),
            (8.0, 20.0, 10.0),
            (12.0, 22.0, 6.0),
        ])
    }

    #[test]
    fn heuristic_necs_are_at_least_one() {
        let p = PolynomialPower::cubic();
        let nec = evaluate_nec(&vd_tasks(), 4, &p, &SolveOptions::default());
        for (label, v) in [
            ("i1", nec.i1),
            ("f1", nec.f1),
            ("i2", nec.i2),
            ("f2", nec.f2),
        ] {
            assert!(v >= 1.0 - 1e-4, "{label} = {v} below 1");
        }
        // Finals improve on intermediates.
        assert!(nec.f1 <= nec.i1 + 1e-9);
        assert!(nec.f2 <= nec.i2 + 1e-9);
    }

    #[test]
    fn ideal_lower_bounds_opt_when_static_power_is_zero() {
        let p = PolynomialPower::cubic();
        let nec = evaluate_nec(&vd_tasks(), 4, &p, &SolveOptions::default());
        assert!(nec.ideal <= 1.0 + 1e-6, "ideal NEC = {}", nec.ideal);
    }

    #[test]
    fn vd_example_f2_beats_f1() {
        let p = PolynomialPower::cubic();
        let nec = evaluate_nec(&vd_tasks(), 4, &p, &SolveOptions::default());
        assert!(nec.f2 < nec.f1, "f2 {} vs f1 {}", nec.f2, nec.f1);
    }

    #[test]
    fn std_nec_of_identical_points_is_zero() {
        let p = NecPoint {
            ideal: 1.0,
            i1: 1.5,
            f1: 1.2,
            i2: 1.1,
            f2: 1.05,
            opt_energy: 7.0,
        };
        let s = std_nec(&[p, p, p]);
        for v in s.as_array() {
            assert_eq!(v, 0.0);
        }
        assert_eq!(s.opt_energy, 0.0);
        // Single point: defined as zero.
        let s1 = std_nec(&[p]);
        assert_eq!(s1.f2, 0.0);
    }

    #[test]
    fn std_nec_matches_hand_computation() {
        let mut a = NecPoint {
            ideal: 1.0,
            i1: 1.0,
            f1: 1.0,
            i2: 1.0,
            f2: 1.0,
            opt_energy: 10.0,
        };
        let mut b = a;
        a.f2 = 1.0;
        b.f2 = 3.0;
        // Sample std of {1, 3} = √2.
        let s = std_nec(&[a, b]);
        assert!((s.f2 - std::f64::consts::SQRT_2).abs() < 1e-12);
    }

    #[test]
    fn mean_nec_averages_componentwise() {
        let a = NecPoint {
            ideal: 1.0,
            i1: 2.0,
            f1: 1.5,
            i2: 1.2,
            f2: 1.1,
            opt_energy: 10.0,
        };
        let b = NecPoint {
            ideal: 0.8,
            i1: 4.0,
            f1: 2.5,
            i2: 1.4,
            f2: 1.3,
            opt_energy: 20.0,
        };
        let m = mean_nec(&[a, b]);
        assert!((m.ideal - 0.9).abs() < 1e-12);
        assert!((m.i1 - 3.0).abs() < 1e-12);
        assert!((m.f1 - 2.0).abs() < 1e-12);
        assert!((m.i2 - 1.3).abs() < 1e-12);
        assert!((m.f2 - 1.2).abs() < 1e-12);
        assert!((m.opt_energy - 15.0).abs() < 1e-12);
    }
}
