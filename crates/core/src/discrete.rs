//! Practical (discrete-frequency) mode — Section VI.C.
//!
//! Real cores run at a finite set of operating points. A continuous
//! schedule is executed on such a processor by *quantizing* every
//! segment's frequency to an available level at least as fast; the work of
//! the segment then completes early, so the schedule stays legal — unless
//! the required frequency exceeds the top level, in which case the task
//! cannot meet its deadline and a **deadline miss** is recorded (the
//! segment is accounted at the top level, the miss reported).
//!
//! Two quantization policies are provided:
//!
//! * [`QuantizePolicy::NextUp`] — the next level ≥ the requested frequency
//!   (what a naive governor does, and what the paper's evaluation implies);
//! * [`QuantizePolicy::BestEfficiency`] — among feasible levels
//!   (`f_k ≥` requested) pick the one minimizing energy-per-work `p_k/f_k`;
//!   on tables like the Intel XScale, where the lowest level is *less*
//!   efficient than the second, this strictly improves energy.
//!
//! A third option, [`two_level_split`], emulates any intermediate
//! frequency exactly by time-sharing the two bracketing levels — the
//! classic discrete-DVFS trick (see its caveat), provided as an extension
//! beyond the paper's evaluation, with [`best_discrete_split`] as the
//! truly optimal per-task policy.

use esched_types::time::{approx_eq, approx_le};
use esched_types::{DiscretePower, FreqLevel, Schedule, TaskId};

/// How to map a requested continuous frequency to an operating point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QuantizePolicy {
    /// Smallest level ≥ requested.
    NextUp,
    /// Among levels ≥ requested, the one with minimal `p/f`.
    BestEfficiency,
}

/// Result of executing a continuous schedule on a discrete processor.
#[derive(Debug, Clone, PartialEq)]
pub struct DiscreteOutcome {
    /// Total energy with quantized levels.
    pub energy: f64,
    /// Tasks that missed their deadline (required > max level), sorted.
    pub misses: Vec<TaskId>,
    /// True when no task missed.
    pub feasible: bool,
}

/// Pick a level for `required` under `policy`.
///
/// Feasibility ("is there a level ≥ `required`?") uses the shared
/// [`approx_le`] comparison — the same one `quantize_up` uses — so every
/// quantization path agrees about borderline frequencies. A bespoke
/// `1e-12`-relative cutoff here once made `BestEfficiency` declare a miss
/// on frequencies like `top·(1 + 1e-9)` that `NextUp` accepted.
fn pick_level(table: &DiscretePower, required: f64, policy: QuantizePolicy) -> Option<FreqLevel> {
    match policy {
        QuantizePolicy::NextUp => table.quantize_up(required),
        QuantizePolicy::BestEfficiency => {
            let feasible: Vec<FreqLevel> = table
                .levels()
                .iter()
                .filter(|l| approx_le(required, l.freq))
                .copied()
                .collect();
            feasible.into_iter().min_by(|a, b| {
                (a.power / a.freq)
                    .partial_cmp(&(b.power / b.freq))
                    .expect("finite table")
            })
        }
    }
}

/// Execute `schedule` on the discrete processor `table`.
///
/// Every segment's frequency is quantized under `policy`; the segment's
/// *work* is preserved (it finishes early at the faster level). Segments
/// whose frequency exceeds the top level run at the top level and mark
/// their task as missed.
pub fn quantize_schedule(
    schedule: &Schedule,
    table: &DiscretePower,
    policy: QuantizePolicy,
) -> DiscreteOutcome {
    let _span = esched_obs::span!(
        esched_obs::Level::Debug,
        "quantize_schedule",
        n_segments = schedule.len(),
        n_levels = table.levels().len(),
    );
    let mut energy = 0.0;
    let mut missed: Vec<TaskId> = Vec::new();
    for seg in schedule.segments() {
        let work = seg.work();
        match pick_level(table, seg.freq, policy) {
            Some(level) => {
                energy += level.power * work / level.freq;
            }
            None => {
                let top = table.levels()[table.levels().len() - 1];
                energy += top.power * work / top.freq;
                missed.push(seg.task);
            }
        }
    }
    missed.sort_unstable();
    missed.dedup();
    DiscreteOutcome {
        energy,
        feasible: missed.is_empty(),
        misses: missed,
    }
}

/// Result of the two-level emulation for one task.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TwoLevelSplit {
    /// The lower operating point.
    pub low: FreqLevel,
    /// The higher operating point (equal to `low` when the requested
    /// frequency matches a level exactly).
    pub high: FreqLevel,
    /// Time spent at `low`.
    pub t_low: f64,
    /// Time spent at `high`.
    pub t_high: f64,
    /// Energy of the split.
    pub energy: f64,
}

/// *Two-level emulation* of a continuous frequency: when a task wants
/// frequency `f` strictly between two adjacent operating points, run part
/// of its work at the level below and part at the level above so that
/// exactly `avail` time is used:
///
/// ```text
/// t_lo·f_lo + t_hi·f_hi = work,   t_lo + t_hi = avail
/// ```
///
/// **Caveat** (and a finding this workspace surfaces): with zero-power
/// sleep this mix is *not* always better than a single faster level. On
/// tables with an interior energy-per-work minimum (the XScale's is
/// 400 MHz), requested frequencies *below* the sweet spot are served
/// cheapest by running at the sweet spot and sleeping — mixing in an
/// inefficient low level only helps when the platform cannot sleep.
/// [`best_discrete_split`] takes the minimum over both strategies.
/// Returns `None` when even the top level cannot deliver the work in
/// `avail` time (a deadline miss).
pub fn two_level_split(table: &DiscretePower, work: f64, avail: f64) -> Option<TwoLevelSplit> {
    assert!(work > 0.0 && avail > 0.0);
    let f_req = work / avail;
    let levels = table.levels();
    let top = levels[levels.len() - 1];
    // Same tolerant comparison as `quantize_up`: the miss verdict must not
    // depend on which quantization path the caller took.
    if !approx_le(f_req, top.freq) {
        return None;
    }
    // Requested at or below the bottom level: the bottom level alone,
    // finishing early (running slower than the bottom level is not
    // possible).
    let bottom = levels[0];
    if f_req <= bottom.freq {
        return Some(TwoLevelSplit {
            low: bottom,
            high: bottom,
            t_low: work / bottom.freq,
            t_high: 0.0,
            energy: bottom.power * work / bottom.freq,
        });
    }
    // Find the bracketing pair.
    let hi_idx = levels
        .iter()
        .position(|l| approx_le(f_req, l.freq))
        .expect("f_req <= top checked above");
    let high = levels[hi_idx];
    if approx_eq(f_req, high.freq) {
        return Some(TwoLevelSplit {
            low: high,
            high,
            t_low: work / high.freq,
            t_high: 0.0,
            energy: high.power * work / high.freq,
        });
    }
    let low = levels[hi_idx - 1];
    // Solve the 2x2 system.
    let t_high = (work - low.freq * avail) / (high.freq - low.freq);
    let t_low = avail - t_high;
    debug_assert!(t_high >= -1e-9 && t_low >= -1e-9);
    let t_high = t_high.max(0.0);
    let t_low = t_low.max(0.0);
    Some(TwoLevelSplit {
        low,
        high,
        t_low,
        t_high,
        energy: low.power * t_low + high.power * t_high,
    })
}

/// Materialize the quantized execution as a concrete [`Schedule`]:
/// every segment keeps its start and core but runs at the quantized level
/// and *shrinks* to the duration that completes the same work
/// (`work / f_level ≤` original duration since `f_level ≥ f`). The result
/// therefore stays collision-free and window-contained whenever the input
/// was — it can be validated and simulated like any other schedule.
/// Segments whose frequency exceeds the top level run at the top level
/// for their full original duration (delivering less work — the validator
/// and simulator then report the miss).
pub fn requantize_schedule(
    schedule: &Schedule,
    table: &DiscretePower,
    policy: QuantizePolicy,
) -> Schedule {
    let mut out = Schedule::new(schedule.cores);
    let top = table.levels()[table.levels().len() - 1];
    for seg in schedule.segments() {
        let work = seg.work();
        match pick_level(table, seg.freq, policy) {
            Some(level) => {
                // `pick_level` may tolerantly accept a level a hair *below*
                // the segment frequency (approx_le); clamp to the original
                // slot so the rounding never stretches the segment into its
                // neighbor on the same core. The work deficit is within the
                // validator's tolerance by the same approx_le bound.
                let dur = (work / level.freq).min(seg.duration());
                out.push(esched_types::Segment::new(
                    seg.task,
                    seg.core,
                    seg.interval.start,
                    seg.interval.start + dur,
                    level.freq,
                ));
            }
            None => {
                out.push(esched_types::Segment::new(
                    seg.task,
                    seg.core,
                    seg.interval.start,
                    seg.interval.end,
                    top.freq,
                ));
            }
        }
    }
    out
}

/// The energy-optimal discrete execution of `(work, avail)` on a
/// sleep-capable processor: the cheaper of (a) the best *single* feasible
/// level (run, then sleep) and (b) the two-level mix of
/// [`two_level_split`]. `None` on a miss.
pub fn best_discrete_split(table: &DiscretePower, work: f64, avail: f64) -> Option<TwoLevelSplit> {
    let f_req = work / avail;
    let mix = two_level_split(table, work, avail)?;
    // Best single level among the feasible ones (same tolerant comparison
    // as `quantize_up` and `two_level_split`).
    let single = table
        .levels()
        .iter()
        .filter(|l| approx_le(f_req, l.freq))
        .map(|&l| TwoLevelSplit {
            low: l,
            high: l,
            t_low: work / l.freq,
            t_high: 0.0,
            energy: l.power * work / l.freq,
        })
        .min_by(|a, b| a.energy.partial_cmp(&b.energy).expect("finite"));
    match single {
        Some(s) if s.energy < mix.energy => Some(s),
        _ => Some(mix),
    }
}

/// Execute a final [`esched_types::FrequencyAssignment`] on a discrete
/// processor using the two-level emulation per task: each task `i` with
/// requirement `works[i]` and available time `avail[i]` is split across
/// the two levels bracketing `works[i]/avail[i]`.
///
/// Returns total energy and the tasks whose requested frequency exceeds
/// the top level (misses, accounted at the top level).
pub fn two_level_assignment(
    assignment: &esched_types::FrequencyAssignment,
    works: &[f64],
    table: &DiscretePower,
) -> DiscreteOutcome {
    assert_eq!(works.len(), assignment.freq.len());
    let mut energy = 0.0;
    let mut misses = Vec::new();
    for (i, (&c, &f)) in works.iter().zip(&assignment.freq).enumerate() {
        // The task's *effective* available time is C/f (its planned
        // duration); splitting within that window preserves the schedule's
        // slot structure because the split uses exactly the same total
        // time.
        let avail = c / f;
        match two_level_split(table, c, avail) {
            Some(split) => energy += split.energy,
            None => {
                let top = table.levels()[table.levels().len() - 1];
                energy += top.power * c / top.freq;
                misses.push(i);
            }
        }
    }
    misses.sort_unstable();
    misses.dedup();
    DiscreteOutcome {
        energy,
        feasible: misses.is_empty(),
        misses,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use esched_types::{Schedule, Segment};

    fn xscale() -> DiscretePower {
        DiscretePower::from_pairs(&[
            (150.0, 80.0),
            (400.0, 170.0),
            (600.0, 400.0),
            (800.0, 900.0),
            (1000.0, 1600.0),
        ])
    }

    #[test]
    fn next_up_quantization_energy() {
        // One segment: 10 s at 300 MHz → 3000 M-cycles, quantizes to
        // 400 MHz: energy = 170 mW · 3000/400 s = 1275.
        let mut s = Schedule::new(1);
        s.push(Segment::new(0, 0, 0.0, 10.0, 300.0));
        let out = quantize_schedule(&s, &xscale(), QuantizePolicy::NextUp);
        assert!(out.feasible);
        assert!((out.energy - 170.0 * 3000.0 / 400.0).abs() < 1e-9);
    }

    #[test]
    fn best_efficiency_picks_the_sweet_spot() {
        // Requested 100 MHz: NextUp takes 150 MHz (p/f ≈ 0.533);
        // BestEfficiency takes 400 MHz (p/f = 0.425).
        let mut s = Schedule::new(1);
        s.push(Segment::new(0, 0, 0.0, 10.0, 100.0));
        let work = 1000.0;
        let nu = quantize_schedule(&s, &xscale(), QuantizePolicy::NextUp);
        let be = quantize_schedule(&s, &xscale(), QuantizePolicy::BestEfficiency);
        assert!((nu.energy - 80.0 * work / 150.0).abs() < 1e-9);
        assert!((be.energy - 170.0 * work / 400.0).abs() < 1e-9);
        assert!(be.energy < nu.energy);
    }

    #[test]
    fn over_the_top_frequency_is_a_miss() {
        let mut s = Schedule::new(1);
        s.push(Segment::new(7, 0, 0.0, 1.0, 1200.0));
        let out = quantize_schedule(&s, &xscale(), QuantizePolicy::NextUp);
        assert!(!out.feasible);
        assert_eq!(out.misses, vec![7]);
        // Accounted at the top level.
        assert!((out.energy - 1600.0 * 1200.0 / 1000.0).abs() < 1e-9);
    }

    #[test]
    fn borderline_top_frequency_agrees_across_all_paths() {
        // A frequency one relative ulp-noise above the top level
        // (top·(1 + 1e-9)) is a rounding artifact, not a real miss: every
        // quantization path must accept it. One clearly above tolerance
        // (top·(1 + 1e-3)) must be a miss — again under every path. A
        // bespoke cutoff in any single path (the old BestEfficiency
        // 1e-12 filter) makes `quantize_schedule` and `two_level_split`
        // disagree about feasibility of the same schedule.
        let table = xscale();
        let delta = 1.0;
        for (factor, ok) in [(1.0 + 1e-9, true), (1.0 + 1e-3, false)] {
            let f = 1000.0 * factor;
            let mut s = Schedule::new(1);
            s.push(Segment::new(0, 0, 0.0, delta, f));
            let nu = quantize_schedule(&s, &table, QuantizePolicy::NextUp);
            let be = quantize_schedule(&s, &table, QuantizePolicy::BestEfficiency);
            let split = two_level_split(&table, f * delta, delta);
            let best = best_discrete_split(&table, f * delta, delta);
            assert_eq!(nu.feasible, ok, "NextUp at top·{factor}");
            assert_eq!(be.feasible, ok, "BestEfficiency at top·{factor}");
            assert_eq!(split.is_some(), ok, "two_level_split at top·{factor}");
            assert_eq!(best.is_some(), ok, "best_discrete_split at top·{factor}");
        }
    }

    #[test]
    fn misses_deduplicate_per_task() {
        let mut s = Schedule::new(2);
        s.push(Segment::new(3, 0, 0.0, 1.0, 1200.0));
        s.push(Segment::new(3, 1, 2.0, 3.0, 1100.0));
        s.push(Segment::new(1, 0, 4.0, 5.0, 500.0));
        let out = quantize_schedule(&s, &xscale(), QuantizePolicy::NextUp);
        assert_eq!(out.misses, vec![3]);
    }

    #[test]
    fn exact_level_frequency_maps_to_itself() {
        let mut s = Schedule::new(1);
        s.push(Segment::new(0, 0, 0.0, 2.0, 400.0));
        let out = quantize_schedule(&s, &xscale(), QuantizePolicy::NextUp);
        assert!((out.energy - 170.0 * 800.0 / 400.0).abs() < 1e-9);
    }

    #[test]
    fn requantized_schedule_is_shorter_and_matches_quantize_energy() {
        use crate::der::der_schedule;
        use esched_types::{validate_schedule, TaskSet};
        // XScale-scaled V.D instance.
        let tasks = TaskSet::from_triples(&[
            (0.0, 10.0, 8.0 * 300.0),
            (2.0, 18.0, 14.0 * 300.0),
            (4.0, 16.0, 8.0 * 300.0),
            (6.0, 14.0, 4.0 * 300.0),
            (8.0, 20.0, 10.0 * 300.0),
            (12.0, 22.0, 6.0 * 300.0),
        ]);
        let power = esched_types::PolynomialPower::new(3.855e-6, 2.867, 63.58).unwrap();
        let table = xscale();
        let cont = der_schedule(&tasks, 4, &power);
        validate_schedule(&cont.schedule, &tasks).assert_legal();
        let disc = requantize_schedule(&cont.schedule, &table, QuantizePolicy::NextUp);
        // Still legal: faster segments only shrink.
        validate_schedule(&disc, &tasks).assert_legal();
        // Its energy under the *table* equals the analytic quantization.
        let analytic = quantize_schedule(&cont.schedule, &table, QuantizePolicy::NextUp);
        let materialized = disc.energy(&table);
        assert!(
            (materialized - analytic.energy).abs() < 1e-6 * (1.0 + analytic.energy),
            "{materialized} vs {}",
            analytic.energy
        );
    }

    #[test]
    fn two_level_split_solves_the_system() {
        // Request 500 MHz for 1000 Mcycles in 2 s: bracket (400, 600).
        // t_hi = (1000 − 400·2)/(600 − 400) = 1, t_lo = 1.
        let split = two_level_split(&xscale(), 1000.0, 2.0).unwrap();
        assert_eq!(split.low.freq, 400.0);
        assert_eq!(split.high.freq, 600.0);
        assert!((split.t_low - 1.0).abs() < 1e-9);
        assert!((split.t_high - 1.0).abs() < 1e-9);
        assert!((split.energy - (170.0 + 400.0)).abs() < 1e-9);
        // Work is preserved.
        let w = split.low.freq * split.t_low + split.high.freq * split.t_high;
        assert!((w - 1000.0).abs() < 1e-9);
    }

    #[test]
    fn two_level_beats_next_up_strictly_between_levels() {
        // 500 MHz request: NextUp runs at 600 (energy 400·C/600);
        // two-level uses the (400, 600) mix over the full window.
        let table = xscale();
        let (work, avail) = (1000.0, 2.0);
        let split = two_level_split(&table, work, avail).unwrap();
        let next_up = table.quantize_up(work / avail).unwrap();
        let nu_energy = next_up.power * work / next_up.freq;
        assert!(
            split.energy < nu_energy,
            "two-level {} vs next-up {}",
            split.energy,
            nu_energy
        );
    }

    #[test]
    fn two_level_exact_level_uses_one_level() {
        let split = two_level_split(&xscale(), 800.0, 2.0).unwrap(); // 400 MHz
        assert_eq!(split.low.freq, 400.0);
        assert_eq!(split.t_high, 0.0);
        assert!((split.energy - 170.0 * 2.0).abs() < 1e-9);
    }

    #[test]
    fn two_level_below_bottom_finishes_early() {
        // Request 100 MHz: bottom level 150 runs 100·avail work in less
        // time.
        let split = two_level_split(&xscale(), 200.0, 2.0).unwrap();
        assert_eq!(split.low.freq, 150.0);
        assert_eq!(split.high.freq, 150.0);
        assert!((split.t_low - 200.0 / 150.0).abs() < 1e-9);
    }

    #[test]
    fn two_level_over_top_is_none() {
        assert!(two_level_split(&xscale(), 3000.0, 2.0).is_none());
    }

    #[test]
    fn best_discrete_split_prefers_sweet_spot_below_it() {
        // Request 200 MHz: the 400 MHz level alone (0.425 mJ/Mc) beats the
        // (150, 400) mix.
        let table = xscale();
        let best = best_discrete_split(&table, 400.0, 2.0).unwrap();
        assert_eq!(best.low.freq, 400.0);
        assert_eq!(best.t_high, 0.0);
        assert!((best.energy - 170.0 * 400.0 / 400.0).abs() < 1e-9);
        // And it is no worse than the raw mix.
        let mix = two_level_split(&table, 400.0, 2.0).unwrap();
        assert!(best.energy <= mix.energy);
    }

    #[test]
    fn best_discrete_split_prefers_mix_above_sweet_spot() {
        // Request 500 MHz: the (400, 600) mix (0.57 mJ/Mc) beats 600 alone
        // (0.667 mJ/Mc).
        let best = best_discrete_split(&xscale(), 1000.0, 2.0).unwrap();
        assert_eq!(best.low.freq, 400.0);
        assert_eq!(best.high.freq, 600.0);
        assert!(best.t_high > 0.0);
    }

    #[test]
    fn best_discrete_never_loses_to_next_up() {
        let table = xscale();
        for f_req in [100.0, 200.0, 350.0, 450.0, 550.0, 700.0, 900.0, 1000.0] {
            let work = f_req * 3.0; // avail = 3
            let best = best_discrete_split(&table, work, 3.0).unwrap();
            let nu = table.quantize_up(f_req).unwrap();
            let nu_energy = nu.power * work / nu.freq;
            assert!(
                best.energy <= nu_energy * (1.0 + 1e-12),
                "f_req {f_req}: best {} vs next-up {nu_energy}",
                best.energy
            );
        }
    }

    #[test]
    fn two_level_assignment_aggregates() {
        let fa = esched_types::FrequencyAssignment {
            freq: vec![500.0, 2000.0],
            avail: vec![2.0, 1.0],
        };
        let out = two_level_assignment(&fa, &[1000.0, 2000.0], &xscale());
        assert!(!out.feasible);
        assert_eq!(out.misses, vec![1]);
        // Task 0 contributes the split energy, task 1 the top level.
        let expected = 570.0 + 1600.0 * 2000.0 / 1000.0;
        assert!((out.energy - expected).abs() < 1e-9);
    }
}
