//! The optimal baseline `E^OPT` (Theorem 1) and its constructive half:
//! extracting a legal schedule from the convex program's solution.
//!
//! The paper normalizes every experimental result by the optimum of the
//! reformulated convex program. This module solves the program with a
//! pluggable first-order solver from `esched-opt` and — implementing the
//! second half of Theorem 1's proof — materializes the optimal `x_{i,j}`
//! into a collision-free schedule via Algorithm 1.

use crate::packing::{pack_subinterval, PackItem};
use esched_opt::{EnergyProgram, SolveOptions, SolveResult, SolverTelemetry};
use esched_subinterval::Timeline;
use esched_types::{PolynomialPower, Schedule, TaskSet};

/// Which method solves the convex program.
///
/// This is [`esched_opt::SolverKind`] re-exported under its historical
/// name — existing `Solver::Fista`-style call sites keep compiling, while
/// new code (the engine's `EngineConfig`, the solver study) can use the
/// unified `SolverKind::solve` dispatch directly.
pub use esched_opt::SolverKind as Solver;

/// The optimal solution: energy, certificate, and a legal schedule.
#[derive(Debug, Clone, PartialEq)]
pub struct OptimalSolution {
    /// Optimal energy `E^OPT` (the experiment normalizer).
    pub energy: f64,
    /// Certified duality gap (upper bound on suboptimality).
    pub gap: f64,
    /// Solver iterations used.
    pub iters: usize,
    /// Full solver telemetry (iterations, stalls, gap evaluations, wall
    /// time) — what [`crate::nec::evaluate_nec_full`] forwards into run
    /// reports.
    pub telemetry: SolverTelemetry,
    /// Per-task total execution times `X_i` at the optimum.
    pub total_times: Vec<f64>,
    /// Per-task frequencies `C_i / X_i`.
    pub freq: Vec<f64>,
    /// The materialized optimal schedule.
    pub schedule: Schedule,
    /// The final flat iterate `x_{i,j}` (post dust-clean and repair) —
    /// reusable as [`SolveOptions::warm_start`] for a nearby instance of
    /// the same dimension.
    pub x: Vec<f64>,
}

/// Solve the energy program for `tasks` on `cores` cores and extract a
/// schedule. Uses [`Solver::ProjectedGradient`]; see
/// [`optimal_energy_with`] to pick a solver.
///
/// # Examples
///
/// ```
/// use esched_core::optimal_energy;
/// use esched_opt::SolveOptions;
/// use esched_types::{PolynomialPower, TaskSet};
///
/// // Section II: three tasks, two cores, p(f) = f³ + 0.01 →
/// // E^OPT = 155/32 + 0.2.
/// let tasks = TaskSet::from_triples(&[
///     (0.0, 12.0, 4.0), (2.0, 10.0, 2.0), (4.0, 8.0, 4.0),
/// ]);
/// let sol = optimal_energy(
///     &tasks, 2, &PolynomialPower::paper(3.0, 0.01), &SolveOptions::precise(),
/// );
/// assert!((sol.energy - (155.0 / 32.0 + 0.2)).abs() < 1e-5);
/// ```
pub fn optimal_energy(
    tasks: &TaskSet,
    cores: usize,
    power: &PolynomialPower,
    opts: &SolveOptions,
) -> OptimalSolution {
    optimal_energy_with(tasks, cores, power, opts, Solver::ProjectedGradient)
}

/// [`optimal_energy`] with an explicit solver choice.
pub fn optimal_energy_with(
    tasks: &TaskSet,
    cores: usize,
    power: &PolynomialPower,
    opts: &SolveOptions,
    solver: Solver,
) -> OptimalSolution {
    let timeline = Timeline::build(tasks);
    optimal_energy_in(tasks, &timeline, cores, power, opts, solver)
}

/// [`optimal_energy_with`] against a caller-built [`Timeline`], so batch
/// pipelines that already decomposed the instance (the engine runs the
/// heuristics and the optimum off one timeline) don't rebuild it.
pub fn optimal_energy_in(
    tasks: &TaskSet,
    timeline: &Timeline,
    cores: usize,
    power: &PolynomialPower,
    opts: &SolveOptions,
    solver: Solver,
) -> OptimalSolution {
    optimal_energy_in_pool(tasks, timeline, cores, power, opts, solver, None)
}

/// [`optimal_energy_in`] with an optional shared worker [`Pool`] for the
/// decomposed solver ([`Solver::Admm`]) to fan its per-task subproblems
/// across — the engine threads its intra-instance pool through here so
/// one warm set of workers serves allocation *and* certification. `None`
/// falls back to an env-sized pool; serial solvers ignore it either way,
/// and results are byte-identical at any worker count.
#[allow(clippy::too_many_arguments)]
pub fn optimal_energy_in_pool(
    tasks: &TaskSet,
    timeline: &Timeline,
    cores: usize,
    power: &PolynomialPower,
    opts: &SolveOptions,
    solver: Solver,
    pool: Option<&crate::pool::Pool>,
) -> OptimalSolution {
    let ep = EnergyProgram::new(tasks, timeline, cores, *power);
    let mut result: SolveResult = match pool {
        Some(pool) => solver.solve_in(&ep, opts, pool),
        None => solver.solve(&ep, opts),
    };
    clean_dust(&ep, tasks, timeline, &mut result.x);
    repair_starved(&ep, tasks, timeline, cores, power, &mut result.x);
    let total_times = ep.total_times(&result.x);
    // Frequency is the exact `C_i/X_i` whenever the solver allocated *any*
    // time, however small — flooring the denominator at EPS (as this once
    // did) silently under-delivers tiny tasks: a task with `X_i < EPS`
    // would run at the diluted `C_i/EPS` over only `X_i` time and miss its
    // work by nearly all of `C_i`. The clamp below exists solely so a
    // literal `X_i = 0` yields a huge-but-finite frequency instead of inf
    // (no segment is emitted in that case anyway).
    let freq: Vec<f64> = tasks
        .iter()
        .map(|(i, t)| t.wcec / total_times[i].max(f64::MIN_POSITIVE))
        .collect();
    let schedule = extract_schedule(timeline, cores, &ep, &result.x, &freq);
    OptimalSolution {
        energy: result.objective,
        gap: result.gap,
        iters: result.iters,
        telemetry: result.telemetry,
        total_times,
        freq,
        schedule,
        x: result.x,
    }
}

/// Zero out solver "dust": first-order methods leave tiny positive
/// `x_{i,j}` values (≪ any real allocation) scattered across blocks. They
/// carry negligible work but materialize as micro-segments that bloat the
/// schedule and interact badly with packing tolerances. Dropping them
/// *before* frequencies are computed keeps delivered work exactly `C_i`
/// (the frequency rises to compensate). A task's largest entry is always
/// kept, so `X_i` stays positive.
fn clean_dust(ep: &EnergyProgram, tasks: &TaskSet, timeline: &Timeline, x: &mut [f64]) {
    for i in 0..tasks.len() {
        let span = timeline.span(i);
        let mut best_k = None;
        let mut best_v = 0.0;
        for j in span.clone() {
            let k = ep.flat_index(i, j).expect("span index");
            if x[k] > best_v {
                best_v = x[k];
                best_k = Some(k);
            }
        }
        for j in span {
            let k = ep.flat_index(i, j).expect("span index");
            let threshold = 1e-6 * (1.0 + timeline.delta(j));
            if x[k] < threshold && Some(k) != best_k {
                x[k] = 0.0;
            }
        }
    }
}

/// Repair solver starvation: a first-order method can exit with an
/// (exactly or nearly) zero allocation for a task whose execution
/// requirement is tiny relative to the instance — the projection clamps
/// its sliver onto the constraint boundary and the stalled gradient never
/// pulls it back before the iteration budget runs out. Zero time is not
/// "approximately optimal": it is infeasible at any finite frequency, and
/// the extracted schedule would deliver none of the task's work. Top such
/// tasks back up toward their ideal execution time `C_i/f_i^O` using spare
/// subinterval capacity; the missing time is below the solver's
/// resolution, so the spare is essentially always there.
fn repair_starved(
    ep: &EnergyProgram,
    tasks: &TaskSet,
    timeline: &Timeline,
    cores: usize,
    power: &PolynomialPower,
    x: &mut [f64],
) {
    use esched_types::time::EPS;
    esched_obs::metric_counter!("esched.core.repair_starved_calls").inc();
    let mut used = vec![0.0; timeline.len()];
    for i in 0..tasks.len() {
        for j in timeline.span(i) {
            if let Some(k) = ep.flat_index(i, j) {
                used[j] += x[k];
            }
        }
    }
    for (i, t) in tasks.iter() {
        let span = timeline.span(i);
        let have: f64 = span
            .clone()
            .filter_map(|j| ep.flat_index(i, j))
            .map(|k| x[k])
            .sum();
        if have > EPS {
            continue;
        }
        esched_obs::metric_counter!("esched.core.repair_starved_tasks").inc();
        let f_ideal = power.optimal_frequency(t.wcec, t.window_len().max(EPS));
        let mut need = (t.wcec / f_ideal - have).max(0.0);
        let mut got = have;
        for j in span.clone() {
            if need <= 0.0 {
                break;
            }
            let Some(k) = ep.flat_index(i, j) else {
                continue;
            };
            let delta = timeline.delta(j);
            let spare = (cores as f64 * delta - used[j]).min(delta - x[k]).max(0.0);
            let take = spare.min(need);
            x[k] += take;
            used[j] += take;
            need -= take;
            got += take;
        }
        // Saturated span (the co-runners soak every instant): shave a
        // sliver off their allocations instead. A donor that gives up δ
        // just runs δ·f faster — its delivered work is exact by
        // construction — while *zero* time for the starved task is
        // infeasible at any frequency. The target here is the modest
        // "run at max(1, f_crit)" time, so the donation is at most C_i.
        let t_min = t.wcec / power.critical_frequency().max(1.0);
        let mut steal = (t_min - got).max(0.0);
        if steal <= 0.0 {
            continue;
        }
        for j in span {
            if steal <= 0.0 {
                break;
            }
            let Some(k) = ep.flat_index(i, j) else {
                continue;
            };
            let delta = timeline.delta(j);
            for &other in &timeline.subintervals()[j].overlapping {
                if steal <= 0.0 || other == i {
                    continue;
                }
                let Some(ko) = ep.flat_index(other, j) else {
                    continue;
                };
                // Never take more than half a donor's slot, and respect
                // the receiver's own per-subinterval cap x ≤ Δ.
                let take = (x[ko] / 2.0).min(steal).min((delta - x[k]).max(0.0));
                x[ko] -= take;
                x[k] += take;
                steal -= take;
            }
        }
    }
}

/// Materialize an optimal `x` into a schedule: per subinterval, pack the
/// per-task execution times with Algorithm 1 at each task's equal
/// frequency `C_i/X_i` — the constructive step of Theorem 1.
fn extract_schedule(
    timeline: &Timeline,
    cores: usize,
    ep: &EnergyProgram,
    x: &[f64],
    freq: &[f64],
) -> Schedule {
    let mut out = Schedule::new(cores);
    let mut items: Vec<PackItem> = Vec::new();
    for sub in timeline.subintervals() {
        items.clear();
        for &i in &sub.overlapping {
            if let Some(k) = ep.flat_index(i, sub.index) {
                let d = x[k];
                // Work-aware dust gate: for a tiny task the solver's whole
                // allocation can sit below EPS, yet at `C_i/X_i` that
                // sliver carries the task's entire work — dropping it by
                // duration alone delivered zero work for such tasks.
                if d > 0.0 && !crate::packing::negligible(d, freq[i]) {
                    items.push(PackItem {
                        task: i,
                        duration: d,
                        freq: freq[i],
                    });
                }
            }
        }
        pack_subinterval(
            &items,
            sub.interval.start,
            sub.interval.end,
            cores,
            &mut out,
        )
        .expect("solver iterates are feasible");
    }
    out.coalesce();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use esched_types::{validate_schedule, PowerModel};

    fn intro() -> TaskSet {
        TaskSet::from_triples(&[(0.0, 12.0, 4.0), (2.0, 10.0, 2.0), (4.0, 8.0, 4.0)])
    }

    #[test]
    fn section_ii_example_energy_and_schedule() {
        let ts = intro();
        let p = PolynomialPower::paper(3.0, 0.01);
        let sol = optimal_energy(&ts, 2, &p, &SolveOptions::precise());
        let expect = 155.0 / 32.0 + 0.2;
        assert!(
            (sol.energy - expect).abs() < 1e-5,
            "E^OPT = {} vs {}",
            sol.energy,
            expect
        );
        validate_schedule(&sol.schedule, &ts).assert_legal();
        // Schedule energy agrees with the analytic optimum. The packing
        // rounds the work delivered to exactly C_i, so small drift is OK.
        let se = sol.schedule.energy(&p);
        assert!((se - sol.energy).abs() < 1e-4 * (1.0 + sol.energy), "{se}");
    }

    #[test]
    fn all_solvers_agree() {
        let ts = intro();
        let p = PolynomialPower::paper(3.0, 0.05);
        let a = optimal_energy_with(
            &ts,
            2,
            &p,
            &SolveOptions::default(),
            Solver::ProjectedGradient,
        );
        let b = optimal_energy_with(&ts, 2, &p, &SolveOptions::default(), Solver::Fista);
        let c = optimal_energy_with(&ts, 2, &p, &SolveOptions::default(), Solver::FrankWolfe);
        let d = optimal_energy_with(&ts, 2, &p, &SolveOptions::default(), Solver::InteriorPoint);
        let e = optimal_energy_with(&ts, 2, &p, &SolveOptions::default(), Solver::BlockDescent);
        let f = optimal_energy_with(&ts, 2, &p, &SolveOptions::default(), Solver::Admm);
        assert!((a.energy - b.energy).abs() < 1e-3 * (1.0 + a.energy));
        assert!((a.energy - c.energy).abs() < 1e-3 * (1.0 + a.energy));
        assert!((a.energy - d.energy).abs() < 2e-3 * (1.0 + a.energy));
        assert!((a.energy - e.energy).abs() < 2e-3 * (1.0 + a.energy));
        assert!((a.energy - f.energy).abs() < 2e-3 * (1.0 + a.energy));
        // The IP, block-descent, and ADMM solutions extract legal
        // schedules too.
        esched_types::validate_schedule(&d.schedule, &ts).assert_legal();
        esched_types::validate_schedule(&e.schedule, &ts).assert_legal();
        esched_types::validate_schedule(&f.schedule, &ts).assert_legal();
    }

    #[test]
    fn optimum_lower_bounds_heuristics() {
        let ts = TaskSet::from_triples(&[
            (0.0, 10.0, 8.0),
            (2.0, 18.0, 14.0),
            (4.0, 16.0, 8.0),
            (6.0, 14.0, 4.0),
            (8.0, 20.0, 10.0),
            (12.0, 22.0, 6.0),
        ]);
        let p = PolynomialPower::cubic();
        let opt = optimal_energy(&ts, 4, &p, &SolveOptions::default());
        let der = crate::der::der_schedule(&ts, 4, &p);
        let even = crate::even::even_schedule(&ts, 4, &p);
        assert!(opt.energy <= der.final_energy + 1e-6);
        assert!(opt.energy <= even.final_energy + 1e-6);
        // And with p0 = 0 the unlimited-core ideal lower-bounds everything.
        let ideal = crate::ideal::ideal_schedule(&ts, &p);
        assert!(ideal.energy <= opt.energy + 1e-6);
    }

    #[test]
    fn optimal_schedule_is_legal_across_power_models() {
        let ts = intro();
        for p in [
            PolynomialPower::cubic(),
            PolynomialPower::paper(2.0, 0.25),
            PolynomialPower::paper(3.0, 0.2),
        ] {
            let sol = optimal_energy(&ts, 2, &p, &SolveOptions::default());
            validate_schedule(&sol.schedule, &ts).assert_legal();
            assert!(sol.energy > 0.0);
            let _ = p.power(1.0);
        }
    }
}
