//! Schedule quality analysis: a structured report of *why* a schedule
//! costs what it costs.
//!
//! Complements the boolean legality check (`esched-types::validate`) and
//! the scalar energy number with per-task and aggregate diagnostics:
//! dynamic/static energy split, window-slack usage, frequency spreads,
//! and fragmentation (segments, migrations, preemptions).

use esched_types::time::compensated_sum;
use esched_types::{PolynomialPower, Schedule, TaskId, TaskSet};
use std::fmt::Write as _;

/// Per-task diagnostics.
#[derive(Debug, Clone, PartialEq)]
pub struct TaskQuality {
    /// The task.
    pub task: TaskId,
    /// Number of execution segments.
    pub segments: usize,
    /// Total execution time.
    pub exec_time: f64,
    /// Fraction of the window actually used (`exec_time / (D−R)`).
    pub window_usage: f64,
    /// Work-weighted mean frequency.
    pub mean_freq: f64,
    /// Dynamic energy.
    pub dynamic_energy: f64,
    /// Static energy.
    pub static_energy: f64,
}

/// Whole-schedule diagnostics.
#[derive(Debug, Clone, PartialEq)]
pub struct ScheduleQuality {
    /// Per-task rows, by task id.
    pub tasks: Vec<TaskQuality>,
    /// Total energy (= dynamic + static).
    pub energy: f64,
    /// Total dynamic energy.
    pub dynamic_energy: f64,
    /// Total static energy.
    pub static_energy: f64,
    /// Migrations across the schedule.
    pub migrations: usize,
    /// Preemptions across the schedule.
    pub preemptions: usize,
    /// Mean core utilization over the task horizon.
    pub utilization: f64,
}

/// Analyze `schedule` for `tasks` under `power`.
pub fn analyze(schedule: &Schedule, tasks: &TaskSet, power: &PolynomialPower) -> ScheduleQuality {
    let mut rows = Vec::with_capacity(tasks.len());
    for (id, t) in tasks.iter() {
        let segs = schedule.task_segments(id);
        let exec_time: f64 = compensated_sum(segs.iter().map(|s| s.duration()));
        let work: f64 = compensated_sum(segs.iter().map(|s| s.work()));
        let mean_freq = if exec_time > 0.0 {
            work / exec_time
        } else {
            0.0
        };
        let mut dynamic = 0.0;
        let mut stat = 0.0;
        for s in &segs {
            let (d, st) = power.energy_breakdown(s.work(), s.freq);
            dynamic += d;
            stat += st;
        }
        rows.push(TaskQuality {
            task: id,
            segments: segs.len(),
            exec_time,
            window_usage: exec_time / t.window_len(),
            mean_freq,
            dynamic_energy: dynamic,
            static_energy: stat,
        });
    }
    let dynamic_energy: f64 = rows.iter().map(|r| r.dynamic_energy).sum();
    let static_energy: f64 = rows.iter().map(|r| r.static_energy).sum();
    ScheduleQuality {
        energy: dynamic_energy + static_energy,
        dynamic_energy,
        static_energy,
        migrations: schedule.migrations(),
        preemptions: schedule.preemptions(),
        utilization: schedule.utilization(tasks.horizon().length()),
        tasks: rows,
    }
}

impl ScheduleQuality {
    /// Render as an aligned text table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:>5} {:>5} {:>9} {:>8} {:>8} {:>10} {:>10}",
            "task", "segs", "exec", "usage", "freq", "E_dyn", "E_stat"
        );
        for r in &self.tasks {
            let _ = writeln!(
                out,
                "{:>5} {:>5} {:>9.3} {:>8.3} {:>8.3} {:>10.4} {:>10.4}",
                r.task,
                r.segments,
                r.exec_time,
                r.window_usage,
                r.mean_freq,
                r.dynamic_energy,
                r.static_energy
            );
        }
        let _ = writeln!(
            out,
            "total: E = {:.4} (dynamic {:.4} + static {:.4}), {} migrations, {} preemptions, utilization {:.2}",
            self.energy,
            self.dynamic_energy,
            self.static_energy,
            self.migrations,
            self.preemptions,
            self.utilization
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::der::der_schedule;

    fn vd_tasks() -> TaskSet {
        TaskSet::from_triples(&[
            (0.0, 10.0, 8.0),
            (2.0, 18.0, 14.0),
            (4.0, 16.0, 8.0),
            (6.0, 14.0, 4.0),
            (8.0, 20.0, 10.0),
            (12.0, 22.0, 6.0),
        ])
    }

    #[test]
    fn totals_agree_with_schedule_energy() {
        let ts = vd_tasks();
        for p in [PolynomialPower::cubic(), PolynomialPower::paper(3.0, 0.2)] {
            let out = der_schedule(&ts, 4, &p);
            let q = analyze(&out.schedule, &ts, &p);
            let direct = out.schedule.energy(&p);
            assert!(
                (q.energy - direct).abs() < 1e-7 * (1.0 + direct),
                "quality {} vs schedule {}",
                q.energy,
                direct
            );
            if p.p0 == 0.0 {
                assert_eq!(q.static_energy, 0.0);
            } else {
                assert!(q.static_energy > 0.0);
            }
        }
    }

    #[test]
    fn per_task_mean_frequency_matches_assignment() {
        let ts = vd_tasks();
        let p = PolynomialPower::cubic();
        let out = der_schedule(&ts, 4, &p);
        let q = analyze(&out.schedule, &ts, &p);
        for r in &q.tasks {
            assert!(
                (r.mean_freq - out.assignment.freq[r.task]).abs() < 1e-9,
                "task {}: {} vs {}",
                r.task,
                r.mean_freq,
                out.assignment.freq[r.task]
            );
            assert!(r.window_usage > 0.0 && r.window_usage <= 1.0 + 1e-9);
        }
    }

    #[test]
    fn render_contains_every_task_and_totals() {
        let ts = vd_tasks();
        let p = PolynomialPower::paper(3.0, 0.1);
        let out = der_schedule(&ts, 4, &p);
        let text = analyze(&out.schedule, &ts, &p).render();
        for i in 0..6 {
            assert!(text.contains(&format!("\n{:>5}", i)), "missing task {i}");
        }
        assert!(text.contains("total: E ="));
        assert!(text.contains("migrations"));
    }

    #[test]
    fn static_fraction_grows_with_p0() {
        let ts = vd_tasks();
        let lo = analyze(
            &der_schedule(&ts, 4, &PolynomialPower::paper(3.0, 0.05)).schedule,
            &ts,
            &PolynomialPower::paper(3.0, 0.05),
        );
        let hi = analyze(
            &der_schedule(&ts, 4, &PolynomialPower::paper(3.0, 0.5)).schedule,
            &ts,
            &PolynomialPower::paper(3.0, 0.5),
        );
        let frac_lo = lo.static_energy / lo.energy;
        let frac_hi = hi.static_energy / hi.energy;
        assert!(frac_hi > frac_lo, "{frac_lo} vs {frac_hi}");
    }
}
