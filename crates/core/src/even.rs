//! The evenly allocating method end-to-end (Section V.B): `S^I1` → `S^F1`.

use crate::allocation::allocate_even;
use crate::ideal::ideal_schedule;
use crate::refine::{build_outcome_with, HeuristicOutcome};
use crate::scratch::Scratch;
use esched_subinterval::Timeline;
use esched_types::{PolynomialPower, TaskSet};

/// Run the evenly allocating method on `tasks` over `cores` cores under
/// `power`: light subintervals grant full occupancy, heavy subintervals
/// are split `m·Δ_j/n_j` per task, frequencies are refined per Eq. 22-23,
/// and both the intermediate and final schedules are materialized.
///
/// # Examples
///
/// ```
/// use esched_core::even_schedule;
/// use esched_types::{PolynomialPower, TaskSet};
///
/// let tasks = TaskSet::from_triples(&[
///     (0.0, 10.0, 8.0), (2.0, 18.0, 14.0), (4.0, 16.0, 8.0),
///     (6.0, 14.0, 4.0), (8.0, 20.0, 10.0), (12.0, 22.0, 6.0),
/// ]);
/// let out = even_schedule(&tasks, 4, &PolynomialPower::cubic());
/// // The paper's E^F1 for this instance.
/// assert!((out.final_energy - 33.0642).abs() < 5e-4);
/// // The final refinement never increases energy.
/// assert!(out.final_energy <= out.intermediate_energy);
/// ```
pub fn even_schedule(tasks: &TaskSet, cores: usize, power: &PolynomialPower) -> HeuristicOutcome {
    even_schedule_with(tasks, cores, power, &mut Scratch::new())
}

/// [`even_schedule`] reusing the buffers in `scratch`; see
/// [`crate::der::der_schedule_with`] for the reuse contract.
pub fn even_schedule_with(
    tasks: &TaskSet,
    cores: usize,
    power: &PolynomialPower,
    scratch: &mut Scratch,
) -> HeuristicOutcome {
    let _span = esched_obs::span!(
        esched_obs::Level::Info,
        "even_schedule",
        n_tasks = tasks.len(),
        cores = cores,
    );
    let timeline = Timeline::build_with(tasks, &mut scratch.timeline);
    let ideal = ideal_schedule(tasks, power);
    let avail = allocate_even(tasks, &timeline, cores);
    let out = build_outcome_with(tasks, &timeline, cores, power, &ideal, avail, scratch);
    scratch.timeline.recycle(timeline);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use esched_types::validate_schedule;

    #[test]
    fn intro_example_runs_clean() {
        let ts = TaskSet::from_triples(&[(0.0, 12.0, 4.0), (2.0, 10.0, 2.0), (4.0, 8.0, 4.0)]);
        let p = PolynomialPower::paper(3.0, 0.01);
        let out = even_schedule(&ts, 2, &p);
        validate_schedule(&out.schedule, &ts).assert_legal();
        validate_schedule(&out.intermediate_schedule, &ts).assert_legal();
        assert!(out.final_energy <= out.intermediate_energy + 1e-9);
    }

    #[test]
    fn no_heavy_subintervals_reduces_to_ideal() {
        // Two tasks, two cores: every subinterval light → the final
        // schedule equals the ideal energy.
        let ts = TaskSet::from_triples(&[(0.0, 8.0, 4.0), (2.0, 10.0, 4.0)]);
        let p = PolynomialPower::paper(3.0, 0.05);
        let out = even_schedule(&ts, 2, &p);
        let ideal = crate::ideal::ideal_schedule(&ts, &p);
        assert!(
            (out.final_energy - ideal.energy).abs() < 1e-9,
            "final {} vs ideal {}",
            out.final_energy,
            ideal.energy
        );
        assert!(
            (out.intermediate_energy - ideal.energy).abs() < 1e-9,
            "intermediate {} vs ideal {}",
            out.intermediate_energy,
            ideal.energy
        );
    }
}
