//! Core-count selection (Section VI.D, "Additional Remarks").
//!
//! The paper notes that using *all* available cores is not always best:
//! before running, simulate the chosen scheduling method with 1, 2, …, m
//! cores and pick the configuration with minimal predicted energy. With
//! zero static power more cores never hurt (more parallel slack → lower
//! frequencies); with high static power the heuristics' allocation
//! granularity can make fewer cores competitive, and this sweep finds
//! that out.

use crate::der::der_schedule;
use crate::even::even_schedule;
use esched_types::{PolynomialPower, TaskSet};

/// Which heuristic the sweep evaluates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Method {
    /// Evenly allocating method (`S^F1`).
    Even,
    /// DER-based allocating method (`S^F2`).
    Der,
}

/// Result of the core-count sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct CoreCountChoice {
    /// The energy-minimal core count.
    pub best: usize,
    /// Final energy at the best core count.
    pub best_energy: f64,
    /// `(cores, final_energy)` for every candidate, ascending core count.
    pub sweep: Vec<(usize, f64)>,
}

/// Sweep core counts `1..=max_cores` under `method` and pick the best.
///
/// # Panics
/// If `max_cores == 0`.
pub fn select_core_count(
    tasks: &TaskSet,
    max_cores: usize,
    power: &PolynomialPower,
    method: Method,
) -> CoreCountChoice {
    assert!(max_cores > 0);
    let mut sweep = Vec::with_capacity(max_cores);
    for m in 1..=max_cores {
        let energy = match method {
            Method::Even => even_schedule(tasks, m, power).final_energy,
            Method::Der => der_schedule(tasks, m, power).final_energy,
        };
        sweep.push((m, energy));
    }
    let &(best, best_energy) = sweep
        .iter()
        .min_by(|a, b| a.1.partial_cmp(&b.1).expect("finite energies"))
        .expect("non-empty sweep");
    CoreCountChoice {
        best,
        best_energy,
        sweep,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vd_tasks() -> TaskSet {
        TaskSet::from_triples(&[
            (0.0, 10.0, 8.0),
            (2.0, 18.0, 14.0),
            (4.0, 16.0, 8.0),
            (6.0, 14.0, 4.0),
            (8.0, 20.0, 10.0),
            (12.0, 22.0, 6.0),
        ])
    }

    #[test]
    fn sweep_covers_all_counts() {
        let choice = select_core_count(&vd_tasks(), 6, &PolynomialPower::cubic(), Method::Der);
        assert_eq!(choice.sweep.len(), 6);
        assert!(choice.best >= 1 && choice.best <= 6);
        let min = choice
            .sweep
            .iter()
            .map(|&(_, e)| e)
            .fold(f64::INFINITY, f64::min);
        assert_eq!(choice.best_energy, min);
    }

    #[test]
    fn zero_static_power_prefers_more_cores() {
        // With p0 = 0, parallel slack only helps: energy is non-increasing
        // in m for the DER heuristic on this instance, so the sweep picks
        // the maximum.
        let choice = select_core_count(&vd_tasks(), 6, &PolynomialPower::cubic(), Method::Der);
        for w in choice.sweep.windows(2) {
            assert!(
                w[1].1 <= w[0].1 + 1e-9,
                "energy increased from m={} to m={}",
                w[0].0,
                w[1].0
            );
        }
        // Peak overlap is 5, so m = 5 already removes every heavy
        // subinterval; m = 6 ties and the sweep keeps the smaller count.
        assert!(
            choice.best == 5 || choice.best == 6,
            "best = {}",
            choice.best
        );
        let e5 = choice.sweep[4].1;
        let e6 = choice.sweep[5].1;
        assert!(
            (e5 - e6).abs() < 1e-9,
            "m=5 and m=6 should tie: {e5} vs {e6}"
        );
    }

    #[test]
    fn both_methods_produce_choices() {
        let p = PolynomialPower::paper(3.0, 0.2);
        let a = select_core_count(&vd_tasks(), 4, &p, Method::Even);
        let b = select_core_count(&vd_tasks(), 4, &p, Method::Der);
        assert!(a.best_energy > 0.0 && b.best_energy > 0.0);
        // DER's best is never worse than even's best on this instance.
        assert!(b.best_energy <= a.best_energy + 1e-9);
    }
}
