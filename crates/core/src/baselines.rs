//! Related-work baselines beyond YDS.
//!
//! The paper positions its heuristics against two broad families:
//! optimal-but-heavy global solutions (refs [2], [4], [8] — represented
//! here by the convex program in [`crate::optimal`]) and simpler schemes a
//! practitioner might deploy instead. This module implements two of the
//! latter:
//!
//! * [`partitioned_yds`] — *partitioned* scheduling: assign each task to
//!   one core (worst-fit decreasing by intensity), then run the optimal
//!   uniprocessor YDS schedule per core. No migrations; the price is load
//!   imbalance that global schemes avoid.
//! * [`uniform_frequency`] — a non-DVFS-aware baseline: every core runs at
//!   the single lowest frequency that keeps the instance feasible
//!   (McNaughton-packable per subinterval), tasks are packed by
//!   Algorithm 1. This is what "set one governor frequency and forget"
//!   costs.

use crate::packing::{pack_subinterval, PackItem};
use crate::yds::yds_schedule;
use esched_subinterval::{min_feasible_frequency, Timeline};
use esched_types::time::EPS;
use esched_types::{PolynomialPower, Schedule, Segment, TaskId, TaskSet};

/// Outcome of a baseline scheduler.
#[derive(Debug, Clone, PartialEq)]
pub struct BaselineOutcome {
    /// Total energy.
    pub energy: f64,
    /// The materialized schedule.
    pub schedule: Schedule,
    /// Which core each task was assigned to (partitioned baselines only;
    /// empty for global ones).
    pub assignment: Vec<usize>,
}

/// Partitioned scheduling: worst-fit decreasing assignment by intensity,
/// then per-core YDS.
///
/// Worst-fit (least-loaded core first) balances the per-core intensity
/// sums, which is what matters for YDS energy on each core.
pub fn partitioned_yds(tasks: &TaskSet, cores: usize, power: &PolynomialPower) -> BaselineOutcome {
    assert!(cores > 0);
    // Sort tasks by intensity descending.
    let mut order: Vec<TaskId> = (0..tasks.len()).collect();
    order.sort_by(|&a, &b| {
        tasks
            .get(b)
            .intensity()
            .partial_cmp(&tasks.get(a).intensity())
            .expect("finite intensities")
            .then(a.cmp(&b))
    });
    let mut load = vec![0.0_f64; cores];
    let mut assignment = vec![0usize; tasks.len()];
    for &i in &order {
        let (core, _) = load
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(b.1).expect("finite loads"))
            .expect("at least one core");
        assignment[i] = core;
        load[core] += tasks.get(i).intensity();
    }

    // Per-core YDS over the core's tasks, remapped to original ids.
    let mut schedule = Schedule::new(cores);
    let mut energy = 0.0;
    for core in 0..cores {
        let ids: Vec<TaskId> = (0..tasks.len())
            .filter(|&i| assignment[i] == core)
            .collect();
        if ids.is_empty() {
            continue;
        }
        let sub = TaskSet::new(ids.iter().map(|&i| *tasks.get(i)).collect())
            .expect("subset of a valid set is valid");
        let yds = yds_schedule(&sub, power);
        energy += yds.energy;
        for seg in yds.schedule.segments() {
            schedule.push(Segment::new(
                ids[seg.task],
                core,
                seg.interval.start,
                seg.interval.end,
                seg.freq,
            ));
        }
    }
    schedule.coalesce();
    BaselineOutcome {
        energy,
        schedule,
        assignment,
    }
}

/// Uniform-frequency baseline: every task runs at the minimum globally
/// feasible frequency `f*`; a feasible per-(task, subinterval) spread at
/// that frequency is computed exactly by max-flow
/// ([`esched_opt::flow::feasible_allocation`] — the ref-[4] reduction)
/// and packed by Algorithm 1.
pub fn uniform_frequency(
    tasks: &TaskSet,
    cores: usize,
    power: &PolynomialPower,
) -> BaselineOutcome {
    assert!(cores > 0);
    let timeline = Timeline::build(tasks);
    // The interval-based bound is only *necessary* on multiprocessors
    // (parallelism constraints can bite without any contained-demand
    // overload), so refine it with the exact flow oracle, then bump by a
    // relative hair so the flow at the chosen frequency is numerically
    // feasible.
    let lower = min_feasible_frequency(tasks, cores).max(EPS);
    let f_star = if esched_opt::feasible_at_frequency(tasks, &timeline, cores, lower) {
        lower
    } else {
        esched_opt::min_frequency_by_flow(tasks, &timeline, cores, 1e-9)
    } * (1.0 + 1e-9);
    let x = esched_opt::flow::feasible_allocation(tasks, &timeline, cores, f_star)
        .expect("flow-certified frequency is feasible");

    // Pack per subinterval.
    let mut schedule = Schedule::new(cores);
    let mut items: Vec<PackItem> = Vec::new();
    for sub in timeline.subintervals() {
        items.clear();
        for &i in &sub.overlapping {
            let d = x[i][sub.index].min(sub.delta());
            if d > EPS {
                items.push(PackItem {
                    task: i,
                    duration: d,
                    freq: f_star,
                });
            }
        }
        pack_subinterval(
            &items,
            sub.interval.start,
            sub.interval.end,
            cores,
            &mut schedule,
        )
        .expect("repaired spread is packable");
    }
    schedule.coalesce();
    let energy = schedule.energy(power);
    BaselineOutcome {
        energy,
        schedule,
        assignment: Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::der::der_schedule;
    use esched_types::validate_schedule;

    fn vd_tasks() -> TaskSet {
        TaskSet::from_triples(&[
            (0.0, 10.0, 8.0),
            (2.0, 18.0, 14.0),
            (4.0, 16.0, 8.0),
            (6.0, 14.0, 4.0),
            (8.0, 20.0, 10.0),
            (12.0, 22.0, 6.0),
        ])
    }

    #[test]
    fn partitioned_yds_is_legal() {
        let ts = vd_tasks();
        let p = PolynomialPower::cubic();
        let out = partitioned_yds(&ts, 4, &p);
        validate_schedule(&out.schedule, &ts).assert_legal();
        assert_eq!(out.assignment.len(), 6);
        assert!(out.assignment.iter().all(|&c| c < 4));
        assert!(out.energy > 0.0);
    }

    #[test]
    fn partitioned_yds_single_core_equals_yds() {
        let ts = vd_tasks();
        let p = PolynomialPower::cubic();
        let part = partitioned_yds(&ts, 1, &p);
        let yds = yds_schedule(&ts, &p);
        assert!((part.energy - yds.energy).abs() < 1e-9);
    }

    #[test]
    fn global_der_beats_partitioned_yds_on_imbalanced_instances() {
        // One long window with several short dense tasks: partitioning
        // strands capacity, the global heuristic shares it.
        let ts = TaskSet::from_triples(&[
            (0.0, 4.0, 3.5),
            (0.0, 4.0, 3.5),
            (0.0, 4.0, 3.5),
            (0.0, 16.0, 2.0),
        ]);
        let p = PolynomialPower::cubic();
        let part = partitioned_yds(&ts, 2, &p);
        let der = der_schedule(&ts, 2, &p);
        validate_schedule(&part.schedule, &ts).assert_legal();
        assert!(
            der.final_energy <= part.energy * 1.001,
            "der {} vs partitioned {}",
            der.final_energy,
            part.energy
        );
    }

    #[test]
    fn uniform_frequency_is_legal_and_worse_than_der() {
        let ts = vd_tasks();
        let p = PolynomialPower::cubic();
        let uni = uniform_frequency(&ts, 4, &p);
        validate_schedule(&uni.schedule, &ts).assert_legal();
        let der = der_schedule(&ts, 4, &p);
        assert!(
            der.final_energy <= uni.energy * (1.0 + 1e-9),
            "der {} vs uniform {}",
            der.final_energy,
            uni.energy
        );
    }

    #[test]
    fn uniform_frequency_single_task() {
        let ts = TaskSet::from_triples(&[(0.0, 10.0, 5.0)]);
        let p = PolynomialPower::cubic();
        let uni = uniform_frequency(&ts, 1, &p);
        validate_schedule(&uni.schedule, &ts).assert_legal();
        // f* = 0.5 (+ the numerical bump), runs the whole window:
        // E = 0.5³·10 = 1.25.
        assert!((uni.energy - 1.25).abs() < 1e-6);
    }

    #[test]
    fn uniform_frequency_repairs_overloaded_spread() {
        // A task whose window is mostly covered by a busy region: the
        // proportional spread overloads the contested subinterval and the
        // repair pass must rebalance.
        let ts = TaskSet::from_triples(&[(0.0, 4.0, 4.0), (0.0, 4.0, 4.0), (0.0, 8.0, 4.0)]);
        let p = PolynomialPower::cubic();
        let uni = uniform_frequency(&ts, 2, &p);
        validate_schedule(&uni.schedule, &ts).assert_legal();
    }
}
