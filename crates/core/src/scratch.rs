//! Reusable per-pipeline working memory.
//!
//! One scheduling instance allocates a handful of short-lived buffers on
//! its hot path: the timeline's boundary/subinterval/span vectors, the
//! per-heavy-subinterval DER list of Algorithm 2, the `PackItem` staging
//! vector of Algorithm 1, and the per-task scale factors of the final
//! schedule. [`Scratch`] owns all of them so a batch driver (the
//! `esched-engine` worker loop, a fuzz harness, a benchmark) can run
//! thousands of instances while touching the allocator only when an
//! instance outgrows every previous one.
//!
//! The allocating entry points (`der_schedule`, `allocate_der`, …) are
//! thin wrappers over their `_with` twins with a fresh `Scratch`, so
//! one-shot callers never see this type.

use esched_subinterval::TimelineScratch;
use esched_types::TaskId;

use crate::packing::PackItem;

/// Reusable buffers for one scheduling pipeline
/// (timeline → ideal → allocate → refine → pack).
///
/// Not shared across threads — each worker owns one. Contents are
/// unspecified between calls; every consumer clears what it borrows.
#[derive(Debug, Default)]
pub struct Scratch {
    /// Timeline boundary/subinterval/span buffers
    /// (see [`TimelineScratch`]).
    pub timeline: TimelineScratch,
    /// Per-heavy-subinterval `(task, DER)` list of Algorithm 2.
    pub ders: Vec<(TaskId, f64)>,
    /// Flat per-column DER weights, aligned with the column's CSR cells.
    /// The vectorized emit multiplies this slice straight into the
    /// column's value slab.
    pub der_w: Vec<f64>,
    /// Remaining-weight suffix sums of the water-filling allocator.
    pub suffix: Vec<f64>,
    /// Bounded top-`(m+2)` head of the water-fill planner:
    /// `(cell offset, task, weight)` in canonical order.
    pub wf_head: Vec<(usize, TaskId, f64)>,
    /// Near-zero-weight tail of the water-fill planner:
    /// `(cell offset, weight)` in canonical order.
    pub wf_tiny: Vec<(usize, f64)>,
    /// Per-task `[exec.start, exec.end, freq]` records the staging gather
    /// reads — one packed load per cell instead of straddling the ideal
    /// solution's separate interval and frequency arrays.
    pub packed: Vec<[f64; 3]>,
    /// Per-subinterval packing items of Algorithm 1.
    pub items: Vec<PackItem>,
    /// Per-task scale factors `d_i / A_i` of the final schedule.
    pub scale: Vec<f64>,
}

impl Scratch {
    /// Empty scratch; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }
}
