//! The DER-based allocating method end-to-end (Section V.C): `S^I2` →
//! `S^F2`. This is the paper's headline algorithm.

use crate::allocation::{allocate, AllocRequest};
use crate::ideal::ideal_schedule;
use crate::refine::{build_outcome_with, HeuristicOutcome};
use crate::scratch::Scratch;
use esched_subinterval::Timeline;
use esched_types::{PolynomialPower, TaskSet};

/// Run the DER-based allocating method on `tasks` over `cores` cores under
/// `power`: heavy subintervals are divided in proportion to each task's
/// Desired Execution Requirement (Algorithm 2), frequencies refined per
/// Eq. 22-23, and both schedules materialized via Algorithm 1.
///
/// # Examples
///
/// ```
/// use esched_core::der_schedule;
/// use esched_types::{validate_schedule, PolynomialPower, TaskSet};
///
/// // The paper's Section V.D example: E^F2 = 31.8362 on a quad-core.
/// let tasks = TaskSet::from_triples(&[
///     (0.0, 10.0, 8.0), (2.0, 18.0, 14.0), (4.0, 16.0, 8.0),
///     (6.0, 14.0, 4.0), (8.0, 20.0, 10.0), (12.0, 22.0, 6.0),
/// ]);
/// let out = der_schedule(&tasks, 4, &PolynomialPower::cubic());
/// assert!((out.final_energy - 31.8362).abs() < 5e-4);
/// validate_schedule(&out.schedule, &tasks).assert_legal();
/// ```
pub fn der_schedule(tasks: &TaskSet, cores: usize, power: &PolynomialPower) -> HeuristicOutcome {
    der_schedule_with(tasks, cores, power, &mut Scratch::new())
}

/// [`der_schedule`] reusing the buffers in `scratch` — the timeline's
/// boundary/subinterval vectors, Algorithm 2's DER staging list, and
/// Algorithm 1's pack-item buffer all survive into the next call, so a
/// batch driver touches the allocator only when an instance outgrows every
/// previous one.
pub fn der_schedule_with(
    tasks: &TaskSet,
    cores: usize,
    power: &PolynomialPower,
    scratch: &mut Scratch,
) -> HeuristicOutcome {
    let _span = esched_obs::span!(
        esched_obs::Level::Info,
        "der_schedule",
        n_tasks = tasks.len(),
        cores = cores,
    );
    let timeline = Timeline::build_with(tasks, &mut scratch.timeline);
    let ideal = ideal_schedule(tasks, power);
    let avail = allocate(AllocRequest::new(tasks, &timeline, cores, &ideal).with_scratch(scratch));
    let out = build_outcome_with(tasks, &timeline, cores, power, &ideal, avail, scratch);
    scratch.timeline.recycle(timeline);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use esched_types::validate_schedule;

    #[test]
    fn intro_example_runs_clean() {
        let ts = TaskSet::from_triples(&[(0.0, 12.0, 4.0), (2.0, 10.0, 2.0), (4.0, 8.0, 4.0)]);
        let p = PolynomialPower::paper(3.0, 0.01);
        let out = der_schedule(&ts, 2, &p);
        validate_schedule(&out.schedule, &ts).assert_legal();
        validate_schedule(&out.intermediate_schedule, &ts).assert_legal();
        assert!(out.final_energy <= out.intermediate_energy + 1e-9);
    }

    #[test]
    fn single_heavy_interval_splits_by_der() {
        // Uneven DERs on one core: the dense task gets the larger share.
        let ts = TaskSet::from_triples(&[(0.0, 4.0, 3.0), (0.0, 4.0, 1.0)]);
        let p = PolynomialPower::cubic();
        let out = der_schedule(&ts, 1, &p);
        // DERs: 3 and 1 → allocations 3 and 1 over the 4-unit pool.
        assert!((out.total_avail[0] - 3.0).abs() < 1e-9);
        assert!((out.total_avail[1] - 1.0).abs() < 1e-9);
        validate_schedule(&out.schedule, &ts).assert_legal();
    }

    #[test]
    fn der_never_loses_to_even_on_skewed_instances() {
        // A dense task fighting a lazy one: DER should allocate the dense
        // task more time and win (or tie) on energy.
        let ts = TaskSet::from_triples(&[(0.0, 8.0, 7.0), (0.0, 8.0, 1.0), (0.0, 8.0, 7.0)]);
        let p = PolynomialPower::cubic();
        let der = der_schedule(&ts, 2, &p);
        let even = crate::even::even_schedule(&ts, 2, &p);
        assert!(
            der.final_energy <= even.final_energy + 1e-9,
            "der {} vs even {}",
            der.final_energy,
            even.final_energy
        );
    }
}
