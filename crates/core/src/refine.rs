//! Frequency refinement and schedule materialization.
//!
//! Given an availability matrix `a_{i,j}`, two schedules are derived:
//!
//! * the **intermediate** schedule (`S^I1`/`S^I2`): every task completes,
//!   in each subinterval, exactly the work the ideal case `S^O` completes
//!   there. Where the allocation is tighter than the ideal execution time,
//!   the frequency rises to squeeze the same work into the allocated time
//!   (Sections V.B.1 / V.C.1);
//! * the **final** schedule (`S^F1`/`S^F2`): each task's total available
//!   time `A_i = Σ_j a_{i,j}` feeds the per-task optimum of Eq. 22-23,
//!   `f_i = max{ f_crit, C_i/A_i }`, and the task's execution time
//!   `C_i/f_i` is spread over its available slots proportionally.
//!
//! Both are materialized into concrete [`Schedule`]s via Algorithm 1
//! ([`crate::packing`]) so they can be validated and simulated; their
//! energies are the analytic `E^I`/`E^F` of the paper.

use crate::allocation::AvailMatrix;
use crate::ideal::IdealSolution;
use crate::packing::{pack_subinterval, PackItem};
use crate::scratch::Scratch;
use esched_obs::{span, Level};
use esched_subinterval::Timeline;
use esched_types::time::EPS;
use esched_types::{FrequencyAssignment, PolynomialPower, Schedule, TaskSet};

/// Everything a heuristic run produces.
#[derive(Debug, Clone, PartialEq)]
pub struct HeuristicOutcome {
    /// Per-(task, subinterval) available times `a_{i,j}`.
    pub avail: AvailMatrix,
    /// Per-task totals `A_i`.
    pub total_avail: Vec<f64>,
    /// The final per-task frequency assignment (Eq. 22-23).
    pub assignment: FrequencyAssignment,
    /// Energy of the intermediate schedule (`E^{I1}` / `E^{I2}`).
    pub intermediate_energy: f64,
    /// Energy of the final schedule (`E^{F1}` / `E^{F2}`).
    pub final_energy: f64,
    /// The materialized intermediate schedule.
    pub intermediate_schedule: Schedule,
    /// The materialized final schedule.
    pub schedule: Schedule,
}

/// Build the intermediate schedule: per subinterval, each overlapping task
/// runs for `min(u, a)` where `u = |U_i^O ∩ sub|`, at frequency `f_i^O`
/// when `u ≤ a` and at the squeezed `u·f_i^O/a` otherwise. The work
/// completed per subinterval equals the ideal case's.
pub fn intermediate_schedule(
    timeline: &Timeline,
    cores: usize,
    ideal: &IdealSolution,
    avail: &AvailMatrix,
) -> Schedule {
    intermediate_schedule_with(timeline, cores, ideal, avail, &mut Vec::new())
}

/// [`intermediate_schedule`] staging pack items in a caller-owned buffer.
pub fn intermediate_schedule_with(
    timeline: &Timeline,
    cores: usize,
    ideal: &IdealSolution,
    avail: &AvailMatrix,
    items: &mut Vec<PackItem>,
) -> Schedule {
    let mut out = Schedule::new(cores);
    // Ideal-overlap staging: computed for the whole column in one tight
    // pass before the branchy item-selection loop, so the hot part of the
    // column walk is a flat sequential fill.
    let mut overlaps: Vec<f64> = Vec::new();
    for sub in timeline.subintervals() {
        items.clear();
        let cells = avail.col(sub.index);
        overlaps.clear();
        overlaps.extend(
            sub.overlapping
                .iter()
                .map(|&i| ideal.exec_overlap(i, &sub.interval)),
        );
        for (pos, &i) in sub.overlapping.iter().enumerate() {
            let u = overlaps[pos];
            if crate::packing::negligible(u, ideal.freq[i]) {
                continue;
            }
            let a = cells[pos];
            // Strict comparison: running for `u > a` — even by only EPS —
            // lets tasks collectively overshoot `m·Δ` when Δ is itself
            // near EPS. A dust-sized overshoot lands in the squeeze branch
            // instead, where the frequency rises by the same dust factor.
            let (duration, freq) = if u <= a {
                (u, ideal.freq[i])
            } else if a > 0.0 && !crate::packing::negligible(a, u * ideal.freq[i] / a) {
                (a, u * ideal.freq[i] / a)
            } else {
                // No allocation at all in this subinterval: the ideal work
                // here is lost; the *final* schedule recovers feasibility,
                // but the intermediate schedule (matching the paper's
                // analytic construction) simply cannot place it. Skip —
                // tasks with positive DER always receive positive
                // allocation (see allocation.rs), so this arises only for
                // zero allocations where u is also ~0.
                continue;
            };
            items.push(PackItem {
                task: i,
                duration,
                freq,
            });
        }
        pack_subinterval(items, sub.interval.start, sub.interval.end, cores, &mut out)
            .expect("intermediate durations respect capacity by construction");
    }
    out.coalesce();
    out
}

/// Final frequency assignment from per-task available totals:
/// `f_i = max{ f_crit, C_i / A_i }`.
pub fn final_assignment(
    tasks: &TaskSet,
    total_avail: &[f64],
    power: &PolynomialPower,
) -> FrequencyAssignment {
    assert_eq!(tasks.len(), total_avail.len());
    let freq = tasks
        .iter()
        .map(|(i, t)| {
            // Clamp the denominator away from ~0 so a degenerate timeline
            // (a task whose only subintervals are near-EPS slivers) yields
            // a large-but-finite frequency instead of dividing into
            // NaN/inf. The validator reports the task as underserved if
            // its work is material; nothing downstream panics.
            let a = total_avail[i].max(EPS);
            power.optimal_frequency(t.wcec, a)
        })
        .collect();
    FrequencyAssignment {
        freq,
        avail: total_avail.to_vec(),
    }
}

/// Materialize the final schedule: task `i` needs `d_i = C_i/f_i ≤ A_i`
/// core time, spread over its available slots in proportion
/// `x_{i,j} = a_{i,j}·d_i/A_i`, then packed per subinterval by Algorithm 1.
pub fn final_schedule(
    tasks: &TaskSet,
    timeline: &Timeline,
    cores: usize,
    avail: &AvailMatrix,
    assignment: &FrequencyAssignment,
) -> Schedule {
    final_schedule_with(
        tasks,
        timeline,
        cores,
        avail,
        assignment,
        &mut Vec::new(),
        &mut Vec::new(),
    )
}

/// [`final_schedule`] staging pack items and per-task scale factors in
/// caller-owned buffers.
pub fn final_schedule_with(
    tasks: &TaskSet,
    timeline: &Timeline,
    cores: usize,
    avail: &AvailMatrix,
    assignment: &FrequencyAssignment,
    items: &mut Vec<PackItem>,
    scale: &mut Vec<f64>,
) -> Schedule {
    let n = tasks.len();
    // Per-task scale factor d_i / A_i ∈ (0, 1].
    scale.clear();
    scale.resize(n, 0.0);
    for (i, t) in tasks.iter() {
        let d = t.wcec / assignment.freq[i];
        let a = assignment.avail[i];
        debug_assert!(
            d <= a.max(EPS) * (1.0 + 1e-9),
            "duration {d} exceeds avail {a}"
        );
        // Guard the ~0-availability degenerate: scale 0 (no time to give)
        // rather than dividing into inf/NaN.
        scale[i] = if a > 0.0 { (d / a).min(1.0) } else { 0.0 };
    }
    let mut out = Schedule::new(cores);
    // Scaled-usage staging: one flat gather-multiply over the column's
    // cells before the branchy item-selection loop — the multiply runs
    // over sequential slab loads, which is what the autovectorizer needs.
    let mut used_buf: Vec<f64> = Vec::new();
    for sub in timeline.subintervals() {
        items.clear();
        let cells = avail.col(sub.index);
        used_buf.clear();
        used_buf.extend(
            sub.overlapping
                .iter()
                .zip(cells.iter())
                .map(|(&i, &a)| a * scale[i]),
        );
        for (pos, &i) in sub.overlapping.iter().enumerate() {
            let used = used_buf[pos];
            // Work-aware dust filter: a sub-EPS slot still matters when the
            // task's frequency is high enough that it carries real work.
            if crate::packing::negligible(used, assignment.freq[i]) {
                continue;
            }
            items.push(PackItem {
                task: i,
                duration: used,
                freq: assignment.freq[i],
            });
        }
        pack_subinterval(items, sub.interval.start, sub.interval.end, cores, &mut out)
            .expect("scaled durations respect capacity by construction");
    }
    out.coalesce();
    out
}

/// Assemble the full [`HeuristicOutcome`] from an availability matrix.
/// Shared tail of the even and DER pipelines.
pub fn build_outcome(
    tasks: &TaskSet,
    timeline: &Timeline,
    cores: usize,
    power: &PolynomialPower,
    ideal: &IdealSolution,
    avail: AvailMatrix,
) -> HeuristicOutcome {
    build_outcome_with(
        tasks,
        timeline,
        cores,
        power,
        ideal,
        avail,
        &mut Scratch::new(),
    )
}

/// [`build_outcome`] staging pack items and scale factors in `scratch`.
pub fn build_outcome_with(
    tasks: &TaskSet,
    timeline: &Timeline,
    cores: usize,
    power: &PolynomialPower,
    ideal: &IdealSolution,
    avail: AvailMatrix,
    scratch: &mut Scratch,
) -> HeuristicOutcome {
    let _span = span!(
        Level::Debug,
        "refine_frequencies",
        n_tasks = tasks.len(),
        n_subintervals = timeline.len(),
        cores = cores,
    );
    let total_avail = avail.totals();
    let assignment = final_assignment(tasks, &total_avail, power);
    let intermediate =
        intermediate_schedule_with(timeline, cores, ideal, &avail, &mut scratch.items);
    let schedule = final_schedule_with(
        tasks,
        timeline,
        cores,
        &avail,
        &assignment,
        &mut scratch.items,
        &mut scratch.scale,
    );
    let works: Vec<f64> = tasks.tasks().iter().map(|t| t.wcec).collect();
    let final_energy = assignment.energy(&works, power);
    let intermediate_energy = intermediate.energy(power);
    HeuristicOutcome {
        avail,
        total_avail,
        assignment,
        intermediate_energy,
        final_energy,
        intermediate_schedule: intermediate,
        schedule,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::allocation::{allocate, allocate_even, AllocRequest};
    use crate::ideal::ideal_schedule;
    use esched_types::validate_schedule;

    fn allocate_der(
        tasks: &TaskSet,
        tl: &Timeline,
        cores: usize,
        ideal: &IdealSolution,
    ) -> AvailMatrix {
        allocate(AllocRequest::new(tasks, tl, cores, ideal))
    }

    fn vd_tasks() -> TaskSet {
        TaskSet::from_triples(&[
            (0.0, 10.0, 8.0),
            (2.0, 18.0, 14.0),
            (4.0, 16.0, 8.0),
            (6.0, 14.0, 4.0),
            (8.0, 20.0, 10.0),
            (12.0, 22.0, 6.0),
        ])
    }

    #[test]
    fn vd_even_final_energy_matches_paper_33_0642() {
        let ts = vd_tasks();
        let tl = Timeline::build(&ts);
        let p = PolynomialPower::cubic();
        let ideal = ideal_schedule(&ts, &p);
        let avail = allocate_even(&ts, &tl, 4);
        let out = build_outcome(&ts, &tl, 4, &p, &ideal, avail);
        assert!(
            (out.final_energy - 33.0642).abs() < 5e-4,
            "E^F1 = {} vs paper 33.0642",
            out.final_energy
        );
        // Paper's final frequencies.
        let expect = [
            8.0 / 9.6,
            14.0 / 15.2,
            8.0 / 11.2,
            4.0 / 7.2,
            10.0 / 11.2,
            6.0 / 9.6,
        ];
        for (i, &e) in expect.iter().enumerate() {
            assert!(
                (out.assignment.freq[i] - e).abs() < 1e-9,
                "task {i}: {} vs {e}",
                out.assignment.freq[i]
            );
        }
    }

    #[test]
    fn vd_der_final_energy_matches_paper_31_8362() {
        let ts = vd_tasks();
        let tl = Timeline::build(&ts);
        let p = PolynomialPower::cubic();
        let ideal = ideal_schedule(&ts, &p);
        let avail = allocate_der(&ts, &tl, 4, &ideal);
        let out = build_outcome(&ts, &tl, 4, &p, &ideal, avail);
        assert!(
            (out.final_energy - 31.8362).abs() < 5e-4,
            "E^F2 = {} vs paper 31.8362",
            out.final_energy
        );
        // DER beats even allocation on this instance, as the paper shows.
        let even = build_outcome(&ts, &tl, 4, &p, &ideal, allocate_even(&ts, &tl, 4));
        assert!(out.final_energy < even.final_energy);
    }

    #[test]
    fn both_final_schedules_are_legal() {
        let ts = vd_tasks();
        let tl = Timeline::build(&ts);
        for p in [PolynomialPower::cubic(), PolynomialPower::paper(3.0, 0.2)] {
            let ideal = ideal_schedule(&ts, &p);
            for avail in [
                allocate_even(&ts, &tl, 4),
                allocate_der(&ts, &tl, 4, &ideal),
            ] {
                let out = build_outcome(&ts, &tl, 4, &p, &ideal, avail);
                validate_schedule(&out.schedule, &ts).assert_legal();
            }
        }
    }

    #[test]
    fn intermediate_schedules_are_legal() {
        let ts = vd_tasks();
        let tl = Timeline::build(&ts);
        let p = PolynomialPower::cubic();
        let ideal = ideal_schedule(&ts, &p);
        for avail in [
            allocate_even(&ts, &tl, 4),
            allocate_der(&ts, &tl, 4, &ideal),
        ] {
            let out = build_outcome(&ts, &tl, 4, &p, &ideal, avail);
            validate_schedule(&out.intermediate_schedule, &ts).assert_legal();
        }
    }

    #[test]
    fn final_improves_on_intermediate() {
        // E^F ≤ E^I (final refinement only re-optimizes frequencies).
        let ts = vd_tasks();
        let tl = Timeline::build(&ts);
        for p in [
            PolynomialPower::cubic(),
            PolynomialPower::paper(3.0, 0.1),
            PolynomialPower::paper(2.0, 0.2),
        ] {
            let ideal = ideal_schedule(&ts, &p);
            for avail in [
                allocate_even(&ts, &tl, 4),
                allocate_der(&ts, &tl, 4, &ideal),
            ] {
                let out = build_outcome(&ts, &tl, 4, &p, &ideal, avail);
                assert!(
                    out.final_energy <= out.intermediate_energy + 1e-9,
                    "p0={} final {} > intermediate {}",
                    p.p0,
                    out.final_energy,
                    out.intermediate_energy
                );
            }
        }
    }

    #[test]
    fn final_schedule_energy_matches_analytic_energy() {
        let ts = vd_tasks();
        let tl = Timeline::build(&ts);
        let p = PolynomialPower::paper(3.0, 0.05);
        let ideal = ideal_schedule(&ts, &p);
        let out = build_outcome(&ts, &tl, 4, &p, &ideal, allocate_der(&ts, &tl, 4, &ideal));
        let sched_energy = out.schedule.energy(&p);
        assert!(
            (sched_energy - out.final_energy).abs() < 1e-6 * (1.0 + out.final_energy),
            "schedule {} vs analytic {}",
            sched_energy,
            out.final_energy
        );
    }

    #[test]
    fn high_static_power_leaves_slack_unused() {
        // With f_crit above the stretch frequency, the final schedule uses
        // less than the available time.
        let ts = TaskSet::from_triples(&[(0.0, 100.0, 1.0)]);
        let tl = Timeline::build(&ts);
        let p = PolynomialPower::paper(2.0, 0.25); // f_crit = 0.5
        let ideal = ideal_schedule(&ts, &p);
        let out = build_outcome(&ts, &tl, 1, &p, &ideal, allocate_even(&ts, &tl, 1));
        assert!((out.assignment.freq[0] - 0.5).abs() < 1e-12);
        let busy = out.schedule.busy_time(0);
        assert!((busy - 2.0).abs() < 1e-9, "busy = {busy}");
        validate_schedule(&out.schedule, &ts).assert_legal();
    }
}
