//! # esched-core
//!
//! The scheduling algorithms of Li & Wu, *"Energy-Aware Scheduling for
//! Aperiodic Tasks on Multi-core Processors"* (ICPP 2014):
//!
//! * [`ideal`] — the unlimited-core ideal case `S^O` (Eq. 19),
//! * [`allocation`] — available-time allocation: light subintervals,
//!   the evenly allocating rule, and Algorithm 2 (DER-based),
//! * [`packing`] — Algorithm 1 (wrap-around collision-free packing),
//! * [`refine`] — intermediate/final schedule construction and the final
//!   frequency setting (Eq. 22-23),
//! * [`even`] / [`der`] — the two methods end-to-end (`S^F1`, `S^F2`),
//! * [`optimal`] — the convex-programming optimum `E^OPT` with schedule
//!   extraction (Theorem 1),
//! * [`yds`] — the YDS optimal uniprocessor baseline,
//! * [`discrete`] — practical discrete-frequency execution and
//!   deadline-miss accounting (Section VI.C),
//! * [`core_count`] — the Section VI.D core-count selection sweep,
//! * [`replan`] — non-clairvoyant event-driven replanning (aperiodic
//!   arrivals not known in advance),
//! * [`nec`] — Normalized Energy Consumption evaluation used by every
//!   experiment,
//! * [`pool`] — the std-only work-stealing pool used for batch jobs and
//!   for intra-instance fan-out of the DER allocator.
//!
//! The pipeline is instrumented with `esched-obs` tracing spans:
//! `der_schedule`/`even_schedule` at INFO, and `timeline_build`,
//! `ideal_schedule`, `allocate_even`/`allocate_der`,
//! `refine_frequencies`, `reclaim_der`, and `quantize_schedule` at
//! DEBUG. All of it is off (one atomic load per call site) unless a
//! subscriber is installed via `esched_obs::trace::init_from_env`
//! (`ESCHED_LOG=debug`, or per-crate like `esched_core=debug,info`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod allocation;
pub mod baselines;
pub mod core_count;
pub mod der;
pub mod discrete;
pub mod even;
pub mod ideal;
pub mod nec;
pub mod optimal;
pub mod packing;
pub mod pool;
pub mod quality;
pub mod reclaim;
pub mod refine;
pub mod replan;
pub mod scratch;
pub mod yds;

pub use allocation::{
    allocate, allocate_even, allocate_work_proportional, reallocate_der_patched,
    repair_der_columns, AllocRequest, AvailMatrix, DerRepairStats, DerStrategy,
    DEFAULT_PARALLEL_THRESHOLD,
};
#[allow(deprecated)] // the forwarders stay exported for downstream migration
pub use allocation::{
    allocate_der, allocate_der_no_redistribution, allocate_der_reference, allocate_der_with,
};
pub use baselines::{partitioned_yds, uniform_frequency, BaselineOutcome};
pub use core_count::{select_core_count, CoreCountChoice, Method};
pub use der::{der_schedule, der_schedule_with};
pub use discrete::{
    best_discrete_split, quantize_schedule, requantize_schedule, two_level_assignment,
    two_level_split, DiscreteOutcome, QuantizePolicy, TwoLevelSplit,
};
pub use even::{even_schedule, even_schedule_with};
pub use ideal::{ideal_schedule, IdealSolution};
pub use nec::{evaluate_nec, evaluate_nec_full, mean_nec, std_nec, NecEvaluation, NecPoint};
pub use optimal::{
    optimal_energy, optimal_energy_in, optimal_energy_in_pool, optimal_energy_with,
    OptimalSolution, Solver,
};
pub use packing::{pack_subinterval, PackError, PackItem};
pub use pool::{Pool, PoolError, ScratchPool};
pub use quality::{analyze, ScheduleQuality, TaskQuality};
pub use reclaim::{no_reclaim_energy, reclaim_der, ReclaimOutcome};
pub use refine::{
    build_outcome, build_outcome_with, final_assignment, final_schedule, final_schedule_with,
    intermediate_schedule, intermediate_schedule_with, HeuristicOutcome,
};
pub use replan::{replan_der, ReplanOutcome};
pub use scratch::Scratch;
pub use yds::{yds_schedule, YdsSolution};
