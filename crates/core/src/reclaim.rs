//! Slack reclamation: scheduling with pessimistic WCECs when actual work
//! runs shorter.
//!
//! The paper's `C_i` is a worst-case execution requirement; real jobs
//! usually finish early. A frequency plan computed for the WCEC then
//! wastes energy — unless the runtime *reclaims* the slack by replanning
//! whenever a task completes ahead of its estimate. This module simulates
//! exactly that, extending [`crate::replan`]'s event loop with completion
//! events driven by hidden actual works:
//!
//! * the scheduler plans with the DER heuristic over *remaining WCEC
//!   estimates*;
//! * execution follows the plan until the next release **or** the instant
//!   some task's hidden actual work is done, whichever comes first;
//! * at that instant the plan is rebuilt without the completed task (and
//!   with updated remaining estimates).
//!
//! Compared in the `ablate` experiment against (a) no reclamation — run
//! the WCEC plan to completion of the actual works — and (b) the
//! clairvoyant lower bound (plan directly for the actual works).

// Indexed loops below walk several parallel arrays at once; iterator
// zips would obscure the numerics. Silence clippy's range-loop lint here.
#![allow(clippy::needless_range_loop)]

use crate::der::der_schedule;
use esched_types::time::EPS;
use esched_types::{PolynomialPower, Schedule, Segment, Task, TaskId, TaskSet};

/// Outcome of a reclamation run.
#[derive(Debug, Clone, PartialEq)]
pub struct ReclaimOutcome {
    /// The executed schedule (actual-work truncated).
    pub schedule: Schedule,
    /// Its energy.
    pub energy: f64,
    /// Planning episodes (releases + early completions).
    pub replans: usize,
    /// Tasks that failed to receive their *actual* work by their deadline.
    pub misses: Vec<TaskId>,
}

/// Run DER scheduling of `tasks` (windows + WCECs) where task `i`'s hidden
/// actual work is `actual[i] ≤ C_i`, reclaiming slack at every early
/// completion.
///
/// # Panics
/// If `actual` has the wrong length or any entry is non-positive or
/// exceeds the task's WCEC.
pub fn reclaim_der(
    tasks: &TaskSet,
    actual: &[f64],
    cores: usize,
    power: &PolynomialPower,
) -> ReclaimOutcome {
    assert_eq!(actual.len(), tasks.len());
    for (i, t) in tasks.iter() {
        assert!(
            actual[i] > 0.0 && actual[i] <= t.wcec * (1.0 + 1e-12),
            "actual[{i}] = {} out of (0, {}]",
            actual[i],
            t.wcec
        );
    }

    let _span = esched_obs::span!(
        esched_obs::Level::Debug,
        "reclaim_der",
        n_tasks = tasks.len(),
        cores = cores,
    );
    let n = tasks.len();
    // Scheduler's belief: remaining WCEC. Ground truth: remaining actual.
    let mut est_remaining: Vec<f64> = tasks.tasks().iter().map(|t| t.wcec).collect();
    let mut act_remaining: Vec<f64> = actual.to_vec();

    let mut releases: Vec<f64> = tasks.tasks().iter().map(|t| t.release).collect();
    esched_types::time::sort_dedup_times(&mut releases);

    let mut schedule = Schedule::new(cores);
    let mut replans = 0usize;
    let mut t_now = releases[0];
    let horizon_end = tasks.latest_deadline();

    // Event loop: plan at t_now, execute to the next release or the first
    // actual completion, repeat. Bounded by 2n events (each event retires a
    // release or a task).
    for _guard in 0..(2 * n + 4) {
        // Active set under the scheduler's beliefs.
        let mut ids: Vec<TaskId> = Vec::new();
        let mut subtasks: Vec<Task> = Vec::new();
        for (i, t) in tasks.iter() {
            if t.release <= t_now + EPS && act_remaining[i] > EPS && t.deadline > t_now + EPS {
                ids.push(i);
                subtasks.push(Task::of(t_now, t.deadline, est_remaining[i].max(EPS)));
            }
        }
        let next_release = releases
            .iter()
            .copied()
            .find(|&r| r > t_now + EPS)
            .unwrap_or(f64::INFINITY);
        if ids.is_empty() {
            if next_release.is_finite() {
                t_now = next_release;
                continue;
            }
            break;
        }
        replans += 1;
        let subset = TaskSet::new(subtasks).expect("validated subtasks");
        let plan = der_schedule(&subset, cores, power);

        // Find the first actual completion inside the plan: walk each
        // task's planned segments in time order accumulating actual work.
        let mut first_completion = f64::INFINITY;
        for (local, &task) in ids.iter().enumerate() {
            let mut need = act_remaining[task];
            for seg in plan.schedule.task_segments(local) {
                let cap = seg.work();
                if cap >= need - EPS {
                    let t_done = seg.interval.start + need / seg.freq;
                    first_completion = first_completion.min(t_done);
                    break;
                }
                need -= cap;
            }
        }
        let t_stop = next_release.min(first_completion).max(t_now + EPS);

        // Execute the plan up to t_stop, truncating per-task at actual
        // completion (a core goes idle once its task's real work is done).
        for seg in plan.schedule.segments() {
            let task = ids[seg.task];
            let start = seg.interval.start.max(t_now);
            let mut end = seg.interval.end.min(t_stop);
            if end - start <= EPS || act_remaining[task] <= EPS {
                continue;
            }
            // Truncate at the task's own completion.
            let max_run = act_remaining[task] / seg.freq;
            end = end.min(start + max_run);
            if end - start <= EPS {
                continue;
            }
            let done = seg.freq * (end - start);
            schedule.push(Segment::new(task, seg.core, start, end, seg.freq));
            act_remaining[task] -= done;
            est_remaining[task] = (est_remaining[task] - done).max(0.0);
        }

        if !t_stop.is_finite() || t_stop >= horizon_end - EPS {
            break;
        }
        t_now = t_stop;
    }

    schedule.coalesce();
    let mut misses: Vec<TaskId> = (0..n).filter(|&i| act_remaining[i] > 1e-6).collect();
    misses.sort_unstable();
    esched_obs::event!(
        esched_obs::Level::Debug,
        "reclaim done",
        replans = replans,
        misses = misses.len(),
    );
    let energy = schedule.energy(power);
    ReclaimOutcome {
        schedule,
        energy,
        replans,
        misses,
    }
}

/// The no-reclamation baseline: run the offline WCEC plan, but each task
/// simply stops (core sleeps) once its actual work is done. Returns the
/// executed energy.
pub fn no_reclaim_energy(
    tasks: &TaskSet,
    actual: &[f64],
    cores: usize,
    power: &PolynomialPower,
) -> f64 {
    assert_eq!(actual.len(), tasks.len());
    let plan = der_schedule(tasks, cores, power);
    let mut remaining = actual.to_vec();
    let mut energy = 0.0;
    // Walk segments per task in time order, truncating at completion.
    for task in 0..tasks.len() {
        for seg in plan.schedule.task_segments(task) {
            if remaining[task] <= EPS {
                break;
            }
            let run = (seg.work().min(remaining[task])) / seg.freq;
            energy += (seg.freq.powf(power.alpha) * power.gamma + power.p0) * run;
            remaining[task] -= seg.freq * run;
        }
    }
    energy
}

#[cfg(test)]
mod tests {
    use super::*;
    use esched_types::validate_schedule;

    fn vd_tasks() -> TaskSet {
        TaskSet::from_triples(&[
            (0.0, 10.0, 8.0),
            (2.0, 18.0, 14.0),
            (4.0, 16.0, 8.0),
            (6.0, 14.0, 4.0),
            (8.0, 20.0, 10.0),
            (12.0, 22.0, 6.0),
        ])
    }

    #[test]
    fn exact_actuals_reduce_to_replanning_energy_scale() {
        // actual = WCEC: nothing completes early; the result completes all
        // work legally.
        let ts = vd_tasks();
        let p = PolynomialPower::cubic();
        let actual: Vec<f64> = ts.tasks().iter().map(|t| t.wcec).collect();
        let out = reclaim_der(&ts, &actual, 4, &p);
        assert!(out.misses.is_empty(), "{:?}", out.misses);
        // Work delivered equals the actual works.
        for (i, &a) in actual.iter().enumerate() {
            let got = out.schedule.work_of(i);
            assert!((got - a).abs() < 1e-6 * (1.0 + a), "task {i}: {got} vs {a}");
        }
    }

    #[test]
    fn reclamation_beats_no_reclamation_when_work_is_half() {
        let ts = vd_tasks();
        let p = PolynomialPower::cubic();
        let actual: Vec<f64> = ts.tasks().iter().map(|t| 0.5 * t.wcec).collect();
        let with = reclaim_der(&ts, &actual, 4, &p);
        let without = no_reclaim_energy(&ts, &actual, 4, &p);
        assert!(with.misses.is_empty());
        assert!(
            with.energy <= without * (1.0 + 1e-9),
            "reclaim {} vs no-reclaim {without}",
            with.energy
        );
        // And the clairvoyant bound (planning directly for actuals) is
        // below both.
        let clair_tasks = TaskSet::new(
            ts.tasks()
                .iter()
                .zip(&actual)
                .map(|(t, &a)| esched_types::Task::of(t.release, t.deadline, a))
                .collect(),
        )
        .unwrap();
        let clair = der_schedule(&clair_tasks, 4, &p).final_energy;
        assert!(
            clair <= with.energy * (1.0 + 1e-6),
            "clairvoyant {clair} vs reclaim {}",
            with.energy
        );
    }

    #[test]
    fn schedule_has_no_collisions_and_respects_windows() {
        let ts = vd_tasks();
        let p = PolynomialPower::paper(3.0, 0.1);
        let actual: Vec<f64> = ts
            .tasks()
            .iter()
            .enumerate()
            .map(|(k, t)| t.wcec * (0.4 + 0.1 * (k % 6) as f64))
            .collect();
        let out = reclaim_der(&ts, &actual, 4, &p);
        assert!(out.misses.is_empty(), "{:?}", out.misses);
        // Work-completion violations are expected (we deliver only the
        // actual works); everything physical must hold.
        let report = validate_schedule(&out.schedule, &ts);
        for v in &report.violations {
            assert!(
                matches!(v, esched_types::Violation::Underserved { .. }),
                "physical violation: {v:?}"
            );
        }
        // Delivered work equals actual work per task.
        for (i, &a) in actual.iter().enumerate() {
            let got = out.schedule.work_of(i);
            assert!((got - a).abs() < 1e-6 * (1.0 + a), "task {i}: {got} vs {a}");
        }
    }

    #[test]
    #[should_panic(expected = "out of")]
    fn rejects_actual_above_wcec() {
        let ts = vd_tasks();
        let mut actual: Vec<f64> = ts.tasks().iter().map(|t| t.wcec).collect();
        actual[0] *= 2.0;
        let _ = reclaim_der(&ts, &actual, 4, &PolynomialPower::cubic());
    }
}
