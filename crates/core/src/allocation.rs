//! Available-execution-time allocation (Sections V.B and V.C).
//!
//! Both heuristics share the same skeleton:
//!
//! * **lightly overlapped** subintervals (`n_j ≤ m`): every overlapping
//!   task is valid to occupy a core for the whole subinterval
//!   (Observation 2) — allocate `Δ_j` to each;
//! * **heavily overlapped** subintervals (`n_j > m`): the `m·Δ_j` core
//!   time must be divided. The *evenly allocating* rule gives each task
//!   `m·Δ_j/n_j`; the *DER-based* rule (Algorithm 2) divides it in
//!   proportion to each task's Desired Execution Requirement, greatest
//!   first, capping shares at `Δ_j` and redistributing the remainder.
//!
//! Algorithm 2's cap-and-redistribute loop is a water-filling problem:
//! the capped tasks form a prefix of the DER-descending order, and every
//! uncapped task's share is its DER times one common multiplier λ. The
//! production path exploits that closed form — a bounded head scan plus
//! one multiply pass — while the round-based loop survives as
//! [`DerStrategy::Reference`], the ground truth the differential harness
//! replays against (set `ESCHED_DER_REFERENCE=1` to route the whole
//! battery through it).
//!
//! All strategies enter through one door: [`allocate`] with an
//! [`AllocRequest`], which carries the strategy, an optional [`Scratch`]
//! arena, and an optional [`Pool`] for fanning heavy column ranges of
//! *one* instance across workers. The hot loops are written as flat-slice
//! passes over the subinterval-major CSR so the autovectorizer can chew
//! on them; the parallel path partitions columns into cell-balanced
//! chunks whose boundaries depend only on the CSR shape, so the output is
//! byte-identical at any worker count.
//!
//! The result is an [`AvailMatrix`] of available times `a_{i,j}` — an
//! upper bound on how long task `i` may occupy a core during subinterval
//! `j`. Final frequencies and schedules are derived from it in
//! [`crate::refine`].

use std::ops::Range;

use crate::ideal::IdealSolution;
use crate::pool::{Pool, ScratchPool};
use crate::scratch::Scratch;
use esched_obs::{event, metric_counter, span, Level};
use esched_subinterval::Timeline;
use esched_types::time::{Interval, EPS};
use esched_types::{TaskId, TaskSet};

/// Number of heavy subintervals (`n_j > m`) — used for span fields only,
/// so it is computed lazily inside the `span!` guard.
fn heavy_count(timeline: &Timeline, cores: usize) -> usize {
    timeline.heavy_iter(cores).count()
}

/// Available execution time per (task, subinterval) pair.
///
/// Stored **subinterval-major** (CSR mirroring the timeline's overlap
/// lists): column `j` is one contiguous run aligned with
/// `timeline.get(j).overlapping`. The allocators fill whole columns and
/// the refine loops read whole columns, so both walk the slab
/// sequentially; the task-major layout this replaced made every one of
/// those accesses a page-sized stride (one TLB entry per task touched
/// per subinterval), which dominated the DER allocator's profile.
#[derive(Debug, Clone, PartialEq)]
pub struct AvailMatrix {
    /// Cell values; column `j` is `data[col_offsets[j]..col_offsets[j+1]]`.
    data: Vec<f64>,
    /// Task id of each cell — a copy of the timeline's (id-sorted)
    /// overlap lists, so by-id lookups don't need the timeline.
    ids: Vec<TaskId>,
    /// Slab offset of each column; `n_subintervals + 1` entries.
    col_offsets: Vec<usize>,
    /// `(start, end)` subinterval span of each task.
    spans: Vec<(usize, usize)>,
    /// `(start, end)` time bounds of each column — lets the online repair
    /// path match columns of an old allocation against a patched timeline
    /// without keeping the old timeline alive.
    col_bounds: Vec<(f64, f64)>,
}

impl AvailMatrix {
    /// All-zero matrix shaped by `timeline`.
    pub fn zeros(timeline: &Timeline, n_tasks: usize) -> Self {
        let mut col_offsets = Vec::with_capacity(timeline.len() + 1);
        let mut col_bounds = Vec::with_capacity(timeline.len());
        let mut ids = Vec::new();
        col_offsets.push(0);
        for sub in timeline.subintervals() {
            ids.extend_from_slice(&sub.overlapping);
            col_offsets.push(ids.len());
            col_bounds.push((sub.interval.start, sub.interval.end));
        }
        let spans = (0..n_tasks)
            .map(|i| {
                let r = timeline.span(i);
                (r.start, r.end)
            })
            .collect();
        Self {
            data: vec![0.0; ids.len()],
            ids,
            col_offsets,
            spans,
            col_bounds,
        }
    }

    /// Slab index of cell `(task, j)`, if the task overlaps `j`.
    fn cell(&self, task: TaskId, j: usize) -> Option<usize> {
        let col = self.col_offsets[j]..self.col_offsets[j + 1];
        self.ids[col.clone()]
            .binary_search(&task)
            .ok()
            .map(|pos| col.start + pos)
    }

    /// Available time of task `i` during subinterval `j` (0 when the
    /// window does not cover `j`).
    pub fn get(&self, task: TaskId, j: usize) -> f64 {
        self.cell(task, j).map_or(0.0, |c| self.data[c])
    }

    /// Set the available time of task `i` during subinterval `j`.
    ///
    /// # Panics
    /// If the task's window does not cover `j`.
    pub fn set(&mut self, task: TaskId, j: usize, value: f64) {
        match self.cell(task, j) {
            Some(c) => self.data[c] = value,
            None => panic!("task {task} not available in subinterval {j}"),
        }
    }

    /// Column `j` as a mutable slice aligned with the timeline's overlap
    /// list for `j` — the allocators' sequential write path.
    fn col_mut(&mut self, j: usize) -> &mut [f64] {
        let col = self.col_offsets[j]..self.col_offsets[j + 1];
        &mut self.data[col]
    }

    /// Column `j` aligned with the timeline's overlap list for `j`.
    pub(crate) fn col(&self, j: usize) -> &[f64] {
        &self.data[self.col_offsets[j]..self.col_offsets[j + 1]]
    }

    /// Total available time `A_i = Σ_j a_{i,j}` of task `i`.
    pub fn total(&self, task: TaskId) -> f64 {
        esched_types::time::compensated_sum(self.row(task).map(|(_, v)| v))
    }

    /// Totals for every task — one sequential pass over the slab, with
    /// per-task Neumaier compensation (matching
    /// [`esched_types::time::compensated_sum`]).
    ///
    /// The running sums and corrections live in two parallel arrays (the
    /// two-accumulator split), and the correction term is a select over
    /// two precomputed candidates rather than a branch: `|s| ≥ |v|` is
    /// data-dependent and near-random across cells, so a branch here
    /// mispredicts constantly on large slabs while the select form costs
    /// one cmov.
    pub fn totals(&self) -> Vec<f64> {
        let n = self.spans.len();
        let mut sum = vec![0.0_f64; n];
        let mut comp = vec![0.0_f64; n];
        for (&i, &v) in self.ids.iter().zip(self.data.iter()) {
            let s = sum[i];
            let t = s + v;
            let big = (s - t) + v;
            let small = (v - t) + s;
            comp[i] += if s.abs() >= v.abs() { big } else { small };
            sum[i] = t;
        }
        sum.iter().zip(comp.iter()).map(|(s, c)| s + c).collect()
    }

    /// Number of tasks (rows).
    pub fn task_count(&self) -> usize {
        self.spans.len()
    }

    /// Number of columns (subintervals).
    pub fn column_count(&self) -> usize {
        self.col_bounds.len()
    }

    /// Task ids of column `j`, ascending (the overlap list it was shaped
    /// from).
    fn col_ids(&self, j: usize) -> &[TaskId] {
        &self.ids[self.col_offsets[j]..self.col_offsets[j + 1]]
    }

    /// Iterate `(subinterval, avail)` pairs of one task's row. A by-id
    /// lookup per spanned subinterval — fine off the hot path; bulk
    /// consumers should walk columns instead.
    pub fn row(&self, task: TaskId) -> impl Iterator<Item = (usize, f64)> + '_ {
        let (a, b) = self.spans[task];
        (a..b).map(move |j| {
            let c = self.cell(task, j).expect("span covers j");
            (j, self.data[c])
        })
    }
}

/// Fill every *light* subinterval of `avail`: each overlapping task gets
/// the full `Δ_j` (Observation 2). Heavy subintervals are left untouched.
fn allocate_light(timeline: &Timeline, cores: usize, avail: &mut AvailMatrix) {
    for j in timeline.light_iter(cores) {
        let delta = timeline.get(j).delta();
        avail.col_mut(j).fill(delta);
    }
}

/// The evenly allocating method (Section V.B): heavy subintervals divide
/// core time equally, `a_{i,j} = m·Δ_j / n_j`.
pub fn allocate_even(tasks: &TaskSet, timeline: &Timeline, cores: usize) -> AvailMatrix {
    let _span = span!(
        Level::Debug,
        "allocate_even",
        n_tasks = tasks.len(),
        n_subintervals = timeline.len(),
        n_heavy = heavy_count(timeline, cores),
    );
    let mut avail = AvailMatrix::zeros(timeline, tasks.len());
    allocate_light(timeline, cores, &mut avail);
    for j in timeline.heavy_iter(cores) {
        let sub = timeline.get(j);
        let share = cores as f64 * sub.delta() / sub.overlap_count() as f64;
        avail.col_mut(j).fill(share);
    }
    avail
}

/// Desired Execution Requirement of task `i` during subinterval `j`
/// (Eq. 24): `c(τ) = |U_i^O ∩ [t_j, t_{j+1}]| · f_i^O`.
pub fn der(ideal: &IdealSolution, task: TaskId, timeline: &Timeline, j: usize) -> f64 {
    ideal.exec_overlap(task, &timeline.get(j).interval) * ideal.freq[task]
}

/// Canonical water-filling order: weight descending, task id ascending on
/// ties — the deterministic order Algorithm 2 considers tasks in.
fn by_weight_desc(a: &(TaskId, f64), b: &(TaskId, f64)) -> std::cmp::Ordering {
    b.1.partial_cmp(&a.1)
        .expect("finite weights")
        .then(a.0.cmp(&b.0))
}

/// Per-call counters shared by the water-filling implementations.
#[derive(Debug, Default, Clone, Copy)]
struct WaterfillStats {
    /// Tasks whose proportional share exceeded `Δ_j` and was capped.
    capped: u64,
    /// Tasks served by the degenerate even-split fallback.
    even: u64,
}

/// `true` when `ESCHED_DER_REFERENCE` (non-empty, not `"0"`) pins the
/// process to the round-based reference allocator. Read once: the
/// differential battery flips it to drive every downstream consumer —
/// engine, experiments, fuzz — through the reference path.
fn reference_forced() -> bool {
    use std::sync::OnceLock;
    static FLAG: OnceLock<bool> = OnceLock::new();
    *FLAG.get_or_init(|| {
        std::env::var_os("ESCHED_DER_REFERENCE").is_some_and(|v| !v.is_empty() && v != "0")
    })
}

/// Below this size the fast path delegates to the reference loop: the
/// selection machinery only pays once the uncapped bulk dominates.
const WATERFILL_FAST_CUTOFF: usize = 16;

/// Default [`AllocRequest::with_parallel_threshold`]: instances with
/// fewer subintervals than this stay serial even when a pool is attached.
/// At paper scale (tens of columns) the fan-out's chunk bookkeeping and
/// thread spawns cost more than the columns themselves.
pub const DEFAULT_PARALLEL_THRESHOLD: usize = 256;

/// Target cell count per parallel chunk. Chunk boundaries are a pure
/// function of the CSR shape (never of the worker count), which is what
/// keeps pooled outputs byte-identical at 1/4/8 workers.
const PAR_CHUNK_CELLS: usize = 16_384;

/// The even-split tail of a canonically sorted weight list: the maximal
/// suffix whose weight sum is ≤ `EPS`. Proportional shares carry no
/// signal there (the denominator would be ~zero), so both water-filling
/// implementations switch to an even split of whatever pool remains — a
/// starved task would otherwise end up with zero total availability and
/// no finite final frequency. Returns `(start index, suffix sum)`. The
/// backward accumulation order is part of the contract: the fast path
/// reproduces it bit-for-bit on the same elements, so both
/// implementations agree exactly on where the tail begins.
fn even_split_tail<T>(sorted: &[T], weight: impl Fn(&T) -> f64) -> (usize, f64) {
    let mut start = sorted.len();
    let mut sum = 0.0;
    while start > 0 {
        let s = sum + weight(&sorted[start - 1]);
        if s > EPS {
            break;
        }
        sum = s;
        start -= 1;
    }
    (start, sum)
}

/// Round-based Algorithm 2 inner loop (the reference implementation):
/// walk the canonically sorted weights greatest-first, offer each task
/// the fraction `w/W_rem` of the remaining pool, cap the share at
/// `delta`, and let the shrinking pool and weight total redistribute
/// each cap's surplus over the tasks that follow. Full `O(n log n)`
/// sort plus a serial division chain. `suffix` is a scratch buffer for
/// the remaining-weight sums.
///
/// `W_rem` is a backward-accumulated suffix sum, not `W_total − prefix`:
/// subtracting a near-total prefix from the grand total cancels
/// catastrophically once caps have consumed almost all weight, and the
/// resulting noise in the share denominators is what would push the two
/// implementations apart. Summing the (positive) remaining weights
/// directly keeps every denominator accurate relative to itself, so the
/// fast path's frozen λ agrees with the reference's rolling ratio to a
/// few ULPs — far inside `WORK_TOL`.
///
/// On return `entries` is sorted canonically and each weight slot holds
/// the task's allocation.
fn waterfill_reference(
    entries: &mut [(TaskId, f64)],
    delta: f64,
    cores: usize,
    stats: &mut WaterfillStats,
    suffix: &mut Vec<f64>,
) {
    let n = entries.len();
    entries.sort_unstable_by(by_weight_desc);
    suffix.clear();
    suffix.resize(n + 1, 0.0);
    for k in (0..n).rev() {
        suffix[k] = suffix[k + 1] + entries[k].1;
    }
    // The even-split tail: suffix sums are non-increasing, so the tail is
    // exactly the positions whose remaining-weight total is ≤ EPS.
    let tail_start = suffix[..n].partition_point(|&s| s > EPS);
    let mut pool = cores as f64 * delta;
    for (k, e) in entries[..tail_start].iter_mut().enumerate() {
        let w = e.1;
        let alloc = if pool <= EPS {
            0.0
        } else {
            let share = w * pool / suffix[k];
            if share > delta {
                stats.capped += 1;
            }
            share.min(delta)
        };
        pool -= alloc;
        e.1 = alloc;
    }
    let mut remaining = n - tail_start;
    for e in entries[tail_start..].iter_mut() {
        let alloc = if pool <= EPS {
            0.0
        } else {
            stats.even += 1;
            (pool / remaining as f64).min(delta)
        };
        pool -= alloc;
        remaining -= 1;
        e.1 = alloc;
    }
}

/// Sort-free water-filling over flat parallel slices: the same
/// allocation as [`waterfill_reference`] in `O(n + m log m)`. Caps
/// consume `Δ_j` each from an `m·Δ_j` pool, so the capped prefix and the
/// crossover live in the `m + 2` largest weights — a bounded insertion
/// scan pulls that head without permuting the input, a linear scan finds
/// the crossover and freezes `λ = pool / W_rem`, and a single
/// multiply-by-λ pass prices every remaining task at once, replacing the
/// reference's full sort and serial division chain.
///
/// Cap and tail decisions reuse the reference's exact arithmetic (same
/// weight total, same prefix sums, same pool updates, same backward tail
/// accumulation), so the two implementations take identical branches;
/// the λ freeze itself only moves shares at rounding scale, far inside
/// `WORK_TOL`.
///
/// The scalar outputs; the head and tiny buffers (canonically ordered)
/// are left in the caller-provided vectors for the emission pass.
struct WaterfillPlan {
    /// Start of the even-split tail within the tiny buffer.
    tiny_tail_start: usize,
    /// Frozen multiplier `λ = pool / W_rem`; 0 when the pool died first.
    lam: f64,
    /// Capped head prefix length.
    caps: usize,
    /// Pool remaining at the tail boundary: λ·(tail weight), or whatever
    /// was left when the scan stopped without a crossover. The
    /// reference's sequential subtraction lands on the same value up to
    /// rounding, far inside WORK_TOL either side of the EPS gate.
    tail_pool: f64,
}

/// `overlap_len(e, iv) * freq` with plain compare-selects instead of the
/// NaN-propagating `f64::max`/`f64::min` — identical for the finite
/// intervals the planner stages (a debug assertion downstream enforces
/// finiteness), and free of the unordered-compare fixup chains IEEE
/// max/min lowers to, which dominate the staging gather otherwise.
#[inline(always)]
fn staged_weight(e: &Interval, iv: &Interval, freq: f64) -> f64 {
    let lo = if e.start > iv.start {
        e.start
    } else {
        iv.start
    };
    let hi = if e.end < iv.end { e.end } else { iv.end };
    let len = hi - lo;
    (if len > 0.0 { len } else { 0.0 }) * freq
}

/// [`staged_weight`] over a packed `[exec.start, exec.end, freq]` record
/// (see [`Scratch::packed`]) — the bulk gather's form.
#[inline(always)]
fn packed_weight(e: &[f64; 3], iv: &Interval) -> f64 {
    let lo = if e[0] > iv.start { e[0] } else { iv.start };
    let hi = if e[1] < iv.end { e[1] } else { iv.end };
    let len = hi - lo;
    (if len > 0.0 { len } else { 0.0 }) * e[2]
}

/// Index of the canonically-last (smallest weight, greatest id) entry of
/// an unsorted head — the eviction candidate. `m + 2` entries, so a
/// plain linear scan.
#[inline]
fn head_worst(head: &[(usize, TaskId, f64)]) -> usize {
    let mut at = 0usize;
    for (k, h) in head.iter().enumerate().skip(1) {
        let w = head[at];
        if h.2 < w.2 || (h.2 == w.2 && h.1 > w.1) {
            at = k;
        }
    }
    at
}

#[allow(clippy::too_many_arguments)] // flat hot-path plumbing; the public surface is `allocate`
fn waterfill_plan(
    ids: &[TaskId],
    w: &[f64],
    delta: f64,
    cores: usize,
    stats: &mut WaterfillStats,
    suffix: &mut Vec<f64>,
    head: &mut Vec<(usize, TaskId, f64)>,
    tiny: &mut [(usize, f64)],
) -> WaterfillPlan {
    let n = w.len();
    let k_nth = cores + 1;
    // Fast path first: one branch-free four-lane pass computes the column
    // total and maximum (lane assignment is a pure function of cell
    // position, so the folded bits are identical wherever this plan
    // runs). If even the heaviest task's proportional share stays within
    // `Δ_j` — the overwhelmingly common case on large instances — the cap
    // scan is a no-op, λ is just `pool / total`, and the top-`(m + 2)`
    // head is never needed: emission reduces to the bulk multiply-min
    // plus the even-split tail.
    let (mut s0, mut s1, mut s2, mut s3) = (0.0f64, 0.0f64, 0.0f64, 0.0f64);
    let (mut m0, mut m1, mut m2, mut m3) = (0.0f64, 0.0f64, 0.0f64, 0.0f64);
    let mut quads = w.chunks_exact(4);
    for q in &mut quads {
        s0 += q[0];
        s1 += q[1];
        s2 += q[2];
        s3 += q[3];
        m0 = if q[0] > m0 { q[0] } else { m0 };
        m1 = if q[1] > m1 { q[1] } else { m1 };
        m2 = if q[2] > m2 { q[2] } else { m2 };
        m3 = if q[3] > m3 { q[3] } else { m3 };
    }
    for &v in quads.remainder() {
        s0 += v;
        m0 = if v > m0 { v } else { m0 };
    }
    let total = (s0 + s1) + (s2 + s3);
    let m01 = if m0 > m1 { m0 } else { m1 };
    let m23 = if m2 > m3 { m2 } else { m3 };
    let wmax = if m01 > m23 { m01 } else { m23 };
    debug_assert!(total.is_finite(), "finite weights");
    // Canonically order the tail candidates; all-positive workloads have
    // none and skip this.
    tiny.sort_unstable_by(|a, b| {
        b.1.partial_cmp(&a.1)
            .expect("finite weights")
            .then(ids[a.0].cmp(&ids[b.0]))
    });
    let (tiny_tail_start, tail_sum) = even_split_tail(tiny, |e| e.1);
    let n_nontail = n - (tiny.len() - tiny_tail_start);
    let pool = cores as f64 * delta;
    if n_nontail == 0 || pool <= EPS {
        // Degenerate column (everything is tail, or no capacity): the cap
        // scan would resolve to λ = 0 with the whole pool left for the
        // even split.
        head.clear();
        return WaterfillPlan {
            tail_pool: pool,
            lam: 0.0,
            caps: 0,
            tiny_tail_start,
        };
    }
    if wmax * pool / total <= delta {
        head.clear();
        let lam = pool / total;
        return WaterfillPlan {
            tail_pool: lam * tail_sum,
            lam,
            caps: 0,
            tiny_tail_start,
        };
    }
    // Some share crosses `Δ_j`, so the capped prefix matters: one pass
    // over the staged weights does two jobs — track the `m + 2`
    // canonically-first entries (`head`, kept UNSORTED: an admitted
    // element overwrites the worst slot in place and a bounded rescan
    // refreshes the worst, so no insertion shifts the others) and
    // accumulate the weight staying outside the head (`rem_weight`:
    // evicted or never-admitted elements — all positive adds, so the
    // share denominators stay accurate relative to themselves, same as
    // the reference's suffix accumulation). Ids only break exact ties,
    // and the admit/evict sequence — hence the `rem_weight` summation
    // order — is identical to a sorted head's.
    head.clear();
    for p in 0..=k_nth {
        debug_assert!(w[p].is_finite(), "finite weights");
        head.push((p, ids[p], w[p]));
    }
    let mut worst_at = head_worst(head);
    let (mut worst_id, mut worst_w) = (head[worst_at].1, head[worst_at].2);
    let mut rem_weight = 0.0;
    for p in k_nth + 1..n {
        let (id, wv) = (ids[p], w[p]);
        debug_assert!(wv.is_finite(), "finite weights");
        if !(wv > worst_w || (wv == worst_w && id < worst_id)) {
            rem_weight += wv;
            continue;
        }
        rem_weight += worst_w;
        head[worst_at] = (p, id, wv);
        worst_at = head_worst(head);
        (worst_id, worst_w) = (head[worst_at].1, head[worst_at].2);
    }
    waterfill_plan_finish(ids, n, rem_weight, delta, cores, stats, suffix, head, tiny)
}

/// Turn a completed head scan into a [`WaterfillPlan`]: canonicalize the
/// head, build its suffix sums, order the ≤ EPS tail, and run the
/// cap-crossover scan. Only the capping branch of the planner above ends
/// up here — the no-cap fast path never materializes a head.
#[allow(clippy::too_many_arguments)] // flat hot-path plumbing; the public surface is `allocate`
fn waterfill_plan_finish(
    ids: &[TaskId],
    n: usize,
    rem_weight: f64,
    delta: f64,
    cores: usize,
    stats: &mut WaterfillStats,
    suffix: &mut Vec<f64>,
    head: &mut [(usize, TaskId, f64)],
    tiny: &mut [(usize, f64)],
) -> WaterfillPlan {
    let k_nth = cores + 1;
    debug_assert_eq!(head.len(), k_nth + 1);
    // Suffix sums, the cap scan, and emission all expect the canonical
    // (weight descending, id ascending) order, so sort the bounded head
    // once; overlap ids are unique, making the order total.
    head.sort_unstable_by(|a, b| {
        b.2.partial_cmp(&a.2)
            .expect("finite weights")
            .then(a.1.cmp(&b.1))
    });
    suffix.clear();
    suffix.resize(k_nth + 2, 0.0);
    suffix[k_nth + 1] = rem_weight;
    for k in (0..=k_nth).rev() {
        suffix[k] = suffix[k + 1] + head[k].2;
    }
    // Canonically order the tail candidates; all-positive workloads have
    // none and skip this.
    tiny.sort_unstable_by(|a, b| {
        b.1.partial_cmp(&a.1)
            .expect("finite weights")
            .then(ids[a.0].cmp(&ids[b.0]))
    });
    let (tiny_tail_start, tail_sum) = even_split_tail(tiny, |e| e.1);
    let n_nontail = n - (tiny.len() - tiny_tail_start);

    // Cap-crossover scan over the canonical head, with the reference's
    // exact branch arithmetic.
    let mut pool = cores as f64 * delta;
    let mut caps = 0usize;
    let mut lambda = None;
    while caps < n_nontail.min(k_nth + 1) && pool > EPS {
        let wv = head[caps].2;
        let rem = suffix[caps];
        if wv * pool / rem <= delta {
            lambda = Some(pool / rem);
            break;
        }
        stats.capped += 1;
        pool -= delta;
        caps += 1;
    }
    // At most m−1 caps fit before the crossover, so the scan always
    // resolves within the head (or exhausts the pool / non-tail).
    debug_assert!(
        lambda.is_some() || pool <= EPS || caps == n_nontail,
        "cap scan ran past the head"
    );
    WaterfillPlan {
        tail_pool: match lambda {
            Some(l) => l * tail_sum,
            None => pool,
        },
        lam: lambda.unwrap_or(0.0),
        caps,
        tiny_tail_start,
    }
}

/// Production emission: water-fill one heavy subinterval's staged flat
/// weights and write the allocations straight into its `AvailMatrix`
/// column. `ids`/`w`/`cells` are parallel slices in overlap order, so
/// the bulk pass is one branch-free fused multiply-min per cell —
/// sequential loads and stores the autovectorizer turns into packed
/// `mul`/`min`; the bounded head and the even-split tail are overwritten
/// after it, in that order. Falls back to [`waterfill_reference`] below
/// the cutoff or under `ESCHED_DER_REFERENCE`; the sort loses positions,
/// so that path maps task ids back through `ids`.
///
/// Precondition: `scratch.wf_tiny` holds the `(position, weight)` pairs
/// with weight ≤ `EPS`, ascending by position — the staging loop collects
/// them while its gather loads are in flight, which keeps the near-zero
/// check out of the planner's hot scan.
fn waterfill_into_flat(
    ids: &[TaskId],
    w: &[f64],
    delta: f64,
    cores: usize,
    stats: &mut WaterfillStats,
    scratch: &mut Scratch,
    cells: &mut [f64],
) {
    let n = w.len();
    debug_assert_eq!(cells.len(), n);
    debug_assert_eq!(ids.len(), n);
    debug_assert!(
        scratch.wf_tiny.iter().map(|e| e.0).eq(w
            .iter()
            .enumerate()
            .filter(|&(_, &wv)| wv <= EPS)
            .map(|(p, _)| p)),
        "staged tiny candidates out of sync with the weight slice"
    );
    if reference_forced() || n <= WATERFILL_FAST_CUTOFF || cores + 1 >= n {
        let pairs = &mut scratch.ders;
        pairs.clear();
        pairs.extend(ids.iter().copied().zip(w.iter().copied()));
        waterfill_reference(pairs, delta, cores, stats, &mut scratch.suffix);
        for &(i, alloc) in pairs.iter() {
            let pos = ids
                .binary_search(&i)
                .expect("entry task is in the overlap list");
            cells[pos] = alloc;
        }
        return;
    }
    let plan = waterfill_plan(
        ids,
        w,
        delta,
        cores,
        stats,
        &mut scratch.suffix,
        &mut scratch.wf_head,
        &mut scratch.wf_tiny,
    );
    waterfill_emit(
        &plan,
        w,
        delta,
        &scratch.wf_head,
        &scratch.wf_tiny,
        stats,
        cells,
    );
}

/// Write one planned column into its value slab: the branch-free bulk
/// multiply-min pass, then the bounded head (caps first), then the
/// even-split tail, in that order.
fn waterfill_emit(
    plan: &WaterfillPlan,
    w: &[f64],
    delta: f64,
    head: &[(usize, TaskId, f64)],
    tiny: &[(usize, f64)],
    stats: &mut WaterfillStats,
    cells: &mut [f64],
) {
    let lam = plan.lam;
    // Compare-select rather than `f64::min`: same value for the finite
    // products here, but it lowers to a bare packed `min` without the
    // NaN fixup blend.
    for (c, &wv) in cells.iter_mut().zip(w.iter()) {
        let v = wv * lam;
        *c = if v < delta { v } else { delta };
    }
    for (k, &(p, _, wv)) in head.iter().enumerate() {
        let v = wv * lam;
        cells[p] = if k < plan.caps || v >= delta {
            delta
        } else {
            v
        };
    }
    let tail = &tiny[plan.tiny_tail_start..];
    let mut tpool = plan.tail_pool;
    let mut remaining = tail.len();
    for &(idx, _) in tail {
        let alloc = if tpool <= EPS {
            0.0
        } else {
            stats.even += 1;
            (tpool / remaining as f64).min(delta)
        };
        tpool -= alloc;
        remaining -= 1;
        cells[idx] = alloc;
    }
}

/// One heavy column, end to end: gather the column's DER weights from the
/// packed per-task records, stage the ≤ EPS tail candidates, and
/// water-fill into the value slab. Every rounding step goes through
/// [`waterfill_into_flat`], the same routine the staged callers
/// (`repair_der_columns`, work-proportional refinement) use — the bulk
/// path and a single-column repair are bit-identical by construction.
#[allow(clippy::too_many_arguments)] // flat hot-path plumbing; the public surface is `allocate`
fn waterfill_gather_column(
    ids: &[TaskId],
    packed: &[[f64; 3]],
    iv: &Interval,
    delta: f64,
    cores: usize,
    stats: &mut WaterfillStats,
    scratch: &mut Scratch,
    cells: &mut [f64],
) {
    let n = ids.len();
    debug_assert_eq!(cells.len(), n);
    let mut der_w = std::mem::take(&mut scratch.der_w);
    // The gather is the only random-access pass per column, so keep its
    // loop minimal: a trusted-len extend (no per-cell capacity check)
    // reading one packed record per cell. The ≤ EPS tail candidates are
    // then collected from the staged weights while they are still in L1.
    der_w.clear();
    der_w.extend(ids.iter().map(|&i| packed_weight(&packed[i], iv)));
    scratch.wf_tiny.clear();
    scratch.wf_tiny.extend(
        der_w
            .iter()
            .enumerate()
            .filter(|&(_, &wv)| wv <= EPS)
            .map(|(p, &wv)| (p, wv)),
    );
    waterfill_into_flat(ids, &der_w, delta, cores, stats, scratch, cells);
    scratch.der_w = der_w;
}

/// Fill columns `cols` of a zeroed slab: light columns get `Δ_j`
/// outright, heavy columns stage their DER weights flat and water-fill.
/// `slab` is `data[col_offsets[cols.start]..col_offsets[cols.end]]` and
/// `slab_base = col_offsets[cols.start]`, so the same body serves the
/// serial whole-matrix pass and one parallel chunk. Fusing light and
/// heavy into a single ascending walk (instead of the old two-iterator
/// split) keeps the slab writes sequential.
#[allow(clippy::too_many_arguments)] // flat hot-path plumbing; the public surface is `allocate`
fn fill_columns(
    timeline: &Timeline,
    cores: usize,
    packed: &[[f64; 3]],
    cols: Range<usize>,
    slab: &mut [f64],
    slab_base: usize,
    col_offsets: &[usize],
    scratch: &mut Scratch,
    stats: &mut WaterfillStats,
) {
    for j in cols {
        let cells = &mut slab[col_offsets[j] - slab_base..col_offsets[j + 1] - slab_base];
        let sub = timeline.get(j);
        if !sub.is_heavy(cores) {
            cells.fill(sub.delta());
            continue;
        }
        waterfill_gather_column(
            &sub.overlapping,
            packed,
            &sub.interval,
            sub.delta(),
            cores,
            stats,
            scratch,
            cells,
        );
    }
}

/// Fan one instance's columns across the pool: partition into chunks of
/// ~[`PAR_CHUNK_CELLS`] cells (boundaries depend only on the CSR shape),
/// split the value slab at the chunk boundaries, and fill each chunk as
/// an independent job. Every column's allocation is a pure function of
/// `(overlap ids, staged DERs, Δ_j, cores)` and every job writes a
/// disjoint slab, so the matrix is bitwise identical to the serial pass
/// at any worker count; stats are summed in submission order.
fn fill_columns_parallel(
    timeline: &Timeline,
    cores: usize,
    packed: &[[f64; 3]],
    avail: &mut AvailMatrix,
    pool: &Pool,
    stats: &mut WaterfillStats,
) {
    let n_cols = timeline.len();
    let col_offsets = &avail.col_offsets;
    let mut chunks: Vec<Range<usize>> = Vec::new();
    let mut start = 0usize;
    for j in 0..n_cols {
        if col_offsets[j + 1] - col_offsets[start] >= PAR_CHUNK_CELLS {
            chunks.push(start..j + 1);
            start = j + 1;
        }
    }
    if start < n_cols {
        chunks.push(start..n_cols);
    }
    metric_counter!("esched.core.der_parallel_chunks").add(chunks.len() as u64);

    let mut jobs = Vec::with_capacity(chunks.len());
    let mut rest: &mut [f64] = &mut avail.data;
    let mut cut = 0usize;
    for range in chunks {
        let end = col_offsets[range.end];
        let (slab, tail) = rest.split_at_mut(end - cut);
        rest = tail;
        jobs.push((range, cut, slab));
        cut = end;
    }
    let results = pool.batch_map(jobs, |scratch, (range, base, slab)| {
        let mut local = WaterfillStats::default();
        fill_columns(
            timeline,
            cores,
            packed,
            range,
            slab,
            base,
            col_offsets,
            scratch,
            &mut local,
        );
        local
    });
    for r in results {
        match r {
            Ok(s) => {
                stats.capped += s.capped;
                stats.even += s.even;
            }
            // Serial allocation lets panics unwind to the caller; keep
            // the same contract when the work went through the pool.
            Err(e) => panic!("intra-instance allocation chunk failed: {e}"),
        }
    }
}

/// Which implementation of the heavy-subinterval division [`allocate`]
/// runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DerStrategy {
    /// The production closed-form water-fill (bounded head scan + one
    /// multiply pass), vectorized and pool-parallelizable.
    #[default]
    Waterfill,
    /// The round-based Algorithm 2 loop, unconditionally — the ground
    /// truth the differential harness compares against (shares agree to
    /// `WORK_TOL`), and the serial scalar baseline of the large-n
    /// benchmarks. Publishes no metrics, so differential runs don't
    /// double-count.
    Reference,
    /// Ablation: proportional shares against the original DER totals,
    /// capped at `Δ_j`, with **no redistribution** of a cap's surplus.
    /// Shows the cap-and-redistribute loop is load-bearing.
    NoRedistribution,
}

/// One request to the unified DER allocation entry point, [`allocate`].
///
/// Replaces the former four-function surface (`allocate_der`,
/// `allocate_der_with`, `allocate_der_reference`,
/// `allocate_der_no_redistribution`): strategy, scratch reuse, and
/// intra-instance parallelism are orthogonal knobs on one request.
///
/// ```
/// # use esched_core::{allocate, AllocRequest, DerStrategy, ideal_schedule};
/// # use esched_subinterval::Timeline;
/// # use esched_types::{PolynomialPower, TaskSet};
/// # let tasks = TaskSet::from_triples(&[(0.0, 4.0, 2.0), (1.0, 5.0, 2.0)]);
/// # let timeline = Timeline::build(&tasks);
/// # let ideal = ideal_schedule(&tasks, &PolynomialPower::cubic());
/// let avail = allocate(AllocRequest::new(&tasks, &timeline, 2, &ideal));
/// let ground_truth = allocate(
///     AllocRequest::new(&tasks, &timeline, 2, &ideal).strategy(DerStrategy::Reference),
/// );
/// # assert_eq!(avail.task_count(), ground_truth.task_count());
/// ```
#[derive(Debug)]
pub struct AllocRequest<'a> {
    tasks: &'a TaskSet,
    timeline: &'a Timeline,
    cores: usize,
    ideal: &'a IdealSolution,
    strategy: DerStrategy,
    scratch: Option<&'a mut Scratch>,
    pool: Option<&'a Pool>,
    parallel_threshold: usize,
}

impl<'a> AllocRequest<'a> {
    /// A request with the production defaults: [`DerStrategy::Waterfill`],
    /// a fresh scratch, no pool.
    pub fn new(
        tasks: &'a TaskSet,
        timeline: &'a Timeline,
        cores: usize,
        ideal: &'a IdealSolution,
    ) -> Self {
        Self {
            tasks,
            timeline,
            cores,
            ideal,
            strategy: DerStrategy::default(),
            scratch: None,
            pool: None,
            parallel_threshold: DEFAULT_PARALLEL_THRESHOLD,
        }
    }

    /// Select the division implementation.
    pub fn strategy(mut self, strategy: DerStrategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Reuse a caller-owned [`Scratch`] so batch drivers pay for the
    /// staging buffers once. Only the serial [`DerStrategy::Waterfill`]
    /// path reads it (pool workers own their arenas).
    pub fn with_scratch(mut self, scratch: &'a mut Scratch) -> Self {
        self.scratch = Some(scratch);
        self
    }

    /// Fan heavy column ranges across `pool` when the instance has at
    /// least the threshold's worth of subintervals (see
    /// [`AllocRequest::with_parallel_threshold`]). Output is byte-identical
    /// to the serial pass at any worker count.
    pub fn with_pool(mut self, pool: &'a Pool) -> Self {
        self.pool = Some(pool);
        self
    }

    /// Minimum subinterval count before an attached pool is used
    /// (default [`DEFAULT_PARALLEL_THRESHOLD`]).
    pub fn with_parallel_threshold(mut self, threshold: usize) -> Self {
        self.parallel_threshold = threshold;
        self
    }
}

/// The DER-based allocating method (Section V.C, Algorithm 2) — the one
/// entry point for every strategy, scratch, and parallelism combination.
///
/// In each heavy subinterval, tasks are considered in order of
/// decreasing DER. Each is offered the fraction `c(τ)/C` of the
/// remaining pool (where `C` is the remaining DER total); a share
/// exceeding `Δ_j` is capped at `Δ_j`, and the surplus is redistributed
/// over the tasks that follow. [`DerStrategy::Waterfill`] computes that
/// in closed form; see [`DerStrategy`] for the alternatives.
pub fn allocate(req: AllocRequest<'_>) -> AvailMatrix {
    let AllocRequest {
        tasks,
        timeline,
        cores,
        ideal,
        strategy,
        scratch,
        pool,
        parallel_threshold,
    } = req;
    match strategy {
        DerStrategy::Reference => allocate_reference_impl(tasks, timeline, cores, ideal),
        DerStrategy::NoRedistribution => {
            allocate_no_redistribution_impl(tasks, timeline, cores, ideal)
        }
        DerStrategy::Waterfill => {
            let _span = span!(
                Level::Debug,
                "allocate_der",
                n_tasks = tasks.len(),
                n_subintervals = timeline.len(),
                n_heavy = heavy_count(timeline, cores),
            );
            metric_counter!("esched.core.der_alloc_calls").inc();
            let _flight = esched_obs::flight_span!("allocate_der");
            let mut avail = AvailMatrix::zeros(timeline, tasks.len());
            let mut stats = WaterfillStats::default();
            let n_cols = timeline.len();
            let mut local;
            let scratch = match scratch {
                Some(s) => s,
                None => {
                    local = Scratch::new();
                    &mut local
                }
            };
            // One sequential pass packs the ideal solution into the
            // gather records every column's staging loop reads
            // (`Scratch::packed` keeps the buffer across calls); the
            // parallel path shares the same slice read-only.
            let mut packed = std::mem::take(&mut scratch.packed);
            packed.clear();
            packed.extend(
                ideal
                    .exec
                    .iter()
                    .zip(ideal.freq.iter())
                    .map(|(e, &f)| [e.start, e.end, f]),
            );
            let fan_out = pool.filter(|p| p.threads() > 1 && n_cols >= parallel_threshold);
            if let Some(p) = fan_out {
                fill_columns_parallel(timeline, cores, &packed, &mut avail, p, &mut stats);
            } else {
                let AvailMatrix {
                    data, col_offsets, ..
                } = &mut avail;
                fill_columns(
                    timeline,
                    cores,
                    &packed,
                    0..n_cols,
                    data,
                    0,
                    col_offsets,
                    scratch,
                    &mut stats,
                );
            }
            scratch.packed = packed;
            metric_counter!("esched.core.der_waterfill_capped").add(stats.capped);
            metric_counter!("esched.core.der_fallback_even").add(stats.even);
            event!(
                Level::Debug,
                "der allocation done",
                capped = stats.capped,
                fallback_even = stats.even,
            );
            avail
        }
    }
}

/// See [`DerStrategy::Reference`].
fn allocate_reference_impl(
    tasks: &TaskSet,
    timeline: &Timeline,
    cores: usize,
    ideal: &IdealSolution,
) -> AvailMatrix {
    let mut avail = AvailMatrix::zeros(timeline, tasks.len());
    allocate_light(timeline, cores, &mut avail);
    let mut stats = WaterfillStats::default();
    let mut ders: Vec<(TaskId, f64)> = Vec::new();
    let mut suffix = Vec::new();
    for j in timeline.heavy_iter(cores) {
        let sub = timeline.get(j);
        ders.clear();
        ders.extend(
            sub.overlapping
                .iter()
                .map(|&i| (i, der(ideal, i, timeline, j))),
        );
        waterfill_reference(&mut ders, sub.delta(), cores, &mut stats, &mut suffix);
        for &(i, alloc) in ders.iter() {
            avail.set(i, j, alloc);
        }
    }
    avail
}

/// See [`DerStrategy::NoRedistribution`]. Used by the `ablate`
/// experiment to show that the cap-and-redistribute loop is load-bearing:
/// without it, capped subintervals strand core time and the final
/// frequencies rise.
fn allocate_no_redistribution_impl(
    tasks: &TaskSet,
    timeline: &Timeline,
    cores: usize,
    ideal: &IdealSolution,
) -> AvailMatrix {
    let mut avail = AvailMatrix::zeros(timeline, tasks.len());
    allocate_light(timeline, cores, &mut avail);
    for j in timeline.heavy_iter(cores) {
        let sub = timeline.get(j);
        let delta = sub.delta();
        let pool = cores as f64 * delta;
        let ctot: f64 = sub
            .overlapping
            .iter()
            .map(|&i| der(ideal, i, timeline, j))
            .sum();
        let cells = avail.col_mut(j);
        for (pos, &i) in sub.overlapping.iter().enumerate() {
            let c = der(ideal, i, timeline, j);
            let share = if ctot > EPS { c * pool / ctot } else { 0.0 };
            cells[pos] = share.min(delta);
        }
    }
    avail
}

/// Former entry point; the water-fill strategy with owned buffers.
#[deprecated(note = "use `allocate(AllocRequest::new(tasks, timeline, cores, ideal))`")]
pub fn allocate_der(
    tasks: &TaskSet,
    timeline: &Timeline,
    cores: usize,
    ideal: &IdealSolution,
) -> AvailMatrix {
    allocate(AllocRequest::new(tasks, timeline, cores, ideal))
}

/// Former entry point; the water-fill strategy reusing `scratch`.
#[deprecated(
    note = "use `allocate(AllocRequest::new(tasks, timeline, cores, ideal).with_scratch(scratch))`"
)]
pub fn allocate_der_with(
    tasks: &TaskSet,
    timeline: &Timeline,
    cores: usize,
    ideal: &IdealSolution,
    scratch: &mut Scratch,
) -> AvailMatrix {
    allocate(AllocRequest::new(tasks, timeline, cores, ideal).with_scratch(scratch))
}

/// Former entry point; the round-based ground truth.
#[deprecated(note = "use `allocate(AllocRequest::new(..).strategy(DerStrategy::Reference))`")]
pub fn allocate_der_reference(
    tasks: &TaskSet,
    timeline: &Timeline,
    cores: usize,
    ideal: &IdealSolution,
) -> AvailMatrix {
    allocate(AllocRequest::new(tasks, timeline, cores, ideal).strategy(DerStrategy::Reference))
}

/// Former entry point; the no-redistribution ablation.
#[deprecated(
    note = "use `allocate(AllocRequest::new(..).strategy(DerStrategy::NoRedistribution))`"
)]
pub fn allocate_der_no_redistribution(
    tasks: &TaskSet,
    timeline: &Timeline,
    cores: usize,
    ideal: &IdealSolution,
) -> AvailMatrix {
    allocate(
        AllocRequest::new(tasks, timeline, cores, ideal).strategy(DerStrategy::NoRedistribution),
    )
}

/// Outcome counters of one [`reallocate_der_patched`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DerRepairStats {
    /// Columns whose allocation had to be recomputed.
    pub dirty_columns: usize,
    /// Total columns of the patched timeline.
    pub total_columns: usize,
    /// Whether the dirty fraction exceeded the threshold and the whole
    /// allocation was recomputed by [`allocate`] instead.
    pub fell_back: bool,
}

/// Recompute the listed columns of `avail` in place, exactly as
/// [`allocate`] would fill them for the same `(timeline, cores, ideal)`
/// — the local-repair half of the online engine. Each column's
/// allocation is a pure function of `(overlap ids, staged DERs, Δ_j,
/// cores)`, so recomputing only the columns whose inputs changed
/// reproduces the full allocator's output bit-for-bit.
///
/// `avail` must be shaped by `timeline` (same CSR layout).
pub fn repair_der_columns(
    timeline: &Timeline,
    cores: usize,
    ideal: &IdealSolution,
    avail: &mut AvailMatrix,
    columns: impl IntoIterator<Item = usize>,
    scratch: &mut Scratch,
) {
    let mut stats = WaterfillStats::default();
    let mut repaired = 0u64;
    let mut der_w = std::mem::take(&mut scratch.der_w);
    for j in columns {
        repaired += 1;
        let sub = timeline.get(j);
        if !sub.is_heavy(cores) {
            let delta = sub.delta();
            avail.col_mut(j).fill(delta);
            continue;
        }
        let iv = sub.interval;
        der_w.clear();
        der_w.reserve(sub.overlapping.len());
        scratch.wf_tiny.clear();
        for (p, &i) in sub.overlapping.iter().enumerate() {
            let wv = staged_weight(&ideal.exec[i], &iv, ideal.freq[i]);
            der_w.push(wv);
            if wv <= EPS {
                scratch.wf_tiny.push((p, wv));
            }
        }
        waterfill_into_flat(
            &sub.overlapping,
            &der_w,
            sub.delta(),
            cores,
            &mut stats,
            scratch,
            avail.col_mut(j),
        );
    }
    scratch.der_w = der_w;
    metric_counter!("esched.core.der_repair_columns").add(repaired);
}

/// Build the DER allocation for a *patched* timeline by copying every
/// column whose inputs are unchanged from `old` and recomputing the rest.
///
/// A column of the new timeline is **clean** when some column of `old`
/// has bitwise-identical time bounds and overlap ids, and none of
/// `dirty_tasks` (tasks whose ideal-schedule DER changed: arrived,
/// completed early, or had their window shifted) overlaps it. Clean
/// columns are bulk-copied; everything else is re-waterfilled. Because
/// the per-column waterfill is a pure function of its inputs, the result
/// is bit-identical to [`allocate`] from scratch — regardless of *how*
/// the timeline was patched (including a full rebuild fallback).
///
/// When more than `fallback_fraction` of the columns are dirty the
/// copy-and-match bookkeeping stops paying for itself and the whole
/// allocation is recomputed via [`allocate`] (same result, one fused
/// pass) — that full pass fans out across `pool` when one is attached
/// and the instance clears `parallel_threshold` subintervals. Light
/// columns only depend on membership and `Δ_j`, so a dirty task alone
/// never dirties a light column.
#[allow(clippy::too_many_arguments)] // mirrors the allocate inputs plus the patch inputs
pub fn reallocate_der_patched(
    tasks: &TaskSet,
    timeline: &Timeline,
    cores: usize,
    ideal: &IdealSolution,
    old: &AvailMatrix,
    dirty_tasks: &[TaskId],
    fallback_fraction: f64,
    pool: Option<&Pool>,
    parallel_threshold: usize,
    scratch: &mut Scratch,
) -> (AvailMatrix, DerRepairStats) {
    let _span = span!(
        Level::Debug,
        "reallocate_der_patched",
        n_tasks = tasks.len(),
        n_subintervals = timeline.len(),
    );
    let mut avail = AvailMatrix::zeros(timeline, tasks.len());
    // Match old and new columns with a two-pointer walk over the
    // time-sorted column bounds; lexicographic order on (start, end)
    // keeps the walk linear through splits and insertions.
    let mut dirty: Vec<usize> = Vec::new();
    let touches_dirty_task =
        |ids: &[TaskId]| dirty_tasks.iter().any(|t| ids.binary_search(t).is_ok());
    let (mut i, mut j) = (0usize, 0usize);
    let (old_n, new_n) = (old.column_count(), avail.column_count());
    while i < old_n && j < new_n {
        let ob = old.col_bounds[i];
        let nb = avail.col_bounds[j];
        if ob == nb {
            let heavy = avail.col_ids(j).len() > cores;
            let clean = old.col_ids(i) == avail.col_ids(j)
                && !(heavy && touches_dirty_task(avail.col_ids(j)));
            if clean {
                let src = old.col_offsets[i]..old.col_offsets[i + 1];
                avail.col_mut(j).copy_from_slice(&old.data[src]);
            } else {
                dirty.push(j);
            }
            i += 1;
            j += 1;
        } else if ob < nb {
            i += 1;
        } else {
            dirty.push(j);
            j += 1;
        }
    }
    dirty.extend(j..new_n);
    let stats = DerRepairStats {
        dirty_columns: dirty.len(),
        total_columns: new_n,
        fell_back: dirty.len() as f64 > fallback_fraction * new_n as f64,
    };
    if stats.fell_back {
        let mut req = AllocRequest::new(tasks, timeline, cores, ideal)
            .with_scratch(scratch)
            .with_parallel_threshold(parallel_threshold);
        if let Some(p) = pool {
            req = req.with_pool(p);
        }
        return (allocate(req), stats);
    }
    repair_der_columns(
        timeline,
        cores,
        ideal,
        &mut avail,
        dirty.iter().copied(),
        scratch,
    );
    event!(
        Level::Debug,
        "der allocation patched",
        dirty = stats.dirty_columns as u64,
        total = stats.total_columns as u64,
    );
    (avail, stats)
}

/// Ablation variant: shares proportional to the *total execution
/// requirement* `C_i` instead of the DER (cap-and-redistribute retained).
/// This is the naive "bigger task, bigger share" rule; the DER weights it
/// by what the ideal schedule actually wants *inside this subinterval*,
/// which matters when windows and static power differ across tasks.
pub fn allocate_work_proportional(
    tasks: &TaskSet,
    timeline: &Timeline,
    cores: usize,
) -> AvailMatrix {
    let mut avail = AvailMatrix::zeros(timeline, tasks.len());
    allocate_light(timeline, cores, &mut avail);
    let mut scratch = Scratch::new();
    let mut stats = WaterfillStats::default();
    let mut weights: Vec<f64> = Vec::new();
    for j in timeline.heavy_iter(cores) {
        let sub = timeline.get(j);
        // Same water-filling core as the DER strategy (including the
        // degenerate even-split fallback), weighted by C_i instead of
        // the DER.
        weights.clear();
        scratch.wf_tiny.clear();
        for (p, &i) in sub.overlapping.iter().enumerate() {
            let wv = tasks.get(i).wcec;
            weights.push(wv);
            if wv <= EPS {
                scratch.wf_tiny.push((p, wv));
            }
        }
        waterfill_into_flat(
            &sub.overlapping,
            &weights,
            sub.delta(),
            cores,
            &mut stats,
            &mut scratch,
            avail.col_mut(j),
        );
    }
    avail
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ideal::ideal_schedule;
    use esched_types::PolynomialPower;

    /// Test-only twin of the production emission that rewrites an
    /// `entries` buffer in place — the contract the differential
    /// property tests pin against [`waterfill_reference`].
    fn waterfill_fast(
        entries: &mut [(TaskId, f64)],
        delta: f64,
        cores: usize,
        stats: &mut WaterfillStats,
        suffix: &mut Vec<f64>,
    ) {
        let n = entries.len();
        if n <= WATERFILL_FAST_CUTOFF || cores + 1 >= n {
            return waterfill_reference(entries, delta, cores, stats, suffix);
        }
        let ids: Vec<TaskId> = entries.iter().map(|e| e.0).collect();
        let w: Vec<f64> = entries.iter().map(|e| e.1).collect();
        let mut cells = vec![0.0; n];
        let mut scratch = Scratch::new();
        scratch.wf_tiny.extend(
            w.iter()
                .enumerate()
                .filter(|&(_, &wv)| wv <= EPS)
                .map(|(p, &wv)| (p, wv)),
        );
        std::mem::swap(&mut scratch.suffix, suffix);
        waterfill_into_flat(&ids, &w, delta, cores, stats, &mut scratch, &mut cells);
        std::mem::swap(&mut scratch.suffix, suffix);
        for (e, &c) in entries.iter_mut().zip(cells.iter()) {
            e.1 = c;
        }
    }

    fn vd_tasks() -> TaskSet {
        TaskSet::from_triples(&[
            (0.0, 10.0, 8.0),
            (2.0, 18.0, 14.0),
            (4.0, 16.0, 8.0),
            (6.0, 14.0, 4.0),
            (8.0, 20.0, 10.0),
            (12.0, 22.0, 6.0),
        ])
    }

    fn alloc_der(
        tasks: &TaskSet,
        tl: &Timeline,
        cores: usize,
        ideal: &IdealSolution,
    ) -> AvailMatrix {
        allocate(AllocRequest::new(tasks, tl, cores, ideal))
    }

    #[test]
    fn even_allocation_matches_paper_vd_numbers() {
        let ts = vd_tasks();
        let tl = Timeline::build(&ts);
        let avail = allocate_even(&ts, &tl, 4);
        // Heavy subintervals are index 4 ([8,10]) and 6 ([12,14]); each
        // overlapping task gets (4/5)·2 = 8/5.
        for &i in &[0usize, 1, 2, 3, 4] {
            assert!((avail.get(i, 4) - 1.6).abs() < 1e-12, "task {i}");
        }
        for &i in &[1usize, 2, 3, 4, 5] {
            assert!((avail.get(i, 6) - 1.6).abs() < 1e-12, "task {i}");
        }
        // Light subintervals give the full Δ = 2.
        assert_eq!(avail.get(0, 0), 2.0);
        assert_eq!(avail.get(1, 5), 2.0);
        // Totals reproduce the paper's final-frequency denominators:
        // A_1 = 8 + 8/5, A_2 = 12 + 16/5, A_6 = 8 + 8/5.
        assert!((avail.total(0) - (8.0 + 1.6)).abs() < 1e-9);
        assert!((avail.total(1) - (12.0 + 3.2)).abs() < 1e-9);
        assert!((avail.total(2) - (8.0 + 3.2)).abs() < 1e-9);
        assert!((avail.total(3) - (4.0 + 3.2)).abs() < 1e-9);
        assert!((avail.total(4) - (8.0 + 3.2)).abs() < 1e-9);
        assert!((avail.total(5) - (8.0 + 1.6)).abs() < 1e-9);
    }

    #[test]
    fn der_values_match_paper_vd_numbers() {
        let ts = vd_tasks();
        let tl = Timeline::build(&ts);
        let ideal = ideal_schedule(&ts, &PolynomialPower::cubic());
        // DERs during [8,10] (index 4): 8/5, 7/4, 4/3, 1, 5/3.
        let expect4 = [1.6, 1.75, 4.0 / 3.0, 1.0, 5.0 / 3.0];
        for (i, &e) in expect4.iter().enumerate() {
            assert!(
                (der(&ideal, i, &tl, 4) - e).abs() < 1e-12,
                "task {i}: {} vs {e}",
                der(&ideal, i, &tl, 4)
            );
        }
        // DERs during [12,14] (index 6) for τ2..τ6: 7/4, 4/3, 1, 5/3, 6/5.
        let expect6 = [1.75, 4.0 / 3.0, 1.0, 5.0 / 3.0, 1.2];
        for (k, &e) in expect6.iter().enumerate() {
            let i = k + 1;
            assert!(
                (der(&ideal, i, &tl, 6) - e).abs() < 1e-12,
                "task {i}: {} vs {e}",
                der(&ideal, i, &tl, 6)
            );
        }
    }

    #[test]
    fn algorithm2_matches_paper_vd_allocations() {
        let ts = vd_tasks();
        let tl = Timeline::build(&ts);
        let ideal = ideal_schedule(&ts, &PolynomialPower::cubic());
        let avail = alloc_der(&ts, &tl, 4, &ideal);
        // Paper, interval [8,10]: τ1..τ5 get
        // 1.7415, 1.9048, 1.4512, 1.0884, 1.8141 (4 decimals).
        let expect4 = [1.7415, 1.9048, 1.4512, 1.0884, 1.8141];
        for (i, &e) in expect4.iter().enumerate() {
            assert!(
                (avail.get(i, 4) - e).abs() < 5e-5,
                "task {i} in [8,10]: {} vs {e}",
                avail.get(i, 4)
            );
        }
        // Paper, interval [12,14]: τ2..τ6 get
        // 2, 1.5385, 1.1538, 1.9231, 1.3846 — τ2's share caps at Δ = 2 and
        // the surplus is redistributed.
        let expect6 = [2.0, 1.5385, 1.1538, 1.9231, 1.3846];
        for (k, &e) in expect6.iter().enumerate() {
            let i = k + 1;
            assert!(
                (avail.get(i, 6) - e).abs() < 5e-5,
                "task {i} in [12,14]: {} vs {e}",
                avail.get(i, 6)
            );
        }
    }

    #[test]
    fn allocations_never_exceed_capacity() {
        let ts = vd_tasks();
        let tl = Timeline::build(&ts);
        let ideal = ideal_schedule(&ts, &PolynomialPower::paper(3.0, 0.2));
        for avail in [allocate_even(&ts, &tl, 4), alloc_der(&ts, &tl, 4, &ideal)] {
            for sub in tl.subintervals() {
                let total: f64 = sub
                    .overlapping
                    .iter()
                    .map(|&i| avail.get(i, sub.index))
                    .sum();
                let cap = if sub.is_heavy(4) {
                    4.0 * sub.delta()
                } else {
                    sub.overlap_count() as f64 * sub.delta()
                };
                assert!(
                    total <= cap + 1e-9,
                    "subinterval {}: {total} > {cap}",
                    sub.index
                );
                for &i in &sub.overlapping {
                    assert!(avail.get(i, sub.index) <= sub.delta() + 1e-9);
                }
            }
        }
    }

    #[test]
    fn positive_der_implies_positive_allocation() {
        // Skewed DERs: caps can consume at most (m−1)·Δ of the pool, so
        // every positive-DER task keeps a positive share.
        let ts = TaskSet::from_triples(&[
            (0.0, 4.0, 8.0),  // very dense
            (0.0, 4.0, 7.0),  // very dense
            (0.0, 4.0, 0.5),  // light
            (0.0, 4.0, 0.25), // lighter
        ]);
        let tl = Timeline::build(&ts);
        let ideal = ideal_schedule(&ts, &PolynomialPower::cubic());
        let avail = alloc_der(&ts, &tl, 2, &ideal);
        for i in 0..4 {
            assert!(avail.get(i, 0) > 0.0, "task {i} starved");
        }
    }

    #[test]
    fn zero_der_task_gets_zero_in_that_subinterval() {
        // With high static power, an early task's ideal execution finishes
        // before a later heavy subinterval → its DER there is 0.
        let ts = TaskSet::from_triples(&[
            (0.0, 20.0, 1.0), // f_crit ≫ 1/20: ideal exec ends early
            (10.0, 20.0, 8.0),
            (10.0, 20.0, 8.0),
        ]);
        let p = PolynomialPower::paper(2.0, 1.0); // f_crit = 1
        let tl = Timeline::build(&ts);
        let ideal = ideal_schedule(&ts, &p);
        // τ0 ideal: runs [0, 1] at f = 1. Subinterval [10, 20] gets DER 0.
        let j = tl
            .subintervals()
            .iter()
            .find(|s| s.interval.start == 10.0)
            .unwrap()
            .index;
        assert_eq!(der(&ideal, 0, &tl, j), 0.0);
        let avail = alloc_der(&ts, &tl, 2, &ideal);
        assert_eq!(avail.get(0, j), 0.0);
        // But τ0 still has available time elsewhere (its light span).
        assert!(avail.total(0) > 0.0);
    }

    #[test]
    fn avail_matrix_accessors() {
        let ts = vd_tasks();
        let tl = Timeline::build(&ts);
        let mut m = AvailMatrix::zeros(&tl, ts.len());
        assert_eq!(m.task_count(), 6);
        assert_eq!(m.get(0, 0), 0.0);
        assert_eq!(m.get(0, 7), 0.0); // outside τ0's span
        m.set(0, 2, 1.5);
        assert_eq!(m.get(0, 2), 1.5);
        assert_eq!(m.total(0), 1.5);
        let row: Vec<(usize, f64)> = m.row(0).collect();
        assert_eq!(row.len(), 5);
        assert_eq!(row[2], (2, 1.5));
    }

    #[test]
    fn no_redistribution_strands_capacity_when_caps_bind() {
        // Interval [12,14] of the V.D example: τ2's proportional share
        // exceeds Δ = 2 and is capped. With redistribution the surplus
        // flows to the others (totals sum to 8); without it the surplus is
        // stranded.
        let ts = vd_tasks();
        let tl = Timeline::build(&ts);
        let ideal = ideal_schedule(&ts, &PolynomialPower::cubic());
        let with = alloc_der(&ts, &tl, 4, &ideal);
        let without = allocate(
            AllocRequest::new(&ts, &tl, 4, &ideal).strategy(DerStrategy::NoRedistribution),
        );
        let sum_with: f64 = (1..=5).map(|i| with.get(i, 6)).sum();
        let sum_without: f64 = (1..=5).map(|i| without.get(i, 6)).sum();
        assert!((sum_with - 8.0).abs() < 1e-9, "with = {sum_with}");
        assert!(
            sum_without < sum_with - 1e-3,
            "no-redistribution did not strand capacity: {sum_without}"
        );
        // In the uncapped interval [8,10] the two rules agree.
        for i in 0..5 {
            assert!(
                (with.get(i, 4) - without.get(i, 4)).abs() < 1e-9,
                "task {i}"
            );
        }
    }

    #[test]
    fn work_proportional_differs_from_der_when_windows_differ() {
        // Two tasks with equal work but very different windows: DER favors
        // the tight one (higher ideal frequency), work-proportional splits
        // evenly.
        let ts = TaskSet::from_triples(&[(0.0, 4.0, 3.0), (0.0, 12.0, 3.0), (0.0, 4.0, 1.0)]);
        let tl = Timeline::build(&ts);
        let ideal = ideal_schedule(&ts, &PolynomialPower::cubic());
        let der_alloc = alloc_der(&ts, &tl, 1, &ideal);
        let work_alloc = allocate_work_proportional(&ts, &tl, 1);
        // Subinterval [0,4] is heavy on one core.
        let j = 0;
        assert!(
            der_alloc.get(0, j) > work_alloc.get(0, j) + 1e-9,
            "DER should favor the tight task: {} vs {}",
            der_alloc.get(0, j),
            work_alloc.get(0, j)
        );
        // Both respect capacity.
        let cap = tl.delta(j);
        for alloc in [&der_alloc, &work_alloc] {
            let total: f64 = (0..3).map(|i| alloc.get(i, j)).sum();
            assert!(total <= cap + 1e-9);
        }
    }

    /// Extract the capped-task id set from a waterfill result: tasks
    /// whose allocation landed on the `Δ_j` cap (up to rounding).
    fn capped_set(entries: &[(TaskId, f64)], delta: f64) -> Vec<TaskId> {
        let mut ids: Vec<TaskId> = entries
            .iter()
            .filter(|&&(_, a)| a >= delta * (1.0 - 1e-9))
            .map(|&(i, _)| i)
            .collect();
        ids.sort_unstable();
        ids
    }

    /// Property test: the sort-free water-filling equals the round-based
    /// reference on 1k random heavy subintervals — same capped index
    /// set, shares within `WORK_TOL` — across zero, tiny (≤ EPS), and
    /// duplicated weights, including all-underflow instances.
    #[test]
    fn waterfill_fast_matches_reference_on_1k_random_heavy_subintervals() {
        use esched_obs::ChaCha8;
        use esched_types::validate::WORK_TOL;
        let mut rng = ChaCha8::seed_from_u64(0x5eed);
        for case in 0..1000u32 {
            let n = rng.gen_range_usize(2, 200);
            let cores = rng.gen_range_usize(1, n); // heavy: n > m
            let delta = rng.gen_range_f64(0.05, 8.0);
            // Every 25th case underflows all DERs to force the
            // even-split fallback; otherwise mix regular, tiny, and
            // zero weights with occasional exact duplicates.
            let underflow = case % 25 == 0;
            let mut entries: Vec<(TaskId, f64)> = (0..n)
                .map(|i| {
                    let w = if underflow {
                        rng.gen_f64() * EPS / n as f64
                    } else if rng.gen_bool(0.08) {
                        0.0
                    } else if rng.gen_bool(0.08) {
                        rng.gen_f64() * EPS
                    } else {
                        rng.gen_range_f64(0.0, 5.0)
                    };
                    (i, w)
                })
                .collect();
            if !underflow && n > 3 {
                let w = entries[0].1;
                entries[2].1 = w; // exact tie
            }
            let mut fast = entries.clone();
            let mut stats = WaterfillStats::default();
            let mut suffix = Vec::new();
            waterfill_reference(&mut entries, delta, cores, &mut stats, &mut suffix);
            waterfill_fast(&mut fast, delta, cores, &mut stats, &mut suffix);
            assert_eq!(
                capped_set(&entries, delta),
                capped_set(&fast, delta),
                "case {case}: capped sets diverge (n={n}, m={cores})"
            );
            fast.sort_unstable_by_key(|e| e.0);
            entries.sort_unstable_by_key(|e| e.0);
            for (r, f) in entries.iter().zip(fast.iter()) {
                assert_eq!(r.0, f.0);
                assert!(
                    (r.1 - f.1).abs() <= WORK_TOL,
                    "case {case}, task {}: reference {} vs fast {} (n={n}, m={cores}, Δ={delta})",
                    r.0,
                    r.1,
                    f.1
                );
            }
        }
    }

    #[test]
    fn all_ders_underflow_takes_even_split_in_both_implementations() {
        // Every DER ≤ EPS with total ≤ EPS: proportional shares carry no
        // signal, so the whole pool is split evenly — nobody is starved.
        let n = 40;
        let cores = 3;
        let delta = 2.0;
        // Weight total ≈ 4.9e-9 ≤ EPS: the whole list underflows.
        let entries: Vec<(TaskId, f64)> = (0..n).map(|i| (i, 1e-10 * (i % 7) as f64)).collect();
        let expect = (cores as f64 * delta / n as f64).min(delta);
        for fast in [false, true] {
            let mut e = entries.clone();
            let mut stats = WaterfillStats::default();
            let mut suffix = Vec::new();
            if fast {
                waterfill_fast(&mut e, delta, cores, &mut stats, &mut suffix);
            } else {
                waterfill_reference(&mut e, delta, cores, &mut stats, &mut suffix);
            }
            assert_eq!(stats.even, n as u64, "fast={fast}");
            assert_eq!(stats.capped, 0, "fast={fast}");
            for &(i, a) in &e {
                assert!(
                    (a - expect).abs() < 1e-9,
                    "fast={fast}, task {i}: {a} vs {expect}"
                );
            }
        }
    }

    #[test]
    fn allocate_matches_reference_end_to_end() {
        use esched_obs::ChaCha8;
        use esched_types::validate::WORK_TOL;
        let mut rng = ChaCha8::seed_from_u64(99);
        for case in 0..60 {
            let n = rng.gen_range_usize(20, 48);
            let cores = rng.gen_range_usize(1, 4);
            let triples: Vec<(f64, f64, f64)> = (0..n)
                .map(|_| {
                    let release = rng.gen_range_f64(0.0, 10.0);
                    let len = rng.gen_range_f64(0.5, 12.0);
                    let wcec = rng.gen_range_f64(0.1, 8.0);
                    (release, release + len, wcec)
                })
                .collect();
            let ts = TaskSet::from_triples(&triples);
            let tl = Timeline::build(&ts);
            let ideal = ideal_schedule(&ts, &PolynomialPower::paper(3.0, 0.1));
            let fast = alloc_der(&ts, &tl, cores, &ideal);
            let reference = allocate(
                AllocRequest::new(&ts, &tl, cores, &ideal).strategy(DerStrategy::Reference),
            );
            for sub in tl.subintervals() {
                for &i in &sub.overlapping {
                    let (a, b) = (fast.get(i, sub.index), reference.get(i, sub.index));
                    assert!(
                        (a - b).abs() <= WORK_TOL,
                        "case {case}, task {i}, sub {}: fast {a} vs reference {b}",
                        sub.index
                    );
                }
            }
        }
    }

    #[test]
    fn pooled_allocation_is_bit_identical_across_worker_counts() {
        // The fan-out's chunk boundaries depend only on the CSR shape and
        // each column is a pure function of its inputs, so any worker
        // count must produce the serial matrix bit-for-bit.
        use esched_obs::ChaCha8;
        let mut rng = ChaCha8::seed_from_u64(0xbeef);
        let n = 300;
        let triples: Vec<(f64, f64, f64)> = (0..n)
            .map(|_| {
                let release = rng.gen_range_f64(0.0, 60.0);
                let len = rng.gen_range_f64(0.5, 10.0);
                (release, release + len, rng.gen_range_f64(0.1, 5.0))
            })
            .collect();
        let ts = TaskSet::from_triples(&triples);
        let tl = Timeline::build(&ts);
        let ideal = ideal_schedule(&ts, &PolynomialPower::paper(3.0, 0.1));
        let serial = alloc_der(&ts, &tl, 2, &ideal);
        for threads in [1, 2, 4, 8] {
            let pool = Pool::with_threads(threads);
            let pooled = allocate(
                AllocRequest::new(&ts, &tl, 2, &ideal)
                    .with_pool(&pool)
                    .with_parallel_threshold(1),
            );
            assert_eq!(pooled, serial, "{threads} workers");
        }
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_forwarders_match_the_unified_entry_point() {
        let ts = vd_tasks();
        let tl = Timeline::build(&ts);
        let ideal = ideal_schedule(&ts, &PolynomialPower::cubic());
        let unified = alloc_der(&ts, &tl, 4, &ideal);
        assert_eq!(allocate_der(&ts, &tl, 4, &ideal), unified);
        assert_eq!(
            allocate_der_with(&ts, &tl, 4, &ideal, &mut Scratch::new()),
            unified
        );
        assert_eq!(
            allocate_der_reference(&ts, &tl, 4, &ideal),
            allocate(AllocRequest::new(&ts, &tl, 4, &ideal).strategy(DerStrategy::Reference))
        );
        assert_eq!(
            allocate_der_no_redistribution(&ts, &tl, 4, &ideal),
            allocate(
                AllocRequest::new(&ts, &tl, 4, &ideal).strategy(DerStrategy::NoRedistribution)
            )
        );
    }

    #[test]
    #[should_panic(expected = "not available")]
    fn set_outside_span_panics() {
        let ts = vd_tasks();
        let tl = Timeline::build(&ts);
        let mut m = AvailMatrix::zeros(&tl, ts.len());
        m.set(5, 0, 1.0); // τ5 starts at subinterval 6
    }

    #[test]
    fn patched_reallocation_is_bit_identical_to_scratch() {
        use esched_obs::ChaCha8;
        let mut rng = ChaCha8::seed_from_u64(0x9a7c_4ed1);
        let power = PolynomialPower::paper(3.0, 0.1);
        let mut scratch = Scratch::new();
        for case in 0..120 {
            let n = rng.gen_range_usize(8, 40);
            let cores = rng.gen_range_usize(1, 5);
            let mut triples: Vec<(f64, f64, f64)> = (0..n)
                .map(|_| {
                    let release = (rng.gen_range_f64(0.0, 20.0) * 2.0).round() / 2.0;
                    let len = (rng.gen_range_f64(0.5, 12.0) * 2.0).round().max(1.0) / 2.0;
                    let wcec = rng.gen_range_f64(0.1, len.min(6.0));
                    (release, release + len, wcec)
                })
                .collect();
            let ts = TaskSet::from_triples(&triples);
            let mut tl = Timeline::build(&ts);
            let ideal = ideal_schedule(&ts, &power);
            let old =
                allocate(AllocRequest::new(&ts, &tl, cores, &ideal).with_scratch(&mut scratch));
            // Mutate the set the three ways the online engine does:
            // early completion (wcec shrink), arrival, window shift.
            let victim = rng.gen_range_usize(0, n);
            let dirty = match case % 3 {
                0 => {
                    triples[victim].2 *= rng.gen_range_f64(0.1, 0.9);
                    victim
                }
                1 => {
                    let r = (rng.gen_range_f64(0.0, 25.0) * 2.0).round() / 2.0;
                    let len = (rng.gen_range_f64(0.5, 10.0) * 2.0).round().max(1.0) / 2.0;
                    triples.push((r, r + len, rng.gen_range_f64(0.1, len)));
                    n
                }
                _ => {
                    let pts = tl.boundaries().to_vec();
                    let a = rng.gen_range_usize(0, pts.len() - 1);
                    let b = rng.gen_range_usize(a + 1, pts.len());
                    let span = pts[b] - pts[a];
                    triples[victim] = (pts[a], pts[b], triples[victim].2.min(span * 0.9));
                    victim
                }
            };
            let mutated = TaskSet::from_triples(&triples);
            match case % 3 {
                0 => {} // windows unchanged: same decomposition
                1 => {
                    tl.rebuild_inserted(&mutated, dirty);
                }
                _ => {
                    tl.rebuild_shifted(&mutated, dirty);
                }
            }
            let ideal2 = ideal_schedule(&mutated, &power);
            let fresh = allocate(
                AllocRequest::new(&mutated, &tl, cores, &ideal2).with_scratch(&mut scratch),
            );
            let (patched, stats) = reallocate_der_patched(
                &mutated,
                &tl,
                cores,
                &ideal2,
                &old,
                &[dirty],
                0.25,
                None,
                DEFAULT_PARALLEL_THRESHOLD,
                &mut scratch,
            );
            assert_eq!(patched, fresh, "case {case} (n = {n}, m = {cores})");
            assert_eq!(stats.total_columns, tl.len());
            // Forcing the global-recompute fallback must not change the
            // result either.
            let (forced, fstats) = reallocate_der_patched(
                &mutated,
                &tl,
                cores,
                &ideal2,
                &old,
                &[dirty],
                0.0,
                None,
                DEFAULT_PARALLEL_THRESHOLD,
                &mut scratch,
            );
            assert!(fstats.fell_back || fstats.dirty_columns == 0, "case {case}");
            assert_eq!(forced, fresh, "case {case} forced fallback");
        }
    }

    #[test]
    fn repair_der_columns_reproduces_full_allocation() {
        // Repairing *every* column of a zeroed matrix must reproduce the
        // full allocator output exactly — the bit-identity contract the
        // online engine relies on.
        let ts = vd_tasks();
        let tl = Timeline::build(&ts);
        let ideal = ideal_schedule(&ts, &PolynomialPower::cubic());
        let mut scratch = Scratch::new();
        let full = allocate(AllocRequest::new(&ts, &tl, 4, &ideal).with_scratch(&mut scratch));
        let mut repaired = AvailMatrix::zeros(&tl, ts.len());
        repair_der_columns(&tl, 4, &ideal, &mut repaired, 0..tl.len(), &mut scratch);
        assert_eq!(repaired, full);
    }
}
