//! Available-execution-time allocation (Sections V.B and V.C).
//!
//! Both heuristics share the same skeleton:
//!
//! * **lightly overlapped** subintervals (`n_j ≤ m`): every overlapping
//!   task is valid to occupy a core for the whole subinterval
//!   (Observation 2) — allocate `Δ_j` to each;
//! * **heavily overlapped** subintervals (`n_j > m`): the `m·Δ_j` core
//!   time must be divided. The *evenly allocating* rule gives each task
//!   `m·Δ_j/n_j`; the *DER-based* rule (Algorithm 2) divides it in
//!   proportion to each task's Desired Execution Requirement, greatest
//!   first, capping shares at `Δ_j` and redistributing the remainder.
//!
//! The result is an [`AvailMatrix`] of available times `a_{i,j}` — an
//! upper bound on how long task `i` may occupy a core during subinterval
//! `j`. Final frequencies and schedules are derived from it in
//! [`crate::refine`].

use crate::ideal::IdealSolution;
use crate::scratch::Scratch;
use esched_obs::{event, metric_counter, span, Level};
use esched_subinterval::Timeline;
use esched_types::time::EPS;
use esched_types::{TaskId, TaskSet};

/// Number of heavy subintervals (`n_j > m`) — used for span fields only,
/// so it is computed lazily inside the `span!` guard.
fn heavy_count(timeline: &Timeline, cores: usize) -> usize {
    timeline
        .subintervals()
        .iter()
        .filter(|s| s.is_heavy(cores))
        .count()
}

/// Available execution time per (task, subinterval) pair.
#[derive(Debug, Clone, PartialEq)]
pub struct AvailMatrix {
    /// Row `i` holds task `i`'s available times, aligned with
    /// `timeline.span(i)`.
    rows: Vec<Vec<f64>>,
    /// `(start, end)` of each task's span, for index translation.
    spans: Vec<(usize, usize)>,
}

impl AvailMatrix {
    /// All-zero matrix shaped by `timeline`.
    pub fn zeros(timeline: &Timeline, n_tasks: usize) -> Self {
        let mut rows = Vec::with_capacity(n_tasks);
        let mut spans = Vec::with_capacity(n_tasks);
        for i in 0..n_tasks {
            let r = timeline.span(i);
            spans.push((r.start, r.end));
            rows.push(vec![0.0; r.len()]);
        }
        Self { rows, spans }
    }

    /// Available time of task `i` during subinterval `j` (0 when the
    /// window does not cover `j`).
    pub fn get(&self, task: TaskId, j: usize) -> f64 {
        let (a, b) = self.spans[task];
        if (a..b).contains(&j) {
            self.rows[task][j - a]
        } else {
            0.0
        }
    }

    /// Set the available time of task `i` during subinterval `j`.
    ///
    /// # Panics
    /// If the task's window does not cover `j`.
    pub fn set(&mut self, task: TaskId, j: usize, value: f64) {
        let (a, b) = self.spans[task];
        assert!(
            (a..b).contains(&j),
            "task {task} not available in subinterval {j}"
        );
        self.rows[task][j - a] = value;
    }

    /// Total available time `A_i = Σ_j a_{i,j}` of task `i`.
    pub fn total(&self, task: TaskId) -> f64 {
        esched_types::time::compensated_sum(self.rows[task].iter().copied())
    }

    /// Totals for every task.
    pub fn totals(&self) -> Vec<f64> {
        (0..self.rows.len()).map(|i| self.total(i)).collect()
    }

    /// Number of tasks (rows).
    pub fn task_count(&self) -> usize {
        self.rows.len()
    }

    /// Iterate `(subinterval, avail)` pairs of one task's row.
    pub fn row(&self, task: TaskId) -> impl Iterator<Item = (usize, f64)> + '_ {
        let (a, _) = self.spans[task];
        self.rows[task]
            .iter()
            .enumerate()
            .map(move |(k, &v)| (a + k, v))
    }
}

/// Fill every *light* subinterval of `avail`: each overlapping task gets
/// the full `Δ_j` (Observation 2). Heavy subintervals are left untouched.
fn allocate_light(timeline: &Timeline, cores: usize, avail: &mut AvailMatrix) {
    for sub in timeline.subintervals() {
        if !sub.is_heavy(cores) {
            for &i in &sub.overlapping {
                avail.set(i, sub.index, sub.delta());
            }
        }
    }
}

/// The evenly allocating method (Section V.B): heavy subintervals divide
/// core time equally, `a_{i,j} = m·Δ_j / n_j`.
pub fn allocate_even(tasks: &TaskSet, timeline: &Timeline, cores: usize) -> AvailMatrix {
    let _span = span!(
        Level::Debug,
        "allocate_even",
        n_tasks = tasks.len(),
        n_subintervals = timeline.len(),
        n_heavy = heavy_count(timeline, cores),
    );
    let mut avail = AvailMatrix::zeros(timeline, tasks.len());
    allocate_light(timeline, cores, &mut avail);
    for sub in timeline.subintervals() {
        if sub.is_heavy(cores) {
            let share = cores as f64 * sub.delta() / sub.overlap_count() as f64;
            for &i in &sub.overlapping {
                avail.set(i, sub.index, share);
            }
        }
    }
    avail
}

/// Desired Execution Requirement of task `i` during subinterval `j`
/// (Eq. 24): `c(τ) = |U_i^O ∩ [t_j, t_{j+1}]| · f_i^O`.
pub fn der(ideal: &IdealSolution, task: TaskId, timeline: &Timeline, j: usize) -> f64 {
    ideal.exec_overlap(task, &timeline.get(j).interval) * ideal.freq[task]
}

/// The DER-based allocating method (Section V.C, Algorithm 2).
///
/// In each heavy subinterval, tasks are considered in order of decreasing
/// DER. Each is offered the fraction `c(τ)/C` of the remaining pool (where
/// `C` is the remaining DER total); a share exceeding `Δ_j` is capped at
/// `Δ_j`, and the pool and DER total shrink as tasks are processed — so a
/// cap's surplus is redistributed over the tasks that follow.
pub fn allocate_der(
    tasks: &TaskSet,
    timeline: &Timeline,
    cores: usize,
    ideal: &IdealSolution,
) -> AvailMatrix {
    allocate_der_with(tasks, timeline, cores, ideal, &mut Scratch::new())
}

/// [`allocate_der`] reusing the DER staging buffer in `scratch`, so batch
/// drivers pay for the per-heavy-subinterval `(task, DER)` list once.
pub fn allocate_der_with(
    tasks: &TaskSet,
    timeline: &Timeline,
    cores: usize,
    ideal: &IdealSolution,
    scratch: &mut Scratch,
) -> AvailMatrix {
    let _span = span!(
        Level::Debug,
        "allocate_der",
        n_tasks = tasks.len(),
        n_subintervals = timeline.len(),
        n_heavy = heavy_count(timeline, cores),
    );
    metric_counter!("esched.core.der_alloc_calls").inc();
    let mut avail = AvailMatrix::zeros(timeline, tasks.len());
    allocate_light(timeline, cores, &mut avail);
    // Shares capped at Δ_j, i.e. surplus-redistribution steps of Alg. 2.
    let mut redistributions = 0usize;
    for sub in timeline.subintervals() {
        if !sub.is_heavy(cores) {
            continue;
        }
        metric_counter!("esched.core.der_alloc_rounds").inc();
        let delta = sub.delta();
        // (task, DER), sorted by DER descending; ties broken by id so the
        // algorithm is deterministic.
        let ders = &mut scratch.ders;
        ders.clear();
        ders.extend(
            sub.overlapping
                .iter()
                .map(|&i| (i, der(ideal, i, timeline, sub.index))),
        );
        ders.sort_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .expect("finite DERs")
                .then(a.0.cmp(&b.0))
        });
        let mut pool = cores as f64 * delta;
        let mut ctot: f64 = ders.iter().map(|&(_, c)| c).sum();
        let mut remaining = ders.len();
        for &(i, c) in ders.iter() {
            let alloc = if pool <= EPS {
                0.0
            } else if ctot > EPS && c > 0.0 {
                let share = c * pool / ctot;
                if share > delta {
                    redistributions += 1;
                }
                share.min(delta)
            } else if ctot <= EPS {
                // Degenerate pool: every remaining DER is ~zero (tiny-work
                // tasks), so proportional shares carry no signal. Split the
                // remaining pool evenly instead of starving everyone — a
                // starved task ends up with zero total availability and no
                // finite final frequency.
                (pool / remaining as f64).min(delta)
            } else {
                // Zero-DER task among tasks with real DERs: no share.
                0.0
            };
            avail.set(i, sub.index, alloc);
            pool -= alloc;
            ctot -= c;
            remaining -= 1;
        }
    }
    metric_counter!("esched.core.der_redistributions").add(redistributions as u64);
    event!(
        Level::Debug,
        "der allocation done",
        redistributions = redistributions,
    );
    avail
}

/// Ablation variant of Algorithm 2: shares are proportional to DERs
/// against the *original* totals, capped at `Δ_j`, with **no
/// redistribution** of a cap's surplus. Used by the `ablate` experiment to
/// show that the cap-and-redistribute loop is load-bearing: without it,
/// capped subintervals strand core time and the final frequencies rise.
pub fn allocate_der_no_redistribution(
    tasks: &TaskSet,
    timeline: &Timeline,
    cores: usize,
    ideal: &IdealSolution,
) -> AvailMatrix {
    let mut avail = AvailMatrix::zeros(timeline, tasks.len());
    allocate_light(timeline, cores, &mut avail);
    for sub in timeline.subintervals() {
        if !sub.is_heavy(cores) {
            continue;
        }
        let delta = sub.delta();
        let pool = cores as f64 * delta;
        let ctot: f64 = sub
            .overlapping
            .iter()
            .map(|&i| der(ideal, i, timeline, sub.index))
            .sum();
        for &i in &sub.overlapping {
            let c = der(ideal, i, timeline, sub.index);
            let share = if ctot > EPS { c * pool / ctot } else { 0.0 };
            avail.set(i, sub.index, share.min(delta));
        }
    }
    avail
}

/// Ablation variant: shares proportional to the *total execution
/// requirement* `C_i` instead of the DER (cap-and-redistribute retained).
/// This is the naive "bigger task, bigger share" rule; the DER weights it
/// by what the ideal schedule actually wants *inside this subinterval*,
/// which matters when windows and static power differ across tasks.
pub fn allocate_work_proportional(
    tasks: &TaskSet,
    timeline: &Timeline,
    cores: usize,
) -> AvailMatrix {
    let mut avail = AvailMatrix::zeros(timeline, tasks.len());
    allocate_light(timeline, cores, &mut avail);
    for sub in timeline.subintervals() {
        if !sub.is_heavy(cores) {
            continue;
        }
        let delta = sub.delta();
        let mut weights: Vec<(TaskId, f64)> = sub
            .overlapping
            .iter()
            .map(|&i| (i, tasks.get(i).wcec))
            .collect();
        weights.sort_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .expect("finite works")
                .then(a.0.cmp(&b.0))
        });
        let mut pool = cores as f64 * delta;
        let mut wtot: f64 = weights.iter().map(|&(_, w)| w).sum();
        let mut remaining = weights.len();
        for (i, w) in weights {
            // Same degenerate-pool fallback as `allocate_der`: when every
            // remaining weight is ~zero, split the pool evenly.
            let alloc = if pool <= EPS {
                0.0
            } else if wtot > EPS {
                (w * pool / wtot).min(delta)
            } else {
                (pool / remaining as f64).min(delta)
            };
            avail.set(i, sub.index, alloc);
            pool -= alloc;
            wtot -= w;
            remaining -= 1;
        }
    }
    avail
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ideal::ideal_schedule;
    use esched_types::PolynomialPower;

    fn vd_tasks() -> TaskSet {
        TaskSet::from_triples(&[
            (0.0, 10.0, 8.0),
            (2.0, 18.0, 14.0),
            (4.0, 16.0, 8.0),
            (6.0, 14.0, 4.0),
            (8.0, 20.0, 10.0),
            (12.0, 22.0, 6.0),
        ])
    }

    #[test]
    fn even_allocation_matches_paper_vd_numbers() {
        let ts = vd_tasks();
        let tl = Timeline::build(&ts);
        let avail = allocate_even(&ts, &tl, 4);
        // Heavy subintervals are index 4 ([8,10]) and 6 ([12,14]); each
        // overlapping task gets (4/5)·2 = 8/5.
        for &i in &[0usize, 1, 2, 3, 4] {
            assert!((avail.get(i, 4) - 1.6).abs() < 1e-12, "task {i}");
        }
        for &i in &[1usize, 2, 3, 4, 5] {
            assert!((avail.get(i, 6) - 1.6).abs() < 1e-12, "task {i}");
        }
        // Light subintervals give the full Δ = 2.
        assert_eq!(avail.get(0, 0), 2.0);
        assert_eq!(avail.get(1, 5), 2.0);
        // Totals reproduce the paper's final-frequency denominators:
        // A_1 = 8 + 8/5, A_2 = 12 + 16/5, A_6 = 8 + 8/5.
        assert!((avail.total(0) - (8.0 + 1.6)).abs() < 1e-9);
        assert!((avail.total(1) - (12.0 + 3.2)).abs() < 1e-9);
        assert!((avail.total(2) - (8.0 + 3.2)).abs() < 1e-9);
        assert!((avail.total(3) - (4.0 + 3.2)).abs() < 1e-9);
        assert!((avail.total(4) - (8.0 + 3.2)).abs() < 1e-9);
        assert!((avail.total(5) - (8.0 + 1.6)).abs() < 1e-9);
    }

    #[test]
    fn der_values_match_paper_vd_numbers() {
        let ts = vd_tasks();
        let tl = Timeline::build(&ts);
        let ideal = ideal_schedule(&ts, &PolynomialPower::cubic());
        // DERs during [8,10] (index 4): 8/5, 7/4, 4/3, 1, 5/3.
        let expect4 = [1.6, 1.75, 4.0 / 3.0, 1.0, 5.0 / 3.0];
        for (i, &e) in expect4.iter().enumerate() {
            assert!(
                (der(&ideal, i, &tl, 4) - e).abs() < 1e-12,
                "task {i}: {} vs {e}",
                der(&ideal, i, &tl, 4)
            );
        }
        // DERs during [12,14] (index 6) for τ2..τ6: 7/4, 4/3, 1, 5/3, 6/5.
        let expect6 = [1.75, 4.0 / 3.0, 1.0, 5.0 / 3.0, 1.2];
        for (k, &e) in expect6.iter().enumerate() {
            let i = k + 1;
            assert!(
                (der(&ideal, i, &tl, 6) - e).abs() < 1e-12,
                "task {i}: {} vs {e}",
                der(&ideal, i, &tl, 6)
            );
        }
    }

    #[test]
    fn algorithm2_matches_paper_vd_allocations() {
        let ts = vd_tasks();
        let tl = Timeline::build(&ts);
        let ideal = ideal_schedule(&ts, &PolynomialPower::cubic());
        let avail = allocate_der(&ts, &tl, 4, &ideal);
        // Paper, interval [8,10]: τ1..τ5 get
        // 1.7415, 1.9048, 1.4512, 1.0884, 1.8141 (4 decimals).
        let expect4 = [1.7415, 1.9048, 1.4512, 1.0884, 1.8141];
        for (i, &e) in expect4.iter().enumerate() {
            assert!(
                (avail.get(i, 4) - e).abs() < 5e-5,
                "task {i} in [8,10]: {} vs {e}",
                avail.get(i, 4)
            );
        }
        // Paper, interval [12,14]: τ2..τ6 get
        // 2, 1.5385, 1.1538, 1.9231, 1.3846 — τ2's share caps at Δ = 2 and
        // the surplus is redistributed.
        let expect6 = [2.0, 1.5385, 1.1538, 1.9231, 1.3846];
        for (k, &e) in expect6.iter().enumerate() {
            let i = k + 1;
            assert!(
                (avail.get(i, 6) - e).abs() < 5e-5,
                "task {i} in [12,14]: {} vs {e}",
                avail.get(i, 6)
            );
        }
    }

    #[test]
    fn allocations_never_exceed_capacity() {
        let ts = vd_tasks();
        let tl = Timeline::build(&ts);
        let ideal = ideal_schedule(&ts, &PolynomialPower::paper(3.0, 0.2));
        for avail in [
            allocate_even(&ts, &tl, 4),
            allocate_der(&ts, &tl, 4, &ideal),
        ] {
            for sub in tl.subintervals() {
                let total: f64 = sub
                    .overlapping
                    .iter()
                    .map(|&i| avail.get(i, sub.index))
                    .sum();
                let cap = if sub.is_heavy(4) {
                    4.0 * sub.delta()
                } else {
                    sub.overlap_count() as f64 * sub.delta()
                };
                assert!(
                    total <= cap + 1e-9,
                    "subinterval {}: {total} > {cap}",
                    sub.index
                );
                for &i in &sub.overlapping {
                    assert!(avail.get(i, sub.index) <= sub.delta() + 1e-9);
                }
            }
        }
    }

    #[test]
    fn positive_der_implies_positive_allocation() {
        // Skewed DERs: caps can consume at most (m−1)·Δ of the pool, so
        // every positive-DER task keeps a positive share.
        let ts = TaskSet::from_triples(&[
            (0.0, 4.0, 8.0),  // very dense
            (0.0, 4.0, 7.0),  // very dense
            (0.0, 4.0, 0.5),  // light
            (0.0, 4.0, 0.25), // lighter
        ]);
        let tl = Timeline::build(&ts);
        let ideal = ideal_schedule(&ts, &PolynomialPower::cubic());
        let avail = allocate_der(&ts, &tl, 2, &ideal);
        for i in 0..4 {
            assert!(avail.get(i, 0) > 0.0, "task {i} starved");
        }
    }

    #[test]
    fn zero_der_task_gets_zero_in_that_subinterval() {
        // With high static power, an early task's ideal execution finishes
        // before a later heavy subinterval → its DER there is 0.
        let ts = TaskSet::from_triples(&[
            (0.0, 20.0, 1.0), // f_crit ≫ 1/20: ideal exec ends early
            (10.0, 20.0, 8.0),
            (10.0, 20.0, 8.0),
        ]);
        let p = PolynomialPower::paper(2.0, 1.0); // f_crit = 1
        let tl = Timeline::build(&ts);
        let ideal = ideal_schedule(&ts, &p);
        // τ0 ideal: runs [0, 1] at f = 1. Subinterval [10, 20] gets DER 0.
        let j = tl
            .subintervals()
            .iter()
            .find(|s| s.interval.start == 10.0)
            .unwrap()
            .index;
        assert_eq!(der(&ideal, 0, &tl, j), 0.0);
        let avail = allocate_der(&ts, &tl, 2, &ideal);
        assert_eq!(avail.get(0, j), 0.0);
        // But τ0 still has available time elsewhere (its light span).
        assert!(avail.total(0) > 0.0);
    }

    #[test]
    fn avail_matrix_accessors() {
        let ts = vd_tasks();
        let tl = Timeline::build(&ts);
        let mut m = AvailMatrix::zeros(&tl, ts.len());
        assert_eq!(m.task_count(), 6);
        assert_eq!(m.get(0, 0), 0.0);
        assert_eq!(m.get(0, 7), 0.0); // outside τ0's span
        m.set(0, 2, 1.5);
        assert_eq!(m.get(0, 2), 1.5);
        assert_eq!(m.total(0), 1.5);
        let row: Vec<(usize, f64)> = m.row(0).collect();
        assert_eq!(row.len(), 5);
        assert_eq!(row[2], (2, 1.5));
    }

    #[test]
    fn no_redistribution_strands_capacity_when_caps_bind() {
        // Interval [12,14] of the V.D example: τ2's proportional share
        // exceeds Δ = 2 and is capped. With redistribution the surplus
        // flows to the others (totals sum to 8); without it the surplus is
        // stranded.
        let ts = vd_tasks();
        let tl = Timeline::build(&ts);
        let ideal = ideal_schedule(&ts, &PolynomialPower::cubic());
        let with = allocate_der(&ts, &tl, 4, &ideal);
        let without = allocate_der_no_redistribution(&ts, &tl, 4, &ideal);
        let sum_with: f64 = (1..=5).map(|i| with.get(i, 6)).sum();
        let sum_without: f64 = (1..=5).map(|i| without.get(i, 6)).sum();
        assert!((sum_with - 8.0).abs() < 1e-9, "with = {sum_with}");
        assert!(
            sum_without < sum_with - 1e-3,
            "no-redistribution did not strand capacity: {sum_without}"
        );
        // In the uncapped interval [8,10] the two rules agree.
        for i in 0..5 {
            assert!(
                (with.get(i, 4) - without.get(i, 4)).abs() < 1e-9,
                "task {i}"
            );
        }
    }

    #[test]
    fn work_proportional_differs_from_der_when_windows_differ() {
        // Two tasks with equal work but very different windows: DER favors
        // the tight one (higher ideal frequency), work-proportional splits
        // evenly.
        let ts = TaskSet::from_triples(&[(0.0, 4.0, 3.0), (0.0, 12.0, 3.0), (0.0, 4.0, 1.0)]);
        let tl = Timeline::build(&ts);
        let ideal = ideal_schedule(&ts, &PolynomialPower::cubic());
        let der_alloc = allocate_der(&ts, &tl, 1, &ideal);
        let work_alloc = allocate_work_proportional(&ts, &tl, 1);
        // Subinterval [0,4] is heavy on one core.
        let j = 0;
        assert!(
            der_alloc.get(0, j) > work_alloc.get(0, j) + 1e-9,
            "DER should favor the tight task: {} vs {}",
            der_alloc.get(0, j),
            work_alloc.get(0, j)
        );
        // Both respect capacity.
        let cap = tl.delta(j);
        for alloc in [&der_alloc, &work_alloc] {
            let total: f64 = (0..3).map(|i| alloc.get(i, j)).sum();
            assert!(total <= cap + 1e-9);
        }
    }

    #[test]
    #[should_panic(expected = "not available")]
    fn set_outside_span_panics() {
        let ts = vd_tasks();
        let tl = Timeline::build(&ts);
        let mut m = AvailMatrix::zeros(&tl, ts.len());
        m.set(5, 0, 1.0); // τ5 starts at subinterval 6
    }
}
