//! Available-execution-time allocation (Sections V.B and V.C).
//!
//! Both heuristics share the same skeleton:
//!
//! * **lightly overlapped** subintervals (`n_j ≤ m`): every overlapping
//!   task is valid to occupy a core for the whole subinterval
//!   (Observation 2) — allocate `Δ_j` to each;
//! * **heavily overlapped** subintervals (`n_j > m`): the `m·Δ_j` core
//!   time must be divided. The *evenly allocating* rule gives each task
//!   `m·Δ_j/n_j`; the *DER-based* rule (Algorithm 2) divides it in
//!   proportion to each task's Desired Execution Requirement, greatest
//!   first, capping shares at `Δ_j` and redistributing the remainder.
//!
//! Algorithm 2's cap-and-redistribute loop is a water-filling problem:
//! the capped tasks form a prefix of the DER-descending order, and every
//! uncapped task's share is its DER times one common multiplier λ. The
//! production path ([`allocate_der`]) exploits that closed form — a
//! bounded head scan plus one multiply pass — while the round-based loop
//! survives as [`allocate_der_reference`], the ground truth the
//! differential harness replays against (set `ESCHED_DER_REFERENCE=1` to
//! route the whole battery through it).
//!
//! The result is an [`AvailMatrix`] of available times `a_{i,j}` — an
//! upper bound on how long task `i` may occupy a core during subinterval
//! `j`. Final frequencies and schedules are derived from it in
//! [`crate::refine`].

use crate::ideal::IdealSolution;
use crate::scratch::Scratch;
use esched_obs::{event, metric_counter, span, Level};
use esched_subinterval::Timeline;
use esched_types::time::EPS;
use esched_types::{TaskId, TaskSet};

/// Number of heavy subintervals (`n_j > m`) — used for span fields only,
/// so it is computed lazily inside the `span!` guard.
fn heavy_count(timeline: &Timeline, cores: usize) -> usize {
    timeline.heavy_iter(cores).count()
}

/// Available execution time per (task, subinterval) pair.
///
/// Stored **subinterval-major** (CSR mirroring the timeline's overlap
/// lists): column `j` is one contiguous run aligned with
/// `timeline.get(j).overlapping`. The allocators fill whole columns and
/// the refine loops read whole columns, so both walk the slab
/// sequentially; the task-major layout this replaced made every one of
/// those accesses a page-sized stride (one TLB entry per task touched
/// per subinterval), which dominated `allocate_der`'s profile.
#[derive(Debug, Clone, PartialEq)]
pub struct AvailMatrix {
    /// Cell values; column `j` is `data[col_offsets[j]..col_offsets[j+1]]`.
    data: Vec<f64>,
    /// Task id of each cell — a copy of the timeline's (id-sorted)
    /// overlap lists, so by-id lookups don't need the timeline.
    ids: Vec<TaskId>,
    /// Slab offset of each column; `n_subintervals + 1` entries.
    col_offsets: Vec<usize>,
    /// `(start, end)` subinterval span of each task.
    spans: Vec<(usize, usize)>,
    /// `(start, end)` time bounds of each column — lets the online repair
    /// path match columns of an old allocation against a patched timeline
    /// without keeping the old timeline alive.
    col_bounds: Vec<(f64, f64)>,
}

impl AvailMatrix {
    /// All-zero matrix shaped by `timeline`.
    pub fn zeros(timeline: &Timeline, n_tasks: usize) -> Self {
        let mut col_offsets = Vec::with_capacity(timeline.len() + 1);
        let mut col_bounds = Vec::with_capacity(timeline.len());
        let mut ids = Vec::new();
        col_offsets.push(0);
        for sub in timeline.subintervals() {
            ids.extend_from_slice(&sub.overlapping);
            col_offsets.push(ids.len());
            col_bounds.push((sub.interval.start, sub.interval.end));
        }
        let spans = (0..n_tasks)
            .map(|i| {
                let r = timeline.span(i);
                (r.start, r.end)
            })
            .collect();
        Self {
            data: vec![0.0; ids.len()],
            ids,
            col_offsets,
            spans,
            col_bounds,
        }
    }

    /// Slab index of cell `(task, j)`, if the task overlaps `j`.
    fn cell(&self, task: TaskId, j: usize) -> Option<usize> {
        let col = self.col_offsets[j]..self.col_offsets[j + 1];
        self.ids[col.clone()]
            .binary_search(&task)
            .ok()
            .map(|pos| col.start + pos)
    }

    /// Available time of task `i` during subinterval `j` (0 when the
    /// window does not cover `j`).
    pub fn get(&self, task: TaskId, j: usize) -> f64 {
        self.cell(task, j).map_or(0.0, |c| self.data[c])
    }

    /// Set the available time of task `i` during subinterval `j`.
    ///
    /// # Panics
    /// If the task's window does not cover `j`.
    pub fn set(&mut self, task: TaskId, j: usize, value: f64) {
        match self.cell(task, j) {
            Some(c) => self.data[c] = value,
            None => panic!("task {task} not available in subinterval {j}"),
        }
    }

    /// Column `j` as a mutable slice aligned with the timeline's overlap
    /// list for `j` — the allocators' sequential write path.
    fn col_mut(&mut self, j: usize) -> &mut [f64] {
        let col = self.col_offsets[j]..self.col_offsets[j + 1];
        &mut self.data[col]
    }

    /// Column `j` aligned with the timeline's overlap list for `j`.
    pub(crate) fn col(&self, j: usize) -> &[f64] {
        &self.data[self.col_offsets[j]..self.col_offsets[j + 1]]
    }

    /// Total available time `A_i = Σ_j a_{i,j}` of task `i`.
    pub fn total(&self, task: TaskId) -> f64 {
        esched_types::time::compensated_sum(self.row(task).map(|(_, v)| v))
    }

    /// Totals for every task — one sequential pass over the slab, with
    /// per-task Neumaier compensation (matching
    /// [`esched_types::time::compensated_sum`]).
    pub fn totals(&self) -> Vec<f64> {
        let n = self.spans.len();
        let mut sum = vec![0.0_f64; n];
        let mut comp = vec![0.0_f64; n];
        for (&i, &v) in self.ids.iter().zip(self.data.iter()) {
            let s = sum[i];
            let t = s + v;
            if s.abs() >= v.abs() {
                comp[i] += (s - t) + v;
            } else {
                comp[i] += (v - t) + s;
            }
            sum[i] = t;
        }
        sum.iter().zip(comp.iter()).map(|(s, c)| s + c).collect()
    }

    /// Number of tasks (rows).
    pub fn task_count(&self) -> usize {
        self.spans.len()
    }

    /// Number of columns (subintervals).
    pub fn column_count(&self) -> usize {
        self.col_bounds.len()
    }

    /// Task ids of column `j`, ascending (the overlap list it was shaped
    /// from).
    fn col_ids(&self, j: usize) -> &[TaskId] {
        &self.ids[self.col_offsets[j]..self.col_offsets[j + 1]]
    }

    /// Iterate `(subinterval, avail)` pairs of one task's row. A by-id
    /// lookup per spanned subinterval — fine off the hot path; bulk
    /// consumers should walk columns instead.
    pub fn row(&self, task: TaskId) -> impl Iterator<Item = (usize, f64)> + '_ {
        let (a, b) = self.spans[task];
        (a..b).map(move |j| {
            let c = self.cell(task, j).expect("span covers j");
            (j, self.data[c])
        })
    }
}

/// Fill every *light* subinterval of `avail`: each overlapping task gets
/// the full `Δ_j` (Observation 2). Heavy subintervals are left untouched.
fn allocate_light(timeline: &Timeline, cores: usize, avail: &mut AvailMatrix) {
    for j in timeline.light_iter(cores) {
        let delta = timeline.get(j).delta();
        avail.col_mut(j).fill(delta);
    }
}

/// The evenly allocating method (Section V.B): heavy subintervals divide
/// core time equally, `a_{i,j} = m·Δ_j / n_j`.
pub fn allocate_even(tasks: &TaskSet, timeline: &Timeline, cores: usize) -> AvailMatrix {
    let _span = span!(
        Level::Debug,
        "allocate_even",
        n_tasks = tasks.len(),
        n_subintervals = timeline.len(),
        n_heavy = heavy_count(timeline, cores),
    );
    let mut avail = AvailMatrix::zeros(timeline, tasks.len());
    allocate_light(timeline, cores, &mut avail);
    for j in timeline.heavy_iter(cores) {
        let sub = timeline.get(j);
        let share = cores as f64 * sub.delta() / sub.overlap_count() as f64;
        avail.col_mut(j).fill(share);
    }
    avail
}

/// Desired Execution Requirement of task `i` during subinterval `j`
/// (Eq. 24): `c(τ) = |U_i^O ∩ [t_j, t_{j+1}]| · f_i^O`.
pub fn der(ideal: &IdealSolution, task: TaskId, timeline: &Timeline, j: usize) -> f64 {
    ideal.exec_overlap(task, &timeline.get(j).interval) * ideal.freq[task]
}

/// Canonical water-filling order: weight descending, task id ascending on
/// ties — the deterministic order Algorithm 2 considers tasks in.
fn by_weight_desc(a: &(TaskId, f64), b: &(TaskId, f64)) -> std::cmp::Ordering {
    b.1.partial_cmp(&a.1)
        .expect("finite weights")
        .then(a.0.cmp(&b.0))
}

/// Per-call counters shared by the water-filling implementations.
#[derive(Debug, Default, Clone, Copy)]
struct WaterfillStats {
    /// Tasks whose proportional share exceeded `Δ_j` and was capped.
    capped: u64,
    /// Tasks served by the degenerate even-split fallback.
    even: u64,
}

/// `true` when `ESCHED_DER_REFERENCE` (non-empty, not `"0"`) pins the
/// process to the round-based reference allocator. Read once: the
/// differential battery flips it to drive every downstream consumer —
/// engine, experiments, fuzz — through the reference path.
fn reference_forced() -> bool {
    use std::sync::OnceLock;
    static FLAG: OnceLock<bool> = OnceLock::new();
    *FLAG.get_or_init(|| {
        std::env::var_os("ESCHED_DER_REFERENCE").is_some_and(|v| !v.is_empty() && v != "0")
    })
}

/// Below this size the fast path delegates to the reference loop: the
/// selection machinery only pays once the uncapped bulk dominates.
const WATERFILL_FAST_CUTOFF: usize = 16;

/// The even-split tail of a canonically sorted weight list: the maximal
/// suffix whose weight sum is ≤ `EPS`. Proportional shares carry no
/// signal there (the denominator would be ~zero), so both water-filling
/// implementations switch to an even split of whatever pool remains — a
/// starved task would otherwise end up with zero total availability and
/// no finite final frequency. Returns `(start index, suffix sum)`. The
/// backward accumulation order is part of the contract: the fast path
/// reproduces it bit-for-bit on the same elements, so both
/// implementations agree exactly on where the tail begins.
fn even_split_tail<T>(sorted: &[T], weight: impl Fn(&T) -> f64) -> (usize, f64) {
    let mut start = sorted.len();
    let mut sum = 0.0;
    while start > 0 {
        let s = sum + weight(&sorted[start - 1]);
        if s > EPS {
            break;
        }
        sum = s;
        start -= 1;
    }
    (start, sum)
}

/// Round-based Algorithm 2 inner loop (the reference implementation):
/// walk the canonically sorted weights greatest-first, offer each task
/// the fraction `w/W_rem` of the remaining pool, cap the share at
/// `delta`, and let the shrinking pool and weight total redistribute
/// each cap's surplus over the tasks that follow. Full `O(n log n)`
/// sort plus a serial division chain. `suffix` is a scratch buffer for
/// the remaining-weight sums.
///
/// `W_rem` is a backward-accumulated suffix sum, not `W_total − prefix`:
/// subtracting a near-total prefix from the grand total cancels
/// catastrophically once caps have consumed almost all weight, and the
/// resulting noise in the share denominators is what would push the two
/// implementations apart. Summing the (positive) remaining weights
/// directly keeps every denominator accurate relative to itself, so the
/// fast path's frozen λ agrees with the reference's rolling ratio to a
/// few ULPs — far inside `WORK_TOL`.
///
/// On return `entries` is sorted canonically and each weight slot holds
/// the task's allocation.
fn waterfill_reference(
    entries: &mut [(TaskId, f64)],
    delta: f64,
    cores: usize,
    stats: &mut WaterfillStats,
    suffix: &mut Vec<f64>,
) {
    let n = entries.len();
    entries.sort_unstable_by(by_weight_desc);
    suffix.clear();
    suffix.resize(n + 1, 0.0);
    for k in (0..n).rev() {
        suffix[k] = suffix[k + 1] + entries[k].1;
    }
    // The even-split tail: suffix sums are non-increasing, so the tail is
    // exactly the positions whose remaining-weight total is ≤ EPS.
    let tail_start = suffix[..n].partition_point(|&s| s > EPS);
    let mut pool = cores as f64 * delta;
    for (k, e) in entries[..tail_start].iter_mut().enumerate() {
        let w = e.1;
        let alloc = if pool <= EPS {
            0.0
        } else {
            let share = w * pool / suffix[k];
            if share > delta {
                stats.capped += 1;
            }
            share.min(delta)
        };
        pool -= alloc;
        e.1 = alloc;
    }
    let mut remaining = n - tail_start;
    for e in entries[tail_start..].iter_mut() {
        let alloc = if pool <= EPS {
            0.0
        } else {
            stats.even += 1;
            (pool / remaining as f64).min(delta)
        };
        pool -= alloc;
        remaining -= 1;
        e.1 = alloc;
    }
}

/// Sort-free water-filling: the same allocation as
/// [`waterfill_reference`] in `O(n + m log m)`. Caps consume `Δ_j` each
/// from an `m·Δ_j` pool, so the capped prefix and the crossover live in
/// the `m + 2` largest weights — a bounded insertion scan pulls that
/// head without permuting the buffer, a linear scan finds the crossover
/// and freezes `λ = pool / W_rem`, and a single multiply-by-λ pass
/// prices every remaining task at once, replacing the reference's full
/// sort and serial division chain.
///
/// Cap and tail decisions reuse the reference's exact arithmetic (same
/// weight total, same prefix sums, same pool updates, same backward tail
/// accumulation), so the two implementations take identical branches;
/// the λ freeze itself only moves shares at rounding scale, far inside
/// `WORK_TOL`.
///
/// Production goes through [`waterfill_into`], which shares the
/// [`waterfill_plan`] analysis but fuses emission with the write-back;
/// this entries-rewriting form is the contract the differential property
/// tests pin against the reference.
#[cfg(test)]
fn waterfill_fast(
    entries: &mut [(TaskId, f64)],
    delta: f64,
    cores: usize,
    stats: &mut WaterfillStats,
    suffix: &mut Vec<f64>,
) {
    let n = entries.len();
    if n <= WATERFILL_FAST_CUTOFF || cores + 1 >= n {
        return waterfill_reference(entries, delta, cores, stats, suffix);
    }
    let plan = waterfill_plan(entries, delta, cores, stats, suffix);
    // One branch-free multiply prices every task in place; the head
    // (capped or λ-priced from its saved weight) and the even-split tail
    // are overwritten below, in that order.
    let lam = plan.lam;
    for e in entries.iter_mut() {
        e.1 = (e.1 * lam).min(delta);
    }
    for (k, &(p, _, w)) in plan.head.iter().enumerate() {
        entries[p].1 = if k < plan.caps {
            delta
        } else {
            (w * lam).min(delta)
        };
    }
    let tail = &plan.tiny[plan.tiny_tail_start..];
    let mut tpool = plan.tail_pool;
    let mut remaining = tail.len();
    for &(idx, _) in tail {
        let alloc = if tpool <= EPS {
            0.0
        } else {
            stats.even += 1;
            (tpool / remaining as f64).min(delta)
        };
        tpool -= alloc;
        remaining -= 1;
        entries[idx].1 = alloc;
    }
}

/// The analysis half of the fast path: head, crossover, λ, and tail,
/// shared by [`waterfill_fast`] (which rewrites `entries`) and
/// [`waterfill_into`] (which emits straight into the [`AvailMatrix`]).
/// Callers have already checked the size cutoffs.
struct WaterfillPlan {
    /// `(position, task, weight)` — the canonically-first `m + 2`
    /// entries, in canonical order.
    head: Vec<(usize, TaskId, f64)>,
    /// `(position, weight)` of the ≤ EPS candidates, canonical order.
    tiny: Vec<(usize, f64)>,
    /// Start of the even-split tail within `tiny`.
    tiny_tail_start: usize,
    /// Frozen multiplier `λ = pool / W_rem`; 0 when the pool died first.
    lam: f64,
    /// Capped head prefix length.
    caps: usize,
    /// Pool remaining at the tail boundary: λ·(tail weight), or whatever
    /// was left when the scan stopped without a crossover. The
    /// reference's sequential subtraction lands on the same value up to
    /// rounding, far inside WORK_TOL either side of the EPS gate.
    tail_pool: f64,
}

fn waterfill_plan(
    entries: &[(TaskId, f64)],
    delta: f64,
    cores: usize,
    stats: &mut WaterfillStats,
    suffix: &mut Vec<f64>,
) -> WaterfillPlan {
    let n = entries.len();
    let k_nth = cores + 1;
    // One pass over the staged weights does three jobs: maintain the
    // `m + 2` canonically-first entries (`head` — a bounded insertion
    // scan, cheaper than `select_nth` and leaving `entries` in overlap
    // order so emission walks task ids ascending), accumulate the
    // weight staying outside the head (`rem_weight`: evicted or
    // never-admitted elements — all positive adds, so the share
    // denominators stay accurate relative to themselves, same as the
    // reference's suffix accumulation), and collect the ≤ EPS
    // even-split-tail candidates. The hot branch is one float compare
    // against the current worst head weight; ids only break exact ties.
    let mut head: Vec<(usize, TaskId, f64)> = Vec::with_capacity(k_nth + 2);
    let mut rem_weight = 0.0;
    let mut tiny: Vec<(usize, f64)> = Vec::new();
    for (p, &(id, w)) in entries[..=k_nth].iter().enumerate() {
        debug_assert!(w.is_finite(), "finite weights");
        if w <= EPS {
            tiny.push((p, w));
        }
        let at = head.partition_point(|h| h.2 > w || (h.2 == w && h.1 < id));
        head.insert(at, (p, id, w));
    }
    // `worst` mirrors `head[k_nth]` in registers so the hot reject branch
    // touches no memory beyond the entry itself.
    let (mut worst_id, mut worst_w) = (head[k_nth].1, head[k_nth].2);
    for (p, &(id, w)) in entries.iter().enumerate().skip(k_nth + 1) {
        debug_assert!(w.is_finite(), "finite weights");
        if w <= EPS {
            tiny.push((p, w));
        }
        if !(w > worst_w || (w == worst_w && id < worst_id)) {
            rem_weight += w;
            continue;
        }
        head.pop();
        rem_weight += worst_w;
        let at = head.partition_point(|h| h.2 > w || (h.2 == w && h.1 < id));
        head.insert(at, (p, id, w));
        (worst_id, worst_w) = (head[k_nth].1, head[k_nth].2);
    }
    debug_assert_eq!(head.len(), k_nth + 1);
    suffix.clear();
    suffix.resize(k_nth + 2, 0.0);
    suffix[k_nth + 1] = rem_weight;
    for k in (0..=k_nth).rev() {
        suffix[k] = suffix[k + 1] + head[k].2;
    }
    // Canonically order the tail candidates; all-positive workloads have
    // none and skip this.
    tiny.sort_unstable_by(|a, b| {
        b.1.partial_cmp(&a.1)
            .expect("finite weights")
            .then(entries[a.0].0.cmp(&entries[b.0].0))
    });
    let (tiny_tail_start, tail_sum) = even_split_tail(&tiny, |e| e.1);
    let n_nontail = n - (tiny.len() - tiny_tail_start);

    // Cap-crossover scan over the canonical head, with the reference's
    // exact branch arithmetic.
    let mut pool = cores as f64 * delta;
    let mut caps = 0usize;
    let mut lambda = None;
    while caps < n_nontail.min(k_nth + 1) && pool > EPS {
        let w = head[caps].2;
        let rem = suffix[caps];
        if w * pool / rem <= delta {
            lambda = Some(pool / rem);
            break;
        }
        stats.capped += 1;
        pool -= delta;
        caps += 1;
    }
    // At most m−1 caps fit before the crossover, so the scan always
    // resolves within the head (or exhausts the pool / non-tail).
    debug_assert!(
        lambda.is_some() || pool <= EPS || caps == n_nontail,
        "cap scan ran past the head"
    );
    WaterfillPlan {
        tail_pool: match lambda {
            Some(l) => l * tail_sum,
            None => pool,
        },
        lam: lambda.unwrap_or(0.0),
        caps,
        head,
        tiny,
        tiny_tail_start,
    }
}

/// Production emission: water-fill one heavy subinterval's staged
/// weights and write the allocations straight into its `AvailMatrix`
/// column, fusing the multiply pass with the write-back. `cells` is the
/// column slice aligned with `entries` (both in overlap order), so
/// emission is purely positional — sequential stores, no id lookups.
/// Falls back to [`waterfill_reference`] below the cutoff or under
/// `ESCHED_DER_REFERENCE`; the sort loses positions, so that path maps
/// task ids back through `ids` (the subinterval's overlap list).
fn waterfill_into(
    entries: &mut [(TaskId, f64)],
    delta: f64,
    cores: usize,
    stats: &mut WaterfillStats,
    suffix: &mut Vec<f64>,
    cells: &mut [f64],
    ids: &[TaskId],
) {
    let n = entries.len();
    debug_assert_eq!(cells.len(), n);
    if reference_forced() || n <= WATERFILL_FAST_CUTOFF || cores + 1 >= n {
        waterfill_reference(entries, delta, cores, stats, suffix);
        for &(i, alloc) in entries.iter() {
            let pos = ids
                .binary_search(&i)
                .expect("entry task is in the overlap list");
            cells[pos] = alloc;
        }
        return;
    }
    let plan = waterfill_plan(entries, delta, cores, stats, suffix);
    let lam = plan.lam;
    for (p, &(_, w)) in entries.iter().enumerate() {
        cells[p] = (w * lam).min(delta);
    }
    for (k, &(p, _, w)) in plan.head.iter().enumerate() {
        cells[p] = if k < plan.caps {
            delta
        } else {
            (w * lam).min(delta)
        };
    }
    let tail = &plan.tiny[plan.tiny_tail_start..];
    let mut tpool = plan.tail_pool;
    let mut remaining = tail.len();
    for &(idx, _) in tail {
        let alloc = if tpool <= EPS {
            0.0
        } else {
            stats.even += 1;
            (tpool / remaining as f64).min(delta)
        };
        tpool -= alloc;
        remaining -= 1;
        cells[idx] = alloc;
    }
}

/// The DER-based allocating method (Section V.C, Algorithm 2).
///
/// In each heavy subinterval, tasks are considered in order of decreasing
/// DER. Each is offered the fraction `c(τ)/C` of the remaining pool (where
/// `C` is the remaining DER total); a share exceeding `Δ_j` is capped at
/// `Δ_j`, and the surplus is redistributed over the tasks that follow.
/// Computed in water-filling closed form (see [`allocate_der_reference`]
/// for the round-based original).
pub fn allocate_der(
    tasks: &TaskSet,
    timeline: &Timeline,
    cores: usize,
    ideal: &IdealSolution,
) -> AvailMatrix {
    allocate_der_with(tasks, timeline, cores, ideal, &mut Scratch::new())
}

/// [`allocate_der`] reusing the DER staging buffer in `scratch`, so batch
/// drivers pay for the per-heavy-subinterval `(task, DER)` list once.
pub fn allocate_der_with(
    tasks: &TaskSet,
    timeline: &Timeline,
    cores: usize,
    ideal: &IdealSolution,
    scratch: &mut Scratch,
) -> AvailMatrix {
    let _span = span!(
        Level::Debug,
        "allocate_der",
        n_tasks = tasks.len(),
        n_subintervals = timeline.len(),
        n_heavy = heavy_count(timeline, cores),
    );
    metric_counter!("esched.core.der_alloc_calls").inc();
    let _flight = esched_obs::flight_span!("allocate_der");
    let mut avail = AvailMatrix::zeros(timeline, tasks.len());
    allocate_light(timeline, cores, &mut avail);
    let mut stats = WaterfillStats::default();
    for j in timeline.heavy_iter(cores) {
        let sub = timeline.get(j);
        // (task, DER) staging list in overlap order; the waterfill
        // rewrites each DER slot into the task's allocation.
        let ders = &mut scratch.ders;
        ders.clear();
        let iv = sub.interval;
        ders.extend(
            sub.overlapping
                .iter()
                .map(|&i| (i, ideal.exec[i].overlap_len(&iv) * ideal.freq[i])),
        );
        waterfill_into(
            ders,
            sub.delta(),
            cores,
            &mut stats,
            &mut scratch.suffix,
            avail.col_mut(j),
            &sub.overlapping,
        );
    }
    metric_counter!("esched.core.der_waterfill_capped").add(stats.capped);
    metric_counter!("esched.core.der_fallback_even").add(stats.even);
    event!(
        Level::Debug,
        "der allocation done",
        capped = stats.capped,
        fallback_even = stats.even,
    );
    avail
}

/// Outcome counters of one [`reallocate_der_patched`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DerRepairStats {
    /// Columns whose allocation had to be recomputed.
    pub dirty_columns: usize,
    /// Total columns of the patched timeline.
    pub total_columns: usize,
    /// Whether the dirty fraction exceeded the threshold and the whole
    /// allocation was recomputed by [`allocate_der_with`] instead.
    pub fell_back: bool,
}

/// Recompute the listed columns of `avail` in place, exactly as
/// [`allocate_der_with`] would fill them for the same `(timeline, cores,
/// ideal)` — the local-repair half of the online engine. Each column's
/// allocation is a pure function of `(overlap ids, staged DERs, Δ_j,
/// cores)`, so recomputing only the columns whose inputs changed
/// reproduces the full allocator's output bit-for-bit.
///
/// `avail` must be shaped by `timeline` (same CSR layout).
pub fn repair_der_columns(
    timeline: &Timeline,
    cores: usize,
    ideal: &IdealSolution,
    avail: &mut AvailMatrix,
    columns: impl IntoIterator<Item = usize>,
    scratch: &mut Scratch,
) {
    let mut stats = WaterfillStats::default();
    let mut repaired = 0u64;
    for j in columns {
        repaired += 1;
        let sub = timeline.get(j);
        if !sub.is_heavy(cores) {
            let delta = sub.delta();
            avail.col_mut(j).fill(delta);
            continue;
        }
        let ders = &mut scratch.ders;
        ders.clear();
        let iv = sub.interval;
        ders.extend(
            sub.overlapping
                .iter()
                .map(|&i| (i, ideal.exec[i].overlap_len(&iv) * ideal.freq[i])),
        );
        waterfill_into(
            ders,
            sub.delta(),
            cores,
            &mut stats,
            &mut scratch.suffix,
            avail.col_mut(j),
            &sub.overlapping,
        );
    }
    metric_counter!("esched.core.der_repair_columns").add(repaired);
}

/// Build the DER allocation for a *patched* timeline by copying every
/// column whose inputs are unchanged from `old` and recomputing the rest.
///
/// A column of the new timeline is **clean** when some column of `old`
/// has bitwise-identical time bounds and overlap ids, and none of
/// `dirty_tasks` (tasks whose ideal-schedule DER changed: arrived,
/// completed early, or had their window shifted) overlaps it. Clean
/// columns are bulk-copied; everything else is re-waterfilled. Because
/// the per-column waterfill is a pure function of its inputs, the result
/// is bit-identical to `allocate_der_with(tasks, timeline, ...)` from
/// scratch — regardless of *how* the timeline was patched (including a
/// full rebuild fallback).
///
/// When more than `fallback_fraction` of the columns are dirty the
/// copy-and-match bookkeeping stops paying for itself and the whole
/// allocation is recomputed via [`allocate_der_with`] (same result, one
/// fused pass). Light columns only depend on membership and `Δ_j`, so a
/// dirty task alone never dirties a light column.
#[allow(clippy::too_many_arguments)] // mirrors allocate_der_with plus the patch inputs
pub fn reallocate_der_patched(
    tasks: &TaskSet,
    timeline: &Timeline,
    cores: usize,
    ideal: &IdealSolution,
    old: &AvailMatrix,
    dirty_tasks: &[TaskId],
    fallback_fraction: f64,
    scratch: &mut Scratch,
) -> (AvailMatrix, DerRepairStats) {
    let _span = span!(
        Level::Debug,
        "reallocate_der_patched",
        n_tasks = tasks.len(),
        n_subintervals = timeline.len(),
    );
    let mut avail = AvailMatrix::zeros(timeline, tasks.len());
    // Match old and new columns with a two-pointer walk over the
    // time-sorted column bounds; lexicographic order on (start, end)
    // keeps the walk linear through splits and insertions.
    let mut dirty: Vec<usize> = Vec::new();
    let touches_dirty_task =
        |ids: &[TaskId]| dirty_tasks.iter().any(|t| ids.binary_search(t).is_ok());
    let (mut i, mut j) = (0usize, 0usize);
    let (old_n, new_n) = (old.column_count(), avail.column_count());
    while i < old_n && j < new_n {
        let ob = old.col_bounds[i];
        let nb = avail.col_bounds[j];
        if ob == nb {
            let heavy = avail.col_ids(j).len() > cores;
            let clean = old.col_ids(i) == avail.col_ids(j)
                && !(heavy && touches_dirty_task(avail.col_ids(j)));
            if clean {
                let src = old.col_offsets[i]..old.col_offsets[i + 1];
                avail.col_mut(j).copy_from_slice(&old.data[src]);
            } else {
                dirty.push(j);
            }
            i += 1;
            j += 1;
        } else if ob < nb {
            i += 1;
        } else {
            dirty.push(j);
            j += 1;
        }
    }
    dirty.extend(j..new_n);
    let stats = DerRepairStats {
        dirty_columns: dirty.len(),
        total_columns: new_n,
        fell_back: dirty.len() as f64 > fallback_fraction * new_n as f64,
    };
    if stats.fell_back {
        return (
            allocate_der_with(tasks, timeline, cores, ideal, scratch),
            stats,
        );
    }
    repair_der_columns(
        timeline,
        cores,
        ideal,
        &mut avail,
        dirty.iter().copied(),
        scratch,
    );
    event!(
        Level::Debug,
        "der allocation patched",
        dirty = stats.dirty_columns as u64,
        total = stats.total_columns as u64,
    );
    (avail, stats)
}

/// [`allocate_der`] computed by the round-based reference loop
/// unconditionally — the ground truth the differential harness compares
/// the water-filling fast path against (shares agree to `WORK_TOL`).
/// Publishes no metrics, so differential runs don't double-count.
pub fn allocate_der_reference(
    tasks: &TaskSet,
    timeline: &Timeline,
    cores: usize,
    ideal: &IdealSolution,
) -> AvailMatrix {
    let mut avail = AvailMatrix::zeros(timeline, tasks.len());
    allocate_light(timeline, cores, &mut avail);
    let mut stats = WaterfillStats::default();
    let mut ders: Vec<(TaskId, f64)> = Vec::new();
    let mut suffix = Vec::new();
    for j in timeline.heavy_iter(cores) {
        let sub = timeline.get(j);
        ders.clear();
        ders.extend(
            sub.overlapping
                .iter()
                .map(|&i| (i, der(ideal, i, timeline, j))),
        );
        waterfill_reference(&mut ders, sub.delta(), cores, &mut stats, &mut suffix);
        for &(i, alloc) in ders.iter() {
            avail.set(i, j, alloc);
        }
    }
    avail
}

/// Ablation variant of Algorithm 2: shares are proportional to DERs
/// against the *original* totals, capped at `Δ_j`, with **no
/// redistribution** of a cap's surplus. Used by the `ablate` experiment to
/// show that the cap-and-redistribute loop is load-bearing: without it,
/// capped subintervals strand core time and the final frequencies rise.
pub fn allocate_der_no_redistribution(
    tasks: &TaskSet,
    timeline: &Timeline,
    cores: usize,
    ideal: &IdealSolution,
) -> AvailMatrix {
    let mut avail = AvailMatrix::zeros(timeline, tasks.len());
    allocate_light(timeline, cores, &mut avail);
    for j in timeline.heavy_iter(cores) {
        let sub = timeline.get(j);
        let delta = sub.delta();
        let pool = cores as f64 * delta;
        let ctot: f64 = sub
            .overlapping
            .iter()
            .map(|&i| der(ideal, i, timeline, j))
            .sum();
        let cells = avail.col_mut(j);
        for (pos, &i) in sub.overlapping.iter().enumerate() {
            let c = der(ideal, i, timeline, j);
            let share = if ctot > EPS { c * pool / ctot } else { 0.0 };
            cells[pos] = share.min(delta);
        }
    }
    avail
}

/// Ablation variant: shares proportional to the *total execution
/// requirement* `C_i` instead of the DER (cap-and-redistribute retained).
/// This is the naive "bigger task, bigger share" rule; the DER weights it
/// by what the ideal schedule actually wants *inside this subinterval*,
/// which matters when windows and static power differ across tasks.
pub fn allocate_work_proportional(
    tasks: &TaskSet,
    timeline: &Timeline,
    cores: usize,
) -> AvailMatrix {
    let mut avail = AvailMatrix::zeros(timeline, tasks.len());
    allocate_light(timeline, cores, &mut avail);
    for j in timeline.heavy_iter(cores) {
        let sub = timeline.get(j);
        // Same water-filling core as `allocate_der` (including the
        // degenerate even-split fallback), weighted by C_i instead of
        // the DER.
        let mut weights: Vec<(TaskId, f64)> = sub
            .overlapping
            .iter()
            .map(|&i| (i, tasks.get(i).wcec))
            .collect();
        let mut stats = WaterfillStats::default();
        let mut suffix = Vec::new();
        waterfill_into(
            &mut weights,
            sub.delta(),
            cores,
            &mut stats,
            &mut suffix,
            avail.col_mut(j),
            &sub.overlapping,
        );
    }
    avail
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ideal::ideal_schedule;
    use esched_types::PolynomialPower;

    fn vd_tasks() -> TaskSet {
        TaskSet::from_triples(&[
            (0.0, 10.0, 8.0),
            (2.0, 18.0, 14.0),
            (4.0, 16.0, 8.0),
            (6.0, 14.0, 4.0),
            (8.0, 20.0, 10.0),
            (12.0, 22.0, 6.0),
        ])
    }

    #[test]
    fn even_allocation_matches_paper_vd_numbers() {
        let ts = vd_tasks();
        let tl = Timeline::build(&ts);
        let avail = allocate_even(&ts, &tl, 4);
        // Heavy subintervals are index 4 ([8,10]) and 6 ([12,14]); each
        // overlapping task gets (4/5)·2 = 8/5.
        for &i in &[0usize, 1, 2, 3, 4] {
            assert!((avail.get(i, 4) - 1.6).abs() < 1e-12, "task {i}");
        }
        for &i in &[1usize, 2, 3, 4, 5] {
            assert!((avail.get(i, 6) - 1.6).abs() < 1e-12, "task {i}");
        }
        // Light subintervals give the full Δ = 2.
        assert_eq!(avail.get(0, 0), 2.0);
        assert_eq!(avail.get(1, 5), 2.0);
        // Totals reproduce the paper's final-frequency denominators:
        // A_1 = 8 + 8/5, A_2 = 12 + 16/5, A_6 = 8 + 8/5.
        assert!((avail.total(0) - (8.0 + 1.6)).abs() < 1e-9);
        assert!((avail.total(1) - (12.0 + 3.2)).abs() < 1e-9);
        assert!((avail.total(2) - (8.0 + 3.2)).abs() < 1e-9);
        assert!((avail.total(3) - (4.0 + 3.2)).abs() < 1e-9);
        assert!((avail.total(4) - (8.0 + 3.2)).abs() < 1e-9);
        assert!((avail.total(5) - (8.0 + 1.6)).abs() < 1e-9);
    }

    #[test]
    fn der_values_match_paper_vd_numbers() {
        let ts = vd_tasks();
        let tl = Timeline::build(&ts);
        let ideal = ideal_schedule(&ts, &PolynomialPower::cubic());
        // DERs during [8,10] (index 4): 8/5, 7/4, 4/3, 1, 5/3.
        let expect4 = [1.6, 1.75, 4.0 / 3.0, 1.0, 5.0 / 3.0];
        for (i, &e) in expect4.iter().enumerate() {
            assert!(
                (der(&ideal, i, &tl, 4) - e).abs() < 1e-12,
                "task {i}: {} vs {e}",
                der(&ideal, i, &tl, 4)
            );
        }
        // DERs during [12,14] (index 6) for τ2..τ6: 7/4, 4/3, 1, 5/3, 6/5.
        let expect6 = [1.75, 4.0 / 3.0, 1.0, 5.0 / 3.0, 1.2];
        for (k, &e) in expect6.iter().enumerate() {
            let i = k + 1;
            assert!(
                (der(&ideal, i, &tl, 6) - e).abs() < 1e-12,
                "task {i}: {} vs {e}",
                der(&ideal, i, &tl, 6)
            );
        }
    }

    #[test]
    fn algorithm2_matches_paper_vd_allocations() {
        let ts = vd_tasks();
        let tl = Timeline::build(&ts);
        let ideal = ideal_schedule(&ts, &PolynomialPower::cubic());
        let avail = allocate_der(&ts, &tl, 4, &ideal);
        // Paper, interval [8,10]: τ1..τ5 get
        // 1.7415, 1.9048, 1.4512, 1.0884, 1.8141 (4 decimals).
        let expect4 = [1.7415, 1.9048, 1.4512, 1.0884, 1.8141];
        for (i, &e) in expect4.iter().enumerate() {
            assert!(
                (avail.get(i, 4) - e).abs() < 5e-5,
                "task {i} in [8,10]: {} vs {e}",
                avail.get(i, 4)
            );
        }
        // Paper, interval [12,14]: τ2..τ6 get
        // 2, 1.5385, 1.1538, 1.9231, 1.3846 — τ2's share caps at Δ = 2 and
        // the surplus is redistributed.
        let expect6 = [2.0, 1.5385, 1.1538, 1.9231, 1.3846];
        for (k, &e) in expect6.iter().enumerate() {
            let i = k + 1;
            assert!(
                (avail.get(i, 6) - e).abs() < 5e-5,
                "task {i} in [12,14]: {} vs {e}",
                avail.get(i, 6)
            );
        }
    }

    #[test]
    fn allocations_never_exceed_capacity() {
        let ts = vd_tasks();
        let tl = Timeline::build(&ts);
        let ideal = ideal_schedule(&ts, &PolynomialPower::paper(3.0, 0.2));
        for avail in [
            allocate_even(&ts, &tl, 4),
            allocate_der(&ts, &tl, 4, &ideal),
        ] {
            for sub in tl.subintervals() {
                let total: f64 = sub
                    .overlapping
                    .iter()
                    .map(|&i| avail.get(i, sub.index))
                    .sum();
                let cap = if sub.is_heavy(4) {
                    4.0 * sub.delta()
                } else {
                    sub.overlap_count() as f64 * sub.delta()
                };
                assert!(
                    total <= cap + 1e-9,
                    "subinterval {}: {total} > {cap}",
                    sub.index
                );
                for &i in &sub.overlapping {
                    assert!(avail.get(i, sub.index) <= sub.delta() + 1e-9);
                }
            }
        }
    }

    #[test]
    fn positive_der_implies_positive_allocation() {
        // Skewed DERs: caps can consume at most (m−1)·Δ of the pool, so
        // every positive-DER task keeps a positive share.
        let ts = TaskSet::from_triples(&[
            (0.0, 4.0, 8.0),  // very dense
            (0.0, 4.0, 7.0),  // very dense
            (0.0, 4.0, 0.5),  // light
            (0.0, 4.0, 0.25), // lighter
        ]);
        let tl = Timeline::build(&ts);
        let ideal = ideal_schedule(&ts, &PolynomialPower::cubic());
        let avail = allocate_der(&ts, &tl, 2, &ideal);
        for i in 0..4 {
            assert!(avail.get(i, 0) > 0.0, "task {i} starved");
        }
    }

    #[test]
    fn zero_der_task_gets_zero_in_that_subinterval() {
        // With high static power, an early task's ideal execution finishes
        // before a later heavy subinterval → its DER there is 0.
        let ts = TaskSet::from_triples(&[
            (0.0, 20.0, 1.0), // f_crit ≫ 1/20: ideal exec ends early
            (10.0, 20.0, 8.0),
            (10.0, 20.0, 8.0),
        ]);
        let p = PolynomialPower::paper(2.0, 1.0); // f_crit = 1
        let tl = Timeline::build(&ts);
        let ideal = ideal_schedule(&ts, &p);
        // τ0 ideal: runs [0, 1] at f = 1. Subinterval [10, 20] gets DER 0.
        let j = tl
            .subintervals()
            .iter()
            .find(|s| s.interval.start == 10.0)
            .unwrap()
            .index;
        assert_eq!(der(&ideal, 0, &tl, j), 0.0);
        let avail = allocate_der(&ts, &tl, 2, &ideal);
        assert_eq!(avail.get(0, j), 0.0);
        // But τ0 still has available time elsewhere (its light span).
        assert!(avail.total(0) > 0.0);
    }

    #[test]
    fn avail_matrix_accessors() {
        let ts = vd_tasks();
        let tl = Timeline::build(&ts);
        let mut m = AvailMatrix::zeros(&tl, ts.len());
        assert_eq!(m.task_count(), 6);
        assert_eq!(m.get(0, 0), 0.0);
        assert_eq!(m.get(0, 7), 0.0); // outside τ0's span
        m.set(0, 2, 1.5);
        assert_eq!(m.get(0, 2), 1.5);
        assert_eq!(m.total(0), 1.5);
        let row: Vec<(usize, f64)> = m.row(0).collect();
        assert_eq!(row.len(), 5);
        assert_eq!(row[2], (2, 1.5));
    }

    #[test]
    fn no_redistribution_strands_capacity_when_caps_bind() {
        // Interval [12,14] of the V.D example: τ2's proportional share
        // exceeds Δ = 2 and is capped. With redistribution the surplus
        // flows to the others (totals sum to 8); without it the surplus is
        // stranded.
        let ts = vd_tasks();
        let tl = Timeline::build(&ts);
        let ideal = ideal_schedule(&ts, &PolynomialPower::cubic());
        let with = allocate_der(&ts, &tl, 4, &ideal);
        let without = allocate_der_no_redistribution(&ts, &tl, 4, &ideal);
        let sum_with: f64 = (1..=5).map(|i| with.get(i, 6)).sum();
        let sum_without: f64 = (1..=5).map(|i| without.get(i, 6)).sum();
        assert!((sum_with - 8.0).abs() < 1e-9, "with = {sum_with}");
        assert!(
            sum_without < sum_with - 1e-3,
            "no-redistribution did not strand capacity: {sum_without}"
        );
        // In the uncapped interval [8,10] the two rules agree.
        for i in 0..5 {
            assert!(
                (with.get(i, 4) - without.get(i, 4)).abs() < 1e-9,
                "task {i}"
            );
        }
    }

    #[test]
    fn work_proportional_differs_from_der_when_windows_differ() {
        // Two tasks with equal work but very different windows: DER favors
        // the tight one (higher ideal frequency), work-proportional splits
        // evenly.
        let ts = TaskSet::from_triples(&[(0.0, 4.0, 3.0), (0.0, 12.0, 3.0), (0.0, 4.0, 1.0)]);
        let tl = Timeline::build(&ts);
        let ideal = ideal_schedule(&ts, &PolynomialPower::cubic());
        let der_alloc = allocate_der(&ts, &tl, 1, &ideal);
        let work_alloc = allocate_work_proportional(&ts, &tl, 1);
        // Subinterval [0,4] is heavy on one core.
        let j = 0;
        assert!(
            der_alloc.get(0, j) > work_alloc.get(0, j) + 1e-9,
            "DER should favor the tight task: {} vs {}",
            der_alloc.get(0, j),
            work_alloc.get(0, j)
        );
        // Both respect capacity.
        let cap = tl.delta(j);
        for alloc in [&der_alloc, &work_alloc] {
            let total: f64 = (0..3).map(|i| alloc.get(i, j)).sum();
            assert!(total <= cap + 1e-9);
        }
    }

    /// Extract the capped-task id set from a waterfill result: tasks
    /// whose allocation landed on the `Δ_j` cap (up to rounding).
    fn capped_set(entries: &[(TaskId, f64)], delta: f64) -> Vec<TaskId> {
        let mut ids: Vec<TaskId> = entries
            .iter()
            .filter(|&&(_, a)| a >= delta * (1.0 - 1e-9))
            .map(|&(i, _)| i)
            .collect();
        ids.sort_unstable();
        ids
    }

    /// Property test: the sort-free water-filling equals the round-based
    /// reference on 1k random heavy subintervals — same capped index
    /// set, shares within `WORK_TOL` — across zero, tiny (≤ EPS), and
    /// duplicated weights, including all-underflow instances.
    #[test]
    fn waterfill_fast_matches_reference_on_1k_random_heavy_subintervals() {
        use esched_obs::ChaCha8;
        use esched_types::validate::WORK_TOL;
        let mut rng = ChaCha8::seed_from_u64(0x5eed);
        for case in 0..1000u32 {
            let n = rng.gen_range_usize(2, 200);
            let cores = rng.gen_range_usize(1, n); // heavy: n > m
            let delta = rng.gen_range_f64(0.05, 8.0);
            // Every 25th case underflows all DERs to force the
            // even-split fallback; otherwise mix regular, tiny, and
            // zero weights with occasional exact duplicates.
            let underflow = case % 25 == 0;
            let mut entries: Vec<(TaskId, f64)> = (0..n)
                .map(|i| {
                    let w = if underflow {
                        rng.gen_f64() * EPS / n as f64
                    } else if rng.gen_bool(0.08) {
                        0.0
                    } else if rng.gen_bool(0.08) {
                        rng.gen_f64() * EPS
                    } else {
                        rng.gen_range_f64(0.0, 5.0)
                    };
                    (i, w)
                })
                .collect();
            if !underflow && n > 3 {
                let w = entries[0].1;
                entries[2].1 = w; // exact tie
            }
            let mut fast = entries.clone();
            let mut stats = WaterfillStats::default();
            let mut suffix = Vec::new();
            waterfill_reference(&mut entries, delta, cores, &mut stats, &mut suffix);
            waterfill_fast(&mut fast, delta, cores, &mut stats, &mut suffix);
            assert_eq!(
                capped_set(&entries, delta),
                capped_set(&fast, delta),
                "case {case}: capped sets diverge (n={n}, m={cores})"
            );
            fast.sort_unstable_by_key(|e| e.0);
            entries.sort_unstable_by_key(|e| e.0);
            for (r, f) in entries.iter().zip(fast.iter()) {
                assert_eq!(r.0, f.0);
                assert!(
                    (r.1 - f.1).abs() <= WORK_TOL,
                    "case {case}, task {}: reference {} vs fast {} (n={n}, m={cores}, Δ={delta})",
                    r.0,
                    r.1,
                    f.1
                );
            }
        }
    }

    #[test]
    fn all_ders_underflow_takes_even_split_in_both_implementations() {
        // Every DER ≤ EPS with total ≤ EPS: proportional shares carry no
        // signal, so the whole pool is split evenly — nobody is starved.
        let n = 40;
        let cores = 3;
        let delta = 2.0;
        // Weight total ≈ 4.9e-9 ≤ EPS: the whole list underflows.
        let entries: Vec<(TaskId, f64)> = (0..n).map(|i| (i, 1e-10 * (i % 7) as f64)).collect();
        let expect = (cores as f64 * delta / n as f64).min(delta);
        for fast in [false, true] {
            let mut e = entries.clone();
            let mut stats = WaterfillStats::default();
            let mut suffix = Vec::new();
            if fast {
                waterfill_fast(&mut e, delta, cores, &mut stats, &mut suffix);
            } else {
                waterfill_reference(&mut e, delta, cores, &mut stats, &mut suffix);
            }
            assert_eq!(stats.even, n as u64, "fast={fast}");
            assert_eq!(stats.capped, 0, "fast={fast}");
            for &(i, a) in &e {
                assert!(
                    (a - expect).abs() < 1e-9,
                    "fast={fast}, task {i}: {a} vs {expect}"
                );
            }
        }
    }

    #[test]
    fn allocate_der_matches_reference_end_to_end() {
        use esched_obs::ChaCha8;
        use esched_types::validate::WORK_TOL;
        let mut rng = ChaCha8::seed_from_u64(99);
        for case in 0..60 {
            let n = rng.gen_range_usize(20, 48);
            let cores = rng.gen_range_usize(1, 4);
            let triples: Vec<(f64, f64, f64)> = (0..n)
                .map(|_| {
                    let release = rng.gen_range_f64(0.0, 10.0);
                    let len = rng.gen_range_f64(0.5, 12.0);
                    let wcec = rng.gen_range_f64(0.1, 8.0);
                    (release, release + len, wcec)
                })
                .collect();
            let ts = TaskSet::from_triples(&triples);
            let tl = Timeline::build(&ts);
            let ideal = ideal_schedule(&ts, &PolynomialPower::paper(3.0, 0.1));
            let fast = allocate_der(&ts, &tl, cores, &ideal);
            let reference = allocate_der_reference(&ts, &tl, cores, &ideal);
            for sub in tl.subintervals() {
                for &i in &sub.overlapping {
                    let (a, b) = (fast.get(i, sub.index), reference.get(i, sub.index));
                    assert!(
                        (a - b).abs() <= WORK_TOL,
                        "case {case}, task {i}, sub {}: fast {a} vs reference {b}",
                        sub.index
                    );
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "not available")]
    fn set_outside_span_panics() {
        let ts = vd_tasks();
        let tl = Timeline::build(&ts);
        let mut m = AvailMatrix::zeros(&tl, ts.len());
        m.set(5, 0, 1.0); // τ5 starts at subinterval 6
    }

    #[test]
    fn patched_reallocation_is_bit_identical_to_scratch() {
        use esched_obs::ChaCha8;
        let mut rng = ChaCha8::seed_from_u64(0x9a7c_4ed1);
        let power = PolynomialPower::paper(3.0, 0.1);
        let mut scratch = Scratch::new();
        for case in 0..120 {
            let n = rng.gen_range_usize(8, 40);
            let cores = rng.gen_range_usize(1, 5);
            let mut triples: Vec<(f64, f64, f64)> = (0..n)
                .map(|_| {
                    let release = (rng.gen_range_f64(0.0, 20.0) * 2.0).round() / 2.0;
                    let len = (rng.gen_range_f64(0.5, 12.0) * 2.0).round().max(1.0) / 2.0;
                    let wcec = rng.gen_range_f64(0.1, len.min(6.0));
                    (release, release + len, wcec)
                })
                .collect();
            let ts = TaskSet::from_triples(&triples);
            let mut tl = Timeline::build(&ts);
            let ideal = ideal_schedule(&ts, &power);
            let old = allocate_der_with(&ts, &tl, cores, &ideal, &mut scratch);
            // Mutate the set the three ways the online engine does:
            // early completion (wcec shrink), arrival, window shift.
            let victim = rng.gen_range_usize(0, n);
            let dirty = match case % 3 {
                0 => {
                    triples[victim].2 *= rng.gen_range_f64(0.1, 0.9);
                    victim
                }
                1 => {
                    let r = (rng.gen_range_f64(0.0, 25.0) * 2.0).round() / 2.0;
                    let len = (rng.gen_range_f64(0.5, 10.0) * 2.0).round().max(1.0) / 2.0;
                    triples.push((r, r + len, rng.gen_range_f64(0.1, len)));
                    n
                }
                _ => {
                    let pts = tl.boundaries().to_vec();
                    let a = rng.gen_range_usize(0, pts.len() - 1);
                    let b = rng.gen_range_usize(a + 1, pts.len());
                    let span = pts[b] - pts[a];
                    triples[victim] = (pts[a], pts[b], triples[victim].2.min(span * 0.9));
                    victim
                }
            };
            let mutated = TaskSet::from_triples(&triples);
            match case % 3 {
                0 => {} // windows unchanged: same decomposition
                1 => {
                    tl.rebuild_inserted(&mutated, dirty);
                }
                _ => {
                    tl.rebuild_shifted(&mutated, dirty);
                }
            }
            let ideal2 = ideal_schedule(&mutated, &power);
            let fresh = allocate_der_with(&mutated, &tl, cores, &ideal2, &mut scratch);
            let (patched, stats) = reallocate_der_patched(
                &mutated,
                &tl,
                cores,
                &ideal2,
                &old,
                &[dirty],
                0.25,
                &mut scratch,
            );
            assert_eq!(patched, fresh, "case {case} (n = {n}, m = {cores})");
            assert_eq!(stats.total_columns, tl.len());
            // Forcing the global-recompute fallback must not change the
            // result either.
            let (forced, fstats) = reallocate_der_patched(
                &mutated,
                &tl,
                cores,
                &ideal2,
                &old,
                &[dirty],
                0.0,
                &mut scratch,
            );
            assert!(fstats.fell_back || fstats.dirty_columns == 0, "case {case}");
            assert_eq!(forced, fresh, "case {case} forced fallback");
        }
    }

    #[test]
    fn repair_der_columns_reproduces_full_allocation() {
        // Repairing *every* column of a zeroed matrix must reproduce the
        // full allocator output exactly — the bit-identity contract the
        // online engine relies on.
        let ts = vd_tasks();
        let tl = Timeline::build(&ts);
        let ideal = ideal_schedule(&ts, &PolynomialPower::cubic());
        let mut scratch = Scratch::new();
        let full = allocate_der_with(&ts, &tl, 4, &ideal, &mut scratch);
        let mut repaired = AvailMatrix::zeros(&tl, ts.len());
        repair_der_columns(&tl, 4, &ideal, &mut repaired, 0..tl.len(), &mut scratch);
        assert_eq!(repaired, full);
    }
}
