//! Event-driven replanning: the paper's offline algorithms in a
//! *non-clairvoyant* setting.
//!
//! The paper assumes the whole aperiodic set is known in advance. Real
//! aperiodic tasks arrive unannounced, so a practical system would re-run
//! the lightweight heuristic at every arrival over what it knows: the
//! remaining work of in-flight tasks plus the newcomers. (This is exactly
//! the deployment the paper's "low complexity, suitable for real-time
//! systems" argument enables — replanning is cheap enough to do on every
//! release.)
//!
//! [`replan_der`] implements that loop: at each distinct release time it
//! plans the *known* tasks with the DER heuristic, executes the plan only
//! until the next release, and replans. The result quantifies the **price
//! of non-clairvoyance** — how much energy knowing the future saves — and
//! is compared against offline `S^F2` in the `ablate` experiment.

use crate::der::der_schedule;
use esched_types::time::EPS;
use esched_types::{PolynomialPower, Schedule, Segment, Task, TaskId, TaskSet};

/// Outcome of the replanning run.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplanOutcome {
    /// The executed schedule, stitched from per-epoch plans.
    pub schedule: Schedule,
    /// Its total energy.
    pub energy: f64,
    /// Tasks left unfinished at their deadline (cannot happen in the
    /// continuous-frequency model unless a task arrives with an already
    /// impossible window; reported for completeness).
    pub misses: Vec<TaskId>,
    /// Number of planning episodes (distinct release times).
    pub replans: usize,
    /// Highest frequency any plan used — the number that decides discrete
    /// feasibility on a real frequency ladder.
    pub peak_frequency: f64,
}

/// Run non-clairvoyant DER replanning of `tasks` on `cores` cores.
pub fn replan_der(tasks: &TaskSet, cores: usize, power: &PolynomialPower) -> ReplanOutcome {
    // Distinct release times, ascending — the planning epochs.
    let mut epochs: Vec<f64> = tasks.tasks().iter().map(|t| t.release).collect();
    esched_types::time::sort_dedup_times(&mut epochs);

    let n = tasks.len();
    let mut remaining: Vec<f64> = tasks.tasks().iter().map(|t| t.wcec).collect();
    let mut schedule = Schedule::new(cores);
    let mut peak_frequency = 0.0_f64;
    let mut replans = 0usize;

    for (e, &t_now) in epochs.iter().enumerate() {
        let t_next = epochs.get(e + 1).copied().unwrap_or(f64::INFINITY);

        // Known, unfinished, still-schedulable tasks.
        let mut ids: Vec<TaskId> = Vec::new();
        let mut subtasks: Vec<Task> = Vec::new();
        for (i, t) in tasks.iter() {
            if t.release <= t_now + EPS && remaining[i] > EPS && t.deadline > t_now + EPS {
                ids.push(i);
                subtasks.push(Task::of(t_now, t.deadline, remaining[i]));
            }
        }
        if ids.is_empty() {
            continue;
        }
        replans += 1;
        let subset = TaskSet::new(subtasks).expect("subtasks validated");
        let plan = der_schedule(&subset, cores, power);

        // Execute the plan only until the next arrival.
        for seg in plan.schedule.segments() {
            let start = seg.interval.start.max(t_now);
            let end = seg.interval.end.min(t_next);
            if end - start > EPS {
                let task = ids[seg.task];
                schedule.push(Segment::new(task, seg.core, start, end, seg.freq));
                remaining[task] -= seg.freq * (end - start);
                peak_frequency = peak_frequency.max(seg.freq);
            }
        }
    }

    schedule.coalesce();
    let mut misses: Vec<TaskId> = (0..n)
        .filter(|&i| remaining[i] > tasks.get(i).wcec * 1e-6 + EPS)
        .collect();
    misses.sort_unstable();
    let energy = schedule.energy(power);
    ReplanOutcome {
        schedule,
        energy,
        misses,
        replans,
        peak_frequency,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use esched_types::validate_schedule;

    fn vd_tasks() -> TaskSet {
        TaskSet::from_triples(&[
            (0.0, 10.0, 8.0),
            (2.0, 18.0, 14.0),
            (4.0, 16.0, 8.0),
            (6.0, 14.0, 4.0),
            (8.0, 20.0, 10.0),
            (12.0, 22.0, 6.0),
        ])
    }

    #[test]
    fn replanning_completes_everything_legally() {
        let ts = vd_tasks();
        let p = PolynomialPower::cubic();
        let out = replan_der(&ts, 4, &p);
        assert!(out.misses.is_empty(), "misses: {:?}", out.misses);
        validate_schedule(&out.schedule, &ts).assert_legal();
        // Six distinct release times → six planning episodes.
        assert_eq!(out.replans, 6);
    }

    #[test]
    fn clairvoyance_never_hurts() {
        // The offline F2 knows the future; replanning must cost at least
        // as much on every instance (it optimizes myopically).
        let p = PolynomialPower::cubic();
        for ts in [
            vd_tasks(),
            TaskSet::from_triples(&[(0.0, 12.0, 4.0), (2.0, 10.0, 2.0), (4.0, 8.0, 4.0)]),
        ] {
            let offline = der_schedule(&ts, 4, &p);
            let online = replan_der(&ts, 4, &p);
            assert!(
                online.energy >= offline.final_energy * (1.0 - 1e-9),
                "replanning {} beat clairvoyant {}",
                online.energy,
                offline.final_energy
            );
        }
    }

    #[test]
    fn simultaneous_releases_reduce_to_offline() {
        // All tasks released together: one plan, executed in full — the
        // offline schedule exactly.
        let ts = TaskSet::from_triples(&[(0.0, 8.0, 4.0), (0.0, 10.0, 3.0), (0.0, 6.0, 5.0)]);
        let p = PolynomialPower::paper(3.0, 0.1);
        let offline = der_schedule(&ts, 2, &p);
        let online = replan_der(&ts, 2, &p);
        assert_eq!(online.replans, 1);
        assert!(
            (online.energy - offline.final_energy).abs() < 1e-6 * (1.0 + offline.final_energy),
            "single-epoch replan {} vs offline {}",
            online.energy,
            offline.final_energy
        );
    }

    #[test]
    fn late_surprise_arrival_raises_frequencies() {
        // A lazy plan gets disrupted by a dense late arrival: the replan
        // must speed up, and the peak frequency exceeds the clairvoyant
        // plan's.
        let ts = TaskSet::from_triples(&[
            (0.0, 20.0, 6.0),  // would idle along at 0.3 if alone
            (15.0, 18.0, 2.7), // surprise: needs 0.9 of [15,18]
        ]);
        let p = PolynomialPower::cubic();
        let online = replan_der(&ts, 1, &p);
        assert!(online.misses.is_empty());
        validate_schedule(&online.schedule, &ts).assert_legal();
        let offline = der_schedule(&ts, 1, &p);
        assert!(
            online.energy > offline.final_energy,
            "surprise should cost energy: {} vs {}",
            online.energy,
            offline.final_energy
        );
    }

    #[test]
    fn replanning_works_with_static_power() {
        let ts = vd_tasks();
        let p = PolynomialPower::paper(3.0, 0.2);
        let out = replan_der(&ts, 4, &p);
        assert!(out.misses.is_empty());
        validate_schedule(&out.schedule, &ts).assert_legal();
        assert!(out.peak_frequency >= p.critical_frequency() - 1e-9);
    }
}
