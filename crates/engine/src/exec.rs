//! The per-instance pipeline: one [`ScheduleRequest`] in, one
//! [`ScheduleOutcome`] out, all hot allocations drawn from a worker's
//! [`Scratch`].

use crate::config::{Algorithm, ScheduleRequest};
use crate::outcome::{DiscreteSummary, OptSummary, ScheduleOutcome, SimVerdict};
use esched_core::{
    allocate, allocate_even, build_outcome_with, ideal_schedule, optimal_energy_in_pool,
    quantize_schedule, AllocRequest, HeuristicOutcome, NecPoint, Pool, QuantizePolicy, Scratch,
};
use esched_obs::{RequestId, RequestScope, TraceCtx};
use esched_sim::simulate;
use esched_subinterval::Timeline;
use std::time::Instant;

/// Run the full pipeline for one request.
///
/// Panics on a malformed request (`cores == 0`); the pool catches the
/// unwind and reports the job as a failed outcome, so one bad instance
/// never takes down a batch. Each call allocates a fresh [`RequestId`] and
/// holds a [`RequestScope`] for the whole pipeline, so spans, flight
/// records, and metric events emitted anywhere below carry the request —
/// including the panic stamp a malformed request leaves in the flight
/// recorder on its way out.
pub fn execute(scratch: &mut Scratch, request: &ScheduleRequest) -> ScheduleOutcome {
    let request_id = RequestId::next();
    let _req_scope = RequestScope::enter(request_id);
    let _flight = esched_obs::flight_span!("engine_execute");
    let mut trace = TraceCtx::new(request_id);
    assert!(
        request.cores >= 1,
        "ScheduleRequest requires at least one core"
    );
    let cfg = &request.config;
    let _span = esched_obs::span!(
        esched_obs::Level::Debug,
        "engine_execute",
        n_tasks = request.tasks.len(),
        cores = request.cores,
    );
    // One timeline and one ideal solution feed every stage — the
    // heuristics, the convex program, and the NEC normalization — instead
    // of each rebuilding its own as the free functions do.
    let t_phase = Instant::now();
    let timeline = Timeline::build_with(&request.tasks, &mut scratch.timeline);
    let ideal = ideal_schedule(&request.tasks, &request.power);
    trace.record_phase("timeline", t_phase.elapsed());

    let run_even = |scratch: &mut Scratch| -> HeuristicOutcome {
        let avail = allocate_even(&request.tasks, &timeline, request.cores);
        build_outcome_with(
            &request.tasks,
            &timeline,
            request.cores,
            &request.power,
            &ideal,
            avail,
            scratch,
        )
    };
    // The intra-instance pool is only materialized when the knob is set;
    // it shares sizing rules (`ESCHED_ENGINE_THREADS`) with the batch
    // pool, and chunking keeps the outcome byte-identical either way.
    let intra_pool = cfg.intra_parallelism.map(|_| Pool::new());
    let run_der = |scratch: &mut Scratch| -> HeuristicOutcome {
        let mut alloc_req = AllocRequest::new(&request.tasks, &timeline, request.cores, &ideal)
            .with_scratch(&mut *scratch);
        if let (Some(threshold), Some(pool)) = (cfg.intra_parallelism, intra_pool.as_ref()) {
            alloc_req = alloc_req.with_pool(pool).with_parallel_threshold(threshold);
        }
        let avail = allocate(alloc_req);
        build_outcome_with(
            &request.tasks,
            &timeline,
            request.cores,
            &request.power,
            &ideal,
            avail,
            scratch,
        )
    };

    let t_phase = Instant::now();
    let chosen = match cfg.algorithm {
        Algorithm::Der => run_der(scratch),
        Algorithm::Even => run_even(scratch),
    };
    trace.record_phase("der_alloc", t_phase.elapsed());

    let t_phase = Instant::now();
    let (opt, nec, opt_x) = match cfg.solver {
        Some(kind) => {
            // NEC normalizes *both* heuristics, so run the one not chosen
            // above as well.
            let other = match cfg.algorithm {
                Algorithm::Der => run_even(scratch),
                Algorithm::Even => run_der(scratch),
            };
            let (even, der) = match cfg.algorithm {
                Algorithm::Der => (&other, &chosen),
                Algorithm::Even => (&chosen, &other),
            };
            // The decomposed solver reuses the intra-instance pool when
            // one is materialized, so allocation and certification share
            // a single set of workers; serial solvers ignore it.
            let sol = optimal_energy_in_pool(
                &request.tasks,
                &timeline,
                request.cores,
                &request.power,
                &cfg.solve_options,
                kind,
                intra_pool.as_ref(),
            );
            let e = sol.energy;
            let nec = NecPoint {
                ideal: ideal.energy / e,
                i1: even.intermediate_energy / e,
                f1: even.final_energy / e,
                i2: der.intermediate_energy / e,
                f2: der.final_energy / e,
                opt_energy: e,
            };
            let opt = OptSummary {
                solver: kind.name(),
                energy: sol.energy,
                gap: sol.gap,
                iters: sol.iters,
                converged: sol.telemetry.converged,
                telemetry: cfg.telemetry.then_some(sol.telemetry),
            };
            (Some(opt), Some(nec), Some(sol.x))
        }
        None => (None, None, None),
    };
    trace.record_phase("solve", t_phase.elapsed());
    scratch.timeline.recycle(timeline);

    let t_phase = Instant::now();
    let sim = cfg.sim_verify.then(|| {
        let report = simulate(&chosen.schedule, &request.tasks, &request.power);
        SimVerdict {
            clean: report.is_clean(),
            deadline_misses: report.deadline_misses.len(),
            conflicts: report.conflicts.len(),
            energy: report.energy,
        }
    });
    trace.record_phase("sim_verify", t_phase.elapsed());
    let t_phase = Instant::now();
    let discrete = cfg.discrete.as_ref().map(|table| {
        let out = quantize_schedule(&chosen.schedule, table, QuantizePolicy::NextUp);
        DiscreteSummary {
            energy: out.energy,
            misses: out.misses.len(),
            feasible: out.feasible,
        }
    });
    trace.record_phase("discrete", t_phase.elapsed());

    ScheduleOutcome {
        algorithm: cfg.algorithm,
        energy: chosen.final_energy,
        intermediate_energy: chosen.intermediate_energy,
        schedule: chosen.schedule,
        nec,
        opt,
        opt_x,
        sim,
        discrete,
        trace: cfg.telemetry.then_some(trace),
    }
}
