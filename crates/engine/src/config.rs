//! The request side of the front-door API: [`ScheduleRequest`] and the
//! [`EngineConfig`] builder.

use esched_opt::{SolveOptions, SolverKind};
use esched_types::{DiscretePower, PolynomialPower, TaskSet};

/// Which heuristic produces the outcome's schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Algorithm {
    /// The DER-based allocating method (`S^I2` → `S^F2`, Algorithm 2) —
    /// the paper's headline algorithm.
    #[default]
    Der,
    /// The evenly allocating method (`S^I1` → `S^F1`).
    Even,
}

impl Algorithm {
    /// Short stable name (`"der"` / `"even"`), used in JSON and labels.
    pub fn name(&self) -> &'static str {
        match self {
            Algorithm::Der => "der",
            Algorithm::Even => "even",
        }
    }
}

/// Per-request pipeline configuration, built fluently:
///
/// ```
/// use esched_engine::EngineConfig;
/// use esched_opt::SolverKind;
///
/// let cfg = EngineConfig::new()
///     .with_solver(SolverKind::ProjectedGradient)
///     .with_sim_verify(true);
/// assert_eq!(cfg.solver, Some(SolverKind::ProjectedGradient));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct EngineConfig {
    /// Which heuristic's schedule the outcome carries.
    pub algorithm: Algorithm,
    /// When set, also solve the convex program with this method: the
    /// outcome gains the `E^OPT` summary and the full [`NecPoint`]
    /// (which requires running *both* heuristics for normalization).
    /// `None` skips the — by far most expensive — solver stage.
    ///
    /// [`NecPoint`]: esched_core::NecPoint
    pub solver: Option<SolverKind>,
    /// Tolerances for the optional solver stage.
    pub solve_options: SolveOptions,
    /// When set, additionally execute the final schedule on this discrete
    /// frequency table (Section VI.C) and report the quantized energy and
    /// deadline misses.
    pub discrete: Option<DiscretePower>,
    /// Cross-check the final schedule in the discrete-event simulator and
    /// attach the verdict.
    pub sim_verify: bool,
    /// Attach solver telemetry (iterations, stalls, wall time) to the
    /// outcome. Off drops the wall-clock numbers, leaving the outcome a
    /// pure function of the request.
    pub telemetry: bool,
    /// When set, the DER allocation stage fans heavy subinterval ranges
    /// of *this one instance* across the work-stealing pool once the
    /// timeline has at least this many subintervals. Chunk boundaries
    /// are a pure function of the instance, so the outcome stays
    /// byte-identical at any worker count. `None` (the default) keeps
    /// allocation on the calling thread — the right choice for batch
    /// workloads where parallelism across instances already saturates
    /// the pool.
    pub intra_parallelism: Option<usize>,
}

impl Default for EngineConfig {
    fn default() -> Self {
        Self {
            algorithm: Algorithm::Der,
            solver: None,
            solve_options: SolveOptions::default(),
            discrete: None,
            sim_verify: false,
            telemetry: true,
            intra_parallelism: None,
        }
    }
}

impl EngineConfig {
    /// The default configuration: DER heuristic only — no solver, no
    /// simulation, telemetry attached.
    pub fn new() -> Self {
        Self::default()
    }

    /// Select the heuristic.
    pub fn with_algorithm(mut self, algorithm: Algorithm) -> Self {
        self.algorithm = algorithm;
        self
    }

    /// Enable the `E^OPT` stage (and with it NEC) using `solver`.
    pub fn with_solver(mut self, solver: SolverKind) -> Self {
        self.solver = Some(solver);
        self
    }

    /// Set the solver tolerances.
    pub fn with_solve_options(mut self, opts: SolveOptions) -> Self {
        self.solve_options = opts;
        self
    }

    /// Enable discrete-frequency execution against `table`.
    pub fn with_discrete(mut self, table: DiscretePower) -> Self {
        self.discrete = Some(table);
        self
    }

    /// Enable or disable the simulator cross-check.
    pub fn with_sim_verify(mut self, on: bool) -> Self {
        self.sim_verify = on;
        self
    }

    /// Enable or disable telemetry attachment.
    pub fn with_telemetry(mut self, on: bool) -> Self {
        self.telemetry = on;
        self
    }

    /// Fan the DER allocation of a single instance across the pool once
    /// its timeline reaches `threshold_subintervals` subintervals. Use
    /// [`esched_core::DEFAULT_PARALLEL_THRESHOLD`] unless you have
    /// measured otherwise; small instances only lose to fan-out
    /// overhead.
    pub fn with_intra_parallelism(mut self, threshold_subintervals: usize) -> Self {
        self.intra_parallelism = Some(threshold_subintervals);
        self
    }
}

/// One scheduling instance plus its pipeline configuration — the unit of
/// work the engine executes.
#[derive(Debug, Clone, PartialEq)]
pub struct ScheduleRequest {
    /// The aperiodic task set to schedule.
    pub tasks: TaskSet,
    /// Number of identical cores `m` (must be ≥ 1).
    pub cores: usize,
    /// The platform power model `p(f) = f^α + p₀`.
    pub power: PolynomialPower,
    /// Pipeline stages to run.
    pub config: EngineConfig,
}

impl ScheduleRequest {
    /// A request with the default [`EngineConfig`].
    pub fn new(tasks: TaskSet, cores: usize, power: PolynomialPower) -> Self {
        Self {
            tasks,
            cores,
            power,
            config: EngineConfig::default(),
        }
    }

    /// Replace the configuration.
    pub fn with_config(mut self, config: EngineConfig) -> Self {
        self.config = config;
        self
    }
}
