//! # esched-engine
//!
//! The parallel batch scheduling engine: the single execution substrate
//! for experiments, fuzzing, and benchmarks.
//!
//! One instance goes in as a [`ScheduleRequest`] (task set, core count,
//! power model, and an [`EngineConfig`] selecting the heuristic, an
//! optional `E^OPT` solver, optional discrete-frequency execution, and an
//! optional simulator cross-check); one [`ScheduleOutcome`] comes out
//! (schedule, energies, NEC, solver summary, sim verdict). Batches run on
//! a std-only work-stealing thread pool ([`Engine`]) with one
//! [`Scratch`](esched_core::Scratch) arena per worker, so the hot
//! per-instance allocations (timeline buffers, DER staging, pack items)
//! are reused across instances.
//!
//! ```
//! use esched_engine::{Engine, EngineConfig, ScheduleRequest};
//! use esched_types::{PolynomialPower, TaskSet};
//!
//! let tasks = TaskSet::from_triples(&[
//!     (0.0, 12.0, 4.0), (2.0, 10.0, 2.0), (4.0, 8.0, 4.0),
//! ]);
//! let request = ScheduleRequest::new(tasks, 2, PolynomialPower::cubic());
//! let outcome = Engine::with_threads(1).run(&request).unwrap();
//! assert!(outcome.energy > 0.0);
//! ```
//!
//! Worker count: [`Engine::new`] honours `ESCHED_ENGINE_THREADS` when
//! set, else uses the machine's available parallelism;
//! [`Engine::with_threads`] pins it. The batch output is a pure function
//! of the input batch — independent of worker count and steal
//! interleaving — because results are indexed by submission order and
//! every pipeline stage is deterministic.
//!
//! The pool machinery itself lives in [`esched_core::Pool`]; [`Engine`]
//! wraps it with request/outcome plumbing. For very large single
//! instances, [`EngineConfig::with_intra_parallelism`] additionally fans
//! the DER allocation of *one* request across the pool — chunk
//! boundaries are a pure function of the instance, so outcomes stay
//! byte-identical at any worker count.
//!
//! Metrics (`esched_obs::metrics`): `esched.engine.batches`,
//! `esched.engine.jobs`, `esched.engine.steals`, `esched.engine.panics`
//! counters; `esched.engine.workers` and `esched.engine.queue_depth`
//! gauges; `esched.engine.batch_wall_ns` and `esched.engine.job_wall_ns`
//! histograms.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod audit;
pub mod config;
mod exec;
pub mod online;
pub mod outcome;
pub mod pool;

pub use audit::{AuditConfig, ShadowAuditor};
pub use config::{Algorithm, EngineConfig, ScheduleRequest};
pub use online::{OnlineEngine, OnlineError, OnlineEvent, ReplanReport};
pub use outcome::{DiscreteSummary, EngineError, OptSummary, ScheduleOutcome, SimVerdict};
pub use pool::Engine;
