//! Energy-regret shadow audit for the online engine.
//!
//! A live [`OnlineEngine`](crate::OnlineEngine) keeps its plan bit-identical
//! to the offline pipeline — but "identical to the heuristic" says nothing
//! about "close to optimal". The paper's convex program gives a principled
//! yardstick: E^OPT, the optimal-energy lower bound the DER heuristic is
//! scored against (the same reference MORA-style slack reclamation uses).
//! The shadow audit samples the live stream — every
//! [`AuditConfig::every`] applied events — and re-certifies the plan *off
//! the hot path*:
//!
//! 1. **Divergence check**: replay the from-scratch offline pipeline
//!    (timeline build → ideal case → DER water-filling → final assignment)
//!    on a snapshot of the live task set and compare its `E^{F2}` against
//!    the engine's maintained energy *bit-for-bit*. Any mismatch means the
//!    incremental state has silently drifted — the one failure mode the
//!    byte-identity tests cannot catch in production.
//! 2. **Energy regret**: solve the convex program (warm-started from the
//!    previous audit's per-task totals via
//!    [`EnergyProgram::warm_start_from_totals`]) and publish
//!    `esched.online.energy_regret` = (live − E^OPT) / E^OPT.
//!
//! Results flow into the stream's [`HealthMonitor`], where the
//! [`SloPolicy`](esched_obs::SloPolicy) regret ceiling and the
//! always-armed divergence check turn silent plan-quality drift into
//! latched, alertable `HealthEvent`s.
//!
//! The audit runs on a dedicated background worker thread (one per
//! auditor, at most one job in flight — an audit that would overlap a
//! still-running one is *skipped* and counted under
//! `esched.online.audits_skipped`, keeping the sampler strictly
//! non-blocking). [`AuditConfig::synchronous`] runs jobs inline on the
//! caller instead, which tests use for determinism.

use esched_core::{allocate, final_assignment, ideal_schedule, AllocRequest, Scratch};
use esched_obs::health::HealthMonitor;
use esched_opt::{EnergyProgram, SolveOptions, SolverKind};
use esched_subinterval::Timeline;
use esched_types::{PolynomialPower, TaskSet};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;

/// Configuration of the energy-regret shadow audit.
#[derive(Debug, Clone)]
pub struct AuditConfig {
    /// Audit every `every`-th applied event (`0` disables periodic
    /// sampling; [`OnlineEngine::force_audit`](crate::OnlineEngine::force_audit)
    /// still works).
    pub every: u64,
    /// Solver used to recompute E^OPT.
    pub solver: SolverKind,
    /// Options for the E^OPT solve (warm starts are layered on top).
    pub solve_options: SolveOptions,
    /// Replay the offline pipeline and flag any bitwise energy mismatch.
    pub divergence_check: bool,
    /// Run audits inline on the caller instead of the background worker.
    /// Deterministic, but puts the solve on the hot path — tests only.
    pub synchronous: bool,
}

impl Default for AuditConfig {
    fn default() -> Self {
        Self {
            every: 64,
            solver: SolverKind::default(),
            solve_options: SolveOptions::default(),
            divergence_check: true,
            synchronous: false,
        }
    }
}

impl AuditConfig {
    /// Set the sampling period (audit every `every`-th event).
    pub fn with_every(mut self, every: u64) -> Self {
        self.every = every;
        self
    }

    /// Select the E^OPT solver.
    pub fn with_solver(mut self, solver: SolverKind) -> Self {
        self.solver = solver;
        self
    }

    /// Replace the solve options.
    pub fn with_solve_options(mut self, opts: SolveOptions) -> Self {
        self.solve_options = opts;
        self
    }

    /// Enable or disable the offline-pipeline divergence check.
    pub fn with_divergence_check(mut self, on: bool) -> Self {
        self.divergence_check = on;
        self
    }

    /// Run audits inline on the caller (deterministic; tests only).
    pub fn with_synchronous(mut self, on: bool) -> Self {
        self.synchronous = on;
        self
    }
}

/// Primal/dual warm-start state carried from one audit to the next.
struct AuditWarmState {
    /// Per-task totals `X_i` of the previous optimum.
    totals: Vec<f64>,
    /// Unscaled dual point of the previous solve (`None` for the serial
    /// solvers, which carry no dual state).
    dual: Option<Vec<f64>>,
    /// Flat dimension the dual was computed at; a changed layout
    /// invalidates it.
    dim: usize,
}

/// One audit job: an immutable snapshot of the live plan.
struct AuditJob {
    tasks: TaskSet,
    cores: usize,
    power: PolynomialPower,
    live_energy: f64,
}

/// State shared between the sampler side and the audit worker.
struct AuditShared {
    monitor: Arc<HealthMonitor>,
    solver: SolverKind,
    solve_options: SolveOptions,
    divergence_check: bool,
    /// Warm-start carrier between audits (same trick as online
    /// re-certification): per-task totals of the previous audit's optimum
    /// plus, when the solver has dual state (ADMM), its final dual point
    /// and the flat dimension it belongs to. Totals survive task-set
    /// growth (remapped via [`EnergyProgram::warm_start_from_totals`]);
    /// duals are layout-bound, so they are applied only while `dim`
    /// still matches.
    warm: Mutex<Option<AuditWarmState>>,
    /// Multiplier applied to the live energy before computing regret.
    /// `0.0` in production; fault-injection tests raise it to simulate a
    /// quality regression without perturbing the actual plan.
    inflation_bits: AtomicU64,
}

impl AuditShared {
    fn inflation(&self) -> f64 {
        f64::from_bits(self.inflation_bits.load(Ordering::Relaxed))
    }

    /// Run one audit job to completion and publish to the monitor.
    fn run(&self, job: &AuditJob) {
        let _flight = esched_obs::flight_span!("shadow_audit_job");
        // From-scratch offline replay: must land on the live energy bits.
        let timeline = Timeline::build(&job.tasks);
        let ideal = ideal_schedule(&job.tasks, &job.power);
        let mut scratch = Scratch::new();
        let avail = allocate(
            AllocRequest::new(&job.tasks, &timeline, job.cores, &ideal).with_scratch(&mut scratch),
        );
        let totals = avail.totals();
        let assignment = final_assignment(&job.tasks, &totals, &job.power);
        let works: Vec<f64> = job.tasks.tasks().iter().map(|t| t.wcec).collect();
        let offline_energy = assignment.energy(&works, &job.power);
        let diverged =
            self.divergence_check && offline_energy.to_bits() != job.live_energy.to_bits();

        // E^OPT, warm-started from the previous audit when the task count
        // still matches (arrivals grow the set between audits); a
        // dual-carrying solver additionally resumes its prices while the
        // flat layout is unchanged.
        let ep = EnergyProgram::new(&job.tasks, &timeline, job.cores, job.power);
        let mut warm = self.warm.lock().unwrap_or_else(|e| e.into_inner());
        let opts = match warm.as_ref() {
            Some(w) if w.totals.len() == job.tasks.len() => {
                let mut opts = self
                    .solve_options
                    .clone()
                    .with_warm_start(ep.warm_start_from_totals(&w.totals));
                if let Some(dual) = w.dual.as_ref().filter(|_| w.dim == ep.dim()) {
                    opts = opts.with_warm_start_dual(dual.clone());
                }
                opts
            }
            _ => self.solve_options.clone(),
        };
        let sol = self.solver.solve(&ep, &opts);
        *warm = Some(AuditWarmState {
            totals: ep.total_times(&sol.x),
            dual: sol.dual.clone(),
            dim: ep.dim(),
        });
        drop(warm);

        let e_opt = sol.objective;
        let live = job.live_energy * (1.0 + self.inflation());
        let regret = if e_opt > 0.0 && e_opt.is_finite() {
            (live - e_opt) / e_opt
        } else {
            0.0
        };
        self.monitor.observe_audit(regret, diverged);
    }
}

/// The sampled background auditor. Owned by the engine; dropping it shuts
/// the worker down (the channel closes and the thread drains and exits).
pub struct ShadowAuditor {
    every: u64,
    shared: Arc<AuditShared>,
    /// True while a job is in flight on the worker; offers are dropped
    /// (and counted) rather than queued behind it.
    pending: Arc<AtomicBool>,
    tx: Option<mpsc::Sender<AuditJob>>,
    worker: Option<JoinHandle<()>>,
}

impl std::fmt::Debug for ShadowAuditor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShadowAuditor")
            .field("every", &self.every)
            .field("synchronous", &self.tx.is_none())
            .finish_non_exhaustive()
    }
}

impl ShadowAuditor {
    /// Build an auditor publishing into `monitor`. Spawns the background
    /// worker unless [`AuditConfig::synchronous`] is set.
    pub fn new(cfg: &AuditConfig, monitor: Arc<HealthMonitor>) -> Self {
        let shared = Arc::new(AuditShared {
            monitor,
            solver: cfg.solver,
            solve_options: cfg.solve_options.clone(),
            divergence_check: cfg.divergence_check,
            warm: Mutex::new(None),
            inflation_bits: AtomicU64::new(0.0f64.to_bits()),
        });
        let pending = Arc::new(AtomicBool::new(false));
        let (tx, worker) = if cfg.synchronous {
            (None, None)
        } else {
            let (tx, rx) = mpsc::channel::<AuditJob>();
            let shared2 = Arc::clone(&shared);
            let pending2 = Arc::clone(&pending);
            let handle = std::thread::Builder::new()
                .name("esched-audit".into())
                .spawn(move || {
                    for job in rx {
                        shared2.run(&job);
                        pending2.store(false, Ordering::Release);
                    }
                })
                .expect("spawn audit worker");
            (Some(tx), Some(handle))
        };
        Self {
            every: cfg.every,
            shared,
            pending,
            tx,
            worker,
        }
    }

    /// Whether the `n`-th applied event should trigger an audit.
    pub fn due(&self, events_seen: u64) -> bool {
        self.every > 0 && events_seen.is_multiple_of(self.every)
    }

    /// Set the fault-injection energy multiplier: regret is computed from
    /// `live_energy * (1 + inflation)`. Production value is `0.0`.
    pub fn set_energy_inflation(&self, inflation: f64) {
        self.shared
            .inflation_bits
            .store(inflation.to_bits(), Ordering::Relaxed);
    }

    /// Offer a sampled job. Non-blocking: if the worker is busy, the job
    /// is dropped and `esched.online.audits_skipped` incremented. In
    /// synchronous mode the job runs inline instead.
    fn offer(&self, job: AuditJob) {
        match &self.tx {
            None => self.shared.run(&job),
            Some(tx) => {
                if self.pending.swap(true, Ordering::AcqRel) {
                    esched_obs::metric_counter!("esched.online.audits_skipped").inc();
                    return;
                }
                if tx.send(job).is_err() {
                    // Worker died (only on panic); surface as a skip.
                    self.pending.store(false, Ordering::Release);
                    esched_obs::metric_counter!("esched.online.audits_skipped").inc();
                }
            }
        }
    }

    /// Offer a sampled audit of the given plan snapshot (non-blocking).
    pub(crate) fn offer_snapshot(
        &self,
        tasks: &TaskSet,
        cores: usize,
        power: PolynomialPower,
        live_energy: f64,
    ) {
        self.offer(AuditJob {
            tasks: tasks.clone(),
            cores,
            power,
            live_energy,
        });
    }

    /// Run one audit inline on the calling thread, bypassing the sampler
    /// and the busy check. Blocking and deterministic.
    pub(crate) fn force(
        &self,
        tasks: &TaskSet,
        cores: usize,
        power: PolynomialPower,
        live_energy: f64,
    ) {
        self.shared.run(&AuditJob {
            tasks: tasks.clone(),
            cores,
            power,
            live_energy,
        });
    }
}

impl Drop for ShadowAuditor {
    fn drop(&mut self) {
        drop(self.tx.take());
        if let Some(handle) = self.worker.take() {
            let _ = handle.join();
        }
    }
}
