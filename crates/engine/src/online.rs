//! Online arrival engine: incremental replanning over a stream of events.
//!
//! The batch [`Engine`](crate::Engine) treats every instance as fresh: a
//! request goes through timeline construction, the ideal case, DER
//! water-filling, and refinement from scratch. An online scheduler sees a
//! *stream* of small mutations instead — a task arrives, a task finishes
//! early, a window shifts — and rebuilding the whole plan per event wastes
//! almost all of that work: one arrival touches the subintervals its
//! window overlaps and nothing else.
//!
//! [`OnlineEngine`] maintains the DER pipeline's intermediate state
//! (timeline, ideal solution, availability matrix, per-task totals and
//! final frequencies) across events and patches it locally:
//!
//! * the timeline is updated in place via
//!   [`Timeline::rebuild_inserted`] / [`Timeline::rebuild_shifted`],
//!   which fall back to a full rebuild whenever an in-place patch could
//!   diverge bitwise from [`Timeline::build`];
//! * the availability matrix is repaired column-locally by
//!   [`reallocate_der_patched`]: only columns whose structure or whose
//!   heavy-column inputs changed are recomputed, and when the dirty
//!   fraction exceeds [`OnlineEngine::with_fallback_fraction`] the whole
//!   allocation is recomputed globally instead;
//! * an early completion ([`OnlineEvent::Complete`]) reclaims the unused
//!   `C_i` mass MORA-style: the task's execution requirement drops to the
//!   work it actually performed, the water-fill repair hands the freed
//!   time to co-runners on the overlapping subintervals, and the final
//!   frequency assignment slows them down accordingly;
//! * optionally ([`OnlineEngine::with_recertify`]) each repaired plan is
//!   re-certified against the convex program with a solver warm-started
//!   from the previous optimum via
//!   [`EnergyProgram::warm_start_from_totals`], and the KKT residual of
//!   the new optimum is reported.
//!
//! Every maintained structure is *bit-identical* to what the offline
//! pipeline computes for the same final task set — the patch paths either
//! reproduce the from-scratch result exactly or fall back to it — so
//! [`OnlineEngine::outcome`] yields a [`ScheduleOutcome`] that compares
//! (and JSON-encodes) byte-for-byte equal to [`Engine::run`] on the
//! equivalent request, at any worker count.

use crate::audit::{AuditConfig, ShadowAuditor};
use crate::config::{Algorithm, EngineConfig, ScheduleRequest};
use crate::outcome::{DiscreteSummary, OptSummary, ScheduleOutcome, SimVerdict};
use esched_core::{
    allocate, allocate_even, build_outcome_with, final_assignment, final_schedule_with,
    ideal_schedule, optimal_energy_in, quantize_schedule, reallocate_der_patched, AllocRequest,
    AvailMatrix, DerRepairStats, IdealSolution, NecPoint, Pool, QuantizePolicy, Scratch,
    DEFAULT_PARALLEL_THRESHOLD,
};
use esched_obs::health::{HealthMonitor, SloPolicy};
use esched_obs::{RequestId, RequestScope, TraceCtx};
use esched_opt::{kkt_report, EnergyProgram, KktReport};
use esched_sim::simulate;
use esched_subinterval::Timeline;
use esched_types::{
    validate_schedule, FrequencyAssignment, PolynomialPower, Task, TaskId, TaskSet,
};
use std::sync::Arc;
use std::time::Instant;

/// Default dirty-column fraction above which a patch recomputes the whole
/// DER allocation instead of repairing columns one by one.
pub const DEFAULT_FALLBACK_FRACTION: f64 = 0.25;

/// One mutation of the live task set.
#[derive(Debug, Clone, PartialEq)]
pub enum OnlineEvent {
    /// A new task arrives; it is assigned the next [`TaskId`].
    Arrive(Task),
    /// Task `task` completed having performed `actual_work` cycles.
    /// Early completion (`actual_work < C_i`) reclaims the unused mass:
    /// co-runners on the task's subintervals inherit the freed time.
    Complete {
        /// Which task completed.
        task: TaskId,
        /// The work it actually performed (must be positive and finite).
        actual_work: f64,
    },
    /// Task `task`'s execution window moved to `[release, deadline]`.
    Shift {
        /// Which task shifted.
        task: TaskId,
        /// The new release time.
        release: f64,
        /// The new deadline (must be definitely after `release`).
        deadline: f64,
    },
}

/// Why an event was rejected. The engine's plan is untouched when
/// [`OnlineEngine::apply`] returns one of these.
#[derive(Debug, Clone, PartialEq)]
pub enum OnlineError {
    /// The event referenced a task id outside the live set.
    UnknownTask {
        /// The offending id.
        task: TaskId,
        /// Current number of live tasks.
        len: usize,
    },
    /// The mutated task would violate task validation (empty window,
    /// non-finite field, non-positive work).
    InvalidTask {
        /// Human-readable validation failure.
        message: String,
    },
}

impl std::fmt::Display for OnlineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OnlineError::UnknownTask { task, len } => {
                write!(f, "event references task {task}, but only {len} are live")
            }
            OnlineError::InvalidTask { message } => {
                write!(f, "event produces an invalid task: {message}")
            }
        }
    }
}

impl std::error::Error for OnlineError {}

/// Summary of the optional warm-started re-certification of one repair.
#[derive(Debug, Clone, PartialEq)]
pub struct RecertSummary {
    /// KKT certificate of the re-solved optimum.
    pub kkt: KktReport,
    /// Whether the warm-started solver reported convergence.
    pub converged: bool,
    /// Iterations the warm-started solve used.
    pub iters: usize,
}

/// What one [`OnlineEngine::apply`] call did.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplanReport {
    /// Whether the timeline patch fell back to a full
    /// [`Timeline::build`] (boundary within tolerance of an existing one,
    /// vacated boundary, or other degenerate geometry).
    pub timeline_rebuilt: bool,
    /// Column-repair statistics from [`reallocate_der_patched`].
    pub der: DerRepairStats,
    /// Final analytic energy (`E^{F2}`) of the repaired plan.
    pub final_energy: f64,
    /// Warm-started re-certification, when enabled.
    pub recertified: Option<RecertSummary>,
}

/// An incremental, single-threaded online scheduler over the DER pipeline.
///
/// ```
/// use esched_engine::online::{OnlineEngine, OnlineEvent};
/// use esched_types::{PolynomialPower, Task, TaskSet};
///
/// let seed = TaskSet::from_triples(&[(0.0, 12.0, 4.0), (2.0, 10.0, 2.0)]);
/// let mut engine = OnlineEngine::new(seed, 2, PolynomialPower::cubic());
/// engine.apply(&OnlineEvent::Arrive(Task::of(4.0, 8.0, 4.0))).unwrap();
/// let outcome = engine.outcome();
/// assert!(outcome.energy > 0.0);
/// ```
#[derive(Debug)]
pub struct OnlineEngine {
    tasks: Vec<Task>,
    cores: usize,
    power: PolynomialPower,
    config: EngineConfig,
    fallback_fraction: f64,
    verify: bool,
    recertify: bool,
    // Maintained pipeline state, always bit-identical to a from-scratch
    // run on the current task set.
    task_set: TaskSet,
    timeline: Timeline,
    ideal: IdealSolution,
    avail: AvailMatrix,
    total_avail: Vec<f64>,
    assignment: FrequencyAssignment,
    final_energy: f64,
    scratch: Scratch,
    // Intra-instance allocation pool, materialized by `with_config` when
    // the `intra_parallelism` knob is set. Chunking keeps repairs
    // byte-identical to the serial path at any worker count.
    intra_pool: Option<Pool>,
    // Per-task totals X_i of the last certified optimum, if any — the
    // warm-start carrier across task-set mutations.
    last_opt_totals: Option<Vec<f64>>,
    // Unscaled dual point of the last certified optimum, tagged with the
    // flat dimension it belongs to. Unlike totals, duals are layout-bound
    // — they are re-used only while `dim` is unchanged, letting a
    // dual-carrying solver (ADMM) resume its consensus prices across
    // no-layout-change replans.
    last_opt_duals: Option<(usize, Vec<f64>)>,
    // Streaming SLO/health layer (obs::health), when enabled. Strictly
    // observational: recording never touches plan state, so byte-identity
    // with the offline pipeline is unaffected.
    health: Option<Arc<HealthMonitor>>,
    // Sampled energy-regret shadow auditor, when enabled.
    auditor: Option<ShadowAuditor>,
    // Successfully applied events, for audit sampling.
    events_seen: u64,
}

impl OnlineEngine {
    /// Boot the engine from an initial task set (full offline build).
    ///
    /// # Panics
    /// If `cores == 0`.
    pub fn new(tasks: TaskSet, cores: usize, power: PolynomialPower) -> Self {
        assert!(cores >= 1, "OnlineEngine requires at least one core");
        let timeline = Timeline::build(&tasks);
        let ideal = ideal_schedule(&tasks, &power);
        let mut scratch = Scratch::new();
        let avail = allocate(
            AllocRequest::new(&tasks, &timeline, cores, &ideal).with_scratch(&mut scratch),
        );
        let total_avail = avail.totals();
        let assignment = final_assignment(&tasks, &total_avail, &power);
        let works: Vec<f64> = tasks.tasks().iter().map(|t| t.wcec).collect();
        let final_energy = assignment.energy(&works, &power);
        Self {
            tasks: tasks.tasks().to_vec(),
            cores,
            power,
            config: EngineConfig::default(),
            fallback_fraction: DEFAULT_FALLBACK_FRACTION,
            verify: false,
            recertify: false,
            task_set: tasks,
            timeline,
            ideal,
            avail,
            total_avail,
            assignment,
            final_energy,
            scratch,
            intra_pool: None,
            last_opt_totals: None,
            last_opt_duals: None,
            health: None,
            auditor: None,
            events_seen: 0,
        }
    }

    /// Replace the pipeline configuration used by [`OnlineEngine::outcome`].
    ///
    /// # Panics
    /// If the configuration selects [`Algorithm::Even`]: the online engine
    /// maintains the DER pipeline's state incrementally and has nothing to
    /// patch for the evenly-allocating heuristic.
    pub fn with_config(mut self, config: EngineConfig) -> Self {
        assert_eq!(
            config.algorithm,
            Algorithm::Der,
            "OnlineEngine is incremental over the DER pipeline only"
        );
        self.intra_pool = config.intra_parallelism.map(|_| Pool::new());
        self.config = config;
        self
    }

    /// Set the dirty-column fraction above which DER repair falls back to
    /// a global recompute (default [`DEFAULT_FALLBACK_FRACTION`]).
    pub fn with_fallback_fraction(mut self, fraction: f64) -> Self {
        self.fallback_fraction = fraction;
        self
    }

    /// Run the validator⟺simulator oracle after every applied event,
    /// panicking on any violation. Expensive (materializes the final
    /// schedule per event) — meant for fuzzing and small instances.
    pub fn with_verify(mut self, on: bool) -> Self {
        self.verify = on;
        self
    }

    /// Re-certify every repaired plan against the convex program with a
    /// warm-started solver, reporting the KKT residual in the
    /// [`ReplanReport`]. Expensive — meant for auditing, not the hot path.
    pub fn with_recertify(mut self, on: bool) -> Self {
        self.recertify = on;
        self
    }

    /// Attach a fresh [`HealthMonitor`] evaluating `policy` over the
    /// stream: every applied event records its latency, repair fraction,
    /// and fallback into the monitor's sliding windows, heartbeats it,
    /// and rate-limited SLO evaluation runs once per sub-window tick.
    /// Recording is strictly observational — plan state (and therefore
    /// online↔offline byte-identity) is untouched.
    pub fn with_health(self, policy: SloPolicy) -> Self {
        self.with_health_monitor(Arc::new(HealthMonitor::new(policy)))
    }

    /// Attach an existing (possibly shared) [`HealthMonitor`] — e.g. one
    /// a status exporter or daemon also holds.
    pub fn with_health_monitor(mut self, monitor: Arc<HealthMonitor>) -> Self {
        self.health = Some(monitor);
        self
    }

    /// Enable the sampled energy-regret shadow audit (see
    /// [`crate::audit`]): every [`AuditConfig::every`] applied events, a
    /// background worker replays the offline pipeline on a snapshot of
    /// the live task set (bitwise divergence check) and recomputes E^OPT
    /// warm-started, publishing `esched.online.energy_regret` into the
    /// health monitor. Attaches a default-policy [`HealthMonitor`] if
    /// none was configured.
    pub fn with_audit(mut self, cfg: AuditConfig) -> Self {
        if self.health.is_none() {
            self.health = Some(Arc::new(HealthMonitor::new(SloPolicy::default())));
        }
        let monitor = Arc::clone(self.health.as_ref().expect("just ensured"));
        self.auditor = Some(ShadowAuditor::new(&cfg, monitor));
        self
    }

    /// The attached health monitor, if any.
    pub fn health(&self) -> Option<&Arc<HealthMonitor>> {
        self.health.as_ref()
    }

    /// Run one shadow audit inline on the calling thread (blocking,
    /// deterministic — bypasses the sampler). Returns the published
    /// regret, or `None` when no auditor is configured.
    pub fn force_audit(&self) -> Option<f64> {
        let auditor = self.auditor.as_ref()?;
        auditor.force(&self.task_set, self.cores, self.power, self.final_energy);
        self.health.as_ref().and_then(|h| h.regret())
    }

    /// Set the audit fault-injection multiplier: regret is computed from
    /// `live_energy * (1 + inflation)`. No-op without an auditor; `0.0`
    /// restores production behaviour.
    pub fn set_audit_energy_inflation(&self, inflation: f64) {
        if let Some(a) = &self.auditor {
            a.set_energy_inflation(inflation);
        }
    }

    /// The live task set.
    pub fn tasks(&self) -> &TaskSet {
        &self.task_set
    }

    /// Number of live tasks.
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// Always false: the engine is seeded with a non-empty set and events
    /// never remove tasks.
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    /// Final analytic energy (`E^{F2}`) of the current plan.
    pub fn final_energy(&self) -> f64 {
        self.final_energy
    }

    /// The current per-task frequency assignment.
    pub fn assignment(&self) -> &FrequencyAssignment {
        &self.assignment
    }

    /// Apply one event, patching the plan incrementally. On error the
    /// plan is untouched.
    pub fn apply(&mut self, event: &OnlineEvent) -> Result<ReplanReport, OnlineError> {
        let _flight = esched_obs::flight_span!("online_apply");
        let t_start = Instant::now();
        let (dirty_task, patched) = match event {
            OnlineEvent::Arrive(task) => {
                Task::new(task.release, task.deadline, task.wcec).map_err(|e| {
                    OnlineError::InvalidTask {
                        message: e.to_string(),
                    }
                })?;
                self.tasks.push(*task);
                let id = self.tasks.len() - 1;
                self.rebuild_task_set();
                // An arrival changes no existing task's ideal solution;
                // every column it overlaps gains a member and is caught by
                // the repair's structural id comparison.
                (None, self.timeline.rebuild_inserted(&self.task_set, id))
            }
            OnlineEvent::Complete { task, actual_work } => {
                let t = *self.checked(*task)?;
                Task::new(t.release, t.deadline, *actual_work).map_err(|e| {
                    OnlineError::InvalidTask {
                        message: e.to_string(),
                    }
                })?;
                self.tasks[*task].wcec = *actual_work;
                self.rebuild_task_set();
                // Event points are untouched — the timeline is exactly the
                // one a full build would produce. Only columns where the
                // completed task contends (heavy columns) can change.
                (Some(*task), true)
            }
            OnlineEvent::Shift {
                task,
                release,
                deadline,
            } => {
                let t = *self.checked(*task)?;
                Task::new(*release, *deadline, t.wcec).map_err(|e| OnlineError::InvalidTask {
                    message: e.to_string(),
                })?;
                self.tasks[*task].release = *release;
                self.tasks[*task].deadline = *deadline;
                self.rebuild_task_set();
                (
                    Some(*task),
                    self.timeline.rebuild_shifted(&self.task_set, *task),
                )
            }
        };
        let timeline_rebuilt = !patched;

        // The ideal case is embarrassingly per-task; a full recompute is
        // O(n) closed forms plus one compensated sum — microseconds even at
        // n = 1024 — and is trivially bit-identical to the offline stage.
        self.ideal = ideal_schedule(&self.task_set, &self.power);

        let dirty: &[TaskId] = match dirty_task {
            Some(id) => &[id],
            None => &[],
        };
        let (avail, der) = reallocate_der_patched(
            &self.task_set,
            &self.timeline,
            self.cores,
            &self.ideal,
            &self.avail,
            dirty,
            self.fallback_fraction,
            self.intra_pool.as_ref(),
            self.config
                .intra_parallelism
                .unwrap_or(DEFAULT_PARALLEL_THRESHOLD),
            &mut self.scratch,
        );
        self.avail = avail;
        // Totals and the final assignment are O(nnz) and O(n); recomputing
        // them in full keeps the Neumaier summation order — and therefore
        // the bits — identical to the offline pipeline.
        self.total_avail = self.avail.totals();
        self.assignment = final_assignment(&self.task_set, &self.total_avail, &self.power);
        let works: Vec<f64> = self.tasks.iter().map(|t| t.wcec).collect();
        self.final_energy = self.assignment.energy(&works, &self.power);

        let recertified = self.recertify.then(|| self.recertify_now());
        let elapsed_ns = t_start.elapsed().as_nanos().min(u64::MAX as u128) as u64;
        esched_obs::metric_histogram!("esched.engine.online_replan_ns").record(elapsed_ns);
        esched_obs::metric_counter!("esched.engine.online_events").inc();
        self.events_seen += 1;
        if let Some(h) = &self.health {
            h.observe_replan(
                elapsed_ns,
                der.dirty_columns,
                der.total_columns,
                timeline_rebuilt || der.fell_back,
            );
            // Breaches latch inside the monitor and are published to the
            // metrics registry + flight recorder by `evaluate`; the
            // replan path only pays the rate-limited trigger.
            let _ = h.maybe_evaluate();
        }
        if let Some(a) = &self.auditor {
            if a.due(self.events_seen) {
                a.offer_snapshot(&self.task_set, self.cores, self.power, self.final_energy);
            }
        }

        if self.verify {
            if let Err(msg) = self.verify_current() {
                panic!("online plan failed verification after {event:?}: {msg}");
            }
        }
        Ok(ReplanReport {
            timeline_rebuilt,
            der,
            final_energy: self.final_energy,
            recertified,
        })
    }

    fn checked(&self, task: TaskId) -> Result<&Task, OnlineError> {
        self.tasks.get(task).ok_or(OnlineError::UnknownTask {
            task,
            len: self.tasks.len(),
        })
    }

    fn rebuild_task_set(&mut self) {
        // Tasks were validated before mutation, so this cannot fail.
        self.task_set = TaskSet::new(self.tasks.clone()).expect("validated above");
    }

    /// Solve the convex program warm-started from the previous optimum's
    /// per-task totals — and, for a dual-carrying solver whose flat
    /// layout is unchanged, the previous dual point — and certify the
    /// result.
    fn recertify_now(&mut self) -> RecertSummary {
        let ep = EnergyProgram::new(&self.task_set, &self.timeline, self.cores, self.power);
        let mut opts = match &self.last_opt_totals {
            Some(totals) => self
                .config
                .solve_options
                .clone()
                .with_warm_start(ep.warm_start_from_totals(totals)),
            None => self.config.solve_options.clone(),
        };
        if let Some((dim, duals)) = &self.last_opt_duals {
            if *dim == ep.dim() {
                opts = opts.with_warm_start_dual(duals.clone());
            }
        }
        let kind = self.config.solver.unwrap_or_default();
        let sol = match self.intra_pool.as_ref() {
            Some(pool) => kind.solve_in(&ep, &opts, pool),
            None => kind.solve(&ep, &opts),
        };
        self.last_opt_totals = Some(ep.total_times(&sol.x));
        self.last_opt_duals = sol.dual.map(|d| (ep.dim(), d));
        RecertSummary {
            kkt: kkt_report(&ep, &sol.x),
            converged: sol.converged,
            iters: sol.iters,
        }
    }

    /// Run the validator⟺simulator oracle on the current plan: the
    /// materialized final schedule must be legal (no overlap, windows
    /// respected, work complete) and the discrete-event simulator must
    /// agree — clean run, energy matching the analytic `E^{F2}`.
    pub fn verify_current(&mut self) -> Result<(), String> {
        let schedule = final_schedule_with(
            &self.task_set,
            &self.timeline,
            self.cores,
            &self.avail,
            &self.assignment,
            &mut self.scratch.items,
            &mut self.scratch.scale,
        );
        let report = validate_schedule(&schedule, &self.task_set);
        if !report.is_legal() {
            let msgs: Vec<String> = report.violations.iter().map(|v| v.to_string()).collect();
            return Err(format!("validator: {}", msgs.join("; ")));
        }
        let sim = simulate(&schedule, &self.task_set, &self.power);
        if !sim.deadline_misses.is_empty() || !sim.conflicts.is_empty() {
            return Err(format!(
                "simulator: {} deadline misses, {} conflicts",
                sim.deadline_misses.len(),
                sim.conflicts.len()
            ));
        }
        let tol = 1e-6 * (1.0 + self.final_energy.abs());
        if (sim.energy - self.final_energy).abs() > tol {
            return Err(format!(
                "simulator energy {} diverges from analytic {}",
                sim.energy, self.final_energy
            ));
        }
        Ok(())
    }

    /// The offline request equivalent to the engine's current state:
    /// feeding it to [`Engine::run`](crate::Engine::run) produces an
    /// outcome byte-identical to [`OnlineEngine::outcome`].
    pub fn as_request(&self) -> ScheduleRequest {
        ScheduleRequest {
            tasks: self.task_set.clone(),
            cores: self.cores,
            power: self.power,
            config: self.config.clone(),
        }
    }

    /// Materialize the full [`ScheduleOutcome`] for the current plan.
    ///
    /// This runs the same stages as the offline pipeline —
    /// refinement/packing from the maintained availability matrix, the
    /// optional solver, simulator, and discrete stages — substituting the
    /// incrementally maintained timeline, ideal solution, and DER
    /// allocation for their from-scratch counterparts. Because every
    /// maintained structure is bit-identical to the offline stage's
    /// output, so is the outcome.
    pub fn outcome(&mut self) -> ScheduleOutcome {
        let request_id = RequestId::next();
        let _req_scope = RequestScope::enter(request_id);
        let _flight = esched_obs::flight_span!("online_outcome");
        let mut trace = TraceCtx::new(request_id);
        let cfg = self.config.clone();

        let t_phase = Instant::now();
        let chosen = build_outcome_with(
            &self.task_set,
            &self.timeline,
            self.cores,
            &self.power,
            &self.ideal,
            self.avail.clone(),
            &mut self.scratch,
        );
        trace.record_phase("der_alloc", t_phase.elapsed());

        let t_phase = Instant::now();
        let (opt, nec, opt_x) = match cfg.solver {
            Some(kind) => {
                // NEC normalizes both heuristics: run the evenly-allocating
                // one from scratch (it has no incremental state to reuse).
                let even_avail = allocate_even(&self.task_set, &self.timeline, self.cores);
                let even = build_outcome_with(
                    &self.task_set,
                    &self.timeline,
                    self.cores,
                    &self.power,
                    &self.ideal,
                    even_avail,
                    &mut self.scratch,
                );
                let sol = optimal_energy_in(
                    &self.task_set,
                    &self.timeline,
                    self.cores,
                    &self.power,
                    &cfg.solve_options,
                    kind,
                );
                let e = sol.energy;
                let nec = NecPoint {
                    ideal: self.ideal.energy / e,
                    i1: even.intermediate_energy / e,
                    f1: even.final_energy / e,
                    i2: chosen.intermediate_energy / e,
                    f2: chosen.final_energy / e,
                    opt_energy: e,
                };
                let opt = OptSummary {
                    solver: kind.name(),
                    energy: sol.energy,
                    gap: sol.gap,
                    iters: sol.iters,
                    converged: sol.telemetry.converged,
                    telemetry: cfg.telemetry.then_some(sol.telemetry),
                };
                (Some(opt), Some(nec), Some(sol.x))
            }
            None => (None, None, None),
        };
        trace.record_phase("solve", t_phase.elapsed());

        let t_phase = Instant::now();
        let sim = cfg.sim_verify.then(|| {
            let report = simulate(&chosen.schedule, &self.task_set, &self.power);
            SimVerdict {
                clean: report.is_clean(),
                deadline_misses: report.deadline_misses.len(),
                conflicts: report.conflicts.len(),
                energy: report.energy,
            }
        });
        trace.record_phase("sim_verify", t_phase.elapsed());
        let t_phase = Instant::now();
        let discrete = cfg.discrete.as_ref().map(|table| {
            let out = quantize_schedule(&chosen.schedule, table, QuantizePolicy::NextUp);
            DiscreteSummary {
                energy: out.energy,
                misses: out.misses.len(),
                feasible: out.feasible,
            }
        });
        trace.record_phase("discrete", t_phase.elapsed());

        ScheduleOutcome {
            algorithm: cfg.algorithm,
            energy: chosen.final_energy,
            intermediate_energy: chosen.intermediate_energy,
            schedule: chosen.schedule,
            nec,
            opt,
            opt_x,
            sim,
            discrete,
            trace: cfg.telemetry.then_some(trace),
        }
    }
}
