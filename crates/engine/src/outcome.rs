//! The result side of the front-door API: [`ScheduleOutcome`] and the
//! failure type [`EngineError`].

use crate::config::Algorithm;
use esched_core::NecPoint;
use esched_obs::json::{ToJson, Value};
use esched_opt::SolverTelemetry;
use esched_types::Schedule;

/// Summary of the optional `E^OPT` solver stage.
#[derive(Debug, Clone, PartialEq)]
pub struct OptSummary {
    /// Short solver name (see [`esched_opt::SolverKind::name`]).
    pub solver: &'static str,
    /// Optimal energy `E^OPT` — the NEC normalizer.
    pub energy: f64,
    /// Certified duality gap at exit.
    pub gap: f64,
    /// Solver iterations used.
    pub iters: usize,
    /// Whether a stopping criterion (not the iteration cap) fired.
    pub converged: bool,
    /// Full telemetry — `None` when the request disabled it
    /// ([`EngineConfig::telemetry`](crate::EngineConfig::telemetry)).
    pub telemetry: Option<SolverTelemetry>,
}

/// Verdict of the optional discrete-event simulation cross-check.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimVerdict {
    /// No conflicts and no deadline misses.
    pub clean: bool,
    /// Number of tasks that missed their deadline in simulation.
    pub deadline_misses: usize,
    /// Number of core-conflict windows detected.
    pub conflicts: usize,
    /// Energy the simulator integrated (agrees with the analytic energy
    /// up to coalescing tolerance).
    pub energy: f64,
}

/// Result of the optional discrete-frequency execution stage.
#[derive(Debug, Clone, PartialEq)]
pub struct DiscreteSummary {
    /// Total energy at quantized levels.
    pub energy: f64,
    /// Number of tasks whose required frequency exceeded the top level.
    pub misses: usize,
    /// True when no task missed.
    pub feasible: bool,
}

/// Everything one pipeline run produces.
///
/// `to_json()` is deterministic — a pure function of the request — so
/// batch outputs can be compared byte-for-byte across worker counts
/// (wall-clock telemetry is deliberately excluded from the encoding).
#[derive(Debug, Clone)]
pub struct ScheduleOutcome {
    /// Which heuristic produced `schedule`.
    pub algorithm: Algorithm,
    /// Final analytic energy of the chosen heuristic
    /// (`E^{F1}` / `E^{F2}`).
    pub energy: f64,
    /// Intermediate analytic energy (`E^{I1}` / `E^{I2}`).
    pub intermediate_energy: f64,
    /// The materialized final schedule.
    pub schedule: Schedule,
    /// The five normalized energies — present iff the request enabled a
    /// solver.
    pub nec: Option<NecPoint>,
    /// `E^OPT` stage summary — present iff the request enabled a solver.
    pub opt: Option<OptSummary>,
    /// The solver's final flat iterate — present iff the request enabled a
    /// solver. Batch drivers feed it back as
    /// [`SolveOptions::warm_start`](esched_opt::SolveOptions) for
    /// neighboring instances of the same dimension. Excluded from
    /// `to_json()` (it is a solver internal, not a reportable result).
    pub opt_x: Option<Vec<f64>>,
    /// Simulator verdict — present iff the request enabled `sim_verify`.
    pub sim: Option<SimVerdict>,
    /// Discrete-frequency execution — present iff the request supplied a
    /// frequency table.
    pub discrete: Option<DiscreteSummary>,
    /// Request-scoped trace context: the request id the engine assigned to
    /// this job plus the per-phase latency breakdown (timeline build, DER
    /// allocation, solve, sim-verify, discrete). Present iff the request
    /// enabled telemetry. Like wall-clock telemetry, excluded from
    /// `to_json()` and from equality so outcomes stay comparable across
    /// worker counts.
    pub trace: Option<esched_obs::TraceCtx>,
}

/// Equality ignores `trace` (ids and timings vary run to run); everything
/// the deterministic JSON encoding covers is compared.
impl PartialEq for ScheduleOutcome {
    fn eq(&self, other: &Self) -> bool {
        self.algorithm == other.algorithm
            && self.energy == other.energy
            && self.intermediate_energy == other.intermediate_energy
            && self.schedule == other.schedule
            && self.nec == other.nec
            && self.opt == other.opt
            && self.opt_x == other.opt_x
            && self.sim == other.sim
            && self.discrete == other.discrete
    }
}

impl ToJson for ScheduleOutcome {
    fn to_json(&self) -> Value {
        let nec = match &self.nec {
            // NecPoint lives in esched-core, which does not know about
            // JSON — encode its fields inline here.
            Some(n) => Value::obj(vec![
                ("ideal", Value::Num(n.ideal)),
                ("i1", Value::Num(n.i1)),
                ("f1", Value::Num(n.f1)),
                ("i2", Value::Num(n.i2)),
                ("f2", Value::Num(n.f2)),
                ("opt_energy", Value::Num(n.opt_energy)),
            ]),
            None => Value::Null,
        };
        let opt = match &self.opt {
            Some(o) => Value::obj(vec![
                ("solver", Value::Str(o.solver.to_string())),
                ("energy", Value::Num(o.energy)),
                ("gap", Value::Num(o.gap)),
                ("iters", Value::Num(o.iters as f64)),
                ("converged", Value::Bool(o.converged)),
            ]),
            None => Value::Null,
        };
        let sim = match &self.sim {
            Some(s) => Value::obj(vec![
                ("clean", Value::Bool(s.clean)),
                ("deadline_misses", Value::Num(s.deadline_misses as f64)),
                ("conflicts", Value::Num(s.conflicts as f64)),
                ("energy", Value::Num(s.energy)),
            ]),
            None => Value::Null,
        };
        let discrete = match &self.discrete {
            Some(d) => Value::obj(vec![
                ("energy", Value::Num(d.energy)),
                ("misses", Value::Num(d.misses as f64)),
                ("feasible", Value::Bool(d.feasible)),
            ]),
            None => Value::Null,
        };
        Value::obj(vec![
            ("algorithm", Value::Str(self.algorithm.name().to_string())),
            ("energy", Value::Num(self.energy)),
            ("intermediate_energy", Value::Num(self.intermediate_energy)),
            ("schedule", self.schedule.to_json()),
            ("nec", nec),
            ("opt", opt),
            ("sim", sim),
            ("discrete", discrete),
        ])
    }
}

/// A job that panicked (or was otherwise lost) inside the pool. The rest
/// of the batch is unaffected; the index ties the error back to the
/// submitted request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EngineError {
    /// Index of the failed job in the submitted batch.
    pub index: usize,
    /// The panic payload (or a placeholder for non-string payloads).
    pub message: String,
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "engine job {} panicked: {}", self.index, self.message)
    }
}

impl std::error::Error for EngineError {}
