//! Batch execution on the shared work-stealing pool.
//!
//! The pool machinery itself (per-worker deques, steal-from-back,
//! submission-order results, per-worker [`Scratch`] arenas, panic
//! isolation) lives in [`esched_core::pool`] so the allocator can also
//! fan one instance's columns across it; [`Engine`] is the
//! request/outcome wrapper the service layer uses: same sizing rules,
//! same determinism contract (results indexed by submission order, so
//! the output is identical regardless of worker count or steal
//! interleaving — the property the determinism test pins).

use esched_core::{Pool, PoolError, Scratch, ScratchPool};

use crate::config::ScheduleRequest;
use crate::exec::execute;
use crate::outcome::{EngineError, ScheduleOutcome};

/// A batch executor with a fixed worker count.
///
/// The engine is stateless between batches (workers and their scratch
/// arenas live only for the duration of one `run_batch`/`batch_map`
/// call), so it is cheap to construct and freely shareable.
#[derive(Debug, Clone)]
pub struct Engine {
    pool: Pool,
}

impl Default for Engine {
    fn default() -> Self {
        Self::new()
    }
}

impl From<PoolError> for EngineError {
    fn from(e: PoolError) -> Self {
        EngineError {
            index: e.index,
            message: e.message,
        }
    }
}

impl Engine {
    /// An engine sized by the `ESCHED_ENGINE_THREADS` environment
    /// variable when set (and ≥ 1), else by the machine's available
    /// parallelism.
    pub fn new() -> Self {
        Self { pool: Pool::new() }
    }

    /// An engine with exactly `threads` workers (clamped to ≥ 1).
    pub fn with_threads(threads: usize) -> Self {
        Self {
            pool: Pool::with_threads(threads),
        }
    }

    /// The worker count batches will use.
    pub fn threads(&self) -> usize {
        self.pool.threads()
    }

    /// The underlying [`Pool`] — hand this to
    /// [`esched_core::AllocRequest::with_pool`] to reuse the engine's
    /// sizing for intra-instance fan-out.
    pub fn pool(&self) -> &Pool {
        &self.pool
    }

    /// Execute one request on the calling thread (no pool), with the same
    /// panic isolation as a batch.
    pub fn run(&self, request: &ScheduleRequest) -> Result<ScheduleOutcome, EngineError> {
        self.pool
            .run_one(|scratch| execute(scratch, request))
            .map_err(EngineError::from)
    }

    /// Execute a batch of requests across the pool. The output is indexed
    /// like the input; a panicking job yields `Err` at its index without
    /// disturbing the rest of the batch.
    pub fn run_batch(
        &self,
        requests: &[ScheduleRequest],
    ) -> Vec<Result<ScheduleOutcome, EngineError>> {
        self.batch_map(requests.iter().collect(), |scratch, req| {
            execute(scratch, req)
        })
    }

    /// Generic batch execution: apply `f` to every item, in parallel,
    /// with a per-worker [`Scratch`] arena threaded through so pipelines
    /// built from the `_with` APIs reuse buffers across items.
    ///
    /// Results are ordered by item index. A panic inside `f` becomes an
    /// `Err(EngineError)` for that item only; the worker's scratch is
    /// reset and the worker keeps draining the batch.
    pub fn batch_map<I, T, F>(&self, items: Vec<I>, f: F) -> Vec<Result<T, EngineError>>
    where
        I: Send,
        T: Send,
        F: Fn(&mut Scratch, I) -> T + Sync,
    {
        self.pool
            .batch_map(items, f)
            .into_iter()
            .map(|r| r.map_err(EngineError::from))
            .collect()
    }
}
