//! Panic isolation: one poisoned job in a batch is reported as a failed
//! outcome at its index without deadlocking the pool or losing the rest
//! of the batch.

use esched_engine::{Engine, ScheduleRequest};
use esched_types::{PolynomialPower, TaskSet};
use std::sync::Once;

/// Silence the default panic hook once per test binary so the
/// intentionally-poisoned jobs don't spray backtraces over the output.
fn quiet_panics() {
    static ONCE: Once = Once::new();
    ONCE.call_once(|| std::panic::set_hook(Box::new(|_| {})));
}

fn good_request() -> ScheduleRequest {
    ScheduleRequest::new(
        TaskSet::from_triples(&[(0.0, 12.0, 4.0), (2.0, 10.0, 2.0), (4.0, 8.0, 4.0)]),
        2,
        PolynomialPower::cubic(),
    )
}

#[test]
fn poisoned_request_fails_alone() {
    quiet_panics();
    let mut requests: Vec<ScheduleRequest> = (0..8).map(|_| good_request()).collect();
    // cores == 0 trips the `execute` precondition assert → job panic.
    requests[3].cores = 0;
    for threads in [1, 4] {
        let out = Engine::with_threads(threads).run_batch(&requests);
        assert_eq!(out.len(), 8);
        for (i, r) in out.iter().enumerate() {
            if i == 3 {
                let e = r.as_ref().expect_err("poisoned job must fail");
                assert_eq!(e.index, 3);
                assert!(
                    e.message.contains("at least one core"),
                    "unexpected panic message: {}",
                    e.message
                );
            } else {
                let o = r.as_ref().unwrap_or_else(|e| panic!("job {i} failed: {e}"));
                assert!(o.energy > 0.0);
            }
        }
    }
}

#[test]
fn batch_map_keeps_draining_after_panics() {
    quiet_panics();
    let items: Vec<i64> = (0..32).collect();
    let out = Engine::with_threads(4).batch_map(items, |_scratch, x| {
        assert!(x % 5 != 3, "boom on {x}");
        x * 2
    });
    assert_eq!(out.len(), 32);
    for (i, r) in out.into_iter().enumerate() {
        if i % 5 == 3 {
            let e = r.expect_err("job should have panicked");
            assert_eq!(e.index, i);
            assert!(e.message.contains("boom"), "message: {}", e.message);
        } else {
            assert_eq!(r.expect("clean job"), 2 * i as i64);
        }
    }
}

#[test]
fn single_run_reports_panic_as_error() {
    quiet_panics();
    let mut request = good_request();
    request.cores = 0;
    let err = Engine::with_threads(1)
        .run(&request)
        .expect_err("cores == 0 must fail");
    assert_eq!(err.index, 0);
}
