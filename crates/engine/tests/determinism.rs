//! The engine's batch output is a pure function of the batch: byte-for-byte
//! identical `ScheduleOutcome` JSON regardless of worker count or steal
//! interleaving. CI re-runs this file under `ESCHED_ENGINE_THREADS=1,4,8`.

use esched_engine::{Engine, EngineConfig, ScheduleRequest};
use esched_obs::json::{ToJson, Value};
use esched_opt::{SolveOptions, SolverKind};
use esched_types::PolynomialPower;
use esched_workload::{GeneratorConfig, WorkloadGenerator};
use std::sync::Arc;

/// A batch exercising the full pipeline: heuristics, E^OPT solve (NEC),
/// and a simulator cross-check, over seeded paper-style workloads.
fn requests() -> Vec<ScheduleRequest> {
    let config = EngineConfig::new()
        .with_solver(SolverKind::ProjectedGradient)
        .with_solve_options(SolveOptions::fast())
        .with_sim_verify(true);
    (0..24)
        .map(|k| {
            let mut gen = WorkloadGenerator::new(
                GeneratorConfig::paper_default().with_tasks(10),
                9000 + k as u64,
            );
            ScheduleRequest::new(gen.generate(), 4, PolynomialPower::paper(3.0, 0.1))
                .with_config(config.clone())
        })
        .collect()
}

fn batch_json(engine: &Engine) -> Vec<String> {
    engine
        .run_batch(&requests())
        .into_iter()
        .map(|r| r.expect("no job panicked").to_json().to_string())
        .collect()
}

#[test]
fn outcome_json_is_identical_across_worker_counts() {
    let serial = batch_json(&Engine::with_threads(1));
    assert_eq!(serial.len(), 24);
    for threads in [4, 8] {
        assert_eq!(
            batch_json(&Engine::with_threads(threads)),
            serial,
            "outcome JSON diverged at {threads} workers"
        );
    }
}

#[test]
fn env_sized_engine_matches_serial() {
    // `Engine::new` honours ESCHED_ENGINE_THREADS; CI sets it to 1, 4,
    // and 8 in turn, so this pins determinism at the env-selected size.
    let serial = batch_json(&Engine::with_threads(1));
    assert_eq!(batch_json(&Engine::new()), serial);
}

#[test]
fn repeated_runs_are_identical() {
    let engine = Engine::new();
    assert_eq!(batch_json(&engine), batch_json(&engine));
}

/// Request-scoped tracing and the flight recorder are observability-only:
/// with a request-scoped Chrome sink installed and the recorder on, the
/// outcome JSON must stay byte-identical across worker counts (request
/// ids and timings live in `ScheduleOutcome::trace`, which the canonical
/// encoding excludes).
#[test]
fn outcomes_identical_with_request_scoped_observability_on() {
    let sink = Arc::new(esched_obs::chrome::ChromeTraceSink::request_scoped());
    esched_obs::trace::init_with(esched_obs::trace::Filter::parse("debug"), sink.clone());
    esched_obs::recorder::set_enabled(true);
    let serial = batch_json(&Engine::with_threads(1));
    for threads in [4, 8] {
        assert_eq!(
            batch_json(&Engine::with_threads(threads)),
            serial,
            "outcome JSON diverged at {threads} workers with observability on"
        );
    }
    esched_obs::trace::disable();

    // The sink really was in request-scoped mode: engine spans landed on
    // per-request tracks, and the flight ring holds request-tagged spans.
    let doc = sink.to_json();
    let events = doc
        .get("traceEvents")
        .and_then(Value::as_array)
        .expect("traceEvents");
    assert!(
        events.iter().any(|e| {
            e.get("pid").and_then(Value::as_u64) == Some(esched_obs::chrome::REQUESTS_PID)
                && e.get("name").and_then(Value::as_str) == Some("engine_execute")
        }),
        "no request-track engine spans captured"
    );
    assert!(
        esched_obs::recorder::snapshot()
            .iter()
            .any(|r| r.name == "engine_execute" && r.request != 0),
        "no request-tagged flight spans recorded"
    );
}

/// Intra-instance fan-out must not break determinism: with
/// `with_intra_parallelism(1)` every request's DER allocation is split
/// across the worker pool (threshold 1 forces the parallel path even on
/// these small instances), and the outcome JSON must still be
/// byte-identical at 1, 4, and 8 workers — chunk boundaries and the
/// reduction order are a pure function of the CSR shape, never of the
/// worker count or steal interleaving.
#[test]
fn intra_parallel_outcomes_identical_across_worker_counts() {
    let fan_out = |threads: usize| -> Vec<String> {
        let engine = Engine::with_threads(threads);
        let reqs: Vec<ScheduleRequest> = requests()
            .into_iter()
            .map(|rq| {
                let cfg = rq.config.clone().with_intra_parallelism(1);
                rq.with_config(cfg)
            })
            .collect();
        engine
            .run_batch(&reqs)
            .into_iter()
            .map(|r| r.expect("no job panicked").to_json().to_string())
            .collect()
    };
    let serial = batch_json(&Engine::with_threads(1));
    let fanned_serial = fan_out(1);
    assert_eq!(
        fanned_serial, serial,
        "intra-parallel fan-out changed the outcome vs the plain path"
    );
    for threads in [4, 8] {
        assert_eq!(
            fan_out(threads),
            fanned_serial,
            "intra-parallel outcome JSON diverged at {threads} workers"
        );
    }
}

/// Warm-start seeding happens at submission time (the driver copies the
/// previous batch's solutions into the next batch's requests), so the
/// two-phase sweep pattern must stay byte-identical across worker counts
/// too — the acceptance gate for threading `warm_start` through the
/// engine.
#[test]
fn warm_started_batches_are_identical_across_worker_counts() {
    let run = |threads: usize| -> Vec<String> {
        let engine = Engine::with_threads(threads);
        // Phase 1: cold solves at p0 = 0.1.
        let seeds: Vec<Option<Vec<f64>>> = engine
            .run_batch(&requests())
            .into_iter()
            .map(|r| r.expect("no job panicked").opt_x)
            .collect();
        // Phase 2: the same task sets at p0 = 0.3, seeded from phase 1.
        let warmed: Vec<ScheduleRequest> = requests()
            .into_iter()
            .zip(seeds)
            .map(|(mut rq, seed)| {
                assert!(seed.is_some(), "solver-enabled outcome carries its iterate");
                rq.power = PolynomialPower::paper(3.0, 0.3);
                rq.config.solve_options.warm_start = seed;
                rq
            })
            .collect();
        engine
            .run_batch(&warmed)
            .into_iter()
            .map(|r| r.expect("no job panicked").to_json().to_string())
            .collect()
    };
    let serial = run(1);
    assert_eq!(serial.len(), 24);
    for threads in [4, 8] {
        assert_eq!(
            run(threads),
            serial,
            "warm-started outcome JSON diverged at {threads} workers"
        );
    }
}
