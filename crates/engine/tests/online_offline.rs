//! Online/offline equivalence: after any event stream, the online
//! engine's outcome must be *byte-identical* to running the offline
//! pipeline on the same final task set — across worker counts.

use esched_engine::online::{OnlineEngine, OnlineEvent};
use esched_engine::{AuditConfig, Engine, EngineConfig};
use esched_obs::health::{HealthState, SloPolicy};
use esched_obs::json::ToJson;
use esched_types::{PolynomialPower, Task, TaskSet};
use esched_workload::{GeneratorConfig, WorkloadGenerator};
use std::time::Duration;

fn seed_set() -> TaskSet {
    TaskSet::from_triples(&[
        (0.0, 10.0, 8.0),
        (2.0, 18.0, 14.0),
        (4.0, 16.0, 8.0),
        (6.0, 14.0, 4.0),
        (8.0, 20.0, 10.0),
        (12.0, 22.0, 6.0),
    ])
}

fn mixed_events() -> Vec<OnlineEvent> {
    vec![
        OnlineEvent::Arrive(Task::of(5.0, 27.0, 3.0)),
        OnlineEvent::Complete {
            task: 1,
            actual_work: 9.0,
        },
        OnlineEvent::Shift {
            task: 3,
            release: 7.0,
            deadline: 15.0,
        },
        OnlineEvent::Arrive(Task::of(1.0, 3.0, 1.0)),
        // Off-grid arrival: forces subinterval splits.
        OnlineEvent::Arrive(Task::of(4.5, 13.25, 2.0)),
        OnlineEvent::Complete {
            task: 0,
            actual_work: 6.5,
        },
        // Shift onto existing boundaries: exercises the in-place patch.
        OnlineEvent::Shift {
            task: 2,
            release: 4.0,
            deadline: 18.0,
        },
        // Near-boundary arrival within tolerance: forces the full-rebuild
        // fallback (the satellite-1 divergence case).
        OnlineEvent::Arrive(Task::of(10.0 - 5e-8, 21.0, 2.0)),
    ]
}

fn assert_byte_identical(online: &mut OnlineEngine, workers: &[usize]) {
    let request = online.as_request();
    let got = online.outcome();
    for &w in workers {
        let want = Engine::with_threads(w)
            .run(&request)
            .expect("offline run failed");
        assert_eq!(got, want, "outcome diverged at {w} workers");
        assert_eq!(
            got.to_json().to_string(),
            want.to_json().to_string(),
            "JSON encoding diverged at {w} workers"
        );
    }
}

#[test]
fn online_outcome_matches_offline_after_every_event() {
    let mut engine = OnlineEngine::new(seed_set(), 4, PolynomialPower::cubic());
    assert_byte_identical(&mut engine, &[1]);
    for event in mixed_events() {
        let report = engine.apply(&event).expect("event rejected");
        assert!(report.final_energy.is_finite());
        assert_byte_identical(&mut engine, &[1]);
    }
}

#[test]
fn online_outcome_matches_offline_across_worker_counts() {
    let mut engine = OnlineEngine::new(seed_set(), 4, PolynomialPower::paper(3.0, 0.1));
    for event in mixed_events() {
        engine.apply(&event).expect("event rejected");
    }
    assert_byte_identical(&mut engine, &[1, 4, 8]);
}

#[test]
fn online_outcome_matches_offline_with_all_stages_enabled() {
    let cfg = EngineConfig::new()
        .with_solver(esched_opt::SolverKind::ProjectedGradient)
        .with_sim_verify(true)
        .with_discrete(esched_types::DiscretePower::from_pairs(&[
            (0.3, 0.077),
            (0.5, 0.175),
            (0.7, 0.393),
            (0.9, 0.779),
            (1.0, 1.05),
        ]))
        .with_telemetry(false);
    let mut engine =
        OnlineEngine::new(seed_set(), 4, PolynomialPower::paper(3.0, 0.05)).with_config(cfg);
    for event in mixed_events().into_iter().take(4) {
        engine.apply(&event).expect("event rejected");
    }
    assert_byte_identical(&mut engine, &[1, 4]);
}

#[test]
fn online_matches_offline_on_random_streams() {
    for case in 0u64..40 {
        let config = GeneratorConfig {
            tasks: 4 + (case as usize % 5),
            release_span: 30.0,
            ..GeneratorConfig::paper_default()
        };
        let mut gen = WorkloadGenerator::new(config, 0x0417_11e5 ^ case);
        let tasks = gen.generate();
        let mut engine = OnlineEngine::new(tasks, 1 + case as usize % 4, PolynomialPower::cubic());
        for step in 0..6usize {
            let n = engine.len();
            let event = match (case as usize + step) % 3 {
                0 => {
                    // Deterministic off-grid arrivals spread over the horizon.
                    let r = 1.5 * (case as f64) + 3.7 * (step as f64);
                    OnlineEvent::Arrive(Task::of(r, r + 4.0 + step as f64, 2.0 + step as f64))
                }
                1 => OnlineEvent::Complete {
                    task: step % n,
                    actual_work: engine.tasks().get(step % n).wcec * 0.75,
                },
                _ => {
                    let id = (step * 2 + 1) % n;
                    let t = *engine.tasks().get(id);
                    OnlineEvent::Shift {
                        task: id,
                        release: t.release + 0.5,
                        deadline: t.deadline + 1.5,
                    }
                }
            };
            engine.apply(&event).expect("event rejected");
        }
        assert_byte_identical(&mut engine, &[1]);
    }
}

#[test]
fn verify_and_recertify_accept_repaired_plans() {
    let mut engine = OnlineEngine::new(seed_set(), 4, PolynomialPower::cubic())
        .with_verify(true)
        .with_recertify(true);
    for event in mixed_events() {
        let report = engine.apply(&event).expect("event rejected");
        let recert = report.recertified.expect("recertification enabled");
        assert!(
            recert.kkt.is_optimal(1e-4),
            "repaired plan not certified: {:?}",
            recert.kkt
        );
    }
    engine
        .verify_current()
        .expect("final plan fails the oracle");
}

#[test]
fn health_and_audit_preserve_byte_identity_across_worker_counts() {
    // The full observability stack on: sliding-window health recording,
    // per-event SLO evaluation, and a synchronous shadow audit on every
    // event. None of it may perturb the plan — the outcome must stay
    // byte-identical to the offline pipeline at 1, 4, and 8 workers.
    let policy = SloPolicy::new(Duration::from_secs(10))
        .with_replan_p99(Duration::from_secs(5))
        .with_regret_ceiling(10.0)
        .with_fallback_rate_ceiling(1.0);
    let mut engine = OnlineEngine::new(seed_set(), 4, PolynomialPower::paper(3.0, 0.1))
        .with_health(policy)
        .with_audit(AuditConfig::default().with_every(1).with_synchronous(true));
    for event in mixed_events() {
        engine.apply(&event).expect("event rejected");
    }
    assert_byte_identical(&mut engine, &[1, 4, 8]);

    let monitor = engine.health().expect("health enabled");
    assert_eq!(monitor.state(), HealthState::Healthy);
    assert_eq!(
        monitor.audits(),
        mixed_events().len() as u64,
        "every event audited"
    );
    let regret = monitor.regret().expect("audit published a regret");
    assert!(
        regret > -1e-6 && regret < 10.0,
        "heuristic regret out of range: {regret}"
    );
    let report = monitor.report();
    assert_eq!(report.divergences, 0, "live plan diverged from offline");
}

#[test]
fn invalid_events_leave_the_plan_untouched() {
    let mut engine = OnlineEngine::new(seed_set(), 4, PolynomialPower::cubic());
    let before = engine.outcome();
    let bad = [
        OnlineEvent::Complete {
            task: 99,
            actual_work: 1.0,
        },
        OnlineEvent::Complete {
            task: 0,
            actual_work: 0.0,
        },
        OnlineEvent::Shift {
            task: 1,
            release: 5.0,
            deadline: 5.0,
        },
        OnlineEvent::Arrive(Task {
            release: 3.0,
            deadline: 1.0,
            wcec: 2.0,
        }),
    ];
    for event in bad {
        engine.apply(&event).expect_err("event should be rejected");
    }
    let after = engine.outcome();
    assert_eq!(before, after);
}

#[test]
fn slack_reclamation_lowers_corunner_frequencies() {
    // Two tasks sharing one core and one window: when task 0 finishes at
    // half its worst case, the reclaimed time goes to task 1 and its final
    // frequency drops.
    let ts = TaskSet::from_triples(&[(0.0, 10.0, 6.0), (0.0, 10.0, 6.0)]);
    let mut engine = OnlineEngine::new(ts, 1, PolynomialPower::cubic());
    let before = engine.assignment().freq[1];
    engine
        .apply(&OnlineEvent::Complete {
            task: 0,
            actual_work: 3.0,
        })
        .unwrap();
    let after = engine.assignment().freq[1];
    assert!(
        after < before - 1e-9,
        "co-runner frequency did not drop: {before} -> {after}"
    );
    assert_byte_identical(&mut engine, &[1]);
}
