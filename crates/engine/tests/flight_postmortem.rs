//! A forced worker panic in a batch must leave a Perfetto-loadable
//! post-mortem flight dump containing the failing request's spans and the
//! engine events leading up to the crash (the PR's acceptance test for
//! the always-on flight recorder).

use esched_engine::{Engine, EngineConfig, ScheduleRequest};
use esched_obs::json::{parse, Value};
use esched_opt::{SolveOptions, SolverKind};
use esched_types::PolynomialPower;
use esched_workload::{GeneratorConfig, WorkloadGenerator};
use std::path::PathBuf;

fn events(doc: &Value) -> &[Value] {
    doc.get("traceEvents")
        .and_then(Value::as_array)
        .expect("traceEvents array")
}

fn field<'a>(ev: &'a Value, key: &str) -> Option<&'a Value> {
    ev.get(key)
}

fn num(ev: &Value, key: &str) -> f64 {
    field(ev, key).and_then(Value::as_f64).expect(key)
}

fn is(ev: &Value, ph: &str, name: &str) -> bool {
    field(ev, "ph").and_then(Value::as_str) == Some(ph)
        && field(ev, "name").and_then(Value::as_str) == Some(name)
}

#[test]
fn poisoned_batch_leaves_a_postmortem_dump_with_the_failing_request() {
    // Route dumps into a fresh per-process temp dir. This is the only
    // test in this binary, so mutating process env is race-free.
    let dir = std::env::temp_dir().join(format!("esched-flight-pm-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create temp dir");
    std::env::set_var("ESCHED_FLIGHT_DIR", &dir);
    esched_obs::recorder::set_enabled(true);
    // The poisoned job's panic is intentional; keep the output clean.
    std::panic::set_hook(Box::new(|_| {}));

    // Before any panic, the exit hook fires normally (generation 0).
    let exit_path = dir.join("exit-early.json");
    std::env::set_var("ESCHED_FLIGHT_EXIT", &exit_path);
    assert_eq!(esched_obs::recorder::post_mortem_generation(), 0);
    assert_eq!(
        esched_obs::recorder::dump_at_exit_if_requested().as_deref(),
        Some(exit_path.as_path()),
        "exit hook must dump when no post-mortem has fired"
    );

    let config = EngineConfig::new()
        .with_solver(SolverKind::ProjectedGradient)
        .with_solve_options(SolveOptions::fast());
    let mut requests: Vec<ScheduleRequest> = (0..64)
        .map(|k| {
            let tasks = WorkloadGenerator::new(
                GeneratorConfig::paper_default().with_tasks(12),
                7000 + k as u64,
            )
            .generate();
            ScheduleRequest::new(tasks, 4, PolynomialPower::paper(3.0, 0.1))
                .with_config(config.clone())
        })
        .collect();
    requests[40].cores = 0;

    let out = Engine::with_threads(4).run_batch(&requests);
    assert_eq!(out.len(), 64);
    for (i, r) in out.iter().enumerate() {
        if i == 40 {
            assert!(r.is_err(), "poisoned job must fail");
        } else {
            assert!(r.is_ok(), "job {i} failed unexpectedly");
        }
    }

    // The panic-path dump bumped the generation: the exit hook must now
    // be a no-op instead of double-dumping the same incident, and the
    // dedupe must hold on repeated calls.
    assert_eq!(esched_obs::recorder::post_mortem_generation(), 1);
    for _ in 0..2 {
        assert_eq!(
            esched_obs::recorder::dump_at_exit_if_requested(),
            None,
            "exit hook must dedupe after a panic-path post-mortem"
        );
    }
    std::env::remove_var("ESCHED_FLIGHT_EXIT");

    // Exactly one panic → exactly one dump.
    let dumps: Vec<PathBuf> = std::fs::read_dir(&dir)
        .expect("read temp dir")
        .filter_map(|e| {
            let p = e.ok()?.path();
            let name = p.file_name()?.to_str()?;
            (name.starts_with("flight-postmortem-") && name.ends_with(".json")).then_some(p)
        })
        .collect();
    assert_eq!(dumps.len(), 1, "expected one dump, found {dumps:?}");

    let text = std::fs::read_to_string(&dumps[0]).expect("read dump");
    let doc = parse(&text).expect("dump parses as JSON");
    assert_eq!(
        doc.get("otherData")
            .and_then(|o| o.get("reason"))
            .and_then(Value::as_str),
        Some("engine job panic")
    );
    let evs = events(&doc);

    // The failing request signed its own crash: exactly one panic
    // instant, globally scoped, on some request track R.
    let panics: Vec<&Value> = evs.iter().filter(|e| is(e, "i", "panic")).collect();
    assert_eq!(panics.len(), 1, "expected one panic instant");
    let failing_request = num(panics[0], "tid");
    assert!(failing_request >= 1.0, "panic not tied to a request");
    assert_eq!(
        field(panics[0], "s").and_then(Value::as_str),
        Some("g"),
        "panic instants are globally scoped"
    );

    // Its pipeline span is on the same track (the span guard drops during
    // unwind, inside the request scope).
    assert!(
        evs.iter()
            .any(|e| is(e, "X", "engine_execute") && num(e, "tid") == failing_request),
        "no engine_execute span for the failing request {failing_request}"
    );

    // The dump also holds the surrounding engine activity: spans from
    // other (healthy) requests and the pool's own panic event.
    assert!(
        evs.iter()
            .any(|e| is(e, "X", "engine_execute") && num(e, "tid") != failing_request),
        "no spans from other requests in the dump"
    );
    assert!(
        evs.iter().any(|e| is(e, "i", "engine_job_panic")),
        "pool panic event missing"
    );

    let _ = std::fs::remove_dir_all(&dir);
}
