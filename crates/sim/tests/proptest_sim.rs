//! Property tests for the simulator: energy/work conservation, conflict
//! detection soundness, and online-dispatch sanity.

use esched_sim::{dispatch, simulate, DispatchPolicy};
use esched_types::{PolynomialPower, PowerModel, Schedule, Segment, Task, TaskSet};
use proptest::prelude::*;

/// Disjoint single-core schedule + tasks that exactly match it.
fn chain_schedule(lens: &[f64], freq: f64) -> (Schedule, TaskSet) {
    let mut s = Schedule::new(1);
    let mut tasks = Vec::new();
    let mut t = 0.0;
    for (i, &len) in lens.iter().enumerate() {
        s.push(Segment::new(i, 0, t, t + len, freq));
        tasks.push(Task::of(t, t + len, len * freq));
        t += len;
    }
    (s, TaskSet::new(tasks).unwrap())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn simulated_energy_matches_analytic_for_clean_chains(
        lens in prop::collection::vec(0.1_f64..4.0, 1..10),
        freq in 0.1_f64..2.0,
        alpha in 2.0_f64..3.0,
        p0 in 0.0_f64..0.3,
    ) {
        let (s, ts) = chain_schedule(&lens, freq);
        let p = PolynomialPower::paper(alpha, p0);
        let r = simulate(&s, &ts, &p);
        prop_assert!(r.is_clean(), "{:?} {:?}", r.conflicts, r.deadline_misses);
        prop_assert!(
            (r.energy - s.energy(&p)).abs() < 1e-7 * (1.0 + s.energy(&p)),
            "sim {} vs analytic {}", r.energy, s.energy(&p)
        );
        // Work conservation per task.
        for (i, t) in ts.iter() {
            prop_assert!((r.work_done[i] - t.wcec).abs() < 1e-6 * (1.0 + t.wcec));
        }
        let _ = p.power(1.0);
    }

    #[test]
    fn truncating_any_segment_causes_a_miss(
        lens in prop::collection::vec(0.5_f64..4.0, 2..8),
        victim_frac in 0.05_f64..0.9,
    ) {
        let (s, ts) = chain_schedule(&lens, 1.0);
        // Rebuild with the first segment truncated.
        let mut broken = Schedule::new(1);
        for (k, seg) in s.segments().iter().enumerate() {
            if k == 0 {
                let end = seg.interval.start
                    + seg.interval.length() * victim_frac;
                broken.push(Segment::new(seg.task, seg.core, seg.interval.start, end, seg.freq));
            } else {
                broken.push(*seg);
            }
        }
        let r = simulate(&broken, &ts, &PolynomialPower::cubic());
        prop_assert!(r.deadline_misses.contains(&0), "truncation not detected");
    }

    #[test]
    fn overlapping_injection_is_detected(
        lens in prop::collection::vec(0.5_f64..4.0, 2..8),
    ) {
        let (s, ts) = chain_schedule(&lens, 1.0);
        // Inject a segment overlapping the first on the same core.
        let mut broken = s.clone();
        let first = s.segments()[0];
        broken.push(Segment::new(
            1,
            0,
            first.interval.start + 0.1 * first.interval.length(),
            first.interval.start + 0.6 * first.interval.length(),
            1.0,
        ));
        let r = simulate(&broken, &ts, &PolynomialPower::cubic());
        prop_assert!(!r.conflicts.is_empty(), "injected overlap not detected");
    }

    #[test]
    fn online_dispatch_work_is_conserved_up_to_misses(
        tasks in prop::collection::vec((0.0_f64..20.0, 1.0_f64..15.0, 0.05_f64..1.0), 1..8),
        cores in 1_usize..4,
    ) {
        let ts = TaskSet::new(
            tasks.iter().map(|&(r, len, i)| Task::of(r, r + len, len * i)).collect()
        ).unwrap();
        let freqs: Vec<f64> = ts.tasks().iter().map(|t| t.intensity().max(0.01) * 1.5).collect();
        let out = dispatch(&ts, cores, &freqs, DispatchPolicy::Edf, &[]);
        for (i, t) in ts.iter() {
            let got = out.schedule.work_of(i);
            if out.misses.contains(&i) {
                prop_assert!(got < t.wcec + 1e-6);
            } else {
                prop_assert!(
                    (got - t.wcec).abs() < 1e-6 * (1.0 + t.wcec),
                    "task {i}: {got} vs {}", t.wcec
                );
            }
        }
        // Never more cores in use than exist: per-time accounting via
        // busy time bound.
        let horizon = ts.horizon();
        for c in 0..cores {
            prop_assert!(out.schedule.busy_time(c) <= horizon.length() + 1e-6);
        }
    }

    #[test]
    fn activations_bound_segments(
        lens in prop::collection::vec(0.1_f64..3.0, 1..10),
    ) {
        let (s, ts) = chain_schedule(&lens, 1.0);
        let r = simulate(&s, &ts, &PolynomialPower::cubic());
        let total_act: usize = r.activations.iter().sum();
        // Back-to-back handovers still stop/start: one activation per
        // segment on this chain.
        prop_assert_eq!(total_act, s.len());
    }
}
