//! Seeded randomized tests for the simulator: energy/work conservation,
//! conflict detection soundness, and online-dispatch sanity.

use esched_obs::rng::ChaCha8;
use esched_sim::{dispatch, simulate, DispatchPolicy};
use esched_types::{PolynomialPower, PowerModel, Schedule, Segment, Task, TaskSet};

const CASES: usize = 48;

/// Disjoint single-core schedule + tasks that exactly match it.
fn chain_schedule(lens: &[f64], freq: f64) -> (Schedule, TaskSet) {
    let mut s = Schedule::new(1);
    let mut tasks = Vec::new();
    let mut t = 0.0;
    for (i, &len) in lens.iter().enumerate() {
        s.push(Segment::new(i, 0, t, t + len, freq));
        tasks.push(Task::of(t, t + len, len * freq));
        t += len;
    }
    (s, TaskSet::new(tasks).unwrap())
}

fn arb_lens(rng: &mut ChaCha8, lo: f64, hi: f64, min_len: usize, max_len: usize) -> Vec<f64> {
    let n = rng.gen_range_usize(min_len, max_len);
    (0..n).map(|_| rng.gen_range_f64(lo, hi)).collect()
}

#[test]
fn simulated_energy_matches_analytic_for_clean_chains() {
    let mut rng = ChaCha8::seed_from_u64(0x51b0_0001);
    for _ in 0..CASES {
        let lens = arb_lens(&mut rng, 0.1, 4.0, 1, 10);
        let freq = rng.gen_range_f64(0.1, 2.0);
        let alpha = rng.gen_range_f64(2.0, 3.0);
        let p0 = rng.gen_range_f64(0.0, 0.3);
        let (s, ts) = chain_schedule(&lens, freq);
        let p = PolynomialPower::paper(alpha, p0);
        let r = simulate(&s, &ts, &p);
        assert!(r.is_clean(), "{:?} {:?}", r.conflicts, r.deadline_misses);
        assert!(
            (r.energy - s.energy(&p)).abs() < 1e-7 * (1.0 + s.energy(&p)),
            "sim {} vs analytic {}",
            r.energy,
            s.energy(&p)
        );
        // Work conservation per task.
        for (i, t) in ts.iter() {
            assert!((r.work_done[i] - t.wcec).abs() < 1e-6 * (1.0 + t.wcec));
        }
        let _ = p.power(1.0);
    }
}

#[test]
fn truncating_any_segment_causes_a_miss() {
    let mut rng = ChaCha8::seed_from_u64(0x51b0_0002);
    for _ in 0..CASES {
        let lens = arb_lens(&mut rng, 0.5, 4.0, 2, 8);
        let victim_frac = rng.gen_range_f64(0.05, 0.9);
        let (s, ts) = chain_schedule(&lens, 1.0);
        // Rebuild with the first segment truncated.
        let mut broken = Schedule::new(1);
        for (k, seg) in s.segments().iter().enumerate() {
            if k == 0 {
                let end = seg.interval.start + seg.interval.length() * victim_frac;
                broken.push(Segment::new(
                    seg.task,
                    seg.core,
                    seg.interval.start,
                    end,
                    seg.freq,
                ));
            } else {
                broken.push(*seg);
            }
        }
        let r = simulate(&broken, &ts, &PolynomialPower::cubic());
        assert!(r.deadline_misses.contains(&0), "truncation not detected");
    }
}

#[test]
fn overlapping_injection_is_detected() {
    let mut rng = ChaCha8::seed_from_u64(0x51b0_0003);
    for _ in 0..CASES {
        let lens = arb_lens(&mut rng, 0.5, 4.0, 2, 8);
        let (s, ts) = chain_schedule(&lens, 1.0);
        // Inject a segment overlapping the first on the same core.
        let mut broken = s.clone();
        let first = s.segments()[0];
        broken.push(Segment::new(
            1,
            0,
            first.interval.start + 0.1 * first.interval.length(),
            first.interval.start + 0.6 * first.interval.length(),
            1.0,
        ));
        let r = simulate(&broken, &ts, &PolynomialPower::cubic());
        assert!(!r.conflicts.is_empty(), "injected overlap not detected");
    }
}

#[test]
fn online_dispatch_work_is_conserved_up_to_misses() {
    let mut rng = ChaCha8::seed_from_u64(0x51b0_0004);
    for _ in 0..CASES {
        let n = rng.gen_range_usize(1, 8);
        let ts = TaskSet::new(
            (0..n)
                .map(|_| {
                    let r = rng.gen_range_f64(0.0, 20.0);
                    let len = rng.gen_range_f64(1.0, 15.0);
                    let i = rng.gen_range_f64(0.05, 1.0);
                    Task::of(r, r + len, len * i)
                })
                .collect(),
        )
        .unwrap();
        let cores = rng.gen_range_usize(1, 4);
        let freqs: Vec<f64> = ts
            .tasks()
            .iter()
            .map(|t| t.intensity().max(0.01) * 1.5)
            .collect();
        let out = dispatch(&ts, cores, &freqs, DispatchPolicy::Edf, &[]);
        for (i, t) in ts.iter() {
            let got = out.schedule.work_of(i);
            if out.misses.contains(&i) {
                assert!(got < t.wcec + 1e-6);
            } else {
                assert!(
                    (got - t.wcec).abs() < 1e-6 * (1.0 + t.wcec),
                    "task {i}: {got} vs {}",
                    t.wcec
                );
            }
        }
        // Never more cores in use than exist: per-time accounting via
        // busy time bound.
        let horizon = ts.horizon();
        for c in 0..cores {
            assert!(out.schedule.busy_time(c) <= horizon.length() + 1e-6);
        }
    }
}

#[test]
fn activations_bound_segments() {
    let mut rng = ChaCha8::seed_from_u64(0x51b0_0005);
    for _ in 0..CASES {
        let lens = arb_lens(&mut rng, 0.1, 3.0, 1, 10);
        let (s, ts) = chain_schedule(&lens, 1.0);
        let r = simulate(&s, &ts, &PolynomialPower::cubic());
        let total_act: usize = r.activations.iter().sum();
        // Back-to-back handovers still stop/start: one activation per
        // segment on this chain.
        assert_eq!(total_act, s.len());
    }
}
