//! Execution traces, ASCII Gantt rendering, and Chrome-trace export.
//!
//! Turns a schedule into a human-readable per-core timeline — handy in
//! examples and when debugging packing behaviour — or into Chrome
//! trace-event JSON that loads in Perfetto / `chrome://tracing`.

use esched_obs::chrome::{self, TraceSegment};
use esched_obs::json::Value;
use esched_types::Schedule;

/// Render `schedule` as a Chrome trace-event document: one trace thread
/// per core (duration events named `task <id>`), plus one counter track
/// per core showing the running frequency.
///
/// Schedule times are seconds; they are scaled to trace microseconds.
/// Write the result with [`save_chrome_trace`] or embed it alongside a
/// [`esched_obs::chrome::ChromeTraceSink`] capture via
/// [`esched_obs::chrome::merge`].
pub fn chrome_schedule_trace(schedule: &Schedule) -> Value {
    let segments: Vec<TraceSegment> = schedule
        .segments()
        .iter()
        .map(|s| TraceSegment {
            task: s.task,
            core: s.core,
            start: s.interval.start,
            end: s.interval.end,
            freq: s.freq,
        })
        .collect();
    chrome::schedule_trace_seconds(schedule.cores, &segments)
}

/// Write [`chrome_schedule_trace`]`(schedule)` to `path` as JSON.
pub fn save_chrome_trace(schedule: &Schedule, path: &std::path::Path) -> std::io::Result<()> {
    std::fs::write(path, chrome_schedule_trace(schedule).to_string_pretty())
}

/// Render `schedule` as an ASCII Gantt chart with `width` columns spanning
/// `[t0, t1]`. Each core is one row; each column shows the task id (mod 10)
/// occupying that time slice, or `.` for idle. Columns where multiple
/// segments meet show the segment covering the column's midpoint.
pub fn ascii_gantt(schedule: &Schedule, t0: f64, t1: f64, width: usize) -> String {
    assert!(t1 > t0 && width > 0);
    let mut out = String::new();
    let dt = (t1 - t0) / width as f64;
    for core in 0..schedule.cores {
        let segs = schedule.core_segments(core);
        out.push_str(&format!("M{core}: "));
        for col in 0..width {
            let mid = t0 + (col as f64 + 0.5) * dt;
            let cell = segs
                .iter()
                .find(|s| s.interval.start <= mid && mid < s.interval.end)
                .map(|s| char::from_digit((s.task % 10) as u32, 10).unwrap_or('?'))
                .unwrap_or('.');
            out.push(cell);
        }
        out.push('\n');
    }
    out
}

/// Per-task execution summary lines: segments, spans, frequencies.
pub fn task_summary(schedule: &Schedule) -> String {
    let mut out = String::new();
    for task in schedule.task_ids() {
        let segs = schedule.task_segments(task);
        let total: f64 = segs.iter().map(|s| s.duration()).sum();
        let work: f64 = segs.iter().map(|s| s.work()).sum();
        out.push_str(&format!(
            "task {task}: {} segment(s), {:.4} time, {:.4} work —",
            segs.len(),
            total,
            work
        ));
        for s in &segs {
            out.push_str(&format!(
                " [{:.2},{:.2}]@M{}/f={:.3}",
                s.interval.start, s.interval.end, s.core, s.freq
            ));
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use esched_types::{Schedule, Segment};

    fn fixture() -> Schedule {
        let mut s = Schedule::new(2);
        s.push(Segment::new(0, 0, 0.0, 4.0, 1.0));
        s.push(Segment::new(1, 1, 2.0, 6.0, 0.5));
        s.push(Segment::new(2, 0, 5.0, 8.0, 1.0));
        s
    }

    #[test]
    fn gantt_has_one_row_per_core() {
        let g = ascii_gantt(&fixture(), 0.0, 8.0, 16);
        let lines: Vec<&str> = g.trim_end().split('\n').collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("M0: "));
        assert!(lines[1].starts_with("M1: "));
        // Core 0: task 0 for the first half of its row.
        assert!(lines[0].contains('0'));
        assert!(lines[0].contains('2'));
        assert!(lines[1].contains('1'));
    }

    #[test]
    fn gantt_shows_idle_as_dots() {
        let g = ascii_gantt(&fixture(), 0.0, 8.0, 8);
        // Core 0 idle in [4,5) → at least one dot on row 0.
        let row0 = g.lines().next().unwrap();
        assert!(row0.contains('.'));
    }

    #[test]
    fn summary_lists_every_task() {
        let s = task_summary(&fixture());
        assert!(s.contains("task 0:"));
        assert!(s.contains("task 1:"));
        assert!(s.contains("task 2:"));
        assert!(s.contains("1 segment(s)"));
    }

    #[test]
    #[should_panic]
    fn gantt_rejects_bad_window() {
        let _ = ascii_gantt(&fixture(), 5.0, 5.0, 10);
    }

    #[test]
    #[should_panic]
    fn gantt_rejects_inverted_window() {
        let _ = ascii_gantt(&fixture(), 8.0, 0.0, 10);
    }

    #[test]
    #[should_panic]
    fn gantt_rejects_zero_width() {
        let _ = ascii_gantt(&fixture(), 0.0, 8.0, 0);
    }

    #[test]
    fn gantt_of_empty_schedule_is_all_idle() {
        let s = Schedule::new(3);
        let g = ascii_gantt(&s, 0.0, 4.0, 8);
        let lines: Vec<&str> = g.trim_end().split('\n').collect();
        assert_eq!(lines.len(), 3);
        for (k, line) in lines.iter().enumerate() {
            assert_eq!(*line, format!("M{k}: ........"));
        }
    }

    #[test]
    fn gantt_wraps_task_ids_mod_ten() {
        let mut s = Schedule::new(1);
        s.push(Segment::new(13, 0, 0.0, 2.0, 1.0));
        s.push(Segment::new(27, 0, 2.0, 4.0, 1.0));
        let g = ascii_gantt(&s, 0.0, 4.0, 4);
        // Tasks 13 and 27 render as their last digits.
        assert_eq!(g.trim_end(), "M0: 3377");
    }

    #[test]
    fn chrome_trace_is_balanced_and_covers_every_core() {
        let doc = chrome_schedule_trace(&fixture());
        let evs = doc.get("traceEvents").unwrap().as_array().unwrap();
        let ph = |p: &str| {
            evs.iter()
                .filter(|e| e.get("ph").and_then(|v| v.as_str()) == Some(p))
                .count()
        };
        // 3 segments → 3 B, 3 E, 6 counter samples; plus metadata events.
        assert_eq!(ph("B"), 3);
        assert_eq!(ph("E"), 3);
        assert_eq!(ph("C"), 6);
        // Thread-name metadata for both cores.
        let names: Vec<&str> = evs
            .iter()
            .filter(|e| e.get("ph").and_then(|v| v.as_str()) == Some("M"))
            .filter_map(|e| e.get("args")?.get("name")?.as_str())
            .collect();
        assert!(
            names.contains(&"core 0") && names.contains(&"core 1"),
            "{names:?}"
        );
        // Seconds scale to microseconds: task 0 runs [0, 4] s → E at 4e6 µs.
        let max_ts = evs
            .iter()
            .filter_map(|e| e.get("ts")?.as_f64())
            .fold(0.0_f64, f64::max);
        assert_eq!(max_ts, 8.0e6);
    }

    #[test]
    fn summary_of_empty_schedule_is_empty() {
        let s = Schedule::new(2);
        assert_eq!(task_summary(&s), "");
    }

    #[test]
    fn summary_accumulates_split_segments() {
        let mut s = Schedule::new(1);
        s.push(Segment::new(0, 0, 0.0, 2.0, 1.0));
        s.push(Segment::new(0, 0, 4.0, 6.0, 0.5));
        let sum = task_summary(&s);
        assert!(sum.contains("2 segment(s)"), "{sum}");
        assert!(sum.contains("4.0000 time"), "{sum}");
        assert!(sum.contains("3.0000 work"), "{sum}");
        // Both spans listed with their core and frequency.
        assert!(sum.contains("[0.00,2.00]@M0/f=1.000"), "{sum}");
        assert!(sum.contains("[4.00,6.00]@M0/f=0.500"), "{sum}");
    }
}
