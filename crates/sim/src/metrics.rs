//! Simulation report: what the engine measured.

use esched_types::TaskId;

/// A schedule conflict observed during simulation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Conflict {
    /// When it happened.
    pub time: f64,
    /// The core involved.
    pub core: usize,
    /// The task that was already running.
    pub running: TaskId,
    /// The task whose start was rejected.
    pub rejected: TaskId,
}

/// Everything a simulation run measures.
#[derive(Debug, Clone, PartialEq)]
pub struct SimReport {
    /// Total energy integrated over all cores.
    pub energy: f64,
    /// Per-core energy.
    pub core_energy: Vec<f64>,
    /// Per-core busy time.
    pub core_busy: Vec<f64>,
    /// Work delivered to each task by its deadline.
    pub work_done: Vec<f64>,
    /// Tasks that did not reach their required work by their deadline.
    pub deadline_misses: Vec<TaskId>,
    /// Start events rejected because the core was busy.
    pub conflicts: Vec<Conflict>,
    /// Per-core activation counts (sleep → active transitions).
    pub activations: Vec<usize>,
    /// Per-core state-transition tallies (both sleep → active and
    /// active → sleep).
    pub core_transitions: Vec<usize>,
    /// High-water mark of the event-queue depth during the run.
    pub queue_peak: usize,
    /// Times a task resumed after having already run (its execution was
    /// split across segments).
    pub preemptions: usize,
    /// Times a task resumed on a different core than its previous segment.
    pub migrations: usize,
    /// Simulated horizon `[start, end]`.
    pub horizon: (f64, f64),
}

impl SimReport {
    /// Did the schedule execute cleanly: no conflicts, no misses?
    pub fn is_clean(&self) -> bool {
        self.conflicts.is_empty() && self.deadline_misses.is_empty()
    }

    /// Total energy including a fixed wake-up cost per core activation —
    /// the transition-overhead extension the base platform model omits
    /// (cores sleep at zero power, but entering/leaving sleep is not free
    /// on real silicon). Schedules with many short segments pay more
    /// here; coalesced offline packings pay least.
    pub fn energy_with_wakeup(&self, wakeup_cost: f64) -> f64 {
        assert!(wakeup_cost >= 0.0);
        self.energy + wakeup_cost * self.activations.iter().sum::<usize>() as f64
    }

    /// Average utilization over the horizon.
    pub fn utilization(&self) -> f64 {
        let span = self.horizon.1 - self.horizon.0;
        if span <= 0.0 || self.core_busy.is_empty() {
            return 0.0;
        }
        self.core_busy.iter().sum::<f64>() / (span * self.core_busy.len() as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_and_utilization() {
        let r = SimReport {
            energy: 1.0,
            core_energy: vec![0.5, 0.5],
            core_busy: vec![4.0, 2.0],
            work_done: vec![1.0],
            deadline_misses: vec![],
            conflicts: vec![],
            activations: vec![1, 1],
            core_transitions: vec![2, 2],
            queue_peak: 6,
            preemptions: 0,
            migrations: 0,
            horizon: (0.0, 6.0),
        };
        assert!(r.is_clean());
        assert!((r.utilization() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn wakeup_energy_adds_per_activation() {
        let r = SimReport {
            energy: 10.0,
            core_energy: vec![5.0, 5.0],
            core_busy: vec![1.0, 1.0],
            work_done: vec![],
            deadline_misses: vec![],
            conflicts: vec![],
            activations: vec![3, 2],
            core_transitions: vec![6, 4],
            queue_peak: 10,
            preemptions: 2,
            migrations: 1,
            horizon: (0.0, 2.0),
        };
        assert!((r.energy_with_wakeup(0.0) - 10.0).abs() < 1e-12);
        assert!((r.energy_with_wakeup(0.5) - 12.5).abs() < 1e-12);
    }

    #[test]
    fn misses_make_it_dirty() {
        let r = SimReport {
            energy: 0.0,
            core_energy: vec![],
            core_busy: vec![],
            work_done: vec![],
            deadline_misses: vec![3],
            conflicts: vec![],
            activations: vec![],
            core_transitions: vec![],
            queue_peak: 0,
            preemptions: 0,
            migrations: 0,
            horizon: (0.0, 0.0),
        };
        assert!(!r.is_clean());
        assert_eq!(r.utilization(), 0.0);
    }
}
