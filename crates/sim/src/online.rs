//! Online global-EDF dispatcher with per-task frequencies.
//!
//! The paper closes by arguing its scheduling mechanism "is easy to be
//! implemented in practical systems": compute each task's frequency
//! offline (the `S^F2` assignment), then let an ordinary global EDF
//! dispatcher place tasks on cores at runtime — no precomputed segment
//! table needed. This module implements that runtime: an event-driven
//! dispatcher that, at every release/completion instant, runs the `m`
//! earliest-deadline ready tasks, each at its own fixed frequency.
//!
//! The dispatcher makes no feasibility promise — that is the point. The
//! experiments compare it against the offline Algorithm-1 packing and
//! count how often plain EDF dispatch preserves the heuristics' deadline
//! guarantees (for `S^F2` frequencies it almost always does; the
//! `online_edf` ablation quantifies the exceptions).

// Indexed loops below walk several parallel arrays at once; iterator
// zips would obscure the numerics. Silence clippy's range-loop lint here.
#![allow(clippy::needless_range_loop)]

use esched_types::time::EPS;
use esched_types::{Schedule, Segment, TaskSet};

/// Which ready task runs first.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DispatchPolicy {
    /// Earliest deadline first. Simple, but with heterogeneous per-task
    /// frequencies it can starve a low-frequency task whose deadline is
    /// late until its remaining window no longer fits — the `S^F2`
    /// frequency assignment leaves some tasks with near-zero slack, and
    /// plain EDF then misses (see the V.D regression test below).
    Edf,
    /// Least laxity first: priority by `deadline − now − remaining_time`.
    /// Laxity accounts for each task's *own* execution speed, which is
    /// exactly what heterogeneous frequency assignments need.
    Llf,
}

/// Result of an online dispatch run.
#[derive(Debug, Clone, PartialEq)]
pub struct OnlineOutcome {
    /// The schedule the dispatcher produced.
    pub schedule: Schedule,
    /// Tasks that did not finish by their deadline (work truncated at the
    /// deadline; the dispatcher stops running a task once its deadline
    /// passes).
    pub misses: Vec<usize>,
    /// Number of dispatch decisions (events processed).
    pub decisions: usize,
}

#[derive(Debug, Clone, Copy)]
struct Job {
    release: f64,
    deadline: f64,
    /// Remaining execution *time* at this job's frequency.
    remaining: f64,
    freq: f64,
    /// Core the job ran on in the previous slice (for sticky placement —
    /// avoids gratuitous migrations).
    last_core: Option<usize>,
}

/// [`dispatch`] with the EDF policy and no extra epochs — the simplest
/// runtime a practitioner would try first.
pub fn dispatch_edf(tasks: &TaskSet, cores: usize, freq: &[f64]) -> OnlineOutcome {
    dispatch(tasks, cores, freq, DispatchPolicy::Edf, &[])
}

/// Dispatch `tasks` online on `cores` cores, running task `i` at
/// `freq[i]` whenever it is scheduled. At each decision instant the `m`
/// highest-priority ready unfinished tasks run (priority per `policy`);
/// placement is sticky (a task keeps its previous core when possible).
///
/// Decision instants are releases, completions, running-task deadlines,
/// and the caller-provided `epochs` (pass the subinterval boundaries to
/// give LLF the re-evaluation points the paper's timeline structure
/// implies).
///
/// # Panics
/// If `freq` length mismatches or contains non-positive values.
pub fn dispatch(
    tasks: &TaskSet,
    cores: usize,
    freq: &[f64],
    policy: DispatchPolicy,
    epochs: &[f64],
) -> OnlineOutcome {
    assert_eq!(freq.len(), tasks.len());
    assert!(freq.iter().all(|&f| f > 0.0 && f.is_finite()));
    assert!(cores > 0);

    let mut jobs: Vec<Job> = tasks
        .iter()
        .map(|(i, t)| Job {
            release: t.release,
            deadline: t.deadline,
            remaining: t.wcec / freq[i],
            freq: freq[i],
            last_core: None,
        })
        .collect();

    let mut schedule = Schedule::new(cores);
    let mut misses: Vec<usize> = Vec::new();
    let mut decisions = 0usize;
    let mut now = tasks.earliest_release();
    let horizon_end = tasks.latest_deadline();

    while now < horizon_end - EPS {
        decisions += 1;
        // Expire jobs whose deadline has passed with work left.
        for (i, j) in jobs.iter_mut().enumerate() {
            if j.remaining > EPS && j.deadline <= now + EPS {
                misses.push(i);
                j.remaining = 0.0;
            }
        }

        // Ready set: released, unfinished, deadline ahead.
        let mut ready: Vec<usize> = jobs
            .iter()
            .enumerate()
            .filter(|(_, j)| j.remaining > EPS && j.release <= now + EPS && j.deadline > now + EPS)
            .map(|(i, _)| i)
            .collect();
        let key = |i: usize| -> f64 {
            match policy {
                DispatchPolicy::Edf => jobs[i].deadline,
                DispatchPolicy::Llf => jobs[i].deadline - now - jobs[i].remaining,
            }
        };
        ready.sort_by(|&a, &b| {
            key(a)
                .partial_cmp(&key(b))
                .expect("finite priorities")
                .then(a.cmp(&b))
        });
        ready.truncate(cores);

        // Next event: a completion among the running, a deadline among the
        // running, or the next release of any pending job.
        let mut next = horizon_end;
        for &i in &ready {
            next = next.min(now + jobs[i].remaining).min(jobs[i].deadline);
        }
        for j in jobs.iter() {
            if j.remaining > EPS && j.release > now + EPS {
                next = next.min(j.release);
            }
        }
        // Caller-provided re-evaluation epochs (e.g. subinterval
        // boundaries) bound every slice, so priorities are refreshed at
        // least that often.
        for &e in epochs {
            if e > now + EPS {
                next = next.min(e);
            }
        }
        if next <= now + EPS {
            // No runnable work and no future event: advance to the next
            // release or finish.
            let next_release = jobs
                .iter()
                .filter(|j| j.remaining > EPS && j.release > now + EPS)
                .map(|j| j.release)
                .fold(f64::INFINITY, f64::min);
            if !next_release.is_finite() {
                break;
            }
            now = next_release;
            continue;
        }

        // Sticky core placement: running tasks keep their core when free.
        let mut core_of = vec![usize::MAX; ready.len()];
        let mut taken = vec![false; cores];
        for (slot, &i) in ready.iter().enumerate() {
            if let Some(c) = jobs[i].last_core {
                if !taken[c] {
                    core_of[slot] = c;
                    taken[c] = true;
                }
            }
        }
        let mut free = (0..cores).filter(|&c| !taken[c]);
        for slot in 0..ready.len() {
            if core_of[slot] == usize::MAX {
                core_of[slot] = free.next().expect("ready.len() <= cores");
            }
        }

        for (slot, &i) in ready.iter().enumerate() {
            let run = (next - now).min(jobs[i].remaining);
            if run > EPS {
                schedule.push(Segment::new(i, core_of[slot], now, now + run, jobs[i].freq));
                jobs[i].remaining -= run;
                jobs[i].last_core = Some(core_of[slot]);
            }
        }
        now = next;
    }

    // Final expiry sweep.
    for (i, j) in jobs.iter().enumerate() {
        if j.remaining > EPS {
            misses.push(i);
        }
    }
    misses.sort_unstable();
    misses.dedup();
    schedule.coalesce();
    OnlineOutcome {
        schedule,
        misses,
        decisions,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use esched_types::{validate_schedule, TaskSet};

    #[test]
    fn single_task_runs_at_its_frequency() {
        let ts = TaskSet::from_triples(&[(0.0, 10.0, 4.0)]);
        let out = dispatch_edf(&ts, 1, &[0.5]);
        assert!(out.misses.is_empty());
        validate_schedule(&out.schedule, &ts).assert_legal();
        assert!((out.schedule.busy_time(0) - 8.0).abs() < 1e-9);
    }

    #[test]
    fn edf_prefers_earliest_deadline() {
        // Two jobs, one core: the tighter one runs first.
        let ts = TaskSet::from_triples(&[(0.0, 20.0, 2.0), (0.0, 4.0, 2.0)]);
        let out = dispatch_edf(&ts, 1, &[1.0, 1.0]);
        assert!(out.misses.is_empty(), "{:?}", out.misses);
        let first = out.schedule.segments()[0];
        assert_eq!(first.task, 1);
        validate_schedule(&out.schedule, &ts).assert_legal();
    }

    #[test]
    fn overload_records_misses() {
        // Three unit jobs due at 1 on one core at f = 1: only one fits.
        let ts = TaskSet::from_triples(&[(0.0, 1.0, 1.0), (0.0, 1.0, 1.0), (0.0, 1.0, 1.0)]);
        let out = dispatch_edf(&ts, 1, &[1.0, 1.0, 1.0]);
        assert_eq!(out.misses.len(), 2);
    }

    #[test]
    fn sticky_placement_avoids_gratuitous_migration() {
        // Two long jobs on two cores: each stays put.
        let ts = TaskSet::from_triples(&[(0.0, 10.0, 5.0), (1.0, 10.0, 5.0)]);
        let out = dispatch_edf(&ts, 2, &[1.0, 1.0]);
        assert!(out.misses.is_empty());
        assert_eq!(out.schedule.migrations(), 0);
    }

    #[test]
    fn preemption_by_tighter_job() {
        // A lax job is preempted when a tight one arrives, then resumes.
        let ts = TaskSet::from_triples(&[(0.0, 20.0, 6.0), (2.0, 5.0, 3.0)]);
        let out = dispatch_edf(&ts, 1, &[1.0, 1.0]);
        assert!(out.misses.is_empty());
        validate_schedule(&out.schedule, &ts).assert_legal();
        // Task 0 runs [0,2], yields [2,5] to task 1, resumes [5,9].
        let segs = out.schedule.task_segments(0);
        assert_eq!(segs.len(), 2);
        assert!((segs[1].interval.start - 5.0).abs() < 1e-9);
    }

    #[test]
    fn greedy_dispatch_of_f2_frequencies_is_not_reliable() {
        // A genuine finding this workspace surfaces — and a caveat to the
        // paper's "easy to implement in practical systems" remark. On the
        // V.D example the S^F2 frequency assignment leaves an aggregate
        // laxity of only ~3 time units across six tasks, and *no* greedy
        // online policy realizes it: plain global EDF starves τ5 (latest
        // deadline among the [8,10] contenders) and misses, and LLF —
        // which is not optimal on multiprocessors (Dertouzos & Mok) —
        // misses too, at every re-evaluation granularity we tried. The
        // reliable lightweight runtime is the per-subinterval wrap-around
        // table that Algorithm 1 computes (the offline schedule, which
        // validates and simulates cleanly elsewhere in the suite).
        use esched_core::der_schedule;
        use esched_subinterval::Timeline;
        use esched_types::PolynomialPower;
        let ts = TaskSet::from_triples(&[
            (0.0, 10.0, 8.0),
            (2.0, 18.0, 14.0),
            (4.0, 16.0, 8.0),
            (6.0, 14.0, 4.0),
            (8.0, 20.0, 10.0),
            (12.0, 22.0, 6.0),
        ]);
        let p = PolynomialPower::cubic();
        let der = der_schedule(&ts, 4, &p);

        let edf = dispatch_edf(&ts, 4, &der.assignment.freq);
        assert_eq!(edf.misses, vec![4], "EDF miss pattern changed");
        // Whatever EDF did produce is still collision-free and inside
        // windows (misses are truncations, not overruns).
        let report = validate_schedule(&edf.schedule, &ts);
        let non_work_violations = report
            .violations
            .iter()
            .filter(|v| !matches!(v, esched_types::Violation::Underserved { .. }))
            .count();
        assert_eq!(non_work_violations, 0, "{:?}", report.violations);

        let epochs = Timeline::build(&ts).boundaries().to_vec();
        let llf = dispatch(&ts, 4, &der.assignment.freq, DispatchPolicy::Llf, &epochs);
        assert!(!llf.misses.is_empty(), "LLF unexpectedly succeeded");

        // The offline packing remains the ground truth: it delivers every
        // requirement at the same frequencies.
        validate_schedule(&der.schedule, &ts).assert_legal();
    }

    #[test]
    fn greedy_dispatch_succeeds_when_slack_is_ample() {
        // With mild utilization both policies realize the F2 frequencies
        // online — the failure above is a tight-instance phenomenon.
        use esched_core::der_schedule;
        use esched_types::PolynomialPower;
        let ts = TaskSet::from_triples(&[
            (0.0, 20.0, 6.0),
            (2.0, 25.0, 5.0),
            (5.0, 30.0, 7.0),
            (8.0, 40.0, 6.0),
        ]);
        // High static power pushes every task to the critical frequency
        // (≈ 0.585), well above any stretch frequency, so durations are
        // roughly half the windows — real slack for the dispatcher.
        let p = PolynomialPower::paper(3.0, 0.4);
        let der = der_schedule(&ts, 2, &p);
        for policy in [DispatchPolicy::Edf, DispatchPolicy::Llf] {
            let out = dispatch(&ts, 2, &der.assignment.freq, policy, &[]);
            assert!(out.misses.is_empty(), "{policy:?}: {:?}", out.misses);
            validate_schedule(&out.schedule, &ts).assert_legal();
        }
    }
}
