//! The discrete-event simulation engine.
//!
//! [`simulate`] plays a [`Schedule`] against a [`TaskSet`] under a power
//! model: segment boundaries become events, per-core state machines
//! integrate energy, work is credited to tasks as segments complete, and
//! deadline events check that every task received its requirement in time.
//!
//! The engine deliberately re-measures everything the analytic layer
//! already "knows" — energy, work, legality — so the two can be
//! cross-checked: if the algebra in `esched-core` and the event mechanics
//! here ever disagree, a test fails.

use crate::event::{Event, EventKind, EventQueue};
use crate::machine::Core;
use crate::metrics::{Conflict, SimReport};
use esched_types::validate::WORK_TOL;
use esched_types::{PowerModel, Schedule, TaskSet};

/// One entry of the execution log collected by [`simulate_traced`].
#[derive(Debug, Clone, PartialEq)]
pub struct LoggedEvent {
    /// When it happened.
    pub time: f64,
    /// Human/machine-readable kind: `start`, `end`, `release`, `deadline`,
    /// `conflict`, `miss`.
    pub kind: String,
    /// The task involved.
    pub task: usize,
    /// The core involved (usize::MAX when not core-specific).
    pub core: usize,
}

/// Render a log as CSV (`time,kind,task,core`).
pub fn log_to_csv(log: &[LoggedEvent]) -> String {
    let mut out = String::from("time,kind,task,core\n");
    for e in log {
        let core = if e.core == usize::MAX {
            String::new()
        } else {
            e.core.to_string()
        };
        out.push_str(&format!("{:.9},{},{},{}\n", e.time, e.kind, e.task, core));
    }
    out
}

/// Execute `schedule` for `tasks` under `model` and measure the outcome.
///
/// # Examples
///
/// ```
/// use esched_sim::simulate;
/// use esched_types::{PolynomialPower, Schedule, Segment, TaskSet};
///
/// let tasks = TaskSet::from_triples(&[(0.0, 4.0, 2.0)]);
/// let mut s = Schedule::new(1);
/// s.push(Segment::new(0, 0, 0.0, 4.0, 0.5));
/// let report = simulate(&s, &tasks, &PolynomialPower::cubic());
/// assert!(report.is_clean());
/// assert!((report.energy - 0.5_f64.powi(3) * 4.0).abs() < 1e-12);
/// ```
pub fn simulate<P: PowerModel>(schedule: &Schedule, tasks: &TaskSet, model: &P) -> SimReport {
    run(schedule, tasks, model, None)
}

/// [`simulate`], additionally returning the time-ordered execution log —
/// every start/end/release/deadline/conflict/miss as it was processed.
pub fn simulate_traced<P: PowerModel>(
    schedule: &Schedule,
    tasks: &TaskSet,
    model: &P,
) -> (SimReport, Vec<LoggedEvent>) {
    let mut log = Vec::new();
    let report = run(schedule, tasks, model, Some(&mut log));
    (report, log)
}

fn run<P: PowerModel>(
    schedule: &Schedule,
    tasks: &TaskSet,
    model: &P,
    mut log: Option<&mut Vec<LoggedEvent>>,
) -> SimReport {
    let _span = esched_obs::span!(
        esched_obs::Level::Info,
        "simulate",
        n_segments = schedule.len(),
        n_tasks = tasks.len(),
        cores = schedule.cores,
    );
    let mut queue = EventQueue::new();
    for (idx, seg) in schedule.segments().iter().enumerate() {
        queue.push(Event {
            time: seg.interval.start,
            kind: EventKind::SegmentStart {
                core: seg.core,
                task: seg.task,
                segment: idx,
                freq: seg.freq,
            },
        });
        queue.push(Event {
            time: seg.interval.end,
            kind: EventKind::SegmentEnd {
                core: seg.core,
                task: seg.task,
                segment: idx,
            },
        });
    }
    for (id, t) in tasks.iter() {
        queue.push(Event {
            time: t.release,
            kind: EventKind::Release { task: id },
        });
        queue.push(Event {
            time: t.deadline,
            kind: EventKind::Deadline { task: id },
        });
    }

    let mut cores: Vec<Core> = (0..schedule.cores).map(|_| Core::default()).collect();
    let mut work_done = vec![0.0_f64; tasks.len()];
    let mut released = vec![false; tasks.len()];
    let mut misses: Vec<usize> = Vec::new();
    let mut conflicts: Vec<Conflict> = Vec::new();
    // Starts the engine rejected; their matching end events must not stop
    // the victim that is legitimately running.
    let mut rejected_segments: Vec<usize> = Vec::new();
    // Counters surfaced in the report. All events are queued up front, so
    // the queue's high-water mark is its depth before the loop drains it.
    let queue_peak = queue.len();
    let mut core_transitions = vec![0usize; schedule.cores];
    let mut preemptions = 0usize;
    let mut migrations = 0usize;
    // Last core each task ran on, for resume/migration detection.
    let mut last_core: Vec<Option<usize>> = vec![None; tasks.len()];
    // Which segment each core is currently executing. An end event may
    // only stop the core when it matches the running segment: a segment
    // shorter than the batching tolerance has its start *and* end inside
    // one batch, and the rank rule alone would process that end first —
    // while the core is idle (consuming it, so the segment later runs
    // unterminated) or running someone else entirely.
    let mut running_segment: Vec<Option<usize>> = vec![None; schedule.cores];

    // Stop `core` at `time`, crediting the measured work to the task the
    // machine reports (asserted to be the segment's own task — the
    // `running_segment` guard at both call sites makes this an invariant).
    #[allow(clippy::too_many_arguments)] // threads the engine's mutable state
    fn finish<P: PowerModel>(
        cores: &mut [Core],
        core: usize,
        time: f64,
        model: &P,
        task: usize,
        core_transitions: &mut [usize],
        work_done: &mut [f64],
        running_segment: &mut [Option<usize>],
    ) {
        if let Some((t, w)) = cores[core].stop(time, model) {
            debug_assert_eq!(t, task, "segment end for a different task");
            core_transitions[core] += 1;
            if t < work_done.len() {
                work_done[t] += w;
            }
        }
        running_segment[core] = None;
    }

    let horizon = tasks.horizon();
    // Events are processed in *batches* of approximately equal timestamps:
    // segment boundaries produced by different arithmetic paths (e.g. YDS
    // timeline compression vs. direct packing) can differ by a few ulps,
    // and a start must not race ahead of the end it hands over from. Within
    // a batch the EventKind rank (ends → deadlines → releases → starts)
    // decides the order; `EventQueue` already pops in that order for
    // *exactly* equal times, so batching only needs to collect the
    // near-equal ones and re-sort by rank.
    let mut batch: Vec<Event> = Vec::new();
    'outer: loop {
        batch.clear();
        match queue.pop() {
            Some(first) => batch.push(first),
            None => break 'outer,
        }
        let batch_time = batch[0].time;
        while let Some(next) = queue.pop() {
            if esched_types::time::approx_eq(next.time, batch_time) {
                batch.push(next);
            } else {
                // Not part of the batch; push back and stop collecting.
                queue.push(next);
                break;
            }
        }
        esched_obs::metric_counter!("esched.sim.event_batches").inc();
        esched_obs::metric_counter!("esched.sim.events").add(batch.len() as u64);
        // Rank first: an end one ulp *after* a start at the "same" instant
        // must still be processed before it.
        batch.sort_by(|a, b| {
            a.kind
                .rank()
                .cmp(&b.kind.rank())
                .then(a.time.partial_cmp(&b.time).expect("finite"))
        });
        // Ends whose segment is not the one the core is running: their
        // start is later in this same batch (the segment is shorter than
        // the batching tolerance). They are retried once their start has
        // been processed — just before a handover start that needs the
        // core, or at the end of the batch.
        let mut deferred_ends: Vec<Event> = Vec::new();
        for idx in 0..batch.len() {
            let ev = batch[idx];
            let mut emit = |time: f64, kind: &str, task: usize, core: usize| {
                if let Some(l) = log.as_deref_mut() {
                    l.push(LoggedEvent {
                        time,
                        kind: kind.to_string(),
                        task,
                        core,
                    });
                }
            };
            match ev.kind {
                EventKind::SegmentEnd {
                    core,
                    segment,
                    task,
                } => {
                    if rejected_segments.contains(&segment) {
                        continue;
                    }
                    if running_segment[core] != Some(segment) {
                        deferred_ends.push(ev);
                        continue;
                    }
                    emit(ev.time, "end", task, core);
                    finish(
                        &mut cores,
                        core,
                        ev.time,
                        model,
                        task,
                        &mut core_transitions,
                        &mut work_done,
                        &mut running_segment,
                    );
                }
                EventKind::Deadline { task } => {
                    emit(ev.time, "deadline", task, usize::MAX);
                    let required = tasks.get(task).wcec;
                    // Segment ends at this instant were processed first (rank 0
                    // before rank 1, and near-equal times share a batch), so
                    // `work_done` already credits any segment finishing exactly
                    // at the deadline. A shortfall beyond the validator's
                    // WORK_TOL — the same relative-plus-absolute rule
                    // `validate_schedule` applies — is therefore a real miss,
                    // never a boundary-rounding artifact.
                    let mut shortfall = required - work_done[task];
                    debug_assert!(
                        shortfall.is_finite(),
                        "non-finite work accounting for task {task}"
                    );
                    if shortfall > required * WORK_TOL + WORK_TOL {
                        // One exception: a dust segment whose start AND end
                        // share this batch is ranked *after* the deadline
                        // (starts are rank 3), so its work is not yet in
                        // `work_done` even though it completes at — within
                        // tolerance of — the deadline. The validator counts
                        // such segments; credit them before the verdict.
                        let pending: f64 = batch[idx + 1..]
                            .iter()
                            .filter_map(|e| match e.kind {
                                EventKind::SegmentStart {
                                    task: t, segment, ..
                                } if t == task => {
                                    let seg = &schedule.segments()[segment];
                                    if esched_types::time::approx_le(seg.interval.end, ev.time) {
                                        Some(seg.work())
                                    } else {
                                        None
                                    }
                                }
                                _ => None,
                            })
                            .sum();
                        shortfall -= pending;
                    }
                    if shortfall > required * WORK_TOL + WORK_TOL {
                        emit(ev.time, "miss", task, usize::MAX);
                        misses.push(task);
                    }
                }
                EventKind::Release { task } => {
                    emit(ev.time, "release", task, usize::MAX);
                    released[task] = true;
                }
                EventKind::SegmentStart {
                    core,
                    task,
                    segment,
                    freq,
                } => {
                    if task < released.len() && !released[task] {
                        // Running before release is a window violation the
                        // validator reports; the simulator executes it anyway
                        // (hardware would) — deadline accounting still works.
                    }
                    // A deferred end for the segment this core is running is a
                    // handover boundary: it must fire before this start can
                    // take the core.
                    if let Some(pos) = deferred_ends.iter().position(|e| match e.kind {
                        EventKind::SegmentEnd {
                            core: c,
                            segment: s,
                            ..
                        } => c == core && running_segment[core] == Some(s),
                        _ => false,
                    }) {
                        let e = deferred_ends.remove(pos);
                        if let EventKind::SegmentEnd { task: t, .. } = e.kind {
                            emit(e.time, "end", t, core);
                            finish(
                                &mut cores,
                                core,
                                e.time,
                                model,
                                t,
                                &mut core_transitions,
                                &mut work_done,
                                &mut running_segment,
                            );
                        }
                    }
                    match cores[core].start(task, freq, ev.time) {
                        Ok(()) => {
                            emit(ev.time, "start", task, core);
                            running_segment[core] = Some(segment);
                            core_transitions[core] += 1;
                            if task < last_core.len() {
                                if let Some(prev) = last_core[task] {
                                    preemptions += 1;
                                    if prev != core {
                                        migrations += 1;
                                    }
                                }
                                last_core[task] = Some(core);
                            }
                        }
                        Err(running) => {
                            emit(ev.time, "conflict", task, core);
                            conflicts.push(Conflict {
                                time: ev.time,
                                core,
                                running,
                                rejected: task,
                            });
                            rejected_segments.push(segment);
                        }
                    }
                }
            }
        }
        // Ends still deferred: the batch's starts have all run, so either
        // the segment is now the running one (stop it), was rejected when
        // its start conflicted (drop it silently, like any rejected end),
        // or the schedule is malformed (log the end, leave the core alone
        // — the horizon flush settles the energy/work books).
        for e in deferred_ends.drain(..) {
            if let EventKind::SegmentEnd {
                core,
                segment,
                task,
            } = e.kind
            {
                if rejected_segments.contains(&segment) {
                    continue;
                }
                if let Some(l) = log.as_deref_mut() {
                    l.push(LoggedEvent {
                        time: e.time,
                        kind: "end".to_string(),
                        task,
                        core,
                    });
                }
                if running_segment[core] == Some(segment) {
                    finish(
                        &mut cores,
                        core,
                        e.time,
                        model,
                        task,
                        &mut core_transitions,
                        &mut work_done,
                        &mut running_segment,
                    );
                }
            }
        }
    }

    // Flush any cores still active (segments ending exactly at horizon end
    // have been processed; this guards malformed schedules).
    let end_time = schedule.makespan().max(horizon.end);
    for (k, c) in cores.iter_mut().enumerate() {
        if let Some((t, w)) = c.stop(end_time, model) {
            core_transitions[k] += 1;
            if t < work_done.len() {
                work_done[t] += w;
            }
        }
    }

    misses.sort_unstable();
    misses.dedup();
    esched_obs::metric_counter!("esched.sim.runs").inc();
    esched_obs::metric_counter!("esched.sim.preemptions").add(preemptions as u64);
    esched_obs::metric_counter!("esched.sim.migrations").add(migrations as u64);
    esched_obs::metric_gauge!("esched.sim.queue_peak").set_max(queue_peak as f64);
    esched_obs::event!(
        esched_obs::Level::Debug,
        "simulation done",
        queue_peak = queue_peak,
        preemptions = preemptions,
        migrations = migrations,
        misses = misses.len(),
        conflicts = conflicts.len(),
    );
    SimReport {
        energy: cores.iter().map(|c| c.energy).sum(),
        core_energy: cores.iter().map(|c| c.energy).collect(),
        core_busy: cores.iter().map(|c| c.busy).collect(),
        work_done,
        deadline_misses: misses,
        conflicts,
        activations: cores.iter().map(|c| c.activations).collect(),
        core_transitions,
        queue_peak,
        preemptions,
        migrations,
        horizon: (horizon.start, horizon.end),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use esched_types::{PolynomialPower, Schedule, Segment, TaskSet};

    fn tasks3() -> TaskSet {
        TaskSet::from_triples(&[(0.0, 12.0, 4.0), (2.0, 10.0, 2.0), (4.0, 8.0, 4.0)])
    }

    #[test]
    fn clean_schedule_simulates_cleanly() {
        // τ2 exclusively on core 1 during [4,8] at f = 1; τ0, τ1 on core 0.
        let mut s = Schedule::new(2);
        s.push(Segment::new(0, 0, 0.0, 4.0, 0.5));
        s.push(Segment::new(0, 0, 8.0, 12.0, 0.5));
        s.push(Segment::new(1, 0, 4.0, 8.0, 0.5));
        s.push(Segment::new(2, 1, 4.0, 8.0, 1.0));
        let p = PolynomialPower::cubic();
        let r = simulate(&s, &tasks3(), &p);
        assert!(r.is_clean(), "{:?}", r);
        assert!((r.work_done[0] - 4.0).abs() < 1e-9);
        assert!((r.work_done[1] - 2.0).abs() < 1e-9);
        assert!((r.work_done[2] - 4.0).abs() < 1e-9);
        // Energy agrees with the analytic sum.
        assert!((r.energy - s.energy(&p)).abs() < 1e-9);
    }

    #[test]
    fn detects_underserved_deadline() {
        let mut s = Schedule::new(1);
        s.push(Segment::new(0, 0, 0.0, 2.0, 1.0)); // 2 of 4 work
        let ts = TaskSet::from_triples(&[(0.0, 12.0, 4.0)]);
        let r = simulate(&s, &ts, &PolynomialPower::cubic());
        assert_eq!(r.deadline_misses, vec![0]);
    }

    #[test]
    fn work_after_deadline_does_not_count() {
        let mut s = Schedule::new(1);
        s.push(Segment::new(0, 0, 0.0, 2.0, 1.0));
        s.push(Segment::new(0, 0, 12.0, 14.0, 1.0)); // too late
        let ts = TaskSet::from_triples(&[(0.0, 12.0, 4.0)]);
        let r = simulate(&s, &ts, &PolynomialPower::cubic());
        assert_eq!(r.deadline_misses, vec![0]);
        // Both segments still consumed energy.
        assert!((r.work_done[0] - 4.0).abs() < 1e-9);
    }

    #[test]
    fn conflicting_starts_are_rejected_and_reported() {
        let mut s = Schedule::new(1);
        s.push(Segment::new(0, 0, 0.0, 4.0, 1.0));
        s.push(Segment::new(1, 0, 2.0, 5.0, 1.0)); // overlaps on core 0
        let ts = TaskSet::from_triples(&[(0.0, 12.0, 4.0), (0.0, 12.0, 3.0)]);
        let r = simulate(&s, &ts, &PolynomialPower::cubic());
        assert_eq!(r.conflicts.len(), 1);
        assert_eq!(r.conflicts[0].running, 0);
        assert_eq!(r.conflicts[0].rejected, 1);
        // The victim keeps running its full segment.
        assert!((r.work_done[0] - 4.0).abs() < 1e-9);
    }

    #[test]
    fn back_to_back_handover_works() {
        let mut s = Schedule::new(1);
        s.push(Segment::new(0, 0, 0.0, 4.0, 1.0));
        s.push(Segment::new(1, 0, 4.0, 8.0, 0.5));
        let ts = TaskSet::from_triples(&[(0.0, 12.0, 4.0), (0.0, 12.0, 2.0)]);
        let r = simulate(&s, &ts, &PolynomialPower::cubic());
        assert!(r.is_clean(), "{:?}", r.conflicts);
        assert_eq!(r.activations[0], 2);
    }

    #[test]
    fn traced_run_logs_events_in_order() {
        let mut s = Schedule::new(1);
        s.push(Segment::new(0, 0, 0.0, 4.0, 1.0));
        let ts = TaskSet::from_triples(&[(0.0, 4.0, 4.0)]);
        let (report, log) = super::simulate_traced(&s, &ts, &PolynomialPower::cubic());
        assert!(report.is_clean());
        let kinds: Vec<&str> = log.iter().map(|e| e.kind.as_str()).collect();
        assert_eq!(kinds, vec!["release", "start", "end", "deadline"]);
        // Timestamps non-decreasing.
        for w in log.windows(2) {
            assert!(w[0].time <= w[1].time + 1e-9);
        }
        // CSV renders with a header and one row per event.
        let csv = super::log_to_csv(&log);
        assert_eq!(csv.lines().count(), 5);
        assert!(csv.starts_with("time,kind,task,core\n"));
        // Deadline rows leave the core column empty.
        assert!(csv.lines().last().unwrap().ends_with(','));
    }

    #[test]
    fn traced_run_logs_misses_and_conflicts() {
        let mut s = Schedule::new(1);
        s.push(Segment::new(0, 0, 0.0, 2.0, 1.0)); // half the work
        s.push(Segment::new(1, 0, 1.0, 3.0, 1.0)); // conflicts with task 0
        let ts = TaskSet::from_triples(&[(0.0, 4.0, 4.0), (0.0, 4.0, 2.0)]);
        let (_, log) = super::simulate_traced(&s, &ts, &PolynomialPower::cubic());
        assert!(log.iter().any(|e| e.kind == "miss"));
        assert!(log.iter().any(|e| e.kind == "conflict"));
    }

    #[test]
    fn segment_ending_exactly_at_deadline_is_credited() {
        // The segment end and the deadline share a timestamp; batch rank
        // ordering (ends before deadlines) must credit the work first.
        let mut s = Schedule::new(1);
        s.push(Segment::new(0, 0, 0.0, 8.0, 0.5));
        let ts = TaskSet::from_triples(&[(0.0, 8.0, 4.0)]);
        let r = simulate(&s, &ts, &PolynomialPower::cubic());
        assert!(r.is_clean(), "{:?}", r.deadline_misses);
        assert!((r.work_done[0] - 4.0).abs() < 1e-9);
    }

    #[test]
    fn shortfall_within_validator_tolerance_is_not_a_miss() {
        // Deliver (1 - WORK_TOL/2) of the requirement: inside the shared
        // epsilon, so the simulator must agree with `validate_schedule`
        // that this is clean.
        let wcec = 4.0;
        let short = wcec * (1.0 - WORK_TOL / 2.0);
        let mut s = Schedule::new(1);
        s.push(Segment::new(0, 0, 0.0, short, 1.0));
        let ts = TaskSet::from_triples(&[(0.0, 8.0, wcec)]);
        let r = simulate(&s, &ts, &PolynomialPower::cubic());
        assert!(r.is_clean(), "{:?}", r.deadline_misses);
        let v = esched_types::validate_schedule(&s, &ts);
        assert!(v.violations.is_empty(), "{:?}", v.violations);
    }

    #[test]
    fn shortfall_beyond_tolerance_is_a_miss_and_validator_agrees() {
        let wcec = 4.0;
        let short = wcec * (1.0 - 10.0 * WORK_TOL);
        let mut s = Schedule::new(1);
        s.push(Segment::new(0, 0, 0.0, short, 1.0));
        let ts = TaskSet::from_triples(&[(0.0, 8.0, wcec)]);
        let r = simulate(&s, &ts, &PolynomialPower::cubic());
        assert_eq!(r.deadline_misses, vec![0]);
        let v = esched_types::validate_schedule(&s, &ts);
        assert!(
            v.violations
                .iter()
                .any(|x| matches!(x, esched_types::Violation::Underserved { .. })),
            "{:?}",
            v.violations
        );
    }

    #[test]
    fn counters_track_queue_preemptions_and_migrations() {
        // Task 0 runs [0,2] on core 0, then resumes [4,6] on core 1:
        // one preemption, one migration. Task 1 runs once: neither.
        let mut s = Schedule::new(2);
        s.push(Segment::new(0, 0, 0.0, 2.0, 1.0));
        s.push(Segment::new(0, 1, 4.0, 6.0, 1.0));
        s.push(Segment::new(1, 0, 3.0, 5.0, 1.0));
        let ts = TaskSet::from_triples(&[(0.0, 8.0, 4.0), (0.0, 8.0, 2.0)]);
        let r = simulate(&s, &ts, &PolynomialPower::cubic());
        assert!(r.is_clean(), "{:?}", r);
        // 3 segments × 2 events + 2 tasks × 2 events, all queued up front.
        assert_eq!(r.queue_peak, 10);
        assert_eq!(r.preemptions, 1);
        assert_eq!(r.migrations, 1);
        // Each segment is one start + one stop on its core.
        assert_eq!(r.core_transitions, vec![4, 2]);
    }

    #[test]
    fn split_execution_on_same_core_preempts_without_migrating() {
        let mut s = Schedule::new(1);
        s.push(Segment::new(0, 0, 0.0, 2.0, 1.0));
        s.push(Segment::new(0, 0, 4.0, 6.0, 1.0));
        let ts = TaskSet::from_triples(&[(0.0, 8.0, 4.0)]);
        let r = simulate(&s, &ts, &PolynomialPower::cubic());
        assert_eq!(r.preemptions, 1);
        assert_eq!(r.migrations, 0);
    }

    #[test]
    fn dust_segment_inside_one_event_batch_is_started_then_ended() {
        // A segment shorter than the event-batching tolerance (EPS-relative,
        // so 1e-6 at t = 10) has its start AND end collected into the same
        // batch; the rank rule alone would process the end first, while the
        // core is idle. Regression for the DER schedules fig10 generates:
        // the consumed end left the dust segment running forever, so the
        // next handover start was falsely rejected as a conflict and a
        // later end tripped the "segment end for a different task" assert.
        let dust = 4e-7; // < 1e-6 batching tolerance at t = 10
        let mut s = Schedule::new(1);
        s.push(Segment::new(0, 0, 0.0, 10.0, 0.5));
        s.push(Segment::new(1, 0, 10.0, 10.0 + dust, 1.0));
        s.push(Segment::new(2, 0, 10.0 + dust, 14.0, 1.0));
        let ts =
            TaskSet::from_triples(&[(0.0, 14.0, 5.0), (0.0, 14.0, dust), (0.0, 14.0, 4.0 - dust)]);
        let r = simulate(&s, &ts, &PolynomialPower::cubic());
        assert!(r.conflicts.is_empty(), "handover start falsely rejected");
        assert!(r.is_clean());
        // The dust segment must be credited its own sliver of work, not
        // everything up to the horizon flush.
        assert!((r.work_done[1] - dust).abs() < 1e-9);
        assert!((r.work_done[2] - (4.0 - dust)).abs() < 1e-9);
    }

    #[test]
    fn utilization_and_core_accounting() {
        let mut s = Schedule::new(2);
        s.push(Segment::new(0, 0, 0.0, 6.0, 1.0));
        s.push(Segment::new(1, 1, 0.0, 3.0, 1.0));
        let ts = TaskSet::from_triples(&[(0.0, 6.0, 6.0), (0.0, 6.0, 3.0)]);
        let r = simulate(&s, &ts, &PolynomialPower::cubic());
        assert!((r.core_busy[0] - 6.0).abs() < 1e-9);
        assert!((r.core_busy[1] - 3.0).abs() < 1e-9);
        assert!((r.utilization() - 0.75).abs() < 1e-9);
    }
}
