//! The discrete-event simulation engine.
//!
//! [`simulate`] plays a [`Schedule`] against a [`TaskSet`] under a power
//! model: segment boundaries become events, per-core state machines
//! integrate energy, work is credited to tasks as segments complete, and
//! deadline events check that every task received its requirement in time.
//!
//! The engine deliberately re-measures everything the analytic layer
//! already "knows" — energy, work, legality — so the two can be
//! cross-checked: if the algebra in `esched-core` and the event mechanics
//! here ever disagree, a test fails.

use crate::event::{Event, EventKind, EventQueue};
use crate::machine::Core;
use crate::metrics::{Conflict, SimReport};
use esched_types::{PowerModel, Schedule, TaskSet};

/// Tolerance on delivered work at a deadline, matching the validator's.
const WORK_TOL: f64 = 1e-6;

/// One entry of the execution log collected by [`simulate_traced`].
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct LoggedEvent {
    /// When it happened.
    pub time: f64,
    /// Human/machine-readable kind: `start`, `end`, `release`, `deadline`,
    /// `conflict`, `miss`.
    pub kind: String,
    /// The task involved.
    pub task: usize,
    /// The core involved (usize::MAX when not core-specific).
    pub core: usize,
}

/// Render a log as CSV (`time,kind,task,core`).
pub fn log_to_csv(log: &[LoggedEvent]) -> String {
    let mut out = String::from("time,kind,task,core\n");
    for e in log {
        let core = if e.core == usize::MAX {
            String::new()
        } else {
            e.core.to_string()
        };
        out.push_str(&format!("{:.9},{},{},{}\n", e.time, e.kind, e.task, core));
    }
    out
}

/// Execute `schedule` for `tasks` under `model` and measure the outcome.
///
/// # Examples
///
/// ```
/// use esched_sim::simulate;
/// use esched_types::{PolynomialPower, Schedule, Segment, TaskSet};
///
/// let tasks = TaskSet::from_triples(&[(0.0, 4.0, 2.0)]);
/// let mut s = Schedule::new(1);
/// s.push(Segment::new(0, 0, 0.0, 4.0, 0.5));
/// let report = simulate(&s, &tasks, &PolynomialPower::cubic());
/// assert!(report.is_clean());
/// assert!((report.energy - 0.5_f64.powi(3) * 4.0).abs() < 1e-12);
/// ```
pub fn simulate<P: PowerModel>(schedule: &Schedule, tasks: &TaskSet, model: &P) -> SimReport {
    run(schedule, tasks, model, None)
}

/// [`simulate`], additionally returning the time-ordered execution log —
/// every start/end/release/deadline/conflict/miss as it was processed.
pub fn simulate_traced<P: PowerModel>(
    schedule: &Schedule,
    tasks: &TaskSet,
    model: &P,
) -> (SimReport, Vec<LoggedEvent>) {
    let mut log = Vec::new();
    let report = run(schedule, tasks, model, Some(&mut log));
    (report, log)
}

fn run<P: PowerModel>(
    schedule: &Schedule,
    tasks: &TaskSet,
    model: &P,
    mut log: Option<&mut Vec<LoggedEvent>>,
) -> SimReport {
    let mut queue = EventQueue::new();
    for (idx, seg) in schedule.segments().iter().enumerate() {
        queue.push(Event {
            time: seg.interval.start,
            kind: EventKind::SegmentStart {
                core: seg.core,
                task: seg.task,
                segment: idx,
                freq: seg.freq,
            },
        });
        queue.push(Event {
            time: seg.interval.end,
            kind: EventKind::SegmentEnd {
                core: seg.core,
                task: seg.task,
                segment: idx,
            },
        });
    }
    for (id, t) in tasks.iter() {
        queue.push(Event {
            time: t.release,
            kind: EventKind::Release { task: id },
        });
        queue.push(Event {
            time: t.deadline,
            kind: EventKind::Deadline { task: id },
        });
    }

    let mut cores: Vec<Core> = (0..schedule.cores).map(|_| Core::default()).collect();
    let mut work_done = vec![0.0_f64; tasks.len()];
    let mut released = vec![false; tasks.len()];
    let mut misses: Vec<usize> = Vec::new();
    let mut conflicts: Vec<Conflict> = Vec::new();
    // Starts the engine rejected; their matching end events must not stop
    // the victim that is legitimately running.
    let mut rejected_segments: Vec<usize> = Vec::new();

    let horizon = tasks.horizon();
    // Events are processed in *batches* of approximately equal timestamps:
    // segment boundaries produced by different arithmetic paths (e.g. YDS
    // timeline compression vs. direct packing) can differ by a few ulps,
    // and a start must not race ahead of the end it hands over from. Within
    // a batch the EventKind rank (ends → deadlines → releases → starts)
    // decides the order; `EventQueue` already pops in that order for
    // *exactly* equal times, so batching only needs to collect the
    // near-equal ones and re-sort by rank.
    let mut batch: Vec<Event> = Vec::new();
    'outer: loop {
        batch.clear();
        match queue.pop() {
            Some(first) => batch.push(first),
            None => break 'outer,
        }
        let batch_time = batch[0].time;
        while let Some(next) = queue.pop() {
            if esched_types::time::approx_eq(next.time, batch_time) {
                batch.push(next);
            } else {
                // Not part of the batch; push back and stop collecting.
                queue.push(next);
                break;
            }
        }
        // Rank first: an end one ulp *after* a start at the "same" instant
        // must still be processed before it.
        batch.sort_by(|a, b| {
            a.kind
                .rank()
                .cmp(&b.kind.rank())
                .then(a.time.partial_cmp(&b.time).expect("finite"))
        });
        for &ev in batch.iter() {
        let mut emit = |kind: &str, task: usize, core: usize| {
            if let Some(l) = log.as_deref_mut() {
                l.push(LoggedEvent {
                    time: ev.time,
                    kind: kind.to_string(),
                    task,
                    core,
                });
            }
        };
        match ev.kind {
            EventKind::SegmentEnd { core, segment, task } => {
                if rejected_segments.contains(&segment) {
                    continue;
                }
                emit("end", task, core);
                if let Some((t, w)) = cores[core].stop(ev.time, model) {
                    debug_assert_eq!(t, task, "segment end for a different task");
                    if t < work_done.len() {
                        work_done[t] += w;
                    }
                }
            }
            EventKind::Deadline { task } => {
                emit("deadline", task, usize::MAX);
                let required = tasks.get(task).wcec;
                if work_done[task] < required * (1.0 - WORK_TOL) - WORK_TOL {
                    emit("miss", task, usize::MAX);
                    misses.push(task);
                }
            }
            EventKind::Release { task } => {
                emit("release", task, usize::MAX);
                released[task] = true;
            }
            EventKind::SegmentStart {
                core,
                task,
                segment,
                freq,
            } => {
                if task < released.len() && !released[task] {
                    // Running before release is a window violation the
                    // validator reports; the simulator executes it anyway
                    // (hardware would) — deadline accounting still works.
                }
                match cores[core].start(task, freq, ev.time) {
                    Ok(()) => emit("start", task, core),
                    Err(running) => {
                        emit("conflict", task, core);
                        conflicts.push(Conflict {
                            time: ev.time,
                            core,
                            running,
                            rejected: task,
                        });
                        rejected_segments.push(segment);
                    }
                }
            }
        }
        }
    }

    // Flush any cores still active (segments ending exactly at horizon end
    // have been processed; this guards malformed schedules).
    let end_time = schedule.makespan().max(horizon.end);
    for c in &mut cores {
        if let Some((t, w)) = c.stop(end_time, model) {
            if t < work_done.len() {
                work_done[t] += w;
            }
        }
    }

    misses.sort_unstable();
    misses.dedup();
    SimReport {
        energy: cores.iter().map(|c| c.energy).sum(),
        core_energy: cores.iter().map(|c| c.energy).collect(),
        core_busy: cores.iter().map(|c| c.busy).collect(),
        work_done,
        deadline_misses: misses,
        conflicts,
        activations: cores.iter().map(|c| c.activations).collect(),
        horizon: (horizon.start, horizon.end),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use esched_types::{PolynomialPower, Schedule, Segment, TaskSet};

    fn tasks3() -> TaskSet {
        TaskSet::from_triples(&[(0.0, 12.0, 4.0), (2.0, 10.0, 2.0), (4.0, 8.0, 4.0)])
    }

    #[test]
    fn clean_schedule_simulates_cleanly() {
        // τ2 exclusively on core 1 during [4,8] at f = 1; τ0, τ1 on core 0.
        let mut s = Schedule::new(2);
        s.push(Segment::new(0, 0, 0.0, 4.0, 0.5));
        s.push(Segment::new(0, 0, 8.0, 12.0, 0.5));
        s.push(Segment::new(1, 0, 4.0, 8.0, 0.5));
        s.push(Segment::new(2, 1, 4.0, 8.0, 1.0));
        let p = PolynomialPower::cubic();
        let r = simulate(&s, &tasks3(), &p);
        assert!(r.is_clean(), "{:?}", r);
        assert!((r.work_done[0] - 4.0).abs() < 1e-9);
        assert!((r.work_done[1] - 2.0).abs() < 1e-9);
        assert!((r.work_done[2] - 4.0).abs() < 1e-9);
        // Energy agrees with the analytic sum.
        assert!((r.energy - s.energy(&p)).abs() < 1e-9);
    }

    #[test]
    fn detects_underserved_deadline() {
        let mut s = Schedule::new(1);
        s.push(Segment::new(0, 0, 0.0, 2.0, 1.0)); // 2 of 4 work
        let ts = TaskSet::from_triples(&[(0.0, 12.0, 4.0)]);
        let r = simulate(&s, &ts, &PolynomialPower::cubic());
        assert_eq!(r.deadline_misses, vec![0]);
    }

    #[test]
    fn work_after_deadline_does_not_count() {
        let mut s = Schedule::new(1);
        s.push(Segment::new(0, 0, 0.0, 2.0, 1.0));
        s.push(Segment::new(0, 0, 12.0, 14.0, 1.0)); // too late
        let ts = TaskSet::from_triples(&[(0.0, 12.0, 4.0)]);
        let r = simulate(&s, &ts, &PolynomialPower::cubic());
        assert_eq!(r.deadline_misses, vec![0]);
        // Both segments still consumed energy.
        assert!((r.work_done[0] - 4.0).abs() < 1e-9);
    }

    #[test]
    fn conflicting_starts_are_rejected_and_reported() {
        let mut s = Schedule::new(1);
        s.push(Segment::new(0, 0, 0.0, 4.0, 1.0));
        s.push(Segment::new(1, 0, 2.0, 5.0, 1.0)); // overlaps on core 0
        let ts = TaskSet::from_triples(&[(0.0, 12.0, 4.0), (0.0, 12.0, 3.0)]);
        let r = simulate(&s, &ts, &PolynomialPower::cubic());
        assert_eq!(r.conflicts.len(), 1);
        assert_eq!(r.conflicts[0].running, 0);
        assert_eq!(r.conflicts[0].rejected, 1);
        // The victim keeps running its full segment.
        assert!((r.work_done[0] - 4.0).abs() < 1e-9);
    }

    #[test]
    fn back_to_back_handover_works() {
        let mut s = Schedule::new(1);
        s.push(Segment::new(0, 0, 0.0, 4.0, 1.0));
        s.push(Segment::new(1, 0, 4.0, 8.0, 0.5));
        let ts = TaskSet::from_triples(&[(0.0, 12.0, 4.0), (0.0, 12.0, 2.0)]);
        let r = simulate(&s, &ts, &PolynomialPower::cubic());
        assert!(r.is_clean(), "{:?}", r.conflicts);
        assert_eq!(r.activations[0], 2);
    }

    #[test]
    fn traced_run_logs_events_in_order() {
        let mut s = Schedule::new(1);
        s.push(Segment::new(0, 0, 0.0, 4.0, 1.0));
        let ts = TaskSet::from_triples(&[(0.0, 4.0, 4.0)]);
        let (report, log) = super::simulate_traced(&s, &ts, &PolynomialPower::cubic());
        assert!(report.is_clean());
        let kinds: Vec<&str> = log.iter().map(|e| e.kind.as_str()).collect();
        assert_eq!(kinds, vec!["release", "start", "end", "deadline"]);
        // Timestamps non-decreasing.
        for w in log.windows(2) {
            assert!(w[0].time <= w[1].time + 1e-9);
        }
        // CSV renders with a header and one row per event.
        let csv = super::log_to_csv(&log);
        assert_eq!(csv.lines().count(), 5);
        assert!(csv.starts_with("time,kind,task,core\n"));
        // Deadline rows leave the core column empty.
        assert!(csv.lines().last().unwrap().ends_with(','));
    }

    #[test]
    fn traced_run_logs_misses_and_conflicts() {
        let mut s = Schedule::new(1);
        s.push(Segment::new(0, 0, 0.0, 2.0, 1.0)); // half the work
        s.push(Segment::new(1, 0, 1.0, 3.0, 1.0)); // conflicts with task 0
        let ts = TaskSet::from_triples(&[(0.0, 4.0, 4.0), (0.0, 4.0, 2.0)]);
        let (_, log) = super::simulate_traced(&s, &ts, &PolynomialPower::cubic());
        assert!(log.iter().any(|e| e.kind == "miss"));
        assert!(log.iter().any(|e| e.kind == "conflict"));
    }

    #[test]
    fn utilization_and_core_accounting() {
        let mut s = Schedule::new(2);
        s.push(Segment::new(0, 0, 0.0, 6.0, 1.0));
        s.push(Segment::new(1, 1, 0.0, 3.0, 1.0));
        let ts = TaskSet::from_triples(&[(0.0, 6.0, 6.0), (0.0, 6.0, 3.0)]);
        let r = simulate(&s, &ts, &PolynomialPower::cubic());
        assert!((r.core_busy[0] - 6.0).abs() < 1e-9);
        assert!((r.core_busy[1] - 3.0).abs() < 1e-9);
        assert!((r.utilization() - 0.75).abs() < 1e-9);
    }
}
