//! # esched-sim
//!
//! A discrete-event multicore DVFS simulator.
//!
//! `esched-core` produces schedules analytically; this crate *executes*
//! them: segment boundaries become events, per-core state machines
//! integrate energy over time, work is credited as segments complete, and
//! deadline events audit whether each task got its requirement. Because
//! the simulator shares no code with the analytic energy computation, an
//! agreement between the two (asserted across the test suite) is a real
//! end-to-end check of both.
//!
//! * [`event`] — events and the time-ordered queue,
//! * [`machine`] — per-core sleep/active state machines,
//! * [`engine`] — the simulation loop ([`simulate`]),
//! * [`metrics`] — the [`SimReport`],
//! * [`online`] — an online global-EDF dispatcher driven by per-task
//!   frequency assignments (the paper's "easy to implement" claim),
//! * [`trace`] — ASCII Gantt rendering and per-task summaries.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod engine;
pub mod event;
pub mod machine;
pub mod metrics;
pub mod online;
pub mod svg;
pub mod trace;

pub use engine::{log_to_csv, simulate, simulate_traced, LoggedEvent};
pub use event::{Event, EventKind, EventQueue};
pub use machine::{Core, CoreState};
pub use metrics::{Conflict, SimReport};
pub use online::{dispatch, dispatch_edf, DispatchPolicy, OnlineOutcome};
pub use svg::{render_svg, save_svg, SvgOptions};
pub use trace::{ascii_gantt, chrome_schedule_trace, save_chrome_trace, task_summary};
