//! SVG Gantt-chart export.
//!
//! Renders a [`Schedule`] as a self-contained SVG document: one row per
//! core, one rectangle per segment, color-coded by task, with a time axis
//! and a legend. Useful for inspecting packing behaviour in a browser and
//! for figures in reports.

use esched_types::Schedule;
use std::fmt::Write as _;

/// Rendering options.
#[derive(Debug, Clone, Copy)]
pub struct SvgOptions {
    /// Total chart width in pixels (excluding margins).
    pub width: f64,
    /// Height of one core row in pixels.
    pub row_height: f64,
    /// Whether to print the task id inside each segment (skipped for
    /// segments too narrow to fit a label).
    pub labels: bool,
}

impl Default for SvgOptions {
    fn default() -> Self {
        Self {
            width: 900.0,
            row_height: 36.0,
            labels: true,
        }
    }
}

/// A categorical palette (12 distinguishable hues); tasks cycle through
/// it by id.
const PALETTE: [&str; 12] = [
    "#4e79a7", "#f28e2b", "#e15759", "#76b7b2", "#59a14f", "#edc948", "#b07aa1", "#ff9da7",
    "#9c755f", "#bab0ac", "#86bcb6", "#d37295",
];

fn color_of(task: usize) -> &'static str {
    PALETTE[task % PALETTE.len()]
}

/// Render `schedule` over the time range `[t0, t1]` as an SVG string.
///
/// # Panics
/// If `t1 ≤ t0`.
pub fn render_svg(schedule: &Schedule, t0: f64, t1: f64, opts: &SvgOptions) -> String {
    assert!(t1 > t0, "empty time range [{t0}, {t1}]");
    let margin_left = 46.0;
    let margin_top = 18.0;
    let axis_height = 26.0;
    let span = t1 - t0;
    let scale = opts.width / span;
    let chart_h = opts.row_height * schedule.cores as f64;
    let total_w = margin_left + opts.width + 12.0;
    let total_h = margin_top + chart_h + axis_height + 24.0;

    let mut s = String::with_capacity(4096);
    let _ = write!(
        s,
        r#"<svg xmlns="http://www.w3.org/2000/svg" width="{total_w:.0}" height="{total_h:.0}" viewBox="0 0 {total_w:.0} {total_h:.0}" font-family="sans-serif" font-size="11">"#
    );
    let _ = write!(
        s,
        r#"<rect x="0" y="0" width="{total_w:.0}" height="{total_h:.0}" fill="white"/>"#
    );

    // Core rows and labels.
    for core in 0..schedule.cores {
        let y = margin_top + core as f64 * opts.row_height;
        let fill = if core % 2 == 0 { "#f7f7f7" } else { "#efefef" };
        let _ = write!(
            s,
            r#"<rect x="{margin_left}" y="{y:.1}" width="{:.1}" height="{:.1}" fill="{fill}"/>"#,
            opts.width, opts.row_height
        );
        let _ = write!(
            s,
            r#"<text x="6" y="{:.1}" dominant-baseline="middle">M{core}</text>"#,
            y + opts.row_height / 2.0
        );
    }

    // Segments.
    for seg in schedule.segments() {
        let clipped_start = seg.interval.start.max(t0);
        let clipped_end = seg.interval.end.min(t1);
        if clipped_end <= clipped_start {
            continue;
        }
        let x = margin_left + (clipped_start - t0) * scale;
        let w = (clipped_end - clipped_start) * scale;
        let y = margin_top + seg.core as f64 * opts.row_height + 3.0;
        let h = opts.row_height - 6.0;
        let color = color_of(seg.task);
        let _ = write!(
            s,
            r##"<rect x="{x:.1}" y="{y:.1}" width="{w:.1}" height="{h:.1}" fill="{color}" stroke="#333" stroke-width="0.5"><title>task {} on M{} [{:.3}, {:.3}] @ f={:.3}</title></rect>"##,
            seg.task, seg.core, seg.interval.start, seg.interval.end, seg.freq
        );
        if opts.labels && w >= 16.0 {
            let _ = write!(
                s,
                r#"<text x="{:.1}" y="{:.1}" text-anchor="middle" dominant-baseline="middle" fill="white">{}</text>"#,
                x + w / 2.0,
                y + h / 2.0,
                seg.task
            );
        }
    }

    // Time axis: ~8 ticks at round-ish positions.
    let axis_y = margin_top + chart_h + 4.0;
    let _ = write!(
        s,
        r##"<line x1="{margin_left}" y1="{axis_y:.1}" x2="{:.1}" y2="{axis_y:.1}" stroke="#333"/>"##,
        margin_left + opts.width
    );
    let ticks = 8;
    for k in 0..=ticks {
        let t = t0 + span * k as f64 / ticks as f64;
        let x = margin_left + (t - t0) * scale;
        let _ = write!(
            s,
            r##"<line x1="{x:.1}" y1="{axis_y:.1}" x2="{x:.1}" y2="{:.1}" stroke="#333"/>"##,
            axis_y + 4.0
        );
        let _ = write!(
            s,
            r#"<text x="{x:.1}" y="{:.1}" text-anchor="middle">{t:.1}</text>"#,
            axis_y + 16.0
        );
    }

    s.push_str("</svg>");
    s
}

/// Write the SVG for `schedule` to `path`.
///
/// # Errors
/// Propagates filesystem errors.
pub fn save_svg(
    schedule: &Schedule,
    t0: f64,
    t1: f64,
    opts: &SvgOptions,
    path: &std::path::Path,
) -> std::io::Result<()> {
    std::fs::write(path, render_svg(schedule, t0, t1, opts))
}

#[cfg(test)]
mod tests {
    use super::*;
    use esched_types::{Schedule, Segment};

    fn fixture() -> Schedule {
        let mut s = Schedule::new(2);
        s.push(Segment::new(0, 0, 0.0, 4.0, 1.0));
        s.push(Segment::new(1, 1, 2.0, 6.0, 0.5));
        s.push(Segment::new(2, 0, 5.0, 8.0, 0.8));
        s
    }

    #[test]
    fn svg_is_well_formed_ish() {
        let svg = render_svg(&fixture(), 0.0, 8.0, &SvgOptions::default());
        assert!(svg.starts_with("<svg"));
        assert!(svg.ends_with("</svg>"));
        // One rect per segment plus rows plus background.
        let rects = svg.matches("<rect").count();
        assert_eq!(rects, 1 + 2 + 3);
        // Tooltips carry the frequencies.
        assert!(svg.contains("f=0.500"));
        assert!(svg.contains("M0"));
        assert!(svg.contains("M1"));
    }

    #[test]
    fn segments_outside_range_are_clipped_away() {
        let svg = render_svg(&fixture(), 6.5, 8.0, &SvgOptions::default());
        // Only task 2's tail remains.
        assert!(svg.contains("task 2"));
        assert!(!svg.contains("task 0"));
    }

    #[test]
    fn labels_can_be_disabled() {
        let opts = SvgOptions {
            labels: false,
            ..SvgOptions::default()
        };
        let svg = render_svg(&fixture(), 0.0, 8.0, &opts);
        assert!(!svg.contains(r#"fill="white">0</text>"#));
    }

    #[test]
    fn colors_cycle_deterministically() {
        assert_eq!(color_of(0), color_of(12));
        assert_ne!(color_of(0), color_of(1));
    }

    #[test]
    #[should_panic(expected = "empty time range")]
    fn rejects_empty_range() {
        let _ = render_svg(&fixture(), 3.0, 3.0, &SvgOptions::default());
    }

    #[test]
    fn save_svg_writes_file() {
        let dir = std::env::temp_dir().join("esched-svg-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("gantt.svg");
        save_svg(&fixture(), 0.0, 8.0, &SvgOptions::default(), &path).unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        assert!(content.contains("<svg"));
        std::fs::remove_file(&path).ok();
    }
}
