//! Event types and the time-ordered event queue.
//!
//! The simulator is event-driven: every segment boundary, task release,
//! and task deadline becomes an [`Event`], processed in global time order
//! with a deterministic tie-break (ends before starts at the same instant,
//! so back-to-back segments hand over cleanly).

use esched_types::TaskId;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// What happens at an event.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum EventKind {
    /// A segment stops executing on a core (processed first at an instant).
    SegmentEnd {
        /// Core the segment ran on.
        core: usize,
        /// The task.
        task: TaskId,
        /// Index of the segment in the schedule's segment list.
        segment: usize,
    },
    /// A task's deadline passes (work check happens here).
    Deadline {
        /// The task.
        task: TaskId,
    },
    /// A task becomes available.
    Release {
        /// The task.
        task: TaskId,
    },
    /// A segment starts executing on a core (processed last at an instant).
    SegmentStart {
        /// Core the segment runs on.
        core: usize,
        /// The task.
        task: TaskId,
        /// Index of the segment in the schedule's segment list.
        segment: usize,
        /// Execution frequency.
        freq: f64,
    },
}

impl EventKind {
    /// Processing priority at equal timestamps (lower first).
    pub(crate) fn rank(&self) -> u8 {
        match self {
            EventKind::SegmentEnd { .. } => 0,
            EventKind::Deadline { .. } => 1,
            EventKind::Release { .. } => 2,
            EventKind::SegmentStart { .. } => 3,
        }
    }
}

/// A timestamped event.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Event {
    /// When the event fires.
    pub time: f64,
    /// What it is.
    pub kind: EventKind,
}

impl Eq for Event {}

impl Ord for Event {
    fn cmp(&self, other: &Self) -> Ordering {
        // Min-heap via reversed comparison happens in the queue; here we
        // define the natural ascending order: time, then kind rank.
        self.time
            .partial_cmp(&other.time)
            .expect("finite event times")
            .then(self.kind.rank().cmp(&other.kind.rank()))
    }
}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// A min-queue of events.
#[derive(Debug, Default)]
pub struct EventQueue {
    heap: BinaryHeap<std::cmp::Reverse<Event>>,
}

impl EventQueue {
    /// Empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Insert an event.
    pub fn push(&mut self, e: Event) {
        assert!(e.time.is_finite(), "event time must be finite");
        self.heap.push(std::cmp::Reverse(e));
    }

    /// Remove and return the earliest event.
    pub fn pop(&mut self) -> Option<Event> {
        self.heap.pop().map(|r| r.0)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Is the queue empty?
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_pop_in_time_order() {
        let mut q = EventQueue::new();
        q.push(Event {
            time: 2.0,
            kind: EventKind::Release { task: 0 },
        });
        q.push(Event {
            time: 1.0,
            kind: EventKind::Release { task: 1 },
        });
        q.push(Event {
            time: 3.0,
            kind: EventKind::Release { task: 2 },
        });
        let order: Vec<f64> = std::iter::from_fn(|| q.pop()).map(|e| e.time).collect();
        assert_eq!(order, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn ties_process_ends_before_starts() {
        let mut q = EventQueue::new();
        q.push(Event {
            time: 5.0,
            kind: EventKind::SegmentStart {
                core: 0,
                task: 1,
                segment: 1,
                freq: 1.0,
            },
        });
        q.push(Event {
            time: 5.0,
            kind: EventKind::SegmentEnd {
                core: 0,
                task: 0,
                segment: 0,
            },
        });
        let first = q.pop().unwrap();
        assert!(matches!(first.kind, EventKind::SegmentEnd { .. }));
        let second = q.pop().unwrap();
        assert!(matches!(second.kind, EventKind::SegmentStart { .. }));
    }

    #[test]
    fn deadline_checked_before_new_releases_and_starts() {
        let mut q = EventQueue::new();
        q.push(Event {
            time: 5.0,
            kind: EventKind::Release { task: 2 },
        });
        q.push(Event {
            time: 5.0,
            kind: EventKind::Deadline { task: 1 },
        });
        assert!(matches!(q.pop().unwrap().kind, EventKind::Deadline { .. }));
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn rejects_nan_times() {
        let mut q = EventQueue::new();
        q.push(Event {
            time: f64::NAN,
            kind: EventKind::Release { task: 0 },
        });
    }
}
