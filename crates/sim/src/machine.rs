//! Per-core state machines with energy integration.
//!
//! A core is either asleep (zero power — the paper's platform model puts a
//! core to sleep the moment it has nothing to execute) or actively running
//! one task at one frequency. Energy integrates on every state transition.

use esched_types::{PowerModel, TaskId};

/// Activity state of one core.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CoreState {
    /// Sleeping: zero power.
    Sleep,
    /// Executing `task` at `freq` since `since`.
    Active {
        /// Running task.
        task: TaskId,
        /// Frequency.
        freq: f64,
        /// When this activity began.
        since: f64,
    },
}

/// One simulated core.
#[derive(Debug, Clone, PartialEq)]
pub struct Core {
    /// Current state.
    pub state: CoreState,
    /// Energy consumed so far.
    pub energy: f64,
    /// Accumulated busy time.
    pub busy: f64,
    /// Number of activations (sleep → active transitions).
    pub activations: usize,
}

impl Default for Core {
    fn default() -> Self {
        Self {
            state: CoreState::Sleep,
            energy: 0.0,
            busy: 0.0,
            activations: 0,
        }
    }
}

impl Core {
    /// Begin executing `task` at `freq` at time `now`.
    ///
    /// Returns `Err(current_task)` when the core is already busy — the
    /// engine reports this as a schedule conflict.
    pub fn start(&mut self, task: TaskId, freq: f64, now: f64) -> Result<(), TaskId> {
        match self.state {
            CoreState::Sleep => {
                self.state = CoreState::Active {
                    task,
                    freq,
                    since: now,
                };
                self.activations += 1;
                Ok(())
            }
            CoreState::Active { task: cur, .. } => Err(cur),
        }
    }

    /// Stop executing at time `now`, integrating energy under `model`.
    ///
    /// Returns the `(task, work_done)` pair, or `None` if the core was
    /// already asleep (an end event for a conflicting start the engine
    /// rejected).
    pub fn stop<P: PowerModel>(&mut self, now: f64, model: &P) -> Option<(TaskId, f64)> {
        match self.state {
            CoreState::Sleep => None,
            CoreState::Active { task, freq, since } => {
                let dt = (now - since).max(0.0);
                self.energy += model.energy_for_duration(freq, dt);
                self.busy += dt;
                self.state = CoreState::Sleep;
                Some((task, freq * dt))
            }
        }
    }

    /// Is the core currently running `task`?
    pub fn is_running(&self, task: TaskId) -> bool {
        matches!(self.state, CoreState::Active { task: t, .. } if t == task)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use esched_types::PolynomialPower;

    #[test]
    fn start_stop_accumulates_energy_and_work() {
        let p = PolynomialPower::paper(3.0, 0.01);
        let mut c = Core::default();
        c.start(0, 0.5, 1.0).unwrap();
        assert!(c.is_running(0));
        let (task, work) = c.stop(3.0, &p).unwrap();
        assert_eq!(task, 0);
        assert!((work - 1.0).abs() < 1e-12);
        assert!((c.energy - (0.125 + 0.01) * 2.0).abs() < 1e-12);
        assert!((c.busy - 2.0).abs() < 1e-12);
        assert_eq!(c.activations, 1);
    }

    #[test]
    fn double_start_is_a_conflict() {
        let mut c = Core::default();
        c.start(0, 1.0, 0.0).unwrap();
        assert_eq!(c.start(1, 1.0, 0.5), Err(0));
    }

    #[test]
    fn stop_when_asleep_returns_none() {
        let p = PolynomialPower::cubic();
        let mut c = Core::default();
        assert!(c.stop(1.0, &p).is_none());
    }

    #[test]
    fn sleep_draws_no_energy() {
        // Energy only integrates over active periods; gaps contribute 0.
        let p = PolynomialPower::paper(2.0, 5.0); // huge static power
        let mut c = Core::default();
        c.start(0, 1.0, 0.0).unwrap();
        c.stop(1.0, &p).unwrap();
        // 10 time units of sleep…
        c.start(0, 1.0, 11.0).unwrap();
        c.stop(12.0, &p).unwrap();
        assert!((c.energy - 2.0 * (1.0 + 5.0)).abs() < 1e-12);
        assert_eq!(c.activations, 2);
    }
}
