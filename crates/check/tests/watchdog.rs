//! Watchdog oracle: the health layer's one correctness contract is
//! *no false alarms, no missed alarms*. Injected stalls and injected
//! quality regressions must each fire exactly their own `HealthEvent`;
//! clean streams — however long — must never alert.
//!
//! Every test drives the monitor through the deterministic `_at(t_ns)`
//! clock (no sleeps, no wall-clock flakiness); fault injection uses the
//! auditor's energy-inflation knob, which perturbs only the *reported*
//! energy — the plan itself stays byte-identical throughout, which the
//! final oracle re-checks.

use esched_engine::online::{OnlineEngine, OnlineEvent};
use esched_engine::{AuditConfig, Engine};
use esched_obs::health::{now_ns, HealthEventKind, HealthMonitor, HealthState, SloPolicy};
use esched_types::{PolynomialPower, Task, TaskSet};
use std::time::Duration;

const S: u64 = 1_000_000_000;

fn seed_set() -> TaskSet {
    TaskSet::from_triples(&[
        (0.0, 10.0, 8.0),
        (2.0, 18.0, 14.0),
        (4.0, 16.0, 8.0),
        (6.0, 14.0, 4.0),
    ])
}

fn strict_policy() -> SloPolicy {
    SloPolicy::new(Duration::from_secs(8))
        .with_replan_p99(Duration::from_millis(2))
        .with_regret_ceiling(0.25)
        .with_fallback_rate_ceiling(0.5)
        .with_heartbeat_timeout(Duration::from_secs(4))
        .with_recover_after(2)
}

/// A long, clean, well-behaved stream: thousands of replans under
/// budget, heartbeats on time, healthy regret — evaluated every window.
/// Zero events of any kind may fire.
#[test]
fn healthy_streams_never_alert() {
    let mon = HealthMonitor::new(strict_policy());
    let mut t = S;
    for step in 0..4_000u64 {
        // 150 µs replans, 2 of 40 columns repaired, no fallback.
        mon.observe_replan_at(t, 150_000, 2, 40, false);
        if step % 100 == 0 {
            mon.observe_audit(0.03, false);
        }
        if step % 10 == 0 {
            let fired = mon.evaluate_at(t + 1);
            assert!(fired.is_empty(), "false alarm at step {step}: {fired:?}");
        }
        t += S / 10; // 10 events per second
    }
    assert_eq!(mon.state(), HealthState::Healthy);
    let report = mon.report_at(t);
    assert_eq!(report.breaches, 0, "clean stream raised breaches");
    assert_eq!(report.recoveries, 0);
    assert!(report.events.is_empty());
}

/// An injected stall — heartbeats stop for longer than the timeout —
/// fires exactly one `HeartbeatStale`, latched until traffic resumes;
/// sustained clean windows then fire exactly one `Recovered`.
#[test]
fn injected_stall_is_detected_once_and_recovers() {
    let mon = HealthMonitor::new(strict_policy());
    let mut t = S;
    for _ in 0..200 {
        mon.observe_replan_at(t, 150_000, 2, 40, false);
        t += S / 10;
    }
    assert!(mon.evaluate_at(t).is_empty(), "clean prefix alerted");

    // Stall: 6 s of silence against a 4 s heartbeat budget.
    let stalled = t + 6 * S;
    let fired = mon.evaluate_at(stalled);
    assert_eq!(fired.len(), 1, "stall must fire exactly once: {fired:?}");
    assert_eq!(fired[0].kind, HealthEventKind::HeartbeatStale);
    assert_eq!(fired[0].state_after, HealthState::Degraded);
    // Still stalled: latched, no repeat alarm.
    assert!(mon.evaluate_at(stalled + S).is_empty());

    // Traffic resumes; recover_after = 2 clean windows flips back.
    let mut t = stalled + 2 * S;
    mon.observe_replan_at(t, 150_000, 2, 40, false);
    assert!(
        mon.evaluate_at(t).is_empty(),
        "first clean window is silent"
    );
    t += S;
    mon.observe_replan_at(t, 150_000, 2, 40, false);
    let fired = mon.evaluate_at(t);
    assert_eq!(fired.len(), 1);
    assert_eq!(fired[0].kind, HealthEventKind::Recovered);
    assert_eq!(mon.state(), HealthState::Healthy);
}

/// An injected quality regression — the audited energy drifting above
/// the regret ceiling — fires exactly one `EnergyRegret`.
#[test]
fn injected_regret_regression_is_detected() {
    let mon = HealthMonitor::new(strict_policy());
    let mut t = S;
    for _ in 0..100 {
        mon.observe_replan_at(t, 150_000, 2, 40, false);
        t += S / 10;
    }
    mon.observe_audit(0.05, false);
    assert!(mon.evaluate_at(t).is_empty(), "healthy regret alerted");

    mon.observe_audit(0.40, false); // above the 0.25 ceiling
    mon.observe_replan_at(t + 1, 150_000, 2, 40, false);
    let fired = mon.evaluate_at(t + 2);
    assert_eq!(
        fired.len(),
        1,
        "regression must fire exactly once: {fired:?}"
    );
    assert_eq!(fired[0].kind, HealthEventKind::EnergyRegret);
    assert!((fired[0].measured - 0.40).abs() < 1e-12);
    assert!((fired[0].budget - 0.25).abs() < 1e-12);
}

/// Latency and fallback breaches through the windowed sketches: a burst
/// of slow, falling-back replans trips both checks; each latches once.
#[test]
fn latency_and_fallback_breaches_latch_once() {
    let mon = HealthMonitor::new(strict_policy());
    let mut t = S;
    for _ in 0..100 {
        // 8 ms replans (budget 2 ms), every one a full-recompute fallback.
        mon.observe_replan_at(t, 8_000_000, 40, 40, true);
        t += S / 100;
    }
    let fired = mon.evaluate_at(t);
    let kinds: Vec<HealthEventKind> = fired.iter().map(|e| e.kind).collect();
    assert!(
        kinds.contains(&HealthEventKind::ReplanLatency),
        "slow burst missed: {kinds:?}"
    );
    assert!(
        kinds.contains(&HealthEventKind::FallbackRate),
        "fallback storm missed: {kinds:?}"
    );
    assert_eq!(fired.len(), 2, "only those two: {fired:?}");
    assert!(mon.evaluate_at(t + 1).is_empty(), "breaches must latch");
}

/// End-to-end through the engine: a live stream with an injected stall
/// and an injected audit regression produces exactly those two events —
/// in order — with a clean prefix and zero false alarms, and the plan
/// stays byte-identical to the offline pipeline throughout.
#[test]
fn engine_stream_detects_stall_and_regression_exactly() {
    let policy = SloPolicy::new(Duration::from_secs(8))
        .with_replan_p99(Duration::from_secs(2)) // generous: debug builds
        .with_regret_ceiling(0.25)
        .with_fallback_rate_ceiling(1.0)
        .with_heartbeat_timeout(Duration::from_secs(4));
    let mut engine = OnlineEngine::new(seed_set(), 2, PolynomialPower::cubic())
        .with_health(policy)
        .with_audit(AuditConfig::default().with_every(0).with_synchronous(true));

    // Clean prefix: a burst of arrivals plus periodic healthy audits.
    for k in 0..24u64 {
        let r = 0.5 * k as f64;
        engine
            .apply(&OnlineEvent::Arrive(Task::of(r, r + 6.0, 1.0)))
            .expect("arrival rejected");
        if k % 8 == 0 {
            engine.force_audit().expect("audit configured");
        }
    }
    let monitor = std::sync::Arc::clone(engine.health().expect("health on"));
    assert!(
        monitor.evaluate_at(now_ns()).is_empty(),
        "clean prefix alerted"
    );
    assert_eq!(monitor.state(), HealthState::Healthy);

    // Injected stall: no traffic for 6 virtual seconds.
    let fired = monitor.evaluate_at(now_ns() + 6 * S);
    assert_eq!(fired.len(), 1, "stall: {fired:?}");
    assert_eq!(fired[0].kind, HealthEventKind::HeartbeatStale);

    // Injected quality regression: inflate the audited live energy 40%.
    engine.set_audit_energy_inflation(0.40);
    let regret = engine.force_audit().expect("audit ran");
    assert!(regret > 0.25, "inflation did not move regret: {regret}");
    let fired = monitor.evaluate_at(now_ns() + 6 * S + 1);
    assert_eq!(fired.len(), 1, "regression: {fired:?}");
    assert_eq!(fired[0].kind, HealthEventKind::EnergyRegret);

    // Exactly those two events, in order, and the injection never touched
    // the plan: byte-identity with the offline pipeline still holds.
    let kinds: Vec<HealthEventKind> = monitor.events().iter().map(|e| e.kind).collect();
    assert_eq!(
        kinds,
        vec![
            HealthEventKind::HeartbeatStale,
            HealthEventKind::EnergyRegret
        ]
    );
    engine.set_audit_energy_inflation(0.0);
    let request = engine.as_request();
    let got = engine.outcome();
    let want = Engine::with_threads(2).run(&request).expect("offline run");
    assert_eq!(got, want, "fault injection perturbed the plan");

    // The health report is a machine-readable artifact of the episode.
    let report = monitor.report();
    assert_eq!(report.state, HealthState::Degraded);
    assert_eq!(report.breaches, 2);
    assert_eq!(report.divergences, 0);
    let json = report.to_json().to_string();
    assert!(
        json.contains("\"kind\": \"health_report\"") || json.contains("\"kind\":\"health_report\"")
    );
}
