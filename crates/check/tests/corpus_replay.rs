//! Replays the committed shrink corpus as a permanent regression suite.
//!
//! Every file in `crates/check/corpus/` is a minimal instance the fuzz
//! loop once found violating an oracle, shrunk by [`esched_check::shrink`]
//! and committed after the underlying bug was fixed. The replay test runs
//! the full oracle battery over all of them; the named tests below promote
//! one instance per oracle class with a description of the boundary bug it
//! flushed out, so a reintroduction fails with a readable test name rather
//! than a corpus hash.

use std::path::Path;

use esched_check::{
    check_instance, check_online, load_corpus_dir, load_online_corpus_dir, Instance, OnlineScript,
};
use esched_engine::OnlineEvent;
use esched_types::{PolynomialPower, TaskSet};

fn assert_clean(inst: &Instance, context: &str) {
    let violations = check_instance(inst);
    assert!(
        violations.is_empty(),
        "{context}: {} oracle violation(s): {}",
        violations.len(),
        violations
            .iter()
            .map(|v| v.to_string())
            .collect::<Vec<_>>()
            .join("; ")
    );
}

/// Every committed corpus instance must pass the full oracle battery.
#[test]
fn corpus_replays_clean() {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("corpus");
    let corpus = load_corpus_dir(&dir).expect("corpus directory is readable");
    assert!(
        !corpus.is_empty(),
        "committed corpus at {} is missing or empty",
        dir.display()
    );
    for (path, inst) in &corpus {
        assert_clean(inst, &path.display().to_string());
    }
}

fn assert_online_clean(script: &OnlineScript, context: &str) {
    let violations = check_online(script);
    assert!(
        violations.is_empty(),
        "{context}: {} oracle violation(s): {}",
        violations.len(),
        violations
            .iter()
            .map(|v| v.to_string())
            .collect::<Vec<_>>()
            .join("; ")
    );
}

/// Every committed online script must replay clean: the incremental
/// replan path must stay byte-identical to the offline pipeline.
#[test]
fn online_corpus_replays_clean() {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("corpus")
        .join("online");
    let corpus = load_online_corpus_dir(&dir).expect("online corpus directory is readable");
    assert!(
        !corpus.is_empty(),
        "committed online corpus at {} is missing or empty",
        dir.display()
    );
    for (path, script) in &corpus {
        assert_online_clean(script, &path.display().to_string());
    }
}

/// Class `online`: shifting a deadline to within the dedup tolerance of
/// an existing boundary (100 − 5e-6 vs 100). Before the boundary-bug
/// sweep, `Timeline::rebuild_shifted` snapped the approx-but-not-bitwise
/// endpoint onto the existing boundary, while `Timeline::build` merges
/// the pair keeping the *first* representative — so the patched timeline
/// and the from-scratch timeline disagreed on the boundary value and the
/// online outcome was no longer byte-identical to the offline one. Fixed
/// by restricting the in-place patch to bitwise-equal endpoints and
/// falling back to a full rebuild otherwise.
#[test]
fn online_shift_within_tolerance_of_existing_boundary() {
    let script = OnlineScript {
        instance: Instance::new(
            TaskSet::from_triples(&[(0.0, 100.0, 40.0), (20.0, 60.0, 10.0)]),
            2,
            PolynomialPower::paper(3.0, 0.1),
        ),
        events: vec![OnlineEvent::Shift {
            task: 1,
            release: 20.0,
            deadline: 100.0 - 5e-6,
        }],
    };
    assert_online_clean(&script, "within-tolerance shifted deadline");
}

/// Class `panic`: two tasks whose subnormal-scale requirements round the
/// DER total to ~0, so proportional shares allocated nothing and
/// `final_assignment` hit its "no available execution time" assert.
/// Fixed by the even-split fallback in `allocate_der` when the remaining
/// DER mass is below EPS, plus clamping `A_i` before the frequency solve.
#[test]
fn panic_der_allocation_with_subnormal_requirements() {
    let inst = Instance::new(
        TaskSet::from_triples(&[
            (0.0, 1.0, 0.00000000000021827872842550277),
            (0.0, 1.0, 0.0000000000023283064365386963),
        ]),
        1,
        PolynomialPower::paper(3.0, 0.0),
    );
    assert_clean(&inst, "subnormal-requirement der allocation");
}

/// Class `energy-ordering`: a 2e-7 "sliver" subinterval where three tasks
/// overlap. The squeezed sliver pieces are shorter than EPS but carry
/// work above the validator's tolerance; `Schedule::push`'s duration-only
/// dust gate silently dropped them, deflating E^I below E^F. Fixed by
/// making the push gate work-aware.
#[test]
fn energy_ordering_sub_eps_sliver_work_is_kept() {
    let inst = Instance::new(
        TaskSet::from_triples(&[
            (
                0.6666666666666666,
                0.7784875383337153,
                0.0000000095367431640625,
            ),
            (0.6666666666666666, 0.7784875383337153, 0.10530067647375646),
            (0.48644417091579906, 0.6666668666666666, 0.18),
        ]),
        1,
        PolynomialPower::paper(3.0, 0.0),
    );
    assert_clean(&inst, "sub-EPS sliver subinterval");
}

/// Class `validator-sim`: a release offset of 2e-7 creates a sliver
/// subinterval in which McNaughton wraps a task across cores.
/// `Schedule::coalesce`'s EPS-loose adjacency gate bridged the real gap
/// left for the wrapped sliver, double-booking the core: the validator
/// tolerated the overlap but the simulator rejected the start as a
/// conflict. Fixed by near-exact (ulp-scale) adjacency in coalesce.
#[test]
fn validator_sim_wrap_sliver_is_not_double_booked() {
    let inst = Instance::new(
        TaskSet::from_triples(&[
            (0.0, 28.0, 20.0),
            (0.0000002, 28.055111469860172, 0.000029296875),
            (0.0, 28.0, 14.0),
            (0.0, 28.0, 38.0),
        ]),
        2,
        PolynomialPower::paper(3.0, 0.0),
    );
    assert_clean(&inst, "wrap-around sliver double-booking");
}

/// Class `work-conservation`: near-duplicate deadlines 6.666666 /
/// 6.666667 produce a 1e-6 subinterval; the der path's packed pieces
/// there were dropped or double-counted depending on which side of the
/// duration-only dust gate they fell, so delivered work drifted from
/// `C_i` by more than WORK_TOL. Fixed by the shared work-aware
/// `negligible` predicate across packing, refine, and extraction.
#[test]
fn work_conservation_near_duplicate_deadlines() {
    let inst = Instance::new(
        TaskSet::from_triples(&[
            (0.0, 7.0, 1.5),
            (6.6, 6.7, 0.00125),
            (6.6, 6.7, 0.08),
            (6.619258, 6.666666, 0.00125),
            (6.619258, 6.666667, 0.023704091622860357),
        ]),
        1,
        PolynomialPower::paper(3.0, 0.0),
    );
    assert_clean(&inst, "near-duplicate deadline subinterval");
}

/// Class `allocation`: every DER in the heavy subinterval `[0, 1]`
/// underflows EPS (three tasks with nano-scale requirements on one core),
/// so proportional shares are undefined and both the water-filling fast
/// path and the round-based reference must take the even-split fallback —
/// and take it over the *same* task set, or their allocations diverge by
/// a full `Δ_j/n_j` share. Guards the bit-identical tail-membership
/// contract between `waterfill_fast` and `waterfill_reference`.
#[test]
fn allocation_all_ders_underflow_even_split() {
    let inst = Instance::new(
        TaskSet::from_triples(&[(0.0, 1.0, 1e-9), (0.0, 1.0, 2e-9), (0.0, 1.0, 1e-9)]),
        1,
        PolynomialPower::paper(3.0, 0.0),
    );
    assert_clean(&inst, "all-DERs-underflow even-split fallback");
}

/// Class `discrete`: abutting windows split at 6.133042/6.133043.
/// `quantize_schedule` reported the instance feasible, but
/// `requantize_schedule` stretched a segment past its slot because the
/// tolerance-unified `pick_level` may select a level a hair *below* the
/// continuous frequency. Fixed by clamping the requantized duration to
/// the original slot length.
#[test]
fn discrete_requantize_stays_inside_slot() {
    let inst = Instance::new(
        TaskSet::from_triples(&[
            (6.133042, 8.571429, 1.0),
            (4.285714, 6.133043, 1.8473290000000002),
        ]),
        1,
        PolynomialPower::paper(3.0, 0.0),
    );
    assert_clean(&inst, "requantized segment slot clamp");
}
