//! Auto-shrinking of failing instances.
//!
//! A raw counterexample from the generator typically has jittered,
//! 17-significant-digit boundary times and more tasks than the bug needs.
//! The shrinker greedily minimizes it while preserving the *failing oracle
//! class* (not the exact message — shrinking legitimately changes details
//! like which task index trips the check), using five passes to a
//! fixpoint:
//!
//! 1. drop tasks (largest index first),
//! 2. reduce the core count,
//! 3. simplify the power model (zero static power, integer alpha),
//! 4. round release/deadline times to fewer decimal digits,
//! 5. shrink work requirements (halve, round, clamp to the window).
//!
//! Every candidate is re-validated through [`Task::new`]/[`TaskSet::new`],
//! so the shrunk instance is always a *legal* input — the corpus never
//! accumulates repros that only fail because they are malformed.

use crate::instance::Instance;
use crate::oracles::{check_instance, OracleClass};
use esched_types::{PolynomialPower, Task, TaskSet};

/// Result of a shrink run.
#[derive(Debug, Clone)]
pub struct Shrunk {
    /// The minimized instance (still failing with the target class).
    pub instance: Instance,
    /// Oracle evaluations spent.
    pub evals: usize,
}

/// Minimize `inst` while `check_instance` keeps reporting at least one
/// violation whose class is in `target`. `max_evals` bounds the number of
/// oracle evaluations (each one runs the full pipeline).
pub fn shrink(inst: &Instance, target: &[OracleClass], max_evals: usize) -> Shrunk {
    let mut evals = 0;
    let instance = shrink_by(
        inst,
        |cand| {
            check_instance(cand)
                .iter()
                .any(|v| target.contains(&v.class))
        },
        max_evals,
        &mut evals,
    );
    Shrunk { instance, evals }
}

/// Generic greedy fixpoint minimizer over an arbitrary failure predicate.
/// Exposed for testing the shrink moves without needing a real pipeline
/// bug on hand.
pub fn shrink_by(
    inst: &Instance,
    mut fails: impl FnMut(&Instance) -> bool,
    max_evals: usize,
    evals: &mut usize,
) -> Instance {
    let mut best = inst.clone();
    let mut accept = |cand: &Instance, evals: &mut usize| -> bool {
        if *evals >= max_evals {
            return false;
        }
        *evals += 1;
        fails(cand)
    };

    loop {
        let mut progressed = false;

        // Pass 1: drop tasks, largest index first so indices stay stable.
        let mut i = best.tasks.len();
        while i > 0 && best.tasks.len() > 1 {
            i -= 1;
            let mut reduced: Vec<Task> = best.tasks.tasks().to_vec();
            reduced.remove(i);
            if let Ok(ts) = TaskSet::new(reduced) {
                let cand = Instance::new(ts, best.cores, best.power);
                if accept(&cand, evals) {
                    best = cand;
                    progressed = true;
                }
            }
        }

        // Pass 2: reduce cores.
        for m in [1, best.cores / 2, best.cores.saturating_sub(1)] {
            if m >= 1 && m < best.cores {
                let cand = Instance::new(best.tasks.clone(), m, best.power);
                if accept(&cand, evals) {
                    best = cand;
                    progressed = true;
                }
            }
        }

        // Pass 3: simplify the power model.
        for p in [
            PolynomialPower::paper(best.power.alpha, 0.0),
            PolynomialPower::paper(3.0, best.power.p0),
            PolynomialPower::cubic(),
        ] {
            if p != best.power {
                let cand = Instance::new(best.tasks.clone(), best.cores, p);
                if accept(&cand, evals) {
                    best = cand;
                    progressed = true;
                }
            }
        }

        // Pass 4: round times to fewer decimal digits (coarsest first).
        for idx in 0..best.tasks.len() {
            for digits in [0_i32, 1, 3, 6] {
                let t = best.tasks.tasks()[idx];
                let r = round_to(t.release, digits);
                let d = round_to(t.deadline, digits);
                if (r, d) == (t.release, t.deadline) {
                    continue;
                }
                if let Some(cand) = replace_task(&best, idx, Task::new(r, d, t.wcec)) {
                    if accept(&cand, evals) {
                        best = cand;
                        progressed = true;
                        break;
                    }
                }
            }
        }

        // Pass 5: shrink work requirements.
        for idx in 0..best.tasks.len() {
            let t = best.tasks.tasks()[idx];
            for w in [
                round_to(t.wcec, 0),
                round_to(t.wcec, 2),
                t.wcec / 2.0,
                t.window_len(),
            ] {
                if w <= 0.0 || w >= t.wcec {
                    continue;
                }
                if let Some(cand) = replace_task(&best, idx, Task::new(t.release, t.deadline, w)) {
                    if accept(&cand, evals) {
                        best = cand;
                        progressed = true;
                        break;
                    }
                }
            }
        }

        if !progressed || *evals >= max_evals {
            return best;
        }
    }
}

fn round_to(x: f64, digits: i32) -> f64 {
    let scale = 10f64.powi(digits);
    (x * scale).round() / scale
}

fn replace_task(
    base: &Instance,
    idx: usize,
    task: Result<Task, esched_types::TaskError>,
) -> Option<Instance> {
    let task = task.ok()?;
    let mut tasks: Vec<Task> = base.tasks.tasks().to_vec();
    tasks[idx] = task;
    let ts = TaskSet::new(tasks).ok()?;
    Some(Instance::new(ts, base.cores, base.power))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn inst(triples: &[(f64, f64, f64)], cores: usize) -> Instance {
        Instance::new(
            TaskSet::from_triples(triples),
            cores,
            PolynomialPower::paper(2.0, 0.7),
        )
    }

    #[test]
    fn minimizes_under_synthetic_predicate() {
        // "Bug" fires whenever some task has wcec > 2 on >= 2 cores: the
        // shrinker should strip unrelated tasks, drop to 2 cores, and
        // shrink the culprit's work toward the threshold.
        let start = inst(
            &[
                (0.0, 10.0, 8.123_456_7),
                (1.337, 5.911, 2.0),
                (2.71, 9.33, 1.25),
            ],
            8,
        );
        let mut evals = 0;
        let out = shrink_by(
            &start,
            |c| c.cores >= 2 && c.tasks.tasks().iter().any(|t| t.wcec > 2.0),
            5_000,
            &mut evals,
        );
        assert_eq!(out.tasks.len(), 1, "unrelated tasks dropped: {out:?}");
        assert_eq!(out.cores, 2, "cores reduced to the threshold");
        assert!(out.tasks.tasks()[0].wcec > 2.0 && out.tasks.tasks()[0].wcec < 8.2);
        assert!(evals > 0);
    }

    #[test]
    fn rounds_times_when_bug_is_time_independent() {
        let start = inst(&[(1.000_000_1, 7.999_999_9, 3.0)], 4);
        let mut evals = 0;
        let out = shrink_by(&start, |c| c.tasks.tasks()[0].wcec > 1.0, 5_000, &mut evals);
        let t = out.tasks.tasks()[0];
        assert_eq!(t.release, 1.0);
        assert_eq!(t.deadline, 8.0);
        assert_eq!(out.cores, 1);
    }

    #[test]
    fn passing_instance_survives_unchanged() {
        let start = inst(&[(0.0, 4.0, 2.0)], 2);
        let mut evals = 0;
        let out = shrink_by(&start, |_| false, 100, &mut evals);
        assert_eq!(out, start);
    }

    #[test]
    fn respects_eval_budget() {
        let start = inst(&[(0.0, 10.0, 8.0), (1.0, 6.0, 2.0)], 8);
        let mut evals = 0;
        let _ = shrink_by(&start, |_| true, 7, &mut evals);
        assert!(evals <= 7);
    }
}
