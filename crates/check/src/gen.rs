//! Adversarial instance generation.
//!
//! Uniform random task sets almost never land in the pipeline's hard
//! regions, so the generator is biased toward them explicitly:
//!
//! * **shared and near-duplicate event times** — boundary points are drawn
//!   from a small grid, and a fraction are jittered by offsets around the
//!   dedup tolerance (`±EPS/10 … ±10·EPS`), so one task's release
//!   coincides (exactly or almost) with another's deadline and subinterval
//!   lengths land near `EPS`/`WORK_TOL`;
//! * **zero-slack windows** — `C_i` is drawn so the required frequency sits
//!   at or just below/above 1 (`C_i ≈ D_i − R_i`);
//! * **contention at the core count** — `n` is chosen around `m` so heavy
//!   subintervals have `n_j ∈ {m, m+1, m+2}` as often as far beyond;
//! * **critical-frequency-dominated power** — high `p₀` draws make
//!   `f_crit` exceed most stretch frequencies, exercising the slack-unused
//!   paths;
//! * **degenerates** — single-task and single-core instances appear with
//!   non-trivial probability.

use crate::instance::Instance;
use esched_obs::rng::ChaCha8;
use esched_types::time::EPS;
use esched_types::{PolynomialPower, Task, TaskSet};

/// Tiny offsets around the comparison tolerance: below it (must merge),
/// at it, and just above it (must survive as a near-degenerate gap).
pub(crate) const JITTERS: [f64; 7] = [-1e-6, -2e-7, -1e-8, 0.0, 1e-8, 2e-7, 1e-6];

fn gen_power(rng: &mut ChaCha8) -> PolynomialPower {
    let alpha = if rng.gen_bool(0.5) { 3.0 } else { 2.0 };
    // Bias toward high static power: half the draws put f_crit near or
    // above typical stretch frequencies.
    let p0 = match rng.gen_range_usize(0, 6) {
        0 | 1 => 0.0,
        2 => 0.01,
        3 => 0.2,
        4 => 1.0,
        _ => rng.gen_range_f64(1.0, 5.0),
    };
    PolynomialPower::paper(alpha, p0)
}

/// Draw a boundary grid: a handful of base points, some of which are
/// duplicated across tasks and some jittered by near-tolerance offsets.
fn gen_grid(rng: &mut ChaCha8) -> Vec<f64> {
    let base_span = match rng.gen_range_usize(0, 4) {
        0 => 10.0,
        1 => 40.0,
        2 => 200.0,
        _ => 1.0,
    };
    let points = rng.gen_range_usize(2, 8);
    let mut grid = Vec::with_capacity(points);
    for k in 0..points {
        // Mostly evenly spaced (lots of exact duplicates when tasks pick
        // the same index), occasionally uniform.
        let t = if rng.gen_bool(0.7) {
            base_span * k as f64 / points as f64
        } else {
            rng.gen_range_f64(0.0, base_span)
        };
        grid.push(t);
    }
    grid.sort_by(|a, b| a.partial_cmp(b).expect("finite grid"));
    grid
}

pub(crate) fn jitter(rng: &mut ChaCha8, t: f64) -> f64 {
    if rng.gen_bool(0.25) {
        t + JITTERS[rng.gen_range_usize(0, JITTERS.len())]
    } else {
        t
    }
}

/// Draw one adversarial instance. Deterministic given the RNG state; the
/// fuzz loop seeds a fresh [`ChaCha8`] per iteration so every instance is
/// reproducible from `(seed, iteration)` alone.
pub fn gen_instance(rng: &mut ChaCha8) -> Instance {
    let cores = match rng.gen_range_usize(0, 8) {
        0 | 1 => 1,
        2 | 3 => 2,
        4 | 5 => 4,
        6 => 3,
        _ => 8,
    };
    // Bias n around m: heavy subintervals with n_j barely above m are the
    // interesting ones for Algorithm 2's cap-and-redistribute loop.
    let n = match rng.gen_range_usize(0, 8) {
        0 => 1,
        1 => cores.max(1),
        2 => cores + 1,
        3 => cores + 2,
        _ => rng.gen_range_usize(1, 2 * cores + 4),
    };
    let power = gen_power(rng);
    let grid = gen_grid(rng);
    let mut tasks = Vec::with_capacity(n);
    let mut attempts = 0;
    while tasks.len() < n && attempts < 100 * n {
        attempts += 1;
        let (release, deadline) = if grid.len() >= 2 && rng.gen_bool(0.8) {
            let a = rng.gen_range_usize(0, grid.len() - 1);
            let b = rng.gen_range_usize(a + 1, grid.len());
            (jitter(rng, grid[a]), jitter(rng, grid[b]))
        } else {
            let r = rng.gen_range_f64(0.0, 20.0);
            (r, r + rng.gen_range_f64(0.1, 20.0))
        };
        let window = deadline - release;
        if window <= 10.0 * EPS * (1.0 + release.abs().max(deadline.abs())) {
            continue; // would fail task validation or sit inside the dedup band
        }
        let wcec = match rng.gen_range_usize(0, 8) {
            // Zero slack at unit frequency (and ± dust around it).
            0 => window,
            1 => window * (1.0 - 1e-9),
            2 => window * (1.0 + 1e-9),
            // Over-dense: requires f > 1 even alone (legal in the
            // continuous model, a deadline miss on a capped table).
            3 => window * rng.gen_range_f64(1.0, 2.0),
            // Tiny work near the tolerances.
            4 => rng.gen_range_f64(0.5 * EPS, 1e-4),
            // Ordinary draw.
            _ => window * rng.gen_range_f64(0.05, 1.0),
        };
        if let Ok(t) = Task::new(release, deadline, wcec) {
            tasks.push(t);
        }
    }
    if tasks.is_empty() {
        // Pathological grid: fall back to a fixed single task so the loop
        // always yields a valid instance.
        tasks.push(Task::of(0.0, 1.0, 0.5));
    }
    let tasks = TaskSet::new(tasks).expect("tasks validated individually");
    Instance::new(tasks, cores, power)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn always_yields_valid_instances() {
        let mut rng = ChaCha8::seed_from_u64(7);
        for _ in 0..500 {
            let inst = gen_instance(&mut rng);
            assert!(!inst.tasks.is_empty());
            assert!(inst.cores >= 1);
            // TaskSet::new validated every window/work.
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let a = gen_instance(&mut ChaCha8::seed_from_u64(42));
        let b = gen_instance(&mut ChaCha8::seed_from_u64(42));
        assert_eq!(a, b);
    }

    #[test]
    fn hits_hard_regions() {
        // Over 500 draws the bias must produce single-core, single-task,
        // zero-slack, near-duplicate-boundary, and high-p0 instances.
        let mut rng = ChaCha8::seed_from_u64(1);
        let (mut single_core, mut single_task, mut zero_slack, mut high_p0, mut near_dup) =
            (0, 0, 0, 0, 0);
        for _ in 0..500 {
            let inst = gen_instance(&mut rng);
            single_core += usize::from(inst.cores == 1);
            single_task += usize::from(inst.tasks.len() == 1);
            high_p0 += usize::from(inst.power.p0 >= 1.0);
            zero_slack += usize::from(
                inst.tasks
                    .tasks()
                    .iter()
                    .any(|t| (t.intensity() - 1.0).abs() < 1e-6),
            );
            let pts = inst.tasks.event_points();
            near_dup += usize::from(pts.windows(2).any(|w| w[1] - w[0] < 1e-4));
        }
        assert!(single_core > 20, "single-core draws: {single_core}");
        assert!(single_task > 10, "single-task draws: {single_task}");
        assert!(zero_slack > 30, "zero-slack draws: {zero_slack}");
        assert!(high_p0 > 50, "high-p0 draws: {high_p0}");
        assert!(near_dup > 20, "near-duplicate-boundary draws: {near_dup}");
    }
}
