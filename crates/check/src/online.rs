//! Online-vs-offline differential fuzzing.
//!
//! An [`OnlineScript`] is a seed [`Instance`] plus a stream of
//! [`OnlineEvent`]s. The oracle replays the stream through
//! [`OnlineEngine`] — verifying the incrementally repaired plan against
//! the validator⟺simulator battery after every event — and then demands
//! that the final online outcome is *byte-identical* to running the
//! offline pipeline from scratch on the same final task set.
//!
//! The event generator is biased toward the replan patch's hard regions:
//! arrivals snapped exactly onto (or within the dedup tolerance of)
//! existing subinterval boundaries, arrivals beyond the current horizon,
//! completions at near-degenerate fractions of `C_i`, and window shifts
//! that land endpoints back onto the grid. Scripts are
//! JSON-round-trippable so shrunk repros commit to the corpus (under
//! `corpus/online/`, separate from the plain-instance corpus) and replay
//! in CI.

use crate::corpus::fnv1a;
use crate::gen::{gen_instance, jitter};
use crate::instance::Instance;
use crate::oracles::{panic_message, OracleClass, OracleViolation};
use esched_engine::{Engine, OnlineEngine, OnlineEvent};
use esched_obs::json::{parse, type_error, FromJson, JsonError, ToJson, Value};
use esched_obs::rng::ChaCha8;
use esched_types::time::EPS;
use esched_types::validate::WORK_TOL;
use esched_types::Task;
use std::fs;
use std::io;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};

/// A seed instance plus an event stream: one online fuzz case.
#[derive(Debug, Clone, PartialEq)]
pub struct OnlineScript {
    /// The task set the engine starts from.
    pub instance: Instance,
    /// Events applied in order.
    pub events: Vec<OnlineEvent>,
}

impl OnlineScript {
    /// Compact human-readable summary (`n=3 m=2 events=5`).
    pub fn summary(&self) -> String {
        format!(
            "n={} m={} events={}",
            self.instance.tasks.len(),
            self.instance.cores,
            self.events.len()
        )
    }

    /// Parse a script from its JSON text.
    ///
    /// # Errors
    /// [`JsonError`] on malformed text, an invalid embedded instance, or
    /// an unrecognized event object.
    pub fn from_json_str(text: &str) -> Result<Self, JsonError> {
        Self::from_json(&parse(text)?)
    }
}

fn event_to_json(event: &OnlineEvent) -> Value {
    match event {
        OnlineEvent::Arrive(t) => Value::obj(vec![
            ("kind", Value::Str("arrive".into())),
            ("release", Value::Num(t.release)),
            ("deadline", Value::Num(t.deadline)),
            ("wcec", Value::Num(t.wcec)),
        ]),
        OnlineEvent::Complete { task, actual_work } => Value::obj(vec![
            ("kind", Value::Str("complete".into())),
            ("task", Value::Num(*task as f64)),
            ("actual_work", Value::Num(*actual_work)),
        ]),
        OnlineEvent::Shift {
            task,
            release,
            deadline,
        } => Value::obj(vec![
            ("kind", Value::Str("shift".into())),
            ("task", Value::Num(*task as f64)),
            ("release", Value::Num(*release)),
            ("deadline", Value::Num(*deadline)),
        ]),
    }
}

fn num(value: &Value, key: &str) -> Result<f64, JsonError> {
    value
        .get(key)
        .and_then(Value::as_f64)
        .ok_or_else(|| type_error(&format!("OnlineEvent: missing or non-numeric `{key}`")))
}

fn event_from_json(value: &Value) -> Result<OnlineEvent, JsonError> {
    let kind = value
        .get("kind")
        .and_then(Value::as_str)
        .ok_or_else(|| type_error("OnlineEvent: missing `kind`"))?;
    Ok(match kind {
        "arrive" => OnlineEvent::Arrive(Task {
            release: num(value, "release")?,
            deadline: num(value, "deadline")?,
            wcec: num(value, "wcec")?,
        }),
        "complete" => OnlineEvent::Complete {
            task: num(value, "task")? as usize,
            actual_work: num(value, "actual_work")?,
        },
        "shift" => OnlineEvent::Shift {
            task: num(value, "task")? as usize,
            release: num(value, "release")?,
            deadline: num(value, "deadline")?,
        },
        other => return Err(type_error(&format!("OnlineEvent: unknown kind `{other}`"))),
    })
}

impl ToJson for OnlineScript {
    fn to_json(&self) -> Value {
        let mut obj = match self.instance.to_json() {
            Value::Obj(pairs) => pairs,
            _ => unreachable!("Instance serializes to an object"),
        };
        obj.push((
            "events".into(),
            Value::Arr(self.events.iter().map(event_to_json).collect()),
        ));
        Value::Obj(obj)
    }
}

impl FromJson for OnlineScript {
    fn from_json(value: &Value) -> Result<Self, JsonError> {
        let instance = Instance::from_json(value)?;
        let events = value
            .get("events")
            .and_then(Value::as_array)
            .ok_or_else(|| type_error("OnlineScript: missing `events` array"))?
            .iter()
            .map(event_from_json)
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Self { instance, events })
    }
}

/// The mirror of the task set the generator maintains while drawing
/// events, so every generated event is valid against the state the engine
/// will actually be in when it arrives.
fn apply_to_mirror(mirror: &mut Vec<Task>, event: &OnlineEvent) {
    match event {
        OnlineEvent::Arrive(t) => mirror.push(*t),
        OnlineEvent::Complete { task, actual_work } => mirror[*task].wcec = *actual_work,
        OnlineEvent::Shift {
            task,
            release,
            deadline,
        } => {
            mirror[*task].release = *release;
            mirror[*task].deadline = *deadline;
        }
    }
}

fn event_grid(mirror: &[Task]) -> Vec<f64> {
    let mut grid: Vec<f64> = mirror
        .iter()
        .flat_map(|t| [t.release, t.deadline])
        .collect();
    grid.sort_by(|a, b| a.partial_cmp(b).expect("finite event times"));
    grid
}

fn valid_window(release: f64, deadline: f64) -> bool {
    deadline - release > 10.0 * EPS * (1.0 + release.abs().max(deadline.abs()))
}

fn gen_arrival(rng: &mut ChaCha8, mirror: &[Task]) -> OnlineEvent {
    let grid = event_grid(mirror);
    let horizon = grid.last().copied().unwrap_or(10.0);
    for _ in 0..32 {
        let (release, deadline) = match rng.gen_range_usize(0, 8) {
            // Boundary-snapped, exactly or within the dedup tolerance:
            // the region where the in-place patch vs. full-rebuild
            // decision lives.
            0..=4 if grid.len() >= 2 => {
                let a = rng.gen_range_usize(0, grid.len() - 1);
                let b = rng.gen_range_usize(a + 1, grid.len());
                (jitter(rng, grid[a]), jitter(rng, grid[b]))
            }
            // Beyond the current horizon: appends subintervals.
            5 => {
                let r = horizon + rng.gen_range_f64(0.1, 5.0);
                (r, r + rng.gen_range_f64(0.5, 8.0))
            }
            // Off-grid: forces interior splits.
            _ => {
                let r = rng.gen_range_f64(0.0, horizon.max(1.0));
                (r, r + rng.gen_range_f64(0.1, horizon.max(1.0)))
            }
        };
        if !valid_window(release, deadline) {
            continue;
        }
        let wcec = (deadline - release) * rng.gen_range_f64(0.05, 1.2);
        if let Ok(t) = Task::new(release, deadline, wcec) {
            return OnlineEvent::Arrive(t);
        }
    }
    OnlineEvent::Arrive(Task::of(horizon + 1.0, horizon + 5.0, 1.0))
}

fn gen_completion(rng: &mut ChaCha8, mirror: &[Task]) -> OnlineEvent {
    let task = rng.gen_range_usize(0, mirror.len());
    let frac = match rng.gen_range_usize(0, 6) {
        0 => 0.25,
        1 => 0.5,
        2 => 0.75,
        3 => 0.95,
        // All-but-finished: the reclaimed slack is near-degenerate.
        4 => 1.0 - 1e-9,
        _ => rng.gen_range_f64(0.05, 1.0),
    };
    OnlineEvent::Complete {
        task,
        actual_work: mirror[task].wcec * frac,
    }
}

fn gen_shift(rng: &mut ChaCha8, mirror: &[Task]) -> OnlineEvent {
    let task = rng.gen_range_usize(0, mirror.len());
    let t = mirror[task];
    let grid = event_grid(mirror);
    for _ in 0..32 {
        let (release, deadline) = match rng.gen_range_usize(0, 4) {
            // Snap endpoints (jittered) back onto the grid: the vacated
            // old boundary may still be referenced by another task.
            0 | 1 if grid.len() >= 2 => {
                let a = rng.gen_range_usize(0, grid.len() - 1);
                let b = rng.gen_range_usize(a + 1, grid.len());
                (jitter(rng, grid[a]), jitter(rng, grid[b]))
            }
            // Small slide of the whole window.
            2 => {
                let d = rng.gen_range_f64(-2.0, 2.0);
                (t.release + d, t.deadline + d)
            }
            // Stretch or near-collapse around the release.
            _ => (
                t.release,
                t.release + (t.deadline - t.release) * rng.gen_range_f64(0.05, 2.0),
            ),
        };
        if valid_window(release, deadline) && Task::new(release, deadline, t.wcec).is_ok() {
            return OnlineEvent::Shift {
                task,
                release,
                deadline,
            };
        }
    }
    OnlineEvent::Shift {
        task,
        release: t.release,
        deadline: t.deadline + 1.0,
    }
}

/// Draw one online fuzz case: an adversarial seed instance (via
/// [`gen_instance`]) plus 2–8 valid events. Deterministic given the RNG
/// state.
pub fn gen_online(rng: &mut ChaCha8) -> OnlineScript {
    let instance = gen_instance(rng);
    let mut mirror: Vec<Task> = instance.tasks.iter().map(|(_, t)| *t).collect();
    let count = rng.gen_range_usize(2, 9);
    let mut events = Vec::with_capacity(count);
    for _ in 0..count {
        let event = match rng.gen_range_usize(0, 7) {
            0..=2 => gen_arrival(rng, &mirror),
            3 | 4 => gen_completion(rng, &mirror),
            _ => gen_shift(rng, &mirror),
        };
        apply_to_mirror(&mut mirror, &event);
        events.push(event);
    }
    OnlineScript { instance, events }
}

fn event_summary(event: &OnlineEvent) -> String {
    match event {
        OnlineEvent::Arrive(t) => format!("arrive [{}, {}] C={}", t.release, t.deadline, t.wcec),
        OnlineEvent::Complete { task, actual_work } => {
            format!("complete task {task} at {actual_work}")
        }
        OnlineEvent::Shift {
            task,
            release,
            deadline,
        } => format!("shift task {task} to [{release}, {deadline}]"),
    }
}

fn run_script(script: &OnlineScript) -> Vec<OracleViolation> {
    let mut out = Vec::new();
    let mut engine = OnlineEngine::new(
        script.instance.tasks.clone(),
        script.instance.cores,
        script.instance.power,
    );
    for (k, event) in script.events.iter().enumerate() {
        if let Err(e) = engine.apply(event) {
            out.push(OracleViolation {
                class: OracleClass::Online,
                message: format!("valid event {k} ({}) rejected: {e}", event_summary(event)),
            });
            return out;
        }
        if let Err(msg) = engine.verify_current() {
            out.push(OracleViolation {
                class: OracleClass::Online,
                message: format!(
                    "repaired plan fails the oracle after event {k} ({}): {msg}",
                    event_summary(event)
                ),
            });
        }
    }
    let offline = match Engine::with_threads(1).run(&engine.as_request()) {
        Ok(o) => o,
        Err(e) => {
            out.push(OracleViolation {
                class: OracleClass::Online,
                message: format!("offline replay of the final task set failed: {e}"),
            });
            return out;
        }
    };
    let online = engine.outcome();
    if (online.energy - offline.energy).abs() > WORK_TOL * (1.0 + offline.energy.abs()) {
        out.push(OracleViolation {
            class: OracleClass::Online,
            message: format!(
                "final energy diverged: online {} vs offline {}",
                online.energy, offline.energy
            ),
        });
    } else if online != offline || online.to_json().to_string() != offline.to_json().to_string() {
        out.push(OracleViolation {
            class: OracleClass::Online,
            message: format!(
                "online outcome is not byte-identical to offline (energy {})",
                offline.energy
            ),
        });
    }
    out
}

/// Replay `script` through the online engine and collect all violations.
/// Panics anywhere in the replay surface as [`OracleClass::Panic`].
pub fn check_online(script: &OnlineScript) -> Vec<OracleViolation> {
    match catch_unwind(AssertUnwindSafe(|| run_script(script))) {
        Ok(v) => v,
        Err(payload) => vec![OracleViolation {
            class: OracleClass::Panic,
            message: format!("online replay panicked: {}", panic_message(payload)),
        }],
    }
}

/// Would the script still be self-consistent (every explicit task
/// reference in range at the time it fires, final set non-empty)?
fn script_is_valid(script: &OnlineScript) -> bool {
    let mut count = script.instance.tasks.len();
    if count == 0 {
        return false;
    }
    for event in &script.events {
        match event {
            OnlineEvent::Arrive(_) => count += 1,
            OnlineEvent::Complete { task, .. } | OnlineEvent::Shift { task, .. } => {
                if *task >= count {
                    return false;
                }
            }
        }
    }
    true
}

/// Drop event `idx`, remapping explicit task ids in later events when the
/// dropped event is an `Arrive` (arrival ids are positional: removing one
/// shifts every later id down by one). Returns `None` when the drop would
/// leave a dangling reference.
fn drop_event(script: &OnlineScript, idx: usize) -> Option<OnlineScript> {
    let dropped_id = match script.events[idx] {
        OnlineEvent::Arrive(_) => {
            let arrivals_before = script.events[..idx]
                .iter()
                .filter(|e| matches!(e, OnlineEvent::Arrive(_)))
                .count();
            Some(script.instance.tasks.len() + arrivals_before)
        }
        _ => None,
    };
    let mut events = Vec::with_capacity(script.events.len() - 1);
    for (k, event) in script.events.iter().enumerate() {
        if k == idx {
            continue;
        }
        let mut event = event.clone();
        if let Some(dropped) = dropped_id {
            if k > idx {
                match &mut event {
                    OnlineEvent::Complete { task, .. } | OnlineEvent::Shift { task, .. } => {
                        if *task == dropped {
                            return None;
                        }
                        if *task > dropped {
                            *task -= 1;
                        }
                    }
                    OnlineEvent::Arrive(_) => {}
                }
            }
        }
        events.push(event);
    }
    let out = OnlineScript {
        instance: script.instance.clone(),
        events,
    };
    script_is_valid(&out).then_some(out)
}

/// Drop seed task `k`, remapping every explicit reference (`id > k`
/// shifts down; a reference to `k` itself vetoes the drop).
fn drop_seed_task(script: &OnlineScript, k: usize) -> Option<OnlineScript> {
    if script.instance.tasks.len() <= 1 {
        return None;
    }
    let mut tasks: Vec<Task> = script.instance.tasks.iter().map(|(_, t)| *t).collect();
    tasks.remove(k);
    let tasks = esched_types::TaskSet::new(tasks).ok()?;
    let mut events = Vec::with_capacity(script.events.len());
    for event in &script.events {
        let mut event = event.clone();
        match &mut event {
            OnlineEvent::Complete { task, .. } | OnlineEvent::Shift { task, .. } => {
                if *task == k {
                    return None;
                }
                if *task > k {
                    *task -= 1;
                }
            }
            OnlineEvent::Arrive(_) => {}
        }
        events.push(event);
    }
    let out = OnlineScript {
        instance: Instance::new(tasks, script.instance.cores, script.instance.power),
        events,
    };
    script_is_valid(&out).then_some(out)
}

/// A shrunk online repro plus the oracle-evaluation budget it consumed.
#[derive(Debug, Clone)]
pub struct ShrunkOnline {
    /// The minimized script (still failing for the target class).
    pub script: OnlineScript,
    /// Oracle evaluations spent.
    pub evals: usize,
}

/// Greedily minimize a failing script while it keeps failing for `class`:
/// truncate the event tail, then drop individual events (with task-id
/// remapping), then drop seed tasks. Each candidate costs one
/// [`check_online`] evaluation against `max_evals`.
pub fn shrink_online(script: &OnlineScript, class: OracleClass, max_evals: usize) -> ShrunkOnline {
    let mut best = script.clone();
    let mut evals = 0_usize;
    let still_fails = |s: &OnlineScript, evals: &mut usize| {
        *evals += 1;
        check_online(s).iter().any(|v| v.class == class)
    };

    // Phase 1: truncate the tail to the shortest failing prefix.
    while best.events.len() > 1 && evals < max_evals {
        let mut candidate = best.clone();
        candidate.events.pop();
        if script_is_valid(&candidate) && still_fails(&candidate, &mut evals) {
            best = candidate;
        } else {
            break;
        }
    }

    // Phases 2 and 3: single-event drops, then seed-task drops, repeated
    // until a full pass makes no progress.
    loop {
        let mut improved = false;
        let mut idx = 0;
        while idx < best.events.len() && evals < max_evals {
            if let Some(candidate) = drop_event(&best, idx) {
                if still_fails(&candidate, &mut evals) {
                    best = candidate;
                    improved = true;
                    continue; // same idx now names the next event
                }
            }
            idx += 1;
        }
        let mut k = 0;
        while k < best.instance.tasks.len() && evals < max_evals {
            if let Some(candidate) = drop_seed_task(&best, k) {
                if still_fails(&candidate, &mut evals) {
                    best = candidate;
                    improved = true;
                    continue;
                }
            }
            k += 1;
        }
        if !improved || evals >= max_evals {
            break;
        }
    }
    ShrunkOnline {
        script: best,
        evals,
    }
}

/// Serialize an online corpus entry: the script plus oracle metadata.
pub fn online_corpus_entry(script: &OnlineScript, violation: &OracleViolation) -> String {
    let mut obj = match script.to_json() {
        Value::Obj(pairs) => pairs,
        _ => unreachable!("OnlineScript serializes to an object"),
    };
    obj.insert(
        0,
        ("oracle".into(), Value::Str(violation.class.name().into())),
    );
    obj.insert(1, ("message".into(), Value::Str(violation.message.clone())));
    Value::Obj(obj).to_string_pretty()
}

/// Write a shrunk online repro into `dir` (conventionally
/// `corpus/online/`, kept separate from the plain-instance corpus),
/// content-addressed and deduped like [`crate::write_corpus`].
///
/// # Errors
/// Propagates filesystem errors from creating the directory or file.
pub fn write_online_corpus(
    dir: &Path,
    script: &OnlineScript,
    violation: &OracleViolation,
) -> io::Result<Option<PathBuf>> {
    fs::create_dir_all(dir)?;
    let hash = fnv1a(script.to_json().to_string_pretty().as_bytes());
    let path = dir.join(format!("{}-{hash:016x}.json", violation.class.name()));
    if path.exists() {
        return Ok(None);
    }
    fs::write(&path, online_corpus_entry(script, violation))?;
    Ok(Some(path))
}

/// Load every `*.json` online corpus entry under `dir`, sorted by
/// filename. A missing directory is an empty corpus.
///
/// # Errors
/// Propagates filesystem errors; malformed entries surface as
/// [`io::ErrorKind::InvalidData`] naming the offending file.
pub fn load_online_corpus_dir(dir: &Path) -> io::Result<Vec<(PathBuf, OnlineScript)>> {
    if !dir.exists() {
        return Ok(Vec::new());
    }
    let mut paths: Vec<PathBuf> = fs::read_dir(dir)?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "json"))
        .collect();
    paths.sort();
    let mut out = Vec::with_capacity(paths.len());
    for path in paths {
        let text = fs::read_to_string(&path)?;
        let script = OnlineScript::from_json_str(&text).map_err(|e| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("online corpus entry {} is malformed: {e}", path.display()),
            )
        })?;
        out.push((path, script));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use esched_types::{PolynomialPower, TaskSet};

    fn sample_script() -> OnlineScript {
        OnlineScript {
            instance: Instance::new(
                TaskSet::from_triples(&[(0.0, 10.0, 4.0), (2.0, 8.0, 3.0)]),
                2,
                PolynomialPower::paper(3.0, 0.1),
            ),
            events: vec![
                OnlineEvent::Arrive(Task::of(1.0, 6.0, 2.0)),
                OnlineEvent::Complete {
                    task: 0,
                    actual_work: 2.5,
                },
                OnlineEvent::Shift {
                    task: 1,
                    release: 3.0,
                    deadline: 9.0,
                },
            ],
        }
    }

    #[test]
    fn script_json_round_trips() {
        let script = sample_script();
        let text = script.to_json().to_string_pretty();
        let back = OnlineScript::from_json_str(&text).unwrap();
        assert_eq!(script, back);
    }

    #[test]
    fn generated_scripts_are_valid_and_deterministic() {
        for seed in 0..50u64 {
            let a = gen_online(&mut ChaCha8::seed_from_u64(seed));
            let b = gen_online(&mut ChaCha8::seed_from_u64(seed));
            assert_eq!(a, b, "seed {seed} not deterministic");
            assert!(script_is_valid(&a), "seed {seed} generated invalid script");
            assert!(!a.events.is_empty());
        }
    }

    #[test]
    fn sample_script_replays_clean() {
        let v = check_online(&sample_script());
        assert!(v.is_empty(), "violations: {v:?}");
    }

    #[test]
    fn drop_event_remaps_arrival_ids() {
        let mut script = sample_script();
        // Reference the arrived task (id 2 = 2 seed tasks + first arrival).
        script.events.push(OnlineEvent::Complete {
            task: 2,
            actual_work: 1.0,
        });
        // Dropping the arrival would dangle that reference.
        assert!(drop_event(&script, 0).is_none());
        // Dropping the unrelated shift keeps ids intact.
        let dropped = drop_event(&script, 2).unwrap();
        assert_eq!(dropped.events.len(), 3);
        assert!(script_is_valid(&dropped));
    }

    #[test]
    fn drop_seed_task_remaps_references() {
        let script = sample_script();
        // Seed task 0 is referenced by the Complete event: veto.
        assert!(drop_seed_task(&script, 0).is_none());
        // Seed task 1 is referenced by the Shift event: veto too.
        assert!(drop_seed_task(&script, 1).is_none());
        // Without the shift, task 1 drops and the arrival's id shifts.
        let mut no_shift = script.clone();
        no_shift.events.pop();
        let dropped = drop_seed_task(&no_shift, 1).unwrap();
        assert_eq!(dropped.instance.tasks.len(), 1);
        assert!(script_is_valid(&dropped));
    }

    #[test]
    fn online_corpus_write_then_load_round_trips_and_dedups() {
        let dir = std::env::temp_dir().join(format!(
            "esched-check-online-corpus-{}-{}",
            std::process::id(),
            line!()
        ));
        let _ = fs::remove_dir_all(&dir);
        let script = sample_script();
        let violation = OracleViolation {
            class: OracleClass::Online,
            message: "test repro".into(),
        };
        let first = write_online_corpus(&dir, &script, &violation).unwrap();
        assert!(first.is_some());
        let again = write_online_corpus(&dir, &script, &violation).unwrap();
        assert!(again.is_none(), "identical repro must dedup");
        let loaded = load_online_corpus_dir(&dir).unwrap();
        assert_eq!(loaded.len(), 1);
        assert_eq!(loaded[0].1, script);
        assert!(loaded[0]
            .0
            .file_name()
            .unwrap()
            .to_string_lossy()
            .starts_with("online-"));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn oracle_is_not_vacuous() {
        // A stream whose event references a task that never existed must
        // surface as an Online violation, not silently pass.
        let mut script = sample_script();
        script.events = vec![OnlineEvent::Complete {
            task: 99,
            actual_work: 1.0,
        }];
        let v = check_online(&script);
        assert!(
            v.iter().any(|x| x.class == OracleClass::Online),
            "expected an Online violation, got {v:?}"
        );
    }

    /// The committed seed repro for `corpus/online/`: before
    /// `Timeline::rebuild_shifted` fell back to a full rebuild on
    /// approx-but-not-bitwise endpoints, shifting a deadline to within
    /// the dedup tolerance of an existing boundary (100 − 5e-6 vs 100)
    /// snapped the patched timeline to the old boundary while
    /// `Timeline::build` keeps the *first* representative of the merged
    /// pair — divergent boundaries, divergent bytes.
    pub(super) fn seed_repro() -> (OnlineScript, OracleViolation) {
        let script = OnlineScript {
            instance: Instance::new(
                TaskSet::from_triples(&[(0.0, 100.0, 40.0), (20.0, 60.0, 10.0)]),
                2,
                PolynomialPower::paper(3.0, 0.1),
            ),
            events: vec![OnlineEvent::Shift {
                task: 1,
                release: 20.0,
                deadline: 100.0 - 5e-6,
            }],
        };
        let violation = OracleViolation {
            class: OracleClass::Online,
            message: "online outcome diverged from offline: rebuild_shifted snapped a \
                      within-tolerance endpoint onto the existing boundary instead of \
                      falling back to a full rebuild"
                .into(),
        };
        (script, violation)
    }

    #[test]
    fn seed_repro_replays_clean() {
        let (script, _) = seed_repro();
        let v = check_online(&script);
        assert!(v.is_empty(), "violations: {v:?}");
    }

    /// Regenerates the committed corpus entry; run explicitly with
    /// `cargo test -p esched-check --lib -- --ignored regenerate`.
    #[test]
    #[ignore = "writes the committed seed repro into corpus/online/"]
    fn regenerate_seed_corpus() {
        let dir = Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("corpus")
            .join("online");
        let (script, violation) = seed_repro();
        match write_online_corpus(&dir, &script, &violation).unwrap() {
            Some(path) => println!("wrote {}", path.display()),
            None => println!("already present (deduped)"),
        }
    }

    #[test]
    fn fuzz_smoke_runs_clean() {
        // A small in-process sweep of the online oracle; the binary's
        // `--online` mode runs the full-size version in CI.
        for i in 0..40u64 {
            let script = gen_online(&mut ChaCha8::seed_from_u64(0xB0A7 + i));
            let v = check_online(&script);
            assert!(
                v.is_empty(),
                "seed {i}: {v:?}\nscript: {}",
                script.summary()
            );
        }
    }
}
