//! # esched-check
//!
//! A dependency-free property-based **differential correctness harness**
//! for the scheduling pipeline. The paper supplies unusually strong free
//! oracles — `E^OPT ≤ E(S)` for every legal schedule `S` (Theorem 1),
//! `E^F ≤ E^I` per method, McNaughton packing legality (Algorithm 1), and
//! the independence of the analytic layer (`esched-core`) from the
//! discrete-event simulator (`esched-sim`) — and this crate turns them
//! into a standing adversarial test subsystem with three layers:
//!
//! * [`gen`] — an **adversarial generator** biased toward the pipeline's
//!   hard regions: duplicate and near-duplicate release/deadline times,
//!   zero-slack windows (`C_i ≈ D_i − R_i`), subinterval lengths near
//!   `EPS`/`WORK_TOL`, overlap counts `n_j` at and around the core count
//!   `m`, high static power (critical-frequency-dominated instances), and
//!   single-task / single-core degenerates;
//! * [`oracles`] — run on every generated instance: energy ordering
//!   (`E^OPT − ε ≤ E(S)` for `S ∈ {S^I1, S^F1, S^I2, S^F2}` and
//!   `E^F ≤ E^I`), `validate_schedule` ⟺ clean-simulation agreement,
//!   per-subinterval packing capacity (`Σ busy ≤ m·Δ_j + tol`), work
//!   conservation (`Σ segment·freq = C_i`), quantized-schedule
//!   feasibility agreement under the discrete model, and — because the
//!   whole pipeline runs under `catch_unwind` — any panic anywhere;
//! * [`shrink`] — an **auto-shrinker** that minimizes a failing instance
//!   (drop tasks, reduce cores, simplify the power model, round times,
//!   shrink requirements) while preserving the failing oracle class, so
//!   the repro committed to `corpus/` is a minimal one;
//! * [`online`] — an **online-vs-offline differential oracle**
//!   (`--online` mode): random arrival/completion/shift streams replayed
//!   through the incremental `OnlineEngine`, every repaired plan
//!   re-verified against the validator⟺simulator battery, and the final
//!   online outcome required to be byte-identical to a from-scratch
//!   offline run; shrunk scripts commit under `corpus/online/`.
//! * [`scale`] — a **large-n allocator battery** (`--scale N` mode):
//!   grid-snapped `WorkloadSpec::large_n` instances up to `N` tasks run
//!   through the vectorized, pool-parallel allocator and compared
//!   cell-by-cell against the round-based reference strategy, plus
//!   reference-free capacity invariants.
//!
//! The binary (`cargo run -p esched-check -- --iters 1000 --seed 42`)
//! drives the loop, writes shrunk repros to [`corpus`] as JSON, and exits
//! non-zero on any violation; `tests/corpus_replay.rs` replays the
//! committed corpus as a permanent regression suite.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod corpus;
pub mod gen;
pub mod instance;
pub mod online;
pub mod oracles;
pub mod scale;
pub mod shrink;

pub use corpus::{load_corpus_dir, write_corpus};
pub use gen::gen_instance;
pub use instance::Instance;
pub use online::{
    check_online, gen_online, load_online_corpus_dir, shrink_online, write_online_corpus,
    OnlineScript,
};
pub use oracles::{check_instance, OracleClass, OracleViolation};
pub use scale::{run_scale, ScaleReport};
pub use shrink::shrink;
