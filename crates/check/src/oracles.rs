//! The oracle battery: every free cross-check the paper's structure
//! provides, run against one [`Instance`].
//!
//! Each oracle is *differential* — it compares two independent
//! computations of the same fact (analytic energy vs. convex lower bound,
//! validator vs. simulator, continuous feasibility vs. discrete
//! quantization) — so a violation localizes a bug without needing a known
//! ground truth. The whole pipeline runs under `catch_unwind`, turning
//! every internal `assert!`/`expect` into a reported [`OracleClass::Panic`]
//! instead of a crashed fuzz loop.

use crate::instance::Instance;
use esched_core::{
    der_schedule, even_schedule, optimal_energy, quantize_schedule, requantize_schedule,
    two_level_assignment, HeuristicOutcome, OptimalSolution, QuantizePolicy,
};
use esched_opt::SolveOptions;
use esched_sim::simulate;
use esched_subinterval::Timeline;
use esched_types::validate::WORK_TOL;
use esched_types::{validate_schedule, DiscretePower, PowerModel, Schedule};
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Which oracle a violation came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OracleClass {
    /// Any panic inside the pipeline (failed internal assert, NaN
    /// comparison, packing error escalated to `expect`).
    Panic,
    /// Energy ordering: `E^OPT − ε ≤ E(S)` or `E^F ≤ E^I` violated.
    EnergyOrdering,
    /// `validate_schedule` and the simulator disagree, or a constructed
    /// schedule is outright illegal.
    ValidatorSim,
    /// Per-subinterval packing capacity or per-task occupancy exceeded.
    Packing,
    /// Delivered work `Σ segment·freq` drifted from `C_i`.
    WorkConservation,
    /// Discrete-mode feasibility verdicts disagree across code paths.
    Discrete,
    /// The water-filling DER allocator and the round-based reference
    /// implementation disagree beyond `WORK_TOL` on some
    /// `(task, subinterval)` share.
    Allocation,
    /// The online engine diverged from the offline pipeline: an event was
    /// wrongly rejected, an incrementally repaired plan failed the
    /// validator⟺simulator oracle, or the final online outcome is not
    /// byte-identical to a from-scratch run on the same task set.
    Online,
    /// The decomposed ADMM solver disagrees with a serial solver beyond
    /// the agreement band, or its solution fails the independent KKT
    /// certificate.
    SolverAgreement,
}

impl OracleClass {
    /// Stable lowercase name used in corpus metadata and filenames.
    pub fn name(&self) -> &'static str {
        match self {
            OracleClass::Panic => "panic",
            OracleClass::EnergyOrdering => "energy-ordering",
            OracleClass::ValidatorSim => "validator-sim",
            OracleClass::Packing => "packing",
            OracleClass::WorkConservation => "work-conservation",
            OracleClass::Discrete => "discrete",
            OracleClass::Allocation => "allocation",
            OracleClass::Online => "online",
            OracleClass::SolverAgreement => "solver-agreement",
        }
    }

    /// Parse the stable name back (for corpus metadata).
    pub fn from_name(name: &str) -> Option<Self> {
        Some(match name {
            "panic" => OracleClass::Panic,
            "energy-ordering" => OracleClass::EnergyOrdering,
            "validator-sim" => OracleClass::ValidatorSim,
            "packing" => OracleClass::Packing,
            "work-conservation" => OracleClass::WorkConservation,
            "discrete" => OracleClass::Discrete,
            "allocation" => OracleClass::Allocation,
            "online" => OracleClass::Online,
            "solver-agreement" => OracleClass::SolverAgreement,
            _ => return None,
        })
    }
}

/// One oracle violation on one instance.
#[derive(Debug, Clone, PartialEq)]
pub struct OracleViolation {
    /// Which oracle fired.
    pub class: OracleClass,
    /// Human-readable detail.
    pub message: String,
}

impl std::fmt::Display for OracleViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}] {}", self.class.name(), self.message)
    }
}

/// Relative slack added on top of the solver's certified gap when testing
/// the lower bound `E^OPT − ε ≤ E(S)`: the analytic energies and the
/// solver objective are computed by different summation orders.
pub const ORDER_REL_TOL: f64 = 1e-6;

pub(crate) fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// The five-level discrete table used by the quantization oracles: level
/// frequencies on the analytic scale with powers taken from the
/// instance's own polynomial model (so the table is always strictly
/// increasing in both columns). The top level is 1.0 — tasks that need
/// `f > 1` are genuine deadline misses, which keeps the `None` path of
/// `pick_level`/`two_level_split` exercised.
pub fn oracle_table(power: &esched_types::PolynomialPower) -> DiscretePower {
    let freqs = [0.15, 0.4, 0.6, 0.8, 1.0];
    DiscretePower::from_pairs(
        &freqs
            .iter()
            .map(|&f| (f, power.power(f)))
            .collect::<Vec<_>>(),
    )
}

/// Run every oracle on `inst` and collect all violations.
pub fn check_instance(inst: &Instance) -> Vec<OracleViolation> {
    let mut out = Vec::new();

    // Stage 1: run the full pipeline, catching panics per stage so one
    // blown assert doesn't hide the other schedulers' results.
    let even = run_caught("even_schedule", &mut out, || {
        even_schedule(&inst.tasks, inst.cores, &inst.power)
    });
    let der = run_caught("der_schedule", &mut out, || {
        der_schedule(&inst.tasks, inst.cores, &inst.power)
    });
    let opt = run_caught("optimal_energy", &mut out, || {
        optimal_energy(
            &inst.tasks,
            inst.cores,
            &inst.power,
            &SolveOptions::default(),
        )
    });

    let timeline = match run_caught("timeline_build", &mut out, || Timeline::build(&inst.tasks)) {
        Some(tl) => tl,
        None => return out,
    };

    // Stage 2: oracles over whatever survived.
    if let (Some(even), Some(der)) = (&even, &der) {
        check_energy_ordering(inst, even, der, opt.as_ref(), &mut out);
    }
    for (label, outcome) in [("even", &even), ("der", &der)] {
        if let Some(o) = outcome {
            check_schedule(
                inst,
                &format!("S^I ({label})"),
                &o.intermediate_schedule,
                &timeline,
                false,
                &mut out,
            );
            check_schedule(
                inst,
                &format!("S^F ({label})"),
                &o.schedule,
                &timeline,
                true,
                &mut out,
            );
        }
    }
    if let Some(opt) = &opt {
        check_schedule(inst, "S^OPT", &opt.schedule, &timeline, true, &mut out);
    }
    if let Some(der) = &der {
        check_discrete(inst, der, &mut out);
    }
    check_allocation(inst, &timeline, &mut out);
    if let Some(opt) = &opt {
        check_admm_agreement(inst, &timeline, opt, &mut out);
    }
    out
}

/// Relative band for the decomposed-vs-serial solver agreement oracle.
pub const ADMM_AGREE_TOL: f64 = 2e-5;

/// Differential check of the decomposed parallel solver: ADMM must land
/// within [`ADMM_AGREE_TOL`] (relative) of the serial projected-gradient
/// objective, and its solution must pass the solver-independent KKT
/// certificate. Exercised on every fuzz instance, so the 3-seed × 2000-
/// iteration CI battery covers the decomposition across the whole
/// instance distribution.
fn check_admm_agreement(
    inst: &Instance,
    timeline: &Timeline,
    opt: &OptimalSolution,
    out: &mut Vec<OracleViolation>,
) {
    use esched_opt::{kkt_report, EnergyProgram, SolverKind};
    let ep = EnergyProgram::new(&inst.tasks, timeline, inst.cores, inst.power);
    let Some(sol) = run_caught("solve_admm", out, || {
        SolverKind::Admm.solve(&ep, &SolveOptions::default())
    }) else {
        return;
    };
    // Differential, like every oracle here: the checks are anchored to
    // instances where the serial reference point itself certifies. On
    // degenerate fuzz instances (near-zero work, extreme scale ratios)
    // the X_FLOOR regularization leaves the floored objective flat while
    // the gradient still points inward, so *no* solver's point can pass
    // KKT and uncertified objectives say nothing about each other — the
    // meaningful contract is "wherever PGD certifies, ADMM certifies and
    // agrees".
    let reference = kkt_report(&ep, &opt.x);
    if !reference.is_optimal(1e-5) {
        return;
    }
    // Compare program objectives at the two points — NOT `opt.energy`,
    // which is the post-processed *schedule* energy and legitimately
    // differs from the convex objective (dust-cleaning rounds tiny
    // shares).
    let scale = 1.0 + reference.objective.abs();
    if (sol.objective - reference.objective).abs() > ADMM_AGREE_TOL * scale {
        out.push(OracleViolation {
            class: OracleClass::SolverAgreement,
            message: format!(
                "admm objective {} vs pgd {} (|diff| = {:e} > {ADMM_AGREE_TOL:e} relative)",
                sol.objective,
                reference.objective,
                (sol.objective - reference.objective).abs() / scale
            ),
        });
    }
    let report = kkt_report(&ep, &sol.x);
    if !report.is_optimal(1e-5) {
        out.push(OracleViolation {
            class: OracleClass::SolverAgreement,
            message: format!(
                "admm solution fails KKT where the reference certifies: residual {:e}, gap {:e}, feasibility {:e}",
                report.projected_gradient_residual, report.duality_gap, report.feasibility_violation
            ),
        });
    }
}

/// Differential check of the water-filling DER allocator against the
/// round-based reference: every `(task, subinterval)` share must agree to
/// `WORK_TOL`. Note the `Waterfill` strategy itself dispatches on
/// `ESCHED_DER_REFERENCE`, so under that flag this oracle degenerates to
/// reference-vs-reference — the CI fuzz-smoke step uses exactly that to
/// pin the rest of the battery onto the reference path.
fn check_allocation(inst: &Instance, timeline: &Timeline, out: &mut Vec<OracleViolation>) {
    use esched_core::{allocate, ideal_schedule, AllocRequest, DerStrategy};
    let Some(ideal) = run_caught("ideal_schedule", out, || {
        ideal_schedule(&inst.tasks, &inst.power)
    }) else {
        return;
    };
    let Some(fast) = run_caught("allocate_der", out, || {
        allocate(AllocRequest::new(&inst.tasks, timeline, inst.cores, &ideal))
    }) else {
        return;
    };
    let Some(reference) = run_caught("allocate_der_reference", out, || {
        allocate(
            AllocRequest::new(&inst.tasks, timeline, inst.cores, &ideal)
                .strategy(DerStrategy::Reference),
        )
    }) else {
        return;
    };
    for (i, _) in inst.tasks.iter() {
        for j in timeline.span(i) {
            let a = fast.get(i, j);
            let b = reference.get(i, j);
            if (a - b).abs() > WORK_TOL {
                out.push(OracleViolation {
                    class: OracleClass::Allocation,
                    message: format!(
                        "allocate_der vs reference diverge on task {i}, subinterval {j}: \
                         {a} vs {b} (|diff| = {:e})",
                        (a - b).abs()
                    ),
                });
            }
        }
    }
}

fn run_caught<T>(stage: &str, out: &mut Vec<OracleViolation>, f: impl FnOnce() -> T) -> Option<T> {
    match catch_unwind(AssertUnwindSafe(f)) {
        Ok(v) => Some(v),
        Err(payload) => {
            out.push(OracleViolation {
                class: OracleClass::Panic,
                message: format!("{stage} panicked: {}", panic_message(payload)),
            });
            None
        }
    }
}

/// `E^OPT − ε ≤ E(S)` for all four constructed schedules, and the final
/// refinement never increases energy (`E^F ≤ E^I` per method). `ε` is the
/// solver's certified duality gap plus [`ORDER_REL_TOL`] relative slack.
fn check_energy_ordering(
    _inst: &Instance,
    even: &HeuristicOutcome,
    der: &HeuristicOutcome,
    opt: Option<&OptimalSolution>,
    out: &mut Vec<OracleViolation>,
) {
    let pairs = [
        ("E^I1", even.intermediate_energy),
        ("E^F1", even.final_energy),
        ("E^I2", der.intermediate_energy),
        ("E^F2", der.final_energy),
    ];
    for (label, e) in pairs {
        if !e.is_finite() || e < 0.0 {
            out.push(OracleViolation {
                class: OracleClass::EnergyOrdering,
                message: format!("{label} = {e} is not a finite non-negative energy"),
            });
        }
    }
    if let Some(opt) = opt {
        let eps = opt.gap.max(0.0) + ORDER_REL_TOL * (1.0 + opt.energy.abs());
        let floor = opt.energy - eps;
        for (label, e) in pairs {
            if e.is_finite() && e < floor {
                out.push(OracleViolation {
                    class: OracleClass::EnergyOrdering,
                    message: format!(
                        "{label} = {e} undercuts E^OPT = {} by more than eps = {eps}",
                        opt.energy
                    ),
                });
            }
        }
    }
    for (method, i, f) in [
        ("even", even.intermediate_energy, even.final_energy),
        ("der", der.intermediate_energy, der.final_energy),
    ] {
        if f > i + ORDER_REL_TOL * (1.0 + i.abs()) {
            out.push(OracleViolation {
                class: OracleClass::EnergyOrdering,
                message: format!("{method}: E^F = {f} exceeds E^I = {i}"),
            });
        }
    }
}

/// Legality, validator ⟺ simulator agreement, per-subinterval packing
/// capacity, and (for final/optimal schedules) work conservation.
fn check_schedule(
    inst: &Instance,
    label: &str,
    schedule: &Schedule,
    timeline: &Timeline,
    conserve_work: bool,
    out: &mut Vec<OracleViolation>,
) {
    let report = validate_schedule(schedule, &inst.tasks);
    let legal = report.is_legal();
    if !legal {
        let msgs: Vec<String> = report
            .violations
            .iter()
            .take(3)
            .map(|v| v.to_string())
            .collect();
        out.push(OracleViolation {
            class: OracleClass::ValidatorSim,
            message: format!("{label}: illegal schedule: {}", msgs.join("; ")),
        });
    }
    let sim = run_caught(&format!("simulate {label}"), out, || {
        simulate(schedule, &inst.tasks, &inst.power)
    });
    if let Some(sim) = sim {
        if sim.is_clean() != legal {
            out.push(OracleViolation {
                class: OracleClass::ValidatorSim,
                message: format!(
                    "{label}: validator says legal={legal} but simulator says clean={} \
                     (conflicts={}, misses={:?})",
                    sim.is_clean(),
                    sim.conflicts.len(),
                    sim.deadline_misses
                ),
            });
        }
    }
    check_packing(inst, label, schedule, timeline, out);
    if conserve_work {
        for (id, t) in inst.tasks.iter() {
            let delivered = schedule.work_of(id);
            if (delivered - t.wcec).abs() > WORK_TOL * (1.0 + t.wcec) {
                out.push(OracleViolation {
                    class: OracleClass::WorkConservation,
                    message: format!(
                        "{label}: task {id} delivered {delivered} work, requirement {}",
                        t.wcec
                    ),
                });
            }
        }
    }
}

/// Per subinterval `[t_j, t_{j+1}]`: total occupied core time is at most
/// `m·Δ_j`, and no single task occupies more than `Δ_j` (the McNaughton
/// precondition that rules out self-overlap).
fn check_packing(
    inst: &Instance,
    label: &str,
    schedule: &Schedule,
    timeline: &Timeline,
    out: &mut Vec<OracleViolation>,
) {
    for sub in timeline.subintervals() {
        let delta = sub.delta();
        let tol = WORK_TOL * (1.0 + delta) * inst.cores as f64;
        let mut total = 0.0;
        let mut per_task = vec![0.0_f64; inst.tasks.len()];
        for seg in schedule.segments() {
            let ov = seg.interval.overlap_len(&sub.interval);
            total += ov;
            if seg.task < per_task.len() {
                per_task[seg.task] += ov;
            }
        }
        if total > inst.cores as f64 * delta + tol {
            out.push(OracleViolation {
                class: OracleClass::Packing,
                message: format!(
                    "{label}: subinterval {} [{}, {}] packs {total} core time > m*delta = {}",
                    sub.index,
                    sub.interval.start,
                    sub.interval.end,
                    inst.cores as f64 * delta
                ),
            });
        }
        for (task, &occ) in per_task.iter().enumerate() {
            if occ > delta + tol {
                out.push(OracleViolation {
                    class: OracleClass::Packing,
                    message: format!(
                        "{label}: task {task} occupies {occ} inside subinterval {} of length {delta}",
                        sub.index
                    ),
                });
            }
        }
    }
}

/// Discrete-mode differential checks on the DER final schedule `S^F2`:
///
/// * `quantize_schedule` under both policies must agree on feasibility
///   (both ask "is there a level ≥ f?" — only their choice differs);
/// * the miss set must equal the set of tasks with a segment frequency
///   (tolerantly) above the top level;
/// * `two_level_assignment` must agree with `quantize_up` about which
///   tasks exceed the table (the `pick_level == None` path);
/// * the requantized schedule must stay collision-free and
///   window-contained, and when feasible must simulate clean under the
///   table.
fn check_discrete(inst: &Instance, der: &HeuristicOutcome, out: &mut Vec<OracleViolation>) {
    let table = oracle_table(&inst.power);
    let top = table.max_freq();
    let f2 = &der.schedule;

    let nu = match run_caught("quantize_schedule(NextUp)", out, || {
        quantize_schedule(f2, &table, QuantizePolicy::NextUp)
    }) {
        Some(v) => v,
        None => return,
    };
    let be = match run_caught("quantize_schedule(BestEfficiency)", out, || {
        quantize_schedule(f2, &table, QuantizePolicy::BestEfficiency)
    }) {
        Some(v) => v,
        None => return,
    };
    if nu.misses != be.misses {
        out.push(OracleViolation {
            class: OracleClass::Discrete,
            message: format!(
                "policy disagreement: NextUp misses {:?} vs BestEfficiency misses {:?}",
                nu.misses, be.misses
            ),
        });
    }
    // Independent recomputation of the miss set from raw segment
    // frequencies, using the shared tolerant comparison.
    let mut expect: Vec<usize> = f2
        .segments()
        .iter()
        .filter(|s| !esched_types::time::approx_le(s.freq, top))
        .map(|s| s.task)
        .collect();
    expect.sort_unstable();
    expect.dedup();
    if nu.misses != expect {
        out.push(OracleViolation {
            class: OracleClass::Discrete,
            message: format!(
                "NextUp misses {:?} but segment frequencies above top level {top} belong to {:?}",
                nu.misses, expect
            ),
        });
    }

    // Per-task agreement between the two-level emulation and quantize_up.
    let works: Vec<f64> = inst.tasks.tasks().iter().map(|t| t.wcec).collect();
    if let Some(tl_out) = run_caught("two_level_assignment", out, || {
        two_level_assignment(&der.assignment, &works, &table)
    }) {
        let mut expect_tl: Vec<usize> = der
            .assignment
            .freq
            .iter()
            .enumerate()
            .filter(|(_, &f)| table.quantize_up(f).is_none())
            .map(|(i, _)| i)
            .collect();
        expect_tl.sort_unstable();
        if tl_out.misses != expect_tl {
            out.push(OracleViolation {
                class: OracleClass::Discrete,
                message: format!(
                    "two_level_assignment misses {:?} disagree with quantize_up misses {:?}",
                    tl_out.misses, expect_tl
                ),
            });
        }
    }

    // The requantized schedule stays structurally legal; fully legal and
    // clean-simulating when quantization reported feasibility.
    if let Some(req) = run_caught("requantize_schedule", out, || {
        requantize_schedule(f2, &table, QuantizePolicy::NextUp)
    }) {
        let report = validate_schedule(&req, &inst.tasks);
        let structural: Vec<&esched_types::validate::Violation> = report
            .violations
            .iter()
            .filter(|v| !matches!(v, esched_types::validate::Violation::Underserved { .. }))
            .collect();
        if !structural.is_empty() {
            out.push(OracleViolation {
                class: OracleClass::Discrete,
                message: format!(
                    "requantized S^F2 lost structural legality: {}",
                    structural
                        .iter()
                        .take(3)
                        .map(|v| v.to_string())
                        .collect::<Vec<_>>()
                        .join("; ")
                ),
            });
        }
        if nu.feasible {
            if !report.is_legal() {
                out.push(OracleViolation {
                    class: OracleClass::Discrete,
                    message:
                        "quantize_schedule reported feasible but requantized schedule is illegal"
                            .to_string(),
                });
            }
            if let Some(sim) = run_caught("simulate requantized", out, || {
                simulate(&req, &inst.tasks, &table)
            }) {
                if !sim.is_clean() {
                    out.push(OracleViolation {
                        class: OracleClass::Discrete,
                        message: format!(
                            "quantize_schedule reported feasible but requantized simulation \
                             has {} conflicts / misses {:?}",
                            sim.conflicts.len(),
                            sim.deadline_misses
                        ),
                    });
                }
            }
        }
    }
}

/// Convenience: true when `check_instance` reports nothing.
pub fn instance_passes(inst: &Instance) -> bool {
    check_instance(inst).is_empty()
}

/// Helper for tests and the shrinker: the violation classes present.
pub fn violation_classes(violations: &[OracleViolation]) -> Vec<OracleClass> {
    let mut classes: Vec<OracleClass> = violations.iter().map(|v| v.class).collect();
    classes.dedup();
    classes
}

#[cfg(test)]
mod tests {
    use super::*;
    use esched_types::{PolynomialPower, TaskSet};

    #[test]
    fn paper_vd_instance_passes_all_oracles() {
        let inst = Instance::new(
            TaskSet::from_triples(&[
                (0.0, 10.0, 8.0),
                (2.0, 18.0, 14.0),
                (4.0, 16.0, 8.0),
                (6.0, 14.0, 4.0),
                (8.0, 20.0, 10.0),
                (12.0, 22.0, 6.0),
            ]),
            4,
            PolynomialPower::cubic(),
        );
        let v = check_instance(&inst);
        assert!(v.is_empty(), "violations: {v:?}");
    }

    #[test]
    fn intro_instance_with_static_power_passes() {
        let inst = Instance::new(
            TaskSet::from_triples(&[(0.0, 12.0, 4.0), (2.0, 10.0, 2.0), (4.0, 8.0, 4.0)]),
            2,
            PolynomialPower::paper(3.0, 0.01),
        );
        let v = check_instance(&inst);
        assert!(v.is_empty(), "violations: {v:?}");
    }

    #[test]
    fn oracle_class_names_round_trip() {
        for c in [
            OracleClass::Panic,
            OracleClass::EnergyOrdering,
            OracleClass::ValidatorSim,
            OracleClass::Packing,
            OracleClass::WorkConservation,
            OracleClass::Discrete,
            OracleClass::Allocation,
            OracleClass::Online,
        ] {
            assert_eq!(OracleClass::from_name(c.name()), Some(c));
        }
        assert_eq!(OracleClass::from_name("nope"), None);
    }

    #[test]
    fn oracle_table_is_valid_for_any_power() {
        for p in [
            PolynomialPower::cubic(),
            PolynomialPower::paper(2.0, 0.0),
            PolynomialPower::paper(3.0, 5.0),
        ] {
            let t = oracle_table(&p);
            assert_eq!(t.levels().len(), 5);
            assert_eq!(t.max_freq(), 1.0);
        }
    }
}
