//! `esched-check` — the differential fuzz driver.
//!
//! ```text
//! cargo run --release -p esched-check -- --iters 1000 --seed 42
//! ```
//!
//! Each iteration seeds a fresh [`ChaCha8`] with `seed + i`, draws one
//! adversarial instance, and runs the full oracle battery. On a violation
//! the instance is auto-shrunk per failing oracle class and the minimal
//! repro is written (content-addressed, deduped) to the corpus directory.
//! Exit status: 0 when every iteration passed, 1 on any violation, 2 on
//! bad usage.
//!
//! Telemetry: the run is wrapped in a `check_fuzz` INFO span and every
//! violation emits an `oracle_violation` WARN event, so `ESCHED_LOG=info`
//! narrates the run through the standard `esched-obs` subscriber.

use esched_check::oracles::violation_classes;
use esched_check::{
    check_instance, check_online, gen_instance, gen_online, shrink, shrink_online, write_corpus,
    write_online_corpus, Instance, OracleViolation,
};
use esched_engine::Engine;
use esched_obs::rng::ChaCha8;
use esched_obs::{event, span, Level};
use std::path::PathBuf;
use std::process::ExitCode;

/// Iterations submitted to the engine per batch: large enough to keep
/// every worker busy, small enough that violations surface promptly.
const BATCH: u64 = 256;

struct Args {
    iters: u64,
    seed: u64,
    corpus: PathBuf,
    max_shrink_evals: usize,
    quiet: bool,
    online: bool,
    scale: Option<usize>,
}

const USAGE: &str = "usage: esched-check [--iters N] [--seed N] [--corpus DIR] \
                     [--max-shrink-evals N] [--quiet] [--online] [--scale N]";

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        iters: 1000,
        seed: 42,
        corpus: PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/corpus")),
        max_shrink_evals: 400,
        quiet: false,
        online: false,
        scale: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut grab = |name: &str| {
            it.next()
                .ok_or_else(|| format!("{name} needs a value\n{USAGE}"))
        };
        match flag.as_str() {
            "--iters" => args.iters = parse_num(&grab("--iters")?)?,
            "--seed" => args.seed = parse_num(&grab("--seed")?)?,
            "--corpus" => args.corpus = PathBuf::from(grab("--corpus")?),
            "--max-shrink-evals" => {
                args.max_shrink_evals = parse_num(&grab("--max-shrink-evals")?)? as usize;
            }
            "--quiet" => args.quiet = true,
            "--online" => args.online = true,
            "--scale" => args.scale = Some(parse_num(&grab("--scale")?)? as usize),
            "--help" | "-h" => return Err(USAGE.to_string()),
            other => return Err(format!("unknown flag {other}\n{USAGE}")),
        }
    }
    Ok(args)
}

fn parse_num(s: &str) -> Result<u64, String> {
    s.parse().map_err(|_| format!("not a number: {s}\n{USAGE}"))
}

/// The `--online` mode: replay random event streams through the
/// incremental engine and demand byte-identity with the offline pipeline.
/// Scripts run serially — each replay already spins up its own
/// single-threaded offline engine for the differential check.
fn run_online(args: &Args) -> ExitCode {
    let corpus = args.corpus.join("online");
    let mut failing_iters = 0_u64;
    let mut written: Vec<PathBuf> = Vec::new();
    let mut deduped = 0_usize;
    for i in 0..args.iters {
        let mut rng = ChaCha8::seed_from_u64(args.seed.wrapping_add(i));
        let script = gen_online(&mut rng);
        let violations = check_online(&script);
        if violations.is_empty() {
            if !args.quiet && (i + 1) % 200 == 0 {
                eprintln!("  ... {} online iterations clean", i + 1);
            }
            continue;
        }
        failing_iters += 1;
        let _ = esched_obs::recorder::dump_post_mortem("online oracle violation");
        eprintln!(
            "iter {i} (seed {}): {} violation(s) on {}",
            args.seed.wrapping_add(i),
            violations.len(),
            script.summary()
        );
        for v in &violations {
            eprintln!("    {v}");
            event!(
                Level::Warn,
                "oracle_violation",
                iter = i as usize,
                class = v.class.name(),
            );
        }
        for class in violation_classes(&violations) {
            let shrunk = shrink_online(&script, class, args.max_shrink_evals);
            let message = check_online(&shrunk.script)
                .into_iter()
                .find(|v| v.class == class)
                .map(|v| v.message)
                .unwrap_or_else(|| "violation vanished after shrink (flaky)".to_string());
            let repro = OracleViolation { class, message };
            match write_online_corpus(&corpus, &shrunk.script, &repro) {
                Ok(Some(path)) => {
                    eprintln!(
                        "    shrunk to {} ({} evals) -> {}",
                        shrunk.script.summary(),
                        shrunk.evals,
                        path.display()
                    );
                    written.push(path);
                }
                Ok(None) => deduped += 1,
                Err(e) => eprintln!("    corpus write failed: {e}"),
            }
        }
    }
    event!(
        Level::Info,
        "check_fuzz_done",
        failing_iters = failing_iters as usize,
        new_repros = written.len(),
    );
    println!(
        "esched-check --online: {} iterations, {} failing, {} new corpus repro(s), {} deduped",
        args.iters,
        failing_iters,
        written.len(),
        deduped
    );
    for p in &written {
        println!("  new repro: {}", p.display());
    }
    if let Some(path) = esched_obs::recorder::dump_at_exit_if_requested() {
        eprintln!("flight recorder dumped to {}", path.display());
    }
    if failing_iters == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// The `--scale N` mode: the large-n allocator battery. No shrinking or
/// corpus here — instances are fully determined by `(seed, iteration)`,
/// so a failure message already names its repro.
fn run_scale(args: &Args, scale: usize) -> ExitCode {
    let workers = 8;
    println!(
        "esched-check --scale {scale}: {} iteration(s), seed {}, {workers} pool workers",
        args.iters, args.seed
    );
    let report = esched_check::run_scale(scale, args.iters, args.seed, 4, workers);
    if !args.quiet {
        let max = report.sizes.iter().copied().max().unwrap_or(0);
        let min = report.sizes.iter().copied().min().unwrap_or(0);
        println!(
            "  sizes {min}..={max}, {} cells checked, {} violation(s)",
            report.cells_checked,
            report.violations.len()
        );
    }
    for v in &report.violations {
        eprintln!("  {v}");
        event!(Level::Warn, "scale_violation");
    }
    if report.violations.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };
    esched_obs::trace::init_from_env();
    // The oracle battery converts pipeline panics into violations via
    // catch_unwind; silence the default hook so a panicking stage doesn't
    // spray backtraces over the report (RUST_BACKTRACE debugging still
    // works on the shrunk repro via the replay test).
    std::panic::set_hook(Box::new(|_| {}));

    let _span = span!(
        Level::Info,
        "check_fuzz",
        iters = args.iters as usize,
        seed = args.seed as usize,
    );

    if let Some(scale) = args.scale {
        return run_scale(&args, scale);
    }
    if args.online {
        return run_online(&args);
    }

    // Instances are generated serially (the generator is cheap and the
    // per-iteration seed must stay `seed + i`), then each batch is
    // evaluated on the engine's work-stealing pool. Results come back in
    // submission order, so violation reporting, shrinking, and corpus
    // writes below are exactly as deterministic as the old serial loop.
    let engine = Engine::new();
    let mut failing_iters = 0_u64;
    let mut written: Vec<PathBuf> = Vec::new();
    let mut deduped = 0_usize;
    let mut start = 0_u64;
    while start < args.iters {
        let count = BATCH.min(args.iters - start);
        let instances: Vec<(u64, Instance)> = (0..count)
            .map(|k| {
                let i = start + k;
                let mut rng = ChaCha8::seed_from_u64(args.seed.wrapping_add(i));
                (i, gen_instance(&mut rng))
            })
            .collect();
        let results = engine.batch_map(instances, |_scratch, (i, inst)| {
            let violations = check_instance(&inst);
            (i, inst, violations)
        });
        for result in results {
            let (i, inst, violations) = match result {
                Ok(triple) => triple,
                Err(e) => {
                    // The oracle battery already converts pipeline panics
                    // into violations, so a job-level panic is a harness
                    // bug; regenerate the instance from its seed (the
                    // generator already ran cleanly on this thread) and
                    // report it as a synthetic Panic violation.
                    let i = start + e.index as u64;
                    let mut rng = ChaCha8::seed_from_u64(args.seed.wrapping_add(i));
                    let inst = gen_instance(&mut rng);
                    let v = OracleViolation {
                        class: esched_check::OracleClass::Panic,
                        message: format!("oracle battery panicked: {}", e.message),
                    };
                    (i, inst, vec![v])
                }
            };
            if violations.is_empty() {
                if !args.quiet && (i + 1) % 200 == 0 {
                    eprintln!("  ... {} iterations clean", i + 1);
                }
                continue;
            }
            failing_iters += 1;
            // Flight dump of the moments before the violation — a no-op
            // unless ESCHED_FLIGHT_DIR is set.
            let _ = esched_obs::recorder::dump_post_mortem("fuzz oracle violation");
            eprintln!(
                "iter {i} (seed {}): {} violation(s) on {}",
                args.seed.wrapping_add(i),
                violations.len(),
                inst.summary()
            );
            for v in &violations {
                eprintln!("    {v}");
                event!(
                    Level::Warn,
                    "oracle_violation",
                    iter = i as usize,
                    class = v.class.name(),
                );
            }
            // Shrink once per distinct failing class so each corpus entry
            // is minimal *for its oracle*, then write the repro.
            for class in violation_classes(&violations) {
                let shrunk = shrink(&inst, &[class], args.max_shrink_evals);
                let message = check_instance(&shrunk.instance)
                    .into_iter()
                    .find(|v| v.class == class)
                    .map(|v| v.message)
                    .unwrap_or_else(|| "violation vanished after shrink (flaky)".to_string());
                let repro = esched_check::OracleViolation { class, message };
                match write_corpus(&args.corpus, &shrunk.instance, &repro) {
                    Ok(Some(path)) => {
                        eprintln!(
                            "    shrunk to {} ({} evals) -> {}",
                            shrunk.instance.summary(),
                            shrunk.evals,
                            path.display()
                        );
                        written.push(path);
                    }
                    Ok(None) => deduped += 1,
                    Err(e) => eprintln!("    corpus write failed: {e}"),
                }
            }
        }
        start += count;
    }

    event!(
        Level::Info,
        "check_fuzz_done",
        failing_iters = failing_iters as usize,
        new_repros = written.len(),
    );
    println!(
        "esched-check: {} iterations, {} failing, {} new corpus repro(s), {} deduped",
        args.iters,
        failing_iters,
        written.len(),
        deduped
    );
    for p in &written {
        println!("  new repro: {}", p.display());
    }
    if let Some(path) = esched_obs::recorder::dump_at_exit_if_requested() {
        eprintln!("flight recorder dumped to {}", path.display());
    }
    if failing_iters == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
