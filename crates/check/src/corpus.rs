//! The on-disk regression corpus: shrunk minimal repros as JSON.
//!
//! Each corpus file is a plain [`Instance`] object plus two metadata keys
//! (`oracle`, the failing class name; `message`, the violation detail at
//! the time it was found). `Instance::from_json` ignores the extras, so a
//! corpus file deserializes straight back into a replayable instance.
//!
//! Filenames are `<class>-<fnv64 of the instance JSON>.json`: content
//! addressing dedups repeated discoveries of the same shrunk instance
//! across fuzz runs, and the class prefix keeps the directory readable.

use crate::instance::Instance;
use crate::oracles::OracleViolation;
use esched_obs::json::{ToJson, Value};
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// 64-bit FNV-1a — a dependency-free stable content hash for filenames.
pub(crate) fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Serialize a corpus entry: the instance plus oracle metadata.
pub fn corpus_entry(inst: &Instance, violation: &OracleViolation) -> String {
    let mut obj = match inst.to_json() {
        Value::Obj(pairs) => pairs,
        _ => unreachable!("Instance serializes to an object"),
    };
    obj.insert(
        0,
        ("oracle".into(), Value::Str(violation.class.name().into())),
    );
    obj.insert(1, ("message".into(), Value::Str(violation.message.clone())));
    Value::Obj(obj).to_string_pretty()
}

/// Write a shrunk repro into `dir`, creating the directory if needed.
/// Returns `Ok(Some(path))` for a new entry, `Ok(None)` when an identical
/// instance (same content hash for the same class) is already present.
///
/// # Errors
/// Propagates filesystem errors from creating the directory or file.
pub fn write_corpus(
    dir: &Path,
    inst: &Instance,
    violation: &OracleViolation,
) -> io::Result<Option<PathBuf>> {
    fs::create_dir_all(dir)?;
    // Hash only the instance (not the message) so the same shrunk
    // instance found via differently-worded violations dedups.
    let hash = fnv1a(inst.to_json().to_string_pretty().as_bytes());
    let path = dir.join(format!("{}-{hash:016x}.json", violation.class.name()));
    if path.exists() {
        return Ok(None);
    }
    fs::write(&path, corpus_entry(inst, violation))?;
    Ok(Some(path))
}

/// Load every `*.json` corpus entry under `dir`, sorted by filename for
/// deterministic replay order. A missing directory is an empty corpus.
///
/// # Errors
/// Propagates filesystem errors; malformed entries surface as
/// [`io::ErrorKind::InvalidData`] naming the offending file.
pub fn load_corpus_dir(dir: &Path) -> io::Result<Vec<(PathBuf, Instance)>> {
    if !dir.exists() {
        return Ok(Vec::new());
    }
    let mut paths: Vec<PathBuf> = fs::read_dir(dir)?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "json"))
        .collect();
    paths.sort();
    let mut out = Vec::with_capacity(paths.len());
    for path in paths {
        let text = fs::read_to_string(&path)?;
        let inst = Instance::from_json_str(&text).map_err(|e| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("corpus entry {} is malformed: {e}", path.display()),
            )
        })?;
        out.push((path, inst));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracles::OracleClass;
    use esched_types::{PolynomialPower, TaskSet};

    fn sample() -> Instance {
        Instance::new(
            TaskSet::from_triples(&[(0.0, 4.0, 2.0)]),
            2,
            PolynomialPower::cubic(),
        )
    }

    fn violation() -> OracleViolation {
        OracleViolation {
            class: OracleClass::Packing,
            message: "test repro".into(),
        }
    }

    #[test]
    fn write_then_load_round_trips_and_dedups() {
        let dir = std::env::temp_dir().join(format!(
            "esched-check-corpus-{}-{}",
            std::process::id(),
            line!()
        ));
        let _ = fs::remove_dir_all(&dir);
        let inst = sample();
        let first = write_corpus(&dir, &inst, &violation()).unwrap();
        assert!(first.is_some());
        let again = write_corpus(&dir, &inst, &violation()).unwrap();
        assert!(again.is_none(), "identical repro must dedup");
        let loaded = load_corpus_dir(&dir).unwrap();
        assert_eq!(loaded.len(), 1);
        assert_eq!(loaded[0].1, inst);
        assert!(loaded[0]
            .0
            .file_name()
            .unwrap()
            .to_string_lossy()
            .starts_with("packing-"));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_dir_is_empty_corpus() {
        let dir = Path::new("/nonexistent/esched-check-nowhere");
        assert!(load_corpus_dir(dir).unwrap().is_empty());
    }

    #[test]
    fn entry_carries_oracle_metadata() {
        let text = corpus_entry(&sample(), &violation());
        assert!(text.contains("\"oracle\": \"packing\""));
        assert!(text.contains("\"message\": \"test repro\""));
        // And still parses back as a plain instance.
        assert!(Instance::from_json_str(&text).is_ok());
    }
}
