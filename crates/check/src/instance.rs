//! One fuzz instance: a task set, a core count, and a power model —
//! everything the oracle battery needs, JSON-round-trippable so failing
//! cases can be committed to the corpus and replayed.

use esched_obs::json::{parse, type_error, FromJson, JsonError, ToJson, Value};
use esched_types::{PolynomialPower, TaskSet};

/// A self-contained scheduling problem instance.
#[derive(Debug, Clone, PartialEq)]
pub struct Instance {
    /// The task set.
    pub tasks: TaskSet,
    /// Number of cores `m`.
    pub cores: usize,
    /// The continuous power model.
    pub power: PolynomialPower,
}

impl Instance {
    /// Build an instance from parts.
    pub fn new(tasks: TaskSet, cores: usize, power: PolynomialPower) -> Self {
        assert!(cores >= 1, "need at least one core");
        Self {
            tasks,
            cores,
            power,
        }
    }

    /// Compact human-readable summary (`n=3 m=2 alpha=3 p0=0.2`).
    pub fn summary(&self) -> String {
        format!(
            "n={} m={} alpha={} p0={}",
            self.tasks.len(),
            self.cores,
            self.power.alpha,
            self.power.p0
        )
    }

    /// Parse an instance from its JSON text.
    ///
    /// # Errors
    /// [`JsonError`] on malformed text or an invalid task set / power
    /// model / core count.
    pub fn from_json_str(text: &str) -> Result<Self, JsonError> {
        Self::from_json(&parse(text)?)
    }
}

impl ToJson for Instance {
    fn to_json(&self) -> Value {
        Value::obj(vec![
            ("cores", Value::Num(self.cores as f64)),
            ("power", self.power.to_json()),
            ("tasks", self.tasks.to_json().get("tasks").cloned().unwrap()),
        ])
    }
}

impl FromJson for Instance {
    fn from_json(value: &Value) -> Result<Self, JsonError> {
        let cores = value
            .get("cores")
            .and_then(Value::as_u64)
            .ok_or_else(|| type_error("Instance: missing or non-integer field `cores`"))?;
        if cores == 0 {
            return Err(type_error("Instance: needs at least one core"));
        }
        let power = PolynomialPower::from_json(
            value
                .get("power")
                .ok_or_else(|| type_error("Instance: missing field `power`"))?,
        )?;
        // TaskSet::from_json expects the `{"tasks": [...]}` wrapper; the
        // instance object itself carries that key, so pass it through.
        let tasks = TaskSet::from_json(value)?;
        Ok(Self {
            tasks,
            cores: cores as usize,
            power,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_round_trip() {
        let inst = Instance::new(
            TaskSet::from_triples(&[(0.0, 4.0, 2.0), (1.0, 5.0, 1.5)]),
            2,
            PolynomialPower::paper(3.0, 0.1),
        );
        let text = inst.to_json().to_string_pretty();
        let back = Instance::from_json_str(&text).unwrap();
        assert_eq!(inst, back);
    }

    #[test]
    fn rejects_zero_cores_and_bad_tasks() {
        assert!(Instance::from_json_str(r#"{"cores":0,"power":{"gamma":1,"alpha":3,"p0":0},"tasks":[{"release":0,"deadline":1,"wcec":1}]}"#).is_err());
        assert!(Instance::from_json_str(
            r#"{"cores":1,"power":{"gamma":1,"alpha":3,"p0":0},"tasks":[]}"#
        )
        .is_err());
    }

    #[test]
    fn summary_mentions_shape() {
        let inst = Instance::new(
            TaskSet::from_triples(&[(0.0, 4.0, 2.0)]),
            3,
            PolynomialPower::cubic(),
        );
        assert_eq!(inst.summary(), "n=1 m=3 alpha=3 p0=0");
    }
}
