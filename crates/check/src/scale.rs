//! Large-n allocator battery behind `esched-check --scale N`.
//!
//! The adversarial fuzz loop stresses small, nasty geometry; this mode
//! stresses *size*. Each iteration instantiates a grid-snapped
//! [`WorkloadSpec::large_n`] workload (iteration 0 at exactly `N` tasks,
//! the rest log-spread over `[1024, N]` so one run covers the whole size
//! ladder), runs the vectorized water-filling allocator with
//! intra-instance pool fan-out, and checks it two ways:
//!
//! * **differential** — every `(task, subinterval)` share must agree
//!   with the round-based [`DerStrategy::Reference`] ground truth to
//!   `WORK_TOL`;
//! * **invariants** — every cell in `[0, Δ_j]` and every heavy column's
//!   total at most `m·Δ_j`, independently of the reference.
//!
//! The full pipeline (refinement, packing, validation) is deliberately
//! out of scope: at 262 144 tasks the materialized schedule dwarfs the
//! allocation itself, and the small-instance fuzz loop already covers
//! those stages differentially.

use esched_core::{allocate, ideal_schedule, AllocRequest, DerStrategy, Pool};
use esched_obs::rng::ChaCha8;
use esched_subinterval::Timeline;
use esched_types::validate::WORK_TOL;
use esched_workload::WorkloadSpec;

/// Upper bound on reported violation strings per iteration, so a
/// systematically wrong allocator doesn't print 1.8M lines.
const MAX_REPORTED: usize = 8;

/// Smallest instance the size ladder draws.
const MIN_SCALE: usize = 1024;

/// Outcome of one `--scale` battery run.
#[derive(Debug)]
pub struct ScaleReport {
    /// Task counts actually exercised, one per iteration.
    pub sizes: Vec<usize>,
    /// Total CSR cells checked across all iterations.
    pub cells_checked: u64,
    /// Violation descriptions (capped per iteration).
    pub violations: Vec<String>,
}

/// Run `iters` iterations of the large-n battery at ladder top `scale`.
/// `cores` is the platform core count `m`; `workers` sizes the
/// intra-instance pool.
pub fn run_scale(scale: usize, iters: u64, seed: u64, cores: usize, workers: usize) -> ScaleReport {
    assert!(scale >= MIN_SCALE, "--scale must be at least {MIN_SCALE}");
    let pool = Pool::with_threads(workers);
    let log_span = (scale as f64 / MIN_SCALE as f64).ln();
    let mut report = ScaleReport {
        sizes: Vec::with_capacity(iters as usize),
        cells_checked: 0,
        violations: Vec::new(),
    };
    for i in 0..iters {
        let mut rng = ChaCha8::seed_from_u64(seed.wrapping_add(i));
        // Iteration 0 always runs the full ladder top; later iterations
        // spread log-uniformly so small-n structure is covered too.
        let n = if i == 0 {
            scale
        } else {
            let u = rng.gen_range_f64(0.0, 1.0);
            ((MIN_SCALE as f64 * (u * log_span).exp()).round() as usize).clamp(MIN_SCALE, scale)
        };
        report.sizes.push(n);
        let tasks = WorkloadSpec::large_n(n).instantiate(seed.wrapping_add(i));
        let timeline = Timeline::build(&tasks);
        let ideal = ideal_schedule(&tasks, &esched_types::PolynomialPower::paper(3.0, 0.1));
        let fast = allocate(
            AllocRequest::new(&tasks, &timeline, cores, &ideal)
                .with_pool(&pool)
                .with_parallel_threshold(esched_core::DEFAULT_PARALLEL_THRESHOLD),
        );
        let reference = allocate(
            AllocRequest::new(&tasks, &timeline, cores, &ideal).strategy(DerStrategy::Reference),
        );

        let mut reported = 0usize;
        let mut report_violation = |msg: String, out: &mut Vec<String>| {
            if reported < MAX_REPORTED {
                out.push(format!("iter {i} (n = {n}): {msg}"));
            }
            reported += 1;
        };
        for sub in timeline.subintervals() {
            let j = sub.index;
            let delta = sub.delta();
            let mut sum = 0.0;
            for &t in &sub.overlapping {
                let a = fast.get(t, j);
                let b = reference.get(t, j);
                report.cells_checked += 1;
                if (a - b).abs() > WORK_TOL {
                    report_violation(
                        format!(
                            "fast vs reference diverge on task {t}, subinterval {j}: \
                             {a} vs {b} (|diff| = {:e})",
                            (a - b).abs()
                        ),
                        &mut report.violations,
                    );
                }
                if !(-WORK_TOL..=delta + WORK_TOL).contains(&a) {
                    report_violation(
                        format!("cell ({t}, {j}) = {a} outside [0, Δ = {delta}]"),
                        &mut report.violations,
                    );
                }
                sum += a;
            }
            if sub.is_heavy(cores) && sum > cores as f64 * delta * (1.0 + 1e-9) + WORK_TOL {
                report_violation(
                    format!(
                        "heavy subinterval {j} overcommitted: {sum} > m·Δ = {}",
                        cores as f64 * delta
                    ),
                    &mut report.violations,
                );
            }
        }
        if reported > MAX_REPORTED {
            report.violations.push(format!(
                "iter {i} (n = {n}): ... and {} more violation(s)",
                reported - MAX_REPORTED
            ));
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_ladder_run_is_clean() {
        // Debug-time bounded: ladder top 2048, three iterations.
        let r = run_scale(2048, 3, 7, 4, 4);
        assert_eq!(r.sizes.len(), 3);
        assert_eq!(r.sizes[0], 2048, "iteration 0 must run the ladder top");
        assert!(r.cells_checked > 0);
        assert!(r.violations.is_empty(), "{:?}", r.violations);
    }
}
