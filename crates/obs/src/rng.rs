//! Deterministic, seedable random numbers (ChaCha8).
//!
//! Workload generation and randomized tests must be reproducible
//! bit-for-bit from a `u64` seed, with streams independent across nearby
//! seeds (the Monte-Carlo harness uses `base_seed + trial_index`). The
//! ChaCha8 stream cipher keystream gives both properties with a tiny,
//! dependency-free implementation; 8 rounds are ample for statistical
//! (non-cryptographic) use.

/// A ChaCha8-based pseudo-random generator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChaCha8 {
    /// Cipher input block: constants, 256-bit key, counter, nonce.
    state: [u32; 16],
    /// Current keystream block.
    buf: [u32; 16],
    /// Next unread word of `buf`; 16 = exhausted.
    idx: usize,
}

const CHACHA_CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

#[inline]
fn quarter_round(s: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(16);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(12);
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(8);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(7);
}

impl ChaCha8 {
    /// Build a generator from a 32-byte key (the full ChaCha seed space).
    pub fn from_seed(key: [u8; 32]) -> Self {
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&CHACHA_CONSTANTS);
        for (i, chunk) in key.chunks_exact(4).enumerate() {
            state[4 + i] = u32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
        }
        // state[12..14] = 64-bit block counter, state[14..16] = nonce (0).
        Self {
            state,
            buf: [0; 16],
            idx: 16,
        }
    }

    /// Build a generator from a `u64` seed, expanding it into a key with
    /// SplitMix64 (so nearby seeds yield unrelated keys).
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut key = [0u8; 32];
        for chunk in key.chunks_exact_mut(8) {
            sm = sm.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^= z >> 31;
            chunk.copy_from_slice(&z.to_le_bytes());
        }
        Self::from_seed(key)
    }

    fn refill(&mut self) {
        let mut working = self.state;
        for _ in 0..4 {
            // 8 rounds = 4 double-rounds.
            quarter_round(&mut working, 0, 4, 8, 12);
            quarter_round(&mut working, 1, 5, 9, 13);
            quarter_round(&mut working, 2, 6, 10, 14);
            quarter_round(&mut working, 3, 7, 11, 15);
            quarter_round(&mut working, 0, 5, 10, 15);
            quarter_round(&mut working, 1, 6, 11, 12);
            quarter_round(&mut working, 2, 7, 8, 13);
            quarter_round(&mut working, 3, 4, 9, 14);
        }
        for (out, (&w, &s)) in self
            .buf
            .iter_mut()
            .zip(working.iter().zip(self.state.iter()))
        {
            *out = w.wrapping_add(s);
        }
        // Advance the 64-bit block counter.
        let counter = (self.state[12] as u64 | ((self.state[13] as u64) << 32)).wrapping_add(1);
        self.state[12] = counter as u32;
        self.state[13] = (counter >> 32) as u32;
        self.idx = 0;
    }

    /// Next raw 32-bit word.
    #[inline]
    pub fn next_u32(&mut self) -> u32 {
        if self.idx >= 16 {
            self.refill();
        }
        let w = self.buf[self.idx];
        self.idx += 1;
        w
    }

    /// Next raw 64-bit word.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        lo | (hi << 32)
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `f64` in `[lo, hi)`.
    ///
    /// # Panics
    /// If `hi < lo` or either bound is non-finite.
    pub fn gen_range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(
            lo.is_finite() && hi.is_finite() && hi >= lo,
            "bad range [{lo}, {hi})"
        );
        lo + self.gen_f64() * (hi - lo)
    }

    /// Uniform integer in `[lo, hi)` via rejection sampling (unbiased).
    ///
    /// # Panics
    /// If `hi <= lo`.
    pub fn gen_range_usize(&mut self, lo: usize, hi: usize) -> usize {
        assert!(hi > lo, "empty range [{lo}, {hi})");
        let span = (hi - lo) as u64;
        // Rejection zone keeps the draw unbiased.
        let zone = u64::MAX - u64::MAX % span;
        loop {
            let v = self.next_u64();
            if v < zone {
                return lo + (v % span) as usize;
            }
        }
    }

    /// Bernoulli draw with probability `p` (clamped to `[0, 1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.gen_f64() < p.clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = ChaCha8::seed_from_u64(42);
        let mut b = ChaCha8::seed_from_u64(42);
        let mut c = ChaCha8::seed_from_u64(43);
        let xs: Vec<u64> = (0..100).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..100).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..100).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn nearby_seeds_are_uncorrelated() {
        // Streams from adjacent seeds should differ in roughly half their
        // bits — a coarse avalanche check on the SplitMix64 expansion.
        let mut a = ChaCha8::seed_from_u64(1000);
        let mut b = ChaCha8::seed_from_u64(1001);
        let mut differing = 0u32;
        for _ in 0..64 {
            differing += (a.next_u64() ^ b.next_u64()).count_ones();
        }
        let frac = differing as f64 / (64.0 * 64.0);
        assert!((0.4..0.6).contains(&frac), "bit-difference fraction {frac}");
    }

    #[test]
    fn f64_draws_are_in_unit_interval_and_spread() {
        let mut rng = ChaCha8::seed_from_u64(7);
        let n = 10_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x = rng.gen_f64();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn integer_ranges_cover_and_respect_bounds() {
        let mut rng = ChaCha8::seed_from_u64(9);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let k = rng.gen_range_usize(3, 13);
            assert!((3..13).contains(&k));
            seen[k - 3] = true;
        }
        assert!(seen.iter().all(|&s| s), "not all values drawn: {seen:?}");
    }

    #[test]
    fn float_range_respects_bounds() {
        let mut rng = ChaCha8::seed_from_u64(11);
        for _ in 0..1000 {
            let x = rng.gen_range_f64(-2.5, 7.5);
            assert!((-2.5..7.5).contains(&x));
        }
        // Degenerate range pins the value.
        assert_eq!(rng.gen_range_f64(4.0, 4.0), 4.0);
    }

    #[test]
    fn gen_bool_probability_sanity() {
        let mut rng = ChaCha8::seed_from_u64(13);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        let frac = hits as f64 / 10_000.0;
        assert!((0.22..0.28).contains(&frac), "frac {frac}");
        assert!(!ChaCha8::seed_from_u64(1).gen_bool(0.0));
        assert!(ChaCha8::seed_from_u64(1).gen_bool(1.0));
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_integer_range_panics() {
        ChaCha8::seed_from_u64(1).gen_range_usize(5, 5);
    }
}
