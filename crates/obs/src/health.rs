//! Streaming health & SLO layer: windowed quantile sketches, a
//! declarative [`SloPolicy`], and the anomaly-watchdog state machine the
//! online engine reports into.
//!
//! The [`crate::metrics`] registry answers *how much work the process has
//! done so far* — cumulative counters that never forget. A service
//! operator asks a different question: *is this engine healthy right
//! now?* That needs sliding-window aggregates (replan latency p99 over
//! the last ten seconds, not since boot) and a policy that turns them
//! into alertable state. This module supplies both:
//!
//! * [`WindowedSketch`] — a lock-free sliding-window quantile sketch: a
//!   ring of fixed-width sub-windows, each a log-linear histogram of
//!   atomic cells (16 linear sub-buckets per power-of-two octave, so a
//!   quantile estimate lands in the same bucket as the exact
//!   nearest-rank value and is therefore within **1/16 relative error**).
//!   Sub-windows rotate by CAS on a window label; recording is a handful
//!   of relaxed atomic adds, mergeable reads are seqlock-checked.
//! * [`WindowedCounter`] — the same ring machinery for plain windowed
//!   sums (event rates, fallback counts, repaired-column totals).
//! * [`SloPolicy`] / [`HealthMonitor`] — per-window evaluation of the
//!   live stream against declarative budgets (replan p99, energy-regret
//!   ceiling, fallback-rate ceiling, heartbeat staleness). Breaches are
//!   emitted as structured [`HealthEvent`]s on the **rising edge** (a
//!   latched breach does not re-fire every window), recorded into the
//!   flight recorder, and drive a Healthy ⇄ Degraded state machine that
//!   recovers after [`SloPolicy::recover_after`] consecutive clean
//!   windows. [`HealthMonitor::report`] stamps the whole history as a
//!   [`HealthReport`] JSON artifact following the run-report conventions
//!   (git SHA + version header, stable key order).
//!
//! Every observation and evaluation method has an explicit-timestamp
//! `_at` variant so tests and fault-injection harnesses drive the clock
//! deterministically; the convenience wrappers use the process-monotonic
//! [`now_ns`].
//!
//! ## Concurrency contract
//!
//! Writers never block: rotation is a single CAS (the loser of a
//! rotation race spins only while the winner zeroes one sub-window).
//! Readers merge sub-windows under a label re-check, so a sub-window
//! rotated mid-read is skipped rather than reported torn. A thread
//! stalled for longer than a full window may have its sample dropped or
//! attributed to a fresh sub-window — acceptable for operational
//! telemetry, same stance as the flight recorder.

use crate::json::Value;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::{Duration, Instant};

/// Sub-buckets per power-of-two octave (16 → quantile estimates carry at
/// most 1/16 ≈ 6.25% relative value error).
const SUB_BUCKET_BITS: u32 = 4;
const SUB_BUCKETS: u64 = 1 << SUB_BUCKET_BITS;
/// Total log-linear buckets covering the full `u64` range.
const NUM_BUCKETS: usize = (SUB_BUCKETS as usize) * (64 - SUB_BUCKET_BITS as usize + 1);
/// Sub-window label value meaning "a writer is zeroing this sub-window".
const CLEARING: u64 = u64::MAX;

fn clock_origin() -> Instant {
    static ORIGIN: OnceLock<Instant> = OnceLock::new();
    *ORIGIN.get_or_init(Instant::now)
}

/// Monotonic nanoseconds since the health clock's process origin.
#[inline]
pub fn now_ns() -> u64 {
    // `| 1` keeps the clock strictly positive so 0 stays a valid "never"
    // sentinel (see `NO_HEARTBEAT`); a 1 ns bias is far below sub-window
    // granularity.
    (clock_origin().elapsed().as_nanos().min(u64::MAX as u128) as u64) | 1
}

/// Log-linear bucket index of `value`: exact below [`SUB_BUCKETS`], then
/// 16 linear sub-buckets per octave.
#[inline]
fn bucket_index(value: u64) -> usize {
    if value < SUB_BUCKETS {
        value as usize
    } else {
        let msb = 63 - value.leading_zeros();
        let shift = msb - SUB_BUCKET_BITS;
        let sub = (value >> shift) & (SUB_BUCKETS - 1);
        ((msb - SUB_BUCKET_BITS + 1) as u64 * SUB_BUCKETS + sub) as usize
    }
}

/// Inclusive `[lo, hi]` value range of bucket `index`.
fn bucket_bounds(index: usize) -> (u64, u64) {
    let i = index as u64;
    if i < SUB_BUCKETS {
        (i, i)
    } else {
        let group = i / SUB_BUCKETS; // ≥ 1
        let sub = i % SUB_BUCKETS;
        let shift = (group - 1) as u32;
        let lo = (SUB_BUCKETS + sub) << shift;
        let width = 1u64 << shift;
        (lo, lo + (width - 1))
    }
}

/// Representative value reported for a bucket: its midpoint, which is
/// within half a bucket width (≤ 1/32 relative) of anything in it.
fn bucket_mid(index: usize) -> u64 {
    let (lo, hi) = bucket_bounds(index);
    lo + (hi - lo) / 2
}

struct SubWindow {
    /// Window index + 1 (0 = never written), or [`CLEARING`].
    label: AtomicU64,
    count: AtomicU64,
    sum: AtomicU64,
    buckets: Box<[AtomicU64]>,
}

impl SubWindow {
    fn empty(buckets: usize) -> Self {
        Self {
            label: AtomicU64::new(0),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            buckets: (0..buckets).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    /// Make this sub-window current for window `idx`, zeroing it if it
    /// still holds an older window. Returns false when the sample should
    /// be dropped (the slot has already rotated past `idx`).
    fn rotate_to(&self, idx: u64) -> bool {
        let lab = idx + 1;
        loop {
            let cur = self.label.load(Ordering::Acquire);
            if cur == lab {
                return true;
            }
            if cur == CLEARING {
                std::hint::spin_loop();
                continue;
            }
            if cur > lab {
                // The ring has lapped this writer; its sample is older
                // than everything retained.
                return false;
            }
            if self
                .label
                .compare_exchange(cur, CLEARING, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                self.count.store(0, Ordering::Relaxed);
                self.sum.store(0, Ordering::Relaxed);
                for b in self.buckets.iter() {
                    b.store(0, Ordering::Relaxed);
                }
                self.label.store(lab, Ordering::Release);
                return true;
            }
        }
    }
}

/// A lock-free sliding-window quantile sketch: the last
/// `sub_windows × sub_width` of samples, queryable at log-linear
/// (±1/16 relative) resolution. See the module docs for the design.
pub struct WindowedSketch {
    sub_ns: u64,
    live: u64,
    subs: Vec<SubWindow>,
}

impl std::fmt::Debug for WindowedSketch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WindowedSketch")
            .field("sub_ns", &self.sub_ns)
            .field("sub_windows", &self.live)
            .finish_non_exhaustive()
    }
}

impl WindowedSketch {
    /// A sketch covering `window`, split into `sub_windows` rotating
    /// sub-windows (one extra slot holds the current partial so the
    /// oldest live sub-window is never overwritten mid-query).
    ///
    /// # Panics
    /// If `sub_windows == 0` or `window` is zero.
    pub fn new(window: Duration, sub_windows: usize) -> Self {
        assert!(sub_windows > 0, "need at least one sub-window");
        let window_ns = window.as_nanos().min(u64::MAX as u128) as u64;
        assert!(window_ns > 0, "window must be non-empty");
        let sub_ns = (window_ns / sub_windows as u64).max(1);
        Self {
            sub_ns,
            live: sub_windows as u64,
            subs: (0..=sub_windows)
                .map(|_| SubWindow::empty(NUM_BUCKETS))
                .collect(),
        }
    }

    /// Sub-window width in nanoseconds.
    pub fn sub_window_ns(&self) -> u64 {
        self.sub_ns
    }

    /// Full window width in nanoseconds.
    pub fn window_ns(&self) -> u64 {
        self.sub_ns * self.live
    }

    fn slot(&self, idx: u64) -> &SubWindow {
        &self.subs[(idx % self.subs.len() as u64) as usize]
    }

    /// Record `value` at explicit time `t_ns`.
    pub fn record_at(&self, t_ns: u64, value: u64) {
        let idx = t_ns / self.sub_ns;
        let slot = self.slot(idx);
        if !slot.rotate_to(idx) {
            return;
        }
        slot.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        slot.sum.fetch_add(value, Ordering::Relaxed);
        slot.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Record `value` now.
    pub fn record(&self, value: u64) {
        self.record_at(now_ns(), value);
    }

    /// Merge the sub-windows live at `t_ns` (the current partial plus the
    /// preceding `sub_windows`) into one queryable histogram. Spanning
    /// `sub_windows + 1` indices — exactly the ring capacity — guarantees
    /// the merge always covers at least the configured window.
    pub fn merged_at(&self, t_ns: u64) -> MergedWindow {
        let cur = t_ns / self.sub_ns;
        let oldest = cur.saturating_sub(self.live);
        let mut merged = MergedWindow {
            count: 0,
            sum: 0,
            buckets: vec![0u64; NUM_BUCKETS],
        };
        let mut scratch = vec![0u64; NUM_BUCKETS];
        for idx in oldest..=cur {
            let slot = self.slot(idx);
            let lab = idx + 1;
            if slot.label.load(Ordering::Acquire) != lab {
                continue; // expired, cleared, or mid-rotation.
            }
            let mut count = 0u64;
            let mut sum = 0u64;
            for (dst, b) in scratch.iter_mut().zip(slot.buckets.iter()) {
                let v = b.load(Ordering::Relaxed);
                *dst = v;
                count += v;
            }
            sum = sum.wrapping_add(slot.sum.load(Ordering::Relaxed));
            // Label re-check: a rotation that raced the bucket reads
            // invalidates this sub-window (seqlock discipline, same as
            // the flight recorder's torn-read rejection).
            if slot.label.load(Ordering::Acquire) != lab {
                continue;
            }
            merged.count += count;
            merged.sum = merged.sum.wrapping_add(sum);
            for (dst, src) in merged.buckets.iter_mut().zip(scratch.iter()) {
                *dst += *src;
            }
        }
        merged
    }

    /// Merge the currently live sub-windows.
    pub fn merged(&self) -> MergedWindow {
        self.merged_at(now_ns())
    }
}

/// The merged view of a sketch's live window: exact per-bucket counts,
/// queryable for quantiles at bucket resolution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MergedWindow {
    count: u64,
    sum: u64,
    buckets: Vec<u64>,
}

impl MergedWindow {
    /// Samples in the window.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of samples in the window.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Arithmetic mean (0 for an empty window).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Nearest-rank quantile estimate for `q` in `[0, 1]`: the midpoint
    /// of the bucket holding the exact nearest-rank sample, so the
    /// estimate is within one bucket width (≤ 1/16 relative for values
    /// ≥ 16) of the true value. `None` on an empty window.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Some(bucket_mid(i));
            }
        }
        // Unreachable while counts are consistent; be safe anyway.
        Some(bucket_mid(NUM_BUCKETS - 1))
    }
}

struct CounterCell {
    label: AtomicU64,
    value: AtomicU64,
}

/// A lock-free sliding-window sum: the counting core of
/// [`WindowedSketch`] without the histogram, for rates and fractions.
pub struct WindowedCounter {
    sub_ns: u64,
    live: u64,
    cells: Vec<CounterCell>,
}

impl std::fmt::Debug for WindowedCounter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WindowedCounter")
            .field("sub_ns", &self.sub_ns)
            .field("sub_windows", &self.live)
            .finish_non_exhaustive()
    }
}

impl WindowedCounter {
    /// A counter covering `window` split into `sub_windows` sub-windows.
    ///
    /// # Panics
    /// If `sub_windows == 0` or `window` is zero.
    pub fn new(window: Duration, sub_windows: usize) -> Self {
        assert!(sub_windows > 0, "need at least one sub-window");
        let window_ns = window.as_nanos().min(u64::MAX as u128) as u64;
        assert!(window_ns > 0, "window must be non-empty");
        Self {
            sub_ns: (window_ns / sub_windows as u64).max(1),
            live: sub_windows as u64,
            cells: (0..=sub_windows)
                .map(|_| CounterCell {
                    label: AtomicU64::new(0),
                    value: AtomicU64::new(0),
                })
                .collect(),
        }
    }

    fn cell(&self, idx: u64) -> &CounterCell {
        &self.cells[(idx % self.cells.len() as u64) as usize]
    }

    /// Add `n` at explicit time `t_ns`.
    pub fn add_at(&self, t_ns: u64, n: u64) {
        let idx = t_ns / self.sub_ns;
        let cell = self.cell(idx);
        let lab = idx + 1;
        loop {
            let cur = cell.label.load(Ordering::Acquire);
            if cur == lab {
                break;
            }
            if cur == CLEARING {
                std::hint::spin_loop();
                continue;
            }
            if cur > lab {
                return;
            }
            if cell
                .label
                .compare_exchange(cur, CLEARING, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                cell.value.store(0, Ordering::Relaxed);
                cell.label.store(lab, Ordering::Release);
                break;
            }
        }
        cell.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Add `n` now.
    pub fn add(&self, n: u64) {
        self.add_at(now_ns(), n);
    }

    /// Sum over the window live at `t_ns`.
    pub fn sum_at(&self, t_ns: u64) -> u64 {
        let cur = t_ns / self.sub_ns;
        let oldest = cur.saturating_sub(self.live);
        let mut total = 0u64;
        for idx in oldest..=cur {
            let cell = self.cell(idx);
            let lab = idx + 1;
            if cell.label.load(Ordering::Acquire) != lab {
                continue;
            }
            let v = cell.value.load(Ordering::Relaxed);
            if cell.label.load(Ordering::Acquire) == lab {
                total += v;
            }
        }
        total
    }

    /// Sum over the currently live window.
    pub fn sum(&self) -> u64 {
        self.sum_at(now_ns())
    }
}

/// Overall health of a monitored stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HealthState {
    /// No SLO currently breached.
    Healthy,
    /// At least one breach since the last recovery.
    Degraded,
}

impl HealthState {
    /// Stable lowercase name.
    pub fn as_str(&self) -> &'static str {
        match self {
            HealthState::Healthy => "healthy",
            HealthState::Degraded => "degraded",
        }
    }
}

/// Which SLO a [`HealthEvent`] concerns.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HealthEventKind {
    /// Windowed replan p99 exceeded [`SloPolicy::replan_p99_ns`].
    ReplanLatency,
    /// Latest shadow-audit regret exceeded [`SloPolicy::regret_ceiling`].
    EnergyRegret,
    /// Windowed fallback rate exceeded
    /// [`SloPolicy::fallback_rate_ceiling`].
    FallbackRate,
    /// No heartbeat for longer than [`SloPolicy::heartbeat_timeout`].
    HeartbeatStale,
    /// A shadow audit's from-scratch offline recompute diverged from the
    /// live plan (always a breach; has no budget knob).
    AuditDivergence,
    /// The stream returned to [`HealthState::Healthy`] after
    /// [`SloPolicy::recover_after`] consecutive clean windows.
    Recovered,
}

/// Number of *breach* kinds (everything except `Recovered`).
const BREACH_KINDS: usize = 5;

impl HealthEventKind {
    /// Stable snake_case name.
    pub fn as_str(&self) -> &'static str {
        match self {
            HealthEventKind::ReplanLatency => "replan_latency",
            HealthEventKind::EnergyRegret => "energy_regret",
            HealthEventKind::FallbackRate => "fallback_rate",
            HealthEventKind::HeartbeatStale => "heartbeat_stale",
            HealthEventKind::AuditDivergence => "audit_divergence",
            HealthEventKind::Recovered => "recovered",
        }
    }

    fn breach_slot(&self) -> Option<usize> {
        match self {
            HealthEventKind::ReplanLatency => Some(0),
            HealthEventKind::EnergyRegret => Some(1),
            HealthEventKind::FallbackRate => Some(2),
            HealthEventKind::HeartbeatStale => Some(3),
            HealthEventKind::AuditDivergence => Some(4),
            HealthEventKind::Recovered => None,
        }
    }
}

/// One structured watchdog event: a rising-edge SLO breach or a recovery.
#[derive(Debug, Clone, PartialEq)]
pub struct HealthEvent {
    /// What fired.
    pub kind: HealthEventKind,
    /// Evaluation time (health-clock nanoseconds).
    pub at_ns: u64,
    /// The measured value that tripped (or cleared) the SLO.
    pub measured: f64,
    /// The policy budget it was compared against.
    pub budget: f64,
    /// Monitor state after applying this event.
    pub state_after: HealthState,
}

impl HealthEvent {
    /// JSON form with stable key order.
    pub fn to_json(&self) -> Value {
        Value::obj(vec![
            ("kind", Value::Str(self.kind.as_str().to_string())),
            ("at_ns", Value::Num(self.at_ns as f64)),
            ("measured", Value::Num(self.measured)),
            ("budget", Value::Num(self.budget)),
            (
                "state_after",
                Value::Str(self.state_after.as_str().to_string()),
            ),
        ])
    }
}

impl std::fmt::Display for HealthEvent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "[{}] {} measured {:.4} vs budget {:.4} → {}",
            self.at_ns,
            self.kind.as_str(),
            self.measured,
            self.budget,
            self.state_after.as_str()
        )
    }
}

/// Declarative SLO budgets evaluated per window. Unset budgets are not
/// checked. Built fluently:
///
/// ```
/// use esched_obs::health::SloPolicy;
/// use std::time::Duration;
///
/// let policy = SloPolicy::new(Duration::from_secs(10))
///     .with_replan_p99(Duration::from_millis(2))
///     .with_regret_ceiling(0.05)
///     .with_fallback_rate_ceiling(0.5)
///     .with_heartbeat_timeout(Duration::from_secs(2));
/// assert_eq!(policy.replan_p99_ns, Some(2_000_000));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SloPolicy {
    /// Sliding-window width all rate/quantile checks are computed over.
    pub window: Duration,
    /// Sub-windows per window (rotation granularity; evaluation cadence
    /// is one check per sub-window).
    pub sub_windows: usize,
    /// Budget on the windowed replan-latency p99, nanoseconds.
    pub replan_p99_ns: Option<u64>,
    /// Ceiling on the latest shadow-audit energy regret
    /// `(live − E^OPT) / E^OPT`.
    pub regret_ceiling: Option<f64>,
    /// Ceiling on the windowed fraction of replans that fell back to a
    /// full recompute (timeline rebuild or global DER reallocation).
    pub fallback_rate_ceiling: Option<f64>,
    /// Maximum tolerated age of the last heartbeat.
    pub heartbeat_timeout: Option<Duration>,
    /// Consecutive clean evaluations required to return to
    /// [`HealthState::Healthy`].
    pub recover_after: u32,
}

impl Default for SloPolicy {
    /// A 10-second window of 8 sub-windows with no budgets set (pure
    /// observation) and 2-clean-window recovery.
    fn default() -> Self {
        Self::new(Duration::from_secs(10))
    }
}

impl SloPolicy {
    /// A policy with the given window, no budgets, 8 sub-windows, and
    /// 2-clean-window recovery.
    pub fn new(window: Duration) -> Self {
        Self {
            window,
            sub_windows: 8,
            replan_p99_ns: None,
            regret_ceiling: None,
            fallback_rate_ceiling: None,
            heartbeat_timeout: None,
            recover_after: 2,
        }
    }

    /// Set the replan-p99 budget.
    pub fn with_replan_p99(mut self, budget: Duration) -> Self {
        self.replan_p99_ns = Some(budget.as_nanos().min(u64::MAX as u128) as u64);
        self
    }

    /// Set the energy-regret ceiling.
    pub fn with_regret_ceiling(mut self, ceiling: f64) -> Self {
        self.regret_ceiling = Some(ceiling);
        self
    }

    /// Set the fallback-rate ceiling.
    pub fn with_fallback_rate_ceiling(mut self, ceiling: f64) -> Self {
        self.fallback_rate_ceiling = Some(ceiling);
        self
    }

    /// Set the heartbeat staleness budget.
    pub fn with_heartbeat_timeout(mut self, timeout: Duration) -> Self {
        self.heartbeat_timeout = Some(timeout);
        self
    }

    /// Set the recovery threshold (consecutive clean windows).
    pub fn with_recover_after(mut self, windows: u32) -> Self {
        self.recover_after = windows.max(1);
        self
    }
}

/// The windowed measurements one evaluation saw.
#[derive(Debug, Clone, PartialEq)]
pub struct WindowStats {
    /// Replans observed in the window.
    pub replans: u64,
    /// Windowed replan-latency p50, if any replans landed.
    pub replan_p50_ns: Option<u64>,
    /// Windowed replan-latency p99.
    pub replan_p99_ns: Option<u64>,
    /// Windowed replan-latency p999.
    pub replan_p999_ns: Option<u64>,
    /// Fraction of windowed replans that fell back to a full recompute.
    pub fallback_rate: f64,
    /// Windowed repaired-columns / total-columns fraction.
    pub repair_fraction: f64,
    /// Latest shadow-audit energy regret, if any audit has run.
    pub regret: Option<f64>,
    /// Age of the last heartbeat at evaluation time, if one was seen.
    pub heartbeat_age_ns: Option<u64>,
    /// Shadow-audit divergences observed so far (cumulative).
    pub divergences: u64,
}

impl WindowStats {
    /// JSON form with stable key order.
    pub fn to_json(&self) -> Value {
        let opt = |v: Option<u64>| match v {
            Some(x) => Value::Num(x as f64),
            None => Value::Null,
        };
        Value::obj(vec![
            ("replans", Value::Num(self.replans as f64)),
            ("replan_p50_ns", opt(self.replan_p50_ns)),
            ("replan_p99_ns", opt(self.replan_p99_ns)),
            ("replan_p999_ns", opt(self.replan_p999_ns)),
            ("fallback_rate", Value::Num(self.fallback_rate)),
            ("repair_fraction", Value::Num(self.repair_fraction)),
            (
                "regret",
                match self.regret {
                    Some(r) => Value::Num(r),
                    None => Value::Null,
                },
            ),
            ("heartbeat_age_ns", opt(self.heartbeat_age_ns)),
            ("divergences", Value::Num(self.divergences as f64)),
        ])
    }
}

struct MonitorState {
    state: HealthState,
    latched: [bool; BREACH_KINDS],
    clean_streak: u32,
    windows_evaluated: u64,
    breaches: u64,
    recoveries: u64,
    log: Vec<HealthEvent>,
}

/// Sentinel meaning "no heartbeat recorded yet". Timestamps are
/// process-monotonic nanoseconds and therefore strictly positive, so 0 is
/// free to act as "never" while keeping `fetch_max` monotone.
const NO_HEARTBEAT: u64 = 0;

/// The watchdog: windowed instruments on the write side, per-window SLO
/// evaluation and the Healthy ⇄ Degraded state machine on the read side.
/// All methods take `&self`; share it via `Arc`.
pub struct HealthMonitor {
    policy: SloPolicy,
    replan_ns: WindowedSketch,
    replans: WindowedCounter,
    fallbacks: WindowedCounter,
    repaired_cols: WindowedCounter,
    total_cols: WindowedCounter,
    last_heartbeat: AtomicU64,
    /// f64 bits of the latest audit regret; `f64::NAN` bits = none yet.
    regret_bits: AtomicU64,
    audits: AtomicU64,
    divergences: AtomicU64,
    next_eval: AtomicU64,
    inner: Mutex<MonitorState>,
}

impl std::fmt::Debug for HealthMonitor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HealthMonitor")
            .field("policy", &self.policy)
            .field("state", &self.state())
            .finish_non_exhaustive()
    }
}

impl HealthMonitor {
    /// A monitor enforcing `policy`.
    pub fn new(policy: SloPolicy) -> Self {
        describe_health_metrics();
        let window = policy.window;
        let subs = policy.sub_windows.max(1);
        Self {
            replan_ns: WindowedSketch::new(window, subs),
            replans: WindowedCounter::new(window, subs),
            fallbacks: WindowedCounter::new(window, subs),
            repaired_cols: WindowedCounter::new(window, subs),
            total_cols: WindowedCounter::new(window, subs),
            last_heartbeat: AtomicU64::new(NO_HEARTBEAT),
            regret_bits: AtomicU64::new(f64::NAN.to_bits()),
            audits: AtomicU64::new(0),
            divergences: AtomicU64::new(0),
            next_eval: AtomicU64::new(0),
            policy,
            inner: Mutex::new(MonitorState {
                state: HealthState::Healthy,
                latched: [false; BREACH_KINDS],
                clean_streak: 0,
                windows_evaluated: 0,
                breaches: 0,
                recoveries: 0,
                log: Vec::new(),
            }),
        }
    }

    /// The policy being enforced.
    pub fn policy(&self) -> &SloPolicy {
        &self.policy
    }

    /// Record one applied replan at `t_ns`: its latency, repair shape,
    /// and whether it fell back to a full recompute. Doubles as a
    /// heartbeat.
    pub fn observe_replan_at(
        &self,
        t_ns: u64,
        elapsed_ns: u64,
        repaired_columns: usize,
        total_columns: usize,
        fell_back: bool,
    ) {
        self.replan_ns.record_at(t_ns, elapsed_ns);
        self.replans.add_at(t_ns, 1);
        if fell_back {
            self.fallbacks.add_at(t_ns, 1);
        }
        self.repaired_cols.add_at(t_ns, repaired_columns as u64);
        self.total_cols.add_at(t_ns, total_columns as u64);
        self.heartbeat_at(t_ns);
    }

    /// [`HealthMonitor::observe_replan_at`] at the current time.
    pub fn observe_replan(
        &self,
        elapsed_ns: u64,
        repaired_columns: usize,
        total_columns: usize,
        fell_back: bool,
    ) {
        self.observe_replan_at(
            now_ns(),
            elapsed_ns,
            repaired_columns,
            total_columns,
            fell_back,
        );
    }

    /// Stamp liveness at `t_ns` without recording a replan.
    pub fn heartbeat_at(&self, t_ns: u64) {
        self.last_heartbeat.fetch_max(t_ns, Ordering::Relaxed);
    }

    /// Stamp liveness now.
    pub fn heartbeat(&self) {
        self.heartbeat_at(now_ns());
    }

    /// Record a shadow-audit result: the energy regret of the live plan
    /// against the recomputed `E^OPT`, and whether the from-scratch
    /// offline recompute diverged from the live plan.
    pub fn observe_audit(&self, regret: f64, diverged: bool) {
        self.regret_bits.store(regret.to_bits(), Ordering::Relaxed);
        self.audits.fetch_add(1, Ordering::Relaxed);
        if diverged {
            self.divergences.fetch_add(1, Ordering::Relaxed);
        }
        crate::metric_gauge!("esched.online.energy_regret").set(regret);
        crate::metric_counter!("esched.online.audits").inc();
        if diverged {
            crate::metric_counter!("esched.online.audit_divergences").inc();
        }
        crate::flight_event!("shadow_audit", (regret.abs() * 1e6) as u64);
    }

    /// Latest audit regret, if any audit has completed.
    pub fn regret(&self) -> Option<f64> {
        let r = f64::from_bits(self.regret_bits.load(Ordering::Relaxed));
        r.is_finite().then_some(r)
    }

    /// Shadow audits recorded so far.
    pub fn audits(&self) -> u64 {
        self.audits.load(Ordering::Relaxed)
    }

    /// Current watchdog state.
    pub fn state(&self) -> HealthState {
        self.lock().state
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, MonitorState> {
        // Single-struct updates; poisoning carries no information.
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// The windowed measurements as of `t_ns` (what an evaluation at that
    /// time would see).
    pub fn window_stats_at(&self, t_ns: u64) -> WindowStats {
        let merged = self.replan_ns.merged_at(t_ns);
        let replans = self.replans.sum_at(t_ns);
        let fallbacks = self.fallbacks.sum_at(t_ns);
        let repaired = self.repaired_cols.sum_at(t_ns);
        let total = self.total_cols.sum_at(t_ns);
        let hb = self.last_heartbeat.load(Ordering::Relaxed);
        WindowStats {
            replans,
            replan_p50_ns: merged.quantile(0.50),
            replan_p99_ns: merged.quantile(0.99),
            replan_p999_ns: merged.quantile(0.999),
            fallback_rate: if replans == 0 {
                0.0
            } else {
                fallbacks as f64 / replans as f64
            },
            repair_fraction: if total == 0 {
                0.0
            } else {
                repaired as f64 / total as f64
            },
            regret: self.regret(),
            heartbeat_age_ns: (hb != NO_HEARTBEAT).then(|| t_ns.saturating_sub(hb)),
            divergences: self.divergences.load(Ordering::Relaxed),
        }
    }

    /// Evaluate the policy if an evaluation is due at `t_ns` (one per
    /// sub-window tick); the common case is one atomic load and out.
    pub fn maybe_evaluate_at(&self, t_ns: u64) -> Vec<HealthEvent> {
        let due = self.next_eval.load(Ordering::Relaxed);
        if t_ns < due {
            return Vec::new();
        }
        let next = t_ns + self.replan_ns.sub_window_ns();
        if self
            .next_eval
            .compare_exchange(due, next, Ordering::Relaxed, Ordering::Relaxed)
            .is_err()
        {
            return Vec::new(); // another caller claimed this tick.
        }
        self.evaluate_at(t_ns)
    }

    /// [`HealthMonitor::maybe_evaluate_at`] at the current time.
    pub fn maybe_evaluate(&self) -> Vec<HealthEvent> {
        self.maybe_evaluate_at(now_ns())
    }

    /// Evaluate every configured SLO against the window live at `t_ns`,
    /// unconditionally. Returns the rising-edge breaches (and possibly a
    /// recovery) this evaluation produced; the same breach stays latched
    /// — it does not re-fire every window while the condition persists.
    pub fn evaluate_at(&self, t_ns: u64) -> Vec<HealthEvent> {
        let stats = self.window_stats_at(t_ns);
        publish_window_gauges(&stats);

        // (kind, currently-breached, measured, budget); checks with no
        // budget configured or no data in-window report "not breached".
        let mut checks: [(HealthEventKind, bool, f64, f64); BREACH_KINDS] = [
            (HealthEventKind::ReplanLatency, false, 0.0, 0.0),
            (HealthEventKind::EnergyRegret, false, 0.0, 0.0),
            (HealthEventKind::FallbackRate, false, 0.0, 0.0),
            (HealthEventKind::HeartbeatStale, false, 0.0, 0.0),
            (HealthEventKind::AuditDivergence, false, 0.0, 0.0),
        ];
        if let (Some(budget), Some(p99)) = (self.policy.replan_p99_ns, stats.replan_p99_ns) {
            checks[0] = (
                HealthEventKind::ReplanLatency,
                p99 > budget,
                p99 as f64,
                budget as f64,
            );
        }
        if let (Some(ceiling), Some(regret)) = (self.policy.regret_ceiling, stats.regret) {
            checks[1] = (
                HealthEventKind::EnergyRegret,
                regret > ceiling,
                regret,
                ceiling,
            );
        }
        if let Some(ceiling) = self.policy.fallback_rate_ceiling {
            if stats.replans > 0 {
                checks[2] = (
                    HealthEventKind::FallbackRate,
                    stats.fallback_rate > ceiling,
                    stats.fallback_rate,
                    ceiling,
                );
            }
        }
        if let (Some(timeout), Some(age)) = (self.policy.heartbeat_timeout, stats.heartbeat_age_ns)
        {
            let budget = timeout.as_nanos().min(u64::MAX as u128) as u64;
            checks[3] = (
                HealthEventKind::HeartbeatStale,
                age > budget,
                age as f64,
                budget as f64,
            );
        }
        {
            let d = stats.divergences;
            let inner = self.lock();
            // Divergence is edge-triggered on the cumulative count.
            let breached = d > 0 && !inner.latched[4];
            drop(inner);
            checks[4] = (HealthEventKind::AuditDivergence, breached, d as f64, 0.0);
        }

        let mut fired = Vec::new();
        let mut inner = self.lock();
        inner.windows_evaluated += 1;
        let mut any_breach = false;
        for (kind, breached, measured, budget) in checks {
            let slot = kind.breach_slot().expect("breach kinds only");
            if breached {
                any_breach = true;
                if !inner.latched[slot] {
                    inner.latched[slot] = true;
                    inner.state = HealthState::Degraded;
                    inner.breaches += 1;
                    let event = HealthEvent {
                        kind,
                        at_ns: t_ns,
                        measured,
                        budget,
                        state_after: inner.state,
                    };
                    record_breach_flight(kind);
                    crate::metric_counter!("esched.online.health_breaches").inc();
                    inner.log.push(event.clone());
                    fired.push(event);
                }
            } else if kind != HealthEventKind::AuditDivergence {
                // Condition cleared: unlatch so a later incident re-fires.
                // Divergence stays latched forever — the plan state was
                // provably wrong once; only a restart clears it.
                inner.latched[slot] = false;
            }
        }
        if any_breach {
            inner.clean_streak = 0;
        } else {
            inner.clean_streak = inner.clean_streak.saturating_add(1);
            if inner.state == HealthState::Degraded
                && inner.clean_streak >= self.policy.recover_after
            {
                inner.state = HealthState::Healthy;
                inner.recoveries += 1;
                let event = HealthEvent {
                    kind: HealthEventKind::Recovered,
                    at_ns: t_ns,
                    measured: inner.clean_streak as f64,
                    budget: self.policy.recover_after as f64,
                    state_after: HealthState::Healthy,
                };
                crate::metric_counter!("esched.online.health_recoveries").inc();
                inner.log.push(event.clone());
                fired.push(event);
            }
        }
        crate::metric_gauge!("esched.online.health_state").set(match inner.state {
            HealthState::Healthy => 0.0,
            HealthState::Degraded => 1.0,
        });
        fired
    }

    /// Every event (breach or recovery) emitted so far, oldest first.
    pub fn events(&self) -> Vec<HealthEvent> {
        self.lock().log.clone()
    }

    /// Stamp the full health history as a [`HealthReport`].
    pub fn report_at(&self, t_ns: u64) -> HealthReport {
        let inner = self.lock();
        HealthReport {
            state: inner.state,
            windows_evaluated: inner.windows_evaluated,
            breaches: inner.breaches,
            recoveries: inner.recoveries,
            audits: self.audits(),
            divergences: self.divergences.load(Ordering::Relaxed),
            events: inner.log.clone(),
            stats: {
                drop(inner);
                self.window_stats_at(t_ns)
            },
        }
    }

    /// [`HealthMonitor::report_at`] at the current time.
    pub fn report(&self) -> HealthReport {
        self.report_at(now_ns())
    }
}

/// The stamped JSON artifact summarizing a monitored stream — same
/// header conventions as [`crate::report::RunReport`] (git short SHA and
/// workspace version, stable key order), written next to run outputs.
#[derive(Debug, Clone, PartialEq)]
pub struct HealthReport {
    /// State at stamping time.
    pub state: HealthState,
    /// Policy evaluations performed.
    pub windows_evaluated: u64,
    /// Rising-edge breaches emitted.
    pub breaches: u64,
    /// Recoveries emitted.
    pub recoveries: u64,
    /// Shadow audits completed.
    pub audits: u64,
    /// Shadow-audit divergences (cumulative; any nonzero value means the
    /// live plan drifted from the offline pipeline at least once).
    pub divergences: u64,
    /// The full event log, oldest first.
    pub events: Vec<HealthEvent>,
    /// The windowed measurements at stamping time.
    pub stats: WindowStats,
}

impl HealthReport {
    /// JSON form with the run-report header conventions.
    pub fn to_json(&self) -> Value {
        Value::obj(vec![
            ("kind", Value::Str("health_report".to_string())),
            (
                "git_sha",
                match crate::report::git_short_sha() {
                    Some(sha) => Value::Str(sha.to_string()),
                    None => Value::Null,
                },
            ),
            (
                "esched_version",
                Value::Str(crate::report::esched_version().to_string()),
            ),
            ("state", Value::Str(self.state.as_str().to_string())),
            (
                "windows_evaluated",
                Value::Num(self.windows_evaluated as f64),
            ),
            ("breaches", Value::Num(self.breaches as f64)),
            ("recoveries", Value::Num(self.recoveries as f64)),
            ("audits", Value::Num(self.audits as f64)),
            ("divergences", Value::Num(self.divergences as f64)),
            (
                "events",
                Value::Arr(self.events.iter().map(HealthEvent::to_json).collect()),
            ),
            ("window", self.stats.to_json()),
        ])
    }

    /// Write the report as pretty JSON to `path`.
    ///
    /// # Errors
    /// Propagates filesystem errors.
    pub fn write(&self, path: &std::path::Path) -> std::io::Result<()> {
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        std::fs::write(path, self.to_json().to_string_pretty())
    }
}

fn publish_window_gauges(stats: &WindowStats) {
    if let Some(p50) = stats.replan_p50_ns {
        crate::metric_gauge!("esched.online.replan_p50_ns").set(p50 as f64);
    }
    if let Some(p99) = stats.replan_p99_ns {
        crate::metric_gauge!("esched.online.replan_p99_ns").set(p99 as f64);
    }
    if let Some(p999) = stats.replan_p999_ns {
        crate::metric_gauge!("esched.online.replan_p999_ns").set(p999 as f64);
    }
    crate::metric_gauge!("esched.online.fallback_rate").set(stats.fallback_rate);
    crate::metric_gauge!("esched.online.repair_fraction").set(stats.repair_fraction);
    crate::metric_gauge!("esched.online.window_replans").set(stats.replans as f64);
    if let Some(age) = stats.heartbeat_age_ns {
        crate::metric_gauge!("esched.online.heartbeat_age_ns").set(age as f64);
    }
}

fn record_breach_flight(kind: HealthEventKind) {
    use crate::recorder::{name_id, record, FlightKind, NameId};
    static NAMES: OnceLock<[NameId; BREACH_KINDS]> = OnceLock::new();
    let names = NAMES.get_or_init(|| {
        [
            name_id("health_breach_replan_latency"),
            name_id("health_breach_energy_regret"),
            name_id("health_breach_fallback_rate"),
            name_id("health_breach_heartbeat_stale"),
            name_id("health_breach_audit_divergence"),
        ]
    });
    if let Some(slot) = kind.breach_slot() {
        record(FlightKind::Event, names[slot], 1);
    }
}

/// Register `# HELP` strings for every `esched.online.*` health metric
/// (idempotent; called from [`HealthMonitor::new`]).
fn describe_health_metrics() {
    use crate::metrics::describe;
    describe(
        "esched.online.energy_regret",
        "Latest shadow-audit energy regret of the live plan: (live energy - E^OPT) / E^OPT",
    );
    describe("esched.online.audits", "Shadow audits completed");
    describe(
        "esched.online.audit_divergences",
        "Shadow audits whose from-scratch offline recompute diverged from the live plan",
    );
    describe(
        "esched.online.replan_p50_ns",
        "Windowed replan latency p50 in nanoseconds",
    );
    describe(
        "esched.online.replan_p99_ns",
        "Windowed replan latency p99 in nanoseconds",
    );
    describe(
        "esched.online.replan_p999_ns",
        "Windowed replan latency p999 in nanoseconds",
    );
    describe(
        "esched.online.fallback_rate",
        "Windowed fraction of replans that fell back to a full recompute",
    );
    describe(
        "esched.online.repair_fraction",
        "Windowed repaired-columns / total-columns fraction",
    );
    describe(
        "esched.online.heartbeat_age_ns",
        "Age of the online engine's last heartbeat in nanoseconds",
    );
    describe(
        "esched.online.health_state",
        "Watchdog state: 0 = healthy, 1 = degraded",
    );
    describe(
        "esched.online.health_breaches",
        "Rising-edge SLO breaches emitted by the watchdog",
    );
    describe(
        "esched.online.health_recoveries",
        "Watchdog recoveries to the healthy state",
    );
    describe(
        "esched.online.window_replans",
        "Replans observed in the current SLO window",
    );
    describe(
        "esched.online.audits_skipped",
        "Sampled shadow audits dropped because the audit worker was still busy",
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    const S: u64 = 1_000_000_000;

    #[test]
    fn bucket_index_is_monotone_and_bounds_consistent() {
        let mut prev = 0usize;
        for v in [0u64, 1, 5, 15, 16, 17, 31, 32, 100, 1000, 1 << 20, u64::MAX] {
            let i = bucket_index(v);
            assert!(i >= prev, "index not monotone at {v}");
            prev = i;
            let (lo, hi) = bucket_bounds(i);
            assert!(lo <= v && v <= hi, "{v} outside bucket [{lo},{hi}]");
            assert!(i < NUM_BUCKETS);
        }
        // Bucket edges are contiguous: every bucket's hi + 1 = next lo.
        for i in 0..NUM_BUCKETS - 1 {
            let (_, hi) = bucket_bounds(i);
            let (lo_next, _) = bucket_bounds(i + 1);
            if hi != u64::MAX {
                assert_eq!(hi + 1, lo_next, "gap after bucket {i}");
            }
        }
    }

    #[test]
    fn sketch_quantiles_on_a_known_stream() {
        let sk = WindowedSketch::new(Duration::from_secs(8), 8);
        for v in 1..=1000u64 {
            sk.record_at(S, v);
        }
        let m = sk.merged_at(S);
        assert_eq!(m.count(), 1000);
        let p50 = m.quantile(0.5).unwrap() as f64;
        assert!((p50 - 500.0).abs() / 500.0 < 0.07, "p50 {p50}");
        let p99 = m.quantile(0.99).unwrap() as f64;
        assert!((p99 - 990.0).abs() / 990.0 < 0.07, "p99 {p99}");
        assert!(m.quantile(0.0).unwrap() <= 2);
    }

    #[test]
    fn sketch_window_expires() {
        let sk = WindowedSketch::new(Duration::from_secs(8), 8);
        sk.record_at(S, 42);
        assert_eq!(sk.merged_at(S).count(), 1);
        // Still visible inside the window…
        assert_eq!(sk.merged_at(S + 7 * S).count(), 1);
        // …gone once the window slides past.
        assert_eq!(sk.merged_at(S + 9 * S).count(), 0);
    }

    #[test]
    fn windowed_counter_rotates_and_sums() {
        let c = WindowedCounter::new(Duration::from_secs(4), 4);
        c.add_at(S, 3);
        c.add_at(2 * S, 4);
        assert_eq!(c.sum_at(2 * S), 7);
        assert_eq!(c.sum_at(6 * S), 4, "first cell expired");
        assert_eq!(c.sum_at(20 * S), 0, "all expired");
        // Ancient adds are dropped once the ring lapped them.
        c.add_at(20 * S, 1);
        c.add_at(S, 100);
        assert_eq!(c.sum_at(20 * S), 1);
    }

    #[test]
    fn monitor_latency_breach_fires_once_and_recovers() {
        let policy = SloPolicy::new(Duration::from_secs(8))
            .with_replan_p99(Duration::from_millis(1))
            .with_recover_after(2);
        let mon = HealthMonitor::new(policy);
        // Clean window: well under budget.
        for k in 0..100 {
            mon.observe_replan_at(S + k, 100_000, 1, 10, false);
        }
        assert!(mon.evaluate_at(S + 200).is_empty());
        assert_eq!(mon.state(), HealthState::Healthy);
        // Slow burst: p99 over 1 ms.
        for k in 0..100 {
            mon.observe_replan_at(2 * S + k, 5_000_000, 1, 10, false);
        }
        let fired = mon.evaluate_at(2 * S + 200);
        assert_eq!(fired.len(), 1);
        assert_eq!(fired[0].kind, HealthEventKind::ReplanLatency);
        assert_eq!(mon.state(), HealthState::Degraded);
        // Latched: a second evaluation of the same condition is silent.
        assert!(mon.evaluate_at(2 * S + 400).is_empty());
        // The burst expires from the window; two clean windows recover.
        let t = 2 * S + 10 * S;
        mon.observe_replan_at(t, 100_000, 1, 10, false);
        assert!(mon.evaluate_at(t).is_empty());
        let fired = mon.evaluate_at(t + 1000);
        assert_eq!(fired.len(), 1);
        assert_eq!(fired[0].kind, HealthEventKind::Recovered);
        assert_eq!(mon.state(), HealthState::Healthy);
    }

    #[test]
    fn monitor_heartbeat_and_regret_checks() {
        let policy = SloPolicy::new(Duration::from_secs(8))
            .with_heartbeat_timeout(Duration::from_secs(2))
            .with_regret_ceiling(0.10);
        let mon = HealthMonitor::new(policy);
        // No heartbeat ever seen → staleness unknown → no alert.
        assert!(mon.evaluate_at(S).is_empty());
        mon.heartbeat_at(S);
        assert!(mon.evaluate_at(S + 1).is_empty());
        // 5 s of silence trips the heartbeat check.
        let fired = mon.evaluate_at(S + 5 * S);
        assert_eq!(fired.len(), 1);
        assert_eq!(fired[0].kind, HealthEventKind::HeartbeatStale);
        // Healthy regret below the ceiling adds nothing new.
        mon.observe_audit(0.02, false);
        mon.heartbeat_at(S + 5 * S);
        assert!(mon.evaluate_at(S + 5 * S + 1).is_empty());
        // Regret above the ceiling fires.
        mon.observe_audit(0.5, false);
        let fired = mon.evaluate_at(S + 5 * S + 2);
        assert_eq!(fired.len(), 1);
        assert_eq!(fired[0].kind, HealthEventKind::EnergyRegret);
        assert!(mon.regret().unwrap() > 0.4);
    }

    #[test]
    fn monitor_divergence_latches_forever() {
        let mon = HealthMonitor::new(SloPolicy::new(Duration::from_secs(4)));
        mon.observe_audit(0.0, true);
        let fired = mon.evaluate_at(S);
        assert_eq!(fired.len(), 1);
        assert_eq!(fired[0].kind, HealthEventKind::AuditDivergence);
        // Never re-fires, never unlatches (no recovery from divergence
        // alone is still possible via clean windows, but the latch keeps
        // the event from repeating).
        assert!(mon.evaluate_at(2 * S).is_empty());
        let report = mon.report_at(2 * S);
        assert_eq!(report.divergences, 1);
        assert_eq!(report.breaches, 1);
    }

    #[test]
    fn maybe_evaluate_is_rate_limited() {
        let mon = HealthMonitor::new(SloPolicy::new(Duration::from_secs(8)));
        let first = mon.maybe_evaluate_at(S);
        assert!(first.is_empty()); // clean, but it did evaluate…
        let evaluated = mon.report_at(S).windows_evaluated;
        assert_eq!(evaluated, 1);
        // …and an immediate re-poll does not evaluate again.
        mon.maybe_evaluate_at(S + 1);
        assert_eq!(mon.report_at(S).windows_evaluated, 1);
        // A full sub-window later it does.
        mon.maybe_evaluate_at(S + mon.replan_ns.sub_window_ns() + 1);
        assert_eq!(mon.report_at(S).windows_evaluated, 2);
    }

    #[test]
    fn report_json_shape() {
        let mon =
            HealthMonitor::new(SloPolicy::new(Duration::from_secs(4)).with_regret_ceiling(0.05));
        mon.observe_replan_at(S, 1_000, 2, 10, true);
        mon.observe_audit(0.5, false);
        mon.evaluate_at(S + 1);
        let j = mon.report_at(S + 1).to_json();
        assert_eq!(j.get("kind").unwrap().as_str(), Some("health_report"));
        assert_eq!(j.get("state").unwrap().as_str(), Some("degraded"));
        assert_eq!(j.get("breaches").unwrap().as_u64(), Some(1));
        let events = j.get("events").unwrap().as_array().unwrap();
        assert_eq!(events.len(), 1);
        assert_eq!(
            events[0].get("kind").unwrap().as_str(),
            Some("energy_regret")
        );
        assert!(j.get("window").unwrap().get("fallback_rate").is_some());
    }
}
