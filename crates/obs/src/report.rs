//! Structured run reports: the machine-readable artifact a Monte-Carlo
//! experiment writes next to its figure outputs.
//!
//! A [`RunReport`] collects one [`TrialRecord`] per trial and aggregates
//! them into wall-time percentiles, solver-iteration histograms, and a
//! clean-simulation rate. The JSON layout is stable (insertion-ordered
//! keys) so CI can parse it and assert on its contents.

use crate::json::Value;
use crate::stats::{Log2Histogram, Summary};
use std::io;
use std::path::{Path, PathBuf};
use std::sync::OnceLock;

/// The git short SHA of the working tree, if `git` is available and the
/// process runs inside a repository. Cached for the process lifetime —
/// every report and benchmark artifact in one run should carry the same
/// stamp. Report files and `BENCH_<sha>.json` entries join on this key.
pub fn git_short_sha() -> Option<&'static str> {
    static SHA: OnceLock<Option<String>> = OnceLock::new();
    SHA.get_or_init(|| {
        let out = std::process::Command::new("git")
            .args(["rev-parse", "--short", "HEAD"])
            .output()
            .ok()?;
        if !out.status.success() {
            return None;
        }
        let sha = String::from_utf8(out.stdout).ok()?.trim().to_string();
        (!sha.is_empty()).then_some(sha)
    })
    .as_deref()
}

/// The workspace version baked into this build (all `esched-*` crates
/// share the workspace version, so this is "the esched version").
pub fn esched_version() -> &'static str {
    env!("CARGO_PKG_VERSION")
}

/// The worker count engine batches in this process will use: the
/// `ESCHED_ENGINE_THREADS` override when set (and ≥ 1), else available
/// parallelism. Mirrors the engine's own sizing rule (this crate sits
/// below `esched-engine`, so the logic is duplicated rather than
/// imported); stamped into report headers so reports from different pool
/// sizes are distinguishable when diffing.
pub fn engine_workers() -> usize {
    std::env::var("ESCHED_ENGINE_THREADS")
        .ok()
        .and_then(|s| s.trim().parse::<usize>().ok())
        .filter(|&n| n >= 1)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        })
}

/// Every `ESCHED_*` environment variable currently set, sorted by name.
/// Captured into report headers: the workspace's env knobs (threads, log
/// filter, flight recorder, reference-path toggles) all change what a run
/// measures, so two reports should never be compared without them.
pub fn esched_env() -> Vec<(String, String)> {
    let mut vars: Vec<(String, String)> = std::env::vars()
        .filter(|(k, _)| k.starts_with("ESCHED_"))
        .collect();
    vars.sort();
    vars
}

/// Telemetry of one Monte-Carlo trial.
#[derive(Debug, Clone, PartialEq)]
pub struct TrialRecord {
    /// Trial index within the run.
    pub trial: u64,
    /// RNG seed the trial used.
    pub seed: u64,
    /// Total solver iterations spent in this trial.
    pub solver_iters: u64,
    /// Number of duality-gap evaluations.
    pub gap_evals: u64,
    /// Did every solve in the trial converge (vs. hitting the cap)?
    pub converged: bool,
    /// Final certified duality gap (worst across solves in the trial).
    pub final_gap: f64,
    /// Wall time spent solving, in seconds.
    pub solve_wall_s: f64,
    /// Did the trial's simulated schedules run clean (no misses or
    /// conflicts)? `None` when the trial did not simulate.
    pub sim_clean: Option<bool>,
    /// Experiment-specific extras (e.g. the NEC values of the trial).
    pub extra: Vec<(String, Value)>,
}

impl TrialRecord {
    /// A blank record for `trial`/`seed`, to be filled in.
    pub fn new(trial: u64, seed: u64) -> Self {
        Self {
            trial,
            seed,
            solver_iters: 0,
            gap_evals: 0,
            converged: true,
            final_gap: 0.0,
            solve_wall_s: 0.0,
            sim_clean: None,
            extra: Vec::new(),
        }
    }

    fn to_json(&self) -> Value {
        let mut pairs = vec![
            ("trial".to_string(), Value::Num(self.trial as f64)),
            ("seed".to_string(), Value::Num(self.seed as f64)),
            (
                "solver_iters".to_string(),
                Value::Num(self.solver_iters as f64),
            ),
            ("gap_evals".to_string(), Value::Num(self.gap_evals as f64)),
            ("converged".to_string(), Value::Bool(self.converged)),
            ("final_gap".to_string(), Value::Num(self.final_gap)),
            ("solve_wall_s".to_string(), Value::Num(self.solve_wall_s)),
            (
                "sim_clean".to_string(),
                match self.sim_clean {
                    Some(b) => Value::Bool(b),
                    None => Value::Null,
                },
            ),
        ];
        pairs.extend(self.extra.iter().map(|(k, v)| (k.clone(), v.clone())));
        Value::Obj(pairs)
    }
}

/// A full experiment run: metadata plus per-trial records.
#[derive(Debug, Clone, PartialEq)]
pub struct RunReport {
    /// Experiment name (`fig6`, `table2`, …).
    pub name: String,
    /// Free-form metadata (config echoes, sweep parameters).
    pub meta: Vec<(String, Value)>,
    /// One record per trial.
    pub trials: Vec<TrialRecord>,
}

impl RunReport {
    /// An empty report for `name`.
    pub fn new(name: &str) -> Self {
        Self {
            name: name.to_string(),
            meta: Vec::new(),
            trials: Vec::new(),
        }
    }

    /// Attach a metadata entry.
    pub fn with_meta(mut self, key: &str, value: Value) -> Self {
        self.meta.push((key.to_string(), value));
        self
    }

    /// Append one trial.
    pub fn push(&mut self, record: TrialRecord) {
        self.trials.push(record);
    }

    /// Fraction of simulated trials that ran clean (1.0 when none
    /// simulated, so non-simulating experiments read as trivially clean).
    pub fn clean_sim_rate(&self) -> f64 {
        let simulated: Vec<bool> = self.trials.iter().filter_map(|t| t.sim_clean).collect();
        if simulated.is_empty() {
            1.0
        } else {
            simulated.iter().filter(|&&c| c).count() as f64 / simulated.len() as f64
        }
    }

    /// The aggregate block: percentiles, histograms, rates.
    pub fn aggregate(&self) -> Value {
        let wall: Vec<f64> = self.trials.iter().map(|t| t.solve_wall_s).collect();
        let iters: Vec<f64> = self.trials.iter().map(|t| t.solver_iters as f64).collect();
        let gaps: Vec<f64> = self.trials.iter().map(|t| t.final_gap).collect();
        let mut hist = Log2Histogram::new();
        for t in &self.trials {
            hist.add(t.solver_iters);
        }
        let converged = self.trials.iter().filter(|t| t.converged).count();
        let denom = self.trials.len().max(1) as f64;
        Value::obj(vec![
            ("trials", Value::Num(self.trials.len() as f64)),
            ("solve_wall_s", Summary::of(&wall).to_json()),
            ("solver_iters", Summary::of(&iters).to_json()),
            ("iters_histogram", hist.to_json()),
            ("final_gap", Summary::of(&gaps).to_json()),
            ("converged_rate", Value::Num(converged as f64 / denom)),
            ("clean_sim_rate", Value::Num(self.clean_sim_rate())),
        ])
    }

    /// Full JSON form: name, build identity (git short SHA and esched
    /// version, so report files join against `BENCH_<sha>.json` entries),
    /// meta, aggregate, per-trial records.
    pub fn to_json(&self) -> Value {
        let mut pairs = vec![
            ("name".to_string(), Value::Str(self.name.clone())),
            (
                "git_sha".to_string(),
                match git_short_sha() {
                    Some(sha) => Value::Str(sha.to_string()),
                    None => Value::Null,
                },
            ),
            (
                "esched_version".to_string(),
                Value::Str(esched_version().to_string()),
            ),
            ("workers".to_string(), Value::Num(engine_workers() as f64)),
            (
                "env".to_string(),
                Value::Obj(
                    esched_env()
                        .into_iter()
                        .map(|(k, v)| (k, Value::Str(v)))
                        .collect(),
                ),
            ),
        ];
        if !self.meta.is_empty() {
            pairs.push(("meta".to_string(), Value::Obj(self.meta.clone())));
        }
        pairs.push(("aggregate".to_string(), self.aggregate()));
        pairs.push((
            "trials".to_string(),
            Value::Arr(self.trials.iter().map(TrialRecord::to_json).collect()),
        ));
        Value::Obj(pairs)
    }

    /// Write the report as `<dir>/<name>.report.json` and return the path.
    ///
    /// # Errors
    /// Propagates filesystem errors.
    pub fn write_to_dir(&self, dir: &Path) -> io::Result<PathBuf> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(format!("{}.report.json", self.name));
        std::fs::write(&path, self.to_json().to_string_pretty())?;
        Ok(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;

    fn sample_report() -> RunReport {
        let mut r = RunReport::new("fig6").with_meta("cores", Value::Num(4.0));
        for k in 0..4u64 {
            let mut t = TrialRecord::new(k, 2014 + k);
            t.solver_iters = 100 * (k + 1);
            t.gap_evals = 10 * (k + 1);
            t.converged = k != 3;
            t.final_gap = 1e-8 * (k + 1) as f64;
            t.solve_wall_s = 0.01 * (k + 1) as f64;
            t.sim_clean = Some(k != 2);
            t.extra.push(("nec_f2".to_string(), Value::Num(1.05)));
            r.push(t);
        }
        r
    }

    #[test]
    fn aggregate_rates_and_percentiles() {
        let r = sample_report();
        let agg = r.aggregate();
        assert_eq!(agg.get("trials").unwrap().as_u64(), Some(4));
        assert_eq!(agg.get("converged_rate").unwrap().as_f64(), Some(0.75));
        assert_eq!(agg.get("clean_sim_rate").unwrap().as_f64(), Some(0.75));
        let wall = agg.get("solve_wall_s").unwrap();
        assert_eq!(wall.get("max").unwrap().as_f64(), Some(0.04));
        assert_eq!(wall.get("p50").unwrap().as_f64(), Some(0.02));
        assert!(agg.get("iters_histogram").unwrap().get("le_128").is_some());
    }

    #[test]
    fn json_round_trips_through_parser() {
        let r = sample_report();
        let text = r.to_json().to_string_pretty();
        let v = parse(&text).unwrap();
        assert_eq!(v.get("name").unwrap().as_str(), Some("fig6"));
        // Header carries the build identity keys (git SHA may be null in
        // a non-repo environment, but the key must exist).
        assert!(v.get("git_sha").is_some());
        assert_eq!(
            v.get("esched_version").unwrap().as_str(),
            Some(esched_version())
        );
        // Pool-size and env capture: workers ≥ 1 always; the env object
        // exists and holds only ESCHED_* keys.
        assert!(v.get("workers").unwrap().as_u64().unwrap() >= 1);
        let env = v.get("env").unwrap();
        if let Value::Obj(pairs) = env {
            assert!(pairs.iter().all(|(k, _)| k.starts_with("ESCHED_")));
        } else {
            panic!("env header must be an object");
        }
        assert_eq!(
            v.get("meta").unwrap().get("cores").unwrap().as_u64(),
            Some(4)
        );
        let trials = v.get("trials").unwrap().as_array().unwrap();
        assert_eq!(trials.len(), 4);
        assert_eq!(trials[1].get("solver_iters").unwrap().as_u64(), Some(200));
        assert_eq!(trials[0].get("nec_f2").unwrap().as_f64(), Some(1.05));
    }

    #[test]
    fn empty_and_unsimulated_reports() {
        let r = RunReport::new("empty");
        assert_eq!(r.clean_sim_rate(), 1.0);
        let agg = r.aggregate();
        assert_eq!(agg.get("trials").unwrap().as_u64(), Some(0));
        // No trials → converged_rate 0/1 = 0, but it must not NaN.
        assert!(agg
            .get("converged_rate")
            .unwrap()
            .as_f64()
            .unwrap()
            .is_finite());
    }

    #[test]
    fn write_to_dir_emits_parseable_file() {
        let dir = std::env::temp_dir().join("esched-report-test");
        let path = sample_report().write_to_dir(&dir).unwrap();
        assert!(path.ends_with("fig6.report.json"));
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(parse(&text).is_ok());
        std::fs::remove_file(&path).ok();
    }
}
