//! The std-only work-stealing thread pool.
//!
//! No third-party dependencies: per-worker `Mutex<VecDeque>` deques on
//! `std::thread::scope` scoped threads. Jobs are distributed round-robin;
//! a worker drains its own deque from the front and, when empty, steals
//! from the *back* of its neighbours' deques. Results are indexed by
//! submission order, so the output is identical regardless of worker
//! count or steal interleaving — the property the engine's determinism
//! test pins.
//!
//! The pool lives here, below every algorithm crate, so all three
//! parallel consumers can share one implementation:
//!
//! * `esched-engine` fans whole schedule requests across it,
//! * `esched-core`'s allocator fans heavy subinterval ranges of *one*
//!   instance across it ([`Pool::batch_map_with`] with the allocator's
//!   scratch arena as the worker context), and
//! * `esched-opt`'s decomposed ADMM solver fans per-task subproblems
//!   across it every round ([`Pool::scoped_run`]).
//!
//! Worker-local state is generic: [`Pool::batch_map_with`] threads a
//! per-worker context built by a caller-supplied factory through every
//! job (the `esched-core` wrapper instantiates it with `Scratch`), while
//! [`Pool::scoped_run`] is the context-free variant for borrowed-slice
//! fan-out where a panic should propagate instead of being collected.
//! Metric names keep the historical `esched.engine.*` prefix —
//! dashboards and the obs smoke tests predate the moves.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use crate::{metric_counter, metric_gauge, metric_histogram};

/// A batch executor with a fixed worker count.
///
/// The pool is stateless between batches (workers and their contexts live
/// only for the duration of one batch call), so it is cheap to construct
/// and freely shareable.
#[derive(Debug, Clone)]
pub struct Pool {
    threads: usize,
}

/// A job submitted to the pool panicked. The index is the job's position
/// in the submitted batch; the message is the panic payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PoolError {
    /// Index of the failed job within its batch.
    pub index: usize,
    /// Stringified panic payload.
    pub message: String,
}

impl std::fmt::Display for PoolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "job {} panicked: {}", self.index, self.message)
    }
}

impl std::error::Error for PoolError {}

impl Default for Pool {
    fn default() -> Self {
        Self::new()
    }
}

impl Pool {
    /// A pool sized by the `ESCHED_ENGINE_THREADS` environment variable
    /// when set (and ≥ 1), else by the machine's available parallelism.
    pub fn new() -> Self {
        let threads = std::env::var("ESCHED_ENGINE_THREADS")
            .ok()
            .and_then(|s| s.trim().parse::<usize>().ok())
            .filter(|&n| n >= 1)
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1)
            });
        Self { threads }
    }

    /// A pool with exactly `threads` workers (clamped to ≥ 1).
    pub fn with_threads(threads: usize) -> Self {
        Self {
            threads: threads.max(1),
        }
    }

    /// The worker count batches will use.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Run one job on the calling thread (no pool) with the same panic
    /// isolation as a batch, against a fresh context from `ctx`.
    pub fn run_one_with<C, T>(
        &self,
        ctx: impl Fn() -> C,
        f: impl FnOnce(&mut C) -> T,
    ) -> Result<T, PoolError> {
        let slot = std::cell::Cell::new(Some(f));
        run_job(
            &mut ctx(),
            &ctx,
            &|c: &mut C, ()| (slot.take().expect("run_one job invoked once"))(c),
            0,
            (),
        )
    }

    /// Generic batch execution: apply `f` to every item, in parallel,
    /// with a per-worker context built by `ctx` threaded through so
    /// pipelines reuse buffers across items.
    ///
    /// Results are ordered by item index. A panic inside `f` becomes an
    /// `Err(PoolError)` for that item only; the worker's context is
    /// rebuilt and the worker keeps draining the batch.
    pub fn batch_map_with<C, I, T, F, G>(
        &self,
        ctx: G,
        items: Vec<I>,
        f: F,
    ) -> Vec<Result<T, PoolError>>
    where
        I: Send,
        T: Send,
        F: Fn(&mut C, I) -> T + Sync,
        G: Fn() -> C + Sync,
    {
        let n = items.len();
        if n == 0 {
            return Vec::new();
        }
        let workers = self.threads.min(n).max(1);
        let _span = crate::span!(
            crate::Level::Debug,
            "engine_batch",
            jobs = n,
            workers = workers,
        );
        metric_counter!("esched.engine.batches").inc();
        metric_counter!("esched.engine.jobs").add(n as u64);
        metric_gauge!("esched.engine.workers").set(workers as f64);
        metric_gauge!("esched.engine.queue_depth").set_max(n as f64);
        let t0 = Instant::now();

        let out = if workers == 1 {
            // Serial fast path: same semantics, no pool overhead.
            let mut c = ctx();
            items
                .into_iter()
                .enumerate()
                .map(|(i, item)| run_job(&mut c, &ctx, &f, i, item))
                .collect()
        } else {
            self.run_pool(items, workers, &ctx, &f)
        };

        metric_histogram!("esched.engine.batch_wall_ns").record_duration(t0.elapsed());
        out
    }

    /// Fan borrowed jobs across the pool and return the results in
    /// submission order, re-raising the first (lowest-index) panic on the
    /// caller.
    ///
    /// This is the intra-solve primitive: callers hand out disjoint
    /// `&mut` slices of one working vector (deterministic chunking), each
    /// job computes independently of every other, and the merged output
    /// is byte-identical at any worker count. Unlike
    /// [`Pool::batch_map_with`] there is no per-worker context and no
    /// per-job error collection — a panicking subproblem means the solve
    /// itself is broken, so it propagates.
    pub fn scoped_run<I, T, F>(&self, items: Vec<I>, f: F) -> Vec<T>
    where
        I: Send,
        T: Send,
        F: Fn(I) -> T + Sync,
    {
        let out = self.batch_map_with(|| (), items, |(), item| f(item));
        out.into_iter()
            .map(|r| match r {
                Ok(v) => v,
                Err(e) => panic!("scoped_run job {} panicked: {}", e.index, e.message),
            })
            .collect()
    }

    fn run_pool<C, I, T, F, G>(
        &self,
        items: Vec<I>,
        workers: usize,
        ctx: &G,
        f: &F,
    ) -> Vec<Result<T, PoolError>>
    where
        I: Send,
        T: Send,
        F: Fn(&mut C, I) -> T + Sync,
        G: Fn() -> C + Sync,
    {
        let n = items.len();
        let deques: Vec<Mutex<VecDeque<(usize, I)>>> =
            (0..workers).map(|_| Mutex::new(VecDeque::new())).collect();
        for (i, item) in items.into_iter().enumerate() {
            deques[i % workers]
                .lock()
                .expect("fresh deque")
                .push_back((i, item));
        }
        let results: Mutex<Vec<Option<Result<T, PoolError>>>> =
            Mutex::new((0..n).map(|_| None).collect());
        let steals = AtomicU64::new(0);

        std::thread::scope(|scope| {
            for w in 0..workers {
                let deques = &deques;
                let results = &results;
                let steals = &steals;
                scope.spawn(move || {
                    let mut c = ctx();
                    let mut local: Vec<(usize, Result<T, PoolError>)> = Vec::new();
                    let worker_start = Instant::now();
                    let mut busy_ns = 0u64;
                    loop {
                        // Own deque first (front), then steal from the
                        // back of the neighbours'. Nothing is ever
                        // re-queued, so "every deque empty" terminates.
                        let mut job = deques[w].lock().expect("worker deque").pop_front();
                        if job.is_none() {
                            for off in 1..workers {
                                let victim = (w + off) % workers;
                                job = deques[victim].lock().expect("victim deque").pop_back();
                                if job.is_some() {
                                    steals.fetch_add(1, Ordering::Relaxed);
                                    crate::flight_event!("engine_steal", victim as u64);
                                    break;
                                }
                            }
                        }
                        let Some((index, item)) = job else { break };
                        let t_job = Instant::now();
                        local.push((index, run_job(&mut c, ctx, f, index, item)));
                        busy_ns += t_job.elapsed().as_nanos() as u64;
                    }
                    // Fraction of this worker's lifetime spent inside jobs
                    // (the rest is deque contention and steal probing).
                    // Dynamic name → cold registry path; once per worker
                    // per batch, not per job.
                    let wall_ns = worker_start.elapsed().as_nanos().max(1) as u64;
                    crate::metrics::gauge(&format!("esched.engine.worker_util.w{w}"))
                        .set(busy_ns as f64 / wall_ns as f64);
                    let mut slots = results.lock().expect("results vector");
                    for (index, result) in local {
                        slots[index] = Some(result);
                    }
                });
            }
        });

        let stolen = steals.load(Ordering::Relaxed);
        metric_counter!("esched.engine.steals").add(stolen);
        metric_gauge!("esched.engine.steal_rate").set(stolen as f64 / n as f64);
        results
            .into_inner()
            .expect("pool threads joined")
            .into_iter()
            .map(|slot| slot.expect("every job index is filled exactly once"))
            .collect()
    }
}

/// Run one job with panic isolation; used by both the serial path and the
/// pool workers.
fn run_job<C, I, T, F, G>(c: &mut C, ctx: &G, f: &F, index: usize, item: I) -> Result<T, PoolError>
where
    F: Fn(&mut C, I) -> T,
    G: Fn() -> C,
{
    let t0 = Instant::now();
    let result = catch_unwind(AssertUnwindSafe(|| f(c, item)));
    metric_histogram!("esched.engine.job_wall_ns").record_duration(t0.elapsed());
    match result {
        Ok(value) => Ok(value),
        Err(payload) => {
            metric_counter!("esched.engine.panics").inc();
            crate::flight_event!("engine_job_panic", index as u64);
            // Post-mortem flight dump: a no-op unless ESCHED_FLIGHT_DIR
            // is set, so tests that expect panics don't spray files.
            let _ = crate::recorder::dump_post_mortem("engine job panic");
            // The panic may have left half-taken buffers behind; rebuild
            // the context rather than reason about their state.
            *c = ctx();
            Err(PoolError {
                index,
                message: panic_message(payload),
            })
        }
    }
}

/// Stringify a panic payload (the common `&str` / `String` cases).
pub fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batch_map_orders_results_by_submission_index() {
        let pool = Pool::with_threads(4);
        let items: Vec<usize> = (0..64).collect();
        let out = pool.batch_map_with(|| (), items, |_c, i| i * 2);
        for (i, r) in out.iter().enumerate() {
            assert_eq!(*r.as_ref().unwrap(), i * 2);
        }
    }

    #[test]
    fn panicking_job_is_isolated_and_context_rebuilt() {
        let pool = Pool::with_threads(2);
        // The context counts jobs it has survived; a panic rebuilds it.
        let out = pool.batch_map_with(
            || 0usize,
            vec![0usize, 1, 2],
            |seen, i| {
                *seen += 1;
                if i == 1 {
                    panic!("boom {i}");
                }
                i
            },
        );
        assert_eq!(*out[0].as_ref().unwrap(), 0);
        assert_eq!(out[1].as_ref().unwrap_err().index, 1);
        assert!(out[1].as_ref().unwrap_err().message.contains("boom"));
        assert_eq!(*out[2].as_ref().unwrap(), 2);
    }

    #[test]
    fn run_one_catches_panics() {
        let pool = Pool::with_threads(1);
        assert_eq!(pool.run_one_with(|| (), |_c| 7).unwrap(), 7);
        let err = pool
            .run_one_with(|| (), |_c: &mut ()| -> () { panic!("solo") })
            .unwrap_err();
        assert!(err.message.contains("solo"));
    }

    #[test]
    fn scoped_run_merges_disjoint_slices_identically_at_any_width() {
        let reference: Vec<f64> = (0..1000).map(|k| (k as f64).sin()).collect();
        let mut outputs = Vec::new();
        for threads in [1usize, 4, 8] {
            let pool = Pool::with_threads(threads);
            let mut x = vec![0.0f64; 1000];
            {
                let mut rest = x.as_mut_slice();
                let mut jobs = Vec::new();
                let mut base = 0usize;
                while !rest.is_empty() {
                    let take = rest.len().min(64);
                    let (head, tail) = rest.split_at_mut(take);
                    jobs.push((base, head));
                    rest = tail;
                    base += take;
                }
                pool.scoped_run(jobs, |(base, slice): (usize, &mut [f64])| {
                    for (k, v) in slice.iter_mut().enumerate() {
                        *v = ((base + k) as f64).sin();
                    }
                });
            }
            outputs.push(x);
        }
        for x in &outputs {
            assert_eq!(
                x.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                reference.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
            );
        }
    }

    #[test]
    #[should_panic(expected = "scoped_run job 1 panicked")]
    fn scoped_run_propagates_the_first_panic() {
        let pool = Pool::with_threads(2);
        let _ = pool.scoped_run(vec![0usize, 1, 2], |i| {
            if i == 1 {
                panic!("subproblem diverged");
            }
            i
        });
    }
}
