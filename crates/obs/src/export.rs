//! Continuous metrics export: a background sampler thread that turns the
//! process-global [`crate::metrics`] registry into two on-disk artifacts
//! a service operator can tail while the engine runs:
//!
//! * **JSONL time series** — one line per sampling tick holding the
//!   [`crate::metrics::Snapshot::delta_since`] the previous tick
//!   (counters and histograms as deltas, gauges as current values),
//!   stamped with a sequence number, wall-clock unix milliseconds, and
//!   seconds since the exporter started;
//! * **Prometheus-style text exposition** — the full current snapshot
//!   rewritten every tick in the text format scrapers understand
//!   (`# TYPE` lines, `_bucket{le="…"}`/`_sum`/`_count` for histograms,
//!   metric names with `.` mapped to `_`).
//!
//! The sampler wakes on an interval, never blocks recorders (snapshots
//! are relaxed atomic reads), and takes one final sample on
//! [`Exporter::stop`] so short runs still produce at least one line.

use crate::json::Value;
use crate::metrics::{self, Metric, Snapshot};
use std::io::Write;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant, SystemTime};

/// Where and how often the exporter samples.
#[derive(Debug, Clone)]
pub struct ExporterConfig {
    /// Sampling interval.
    pub interval: Duration,
    /// Path of the JSONL time-series file (appended, one line per tick).
    pub jsonl_path: PathBuf,
    /// Path of the Prometheus exposition file (rewritten every tick);
    /// `None` skips the exposition.
    pub prom_path: Option<PathBuf>,
}

impl ExporterConfig {
    /// Sample every `interval` into `<dir>/metrics.jsonl` and
    /// `<dir>/metrics.prom`.
    pub fn into_dir(dir: &std::path::Path, interval: Duration) -> Self {
        Self {
            interval,
            jsonl_path: dir.join("metrics.jsonl"),
            prom_path: Some(dir.join("metrics.prom")),
        }
    }
}

/// Handle to a running background sampler. Dropping without calling
/// [`Exporter::stop`] also shuts the thread down, but discards the final
/// sample's I/O result.
#[derive(Debug)]
pub struct Exporter {
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<std::io::Result<u64>>>,
}

impl Exporter {
    /// Start sampling per `cfg`. Creates the output directory as needed
    /// and truncates a pre-existing JSONL file so every run's series
    /// starts at sequence 0.
    ///
    /// # Errors
    /// Fails if the JSONL file cannot be created.
    pub fn start(cfg: ExporterConfig) -> std::io::Result<Self> {
        if let Some(parent) = cfg.jsonl_path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        let mut jsonl = std::fs::File::create(&cfg.jsonl_path)?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = Arc::clone(&stop);
        // Baseline taken synchronously: the series' deltas are "since
        // start() returned", not "since the thread got scheduled".
        let baseline = metrics::snapshot();
        let handle = std::thread::Builder::new()
            .name("esched-exporter".to_string())
            .spawn(move || -> std::io::Result<u64> {
                let t0 = Instant::now();
                let mut prev = baseline;
                let mut seq = 0u64;
                loop {
                    let stopping = stop_flag.load(Ordering::Relaxed);
                    if !stopping {
                        // Sleep in small slices so stop() is prompt even
                        // with second-scale intervals.
                        let deadline = Instant::now() + cfg.interval;
                        while Instant::now() < deadline && !stop_flag.load(Ordering::Relaxed) {
                            std::thread::sleep(cfg.interval.min(Duration::from_millis(20)));
                        }
                    }
                    let snap = metrics::snapshot();
                    let delta = snap.delta_since(&prev);
                    let unix_ms = SystemTime::now()
                        .duration_since(SystemTime::UNIX_EPOCH)
                        .map(|d| d.as_millis() as f64)
                        .unwrap_or(0.0);
                    let line = Value::obj(vec![
                        ("seq", Value::Num(seq as f64)),
                        ("unix_ms", Value::Num(unix_ms)),
                        ("elapsed_s", Value::Num(t0.elapsed().as_secs_f64())),
                        ("metrics", delta.to_json()),
                    ]);
                    writeln!(jsonl, "{line}")?;
                    if let Some(prom) = &cfg.prom_path {
                        std::fs::write(prom, prometheus_exposition(&snap))?;
                    }
                    prev = snap;
                    seq += 1;
                    if stopping {
                        jsonl.flush()?;
                        return Ok(seq);
                    }
                }
            })?;
        Ok(Self {
            stop,
            handle: Some(handle),
        })
    }

    /// Stop the sampler, take one final sample, and return the number of
    /// JSONL lines written.
    ///
    /// # Errors
    /// Propagates the sampler thread's I/O errors.
    pub fn stop(mut self) -> std::io::Result<u64> {
        self.stop.store(true, Ordering::Relaxed);
        match self.handle.take().expect("stop runs once").join() {
            Ok(result) => result,
            Err(_) => Err(std::io::Error::other("exporter thread panicked")),
        }
    }
}

impl Drop for Exporter {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

/// Map an `esched.<crate>.<quantity>` metric name onto the Prometheus
/// charset (`[a-zA-Z0-9_:]`, no leading digit).
fn prom_name(name: &str) -> String {
    let mut out: String = name
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect();
    if out.chars().next().is_some_and(|c| c.is_ascii_digit()) {
        out.insert(0, '_');
    }
    out
}

/// Escape a `# HELP` docstring per the text-format rules: backslash and
/// newline must be escaped; everything else passes through.
fn prom_help(help: &str) -> String {
    help.replace('\\', "\\\\").replace('\n', "\\n")
}

fn prom_num(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

/// Render a snapshot in the Prometheus text exposition format. Counters
/// and gauges are single samples; histograms become cumulative
/// `_bucket{le="…"}` samples (log2 upper edges, then `+Inf`) plus `_sum`
/// and `_count`, matching the registry's bucket layout.
pub fn prometheus_exposition(snap: &Snapshot) -> String {
    let mut out = String::new();
    for (name, metric) in &snap.entries {
        let pname = prom_name(name);
        if let Some(help) = metrics::help_text(name) {
            out.push_str(&format!("# HELP {pname} {}\n", prom_help(&help)));
        }
        match metric {
            Metric::Counter(v) => {
                out.push_str(&format!("# TYPE {pname} counter\n"));
                out.push_str(&format!("{pname} {v}\n"));
            }
            Metric::Gauge(v) => {
                out.push_str(&format!("# TYPE {pname} gauge\n"));
                out.push_str(&format!("{pname} {}\n", prom_num(*v)));
            }
            Metric::Histogram {
                count,
                sum,
                buckets,
            } => {
                out.push_str(&format!("# TYPE {pname} histogram\n"));
                let mut cumulative = 0u64;
                for (k, &c) in buckets.iter().enumerate() {
                    cumulative += c;
                    out.push_str(&format!(
                        "{pname}_bucket{{le=\"{}\"}} {cumulative}\n",
                        1u64 << k
                    ));
                }
                out.push_str(&format!("{pname}_bucket{{le=\"+Inf\"}} {count}\n"));
                out.push_str(&format!("{pname}_sum {sum}\n"));
                out.push_str(&format!("{pname}_count {count}\n"));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;

    #[test]
    fn exposition_renders_all_three_kinds() {
        metrics::counter("esched.test.export_counter").add(3);
        metrics::gauge("esched.test.export_gauge").set(1.5);
        let h = metrics::histogram("esched.test.export_hist");
        h.record(1);
        h.record(3);
        let text = prometheus_exposition(&metrics::snapshot());
        assert!(text.contains("# TYPE esched_test_export_counter counter"));
        assert!(text.contains("esched_test_export_counter 3"));
        assert!(text.contains("esched_test_export_gauge 1.5"));
        assert!(text.contains("# TYPE esched_test_export_hist histogram"));
        // Cumulative buckets: le=1 has 1 sample, le=4 both, +Inf = count.
        assert!(text.contains("esched_test_export_hist_bucket{le=\"1\"} 1"));
        assert!(text.contains("esched_test_export_hist_bucket{le=\"4\"} 2"));
        assert!(text.contains("esched_test_export_hist_bucket{le=\"+Inf\"} 2"));
        assert!(text.contains("esched_test_export_hist_sum 4"));
        assert!(text.contains("esched_test_export_hist_count 2"));
    }

    #[test]
    fn exporter_writes_parseable_jsonl_and_prom() {
        let dir = std::env::temp_dir().join(format!("esched-export-test-{}", std::process::id()));
        let cfg = ExporterConfig::into_dir(&dir, Duration::from_millis(10));
        let jsonl_path = cfg.jsonl_path.clone();
        let prom_path = cfg.prom_path.clone().unwrap();
        let exporter = Exporter::start(cfg).unwrap();
        metrics::counter("esched.test.export_live").add(5);
        std::thread::sleep(Duration::from_millis(40));
        let lines = exporter.stop().unwrap();
        assert!(lines >= 1);
        let text = std::fs::read_to_string(&jsonl_path).unwrap();
        let parsed: Vec<Value> = text
            .lines()
            .map(|l| parse(l).expect("each line is standalone JSON"))
            .collect();
        assert_eq!(parsed.len() as u64, lines);
        // Sequence numbers are dense from 0 and the delta carries the
        // counter bump in exactly one line.
        for (k, v) in parsed.iter().enumerate() {
            assert_eq!(v.get("seq").unwrap().as_u64(), Some(k as u64));
            assert!(v.get("elapsed_s").unwrap().as_f64().is_some());
            assert!(v.get("metrics").is_some());
        }
        let bumps: f64 = parsed
            .iter()
            .filter_map(|v| v.get("metrics").unwrap().get("esched.test.export_live"))
            .filter_map(|v| v.as_f64())
            .sum();
        assert!(bumps >= 5.0, "counter delta lost: {bumps}");
        assert!(std::fs::read_to_string(&prom_path)
            .unwrap()
            .contains("esched_test_export_live"));
        std::fs::remove_dir_all(&dir).ok();
    }
}
