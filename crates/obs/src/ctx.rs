//! Request-scoped trace context: process-unique request ids, a thread-local
//! current-request slot, and the per-phase latency breakdown attached to
//! engine outcomes.
//!
//! The engine allocates one [`RequestId`] per `ScheduleRequest` and enters a
//! [`RequestScope`] for the duration of the pipeline. Because the scope is a
//! *thread-local* RAII guard, the id follows the job wherever the
//! work-stealing pool runs it — a stolen job carries its originating
//! request, not the stealing worker's identity. Everything that records
//! while the scope is active ([`crate::recorder`] flight records, the
//! request-scoped [`crate::chrome::ChromeTraceSink`] mode) reads the slot
//! via [`current_request`] and tags itself with the request id.
//!
//! Propagation rules (see DESIGN.md §Service observability):
//!
//! 1. ids are allocated from one process-global counter and never reused;
//! 2. the slot is per-thread and scoped — nesting restores the outer id,
//!    so a pipeline that executes a sub-request keeps both attributable;
//! 3. the id is **excluded from canonical JSON** (`ScheduleOutcome::
//!    to_json`), exactly like wall-clock telemetry, so batch outputs stay
//!    byte-identical across worker counts;
//! 4. on a panic the scope's `Drop` (which runs during unwinding) stamps a
//!    `panic` record into the flight recorder while the request id is
//!    still known — this is what lets a post-mortem dump name the failing
//!    request.

use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};

/// A process-unique id for one scheduling request.
///
/// Ids are dense (1, 2, 3, …) within a process and carry no meaning across
/// processes; they exist to correlate spans, flight records, and outcomes,
/// never to key persistent data.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RequestId(u64);

static NEXT_REQUEST: AtomicU64 = AtomicU64::new(1);

impl RequestId {
    /// Allocate the next id from the process-global counter.
    pub fn next() -> Self {
        Self(NEXT_REQUEST.fetch_add(1, Ordering::Relaxed))
    }

    /// The raw id value (always ≥ 1 for allocated ids).
    pub fn as_u64(&self) -> u64 {
        self.0
    }

    /// Reconstruct from a raw value (e.g. one read back from a flight
    /// record). `0` means "no request" and is rejected.
    pub fn from_u64(raw: u64) -> Option<Self> {
        (raw != 0).then_some(Self(raw))
    }
}

impl std::fmt::Display for RequestId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "req-{}", self.0)
    }
}

thread_local! {
    /// The request the current thread is executing, 0 when none.
    static CURRENT: Cell<u64> = const { Cell::new(0) };
}

/// The request the calling thread is currently executing, if any.
pub fn current_request() -> Option<RequestId> {
    RequestId::from_u64(current_request_raw())
}

/// Raw form of [`current_request`]: the id value, or `0` when the thread
/// is not inside a [`RequestScope`]. This is the zero-branch form the
/// flight-recorder hot path uses.
#[inline]
pub fn current_request_raw() -> u64 {
    CURRENT.with(|c| c.get())
}

/// RAII guard that makes `id` the calling thread's current request.
///
/// Dropping restores the previous value (scopes nest). If the drop happens
/// during a panic unwind, the guard stamps a `panic` record tagged with
/// the request id into the flight recorder *before* restoring — by the
/// time the pool's `catch_unwind` sees the payload, the thread-local is
/// already gone, so this is the one point where the failing request can
/// still sign its own crash.
#[derive(Debug)]
pub struct RequestScope {
    prev: u64,
}

impl RequestScope {
    /// Enter `id` on the calling thread.
    pub fn enter(id: RequestId) -> Self {
        let prev = CURRENT.with(|c| c.replace(id.as_u64()));
        Self { prev }
    }
}

impl Drop for RequestScope {
    fn drop(&mut self) {
        if std::thread::panicking() {
            crate::recorder::record_panic();
        }
        CURRENT.with(|c| c.set(self.prev));
    }
}

/// The per-phase latency breakdown of one request: `(phase name,
/// nanoseconds)` pairs in execution order.
///
/// Attached to `ScheduleOutcome` (engine) when telemetry is on; excluded
/// from canonical JSON, so it never perturbs determinism comparisons.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceCtx {
    /// The request this context belongs to.
    pub id: RequestId,
    /// `(phase, elapsed ns)` in the order the phases ran. Phases that a
    /// request's config skips (solver, sim, discrete) are simply absent.
    pub phases: Vec<(&'static str, u64)>,
}

impl TraceCtx {
    /// An empty context for `id`.
    pub fn new(id: RequestId) -> Self {
        Self {
            id,
            phases: Vec::new(),
        }
    }

    /// Append one phase measurement.
    pub fn record_phase(&mut self, phase: &'static str, elapsed: std::time::Duration) {
        self.phases
            .push((phase, elapsed.as_nanos().min(u64::MAX as u128) as u64));
    }

    /// Nanoseconds spent in `phase`, summed over repeats.
    pub fn phase_ns(&self, phase: &str) -> u64 {
        self.phases
            .iter()
            .filter(|(p, _)| *p == phase)
            .map(|(_, ns)| ns)
            .sum()
    }

    /// Total nanoseconds across all recorded phases.
    pub fn total_ns(&self) -> u64 {
        self.phases.iter().map(|(_, ns)| ns).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn ids_are_unique_and_monotonic_per_thread() {
        let a = RequestId::next();
        let b = RequestId::next();
        assert!(b.as_u64() > a.as_u64());
        assert_eq!(RequestId::from_u64(0), None);
        assert_eq!(RequestId::from_u64(a.as_u64()), Some(a));
    }

    #[test]
    fn scope_sets_and_restores_nested() {
        assert_eq!(current_request(), None);
        let outer = RequestId::next();
        let inner = RequestId::next();
        {
            let _o = RequestScope::enter(outer);
            assert_eq!(current_request(), Some(outer));
            {
                let _i = RequestScope::enter(inner);
                assert_eq!(current_request(), Some(inner));
            }
            assert_eq!(current_request(), Some(outer));
        }
        assert_eq!(current_request(), None);
    }

    #[test]
    fn scope_is_thread_local() {
        let id = RequestId::next();
        let _s = RequestScope::enter(id);
        std::thread::scope(|s| {
            s.spawn(|| assert_eq!(current_request(), None));
        });
        assert_eq!(current_request(), Some(id));
    }

    #[test]
    fn trace_ctx_accumulates_phases() {
        let mut t = TraceCtx::new(RequestId::next());
        t.record_phase("timeline", Duration::from_nanos(100));
        t.record_phase("solve", Duration::from_nanos(400));
        t.record_phase("timeline", Duration::from_nanos(50));
        assert_eq!(t.phase_ns("timeline"), 150);
        assert_eq!(t.phase_ns("solve"), 400);
        assert_eq!(t.phase_ns("absent"), 0);
        assert_eq!(t.total_ns(), 550);
        assert_eq!(t.phases.len(), 3);
    }
}
