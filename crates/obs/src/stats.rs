//! Aggregation helpers for per-trial telemetry: percentiles and
//! histograms.

use crate::json::Value;

/// Summary statistics of a sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Sample size.
    pub count: usize,
    /// Arithmetic mean (0 for an empty sample).
    pub mean: f64,
    /// Median (nearest-rank).
    pub p50: f64,
    /// 95th percentile (nearest-rank).
    pub p95: f64,
    /// Minimum.
    pub min: f64,
    /// Maximum.
    pub max: f64,
}

impl Summary {
    /// Summarize a sample. Non-finite values are ignored; an empty (or
    /// all-non-finite) sample yields zeros.
    pub fn of(values: &[f64]) -> Summary {
        let mut xs: Vec<f64> = values.iter().copied().filter(|v| v.is_finite()).collect();
        if xs.is_empty() {
            return Summary {
                count: 0,
                mean: 0.0,
                p50: 0.0,
                p95: 0.0,
                min: 0.0,
                max: 0.0,
            };
        }
        xs.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let count = xs.len();
        let mean = xs.iter().sum::<f64>() / count as f64;
        Summary {
            count,
            mean,
            p50: percentile_sorted(&xs, 50.0),
            p95: percentile_sorted(&xs, 95.0),
            min: xs[0],
            max: xs[count - 1],
        }
    }

    /// JSON form with stable key order.
    pub fn to_json(&self) -> Value {
        Value::obj(vec![
            ("count", Value::Num(self.count as f64)),
            ("mean", Value::Num(self.mean)),
            ("p50", Value::Num(self.p50)),
            ("p95", Value::Num(self.p95)),
            ("min", Value::Num(self.min)),
            ("max", Value::Num(self.max)),
        ])
    }
}

/// Nearest-rank percentile of an ascending-sorted, non-empty sample.
/// `p` in percent (0–100).
pub fn percentile_sorted(sorted: &[f64], p: f64) -> f64 {
    assert!(!sorted.is_empty(), "percentile of an empty sample");
    let p = p.clamp(0.0, 100.0);
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.saturating_sub(1).min(sorted.len() - 1)]
}

/// A power-of-two bucketed histogram of non-negative integer samples
/// (solver iteration counts): buckets `[0,1], (1,2], (2,4], (4,8], …`.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Log2Histogram {
    /// `counts[k]` = samples in bucket `k` (upper edge `2^k`).
    counts: Vec<u64>,
}

impl Log2Histogram {
    /// Empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add one sample.
    pub fn add(&mut self, value: u64) {
        let bucket = if value <= 1 {
            0
        } else {
            (64 - (value - 1).leading_zeros()) as usize
        };
        if self.counts.len() <= bucket {
            self.counts.resize(bucket + 1, 0);
        }
        self.counts[bucket] += 1;
    }

    /// Total samples recorded.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// `(upper_edge, count)` pairs for non-empty buckets.
    pub fn buckets(&self) -> Vec<(u64, u64)> {
        self.counts
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c > 0)
            .map(|(k, &c)| (1u64 << k, c))
            .collect()
    }

    /// JSON form: `{"le_1": n, "le_2": n, "le_4": n, …}`.
    pub fn to_json(&self) -> Value {
        Value::Obj(
            self.buckets()
                .into_iter()
                .map(|(edge, count)| (format!("le_{edge}"), Value::Num(count as f64)))
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_known_sample() {
        let s = Summary::of(&[4.0, 1.0, 3.0, 2.0, 5.0]);
        assert_eq!(s.count, 5);
        assert_eq!(s.mean, 3.0);
        assert_eq!(s.p50, 3.0);
        assert_eq!(s.p95, 5.0);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 5.0);
    }

    #[test]
    fn summary_ignores_non_finite_and_handles_empty() {
        let s = Summary::of(&[f64::NAN, 2.0, f64::INFINITY]);
        assert_eq!(s.count, 1);
        assert_eq!(s.p50, 2.0);
        let empty = Summary::of(&[]);
        assert_eq!(empty.count, 0);
        assert_eq!(empty.max, 0.0);
    }

    #[test]
    fn percentiles_nearest_rank() {
        let xs: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        assert_eq!(percentile_sorted(&xs, 50.0), 50.0);
        assert_eq!(percentile_sorted(&xs, 95.0), 95.0);
        assert_eq!(percentile_sorted(&xs, 0.0), 1.0);
        assert_eq!(percentile_sorted(&xs, 100.0), 100.0);
        assert_eq!(percentile_sorted(&[7.0], 95.0), 7.0);
    }

    #[test]
    fn log2_histogram_buckets() {
        let mut h = Log2Histogram::new();
        for v in [0, 1, 2, 3, 4, 5, 8, 9, 1000] {
            h.add(v);
        }
        assert_eq!(h.total(), 9);
        // 0,1 → le_1; 2 → le_2; 3,4 → le_4; 5,8 → le_8; 9 → le_16;
        // 1000 → le_1024.
        assert_eq!(
            h.buckets(),
            vec![(1, 2), (2, 1), (4, 2), (8, 2), (16, 1), (1024, 1)]
        );
        let json = h.to_json();
        assert_eq!(json.get("le_4").unwrap().as_u64(), Some(2));
    }

    #[test]
    fn summary_json_shape() {
        let j = Summary::of(&[1.0, 2.0]).to_json();
        for key in ["count", "mean", "p50", "p95", "min", "max"] {
            assert!(j.get(key).is_some(), "missing {key}");
        }
    }
}
